// Tests for the pipeline observability layer: the metrics registry's
// concurrency and determinism contracts, stage timers, run manifests, and
// the versioned JSON snapshot (including a golden-document check).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"
#include "util/parse_error.hpp"
#include "util/threadpool.hpp"

namespace pmacx {
namespace {

namespace metrics = util::metrics;

// ------------------------------------------------------------ registry ----

TEST(MetricsRegistryTest, CounterFindsSameInstanceByName) {
  metrics::Registry reg;
  metrics::Counter& a = reg.counter("events");
  metrics::Counter& b = reg.counter("events");
  EXPECT_EQ(&a, &b);
  a.add(3);
  b.add();
  EXPECT_EQ(a.value(), 4u);
}

TEST(MetricsRegistryTest, GaugeKeepsLastWrittenValue) {
  metrics::Registry reg;
  metrics::Gauge& g = reg.gauge("threads");
  g.set(4.0);
  g.set(16.0);
  EXPECT_DOUBLE_EQ(g.value(), 16.0);
}

TEST(MetricsRegistryTest, ResetZeroesValuesButKeepsReferencesValid) {
  metrics::Registry reg;
  metrics::Counter& c = reg.counter("events");
  c.add(7);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  c.add(2);  // the hoisted reference must keep counting after reset
  EXPECT_EQ(reg.counter("events").value(), 2u);
}

TEST(MetricsRegistryTest, SnapshotIsSortedByName) {
  metrics::Registry reg;
  reg.counter("zebra").add(1);
  reg.counter("alpha").add(2);
  reg.counter("mid").add(3);
  const metrics::Snapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].first, "alpha");
  EXPECT_EQ(snap.counters[1].first, "mid");
  EXPECT_EQ(snap.counters[2].first, "zebra");
}

// ---------------------------------------------------------- concurrency ----

TEST(MetricsRegistryTest, ConcurrentIncrementsFromParallelForAreLossless) {
  metrics::Registry reg;
  metrics::Counter& c = reg.counter("work");
  util::ThreadPool pool(4);
  constexpr std::size_t kTasks = 256;
  constexpr std::uint64_t kPerTask = 1000;
  pool.parallel_for(kTasks, [&](std::size_t) {
    for (std::uint64_t i = 0; i < kPerTask; ++i) c.add();
  });
  EXPECT_EQ(c.value(), kTasks * kPerTask);
}

TEST(MetricsRegistryTest, ConcurrentNameLookupIsSafe) {
  metrics::Registry reg;
  util::ThreadPool pool(4);
  pool.parallel_for(64, [&](std::size_t i) {
    // All tasks race to create/find the same few names.
    reg.counter("shared." + std::to_string(i % 4)).add();
  });
  std::uint64_t total = 0;
  for (const auto& [name, value] : reg.snapshot().counters) total += value;
  EXPECT_EQ(total, 64u);
}

TEST(MetricsRegistryTest, CounterSnapshotIsIdenticalAcrossThreadCounts) {
  // The determinism contract: counters tally work, not scheduling, so the
  // same workload produces identical counter snapshots on 1 and 4 threads.
  auto run = [](std::size_t threads) {
    metrics::Registry reg;
    util::ThreadPool pool(threads);
    metrics::Counter& items = reg.counter("items");
    metrics::Counter& odd = reg.counter("odd");
    pool.parallel_for(101, [&](std::size_t i) {
      items.add();
      if (i % 2 == 1) odd.add();
    });
    return reg.snapshot().counters;
  };
  EXPECT_EQ(run(1), run(4));
}

// ------------------------------------------------------------ histogram ----

TEST(MetricsHistogramTest, TracksCountSumMinMax) {
  metrics::Histogram h;
  h.record(10);
  h.record(30);
  h.record(20);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 60u);
  EXPECT_EQ(h.min(), 10u);
  EXPECT_EQ(h.max(), 30u);
}

TEST(MetricsHistogramTest, EmptyHistogramReportsZeroMin) {
  metrics::Histogram h;
  EXPECT_EQ(h.min(), 0u);
}

TEST(MetricsHistogramTest, BucketsAreLog2Ranges) {
  metrics::Histogram h;
  h.record(0);  // bucket 0
  h.record(1);  // [1,2) -> bucket 0
  h.record(2);  // [2,4) -> bucket 1
  h.record(3);  // [2,4) -> bucket 1
  h.record(1024);  // [1024,2048) -> bucket 10
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 2u);
  EXPECT_EQ(h.bucket(10), 1u);
}

TEST(MetricsHistogramTest, HugeSampleLandsInLastBucket) {
  metrics::Histogram h;
  h.record(~std::uint64_t{0});
  EXPECT_EQ(h.bucket(metrics::Histogram::kBuckets - 1), 1u);
}

// ----------------------------------------------------------- stage timer ----

TEST(MetricsStageTimerTest, RecordsWallAndCpuHistograms) {
  metrics::Registry reg;
  {
    metrics::StageTimer timer("stage", reg);
    // Burn a little CPU so the wall reading is reliably nonzero.
    volatile double sink = 0.0;
    for (int i = 0; i < 100000; ++i) sink += static_cast<double>(i) * 1e-9;
  }
  const metrics::Snapshot snap = reg.snapshot();
  ASSERT_EQ(snap.timers.size(), 2u);
  EXPECT_EQ(snap.timers[0].first, "stage.cpu_ns");
  EXPECT_EQ(snap.timers[1].first, "stage.wall_ns");
  EXPECT_EQ(snap.timers[1].second.count, 1u);
  EXPECT_GT(snap.timers[1].second.sum, 0u);
}

TEST(MetricsStageTimerTest, NestedScopesAccumulateSeparately) {
  metrics::Registry reg;
  {
    metrics::StageTimer outer("outer", reg);
    metrics::StageTimer inner("inner", reg);
  }
  {
    metrics::StageTimer inner("inner", reg);
  }
  const metrics::Snapshot snap = reg.snapshot();
  ASSERT_EQ(snap.timers.size(), 4u);
  // Sorted: inner.cpu_ns, inner.wall_ns, outer.cpu_ns, outer.wall_ns.
  EXPECT_EQ(snap.timers[1].first, "inner.wall_ns");
  EXPECT_EQ(snap.timers[1].second.count, 2u);
  EXPECT_EQ(snap.timers[3].first, "outer.wall_ns");
  EXPECT_EQ(snap.timers[3].second.count, 1u);
}

// -------------------------------------------------------------- manifest ----

TEST(MetricsManifestTest, ForToolFillsBuildProvenance) {
  const metrics::RunManifest m = metrics::RunManifest::for_tool("pmacx_test");
  EXPECT_EQ(m.tool, "pmacx_test");
  EXPECT_FALSE(m.version.empty());
  EXPECT_FALSE(m.git_sha.empty());
}

TEST(MetricsManifestTest, AddInputDigestsFileWithCrc32) {
  const std::string path = ::testing::TempDir() + "metrics_input.bin";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "123456789";  // canonical CRC-32 check string
  }
  metrics::RunManifest m;
  m.add_input(path);
  ASSERT_EQ(m.inputs.size(), 1u);
  EXPECT_TRUE(m.inputs[0].readable);
  EXPECT_EQ(m.inputs[0].bytes, 9u);
  EXPECT_EQ(m.inputs[0].crc32, 0xcbf43926u);
  std::remove(path.c_str());
}

TEST(MetricsManifestTest, AddInputRecordsMissingFileAsUnreadable) {
  metrics::RunManifest m;
  m.add_input("/nonexistent/metrics/input");
  ASSERT_EQ(m.inputs.size(), 1u);
  EXPECT_FALSE(m.inputs[0].readable);
  EXPECT_EQ(m.inputs[0].bytes, 0u);
  EXPECT_EQ(m.inputs[0].crc32, 0u);
}

// ------------------------------------------------------------------ json ----

TEST(MetricsJsonTest, GoldenDocument) {
  // Fixed manifest + registry → the emitted document is fully deterministic;
  // any change to it is a schema change and must bump kSchemaVersion.
  metrics::RunManifest manifest;
  manifest.tool = "pmacx_fit";
  manifest.version = "0.3.0";
  manifest.git_sha = "abcdef123456";
  manifest.threads = 2;
  manifest.config = {{"forms", "default"}, {"at", "8192"}};
  manifest.inputs.push_back({"series.csv", 9, 0xcbf43926u, true});

  metrics::Registry reg;
  reg.counter("fits.total").add(42);
  reg.counter("fits.constant_fallback").add(1);
  reg.gauge("threads").set(2.0);
  reg.histogram("fit.wall_ns").record(1500);

  const std::string expected =
      "{\n"
      "  \"schema\": \"pmacx-metrics-v1\",\n"
      "  \"manifest\": {\n"
      "    \"tool\": \"pmacx_fit\",\n"
      "    \"version\": \"0.3.0\",\n"
      "    \"git_sha\": \"abcdef123456\",\n"
      "    \"threads\": 2,\n"
      "    \"config\": {\n"
      "      \"forms\": \"default\",\n"
      "      \"at\": \"8192\"\n"
      "    },\n"
      "    \"inputs\": [\n"
      "      {\"path\": \"series.csv\", \"bytes\": 9, \"crc32\": \"cbf43926\", "
      "\"readable\": true}\n"
      "    ]\n"
      "  },\n"
      "  \"counters\": {\n"
      "    \"fits.constant_fallback\": 1,\n"
      "    \"fits.total\": 42\n"
      "  },\n"
      "  \"gauges\": {\n"
      "    \"threads\": 2\n"
      "  },\n"
      "  \"timers\": {\n"
      "    \"fit.wall_ns\": {\"count\": 1, \"sum\": 1500, \"min\": 1500, \"max\": 1500}\n"
      "  }\n"
      "}\n";
  EXPECT_EQ(metrics::to_json(manifest, reg.snapshot()), expected);
}

TEST(MetricsJsonTest, EscapesControlAndQuoteCharacters) {
  metrics::RunManifest manifest;
  manifest.tool = "a\"b\\c\nd";
  const std::string json = metrics::to_json(manifest, metrics::Snapshot{});
  EXPECT_NE(json.find("a\\\"b\\\\c\\nd"), std::string::npos);
}

TEST(MetricsJsonTest, EmptySectionsEmitEmptyObjects) {
  const std::string json =
      metrics::to_json(metrics::RunManifest{}, metrics::Snapshot{});
  EXPECT_NE(json.find("\"counters\": {}"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\": {}"), std::string::npos);
  EXPECT_NE(json.find("\"timers\": {}"), std::string::npos);
  EXPECT_NE(json.find("\"inputs\": []"), std::string::npos);
}

TEST(MetricsJsonTest, WriteJsonRoundTripsThroughDisk) {
  const std::string path = ::testing::TempDir() + "metrics_out.json";
  metrics::Registry reg;
  reg.counter("events").add(5);
  metrics::write_json(path, metrics::RunManifest{}, reg.snapshot());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_EQ(text, metrics::to_json(metrics::RunManifest{}, reg.snapshot()));
  std::remove(path.c_str());
}

TEST(MetricsJsonTest, WriteJsonThrowsOnUnwritablePath) {
  EXPECT_THROW(metrics::write_json("/nonexistent/dir/out.json",
                                   metrics::RunManifest{}, metrics::Snapshot{}),
               util::Error);
}

// ------------------------------------------------------------- cli sweep ----

TEST(CliParseFlagTest, ParsesValidNumbers) {
  EXPECT_EQ(util::parse_flag_u64("6144", "--target-cores"), 6144u);
  EXPECT_DOUBLE_EQ(util::parse_flag_double(" 0.25 ", "--influence"), 0.25);
}

TEST(CliParseFlagTest, ThrowsParseErrorNamingTheFlag) {
  try {
    util::parse_flag_u64("12abc", "--target-cores");
    FAIL() << "expected ParseError";
  } catch (const util::ParseError& e) {
    EXPECT_EQ(e.section(), "--target-cores");
    EXPECT_NE(std::string(e.what()).find("--target-cores"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("12abc"), std::string::npos);
  }
}

TEST(CliParseFlagTest, RejectsNegativeU64AndGarbageDouble) {
  EXPECT_THROW(util::parse_flag_u64("-3", "--threads"), util::ParseError);
  EXPECT_THROW(util::parse_flag_double("1.2.3", "--influence"), util::ParseError);
}

TEST(CliParseFlagTest, CliGetterRaisesParseErrorWithFlagName) {
  util::Cli cli("test", "test");
  cli.add_u64("cores", 96, "core count");
  const char* argv[] = {"test", "--cores", "ninety-six"};
  try {
    cli.parse(3, argv);
    FAIL() << "expected ParseError";
  } catch (const util::ParseError& e) {
    EXPECT_EQ(e.section(), "--cores");
  }
}

TEST(CliParseFlagTest, ValuesReturnsRegistrationOrderedConfig) {
  util::Cli cli("test", "test");
  cli.add_string("zeta", "z", "");
  cli.add_u64("alpha", 7, "");
  cli.add_flag("beta", "");
  const char* argv[] = {"test", "--alpha", "9", "--beta"};
  ASSERT_TRUE(cli.parse(4, argv));
  const auto values = cli.values();
  ASSERT_EQ(values.size(), 3u);
  EXPECT_EQ(values[0], (std::pair<std::string, std::string>{"zeta", "z"}));
  EXPECT_EQ(values[1], (std::pair<std::string, std::string>{"alpha", "9"}));
  EXPECT_EQ(values[2], (std::pair<std::string, std::string>{"beta", "1"}));
}

}  // namespace
}  // namespace pmacx
