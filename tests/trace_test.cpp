// Tests for the trace data model: element schema, block records, task-trace
// serialization round-trips, comm traces and signature validation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>

#include "trace/binary_io.hpp"
#include "trace/comm.hpp"
#include "trace/elements.hpp"
#include "trace/signature.hpp"
#include "trace/task_trace.hpp"
#include "util/error.hpp"
#include "util/parse_error.hpp"

namespace pmacx {
namespace {

using trace::BasicBlockRecord;
using trace::BlockElement;
using trace::CommEvent;
using trace::CommOp;
using trace::CommTrace;
using trace::InstrElement;
using trace::InstructionRecord;
using trace::TaskTrace;

TaskTrace sample_trace() {
  TaskTrace task;
  task.app = "demo";
  task.rank = 3;
  task.core_count = 128;
  task.target_system = "test target";
  task.extrapolated = false;

  BasicBlockRecord block;
  block.id = 7;
  block.location = {"src/solver.f90", 42, "solve kernel"};
  block.set(BlockElement::VisitCount, 1000);
  block.set(BlockElement::FpAdd, 500.5);
  block.set(BlockElement::FpFma, 250);
  block.set(BlockElement::MemLoads, 12345.25);
  block.set(BlockElement::MemStores, 54321);
  block.set(BlockElement::BytesPerRef, 8);
  block.set(BlockElement::HitRateL1, 0.874);
  block.set(BlockElement::HitRateL2, 0.875);
  block.set(BlockElement::HitRateL3, 0.907);
  block.set(BlockElement::WorkingSetBytes, 1 << 20);
  block.set(BlockElement::Ilp, 3.5);
  block.set(BlockElement::DepChainLength, 6);

  InstructionRecord instr;
  instr.index = 2;
  instr.set(InstrElement::ExecCount, 999);
  instr.set(InstrElement::MemOps, 999);
  instr.set(InstrElement::BytesPerOp, 8);
  instr.set(InstrElement::HitRateL1, 0.5);
  instr.set(InstrElement::HitRateL2, 0.6);
  instr.set(InstrElement::HitRateL3, 0.7);
  block.instructions.push_back(instr);
  task.blocks.push_back(block);

  BasicBlockRecord second;
  second.id = 2;
  second.location = {"src/update.f90", 7, "update"};
  second.set(BlockElement::MemLoads, 10);
  task.blocks.push_back(second);
  task.sort_blocks();
  return task;
}

// --------------------------------------------------------------- schema ----

TEST(ElementsTest, BlockNamesAreUniqueAndStable) {
  std::set<std::string> names;
  for (std::size_t e = 0; e < trace::kBlockElementCount; ++e)
    names.insert(trace::block_element_name(static_cast<BlockElement>(e)));
  EXPECT_EQ(names.size(), trace::kBlockElementCount);
  EXPECT_EQ(trace::block_element_name(BlockElement::HitRateL2), "hit_rate_l2");
}

TEST(ElementsTest, InstrNamesAreUnique) {
  std::set<std::string> names;
  for (std::size_t e = 0; e < trace::kInstrElementCount; ++e)
    names.insert(trace::instr_element_name(static_cast<InstrElement>(e)));
  EXPECT_EQ(names.size(), trace::kInstrElementCount);
}

TEST(ElementsTest, RateFlags) {
  EXPECT_TRUE(trace::block_element_is_rate(BlockElement::HitRateL1));
  EXPECT_TRUE(trace::block_element_is_rate(BlockElement::HitRateL3));
  EXPECT_FALSE(trace::block_element_is_rate(BlockElement::MemLoads));
  EXPECT_TRUE(trace::instr_element_is_rate(InstrElement::HitRateL2));
  EXPECT_FALSE(trace::instr_element_is_rate(InstrElement::MemOps));
}

// ---------------------------------------------------------------- block ----

TEST(BlockTest, DerivedTotals) {
  const TaskTrace task = sample_trace();
  const BasicBlockRecord* block = task.find_block(7);
  ASSERT_NE(block, nullptr);
  EXPECT_DOUBLE_EQ(block->memory_ops(), 12345.25 + 54321);
  EXPECT_DOUBLE_EQ(block->fp_ops(), 500.5 + 2 * 250);  // FMA counts double
  EXPECT_DOUBLE_EQ(block->bytes_moved(), (12345.25 + 54321) * 8);
}

TEST(BlockTest, FindBlockAfterSortAndMissingId) {
  const TaskTrace task = sample_trace();
  EXPECT_NE(task.find_block(2), nullptr);
  EXPECT_EQ(task.find_block(999), nullptr);
  EXPECT_EQ(task.blocks.front().id, 2u);  // sort_blocks ordered them
}

TEST(BlockTest, TaskTotals) {
  const TaskTrace task = sample_trace();
  EXPECT_DOUBLE_EQ(task.total_memory_ops(), 12345.25 + 54321 + 10);
}

// ------------------------------------------------------------ round-trip ----

TEST(TaskTraceTest, TextRoundTripIsExact) {
  const TaskTrace original = sample_trace();
  const TaskTrace parsed = TaskTrace::from_text(original.to_text());
  EXPECT_EQ(parsed, original);
}

TEST(TaskTraceTest, RoundTripPreservesExtremeDoubles) {
  TaskTrace task = sample_trace();
  task.blocks[0].set(BlockElement::MemLoads, 1.2345678901234567e+18);
  task.blocks[0].set(BlockElement::HitRateL1, 0.12345678901234567);
  const TaskTrace parsed = TaskTrace::from_text(task.to_text());
  EXPECT_EQ(parsed, task);
}

TEST(TaskTraceTest, ExtrapolatedFlagSurvives) {
  TaskTrace task = sample_trace();
  task.extrapolated = true;
  EXPECT_TRUE(TaskTrace::from_text(task.to_text()).extrapolated);
}

TEST(TaskTraceTest, FileSaveLoad) {
  const TaskTrace original = sample_trace();
  const std::string path = ::testing::TempDir() + "/pmacx_trace_test.trace";
  original.save(path);
  const TaskTrace loaded = TaskTrace::load(path);
  EXPECT_EQ(loaded, original);
  std::remove(path.c_str());
}

TEST(TaskTraceTest, RejectsWrongMagic) {
  EXPECT_THROW(TaskTrace::from_text("bogus\t1\n"), util::Error);
}

TEST(TaskTraceTest, RejectsWrongVersion) {
  std::string text = sample_trace().to_text();
  text.replace(text.find("\t1\n"), 3, "\t9\n");
  EXPECT_THROW(TaskTrace::from_text(text), util::Error);
}

TEST(TaskTraceTest, RejectsTruncatedInput) {
  std::string text = sample_trace().to_text();
  text.resize(text.size() / 2);
  EXPECT_THROW(TaskTrace::from_text(text), util::Error);
}

TEST(TaskTraceTest, RejectsArityMismatch) {
  std::string text = sample_trace().to_text();
  const auto pos = text.find("features");
  const auto tab = text.find('\t', pos);
  text.insert(tab, "\t99");  // extra feature column
  EXPECT_THROW(TaskTrace::from_text(text), util::Error);
}

TEST(TaskTraceTest, LoadMissingFileThrows) {
  EXPECT_THROW(TaskTrace::load("/nonexistent/path/x.trace"), util::Error);
}

// ------------------------------------------------------------- validate ----

TEST(ValidateTest, AcceptsWellFormedTrace) {
  EXPECT_NO_THROW(sample_trace().validate());
}

TEST(ValidateTest, RejectsStructuralBreakage) {
  TaskTrace task = sample_trace();
  task.rank = 999;  // beyond core count
  EXPECT_THROW(task.validate(), util::Error);

  task = sample_trace();
  task.blocks[0].id = task.blocks[1].id;  // duplicate ids
  EXPECT_THROW(task.validate(), util::Error);

  task = sample_trace();
  std::swap(task.blocks[0], task.blocks[1]);  // unsorted
  EXPECT_THROW(task.validate(), util::Error);
}

TEST(ValidateTest, RejectsBadValues) {
  TaskTrace task = sample_trace();
  task.blocks[0].set(BlockElement::MemLoads, -5.0);
  EXPECT_THROW(task.validate(), util::Error);

  task = sample_trace();
  task.blocks[0].set(BlockElement::HitRateL2, 1.5);
  EXPECT_THROW(task.validate(), util::Error);

  task = sample_trace();
  task.blocks[0].set(BlockElement::Ilp, std::nan(""));
  EXPECT_THROW(task.validate(), util::Error);
}

TEST(ValidateTest, RejectsNonCumulativeHitRates) {
  TaskTrace task = sample_trace();
  task.blocks[1].set(BlockElement::HitRateL1, 0.95);  // above L2 = 0.875
  EXPECT_THROW(task.validate(), util::Error);
}

TEST(ValidateTest, RejectsUnsortedInstructions) {
  TaskTrace task = sample_trace();
  trace::InstructionRecord dup = task.blocks[1].instructions[0];
  task.blocks[1].instructions.push_back(dup);  // duplicate index
  EXPECT_THROW(task.validate(), util::Error);
}

// --------------------------------------------------------- binary format ----

TEST(BinaryTraceTest, RoundTripIsExact) {
  const TaskTrace original = sample_trace();
  EXPECT_EQ(trace::from_binary(trace::to_binary(original)), original);
}

TEST(BinaryTraceTest, PreservesExtremeDoublesBitExactly) {
  TaskTrace task = sample_trace();
  task.blocks[0].set(BlockElement::MemLoads, 1.2345678901234567e+300);
  task.blocks[0].set(BlockElement::HitRateL1, 5e-324);  // denormal
  EXPECT_EQ(trace::from_binary(trace::to_binary(task)), task);
}

TEST(BinaryTraceTest, SmallerThanTextOnRealisticValues) {
  // Real traces carry full-precision doubles (the text form spends ~25
  // characters each where binary spends 8 bytes).  Fill the features with
  // non-round values as a tracer would produce.
  TaskTrace task = sample_trace();
  double seed = 0.123456789012345;
  for (auto& block : task.blocks) {
    for (double& v : block.features) v = (seed *= 1.9999371) + 1e6;
    for (auto& instr : block.instructions)
      for (double& v : instr.features) v = (seed *= 1.9999371) + 1e6;
  }
  EXPECT_LT(trace::to_binary(task).size(), task.to_text().size());
}

TEST(BinaryTraceTest, FileRoundTripAndAutodetect) {
  const TaskTrace original = sample_trace();
  const std::string path = ::testing::TempDir() + "/pmacx_trace_test.btrace";
  trace::save_binary(original, path);
  // TaskTrace::load auto-detects the binary magic.
  EXPECT_EQ(TaskTrace::load(path), original);
  EXPECT_EQ(trace::load_binary(path), original);
  std::remove(path.c_str());
}

TEST(BinaryTraceTest, RejectsTruncation) {
  std::string bytes = trace::to_binary(sample_trace());
  bytes.resize(bytes.size() - 7);
  EXPECT_THROW(trace::from_binary(bytes), util::Error);
}

TEST(BinaryTraceTest, RejectsTrailingGarbage) {
  std::string bytes = trace::to_binary(sample_trace());
  bytes += "junk";
  EXPECT_THROW(trace::from_binary(bytes), util::Error);
}

TEST(BinaryTraceTest, RejectsForeignBytes) {
  EXPECT_FALSE(trace::looks_binary("pmacx-trace\t1\n"));
  EXPECT_THROW(trace::from_binary("definitely not a trace"), util::Error);
}

TEST(BinaryTraceTest, WritesV002Magic) {
  const std::string bytes = trace::to_binary(sample_trace());
  ASSERT_GE(bytes.size(), 8u);
  EXPECT_EQ(bytes.substr(0, 8), std::string(trace::kBinaryMagicV002, 8));
  EXPECT_TRUE(trace::looks_binary(bytes));
}

TEST(BinaryTraceTest, StillReadsV001) {
  // Traces written by the unframed v001 writer (the seed format) must keep
  // loading through the same entry points.
  const TaskTrace original = sample_trace();
  const std::string bytes = trace::to_binary_v001(original);
  EXPECT_EQ(bytes.substr(0, 8), std::string(trace::kBinaryMagicV001, 8));
  EXPECT_TRUE(trace::looks_binary(bytes));
  EXPECT_EQ(trace::from_binary(bytes), original);

  const std::string path = ::testing::TempDir() + "/pmacx_trace_test_v001.btrace";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_EQ(TaskTrace::load(path), original);
  std::remove(path.c_str());
}

TEST(BinaryTraceTest, DetectsSingleFlippedPayloadBit) {
  const TaskTrace original = sample_trace();
  const std::string bytes = trace::to_binary(original);
  // Flip one bit inside a feature value: v001 would silently deliver a
  // different number; v002's per-section checksum must refuse.
  std::string corrupted = bytes;
  corrupted[bytes.size() - 40] ^= 0x04;
  EXPECT_THROW(trace::from_binary(corrupted), util::ParseError);
}

TEST(BinaryTraceTest, RejectsCorruptBlockCountWithoutAllocating) {
  // block_count is the last u64 of the header payload; inflating it must
  // hit the declared-size bounds check, not reserve() petabytes.
  std::string bytes = trace::to_binary(sample_trace());
  const std::uint64_t huge = 1ull << 62;
  // Header section payload starts at byte 24 (magic 8 + tag 4 + size 8 +
  // crc 4); hunt for the real count field and inflate every candidate.
  for (std::size_t at = 24; at + 8 <= std::min<std::size_t>(bytes.size(), 120); ++at) {
    std::string corrupted = bytes;
    std::memcpy(corrupted.data() + at, &huge, sizeof huge);
    EXPECT_THROW(trace::from_binary(corrupted), util::ParseError);
  }
}

TEST(BinaryTraceTest, ParseErrorCarriesOffsetAndSection) {
  std::string bytes = trace::to_binary(sample_trace());
  bytes[bytes.size() - 40] ^= 0x04;
  try {
    (void)trace::from_binary(bytes);
    FAIL() << "corrupted trace parsed cleanly";
  } catch (const util::ParseError& e) {
    EXPECT_NE(e.byte_offset(), util::ParseError::kNoOffset);
    EXPECT_FALSE(e.section().empty());
  }
}

// ------------------------------------------------------------------ comm ----

TEST(CommTest, OpNamesRoundTrip) {
  for (CommOp op : {CommOp::Send, CommOp::Recv, CommOp::Barrier, CommOp::Bcast, CommOp::Reduce,
                    CommOp::Allreduce, CommOp::Allgather, CommOp::Alltoall}) {
    EXPECT_EQ(trace::comm_op_from_name(trace::comm_op_name(op)), op);
  }
  EXPECT_THROW(trace::comm_op_from_name("frobnicate"), util::Error);
}

TEST(CommTest, CollectiveClassification) {
  EXPECT_FALSE(trace::comm_op_is_collective(CommOp::Send));
  EXPECT_FALSE(trace::comm_op_is_collective(CommOp::Recv));
  EXPECT_TRUE(trace::comm_op_is_collective(CommOp::Allreduce));
  EXPECT_TRUE(trace::comm_op_is_collective(CommOp::Barrier));
}

CommTrace sample_comm() {
  CommTrace comm;
  comm.rank = 1;
  comm.core_count = 4;
  comm.tail_compute_units = 0.5;
  comm.events.push_back({CommOp::Send, 2, 4096, 10.0});
  comm.events.push_back({CommOp::Allreduce, -1, 8, 5.25});
  return comm;
}

TEST(CommTest, RoundTrip) {
  const CommTrace original = sample_comm();
  EXPECT_EQ(CommTrace::from_text(original.to_text()), original);
}

TEST(CommTest, Totals) {
  const CommTrace comm = sample_comm();
  EXPECT_DOUBLE_EQ(comm.total_compute_units(), 15.75);
  EXPECT_EQ(comm.total_bytes(), 4104u);
}

TEST(CommTest, RejectsMalformed) {
  EXPECT_THROW(CommTrace::from_text("not a comm trace"), util::Error);
}

// -------------------------------------------------------------- signature ----

trace::AppSignature sample_signature() {
  trace::AppSignature sig;
  sig.app = "demo";
  sig.core_count = 4;
  sig.target_system = "test target";
  sig.demanding_rank = 3;
  TaskTrace task = sample_trace();
  task.core_count = 4;
  sig.tasks.push_back(task);
  for (std::uint32_t r = 0; r < 4; ++r) {
    CommTrace comm;
    comm.rank = r;
    comm.core_count = 4;
    sig.comm.push_back(comm);
  }
  return sig;
}

TEST(SignatureTest, ValidSignaturePasses) {
  EXPECT_NO_THROW(sample_signature().validate());
}

TEST(SignatureTest, DemandingTaskLookup) {
  const auto sig = sample_signature();
  EXPECT_EQ(sig.demanding_task().rank, 3u);
  EXPECT_EQ(sig.task_for_rank(0), nullptr);
}

TEST(SignatureTest, MissingDemandingTraceThrows) {
  auto sig = sample_signature();
  sig.demanding_rank = 0;
  EXPECT_THROW(sig.demanding_task(), util::Error);
}

TEST(SignatureTest, RejectsCoreCountMismatch) {
  auto sig = sample_signature();
  sig.tasks[0].core_count = 8;
  EXPECT_THROW(sig.validate(), util::Error);
}

TEST(SignatureTest, RejectsIncompleteCommCoverage) {
  auto sig = sample_signature();
  sig.comm.pop_back();
  EXPECT_THROW(sig.validate(), util::Error);
}

TEST(SignatureTest, RejectsOutOfRangeDemandingRank) {
  auto sig = sample_signature();
  sig.demanding_rank = 99;
  EXPECT_THROW(sig.validate(), util::Error);
}

TEST(SignatureTest, DirectorySaveLoadRoundTrip) {
  trace::AppSignature original = sample_signature();
  // Give the comm traces real content so the concatenated format is
  // exercised.
  original.comm[1].events.push_back({CommOp::Send, 2, 4096, 12.5});
  original.comm[2].events.push_back({CommOp::Recv, 1, 4096, 0.0});
  original.comm[3].tail_compute_units = 7.0;

  const std::string dir = ::testing::TempDir() + "/pmacx_sig_roundtrip";
  original.save(dir);
  const trace::AppSignature loaded = trace::AppSignature::load(dir);

  EXPECT_EQ(loaded.app, original.app);
  EXPECT_EQ(loaded.core_count, original.core_count);
  EXPECT_EQ(loaded.target_system, original.target_system);
  EXPECT_EQ(loaded.demanding_rank, original.demanding_rank);
  ASSERT_EQ(loaded.tasks.size(), original.tasks.size());
  EXPECT_EQ(loaded.tasks[0], original.tasks[0]);
  ASSERT_EQ(loaded.comm.size(), original.comm.size());
  for (std::size_t r = 0; r < original.comm.size(); ++r)
    EXPECT_EQ(loaded.comm[r], original.comm[r]) << "rank " << r;
  std::filesystem::remove_all(dir);
}

TEST(SignatureTest, LoadMissingDirectoryThrows) {
  EXPECT_THROW(trace::AppSignature::load("/nonexistent/sigdir"), util::Error);
}

TEST(SignatureTest, LoadRejectsForeignMeta) {
  const std::string dir = ::testing::TempDir() + "/pmacx_sig_bad";
  std::filesystem::create_directories(dir);
  std::ofstream(dir + "/signature.meta") << "not-a-signature\t9\n";
  EXPECT_THROW(trace::AppSignature::load(dir), util::Error);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace pmacx
