// Kernel-level scalar-vs-AVX2 sweeps.  Where simd_identity_test drives the
// public pipelines end to end, this suite exercises each kernel in the
// util::simd table directly across the shapes the vector code has to get
// right: every tail length around the 4/8/16-lane widths, unaligned base
// pointers (the kernels use unaligned loads throughout, so an offset base
// must be bit-identical, not just close), the specialized probe
// associativities (2/4/8 ways) next to their generic neighbours, partially
// invalid sets, stale tags on invalid ways, and both replacement flavours.
// Every comparison is bitwise — memcmp on the output buffers, exact
// equality on every piece of mutated cache metadata.
//
// Under PMACX_DISABLE_AVX2 (the release-noavx2 CI leg) avx2_kernels() is
// null and each test skips; the sweeps then still validate that the scalar
// kernels are deterministic across repeated runs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "util/rng.hpp"
#include "util/simd.hpp"

namespace pmacx {
namespace {

using util::simd::Kernels;
using util::simd::ProbeReplay;
using util::simd::SetView;

const Kernels& scalar() { return util::simd::scalar_kernels(); }

const Kernels* avx2() { return util::simd::avx2_kernels(); }

/// Buffer whose data() is deliberately offset from the allocation so the
/// kernels see a pointer that is not 32-byte (for doubles, not even
/// 16-byte) aligned.
template <typename T>
struct Misaligned {
  explicit Misaligned(std::size_t n) : storage(n + 1) {}
  T* data() { return storage.data() + 1; }
  const T* data() const { return storage.data() + 1; }
  std::vector<T> storage;
};

void expect_bits_equal(const double* a, const double* b, std::size_t n,
                       const char* what) {
  EXPECT_EQ(0, std::memcmp(a, b, n * sizeof(double))) << what;
}

// ------------------------------------------------------------ column kernels

TEST(SimdKernelSweepTest, ColumnKernelsBitIdenticalAcrossTailsAndAlignment) {
  if (avx2() == nullptr) GTEST_SKIP() << "AVX2 not available";
  util::Rng rng(99);
  for (std::size_t count : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 15u, 16u, 17u, 31u}) {
    for (std::size_t n : {1u, 2u, 3u, 6u}) {
      const std::size_t stride = count + (count % 3);  // stride > count tails
      Misaligned<double> y(n * stride);
      for (std::size_t i = 0; i < n * stride; ++i)
        y.data()[i] = rng.uniform(-50.0, 50.0);
      std::vector<double> t(n), p(n), a(count), b(count);
      for (std::size_t s = 0; s < n; ++s) {
        t[s] = rng.uniform(-2.0, 2.0);
        p[s] = rng.uniform(0.5, 8.0);
      }
      for (std::size_t e = 0; e < count; ++e) {
        a[e] = rng.uniform(-3.0, 3.0);
        b[e] = rng.uniform(-3.0, 3.0);
      }

      Misaligned<double> out_s(count), out_v(count);
      scalar().col_mean(y.data(), stride, count, n, out_s.data());
      avx2()->col_mean(y.data(), stride, count, n, out_v.data());
      expect_bits_equal(out_s.data(), out_v.data(), count, "col_mean");

      const std::vector<double> mean(out_s.data(), out_s.data() + count);
      scalar().col_sst(y.data(), stride, count, n, mean.data(), out_s.data());
      avx2()->col_sst(y.data(), stride, count, n, mean.data(), out_v.data());
      expect_bits_equal(out_s.data(), out_v.data(), count, "col_sst");

      scalar().col_sxy(y.data(), stride, count, n, t.data(), mean.data(), out_s.data());
      avx2()->col_sxy(y.data(), stride, count, n, t.data(), mean.data(), out_v.data());
      expect_bits_equal(out_s.data(), out_v.data(), count, "col_sxy");

      scalar().col_sse_affine(y.data(), stride, count, n, t.data(), a.data(),
                              b.data(), out_s.data());
      avx2()->col_sse_affine(y.data(), stride, count, n, t.data(), a.data(),
                             b.data(), out_v.data());
      expect_bits_equal(out_s.data(), out_v.data(), count, "col_sse_affine");

      scalar().col_sse_affine_div(y.data(), stride, count, n, p.data(), a.data(),
                                  b.data(), out_s.data());
      avx2()->col_sse_affine_div(y.data(), stride, count, n, p.data(), a.data(),
                                 b.data(), out_v.data());
      expect_bits_equal(out_s.data(), out_v.data(), count, "col_sse_affine_div");
    }
  }
}

// ---------------------------------------------------------------- find_tag

TEST(SimdKernelSweepTest, FindTagSweepsWaysValidityAndStaleTags) {
  if (avx2() == nullptr) GTEST_SKIP() << "AVX2 not available";
  for (std::size_t ways = 1; ways <= 20; ++ways) {
    Misaligned<std::uint64_t> tags(ways);
    Misaligned<std::uint8_t> valid(ways);
    for (std::size_t w = 0; w < ways; ++w) {
      tags.data()[w] = 0xABCD0000 + w;
      valid.data()[w] = (w % 3) != 0;  // mix of valid and invalid ways
    }
    // A stale copy of the needle on an invalid way must not match.
    const std::uint64_t needle = 0xABCD0000 + (ways / 2);
    if (ways >= 3) tags.data()[0] = needle;  // way 0 is invalid (0 % 3 == 0)
    for (std::size_t probe_way = 0; probe_way <= ways; ++probe_way) {
      const std::uint64_t q =
          probe_way < ways ? 0xABCD0000 + probe_way : 0xFFFF;  // miss at == ways
      EXPECT_EQ(scalar().find_tag(tags.data(), valid.data(), ways, q),
                avx2()->find_tag(tags.data(), valid.data(), ways, q))
          << "ways=" << ways << " q=" << q;
    }
  }
}

// ------------------------------------------------------------- probe replay

/// One cache level's worth of metadata plus the probe batch, duplicated so
/// the scalar and AVX2 kernels mutate independent copies of the same state.
struct ProbeFixture {
  static constexpr std::size_t kSets = 8;
  std::size_t ways;
  Misaligned<std::uint64_t> tags;
  Misaligned<std::uint16_t> ranks;
  Misaligned<std::uint8_t> valid;
  Misaligned<std::uint8_t> dirty;

  ProbeFixture(std::size_t ways_in, util::Rng& rng, double fill_fraction)
      : ways(ways_in),
        tags(kSets * ways_in),
        ranks(kSets * ways_in),
        valid(kSets * ways_in),
        dirty(kSets * ways_in) {
    for (std::size_t s = 0; s < kSets; ++s) {
      for (std::size_t w = 0; w < ways; ++w) {
        const std::size_t i = s * ways + w;
        ranks.data()[i] = static_cast<std::uint16_t>(w);
        valid.data()[i] = rng.uniform() < fill_fraction;
        // Stale tags on invalid ways may collide with probed lines.
        tags.data()[i] = (rng.below(32) << 3) | s;
        dirty.data()[i] = valid.data()[i] != 0 && rng.uniform() < 0.5;
      }
    }
  }

  ProbeFixture(const ProbeFixture& other)
      : ways(other.ways),
        tags(kSets * other.ways),
        ranks(kSets * other.ways),
        valid(kSets * other.ways),
        dirty(kSets * other.ways) {
    const std::size_t n = kSets * ways;
    std::memcpy(tags.data(), other.tags.data(), n * sizeof(std::uint64_t));
    std::memcpy(ranks.data(), other.ranks.data(), n * sizeof(std::uint16_t));
    std::memcpy(valid.data(), other.valid.data(), n);
    std::memcpy(dirty.data(), other.dirty.data(), n);
  }

  SetView view(int lru) {
    return SetView{tags.data(), valid.data(), ranks.data(),
                   dirty.data(), kSets - 1,  static_cast<std::uint32_t>(ways),
                   lru};
  }

  void expect_equal(const ProbeFixture& other, const char* what) const {
    const std::size_t n = kSets * ways;
    EXPECT_EQ(0, std::memcmp(tags.data(), other.tags.data(), n * sizeof(std::uint64_t)))
        << what << " tags, ways=" << ways;
    EXPECT_EQ(0, std::memcmp(ranks.data(), other.ranks.data(), n * sizeof(std::uint16_t)))
        << what << " ranks, ways=" << ways;
    EXPECT_EQ(0, std::memcmp(valid.data(), other.valid.data(), n))
        << what << " valid, ways=" << ways;
    EXPECT_EQ(0, std::memcmp(dirty.data(), other.dirty.data(), n))
        << what << " dirty, ways=" << ways;
  }

  /// Ranks must stay a permutation of 0..ways-1 within every set.
  void expect_rank_permutation() const {
    for (std::size_t s = 0; s < kSets; ++s) {
      std::vector<std::uint16_t> set_ranks(ranks.data() + s * ways,
                                           ranks.data() + (s + 1) * ways);
      std::sort(set_ranks.begin(), set_ranks.end());
      for (std::size_t w = 0; w < ways; ++w)
        ASSERT_EQ(set_ranks[w], w) << "set " << s << " ways=" << ways;
    }
  }
};

/// Probe batch shared by both kernels: lines hitting the fixture's sets
/// with enough reuse that hits, misses, evictions and writebacks all occur.
struct ProbeBatch {
  std::vector<std::uint64_t> lines;
  std::vector<std::uint8_t> stores;

  ProbeBatch(std::size_t count, util::Rng& rng) {
    for (std::size_t i = 0; i < count; ++i) {
      lines.push_back((rng.below(48) << 3) | rng.below(ProbeFixture::kSets));
      stores.push_back(rng.uniform() < 0.3);
    }
  }
};

// The associativities cover both sides of every specialization boundary:
// 2/4/8 hit the unrolled AVX2 policies, 1/3/5/7/9 their scalar-tail
// neighbours, 16/17 the 16-wide rank loop with and without a tail.
const std::size_t kWaySweep[] = {1, 2, 3, 4, 5, 7, 8, 9, 12, 16, 17};

TEST(SimdKernelSweepTest, ProbeStreamBitIdenticalAcrossWaysAndPolicies) {
  if (avx2() == nullptr) GTEST_SKIP() << "AVX2 not available";
  util::Rng rng(1234);
  for (const std::size_t ways : kWaySweep) {
    for (const int lru : {1, 0}) {
      for (const double fill : {0.0, 0.6, 1.0}) {
        ProbeFixture fs(ways, rng, fill);
        ProbeFixture fv(fs);
        ProbeBatch batch(512, rng);
        std::vector<std::uint32_t> misses_s(batch.lines.size(), 0xFFFFFFFF);
        std::vector<std::uint32_t> misses_v(batch.lines.size(), 0xFFFFFFFF);

        const ProbeReplay rs = scalar().probe_stream(
            fs.view(lru), batch.lines.data(), batch.stores.data(), nullptr,
            batch.lines.size(), misses_s.data());
        const ProbeReplay rv = avx2()->probe_stream(
            fv.view(lru), batch.lines.data(), batch.stores.data(), nullptr,
            batch.lines.size(), misses_v.data());

        EXPECT_EQ(rs.hits, rv.hits) << "ways=" << ways << " lru=" << lru;
        EXPECT_EQ(rs.writebacks, rv.writebacks) << "ways=" << ways;
        ASSERT_EQ(rs.miss_count, rv.miss_count) << "ways=" << ways;
        EXPECT_EQ(misses_s, misses_v) << "ways=" << ways;
        fs.expect_equal(fv, "stream");
        fs.expect_rank_permutation();
        fv.expect_rank_permutation();
      }
    }
  }
}

TEST(SimdKernelSweepTest, ProbeStreamHonorsIndexIndirection) {
  if (avx2() == nullptr) GTEST_SKIP() << "AVX2 not available";
  util::Rng rng(77);
  for (const std::size_t ways : {2u, 8u, 16u}) {
    ProbeFixture fs(ways, rng, 0.5);
    ProbeFixture fv(fs);
    ProbeBatch batch(256, rng);
    // A sparse, shuffled survivor list — the shape the hierarchy feeds to
    // levels past L1.
    std::vector<std::uint32_t> indices;
    for (std::uint32_t i = 0; i < batch.lines.size(); i += 1 + (i % 3))
      indices.push_back(i);
    for (std::size_t i = indices.size(); i > 1; --i)
      std::swap(indices[i - 1], indices[rng.below(i)]);

    std::vector<std::uint32_t> misses_s(indices.size()), misses_v(indices.size());
    const ProbeReplay rs = scalar().probe_stream(
        fs.view(1), batch.lines.data(), batch.stores.data(), indices.data(),
        indices.size(), misses_s.data());
    const ProbeReplay rv = avx2()->probe_stream(
        fv.view(1), batch.lines.data(), batch.stores.data(), indices.data(),
        indices.size(), misses_v.data());
    EXPECT_EQ(rs.hits, rv.hits);
    ASSERT_EQ(rs.miss_count, rv.miss_count);
    misses_s.resize(rs.miss_count);
    misses_v.resize(rv.miss_count);
    EXPECT_EQ(misses_s, misses_v);
    fs.expect_equal(fv, "indexed stream");
  }
}

TEST(SimdKernelSweepTest, ProbeGroupedBitIdenticalAcrossWaysAndPolicies) {
  if (avx2() == nullptr) GTEST_SKIP() << "AVX2 not available";
  util::Rng rng(4321);
  for (const std::size_t ways : kWaySweep) {
    for (const int lru : {1, 0}) {
      ProbeFixture fs(ways, rng, 0.5);
      ProbeFixture fv(fs);
      ProbeBatch batch(512, rng);
      const std::size_t count = batch.lines.size();

      // Bucket probes by set, preserving stream order within each bucket —
      // the exact layout hierarchy.cpp's counting scatter produces.
      std::vector<std::uint32_t> set_start(ProbeFixture::kSets + 1, 0);
      for (const std::uint64_t line : batch.lines)
        ++set_start[(line & (ProbeFixture::kSets - 1)) + 1];
      for (std::size_t s = 0; s < ProbeFixture::kSets; ++s)
        set_start[s + 1] += set_start[s];
      std::vector<std::uint32_t> grouped(count);
      std::vector<std::uint32_t> cursor(set_start.begin(), set_start.end() - 1);
      for (std::uint32_t p = 0; p < count; ++p)
        grouped[cursor[batch.lines[p] & (ProbeFixture::kSets - 1)]++] = p;

      std::vector<std::uint8_t> resolved_s(count, 0), resolved_v(count, 0);
      const ProbeReplay rs = scalar().probe_grouped(
          fs.view(lru), batch.lines.data(), batch.stores.data(),
          resolved_s.data(), grouped.data(), set_start.data());
      const ProbeReplay rv = avx2()->probe_grouped(
          fv.view(lru), batch.lines.data(), batch.stores.data(),
          resolved_v.data(), grouped.data(), set_start.data());

      EXPECT_EQ(rs.hits, rv.hits) << "ways=" << ways << " lru=" << lru;
      EXPECT_EQ(rs.writebacks, rv.writebacks) << "ways=" << ways;
      EXPECT_EQ(resolved_s, resolved_v) << "ways=" << ways;
      fs.expect_equal(fv, "grouped");
      fs.expect_rank_permutation();
      fv.expect_rank_permutation();
    }
  }
}

TEST(SimdKernelSweepTest, StreamAndGroupedAgreeOnFinalState) {
  // The hierarchy picks stream or grouped replay by metadata size; both
  // must leave identical level state and counters for the same batch.
  if (avx2() == nullptr) GTEST_SKIP() << "AVX2 not available";
  util::Rng rng(555);
  for (const std::size_t ways : {2u, 4u, 8u, 16u}) {
    ProbeFixture fa(ways, rng, 0.4);
    ProbeFixture fb(fa);
    ProbeBatch batch(512, rng);
    const std::size_t count = batch.lines.size();

    std::vector<std::uint32_t> misses(count);
    const ProbeReplay ra = avx2()->probe_stream(fa.view(1), batch.lines.data(),
                                                batch.stores.data(), nullptr,
                                                count, misses.data());

    std::vector<std::uint32_t> set_start(ProbeFixture::kSets + 1, 0);
    for (const std::uint64_t line : batch.lines)
      ++set_start[(line & (ProbeFixture::kSets - 1)) + 1];
    for (std::size_t s = 0; s < ProbeFixture::kSets; ++s)
      set_start[s + 1] += set_start[s];
    std::vector<std::uint32_t> grouped(count);
    std::vector<std::uint32_t> cursor(set_start.begin(), set_start.end() - 1);
    for (std::uint32_t p = 0; p < count; ++p)
      grouped[cursor[batch.lines[p] & (ProbeFixture::kSets - 1)]++] = p;
    std::vector<std::uint8_t> resolved(count, 0);
    const ProbeReplay rb = avx2()->probe_grouped(fb.view(1), batch.lines.data(),
                                                 batch.stores.data(),
                                                 resolved.data(), grouped.data(),
                                                 set_start.data());

    EXPECT_EQ(ra.hits, rb.hits) << "ways=" << ways;
    EXPECT_EQ(ra.writebacks, rb.writebacks) << "ways=" << ways;
    // Stream reports misses as an index list, grouped as unresolved flags;
    // they must name the same probes.
    EXPECT_EQ(ra.miss_count, count - static_cast<std::size_t>(rb.hits));
    for (std::size_t m = 0; m < ra.miss_count; ++m)
      EXPECT_EQ(resolved[misses[m]], 0) << "ways=" << ways;
    fa.expect_equal(fb, "stream-vs-grouped");
  }
}

}  // namespace
}  // namespace pmacx
