// Property tests tying the set-associative simulator to the exact
// reuse-distance analysis:
//
//   * a fully-associative LRU cache of capacity C hits exactly the accesses
//     whose stack distance is < C (the Mattson inclusion theorem);
//   * LRU caches satisfy the stack property: growing a fully-associative
//     LRU cache never turns a hit into a miss;
//   * the analyzer's histogram is internally consistent under compaction.
#include <gtest/gtest.h>

#include <tuple>

#include "memsim/cache.hpp"
#include "memsim/hierarchy.hpp"
#include "memsim/reuse.hpp"
#include "synth/patterns.hpp"
#include "util/rng.hpp"

namespace pmacx {
namespace {

using memsim::ReuseDistanceAnalyzer;
using synth::Pattern;

/// Generates a line-address stream for a pattern over `lines` distinct lines.
std::vector<std::uint64_t> make_stream(Pattern pattern, std::uint64_t lines,
                                       std::size_t count, std::uint64_t seed) {
  synth::StreamSpec spec;
  spec.pattern = pattern;
  spec.base_addr = 0;
  spec.footprint_bytes = lines * 64;
  spec.elem_bytes = 64;  // one element per line keeps addresses line-aligned
  spec.stride_elems = 3;
  synth::RefStream stream(spec, seed);
  std::vector<std::uint64_t> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(stream.next().addr / 64);
  return out;
}

memsim::CacheLevelConfig fully_assoc(std::uint64_t capacity_lines) {
  memsim::CacheLevelConfig cfg;
  cfg.size_bytes = capacity_lines * 64;
  cfg.line_bytes = 64;
  cfg.associativity = 0;
  cfg.replacement = memsim::Replacement::Lru;
  return cfg;
}

// --------------------------------------------- Mattson stack equivalence ----

class StackEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<Pattern, std::uint64_t>> {};

TEST_P(StackEquivalenceTest, LruHitsEqualStackDistancePrediction) {
  const auto [pattern, capacity] = GetParam();
  const auto stream = make_stream(pattern, /*lines=*/96, /*count=*/6000, /*seed=*/17);

  memsim::CacheLevel cache(fully_assoc(capacity), 1);
  ReuseDistanceAnalyzer analyzer;
  std::uint64_t cache_hits = 0;
  for (std::uint64_t line : stream) {
    if (cache.access(line)) ++cache_hits;
    analyzer.access(line);
  }
  EXPECT_EQ(cache_hits, analyzer.hits_for_capacity(capacity))
      << synth::pattern_name(pattern) << " capacity " << capacity;
}

INSTANTIATE_TEST_SUITE_P(
    PatternsAndCapacities, StackEquivalenceTest,
    ::testing::Combine(::testing::Values(Pattern::Sequential, Pattern::Strided,
                                         Pattern::Random, Pattern::Gather,
                                         Pattern::Stencil3d),
                       ::testing::Values(4u, 16u, 64u, 128u)),
    [](const auto& info) {
      return synth::pattern_name(std::get<0>(info.param)) + "_cap" +
             std::to_string(std::get<1>(info.param));
    });

// ------------------------------------------------------- stack property ----

class StackPropertyTest : public ::testing::TestWithParam<Pattern> {};

TEST_P(StackPropertyTest, BiggerLruCacheNeverHitsLess) {
  const auto stream = make_stream(GetParam(), 80, 4000, 23);
  std::uint64_t previous_hits = 0;
  for (std::uint64_t capacity : {4, 8, 16, 32, 64, 128}) {
    memsim::CacheLevel cache(fully_assoc(capacity), 1);
    std::uint64_t hits = 0;
    for (std::uint64_t line : stream)
      if (cache.access(line)) ++hits;
    EXPECT_GE(hits, previous_hits) << "capacity " << capacity;
    previous_hits = hits;
  }
}

INSTANTIATE_TEST_SUITE_P(Patterns, StackPropertyTest,
                         ::testing::Values(Pattern::Sequential, Pattern::Strided,
                                           Pattern::Random, Pattern::Gather,
                                           Pattern::Stencil3d),
                         [](const auto& info) { return synth::pattern_name(info.param); });

// --------------------------------------------------------- reuse basics ----

TEST(ReuseTest, FirstAccessIsInfinite) {
  ReuseDistanceAnalyzer analyzer;
  EXPECT_EQ(analyzer.access(1), ReuseDistanceAnalyzer::kInfinite);
  EXPECT_EQ(analyzer.cold_accesses(), 1u);
}

TEST(ReuseTest, ImmediateReuseIsZero) {
  ReuseDistanceAnalyzer analyzer;
  analyzer.access(1);
  EXPECT_EQ(analyzer.access(1), 0u);
}

TEST(ReuseTest, DistanceCountsDistinctIntervening) {
  ReuseDistanceAnalyzer analyzer;
  analyzer.access(1);
  analyzer.access(2);
  analyzer.access(3);
  analyzer.access(2);          // lines since last 2: {3} -> distance 1
  EXPECT_EQ(analyzer.access(1), 2u);  // {2, 3}
}

TEST(ReuseTest, RepeatsDoNotInflateDistance) {
  ReuseDistanceAnalyzer analyzer;
  analyzer.access(1);
  analyzer.access(2);
  analyzer.access(2);
  analyzer.access(2);
  EXPECT_EQ(analyzer.access(1), 1u);  // only {2} intervenes
}

TEST(ReuseTest, HistogramAccounting) {
  ReuseDistanceAnalyzer analyzer;
  // Cyclic sweep over 4 lines, 5 passes: after the cold pass every access
  // has distance 3.
  for (int pass = 0; pass < 5; ++pass)
    for (std::uint64_t line = 0; line < 4; ++line) analyzer.access(line);
  EXPECT_EQ(analyzer.total_accesses(), 20u);
  EXPECT_EQ(analyzer.cold_accesses(), 4u);
  EXPECT_EQ(analyzer.count_at(3), 16u);
  EXPECT_EQ(analyzer.hits_for_capacity(4), 16u);
  EXPECT_EQ(analyzer.hits_for_capacity(3), 0u);
  EXPECT_EQ(analyzer.distinct_lines(), 4u);
}

TEST(ReuseTest, CompactionPreservesCorrectness) {
  // Long stream over a small footprint forces many compactions; distances
  // stay exact (cross-checked by the cyclic-sweep invariant).
  ReuseDistanceAnalyzer analyzer;
  const std::uint64_t lines = 50;
  const int passes = 400;  // 20000 accesses over 50 live lines
  for (int pass = 0; pass < passes; ++pass)
    for (std::uint64_t line = 0; line < lines; ++line) analyzer.access(line);
  EXPECT_EQ(analyzer.count_at(lines - 1),
            static_cast<std::uint64_t>(passes - 1) * lines);
  EXPECT_EQ(analyzer.cold_accesses(), lines);
}

TEST(ReuseTest, HitsForCapacityMonotone) {
  ReuseDistanceAnalyzer analyzer;
  util::Rng rng(3);
  for (int i = 0; i < 5000; ++i) analyzer.access(rng.below(200));
  std::uint64_t previous = 0;
  for (std::uint64_t capacity : {1, 2, 4, 8, 16, 32, 64, 128, 256}) {
    const std::uint64_t hits = analyzer.hits_for_capacity(capacity);
    EXPECT_GE(hits, previous);
    previous = hits;
  }
  EXPECT_EQ(analyzer.hits_for_capacity(1u << 30),
            analyzer.total_accesses() - analyzer.cold_accesses());
}

}  // namespace
}  // namespace pmacx
