// Tests for the SoA batch fitting path: the util::simd kernels (scalar vs
// AVX2 bit identity over alignment/tail sweeps), the arena allocator the
// batches stage through, and BatchFitter's per-series identity contract
// against fit_all/selection_scores over adversarial inputs.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "stats/batch.hpp"
#include "stats/bayes.hpp"
#include "stats/canonical.hpp"
#include "util/arena.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

namespace pmacx {
namespace {

using stats::BatchFitter;
using stats::FitOptions;
using stats::FittedModel;
using stats::Form;
using util::simd::Kernels;
using util::simd::Level;

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// Bit equality — catches -0.0 vs 0.0 and treats any two NaNs as equal,
/// which is exactly the "byte identical" contract the SIMD layer promises.
bool bits_equal(double a, double b) {
  std::uint64_t ba, bb;
  std::memcpy(&ba, &a, sizeof a);
  std::memcpy(&bb, &b, sizeof b);
  if (ba == bb) return true;
  return std::isnan(a) && std::isnan(b);
}

#define EXPECT_BITS_EQ(a, b) \
  EXPECT_PRED2(bits_equal, (a), (b)) << "values " << (a) << " vs " << (b)

// ------------------------------------------------------------ simd kernels ----

/// Deterministic "interesting" doubles: mixes magnitudes, signs, exact
/// zeros, and denormal-ish values so accumulation order differences show.
double poke(util::Rng& rng) {
  switch (rng.below(8)) {
    case 0: return 0.0;
    case 1: return -1.0;
    case 2: return 1e-12;
    case 3: return 1e12;
    default:
      return (static_cast<double>(rng.below(1u << 20)) - (1u << 19)) / 1024.0;
  }
}

/// Runs every column kernel at both levels over `count` series x `n`
/// samples with buffers offset by `misalign` doubles (arena allocations are
/// always 32-byte aligned, so unaligned bases are forged with raw offsets),
/// expecting bit identity.  Covers vector-width tails (count % 4) too.
void check_column_kernels(std::size_t count, std::size_t n, std::size_t misalign) {
  const Kernels& scalar = util::simd::scalar_kernels();
  const Kernels* avx2 = util::simd::avx2_kernels();
  if (avx2 == nullptr) GTEST_SKIP() << "AVX2 kernels not available in this build/CPU";

  const std::size_t stride = count + (count % 3);  // stride > count sometimes
  std::vector<double> y_store(misalign + n * stride);
  std::vector<double> t_store(misalign + n);
  std::vector<double> a_store(misalign + count);
  std::vector<double> b_store(misalign + count);
  double* y = y_store.data() + misalign;
  double* t = t_store.data() + misalign;
  double* a = a_store.data() + misalign;
  double* b = b_store.data() + misalign;
  util::Rng rng(7u * count + n + misalign);
  for (std::size_t i = 0; i < n * stride; ++i) y[i] = poke(rng);
  for (std::size_t i = 0; i < n; ++i) t[i] = 1.0 + static_cast<double>(rng.below(64));
  for (std::size_t e = 0; e < count; ++e) {
    a[e] = poke(rng);
    b[e] = poke(rng);
  }

  std::vector<double> got(count, -7.0), want(count, -7.0);
  scalar.col_mean(y, stride, count, n, want.data());
  avx2->col_mean(y, stride, count, n, got.data());
  for (std::size_t e = 0; e < count; ++e) EXPECT_BITS_EQ(got[e], want[e]);

  // col_sst/col_sxy take the means the previous kernel produced.
  std::vector<double> mean = want;
  scalar.col_sst(y, stride, count, n, mean.data(), want.data());
  avx2->col_sst(y, stride, count, n, mean.data(), got.data());
  for (std::size_t e = 0; e < count; ++e) EXPECT_BITS_EQ(got[e], want[e]);

  scalar.col_sxy(y, stride, count, n, t, mean.data(), want.data());
  avx2->col_sxy(y, stride, count, n, t, mean.data(), got.data());
  for (std::size_t e = 0; e < count; ++e) EXPECT_BITS_EQ(got[e], want[e]);

  scalar.col_sse_affine(y, stride, count, n, t, a, b, want.data());
  avx2->col_sse_affine(y, stride, count, n, t, a, b, got.data());
  for (std::size_t e = 0; e < count; ++e) EXPECT_BITS_EQ(got[e], want[e]);

  scalar.col_sse_affine_div(y, stride, count, n, t, a, b, want.data());
  avx2->col_sse_affine_div(y, stride, count, n, t, a, b, got.data());
  for (std::size_t e = 0; e < count; ++e) EXPECT_BITS_EQ(got[e], want[e]);
}

TEST(SimdKernelTest, ColumnKernelsBitIdenticalAcrossCountsAndTails) {
  // Counts straddle the 4-lane vector width: empty, sub-width, exact
  // multiples, and width±1 tails.
  for (std::size_t count : {0u, 1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 16u, 17u})
    for (std::size_t n : {1u, 2u, 3u, 5u, 8u}) check_column_kernels(count, n, 0);
}

TEST(SimdKernelTest, ColumnKernelsBitIdenticalAtUnalignedBases) {
  for (std::size_t misalign : {1u, 2u, 3u})
    for (std::size_t count : {3u, 4u, 5u, 8u, 9u}) check_column_kernels(count, 6, misalign);
}

TEST(SimdKernelTest, FindTagMatchesScalarIncludingStaleCollisions) {
  const Kernels& scalar = util::simd::scalar_kernels();
  const Kernels* avx2 = util::simd::avx2_kernels();
  if (avx2 == nullptr) GTEST_SKIP() << "AVX2 kernels not available in this build/CPU";

  util::Rng rng(99);
  for (std::size_t ways = 1; ways <= 12; ++ways) {
    for (int round = 0; round < 200; ++round) {
      std::vector<std::uint64_t> tags(ways);
      std::vector<std::uint8_t> valid(ways);
      for (std::size_t w = 0; w < ways; ++w) {
        tags[w] = rng.below(8);  // small range forces duplicate tags
        valid[w] = static_cast<std::uint8_t>(rng.below(2));
      }
      const std::uint64_t needle = rng.below(8);
      const int want = scalar.find_tag(tags.data(), valid.data(), ways, needle);
      const int got = avx2->find_tag(tags.data(), valid.data(), ways, needle);
      ASSERT_EQ(got, want) << "ways=" << ways << " round=" << round;
    }
    // The adversarial shape the valid mask exists for: an invalid way holds
    // a stale copy of the needle ahead of the real valid match.
    std::vector<std::uint64_t> tags(ways, 42);
    std::vector<std::uint8_t> valid(ways, 0);
    valid[ways - 1] = 1;
    EXPECT_EQ(avx2->find_tag(tags.data(), valid.data(), ways, 42),
              static_cast<int>(ways) - 1);
    EXPECT_EQ(avx2->find_tag(tags.data(), valid.data(), ways, 7), -1);
  }
}

TEST(SimdKernelTest, ForceLevelClampsAndRestores) {
  const Level restored = util::simd::active_level();
  EXPECT_EQ(util::simd::force_level(Level::Scalar), Level::Scalar);
  EXPECT_EQ(util::simd::active_level(), Level::Scalar);
  EXPECT_EQ(util::simd::kernels().level, Level::Scalar);
  // An Avx2 request clamps to what the build/CPU can honour.
  const Level forced = util::simd::force_level(Level::Avx2);
  EXPECT_EQ(forced, util::simd::avx2_available() ? Level::Avx2 : Level::Scalar);
  EXPECT_EQ(util::simd::kernels().level, forced);
  util::simd::clear_forced_level();
  EXPECT_EQ(util::simd::active_level(), restored);
}

// ------------------------------------------------------------------- arena ----

TEST(ArenaTest, AllocationsAre32ByteAligned) {
  util::Arena arena;
  for (std::size_t size : {1u, 3u, 7u, 31u, 33u, 255u}) {
    auto p = reinterpret_cast<std::uintptr_t>(arena.allocate<std::uint8_t>(size));
    EXPECT_EQ(p % util::Arena::kAlignment, 0u) << "size " << size;
    auto d = reinterpret_cast<std::uintptr_t>(arena.allocate<double>(size));
    EXPECT_EQ(d % util::Arena::kAlignment, 0u) << "size " << size;
  }
}

TEST(ArenaTest, ResetReusesTheSameStorage) {
  util::Arena arena;
  double* first = arena.allocate<double>(1000);
  first[0] = 1.0;
  arena.reset();
  double* again = arena.allocate<double>(1000);
  EXPECT_EQ(again, first) << "reset must retain and reuse the chunk";
}

TEST(ArenaTest, OversizedAllocationsGetTheirOwnChunk) {
  util::Arena arena;
  // Much larger than the default chunk: must still succeed and be aligned.
  const std::size_t huge = util::Arena::kDefaultChunkBytes * 3 / sizeof(double);
  double* p = arena.allocate<double>(huge);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % util::Arena::kAlignment, 0u);
  p[0] = 1.0;
  p[huge - 1] = 2.0;
  EXPECT_EQ(p[0] + p[huge - 1], 3.0);
}

// ------------------------------------------------------------- batch fitter ----

void expect_model_identical(const FittedModel& got, const FittedModel& want,
                            const std::string& context) {
  EXPECT_EQ(got.form, want.form) << context;
  EXPECT_EQ(got.ok, want.ok) << context;
  for (int k = 0; k < 3; ++k)
    EXPECT_BITS_EQ(got.params[k], want.params[k]) << context << " param " << k;
  EXPECT_BITS_EQ(got.sse, want.sse) << context;
  EXPECT_BITS_EQ(got.r2, want.r2) << context;
}

/// The identity oracle: fits `series` (series-major, series[e][s]) through
/// BatchFitter and through fit_all/selection_scores per series, and demands
/// bit equality — models, scores, and metric counter totals.
void check_batch_identity(const std::vector<double>& axis,
                          const std::vector<std::vector<double>>& series,
                          const FitOptions& opts, const std::string& context) {
  const std::size_t count = series.size();
  const std::size_t n = axis.size();
  const std::size_t forms = opts.forms.size();

  // Transpose to the sample-major SoA layout, with a stride > count to
  // prove the kernels honour it.
  const std::size_t stride = count + 2;
  std::vector<double> y(n * stride, kNaN);
  for (std::size_t s = 0; s < n; ++s)
    for (std::size_t e = 0; e < count; ++e) y[s * stride + e] = series[e][s];

  auto counter_values = [&] {
    std::vector<std::uint64_t> values;
    for (Form form : opts.forms)
      values.push_back(util::metrics::Registry::global()
                           .counter("fits.attempted." + stats::form_name(form))
                           .value());
    values.push_back(util::metrics::Registry::global()
                         .counter("fits.zero_dropped_samples")
                         .value());
    return values;
  };

  const auto before_batch = counter_values();
  BatchFitter fitter(axis, opts);
  util::Arena arena;
  std::vector<FittedModel> candidates(count * forms);
  std::vector<double> scores(count * forms);
  fitter.fit(y.data(), stride, count, candidates.data(), scores.data(), arena);
  const auto after_batch = counter_values();

  const auto before_scalar = counter_values();
  for (std::size_t e = 0; e < count; ++e) {
    const auto want = stats::fit_all(axis, series[e], opts);
    const auto want_scores = stats::selection_scores(want, axis, series[e], opts);
    ASSERT_EQ(want.size(), forms);
    for (std::size_t f = 0; f < forms; ++f) {
      const std::string at =
          context + " series " + std::to_string(e) + " form " +
          stats::form_name(opts.forms[f]);
      expect_model_identical(candidates[e * forms + f], want[f], at);
      EXPECT_BITS_EQ(scores[e * forms + f], want_scores[f]) << at;
    }
  }
  const auto after_scalar = counter_values();

  // Same attempted-fit and zero-dropped tallies, batch vs per-series.
  for (std::size_t i = 0; i < before_batch.size(); ++i)
    EXPECT_EQ(after_batch[i] - before_batch[i], after_scalar[i] - before_scalar[i])
        << context << " metric index " << i;
}

/// Adversarial series portfolio over `axis`: every shape that exercises a
/// different branch of the scalar fitter.
std::vector<std::vector<double>> portfolio(const std::vector<double>& axis) {
  const std::size_t n = axis.size();
  std::vector<std::vector<double>> series;
  auto gen = [&](auto fn) {
    std::vector<double> s(n);
    for (std::size_t i = 0; i < n; ++i) s[i] = fn(axis[i]);
    series.push_back(std::move(s));
  };
  gen([](double) { return 42.5; });                          // constant
  gen([](double p) { return 3.0 + 2.0 * p; });               // linear
  gen([](double p) { return 1.5 + 4.0 * std::log(p); });     // logarithmic
  gen([](double p) { return 2.0 * std::exp(0.01 * p); });    // exponential
  gen([](double p) { return 3.0 * std::pow(p, 1.7); });      // power
  gen([](double p) { return 5.0 + 80.0 / p; });              // inverse-p
  gen([](double p) { return -2.0 * std::pow(p, 0.5); });     // all-negative power
  gen([](double p) { return p - 40.0; });                    // mixed sign
  gen([](double) { return 0.0; });                           // all zeros
  gen([](double p) { return p > 20.0 ? 0.0 : 3.0 * p; });    // some zeros
  gen([](double p) { return p > 20.0 ? kNaN : p; });         // NaN poisoned
  gen([](double p) { return 1e306 * p; });                   // overflow-prone
  gen([](double p) { return 1e-300 / p; });                  // underflow-prone
  util::Rng rng(5);
  gen([&](double) { return poke(rng); });                    // noise
  return series;
}

TEST(BatchFitterTest, MatchesScalarFitsOverAdversarialPortfolio) {
  const std::vector<double> axis = {8.0, 16.0, 32.0, 64.0};
  check_batch_identity(axis, portfolio(axis), FitOptions{}, "default opts");
}

TEST(BatchFitterTest, MatchesScalarAtEveryBatchWidthTail) {
  const std::vector<double> axis = {4.0, 8.0, 12.0, 24.0, 48.0};
  const auto all = portfolio(axis);
  // Batch widths straddling the 4-lane width, including empty.
  for (std::size_t count : {0u, 1u, 3u, 4u, 5u, 8u, 9u}) {
    std::vector<std::vector<double>> subset;
    for (std::size_t e = 0; e < count; ++e) subset.push_back(all[e % all.size()]);
    check_batch_identity(axis, subset, FitOptions{},
                         "width " + std::to_string(count));
  }
}

TEST(BatchFitterTest, MatchesScalarWithQuadraticAndAllForms) {
  const std::vector<double> axis = {2.0, 4.0, 8.0, 16.0, 32.0};
  FitOptions opts;
  opts.forms.assign(stats::all_forms().begin(), stats::all_forms().end());
  check_batch_identity(axis, portfolio(axis), opts, "all forms");
}

TEST(BatchFitterTest, MatchesScalarUnderLooCvAndAicc) {
  const std::vector<double> long_axis = {2.0, 4.0, 8.0, 16.0, 32.0, 64.0};
  const std::vector<double> short_axis = {8.0, 16.0, 32.0};  // LooCv downgrades
  for (auto criterion : {stats::SelectionCriterion::LooCv, stats::SelectionCriterion::Aicc}) {
    FitOptions opts;
    opts.criterion = criterion;
    check_batch_identity(long_axis, portfolio(long_axis), opts, "criterion long");
    check_batch_identity(short_axis, portfolio(short_axis), opts, "criterion short");
  }
}

TEST(BatchFitterTest, MatchesScalarOnMinimalAndDegenerateAxes) {
  // Two samples: every form is exactly determined or underdetermined.
  const std::vector<double> two = {16.0, 64.0};
  check_batch_identity(two, portfolio(two), FitOptions{}, "n=2");
  // A degenerate axis (sxx == 0) routes the whole batch to scalar fallback.
  const std::vector<double> flat = {32.0, 32.0, 32.0};
  check_batch_identity(flat, portfolio(flat), FitOptions{}, "degenerate axis");
}

TEST(BatchFitterTest, IdenticalAtBothForcedLevels) {
  const std::vector<double> axis = {8.0, 16.0, 32.0, 64.0};
  const auto series = portfolio(axis);
  util::simd::force_level(Level::Scalar);
  check_batch_identity(axis, series, FitOptions{}, "forced scalar");
  if (util::simd::avx2_available()) {
    util::simd::force_level(Level::Avx2);
    check_batch_identity(axis, series, FitOptions{}, "forced avx2");
  }
  util::simd::clear_forced_level();
}

TEST(BatchFitterTest, CountsSimdBatches) {
  if (!util::simd::avx2_available()) GTEST_SKIP() << "AVX2 not available";
  util::simd::force_level(Level::Avx2);
  auto& counter = util::metrics::Registry::global().counter("fits.simd_batches");
  const std::uint64_t before = counter.value();
  const std::vector<double> axis = {8.0, 16.0, 32.0};
  const std::vector<double> flat_y = {1.0, 2.0, 3.0};
  std::vector<double> y(axis.size());
  for (std::size_t s = 0; s < axis.size(); ++s) y[s] = flat_y[s];
  BatchFitter fitter(axis, FitOptions{});
  util::Arena arena;
  std::vector<FittedModel> candidates(fitter.form_count());
  std::vector<double> scores(fitter.form_count());
  fitter.fit(y.data(), 1, 1, candidates.data(), scores.data(), arena);
  EXPECT_EQ(counter.value(), before + 1);
  util::simd::clear_forced_level();
}

TEST(BatchFitterTest, BayesMapAgreesWithSelectBestOverBatchCandidates) {
  // The interval path reuses the batch-fitted candidates directly
  // (posterior_from does no refitting), so on the golden generating series
  // the Bayesian MAP under a flat noise prior must name the same winning
  // form as select_best — and leave the point path bit-identical.
  const std::vector<double> axis = {8.0, 16.0, 32.0, 64.0, 128.0};
  std::vector<std::vector<double>> series;
  auto gen = [&](auto fn) {
    std::vector<double> s(axis.size());
    for (std::size_t i = 0; i < axis.size(); ++i) s[i] = fn(axis[i]);
    series.push_back(std::move(s));
  };
  gen([](double) { return 42.5; });                        // constant
  gen([](double p) { return 3.0 + 2.0 * p; });             // linear
  gen([](double p) { return 1.5 + 4.0 * std::log(p); });   // logarithmic
  gen([](double p) { return 2.0 * std::exp(0.01 * p); });  // exponential
  gen([](double p) { return 3.0 * std::pow(p, 1.7); });    // power
  gen([](double p) { return 5.0 + 80.0 / p; });            // inverse-p

  const FitOptions opts;
  const std::size_t count = series.size();
  const std::size_t forms = opts.forms.size();
  std::vector<double> y(axis.size() * count);
  for (std::size_t s = 0; s < axis.size(); ++s)
    for (std::size_t e = 0; e < count; ++e) y[s * count + e] = series[e][s];
  BatchFitter fitter(axis, opts);
  util::Arena arena;
  std::vector<FittedModel> candidates(count * forms);
  std::vector<double> scores(count * forms);
  fitter.fit(y.data(), count, count, candidates.data(), scores.data(), arena);

  for (std::size_t e = 0; e < count; ++e) {
    const std::span<const FittedModel> mine(candidates.data() + e * forms, forms);
    const FittedModel point = stats::select_best(axis, series[e], opts);
    const auto posterior = stats::bayes::posterior_from(mine, axis, series[e]);
    ASSERT_TRUE(posterior.ok) << "series " << e;
    EXPECT_EQ(posterior.map_model().form, point.form) << "series " << e;
    for (int k = 0; k < 3; ++k)
      EXPECT_BITS_EQ(posterior.map_model().params[k], point.params[k])
          << "series " << e << " param " << k;
    // Point path untouched by the posterior: select_from over the same
    // candidates still returns the identical model.
    const std::span<const double> my_scores(scores.data() + e * forms, forms);
    expect_model_identical(
        stats::select_from(mine, my_scores, axis, series[e], opts), point,
        "series " + std::to_string(e));
  }
}

}  // namespace
}  // namespace pmacx
