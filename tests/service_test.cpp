// pmacx::service tests: the byte-bounded single-flight LRU, the
// content-addressed model store, and the in-process server end-to-end —
// including the golden equivalence contract (server responses byte-identical
// to direct library calls), BUSY load shedding, and concurrent clients
// (run under TSan by the CI matrix).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/extrapolator.hpp"
#include "machine/profile.hpp"
#include "machine/targets.hpp"
#include "psins/predictor.hpp"
#include "service/chaos.hpp"
#include "service/client.hpp"
#include "service/model_store.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "synth/registry.hpp"
#include "trace/binary_io.hpp"
#include "trace/task_trace.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"

namespace pmacx {
namespace {

using trace::BlockElement;
using trace::TaskTrace;

/// A small trace with known scaling laws, named after a real synthetic app
/// so the PREDICT path can rebuild its communication timelines.
TaskTrace law_trace(double p) {
  TaskTrace task;
  task.app = "specfem3d";
  task.core_count = static_cast<std::uint32_t>(p);
  task.target_system = "bluewaters-p1";

  trace::BasicBlockRecord block;
  block.id = 1;
  block.location = {"solver.c", 10, "solve"};
  block.set(BlockElement::VisitCount, 42.0);
  block.set(BlockElement::MemLoads, 1e10 / p);
  block.set(BlockElement::MemStores, 4e9 / p);
  block.set(BlockElement::BytesPerRef, 8.0);
  block.set(BlockElement::HitRateL1, 0.4);
  block.set(BlockElement::HitRateL2, 0.5 + 0.00004 * p);
  block.set(BlockElement::HitRateL3, 0.95);
  block.set(BlockElement::WorkingSetBytes, 4.6e9 / p);
  block.set(BlockElement::Ilp, 3.5);
  block.set(BlockElement::DepChainLength, 6.0);
  task.blocks.push_back(block);

  trace::BasicBlockRecord reduction;
  reduction.id = 2;
  reduction.location = {"reduce.c", 2, "reduce"};
  reduction.set(BlockElement::VisitCount, 10.0);
  reduction.set(BlockElement::MemLoads, 4096.0 * (1.0 + std::log2(p)));
  reduction.set(BlockElement::BytesPerRef, 8.0);
  reduction.set(BlockElement::HitRateL1, 0.99);
  reduction.set(BlockElement::HitRateL2, 0.99);
  reduction.set(BlockElement::HitRateL3, 0.99);
  reduction.set(BlockElement::Ilp, 2.0);
  reduction.set(BlockElement::DepChainLength, 3.0);
  task.blocks.push_back(reduction);
  task.sort_blocks();
  return task;
}

/// Writes the law series to disk once per process; the store addresses
/// content, so reusing the files across tests is what a server sees anyway.
std::vector<std::string> law_trace_files() {
  static std::vector<std::string> paths = [] {
    std::vector<std::string> created;
    for (double p : {16.0, 32.0, 64.0}) {
      const std::string path =
          testing::TempDir() + "service_law_" + std::to_string(static_cast<int>(p)) +
          ".trace";
      law_trace(p).save(path);
      created.push_back(path);
    }
    return created;
  }();
  return paths;
}

service::Request extrapolate_request(std::uint32_t target_cores) {
  service::Request request;
  request.type = service::MsgType::Extrapolate;
  request.spec.trace_paths = law_trace_files();
  request.target_cores = target_cores;
  return request;
}

service::Request predict_request(std::uint32_t target_cores) {
  service::Request request = extrapolate_request(target_cores);
  request.type = service::MsgType::Predict;
  request.app = "specfem3d";
  request.work_scale = 1.0;
  request.machine_target = "bluewaters-p1";
  return request;
}

// ---------------------------------------------------------------------------
// LruCache

TEST(LruCacheTest, EvictsColdEntriesToStayUnderBudget) {
  service::LruCache<int> cache(3 * sizeof(int), [](const int&) { return sizeof(int); });
  int loads = 0;
  auto loader = [&loads]() {
    ++loads;
    return std::make_shared<const int>(loads);
  };
  cache.get_or_load("a", loader);
  cache.get_or_load("b", loader);
  cache.get_or_load("c", loader);
  EXPECT_EQ(cache.entries(), 3u);
  EXPECT_EQ(cache.bytes(), 3 * sizeof(int));

  cache.get_or_load("a", loader);  // refresh "a" so "b" is now coldest
  cache.get_or_load("d", loader);  // over budget: evicts "b"
  EXPECT_EQ(cache.entries(), 3u);
  EXPECT_EQ(loads, 4);

  cache.get_or_load("a", loader);  // survived the eviction: hit
  cache.get_or_load("c", loader);  // hit
  EXPECT_EQ(loads, 4);

  cache.get_or_load("b", loader);  // was evicted: reload, which evicts "d"
  EXPECT_EQ(loads, 5);
  cache.get_or_load("d", loader);
  EXPECT_EQ(loads, 6);
  EXPECT_EQ(cache.entries(), 3u);
  EXPECT_EQ(cache.bytes(), 3 * sizeof(int));
}

TEST(LruCacheTest, SingleFlightRunsLoaderOnceUnderContention) {
  service::LruCache<std::string> cache(1 << 20,
                                       [](const std::string& s) { return s.size(); });
  std::atomic<int> loads{0};
  auto loader = [&loads]() {
    loads.fetch_add(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    return std::make_shared<const std::string>("value");
  };

  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::atomic<int> ok{0};
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      auto value = cache.get_or_load("shared", loader);
      if (value && *value == "value") ok.fetch_add(1);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(loads.load(), 1) << "concurrent loads must coalesce";
  EXPECT_EQ(ok.load(), kThreads);
}

TEST(LruCacheTest, FailedLoadPropagatesAndLeavesNoEntry) {
  service::LruCache<int> cache(1 << 20, [](const int&) { return sizeof(int); });
  EXPECT_THROW(cache.get_or_load(
                   "bad", []() -> std::shared_ptr<const int> {
                     throw util::Error("loader failed");
                   }),
               util::Error);
  EXPECT_EQ(cache.entries(), 0u);
  // The key is retryable: a later good loader succeeds.
  auto value = cache.get_or_load("bad", [] { return std::make_shared<const int>(7); });
  ASSERT_NE(value, nullptr);
  EXPECT_EQ(*value, 7);
}

// ---------------------------------------------------------------------------
// ModelStore

TEST(ModelStoreTest, DigestIsContentAddressed) {
  service::ModelStore store;
  const auto paths = law_trace_files();
  core::ExtrapolationOptions options;

  const std::string digest = store.digest(paths, options);
  EXPECT_EQ(digest.size(), 16u);
  EXPECT_EQ(digest, store.digest(paths, options)) << "digest must be deterministic";

  core::ExtrapolationOptions loo = options;
  loo.fit.criterion = stats::SelectionCriterion::LooCv;
  EXPECT_NE(digest, store.digest(paths, loo)) << "options are part of the address";

  // Same bytes under a different file name → same digest (content, not path).
  const std::string copy = testing::TempDir() + "service_law_copy.trace";
  {
    std::ifstream in(paths[0], std::ios::binary);
    std::ofstream out(copy, std::ios::binary);
    out << in.rdbuf();
  }
  auto renamed = paths;
  renamed[0] = copy;
  EXPECT_EQ(digest, store.digest(renamed, options));

  // Different content → different digest.
  const std::string other = testing::TempDir() + "service_law_other.trace";
  law_trace(17).save(other);
  auto changed = paths;
  changed[0] = other;
  EXPECT_NE(digest, store.digest(changed, options));
}

TEST(ModelStoreTest, ExtrapolateMatchesDirectCallByteForByte) {
  service::ModelStore store;
  const auto paths = law_trace_files();
  core::ExtrapolationOptions options;

  const auto models = store.models_for(paths, options);
  ASSERT_NE(models.models, nullptr);
  EXPECT_GT(models.models->memory_bytes(), 0u);
  const core::ExtrapolationResult cached = store.extrapolate(models, 256);

  std::vector<TaskTrace> inputs;
  for (const auto& path : paths) inputs.push_back(TaskTrace::load(path));
  const core::ExtrapolationResult direct = core::extrapolate_task(inputs, 256, options);

  EXPECT_EQ(trace::to_binary(cached.trace), trace::to_binary(direct.trace));
}

TEST(ModelStoreTest, RepeatedQueriesHitTheCache) {
  service::ModelStore store;
  const auto paths = law_trace_files();
  core::ExtrapolationOptions options;

  const auto first = store.models_for(paths, options);
  const service::StoreStats before = store.stats();
  for (int i = 0; i < 5; ++i) {
    const auto again = store.models_for(paths, options);
    EXPECT_EQ(again.models.get(), first.models.get()) << "must be the same cached set";
  }
  const service::StoreStats after = store.stats();
  // Each repeat hits the three trace slots (for the digest) and the model
  // slot — and never misses.
  EXPECT_GE(after.hits - before.hits, 5u * 4u);
  EXPECT_EQ(after.misses, before.misses);
}

// ---------------------------------------------------------------------------
// Server end-to-end

service::ServerOptions test_server_options() {
  service::ServerOptions options;
  options.port = 0;       // ephemeral
  options.threads = 2;
  options.request_timeout_ms = 120'000;  // generous: CI sanitizer builds are slow
  return options;
}

service::ClientOptions client_for(const service::Server& server) {
  service::ClientOptions options;
  options.port = server.port();
  options.io_timeout_ms = 120'000;
  return options;
}

TEST(ServiceServerTest, ExtrapolateResponseIsByteIdenticalToLibraryCall) {
  service::Server server(test_server_options());
  server.start();
  service::Client client(client_for(server));

  const service::Request request = extrapolate_request(256);
  const service::Response response = client.call(request);
  ASSERT_EQ(response.status, service::Status::Ok) << response.body;

  std::vector<TaskTrace> inputs;
  for (const auto& path : request.spec.trace_paths) inputs.push_back(TaskTrace::load(path));
  const core::ExtrapolationResult direct =
      core::extrapolate_task(inputs, 256, request.spec.to_options());
  EXPECT_EQ(response.body, trace::to_binary(direct.trace));

  // The body is a valid binary trace a client can load and validate.
  const TaskTrace round_trip = trace::from_binary(response.body);
  round_trip.validate();
  EXPECT_EQ(round_trip.core_count, 256u);
  EXPECT_TRUE(round_trip.extrapolated);
}

TEST(ServiceServerTest, PredictResponseIsByteIdenticalToLibraryCall) {
  service::Server server(test_server_options());
  server.start();
  service::Client client(client_for(server));

  const service::Request request = predict_request(128);
  const service::Response response = client.call(request);
  ASSERT_EQ(response.status, service::Status::Ok) << response.body;

  // Replicate pmacx_predict's pipeline directly.
  std::vector<TaskTrace> inputs;
  for (const auto& path : request.spec.trace_paths) inputs.push_back(TaskTrace::load(path));
  core::ExtrapolationResult direct =
      core::extrapolate_task(inputs, 128, request.spec.to_options());
  const auto app = synth::make_app("specfem3d", 1.0);
  trace::AppSignature signature;
  signature.app = direct.trace.app;
  signature.core_count = 128;
  signature.target_system = direct.trace.target_system;
  signature.demanding_rank = direct.trace.rank;
  signature.tasks.push_back(direct.trace);
  for (std::uint32_t rank = 0; rank < 128; ++rank)
    signature.comm.push_back(app->comm_trace(128, rank));
  const machine::MachineProfile profile =
      machine::build_profile(machine::target_by_name("bluewaters-p1"));
  const psins::PredictionResult prediction = psins::predict(signature, profile);

  EXPECT_EQ(response.body, psins::render_prediction(signature.demanding_task(),
                                                    "bluewaters-p1", prediction));

  // Repeats are served from the signature cache — and must not change.
  const service::Response again = client.call(request);
  ASSERT_EQ(again.status, service::Status::Ok);
  EXPECT_EQ(again.body, response.body);
}

TEST(ServiceServerTest, PredictIntervalResponseIsByteIdenticalToLibraryCall) {
  service::Server server(test_server_options());
  server.start();
  service::Client client(client_for(server));

  service::Request request = extrapolate_request(256);
  request.type = service::MsgType::PredictInterval;
  request.interval_coverage = 0.9;
  const service::Response response = client.call(request);
  ASSERT_EQ(response.status, service::Status::Ok) << response.body;

  // Replicate the interval pipeline directly: cached fits, then the
  // interval-mode evaluation at the target.
  std::vector<TaskTrace> inputs;
  for (const auto& path : request.spec.trace_paths) inputs.push_back(TaskTrace::load(path));
  const core::TaskModelSet models =
      core::fit_task_models(inputs, request.spec.to_options());
  const core::ExtrapolationResult direct =
      core::extrapolate_from_models(models, 256, 0.9);
  ASSERT_TRUE(direct.has_interval);
  service::IntervalResult expected;
  expected.lo = trace::to_binary(direct.trace_lo);
  expected.median = trace::to_binary(direct.trace_median);
  expected.hi = trace::to_binary(direct.trace_hi);
  expected.report_csv = direct.report.to_csv();
  EXPECT_EQ(response.body, service::encode_interval_result(expected));

  // The body decodes into three loadable, validated traces with ordered
  // quantiles on a known element.
  const service::IntervalResult decoded =
      service::decode_interval_result(response.body);
  const TaskTrace lo = trace::from_binary(decoded.lo);
  const TaskTrace median = trace::from_binary(decoded.median);
  const TaskTrace hi = trace::from_binary(decoded.hi);
  lo.validate();
  median.validate();
  hi.validate();
  EXPECT_EQ(median.core_count, 256u);
  EXPECT_TRUE(median.extrapolated);
  ASSERT_EQ(lo.blocks.size(), hi.blocks.size());
  for (std::size_t b = 0; b < lo.blocks.size(); ++b) {
    EXPECT_LE(lo.blocks[b].get(BlockElement::MemLoads),
              hi.blocks[b].get(BlockElement::MemLoads) + 1e-9);
    EXPECT_LE(lo.blocks[b].get(BlockElement::HitRateL2),
              hi.blocks[b].get(BlockElement::HitRateL2) + 1e-12);
  }

  // Repeats come from the interval cache and must not change a byte; the
  // point path stays untouched by interval queries.
  const service::Response again = client.call(request);
  ASSERT_EQ(again.status, service::Status::Ok);
  EXPECT_EQ(again.body, response.body);
  const service::Response point = client.call(extrapolate_request(256));
  ASSERT_EQ(point.status, service::Status::Ok) << point.body;
  const core::ExtrapolationResult point_direct =
      core::extrapolate_from_models(models, 256);
  EXPECT_EQ(point.body, trace::to_binary(point_direct.trace));
}

TEST(ServiceServerTest, ZeroInFlightLimitShedsWithBusy) {
  service::ServerOptions options = test_server_options();
  options.max_in_flight = 0;
  service::Server server(options);
  server.start();
  service::Client client(client_for(server));

  const service::Response shed = client.call(extrapolate_request(256));
  EXPECT_EQ(shed.status, service::Status::Busy) << shed.body;

  // Control plane still answers on a saturated server.
  service::Request status;
  status.type = service::MsgType::Status;
  const service::Response alive = client.call(status);
  EXPECT_EQ(alive.status, service::Status::Ok);
  EXPECT_NE(alive.body.find("in_flight"), std::string::npos);
}

TEST(ServiceServerTest, MalformedFrameGetsErrorResponseNotCrash) {
  service::Server server(test_server_options());
  server.start();

  // The Client API never produces a bad frame, so speak raw sockets: send a
  // frame whose payload got a bit flipped in transit.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)), 0);

  std::string damaged = service::encode_request(extrapolate_request(256));
  damaged[service::kHeaderSize + 2] ^= 0x40;
  ASSERT_EQ(::send(fd, damaged.data(), damaged.size(), 0),
            static_cast<ssize_t>(damaged.size()));

  // The server answers with an Error frame, then drops the connection.
  std::string reply(service::kHeaderSize, '\0');
  std::size_t got = 0;
  while (got < reply.size()) {
    const ssize_t n = ::recv(fd, reply.data() + got, reply.size() - got, 0);
    ASSERT_GT(n, 0) << "server must answer a corrupt frame, not just hang up";
    got += static_cast<std::size_t>(n);
  }
  const std::size_t payload_size = service::frame_payload_size(reply);
  std::string rest(payload_size + 4, '\0');
  got = 0;
  while (got < rest.size()) {
    const ssize_t n = ::recv(fd, rest.data() + got, rest.size() - got, 0);
    ASSERT_GT(n, 0);
    got += static_cast<std::size_t>(n);
  }
  ::close(fd);
  const service::Response response =
      service::decode_response(service::decode_frame(reply + rest));
  EXPECT_EQ(response.status, service::Status::Error);
  EXPECT_NE(response.body.find("crc"), std::string::npos) << response.body;

  // The server survives: a fresh, well-formed connection still works.
  service::Client fresh(client_for(server));
  EXPECT_EQ(fresh.call(extrapolate_request(256)).status, service::Status::Ok);
}

TEST(ServiceServerTest, ConcurrentClientsGetIdenticalAnswers) {
  service::Server server(test_server_options());
  server.start();

  constexpr int kThreads = 4;
  constexpr int kRequestsPerThread = 3;
  std::vector<std::string> bodies(kThreads);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      try {
        service::Client client(client_for(server));
        for (int i = 0; i < kRequestsPerThread; ++i) {
          const service::Response response = client.call(extrapolate_request(512));
          if (response.status != service::Status::Ok) {
            failures.fetch_add(1);
            return;
          }
          if (bodies[t].empty()) {
            bodies[t] = response.body;
          } else if (bodies[t] != response.body) {
            failures.fetch_add(1);
          }
        }
      } catch (const std::exception&) {
        failures.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  ASSERT_EQ(failures.load(), 0);
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(bodies[t], bodies[0]);

  const service::StoreStats stats = server.store().stats();
  EXPECT_GT(stats.hits, 0u) << "concurrent identical requests must share the cache";
}

TEST(ServiceServerTest, ShutdownRequestDrainsTheServer) {
  service::Server server(test_server_options());
  server.start();
  {
    service::Client client(client_for(server));
    ASSERT_EQ(client.call(extrapolate_request(256)).status, service::Status::Ok);
    service::Request shutdown;
    shutdown.type = service::MsgType::Shutdown;
    const service::Response response = client.call(shutdown);
    EXPECT_EQ(response.status, service::Status::Ok);
  }
  server.wait();  // must return — the test TIMEOUT guards against a hang
  EXPECT_GE(server.requests_handled(), 2u);
}

// ---------------------------------------------------------------------------
// Resilience: timeouts and the reaper, retries, the circuit breaker

std::uint64_t metric(const char* name) {
  return util::metrics::Registry::global().counter(name).value();
}

/// Raw loopback connect, for peers that must misbehave in ways the Client
/// API refuses to.  Returns -1 on failure (callers run in non-test threads).
int connect_raw(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

TEST(ServiceResilienceTest, SlowLorisIsReapedWhileWellBehavedClientsAreServed) {
  service::ServerOptions options = test_server_options();
  options.read_timeout_ms = 400;  // the slow-loris window under test
  options.idle_timeout_ms = 30'000;
  service::Server server(options);
  server.start();
  const std::uint64_t timeouts_before = metric("service.conn.timeout");

  // The attacker trickles a real frame at 1 byte per 100 ms — a full frame
  // would take tens of seconds, far past the read window.
  std::atomic<int> bytes_trickled{0};
  std::thread loris([&] {
    const int fd = connect_raw(server.port());
    if (fd < 0) return;
    const std::string frame = service::encode_request(extrapolate_request(256));
    for (std::size_t i = 0; i < frame.size(); ++i) {
      if (::send(fd, frame.data() + i, 1, MSG_NOSIGNAL) != 1) break;
      bytes_trickled.fetch_add(1);
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    ::close(fd);
  });

  // Meanwhile an honest client on another connection is served normally.
  service::Client client(client_for(server));
  EXPECT_EQ(client.call(extrapolate_request(256)).status, service::Status::Ok);

  loris.join();
  // The server cut the trickler off near the 400 ms mark — its sends started
  // failing long before the frame was done — and counted the timeout.
  EXPECT_LT(bytes_trickled.load(), 40) << "slow-loris peer was never cut off";
  EXPECT_GE(metric("service.conn.timeout"), timeouts_before + 1);
}

TEST(ServiceResilienceTest, IdleConnectionIsReapedAndRetryReconnects) {
  service::ServerOptions options = test_server_options();
  options.idle_timeout_ms = 300;
  service::Server server(options);
  server.start();
  const std::uint64_t timeouts_before = metric("service.conn.timeout");
  const std::uint64_t reaped_before = metric("service.conn.reaped");

  service::ClientOptions client_options = client_for(server);
  client_options.retry.initial_backoff_ms = 5;
  service::Client client(client_options);
  service::Request status;
  status.type = service::MsgType::Status;
  ASSERT_EQ(client.call(status).status, service::Status::Ok);

  // Sit silent past the idle window: the server reaps this connection.
  std::this_thread::sleep_for(std::chrono::milliseconds(800));
  EXPECT_GE(metric("service.conn.timeout"), timeouts_before + 1);

  // The resilient path hides the dead socket: it fails the first attempt,
  // reconnects, and completes.
  EXPECT_EQ(client.call_with_retry(status).status, service::Status::Ok);

  // The reaper joined the finished connection thread (poll-tick timing, so
  // give it a moment).
  for (int i = 0; i < 50 && metric("service.conn.reaped") < reaped_before + 1; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(metric("service.conn.reaped"), reaped_before + 1);
}

TEST(ServiceResilienceTest, BusyIsRetriedThenReturnedNotThrown) {
  service::ServerOptions options = test_server_options();
  options.max_in_flight = 0;  // every data-plane request sheds
  service::Server server(options);
  server.start();

  service::ClientOptions client_options = client_for(server);
  client_options.retry.max_attempts = 3;
  client_options.retry.initial_backoff_ms = 5;
  client_options.breaker.failure_threshold = 0;
  service::Client client(client_options);

  const std::uint64_t busy_before = metric("service.client.busy_retries");
  const service::Response response = client.call_with_retry(extrapolate_request(256));
  // BUSY is a healthy answer, not a transport failure: after the retry
  // budget it is returned to the caller, and it never trips the breaker.
  EXPECT_EQ(response.status, service::Status::Busy);
  EXPECT_EQ(metric("service.client.busy_retries"), busy_before + 2);
  EXPECT_FALSE(client.circuit_open());
}

TEST(ServiceResilienceTest, CircuitBreakerOpensAndFailsFast) {
  service::ServerOptions options = test_server_options();
  service::Server server(options);
  server.start();

  service::ClientOptions client_options = client_for(server);
  client_options.io_timeout_ms = 2'000;
  client_options.connect_attempts = 1;
  client_options.connect_deadline_ms = 500;
  client_options.retry.max_attempts = 1;
  client_options.breaker.failure_threshold = 2;
  client_options.breaker.cooldown_ms = 60'000;
  service::Client client(client_options);

  service::Request status;
  status.type = service::MsgType::Status;
  ASSERT_EQ(client.call_with_retry(status).status, service::Status::Ok);
  EXPECT_FALSE(client.circuit_open());

  server.stop();
  server.wait();

  const std::uint64_t opened_before = metric("service.client.circuit_opened");
  EXPECT_THROW((void)client.call_with_retry(status), util::Error);  // dead socket
  EXPECT_FALSE(client.circuit_open()) << "one failure must not open a threshold-2 breaker";
  EXPECT_THROW((void)client.call_with_retry(status), util::Error);  // failed reconnect
  EXPECT_TRUE(client.circuit_open());
  EXPECT_EQ(metric("service.client.circuit_opened"), opened_before + 1);

  // Open circuit: the next call fails fast, without touching the network.
  const auto started = std::chrono::steady_clock::now();
  try {
    (void)client.call_with_retry(status);
    FAIL() << "open circuit must fail";
  } catch (const util::Error& e) {
    EXPECT_NE(std::string(e.what()).find("circuit open"), std::string::npos) << e.what();
  }
  const auto elapsed = std::chrono::steady_clock::now() - started;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(), 100)
      << "fail-fast took a full network timeout";
}

// ---------------------------------------------------------------------------
// ChaosProxy

TEST(ChaosProxyTest, ZeroProbabilityProxyIsByteTransparent) {
  service::Server server(test_server_options());
  server.start();

  service::ChaosOptions chaos;
  chaos.upstream_port = server.port();
  chaos.p_reset = chaos.p_cut = chaos.p_delay = chaos.p_duplicate = 0.0;
  chaos.p_trickle = chaos.p_partial = chaos.p_short_read = 0.0;
  service::ChaosProxy proxy(chaos);
  proxy.start();

  service::ClientOptions through_proxy = client_for(server);
  through_proxy.port = proxy.port();
  service::Client proxied(through_proxy);
  const service::Response via_proxy = proxied.call(extrapolate_request(256));
  ASSERT_EQ(via_proxy.status, service::Status::Ok) << via_proxy.body;

  service::Client direct(client_for(server));
  EXPECT_EQ(via_proxy.body, direct.call(extrapolate_request(256)).body);

  proxy.stop();
  proxy.wait();
  EXPECT_EQ(proxy.stats().connections.load(), 1u);
  EXPECT_GT(proxy.stats().bytes_forwarded.load(), 0u);
  EXPECT_EQ(proxy.stats().resets.load() + proxy.stats().cuts.load() +
                proxy.stats().duplicates.load(),
            0u);
}

TEST(ChaosProxyTest, AlwaysResetProxyFailsDefinitelyAndServerSurvives) {
  service::Server server(test_server_options());
  server.start();

  service::ChaosOptions chaos;
  chaos.upstream_port = server.port();
  chaos.p_reset = 1.0;  // every forwarded chunk is a hard RST
  service::ChaosProxy proxy(chaos);
  proxy.start();

  service::ClientOptions through_proxy = client_for(server);
  through_proxy.port = proxy.port();
  through_proxy.io_timeout_ms = 5'000;
  service::Client proxied(through_proxy);
  // The failure must be definite (a typed transport error), never a hang.
  EXPECT_THROW((void)proxied.call(extrapolate_request(256)), util::Error);
  proxy.stop();
  proxy.wait();
  EXPECT_GE(proxy.stats().resets.load(), 1u);

  // The server rode out the RST: a direct, well-formed request still works.
  service::Client direct(client_for(server));
  EXPECT_EQ(direct.call(extrapolate_request(256)).status, service::Status::Ok);
}

}  // namespace
}  // namespace pmacx
