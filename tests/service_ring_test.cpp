// ShardRing / Topology tests: topology parsing (round-trip and the error
// taxonomy), placement determinism (golden pinned placements guard the
// cross-process contract — a router and a supervisor that parse the same
// topology must agree on every replica set), distribution balance over 10k
// synthetic digests, and minimal key remap on shard join/leave (the
// consistent-hashing property that makes resharding cheap).
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "service/shard_ring.hpp"
#include "util/error.hpp"
#include "util/parse_error.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace pmacx {
namespace {

using service::ShardRing;
using service::Topology;

Topology four_shards() {
  service::Topology topology;
  topology.replication = 2;
  for (std::uint32_t id = 0; id < 4; ++id)
    topology.shards.push_back({id, "127.0.0.1", static_cast<std::uint16_t>(7100 + id)});
  topology.validate();
  return topology;
}

/// 10k digest-shaped keys (16 lowercase hex), deterministic.
std::vector<std::string> synthetic_digests(std::size_t count = 10'000) {
  std::vector<std::string> keys;
  keys.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    keys.push_back(util::format(
        "%016llx", static_cast<unsigned long long>(util::derive_seed(0x5eed, i))));
  return keys;
}

// ---------------------------------------------------------------------------
// Topology parsing

TEST(TopologyTest, ParsesAndRoundTripsThroughRender) {
  const std::string text =
      "# pmacx cluster\n"
      "replication 2\n"
      "shard 1 127.0.0.1 7102\n"
      "shard 0 10.0.0.5 7101\n"
      "\n"
      "shard 2 127.0.0.1 0\n";
  const Topology topology = Topology::parse(text, "test.topo");
  EXPECT_EQ(topology.replication, 2u);
  ASSERT_EQ(topology.shards.size(), 3u);
  // validate() sorts by id regardless of file order.
  EXPECT_EQ(topology.shards[0].id, 0u);
  EXPECT_EQ(topology.shards[0].host, "10.0.0.5");
  EXPECT_EQ(topology.shards[0].port, 7101);
  EXPECT_EQ(topology.shards[2].port, 0) << "port 0 (ephemeral) is representable";

  const Topology again = Topology::parse(topology.render());
  ASSERT_EQ(again.shards.size(), topology.shards.size());
  EXPECT_EQ(again.replication, topology.replication);
  for (std::size_t i = 0; i < again.shards.size(); ++i) {
    EXPECT_EQ(again.shards[i].id, topology.shards[i].id);
    EXPECT_EQ(again.shards[i].host, topology.shards[i].host);
    EXPECT_EQ(again.shards[i].port, topology.shards[i].port);
  }
  EXPECT_EQ(again.epoch(), topology.epoch());
}

TEST(TopologyTest, RejectsMalformedInputWithParseErrors) {
  EXPECT_THROW(Topology::parse("shard 0 127.0.0.1\n"), util::ParseError)
      << "missing port field";
  EXPECT_THROW(Topology::parse("replication 2\nshard 0 h 1\nshard 0 h 2\n"),
               util::Error)
      << "duplicate shard id";
  EXPECT_THROW(Topology::parse("replication 3\nshard 0 h 1\nshard 1 h 2\n"),
               util::Error)
      << "replication exceeds shard count";
  EXPECT_THROW(Topology::parse("replication 2\nwat 0 h 1\n"), util::ParseError)
      << "unknown directive";
  EXPECT_THROW(Topology::parse(""), util::Error) << "empty shard set";
  // Multi-shard topologies must state replication explicitly: silently
  // defaulting to 1 would turn a typo into a cluster with no failover.
  EXPECT_THROW(Topology::parse("shard 0 h 1\nshard 1 h 2\n"), util::ParseError);

  try {
    Topology::parse("replication 2\nshard zero h 1\n", "bad.topo");
    FAIL() << "expected ParseError";
  } catch (const util::ParseError& e) {
    EXPECT_EQ(e.path(), "bad.topo");
    EXPECT_EQ(e.byte_offset(), 2u) << "offset carries the 1-based line number";
  }
}

TEST(TopologyTest, EpochIgnoresPortsButTracksMembership) {
  Topology a = four_shards();
  Topology b = a;
  for (auto& shard : b.shards) shard.port = 0;  // pre-resolution topology
  EXPECT_EQ(a.epoch(), b.epoch())
      << "resolving ephemeral ports must not change the epoch";

  Topology joined = a;
  joined.shards.push_back({9, "127.0.0.1", 7109});
  joined.validate();
  EXPECT_NE(joined.epoch(), a.epoch());

  Topology more_replicas = a;
  more_replicas.replication = 3;
  EXPECT_NE(more_replicas.epoch(), a.epoch());
}

// ---------------------------------------------------------------------------
// Determinism

TEST(ShardRingTest, GoldenPlacementsPinTheCrossProcessContract) {
  // Golden values: any change here remaps live clusters' placements, which
  // breaks mid-upgrade routing (two processes disagreeing on owners) — bump
  // deliberately, never accidentally.
  const ShardRing ring(four_shards());
  EXPECT_EQ(ring.epoch(), 0x678dbbbbe53fcd51ULL);
  EXPECT_EQ(ShardRing::key_hash("c18d88346beb06c8"), 0x53d9c13debcacc7fULL);

  const std::pair<const char*, std::vector<std::uint32_t>> golden[] = {
      {"c18d88346beb06c8", {2, 3}}, {"0000000000000000", {0, 2}},
      {"ffffffffffffffff", {1, 2}}, {"deadbeefcafef00d", {0, 2}},
      {"0123456789abcdef", {2, 0}},
  };
  for (const auto& [key, expected] : golden) {
    EXPECT_EQ(ring.replicas_for(key), expected) << "key " << key;
    EXPECT_EQ(ring.primary_for(key), expected[0]);
  }
}

TEST(ShardRingTest, IndependentlyParsedTopologiesAgreeOnEveryPlacement) {
  // Simulates two processes: each parses the rendered topology text on its
  // own; every placement must match (this plus the golden test is the
  // determinism contract — same text, same ring, in any process).
  const std::string text = four_shards().render();
  const ShardRing a{Topology::parse(text)};
  const ShardRing b{Topology::parse(text)};
  EXPECT_EQ(a.epoch(), b.epoch());
  for (const std::string& key : synthetic_digests(1'000))
    EXPECT_EQ(a.replicas_for(key), b.replicas_for(key)) << "key " << key;
}

TEST(ShardRingTest, ReplicasAreDistinctAndPrimaryFirst) {
  const ShardRing ring(four_shards());
  for (const std::string& key : synthetic_digests(1'000)) {
    const std::vector<std::uint32_t> replicas = ring.replicas_for(key);
    ASSERT_EQ(replicas.size(), 2u);
    EXPECT_NE(replicas[0], replicas[1]) << "replicas must be distinct shards";
    EXPECT_EQ(replicas[0], ring.primary_for(key));
  }
}

// ---------------------------------------------------------------------------
// Balance

TEST(ShardRingTest, PrimaryLoadIsBalancedAcrossShards) {
  for (const std::size_t shard_count : {4u, 8u}) {
    Topology topology;
    topology.replication = 2;
    for (std::uint32_t id = 0; id < shard_count; ++id)
      topology.shards.push_back({id, "127.0.0.1", 1});
    topology.validate();
    const ShardRing ring(topology);

    std::map<std::uint32_t, std::size_t> counts;
    const std::vector<std::string> keys = synthetic_digests();
    for (const std::string& key : keys) ++counts[ring.primary_for(key)];

    EXPECT_EQ(counts.size(), shard_count) << "every shard owns some keys";
    const double mean = static_cast<double>(keys.size()) / static_cast<double>(shard_count);
    for (const auto& [id, count] : counts) {
      const double skew = static_cast<double>(count) / mean;
      // Measured skew with 64 vnodes is ~1.05 (4 shards) and ~1.08 (8); the
      // bound leaves room for noise while still catching a broken hash
      // (which degenerates to ~all keys on one shard).
      EXPECT_LT(skew, 1.3) << "shard " << id << " owns " << count << " of "
                           << keys.size();
      EXPECT_GT(skew, 0.7) << "shard " << id << " owns " << count << " of "
                           << keys.size();
    }
  }
}

// ---------------------------------------------------------------------------
// Minimal remap

TEST(ShardRingTest, ShardJoinOnlyStealsKeysForTheNewShard) {
  Topology three = four_shards();
  three.shards.pop_back();  // drop shard 3
  three.validate();
  const ShardRing before{three};
  const ShardRing after{four_shards()};

  std::size_t moved = 0;
  const std::vector<std::string> keys = synthetic_digests();
  for (const std::string& key : keys) {
    const std::uint32_t was = before.primary_for(key);
    const std::uint32_t now = after.primary_for(key);
    if (was != now) {
      ++moved;
      EXPECT_EQ(now, 3u) << "a join may only move keys onto the new shard";
    }
  }
  // The new shard should take roughly its fair share (1/4) — far from both
  // 0 (it owns nothing) and keys.size() (everything remapped).
  EXPECT_GT(moved, keys.size() / 8);
  EXPECT_LT(moved, keys.size() / 2);
}

TEST(ShardRingTest, ShardLeaveOnlyRemapsTheDepartedShardsKeys) {
  const ShardRing before(four_shards());
  Topology without_one = four_shards();
  without_one.shards.erase(without_one.shards.begin() + 1);  // drop shard 1
  without_one.validate();
  const ShardRing after{without_one};

  for (const std::string& key : synthetic_digests()) {
    const std::uint32_t was = before.primary_for(key);
    if (was != 1u)
      EXPECT_EQ(after.primary_for(key), was)
          << "keys not owned by the departed shard must not move";
    else
      EXPECT_NE(after.primary_for(key), 1u);
  }
}

}  // namespace
}  // namespace pmacx
