// Unit tests for pmacx::util — error handling, deterministic RNG, string
// helpers, table rendering, and CLI parsing.
#include <gtest/gtest.h>

#include <set>

#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace pmacx {
namespace {

using util::Error;

// ---------------------------------------------------------------- error ----

TEST(ErrorTest, CheckThrowsWithLocationAndMessage) {
  try {
    PMACX_CHECK(1 == 2, "one is not two");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("util_test.cpp"), std::string::npos);
    EXPECT_NE(what.find("one is not two"), std::string::npos);
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
  }
}

TEST(ErrorTest, CheckPassesSilently) {
  EXPECT_NO_THROW(PMACX_CHECK(true, "never"));
}

TEST(ErrorTest, AssertThrowsErrorType) {
  EXPECT_THROW(PMACX_ASSERT(false, "bug"), Error);
}

// ------------------------------------------------------------------ rng ----

TEST(RngTest, DeterministicForSameSeed) {
  util::Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiffer) {
  util::Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  util::Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespected) {
  util::Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, BelowStaysBelow) {
  util::Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.below(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues reachable
}

TEST(RngTest, BelowRejectsZero) {
  util::Rng rng(9);
  EXPECT_THROW(rng.below(0), Error);
}

TEST(RngTest, NormalMomentsRoughlyStandard) {
  util::Rng rng(11);
  double sum = 0.0, sum2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, NormalScaled) {
  util::Rng rng(12);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(RngTest, DeriveSeedDistinctPerIndex) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 1000; ++i) seeds.insert(util::derive_seed(42, i));
  EXPECT_EQ(seeds.size(), 1000u);
}

TEST(RngTest, SplitmixAdvancesState) {
  std::uint64_t s = 0;
  const std::uint64_t a = util::splitmix64(s);
  const std::uint64_t b = util::splitmix64(s);
  EXPECT_NE(a, b);
}

// -------------------------------------------------------------- strings ----

TEST(StringsTest, SplitKeepsEmptyFields) {
  const auto fields = util::split("a,,b,", ',');
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[2], "b");
  EXPECT_EQ(fields[3], "");
}

TEST(StringsTest, SplitSingleField) {
  const auto fields = util::split("abc", ',');
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "abc");
}

TEST(StringsTest, TrimBothEnds) {
  EXPECT_EQ(util::trim("  x y \t\n"), "x y");
  EXPECT_EQ(util::trim(""), "");
  EXPECT_EQ(util::trim("   "), "");
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(util::starts_with("hello", "he"));
  EXPECT_FALSE(util::starts_with("hello", "hello!"));
  EXPECT_TRUE(util::starts_with("x", ""));
}

TEST(StringsTest, ParseDoubleValid) {
  EXPECT_DOUBLE_EQ(util::parse_double("3.25", "t"), 3.25);
  EXPECT_DOUBLE_EQ(util::parse_double(" -1e3 ", "t"), -1000.0);
}

TEST(StringsTest, ParseDoubleRejectsGarbage) {
  EXPECT_THROW(util::parse_double("12x", "t"), Error);
  EXPECT_THROW(util::parse_double("", "t"), Error);
}

TEST(StringsTest, ParseU64Valid) {
  EXPECT_EQ(util::parse_u64("8192", "t"), 8192u);
}

TEST(StringsTest, ParseU64RejectsNegativeAndGarbage) {
  EXPECT_THROW(util::parse_u64("-1", "t"), Error);
  EXPECT_THROW(util::parse_u64("1.5", "t"), Error);
}

TEST(StringsTest, FormatBasic) {
  EXPECT_EQ(util::format("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(util::format("%.2f", 1.239), "1.24");
}

TEST(StringsTest, HumanBytes) {
  EXPECT_EQ(util::human_bytes(512), "512.0 B");
  EXPECT_EQ(util::human_bytes(2048), "2.0 KB");
  EXPECT_EQ(util::human_bytes(3.5 * 1024 * 1024), "3.5 MB");
}

TEST(StringsTest, HumanRateAndPercent) {
  EXPECT_EQ(util::human_rate(2.0 * 1024 * 1024 * 1024), "2.0 GB/s");
  EXPECT_EQ(util::human_percent(0.8735), "87.35%");
  EXPECT_EQ(util::human_percent(0.05, 0), "5%");
}

// ---------------------------------------------------------------- table ----

TEST(TableTest, AsciiAlignsColumns) {
  util::Table table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"b", "22"});
  const std::string ascii = table.to_ascii();
  EXPECT_NE(ascii.find("alpha  1"), std::string::npos);
  EXPECT_NE(ascii.find("-----"), std::string::npos);
  EXPECT_EQ(table.rows(), 2u);
}

TEST(TableTest, RejectsArityMismatch) {
  util::Table table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), Error);
}

TEST(TableTest, RejectsEmptyHeader) {
  EXPECT_THROW(util::Table({}), Error);
}

TEST(TableTest, CsvEscapesSpecials) {
  util::Table table({"x"});
  table.add_row({"has,comma"});
  table.add_row({"has\"quote"});
  const std::string csv = table.to_csv();
  EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
}

TEST(TableTest, CsvPlainCellsUnquoted) {
  util::Table table({"x", "y"});
  table.add_row({"1", "2"});
  EXPECT_EQ(table.to_csv(), "x,y\n1,2\n");
}

// ------------------------------------------------------------------ cli ----

TEST(CliTest, ParsesTypedOptions) {
  util::Cli cli("prog", "test");
  cli.add_string("name", "default", "a name");
  cli.add_u64("count", 5, "a count");
  cli.add_double("scale", 1.5, "a scale");
  cli.add_flag("verbose", "chatty");

  const char* argv[] = {"prog", "--name", "x", "--count=9", "--verbose"};
  ASSERT_TRUE(cli.parse(5, argv));
  EXPECT_EQ(cli.get_string("name"), "x");
  EXPECT_EQ(cli.get_u64("count"), 9u);
  EXPECT_DOUBLE_EQ(cli.get_double("scale"), 1.5);  // default preserved
  EXPECT_TRUE(cli.get_flag("verbose"));
}

TEST(CliTest, UnknownOptionThrows) {
  util::Cli cli("prog", "test");
  const char* argv[] = {"prog", "--nope", "1"};
  EXPECT_THROW(cli.parse(3, argv), Error);
}

TEST(CliTest, BadValueThrowsEagerly) {
  util::Cli cli("prog", "test");
  cli.add_u64("count", 5, "a count");
  const char* argv[] = {"prog", "--count", "abc"};
  EXPECT_THROW(cli.parse(3, argv), Error);
}

TEST(CliTest, MissingValueThrows) {
  util::Cli cli("prog", "test");
  cli.add_u64("count", 5, "a count");
  const char* argv[] = {"prog", "--count"};
  EXPECT_THROW(cli.parse(2, argv), Error);
}

TEST(CliTest, HelpReturnsFalse) {
  util::Cli cli("prog", "test");
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(CliTest, FlagRejectsValue) {
  util::Cli cli("prog", "test");
  cli.add_flag("v", "flag");
  const char* argv[] = {"prog", "--v=1"};
  EXPECT_THROW(cli.parse(2, argv), Error);
}

TEST(CliTest, WrongTypeAccessThrows) {
  util::Cli cli("prog", "test");
  cli.add_u64("count", 5, "a count");
  EXPECT_THROW(cli.get_string("count"), Error);
  EXPECT_THROW(cli.get_u64("never-registered"), Error);
}

TEST(CliTest, HelpTextListsOptions) {
  util::Cli cli("prog", "summary line");
  cli.add_u64("count", 5, "how many");
  const std::string help = cli.help();
  EXPECT_NE(help.find("summary line"), std::string::npos);
  EXPECT_NE(help.find("--count"), std::string::npos);
  EXPECT_NE(help.find("how many"), std::string::npos);
}

}  // namespace
}  // namespace pmacx
