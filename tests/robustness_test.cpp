// Fault-injection sweeps over every pmacx input loader, plus the graceful
// degradation paths they feed (salvage reports, fallback fits, clamping
// diagnostics).  The contract under test: for ANY corruption of a valid
// input, a loader either parses, salvages with an accurate report, or
// throws util::ParseError — it never crashes, loops, silently mis-parses,
// or attempts an unbounded allocation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/diagnostics.hpp"
#include "core/extrapolator.hpp"
#include "machine/multimaps.hpp"
#include "machine/profile.hpp"
#include "machine/profile_io.hpp"
#include "machine/targets.hpp"
#include "trace/binary_io.hpp"
#include "trace/task_trace.hpp"
#include "util/atomic_file.hpp"
#include "util/crc32.hpp"
#include "util/error.hpp"
#include "util/faultinject.hpp"
#include "util/metrics.hpp"
#include "util/mmap_file.hpp"
#include "util/parse_error.hpp"
#include "util/rng.hpp"

namespace pmacx {
namespace {

using trace::BasicBlockRecord;
using trace::BlockElement;
using trace::InstrElement;
using trace::InstructionRecord;
using trace::TaskTrace;
using util::Corruption;

TaskTrace sample_trace(std::size_t block_count = 4) {
  TaskTrace task;
  task.app = "robust";
  task.rank = 1;
  task.core_count = 64;
  task.target_system = "test target";
  for (std::size_t b = 0; b < block_count; ++b) {
    BasicBlockRecord block;
    block.id = 10 + b;
    block.location = {"kernel.f90", static_cast<std::uint32_t>(100 + b), "kernel"};
    block.set(BlockElement::VisitCount, 100.0 + static_cast<double>(b));
    block.set(BlockElement::MemLoads, 5000.0);
    block.set(BlockElement::MemStores, 2500.0);
    block.set(BlockElement::BytesPerRef, 8.0);
    block.set(BlockElement::HitRateL1, 0.9);
    block.set(BlockElement::HitRateL2, 0.95);
    block.set(BlockElement::HitRateL3, 0.99);
    InstructionRecord instr;
    instr.index = 1;
    instr.set(InstrElement::ExecCount, 100.0);
    instr.set(InstrElement::MemOps, 75.0);
    instr.set(InstrElement::HitRateL1, 0.5);
    instr.set(InstrElement::HitRateL2, 0.6);
    instr.set(InstrElement::HitRateL3, 0.7);
    block.instructions.push_back(instr);
    task.blocks.push_back(block);
  }
  task.sort_blocks();
  return task;
}

/// True when `recovered` is consistent with salvage semantics: every block
/// it carries equals the matching original block.
bool blocks_are_subset(const TaskTrace& recovered, const TaskTrace& original) {
  for (const auto& block : recovered.blocks) {
    const BasicBlockRecord* match = original.find_block(block.id);
    if (match == nullptr || !(*match == block)) return false;
  }
  return true;
}

// ------------------------------------------------------------------ crc32 ----

TEST(Crc32Test, MatchesStandardCheckValue) {
  // The canonical CRC-32/ISO-HDLC check value.
  EXPECT_EQ(util::crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(util::crc32(""), 0u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const std::uint32_t oneshot = util::crc32(data);
  const std::uint32_t split =
      util::crc32(data.substr(10), util::crc32(data.substr(0, 10)));
  EXPECT_EQ(split, oneshot);
}

// ------------------------------------------------------------- parse error ----

TEST(ParseErrorTest, RendersAllContext) {
  const util::ParseError e("a.trace", 128, "block section", "checksum mismatch");
  EXPECT_NE(std::string(e.what()).find("a.trace"), std::string::npos);
  EXPECT_NE(std::string(e.what()).find("block section"), std::string::npos);
  EXPECT_NE(std::string(e.what()).find("at byte 128"), std::string::npos);
  EXPECT_EQ(e.path(), "a.trace");
  EXPECT_EQ(e.byte_offset(), 128u);
}

TEST(ParseErrorTest, WithPathPreservesLocation) {
  const util::ParseError bare("", 7, "header", "bad");
  const util::ParseError contextual = bare.with_path("x.trace");
  EXPECT_EQ(contextual.path(), "x.trace");
  EXPECT_EQ(contextual.byte_offset(), 7u);
  EXPECT_EQ(contextual.section(), "header");
}

TEST(ParseErrorTest, LoadersAttachThePath) {
  const std::string path = ::testing::TempDir() + "/pmacx_robust_corrupt.btrace";
  std::string bytes = trace::to_binary(sample_trace());
  bytes[bytes.size() / 2] ^= 0x40;  // payload damage -> checksum mismatch
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  try {
    (void)trace::load_binary(path);
    FAIL() << "corrupted file parsed cleanly";
  } catch (const util::ParseError& e) {
    EXPECT_EQ(e.path(), path);
    EXPECT_NE(e.byte_offset(), util::ParseError::kNoOffset);
  }
  std::remove(path.c_str());
}

// ----------------------------------------------------------- fault library ----

TEST(FaultInjectTest, CorruptionsAreDeterministic) {
  util::Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    const Corruption ca = util::random_corruption(a, 1000);
    const Corruption cb = util::random_corruption(b, 1000);
    EXPECT_EQ(ca.kind, cb.kind);
    EXPECT_EQ(ca.position, cb.position);
    EXPECT_EQ(ca.value, cb.value);
  }
}

TEST(FaultInjectTest, ApplyMatchesDescription) {
  const std::string bytes = "abcdef";
  EXPECT_EQ(util::apply_corruption(bytes, {Corruption::Kind::Truncate, 3, 0}), "abc");
  EXPECT_EQ(util::apply_corruption(bytes, {Corruption::Kind::MutateByte, 1, 'X'}),
            "aXcdef");
  const std::string flipped =
      util::apply_corruption(bytes, {Corruption::Kind::BitFlip, 0, 0});
  EXPECT_EQ(flipped[0], 'a' ^ 1);
  EXPECT_EQ(util::apply_corruption(bytes, {Corruption::Kind::Extend, 4, 9}).size(),
            bytes.size() + 4);
}

TEST(FaultInjectTest, SweepsCoverEveryPosition) {
  EXPECT_EQ(util::truncation_sweep(10).size(), 10u);
  EXPECT_EQ(util::truncation_sweep(10, 3).size(), 4u);  // 0, 3, 6, 9
  EXPECT_EQ(util::bit_flip_sweep(4).size(), 32u);
}

// -------------------------------------------------- binary trace contract ----

/// Drives one corrupted byte string through the strict and salvage binary
/// loaders, asserting the contract.  Returns true when strict parsing
/// succeeded (caller may want to check content).
bool check_binary_contract(const TaskTrace& original, const std::string& corrupted) {
  try {
    const TaskTrace parsed = trace::from_binary(corrupted);
    // Strict success on a corrupted v002 input must mean the corruption
    // was immaterial — never a silently different trace.
    EXPECT_EQ(parsed, original) << "silent mis-parse";
    return true;
  } catch (const util::ParseError&) {
    // Expected rejection; salvage must still uphold the contract.
    try {
      trace::SalvageReport report;
      const TaskTrace recovered = trace::salvage_binary(corrupted, report);
      EXPECT_LE(recovered.blocks.size(), original.blocks.size());
      EXPECT_TRUE(blocks_are_subset(recovered, original)) << "salvage invented data";
    } catch (const util::ParseError&) {
      // Not even a header to salvage — acceptable.
    }
    return false;
  }
  // Any other exception type escapes and fails the test.
}

TEST(BinaryRobustnessTest, SeededCorruptionSweep) {
  const TaskTrace original = sample_trace();
  const std::string bytes = trace::to_binary(original);
  util::Rng rng(2026);
  for (int i = 0; i < 2000; ++i) {
    const Corruption corruption = util::random_corruption(rng, bytes.size());
    SCOPED_TRACE(corruption.describe());
    check_binary_contract(original, util::apply_corruption(bytes, corruption));
  }
}

TEST(BinaryRobustnessTest, TruncateAtEveryByte) {
  const TaskTrace original = sample_trace();
  const std::string bytes = trace::to_binary(original);
  for (const Corruption& c : util::truncation_sweep(bytes.size())) {
    SCOPED_TRACE(c.describe());
    // Every strict parse of a strictly shorter file must fail: the end
    // marker is gone.
    EXPECT_THROW((void)trace::from_binary(util::apply_corruption(bytes, c)),
                 util::ParseError);
    check_binary_contract(original, util::apply_corruption(bytes, c));
  }
}

TEST(BinaryRobustnessTest, FlipEveryHeaderBit) {
  const TaskTrace original = sample_trace();
  const std::string bytes = trace::to_binary(original);
  // Magic + header section frame + header payload.
  for (const Corruption& c : util::bit_flip_sweep(64)) {
    SCOPED_TRACE(c.describe());
    check_binary_contract(original, util::apply_corruption(bytes, c));
  }
}

TEST(BinaryRobustnessTest, V001SeededCorruptionSweep) {
  const TaskTrace original = sample_trace();
  const std::string bytes = trace::to_binary_v001(original);
  util::Rng rng(77);
  for (int i = 0; i < 2000; ++i) {
    const Corruption corruption = util::random_corruption(rng, bytes.size());
    SCOPED_TRACE(corruption.describe());
    const std::string corrupted = util::apply_corruption(bytes, corruption);
    // v001 has no checksums, so flips inside numeric payloads can parse to
    // different values — the contract is only parse/salvage/ParseError.
    try {
      (void)trace::from_binary(corrupted);
    } catch (const util::ParseError&) {
      try {
        trace::SalvageReport report;
        (void)trace::salvage_binary(corrupted, report);
      } catch (const util::ParseError&) {
      }
    }
  }
}

TEST(BinaryRobustnessTest, CorruptedCountCannotForceHugeAllocation) {
  // A flipped block/instruction count used to feed reserve() unchecked
  // (binary_io.cpp v001 path); both versions must now reject it before
  // allocating.
  const TaskTrace original = sample_trace();
  for (std::string bytes : {trace::to_binary_v001(original), trace::to_binary(original)}) {
    // The block count is the trailing u64 of the header fields; overwrite
    // every u64-sized window with a huge value and require clean failure.
    const std::uint64_t huge = 1ull << 60;
    for (std::size_t at = 8; at + 8 <= std::min<std::size_t>(bytes.size(), 96); ++at) {
      std::string corrupted = bytes;
      std::memcpy(corrupted.data() + at, &huge, sizeof huge);
      try {
        (void)trace::from_binary(corrupted);
      } catch (const util::ParseError&) {
      }
    }
  }
}

TEST(BinaryRobustnessTest, SalvageRecoversPrefixOfTruncatedFile) {
  const TaskTrace original = sample_trace(6);
  const std::string bytes = trace::to_binary(original);
  // Cut the file in half: the header and the first blocks survive.
  trace::SalvageReport report;
  const TaskTrace recovered =
      trace::salvage_binary(bytes.substr(0, bytes.size() / 2), report);
  EXPECT_TRUE(report.used);
  EXPECT_EQ(report.blocks_expected, original.blocks.size());
  EXPECT_GT(report.blocks_recovered, 0u);
  EXPECT_LT(report.blocks_recovered, original.blocks.size());
  EXPECT_EQ(report.blocks_recovered + report.blocks_lost(), original.blocks.size());
  EXPECT_FALSE(report.error.empty());
  EXPECT_EQ(recovered.blocks.size(), report.blocks_recovered);
  EXPECT_TRUE(blocks_are_subset(recovered, original));
  EXPECT_EQ(recovered.app, original.app);
  EXPECT_EQ(recovered.core_count, original.core_count);
}

TEST(BinaryRobustnessTest, SalvageStopsAtFirstBadChecksum) {
  const TaskTrace original = sample_trace(6);
  std::string bytes = trace::to_binary(original);
  // Damage a byte ~60% into the file: some block section's payload.
  bytes[bytes.size() * 6 / 10] ^= 0x10;
  trace::SalvageReport report;
  const TaskTrace recovered = trace::salvage_binary(bytes, report);
  EXPECT_TRUE(report.used);
  EXPECT_NE(report.error.find("checksum"), std::string::npos) << report.error;
  EXPECT_LT(recovered.blocks.size(), original.blocks.size());
  EXPECT_TRUE(blocks_are_subset(recovered, original));
}

TEST(BinaryRobustnessTest, SalvageOfCleanFileReportsNothingLost) {
  const TaskTrace original = sample_trace();
  trace::SalvageReport report;
  const TaskTrace recovered = trace::salvage_binary(trace::to_binary(original), report);
  EXPECT_FALSE(report.used);
  EXPECT_EQ(report.blocks_lost(), 0u);
  EXPECT_EQ(recovered, original);
}

TEST(BinaryRobustnessTest, LoadSalvageHandlesBothFormats) {
  const TaskTrace original = sample_trace();
  const std::string dir = ::testing::TempDir();

  const std::string text_path = dir + "/pmacx_robust_text.trace";
  original.save(text_path);
  trace::SalvageReport report;
  EXPECT_EQ(trace::load_salvage(text_path, report), original);
  EXPECT_FALSE(report.used);
  std::remove(text_path.c_str());

  const std::string bin_path = dir + "/pmacx_robust_bin.btrace";
  std::string bytes = trace::to_binary(original);
  bytes.resize(bytes.size() - 10);  // damaged end marker
  {
    std::ofstream out(bin_path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  const TaskTrace recovered = trace::load_salvage(bin_path, report);
  EXPECT_TRUE(report.used);
  EXPECT_EQ(recovered.blocks.size(), original.blocks.size());
  std::remove(bin_path.c_str());
}

// ------------------------------------------------- mmap loader contract ----

// The file loaders now parse straight out of a memory map (util::MappedFile)
// when the platform allows it.  The contract is the same as for buffered
// reads — parse, salvage, or ParseError — plus one mmap-specific hazard to
// pin down: a damaged or truncated file must never fault (SIGBUS) even when
// the damage lands mid-page or at a page boundary.

void write_bytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// A trace big enough that its binary form spans several 4 KiB pages, so
/// truncation and corruption sweeps cross page boundaries under mmap.
TaskTrace multipage_trace() { return sample_trace(120); }

TEST(MmapLoaderTest, LoadersCountTheMmapPath) {
  const std::string path = ::testing::TempDir() + "/pmacx_mmap_counted.btrace";
  const TaskTrace original = multipage_trace();
  trace::save_binary(original, path);
  auto& registry = util::metrics::Registry::global();
  const std::uint64_t bytes_before = registry.counter("trace.mmap_bytes").value();
  const std::uint64_t falls_before = registry.counter("trace.mmap_fallbacks").value();
  EXPECT_EQ(trace::load_binary(path), original);
  EXPECT_EQ(TaskTrace::load(path), original);
  const std::uint64_t bytes_after = registry.counter("trace.mmap_bytes").value();
  const std::uint64_t falls_after = registry.counter("trace.mmap_fallbacks").value();
  // Exactly one of the two paths was taken, per load, on every platform.
  const std::uint64_t mapped = bytes_after - bytes_before;
  const std::uint64_t fell_back = falls_after - falls_before;
  if (util::MappedFile::supported()) {
    EXPECT_EQ(mapped, 2 * trace::to_binary(original).size());
    EXPECT_EQ(fell_back, 0u);
  } else {
    EXPECT_EQ(mapped, 0u);
    EXPECT_EQ(fell_back, 2u);
  }
  std::remove(path.c_str());
}

TEST(MmapLoaderTest, MissingFileFallsBackToTheBufferedError) {
  const std::string path = ::testing::TempDir() + "/pmacx_mmap_never_written.btrace";
  std::remove(path.c_str());
  EXPECT_THROW((void)trace::load_binary(path), util::Error);
}

TEST(MmapLoaderTest, EmptyFileIsACleanParseError) {
  const std::string path = ::testing::TempDir() + "/pmacx_mmap_empty.btrace";
  write_bytes(path, "");
  EXPECT_THROW((void)trace::load_binary(path), util::ParseError);
  EXPECT_THROW((void)TaskTrace::load(path), util::ParseError);
  std::remove(path.c_str());
}

TEST(MmapLoaderTest, TruncationAcrossPageBoundariesNeverFaults) {
  const std::string path = ::testing::TempDir() + "/pmacx_mmap_trunc.btrace";
  const TaskTrace original = multipage_trace();
  const std::string bytes = trace::to_binary(original);
  ASSERT_GT(bytes.size(), 3u * 4096u) << "trace must span several pages";
  // Mid-page, page-boundary, and boundary-straddling truncation points.
  for (std::size_t keep :
       {std::size_t{0}, std::size_t{1}, std::size_t{4095}, std::size_t{4096},
        std::size_t{4097}, std::size_t{8192}, bytes.size() / 2, bytes.size() - 1}) {
    SCOPED_TRACE("keep=" + std::to_string(keep));
    write_bytes(path, bytes.substr(0, keep));
    EXPECT_THROW((void)trace::load_binary(path), util::ParseError);
    // Salvage must recover a clean prefix from the same mapped view.
    if (keep > 4096) {
      trace::SalvageReport report;
      const TaskTrace recovered = trace::load_salvage(path, report);
      EXPECT_TRUE(report.used);
      EXPECT_TRUE(blocks_are_subset(recovered, original));
    }
  }
  std::remove(path.c_str());
}

TEST(MmapLoaderTest, OnDiskCorruptionSweepUpholdsTheLoaderContract) {
  const std::string path = ::testing::TempDir() + "/pmacx_mmap_sweep.btrace";
  const TaskTrace original = multipage_trace();
  const std::string bytes = trace::to_binary(original);
  util::Rng rng(31337);
  for (int round = 0; round < 150; ++round) {
    const Corruption corruption = util::random_corruption(rng, bytes.size());
    SCOPED_TRACE(corruption.describe());
    write_bytes(path, util::apply_corruption(bytes, corruption));
    try {
      const TaskTrace parsed = trace::load_binary(path);
      EXPECT_EQ(parsed, original) << "silent mis-parse through the mmap path";
    } catch (const util::ParseError&) {
      trace::SalvageReport report;
      try {
        const TaskTrace recovered = trace::load_salvage(path, report);
        EXPECT_TRUE(blocks_are_subset(recovered, original));
      } catch (const util::ParseError&) {
        // Not even a header to salvage — acceptable.
      }
    }
  }
  std::remove(path.c_str());
}

// ----------------------------------------------------- text trace contract ----

TEST(TextRobustnessTest, SeededCorruptionSweep) {
  const std::string text = sample_trace().to_text();
  util::Rng rng(99);
  for (int i = 0; i < 1500; ++i) {
    const Corruption corruption = util::random_corruption(rng, text.size());
    SCOPED_TRACE(corruption.describe());
    try {
      (void)TaskTrace::from_text(util::apply_corruption(text, corruption));
    } catch (const util::ParseError&) {
      // The only acceptable failure mode.
    }
  }
}

TEST(TextRobustnessTest, TruncateAtEveryByte) {
  const TaskTrace original = sample_trace();
  const std::string text = original.to_text();
  for (const Corruption& c : util::truncation_sweep(text.size())) {
    SCOPED_TRACE(c.describe());
    try {
      // A truncation that only sheds trailing formatting may still parse —
      // but then it must parse to exactly the original trace.
      EXPECT_EQ(TaskTrace::from_text(util::apply_corruption(text, c)), original);
    } catch (const util::ParseError&) {
      // The expected outcome for every truncation that loses data.
    }
  }
}

TEST(TextRobustnessTest, HugeDeclaredCountCannotForceHugeAllocation) {
  // A corrupted "blocks" or "instrs" count used to feed reserve() unchecked,
  // escaping from_text as std::length_error/std::bad_alloc; the loader must
  // clamp the reservation and fail with the usual typed error instead.
  const std::string text = sample_trace().to_text();
  for (const char* key : {"blocks\t", "instrs\t"}) {
    std::string corrupted = text;
    const std::size_t at = corrupted.find(key);
    ASSERT_NE(at, std::string::npos);
    corrupted.replace(at + std::strlen(key), 1, "1152921504606846976");
    EXPECT_THROW((void)TaskTrace::from_text(corrupted), util::ParseError);
  }
}

TEST(TextRobustnessTest, ErrorsCarryTheLine) {
  std::string text = sample_trace().to_text();
  text.replace(text.find("cores"), 5, "cares");
  try {
    (void)TaskTrace::from_text(text);
    FAIL() << "corrupted key parsed cleanly";
  } catch (const util::ParseError& e) {
    EXPECT_NE(e.section().find("line"), std::string::npos) << e.what();
  }
}

// ------------------------------------------------ machine profile contract ----

machine::MachineProfile sample_profile() {
  machine::MultiMapsOptions options;
  options.working_sets = {16ull << 10, 256ull << 10};
  options.strides = {1, 8};
  options.min_refs_per_probe = 20'000;
  options.max_refs_per_probe = 50'000;
  return machine::build_profile(machine::xt5_base(), options);
}

TEST(ProfileRobustnessTest, SeededCorruptionSweep) {
  const std::string text = machine::profile_to_text(sample_profile());
  util::Rng rng(123);
  for (int i = 0; i < 1000; ++i) {
    const Corruption corruption = util::random_corruption(rng, text.size());
    SCOPED_TRACE(corruption.describe());
    try {
      (void)machine::profile_from_text(util::apply_corruption(text, corruption));
    } catch (const util::ParseError&) {
    } catch (const util::Error&) {
      // Hierarchy/energy validation rejects semantically impossible but
      // well-formed values; still a clean, typed refusal.
    }
  }
}

TEST(ProfileRobustnessTest, TruncateAtEveryLine) {
  const std::string text = machine::profile_to_text(sample_profile());
  for (std::size_t at = text.find('\n'); at != std::string::npos;
       at = text.find('\n', at + 1)) {
    try {
      (void)machine::profile_from_text(text.substr(0, at));
      // Only a truncation that sheds nothing but trailing formatting may
      // still parse.
      EXPECT_GT(at + 2, text.size()) << "truncated at byte " << at;
    } catch (const util::Error&) {
      // Typed rejection — the expected outcome.
    }
  }
}

TEST(ProfileRobustnessTest, HugeDeclaredSampleCountCannotForceHugeAllocation) {
  const std::string text = machine::profile_to_text(sample_profile());
  std::string corrupted = text;
  const std::size_t at = corrupted.find("samples\t");
  ASSERT_NE(at, std::string::npos);
  corrupted.replace(at + std::strlen("samples\t"), 1, "1152921504606846976");
  EXPECT_THROW((void)machine::profile_from_text(corrupted), util::ParseError);
}

TEST(ProfileRobustnessTest, LoadAttachesPath) {
  const std::string path = ::testing::TempDir() + "/pmacx_robust_profile.prof";
  std::string text = machine::profile_to_text(sample_profile());
  text.resize(text.size() / 2);
  {
    std::ofstream out(path, std::ios::trunc);
    out << text;
  }
  try {
    (void)machine::load_profile(path);
    FAIL() << "truncated profile parsed cleanly";
  } catch (const util::Error& e) {
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos);
  }
  std::remove(path.c_str());
}

// ------------------------------------------------- graceful degradation ----

TEST(DiagnosticsTest, CleanReportCollapses) {
  core::DiagnosticsReport report;
  EXPECT_TRUE(report.clean());
  EXPECT_NE(report.summary().find("clean"), std::string::npos);
}

TEST(DiagnosticsTest, WarningsAreCapped) {
  core::DiagnosticsReport report;
  for (std::size_t i = 0; i < core::DiagnosticsReport::kMaxWarnings + 10; ++i)
    report.warn("w" + std::to_string(i));
  EXPECT_EQ(report.warnings.size(), core::DiagnosticsReport::kMaxWarnings);
  EXPECT_EQ(report.suppressed_warnings, 10u);
  EXPECT_FALSE(report.clean());
}

TEST(DiagnosticsTest, MergeAccumulates) {
  core::DiagnosticsReport a, b;
  a.fallback_fits = 2;
  a.warn("first");
  b.clamped_values = 3;
  b.salvaged_files = 1;
  b.salvaged_blocks = 7;
  b.lost_blocks = 5;
  b.warn("second");
  a.merge(b);
  EXPECT_EQ(a.fallback_fits, 2u);
  EXPECT_EQ(a.clamped_values, 3u);
  EXPECT_EQ(a.salvaged_blocks, 7u);
  EXPECT_EQ(a.lost_blocks, 5u);
  EXPECT_EQ(a.warnings.size(), 2u);
  const std::string summary = a.summary();
  EXPECT_NE(summary.find("fallback"), std::string::npos);
  EXPECT_NE(summary.find("clamped"), std::string::npos);
  EXPECT_NE(summary.find("salvaged"), std::string::npos);
}

/// A two-point trace series whose chosen element series is set explicitly.
std::vector<TaskTrace> series_with_visits(double v_small, double v_large) {
  std::vector<TaskTrace> series;
  for (double value : {v_small, v_large}) {
    TaskTrace task = sample_trace(1);
    task.core_count = value == v_small ? 8 : 16;
    task.blocks[0].set(BlockElement::VisitCount, value);
    series.push_back(std::move(task));
  }
  return series;
}

TEST(DegradationTest, CleanExtrapolationReportsClean) {
  const auto series = series_with_visits(100.0, 200.0);
  const auto result = core::extrapolate_task(series, 64);
  EXPECT_TRUE(result.diagnostics.clean()) << result.diagnostics.summary();
}

TEST(DegradationTest, ClampedValuesAreCounted) {
  // A steeply decaying count under a linear-only form set extrapolates
  // negative at the target; the value must be clamped to 0 and counted.
  const auto series = series_with_visits(1000.0, 10.0);
  core::ExtrapolationOptions options;
  options.fit.forms = {stats::Form::Linear};
  options.reject_out_of_domain = false;
  const auto result = core::extrapolate_task(series, 1024, options);
  EXPECT_GT(result.diagnostics.clamped_values, 0u);
  EXPECT_FALSE(result.diagnostics.clean());
  const auto* block = result.trace.find_block(10);
  ASSERT_NE(block, nullptr);
  EXPECT_GE(block->get(BlockElement::VisitCount), 0.0);
}

TEST(DegradationTest, OverflowingFitFallsBackToConstant) {
  // A slope of ~1e305/8 overflows past the largest double at p = 1e6; the
  // extrapolator must substitute the constant fallback, not emit inf.
  const auto series = series_with_visits(1.0e305, 1.7e308);
  core::ExtrapolationOptions options;
  options.fit.forms = {stats::Form::Linear};
  options.reject_out_of_domain = false;
  const auto result = core::extrapolate_task(series, 1'000'000, options);
  EXPECT_GT(result.diagnostics.fallback_fits, 0u) << result.diagnostics.summary();
  EXPECT_FALSE(result.diagnostics.warnings.empty());
  const auto* block = result.trace.find_block(10);
  ASSERT_NE(block, nullptr);
  EXPECT_TRUE(std::isfinite(block->get(BlockElement::VisitCount)));
  // The synthetic trace must remain structurally valid despite degradation.
  EXPECT_NO_THROW(result.trace.validate());
}

// ------------------------------------------------------ atomic persistence ----

/// Fresh scratch path under the test temp dir, with any leftovers removed.
std::string scratch_path(const std::string& leaf) {
  const std::string path = ::testing::TempDir() + "/pmacx_atomic_" + leaf;
  std::filesystem::remove(path);
  return path;
}

void write_raw(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(AtomicFileTest, CheckedRoundTrip) {
  const std::string path = scratch_path("roundtrip.bin");
  const std::string payload("payload with \0 embedded bytes", 29);
  util::save_checked(path, payload);
  EXPECT_EQ(util::load_checked(path), payload);
  ASSERT_TRUE(util::try_load_checked(path).has_value());
  EXPECT_EQ(*util::try_load_checked(path), payload);
  std::filesystem::remove(path);
}

TEST(AtomicFileTest, EveryTruncationOfACheckedFileIsRejected) {
  // The kill window this simulates: a crash while the bytes of a *non-atomic*
  // writer were landing.  (write_file_atomic can't produce these states at
  // the destination path — that is the point — so they are forged directly.)
  const std::string path = scratch_path("truncated.bin");
  util::save_checked(path, "twelve bytes");
  const std::string full = util::read_file(path);
  for (std::size_t keep = 0; keep < full.size(); ++keep) {
    write_raw(path, full.substr(0, keep));
    EXPECT_FALSE(util::try_load_checked(path).has_value())
        << "a " << keep << "-byte torn prefix loaded as a complete record";
    EXPECT_THROW((void)util::load_checked(path), util::ParseError);
  }
  std::filesystem::remove(path);
}

TEST(AtomicFileTest, EveryByteFlipOfACheckedFileIsRejected) {
  const std::string path = scratch_path("flipped.bin");
  util::save_checked(path, "bit-rot canary payload");
  const std::string full = util::read_file(path);
  for (std::size_t at = 0; at < full.size(); ++at) {
    std::string damaged = full;
    damaged[at] ^= 0x04;
    write_raw(path, damaged);
    EXPECT_FALSE(util::try_load_checked(path).has_value())
        << "flip at byte " << at << " went undetected";
  }
  std::filesystem::remove(path);
}

TEST(AtomicFileTest, TornTempFileIsIgnoredAndTheOldFileSurvives) {
  // A writer killed between temp-write and rename leaves exactly this state:
  // the destination holds the previous record, a stale temp sits beside it.
  const std::string path = scratch_path("tornwrite.bin");
  util::save_checked(path, "generation 1");
  write_raw(path + ".tmp.424242", "half-written garbage from a dead process");

  EXPECT_EQ(util::load_checked(path), "generation 1") << "old file must stay intact";

  // The next successful write supersedes both the record and the leftover.
  util::save_checked(path, "generation 2");
  EXPECT_EQ(util::load_checked(path), "generation 2");
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".tmp.424242");
}

TEST(AtomicFileTest, MissingFileIsNulloptNotAThrow) {
  EXPECT_FALSE(util::try_load_checked(scratch_path("never_written.bin")).has_value());
}

// ------------------------------------------------------ checkpoint contract ----

/// A three-point series with clean per-block scaling, enough blocks for
/// several checkpoint chunks at chunk_elements = 2.
std::vector<TaskTrace> checkpoint_series() {
  std::vector<TaskTrace> series;
  for (std::uint32_t p : {8u, 16u, 32u}) {
    TaskTrace task = sample_trace(6);
    task.core_count = p;
    for (auto& block : task.blocks) {
      block.set(BlockElement::MemLoads, 8.0e6 / p);
      block.set(BlockElement::MemStores, 4.0e6 / p);
    }
    series.push_back(std::move(task));
  }
  return series;
}

/// The invariant every checkpoint path must uphold: whatever the prior
/// on-disk state, the fitted set extrapolates byte-identically.
std::string checkpoint_golden_bytes(const core::TaskModelSet& models) {
  return trace::to_binary(core::extrapolate_from_models(models, 256).trace);
}

TEST(CheckpointTest, WarmResumeReusesEverythingAndMatchesColdRun) {
  const auto series = checkpoint_series();
  const std::string dir = ::testing::TempDir() + "/pmacx_ckpt_warm";
  std::filesystem::remove_all(dir);
  core::CheckpointConfig config;
  config.dir = dir;
  config.digest = "aaaaaaaaaaaaaaaa";
  config.chunk_elements = 2;

  core::CheckpointStats cold;
  const auto cold_set = core::fit_task_models_checkpointed(series, {}, config, &cold);
  EXPECT_EQ(cold.elements_reused, 0u);
  EXPECT_EQ(cold.elements_fitted, cold.elements_total);
  EXPECT_FALSE(cold.resumed);
  const std::string golden = checkpoint_golden_bytes(cold_set);

  core::CheckpointStats warm;
  const auto warm_set = core::fit_task_models_checkpointed(series, {}, config, &warm);
  EXPECT_EQ(warm.elements_fitted, 0u);
  EXPECT_EQ(warm.elements_reused, warm.elements_total);
  EXPECT_TRUE(warm.resumed);
  EXPECT_EQ(checkpoint_golden_bytes(warm_set), golden);
  std::filesystem::remove_all(dir);
}

TEST(CheckpointTest, DigestMismatchDiscardsStaleStateAndRefitsCleanly) {
  const auto series = checkpoint_series();
  const std::string dir = ::testing::TempDir() + "/pmacx_ckpt_digest";
  std::filesystem::remove_all(dir);
  core::CheckpointConfig config;
  config.dir = dir;
  config.digest = "aaaaaaaaaaaaaaaa";
  config.chunk_elements = 2;
  const auto first = core::fit_task_models_checkpointed(series, {}, config, nullptr);
  const std::string golden = checkpoint_golden_bytes(first);

  // Same directory, different content digest: everything on disk describes
  // some other workload and must be dropped, never reused.
  config.digest = "bbbbbbbbbbbbbbbb";
  core::CheckpointStats stats;
  const auto refit = core::fit_task_models_checkpointed(series, {}, config, &stats);
  EXPECT_EQ(stats.elements_reused, 0u);
  EXPECT_EQ(stats.elements_fitted, stats.elements_total);
  EXPECT_FALSE(stats.resumed);
  EXPECT_EQ(checkpoint_golden_bytes(refit), golden);
  std::filesystem::remove_all(dir);
}

TEST(CheckpointTest, VersionMismatchDiscardsTheCheckpoint) {
  const auto series = checkpoint_series();
  const std::string dir = ::testing::TempDir() + "/pmacx_ckpt_version";
  std::filesystem::remove_all(dir);
  core::CheckpointConfig config;
  config.dir = dir;
  config.digest = "aaaaaaaaaaaaaaaa";
  config.chunk_elements = 2;
  const auto first = core::fit_task_models_checkpointed(series, {}, config, nullptr);
  const std::string golden = checkpoint_golden_bytes(first);

  // Forge a manifest from a hypothetical older format version.  The CRC
  // trailer is valid — only the version string disagrees — so this is the
  // "software upgraded across a resume" case, not corruption.
  std::string payload;
  auto put_str = [&payload](const std::string& s) {
    const auto size = static_cast<std::uint32_t>(s.size());
    payload.append(reinterpret_cast<const char*>(&size), sizeof(size));
    payload += s;
  };
  auto put_u64 = [&payload](std::uint64_t v) {
    payload.append(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  put_str("pmacx-ckpt-v0");
  put_str(config.digest);
  put_u64(6);
  put_u64(2);
  util::save_checked(dir + "/manifest.ckpt", payload);

  core::CheckpointStats stats;
  const auto refit = core::fit_task_models_checkpointed(series, {}, config, &stats);
  EXPECT_EQ(stats.elements_reused, 0u) << "stale-version chunks must never be reused";
  EXPECT_EQ(stats.elements_fitted, stats.elements_total);
  EXPECT_EQ(checkpoint_golden_bytes(refit), golden);
  std::filesystem::remove_all(dir);
}

TEST(CheckpointTest, CorruptChunkIsDiscardedAndOnlyItIsRefitted) {
  const auto series = checkpoint_series();
  const std::string dir = ::testing::TempDir() + "/pmacx_ckpt_chunk";
  std::filesystem::remove_all(dir);
  core::CheckpointConfig config;
  config.dir = dir;
  config.digest = "aaaaaaaaaaaaaaaa";
  config.chunk_elements = 2;
  const auto first = core::fit_task_models_checkpointed(series, {}, config, nullptr);
  const std::string golden = checkpoint_golden_bytes(first);

  std::string damaged_chunk = dir + "/models_000001.ckpt";
  ASSERT_TRUE(std::filesystem::exists(damaged_chunk));
  std::string bytes = util::read_file(damaged_chunk);
  bytes[bytes.size() / 2] ^= 0x20;
  write_raw(damaged_chunk, bytes);

  core::CheckpointStats stats;
  const auto resumed = core::fit_task_models_checkpointed(series, {}, config, &stats);
  EXPECT_GE(stats.chunks_discarded, 1u);
  EXPECT_GT(stats.elements_reused, 0u) << "undamaged chunks must still be reused";
  EXPECT_GT(stats.elements_fitted, 0u) << "the damaged chunk must be refitted";
  EXPECT_LT(stats.elements_fitted, stats.elements_total);
  EXPECT_EQ(checkpoint_golden_bytes(resumed), golden);
  std::filesystem::remove_all(dir);
}

TEST(CheckpointTest, CorruptManifestForcesCleanFullRefit) {
  const auto series = checkpoint_series();
  const std::string dir = ::testing::TempDir() + "/pmacx_ckpt_manifest";
  std::filesystem::remove_all(dir);
  core::CheckpointConfig config;
  config.dir = dir;
  config.digest = "aaaaaaaaaaaaaaaa";
  config.chunk_elements = 2;
  const auto first = core::fit_task_models_checkpointed(series, {}, config, nullptr);
  const std::string golden = checkpoint_golden_bytes(first);

  std::string bytes = util::read_file(dir + "/manifest.ckpt");
  bytes[bytes.size() / 3] ^= 0x08;
  write_raw(dir + "/manifest.ckpt", bytes);

  core::CheckpointStats stats;
  const auto refit = core::fit_task_models_checkpointed(series, {}, config, &stats);
  EXPECT_EQ(stats.elements_reused, 0u);
  EXPECT_EQ(stats.elements_fitted, stats.elements_total);
  EXPECT_EQ(checkpoint_golden_bytes(refit), golden);
  std::filesystem::remove_all(dir);
}

TEST(CheckpointTest, RandomCorruptionOfCheckpointFilesNeverCrashesOrLies) {
  const auto series = checkpoint_series();
  const std::string dir = ::testing::TempDir() + "/pmacx_ckpt_sweep";
  std::filesystem::remove_all(dir);
  core::CheckpointConfig config;
  config.dir = dir;
  config.digest = "aaaaaaaaaaaaaaaa";
  config.chunk_elements = 2;
  const auto first = core::fit_task_models_checkpointed(series, {}, config, nullptr);
  const std::string golden = checkpoint_golden_bytes(first);

  std::vector<std::string> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir))
    files.push_back(entry.path().string());
  std::sort(files.begin(), files.end());
  std::vector<std::string> pristine;
  for (const auto& file : files) pristine.push_back(util::read_file(file));

  util::Rng rng(4242);
  for (int round = 0; round < 60; ++round) {
    const std::size_t target = rng.below(files.size());
    const Corruption corruption = util::random_corruption(rng, pristine[target].size());
    SCOPED_TRACE(files[target] + ": " + corruption.describe());
    write_raw(files[target], util::apply_corruption(pristine[target], corruption));
    core::CheckpointStats stats;
    const auto models = core::fit_task_models_checkpointed(series, {}, config, &stats);
    // The one inviolable contract: whatever the damage did, the result is
    // byte-identical and accounting stays total.
    EXPECT_EQ(checkpoint_golden_bytes(models), golden);
    EXPECT_EQ(stats.elements_reused + stats.elements_fitted, stats.elements_total);
    // The run repaired the store on disk; restore the damaged byte pattern
    // baseline for the next round from the now-clean state.
    for (std::size_t i = 0; i < files.size(); ++i) pristine[i] = util::read_file(files[i]);
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace pmacx
