// Tests for memsim::replay_ranks: concurrent replay of independent rank
// hierarchies must be bit-identical to the serial rank-by-rank replay —
// each rank owns its hierarchy and stream, so scheduling cannot perturb a
// single counter.
#include <gtest/gtest.h>

#include "machine/targets.hpp"
#include "memsim/parallel_replay.hpp"
#include "synth/patterns.hpp"
#include "util/error.hpp"
#include "util/threadpool.hpp"

namespace pmacx {
namespace {

memsim::RankStreamFactory test_factory(synth::Pattern pattern) {
  return [pattern](std::uint32_t rank) -> memsim::RefGenerator {
    synth::StreamSpec spec;
    spec.pattern = pattern;
    spec.base_addr = (1ull << 40) + (static_cast<std::uint64_t>(rank) << 30);
    spec.footprint_bytes = 1u << 20;
    spec.elem_bytes = 8;
    spec.stride_elems = 3;
    spec.store_fraction = 0.25;
    synth::RefStream stream(spec, 1000 + rank);
    return [stream]() mutable { return stream.next(); };
  };
}

void expect_identical(const memsim::AccessCounters& a, const memsim::AccessCounters& b) {
  EXPECT_EQ(a.refs, b.refs);
  EXPECT_EQ(a.loads, b.loads);
  EXPECT_EQ(a.stores, b.stores);
  EXPECT_EQ(a.bytes, b.bytes);
  EXPECT_EQ(a.line_accesses, b.line_accesses);
  for (std::size_t lvl = 0; lvl < memsim::kMaxLevels; ++lvl)
    EXPECT_EQ(a.level_hits[lvl], b.level_hits[lvl]);
  EXPECT_EQ(a.memory_accesses, b.memory_accesses);
  EXPECT_EQ(a.tlb_misses, b.tlb_misses);
  EXPECT_EQ(a.writebacks, b.writebacks);
}

TEST(ParallelReplay, MatchesSerialBitIdentical) {
  const memsim::HierarchyConfig config = machine::bluewaters_p1().hierarchy;
  for (const synth::Pattern pattern :
       {synth::Pattern::Sequential, synth::Pattern::Random, synth::Pattern::Strided}) {
    const auto serial =
        memsim::replay_ranks(config, 6, 20'000, test_factory(pattern), nullptr);

    util::ThreadPool pool(4);
    const auto parallel =
        memsim::replay_ranks(config, 6, 20'000, test_factory(pattern), &pool);

    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t r = 0; r < serial.size(); ++r) {
      EXPECT_EQ(serial[r].rank, r);
      EXPECT_EQ(parallel[r].rank, r);
      expect_identical(serial[r].counters, parallel[r].counters);
    }
  }
}

TEST(ParallelReplay, SerialPoolTakesTheInlinePath) {
  const memsim::HierarchyConfig config = machine::bluewaters_p1().hierarchy;
  util::ThreadPool serial_pool(1);
  const auto via_pool = memsim::replay_ranks(config, 3, 5'000,
                                             test_factory(synth::Pattern::Random),
                                             &serial_pool);
  const auto no_pool =
      memsim::replay_ranks(config, 3, 5'000, test_factory(synth::Pattern::Random));
  ASSERT_EQ(via_pool.size(), 3u);
  for (std::size_t r = 0; r < via_pool.size(); ++r)
    expect_identical(via_pool[r].counters, no_pool[r].counters);
}

TEST(ParallelReplay, RequiresFactory) {
  const memsim::HierarchyConfig config = machine::bluewaters_p1().hierarchy;
  EXPECT_THROW(memsim::replay_ranks(config, 1, 10, nullptr), util::Error);
}

}  // namespace
}  // namespace pmacx
