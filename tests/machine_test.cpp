// Tests for the machine substrate: timing model, MultiMAPS probing, the
// bandwidth surface, machine profiles and the predefined targets.
#include <gtest/gtest.h>

#include <cstdio>

#include "machine/dvfs.hpp"
#include "machine/energy.hpp"
#include "machine/multimaps.hpp"
#include "machine/profile.hpp"
#include "machine/profile_io.hpp"
#include "machine/targets.hpp"
#include "machine/timing.hpp"
#include "util/error.hpp"

namespace pmacx {
namespace {

using machine::BandwidthSample;
using machine::BandwidthSurface;
using machine::MemTimingModel;
using machine::MultiMapsOptions;
using machine::TargetSystem;

MultiMapsOptions fast_probe() {
  MultiMapsOptions options;
  options.working_sets = {16ull << 10, 256ull << 10, 4ull << 20};
  options.strides = {1, 8};
  options.min_refs_per_probe = 50'000;
  options.max_refs_per_probe = 200'000;
  return options;
}

// ---------------------------------------------------------------- timing ----

TEST(TimingTest, CostsGrowWithDepth) {
  const TargetSystem sys = machine::xt5_base();
  const MemTimingModel timing(sys.hierarchy, sys.clock_ghz);
  EXPECT_LT(timing.level_seconds(0), timing.level_seconds(1));
  EXPECT_LT(timing.level_seconds(1), timing.level_seconds(2));
  EXPECT_LT(timing.level_seconds(2), timing.memory_seconds());
}

TEST(TimingTest, SecondsForCountersIsLinear) {
  const TargetSystem sys = machine::xt5_base();
  const MemTimingModel timing(sys.hierarchy, sys.clock_ghz);
  memsim::AccessCounters counters;
  counters.level_hits[0] = 10;
  counters.memory_accesses = 2;
  const double expected =
      10 * timing.level_seconds(0) + 2 * timing.memory_seconds();
  EXPECT_DOUBLE_EQ(timing.seconds_for(counters), expected);
}

TEST(TimingTest, ZeroExposureHidesLatency) {
  const TargetSystem sys = machine::xt5_base();
  const MemTimingModel hidden(sys.hierarchy, sys.clock_ghz, 0.0);
  const MemTimingModel exposed(sys.hierarchy, sys.clock_ghz, 1.0);
  EXPECT_LT(hidden.memory_seconds(), exposed.memory_seconds());
}

TEST(TimingTest, RejectsBadParameters) {
  const TargetSystem sys = machine::xt5_base();
  EXPECT_THROW(MemTimingModel(sys.hierarchy, 0.0), util::Error);
  EXPECT_THROW(MemTimingModel(sys.hierarchy, 2.0, 1.5), util::Error);
  const MemTimingModel timing(sys.hierarchy, 2.0);
  EXPECT_THROW(timing.level_seconds(7), util::Error);
}

// ------------------------------------------------------------- multimaps ----

TEST(MultiMapsTest, BandwidthFallsAsWorkingSetGrows) {
  const TargetSystem sys = machine::opteron_2level();
  const MemTimingModel timing(sys.hierarchy, sys.clock_ghz);
  const auto samples = machine::run_multimaps(sys.hierarchy, timing, fast_probe());
  // Find the stride-1 samples and check the Fig. 1 shape: in-cache working
  // sets sustain strictly more bandwidth than memory-sized ones.
  double small_bw = 0.0, large_bw = 0.0;
  for (const auto& s : samples) {
    if (s.random || s.stride_elems != 1) continue;
    if (s.working_set_bytes == 16ull << 10) small_bw = s.bandwidth_bytes_per_s;
    if (s.working_set_bytes == 4ull << 20) large_bw = s.bandwidth_bytes_per_s;
  }
  ASSERT_GT(small_bw, 0.0);
  ASSERT_GT(large_bw, 0.0);
  EXPECT_GT(small_bw, 2.0 * large_bw);
}

TEST(MultiMapsTest, HitRatesTrackWorkingSets) {
  const TargetSystem sys = machine::opteron_2level();
  const MemTimingModel timing(sys.hierarchy, sys.clock_ghz);
  const auto samples = machine::run_multimaps(sys.hierarchy, timing, fast_probe());
  for (const auto& s : samples) {
    EXPECT_GE(s.hit_rates[0], 0.0);
    EXPECT_LE(s.hit_rates[2], 1.0);
    EXPECT_LE(s.hit_rates[0], s.hit_rates[1] + 1e-12);
    // 2-level machine: the L3 slot repeats L2.
    EXPECT_DOUBLE_EQ(s.hit_rates[1], s.hit_rates[2]);
  }
}

TEST(MultiMapsTest, RandomProbesIncluded) {
  const TargetSystem sys = machine::opteron_2level();
  const MemTimingModel timing(sys.hierarchy, sys.clock_ghz);
  auto options = fast_probe();
  const auto samples = machine::run_multimaps(sys.hierarchy, timing, options);
  std::size_t random_count = 0;
  for (const auto& s : samples)
    if (s.random) ++random_count;
  EXPECT_EQ(random_count, options.working_sets.size());
  EXPECT_EQ(samples.size(),
            options.working_sets.size() * (options.strides.size() + 1));
}

// --------------------------------------------------------------- surface ----

TEST(SurfaceTest, ExactAtSamplePoints) {
  std::vector<BandwidthSample> samples(2);
  samples[0].hit_rates = {0.5, 0.8, 0.9};
  samples[0].bandwidth_bytes_per_s = 1e9;
  samples[1].hit_rates = {0.9, 0.95, 1.0};
  samples[1].bandwidth_bytes_per_s = 5e9;
  const BandwidthSurface surface(samples);
  EXPECT_DOUBLE_EQ(surface.lookup({0.5, 0.8, 0.9}), 1e9);
  EXPECT_DOUBLE_EQ(surface.lookup({0.9, 0.95, 1.0}), 5e9);
}

TEST(SurfaceTest, InterpolationBoundedBySamples) {
  std::vector<BandwidthSample> samples(2);
  samples[0].hit_rates = {0.0, 0.0, 0.0};
  samples[0].bandwidth_bytes_per_s = 1e8;
  samples[1].hit_rates = {1.0, 1.0, 1.0};
  samples[1].bandwidth_bytes_per_s = 1e10;
  const BandwidthSurface surface(samples);
  const double mid = surface.lookup({0.5, 0.5, 0.5});
  EXPECT_GT(mid, 1e8);
  EXPECT_LT(mid, 1e10);
}

TEST(SurfaceTest, HigherHitRatesNeverLowerBandwidthOnRealProbe) {
  const TargetSystem sys = machine::opteron_2level();
  const auto profile = machine::build_profile(sys, fast_probe());
  const double low = profile.surface.lookup({0.2, 0.4, 0.4});
  const double high = profile.surface.lookup({0.95, 0.99, 0.99});
  EXPECT_GT(high, low);
}

TEST(SurfaceTest, RejectsEmptyAndNonPositive) {
  EXPECT_THROW(BandwidthSurface(std::vector<BandwidthSample>{}), util::Error);
  std::vector<BandwidthSample> bad(1);
  bad[0].bandwidth_bytes_per_s = 0.0;
  EXPECT_THROW(BandwidthSurface(std::move(bad)), util::Error);
}

// --------------------------------------------------------------- profile ----

TEST(ProfileTest, BuildsForAllTargets) {
  for (const TargetSystem& sys :
       {machine::xt5_base(), machine::bluewaters_p1(), machine::opteron_2level(),
        machine::system_a_12kb(), machine::system_b_56kb()}) {
    EXPECT_NO_THROW({
      const auto profile = machine::build_profile(sys, fast_probe());
      EXPECT_FALSE(profile.surface.samples().empty());
    }) << sys.name;
  }
}

TEST(ProfileTest, FpSecondsScalesWithWorkAndIlp) {
  const auto profile = machine::build_profile(machine::xt5_base(), fast_probe());
  const double base = profile.fp_seconds(1e9, 0, 0, 0, 4.0);
  EXPECT_GT(base, 0.0);
  EXPECT_DOUBLE_EQ(profile.fp_seconds(2e9, 0, 0, 0, 4.0), 2.0 * base);
  // Lower ILP → slower; ILP beyond the issue width saturates.
  EXPECT_GT(profile.fp_seconds(1e9, 0, 0, 0, 1.0), base);
  EXPECT_DOUBLE_EQ(profile.fp_seconds(1e9, 0, 0, 0, 8.0), base);
  // Divides cost extra.
  EXPECT_GT(profile.fp_seconds(1e9, 0, 0, 1e6, 4.0), base);
}

TEST(ProfileTest, TargetGeometriesDiffer) {
  EXPECT_EQ(machine::system_a_12kb().hierarchy.levels[0].size_bytes, 12ull << 10);
  EXPECT_EQ(machine::system_b_56kb().hierarchy.levels[0].size_bytes, 56ull << 10);
  // Systems A and B share L2/L3.
  EXPECT_EQ(machine::system_a_12kb().hierarchy.levels[1].size_bytes,
            machine::system_b_56kb().hierarchy.levels[1].size_bytes);
  EXPECT_EQ(machine::opteron_2level().hierarchy.levels.size(), 2u);
}

TEST(ProfileTest, EnergyModelValidation) {
  machine::EnergyModel model;
  EXPECT_NO_THROW(model.validate());
  model.level_nj = {2.0, 1.0, 3.0};  // shrinking with depth
  EXPECT_THROW(model.validate(), util::Error);
  model = machine::EnergyModel{};
  model.memory_nj = 0.1;  // below the last cache level
  EXPECT_THROW(model.validate(), util::Error);
  model = machine::EnergyModel{};
  model.fp_nj = 0.0;
  EXPECT_THROW(model.validate(), util::Error);
  model = machine::EnergyModel{};
  model.static_watts_per_core = -1.0;
  EXPECT_THROW(model.validate(), util::Error);
}

// ------------------------------------------------------------ profile io ----

TEST(ProfileIoTest, RoundTripPreservesEverything) {
  const auto original = machine::build_profile(machine::xt5_base(), fast_probe());
  const auto loaded = machine::profile_from_text(machine::profile_to_text(original));

  EXPECT_EQ(loaded.system.name, original.system.name);
  EXPECT_EQ(loaded.system.clock_ghz, original.system.clock_ghz);
  EXPECT_EQ(loaded.system.hierarchy.levels.size(),
            original.system.hierarchy.levels.size());
  for (std::size_t lvl = 0; lvl < original.system.hierarchy.levels.size(); ++lvl) {
    EXPECT_EQ(loaded.system.hierarchy.levels[lvl].size_bytes,
              original.system.hierarchy.levels[lvl].size_bytes);
    EXPECT_EQ(loaded.system.hierarchy.levels[lvl].associativity,
              original.system.hierarchy.levels[lvl].associativity);
  }
  EXPECT_EQ(loaded.system.network.eager_threshold_bytes,
            original.system.network.eager_threshold_bytes);
  EXPECT_EQ(loaded.system.network.torus.enabled, original.system.network.torus.enabled);
  EXPECT_EQ(loaded.system.energy.static_watts_per_core,
            original.system.energy.static_watts_per_core);
  ASSERT_EQ(loaded.surface.samples().size(), original.surface.samples().size());

  // The reconstructed surface answers lookups identically (same samples →
  // same deterministic regression).
  for (const auto& query : {std::array<double, 3>{0.5, 0.8, 0.9},
                            std::array<double, 3>{0.95, 0.98, 0.99},
                            std::array<double, 3>{0.0, 0.2, 0.4}}) {
    EXPECT_DOUBLE_EQ(loaded.surface.lookup(query), original.surface.lookup(query));
  }
  // Timing model reproduces too.
  EXPECT_DOUBLE_EQ(loaded.timing.memory_seconds(), original.timing.memory_seconds());
}

TEST(ProfileIoTest, FileRoundTrip) {
  const auto original = machine::build_profile(machine::opteron_2level(), fast_probe());
  const std::string path = ::testing::TempDir() + "/pmacx_profile_test.prof";
  machine::save_profile(original, path);
  const auto loaded = machine::load_profile(path);
  EXPECT_EQ(loaded.system.name, original.system.name);
  EXPECT_EQ(loaded.surface.samples().size(), original.surface.samples().size());
  std::remove(path.c_str());
}

TEST(ProfileIoTest, RejectsMalformed) {
  EXPECT_THROW(machine::profile_from_text("not a profile"), util::Error);
  EXPECT_THROW(machine::load_profile("/nonexistent/p.prof"), util::Error);
  auto text = machine::profile_to_text(
      machine::build_profile(machine::opteron_2level(), fast_probe()));
  text.resize(text.size() / 2);
  EXPECT_THROW(machine::profile_from_text(text), util::Error);
}

TEST(DvfsTest, ScalingRules) {
  const TargetSystem base = machine::bluewaters_p1();
  const TargetSystem half = machine::scale_frequency(base, base.clock_ghz / 2);

  // Memory is physical: constant nanoseconds / bytes-per-second.
  const double base_mem_ns =
      base.hierarchy.memory_latency_cycles / base.clock_ghz;
  const double half_mem_ns =
      half.hierarchy.memory_latency_cycles / half.clock_ghz;
  EXPECT_NEAR(base_mem_ns, half_mem_ns, 1e-9);
  EXPECT_NEAR(base.hierarchy.memory_bandwidth_bytes_per_cycle * base.clock_ghz,
              half.hierarchy.memory_bandwidth_bytes_per_cycle * half.clock_ghz, 1e-9);

  // Caches track the core clock: cycle figures unchanged.
  EXPECT_DOUBLE_EQ(half.hierarchy.levels[0].latency_cycles,
                   base.hierarchy.levels[0].latency_cycles);
  EXPECT_EQ(half.hierarchy.levels[0].size_bytes, base.hierarchy.levels[0].size_bytes);

  // Core energies ∝ f², memory energy constant, static power ∝ f.
  EXPECT_NEAR(half.energy.fp_nj, base.energy.fp_nj / 4.0, 1e-12);
  EXPECT_DOUBLE_EQ(half.energy.memory_nj, base.energy.memory_nj);
  EXPECT_NEAR(half.energy.static_watts_per_core,
              base.energy.static_watts_per_core / 2.0, 1e-12);
  EXPECT_NO_THROW(half.hierarchy.validate());
}

TEST(DvfsTest, MemoryBoundWorkSlowsSubLinearly) {
  // At half the clock, a pure-memory workload's time (in seconds) is
  // unchanged, a pure-compute one doubles.
  const TargetSystem base = machine::bluewaters_p1();
  const TargetSystem half = machine::scale_frequency(base, base.clock_ghz / 2);
  const machine::MemTimingModel fast(base.hierarchy, base.clock_ghz);
  const machine::MemTimingModel slow(half.hierarchy, half.clock_ghz);
  EXPECT_NEAR(slow.memory_seconds(), fast.memory_seconds(), 1e-15);
  EXPECT_NEAR(slow.level_seconds(0), 2.0 * fast.level_seconds(0), 1e-15);
}

TEST(DvfsTest, RejectsBadClock) {
  EXPECT_THROW(machine::scale_frequency(machine::bluewaters_p1(), 0.0), util::Error);
}

TEST(ProfileTest, TargetLookupByName) {
  for (const std::string& name : machine::target_names()) {
    EXPECT_EQ(machine::target_by_name(name).name, name);
  }
  EXPECT_THROW(machine::target_by_name("cray-xt9000"), util::Error);
}

TEST(ProfileTest, AllTargetHierarchiesValidate) {
  for (const TargetSystem& sys :
       {machine::xt5_base(), machine::bluewaters_p1(), machine::opteron_2level(),
        machine::system_a_12kb(), machine::system_b_56kb()}) {
    EXPECT_NO_THROW(sys.hierarchy.validate()) << sys.name;
  }
}

}  // namespace
}  // namespace pmacx
