// Cluster-mode integration tests: in-process shard Servers behind an
// in-process service::Router.  Covers the router's transparency contract
// (responses byte-identical to a direct single-shard call), health-checked
// failover when the primary replica of a digest dies mid-run, STATUS
// aggregation (per-shard health + identity lines, dead shards included),
// and SHUTDOWN fan-out draining the whole fleet.  Runs under TSan in the CI
// matrix (name matches the 'service' regex).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "core/checkpoint.hpp"
#include "service/client.hpp"
#include "service/protocol.hpp"
#include "service/router.hpp"
#include "service/server.hpp"
#include "service/shard_ring.hpp"
#include "trace/task_trace.hpp"
#include "util/metrics.hpp"

namespace pmacx {
namespace {

using trace::BlockElement;
using trace::TaskTrace;

/// Same known-scaling-laws trace family service_test.cpp uses; the digest
/// content-addresses these files, so the ring placement is deterministic.
TaskTrace law_trace(double p) {
  TaskTrace task;
  task.app = "specfem3d";
  task.core_count = static_cast<std::uint32_t>(p);
  task.target_system = "bluewaters-p1";

  trace::BasicBlockRecord block;
  block.id = 1;
  block.location = {"solver.c", 10, "solve"};
  block.set(BlockElement::VisitCount, 42.0);
  block.set(BlockElement::MemLoads, 1e10 / p);
  block.set(BlockElement::MemStores, 4e9 / p);
  block.set(BlockElement::BytesPerRef, 8.0);
  block.set(BlockElement::HitRateL1, 0.4);
  block.set(BlockElement::HitRateL2, 0.5 + 0.00004 * p);
  block.set(BlockElement::HitRateL3, 0.95);
  block.set(BlockElement::WorkingSetBytes, 4.6e9 / p);
  block.set(BlockElement::Ilp, 3.5);
  block.set(BlockElement::DepChainLength, 6.0);
  task.blocks.push_back(block);
  task.sort_blocks();
  return task;
}

std::vector<std::string> law_trace_files() {
  static std::vector<std::string> paths = [] {
    std::vector<std::string> created;
    for (double p : {16.0, 32.0, 64.0}) {
      const std::string path = testing::TempDir() + "cluster_law_" +
                               std::to_string(static_cast<int>(p)) + ".trace";
      law_trace(p).save(path);
      created.push_back(path);
    }
    return created;
  }();
  return paths;
}

service::Request extrapolate_request(std::uint32_t target_cores = 256) {
  service::Request request;
  request.type = service::MsgType::Extrapolate;
  request.spec.trace_paths = law_trace_files();
  request.target_cores = target_cores;
  return request;
}

std::uint64_t counter_value(const char* name) {
  return util::metrics::Registry::global().counter(name).value();
}

/// A 3-shard R=2 cluster of in-process Servers plus a Router fronting them.
/// Shards are held by unique_ptr so tests can kill one (destroying it closes
/// its listen socket and drains it — the in-process stand-in for SIGKILL).
struct Cluster {
  std::vector<std::unique_ptr<service::Server>> shards;
  service::Topology topology;
  std::unique_ptr<service::Router> router;

  explicit Cluster(std::size_t shard_count = 3, std::size_t replication = 2) {
    topology.replication = replication;
    for (std::uint32_t id = 0; id < shard_count; ++id)
      topology.shards.push_back({id, "127.0.0.1", 0});
    topology.validate();

    for (std::uint32_t id = 0; id < shard_count; ++id) {
      service::ServerOptions options;
      options.shard_id = id;
      options.ring_epoch = topology.epoch();
      shards.push_back(std::make_unique<service::Server>(options));
      shards.back()->start();
      topology.shards[id].port = shards.back()->port();
    }

    service::RouterOptions router_options;
    router_options.topology = topology;
    // Tight failover budget: tests that exhaust every replica should fail
    // in seconds, not the production default's 20.
    router_options.failover_deadline_ms = 5'000;
    router_options.shard_connect_deadline_ms = 500;
    router = std::make_unique<service::Router>(router_options);
    router->start();
  }

  service::Client client() {
    service::ClientOptions options;
    options.port = router->port();
    options.io_timeout_ms = 120'000;
    return service::Client(options);
  }

  service::Client direct_client(std::uint32_t shard_id) {
    service::ClientOptions options;
    options.port = topology.shards.at(shard_id).port;
    options.io_timeout_ms = 120'000;
    return service::Client(options);
  }

  /// The replica set of the law-trace workload's digest.
  std::vector<std::uint32_t> workload_replicas() const {
    const std::string digest = core::models_digest_for_files(
        law_trace_files(), service::FitSpec{law_trace_files()}.to_options());
    return router->ring().replicas_for(digest);
  }
};

TEST(RouterTest, RoutedResponsesAreByteIdenticalToDirectShardCalls) {
  Cluster cluster;
  const service::Request request = extrapolate_request();

  service::Client direct = cluster.direct_client(cluster.workload_replicas()[0]);
  const service::Response reference = direct.call(request);
  ASSERT_EQ(reference.status, service::Status::Ok) << reference.body;

  service::Client routed = cluster.client();
  for (int i = 0; i < 3; ++i) {
    const service::Response response = routed.call(request);
    ASSERT_EQ(response.status, service::Status::Ok) << response.body;
    EXPECT_EQ(response.body, reference.body)
        << "the router must be invisible in the payload";
  }
}

TEST(RouterTest, PredictIntervalRoutesTransparentlyWithIdenticalBytes) {
  // The ISSUE 8 contract: PREDICT_INTERVAL responses must be byte-identical
  // between a direct shard call and the routed cluster call.  Coverage is a
  // query parameter, not part of the fit spec, so the request lands on the
  // same replica set as the point-path queries for these traces.
  Cluster cluster;
  service::Request request = extrapolate_request();
  request.type = service::MsgType::PredictInterval;
  request.interval_coverage = 0.9;

  service::Client direct = cluster.direct_client(cluster.workload_replicas()[0]);
  const service::Response reference = direct.call(request);
  ASSERT_EQ(reference.status, service::Status::Ok) << reference.body;
  const service::IntervalResult decoded =
      service::decode_interval_result(reference.body);
  EXPECT_FALSE(decoded.lo.empty());
  EXPECT_FALSE(decoded.median.empty());
  EXPECT_FALSE(decoded.hi.empty());
  EXPECT_FALSE(decoded.report_csv.empty());

  service::Client routed = cluster.client();
  for (int i = 0; i < 3; ++i) {
    const service::Response response = routed.call(request);
    ASSERT_EQ(response.status, service::Status::Ok) << response.body;
    EXPECT_EQ(response.body, reference.body)
        << "the router must be invisible in the interval payload";
  }
}

TEST(RouterTest, FailsOverWhenThePrimaryReplicaDies) {
  Cluster cluster;
  const std::vector<std::uint32_t> replicas = cluster.workload_replicas();
  ASSERT_EQ(replicas.size(), 2u);

  service::Client client = cluster.client();
  const service::Request request = extrapolate_request();
  const service::Response before = client.call(request);
  ASSERT_EQ(before.status, service::Status::Ok) << before.body;

  // Kill the primary: its listen socket closes, so the router's next hop to
  // it is refused and must fail over to the surviving replica.
  const std::uint64_t failovers_before = counter_value("service.router.failover");
  cluster.shards[replicas[0]].reset();

  const service::Response after = client.call(request);
  ASSERT_EQ(after.status, service::Status::Ok)
      << "failover must absorb a dead primary: " << after.body;
  EXPECT_EQ(after.body, before.body) << "the replica must serve identical bytes";
  EXPECT_GT(counter_value("service.router.failover"), failovers_before)
      << "the failover counter proves the non-primary hop happened";
}

TEST(RouterTest, ReportsErrorWhenEveryReplicaIsDown) {
  Cluster cluster;
  const std::vector<std::uint32_t> replicas = cluster.workload_replicas();
  for (const std::uint32_t id : replicas) cluster.shards[id].reset();

  const std::uint64_t exhausted_before = counter_value("service.router.exhausted");
  service::Client client = cluster.client();
  const service::Response response = client.call(extrapolate_request());
  EXPECT_EQ(response.status, service::Status::Error)
      << "no replica alive: a definite error, not a hang";
  EXPECT_NE(response.body.find("no replica"), std::string::npos) << response.body;
  EXPECT_GT(counter_value("service.router.exhausted"), exhausted_before);
}

TEST(RouterTest, StatusAggregatesShardHealthAndIdentity) {
  Cluster cluster;
  service::Client client = cluster.client();
  service::Request status;
  status.type = service::MsgType::Status;

  service::Response response = client.call(status);
  ASSERT_EQ(response.status, service::Status::Ok);
  EXPECT_NE(response.body.find("router.shards 3"), std::string::npos) << response.body;
  EXPECT_NE(response.body.find("router.replication 2"), std::string::npos);
  EXPECT_NE(response.body.find("router.ring_epoch"), std::string::npos);
  for (const char* line : {"shard.0.healthy 1", "shard.1.healthy 1", "shard.2.healthy 1",
                           "shard.0.shard_id 0", "shard.1.shard_id 1",
                           "shard.0.version", "shard.0.uptime_ms"})
    EXPECT_NE(response.body.find(line), std::string::npos)
        << "missing '" << line << "' in:\n" << response.body;

  // Kill shard 1: the aggregate must flip exactly its health bit and keep
  // answering OK (a degraded cluster is an observable state, not an error).
  cluster.shards[1].reset();
  response = client.call(status);
  ASSERT_EQ(response.status, service::Status::Ok);
  EXPECT_NE(response.body.find("shard.1.healthy 0"), std::string::npos) << response.body;
  EXPECT_NE(response.body.find("shard.1.error"), std::string::npos);
  EXPECT_NE(response.body.find("shard.0.healthy 1"), std::string::npos);
  EXPECT_NE(response.body.find("shard.2.healthy 1"), std::string::npos);
}

TEST(RouterTest, ShutdownFansOutToEveryShardAndStopsTheRouter) {
  Cluster cluster;
  service::Client client = cluster.client();
  service::Request shutdown;
  shutdown.type = service::MsgType::Shutdown;

  const service::Response response = client.call(shutdown);
  EXPECT_EQ(response.status, service::Status::Ok);
  EXPECT_NE(response.body.find("draining"), std::string::npos) << response.body;

  // The fan-out must reach every shard: each Server's wait() returns only
  // once its own stop flag is set, so returning at all is the assertion.
  cluster.router->wait();
  EXPECT_TRUE(cluster.router->stopping());
  for (auto& shard : cluster.shards) shard->wait();
}

}  // namespace
}  // namespace pmacx
