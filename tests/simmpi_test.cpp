// Tests for the network model and the replay engine: rendezvous timing
// math, collective synchronization, deadlock detection and the profiler.
#include <gtest/gtest.h>

#include <cmath>

#include "simmpi/network.hpp"
#include "simmpi/profiler.hpp"
#include "simmpi/replay.hpp"
#include "util/error.hpp"

namespace pmacx {
namespace {

using simmpi::NetworkModel;
using simmpi::RankTimeline;
using simmpi::replay;
using trace::CommEvent;
using trace::CommOp;

NetworkModel flat_network() {
  NetworkModel net;
  net.latency_s = 1.0;               // big round numbers: exact arithmetic
  net.bandwidth_bytes_per_s = 100.0;
  net.per_stage_overhead_s = 0.0;
  return net;
}

RankTimeline::Step step(CommOp op, std::int32_t peer, std::uint64_t bytes, double compute) {
  return {CommEvent{op, peer, bytes, 0.0}, compute};
}

// -------------------------------------------------------------- network ----

TEST(NetworkTest, P2pTimeIsLatencyPlusTransfer) {
  EXPECT_DOUBLE_EQ(flat_network().p2p_time(200), 1.0 + 2.0);
}

TEST(NetworkTest, BarrierScalesLogarithmically) {
  const NetworkModel net = flat_network();
  const double t4 = net.collective_time(CommOp::Barrier, 0, 4);
  const double t16 = net.collective_time(CommOp::Barrier, 0, 16);
  EXPECT_DOUBLE_EQ(t16, 2.0 * t4);  // log2(16)=4 vs log2(4)=2 stages
}

TEST(NetworkTest, SmallAllreduceCostsTwoTreeTraversals) {
  const NetworkModel net = flat_network();
  EXPECT_DOUBLE_EQ(net.collective_time(CommOp::Allreduce, 100, 4),
                   2.0 * net.collective_time(CommOp::Reduce, 100, 4));
}

TEST(NetworkTest, LargeAllreduceSwitchesToRing) {
  NetworkModel net = flat_network();
  net.allreduce_ring_threshold_bytes = 1000;
  const std::uint64_t bytes = 1'000'000;
  const std::uint32_t ranks = 64;
  const double tree = 2.0 * 6.0 * net.p2p_time(bytes);  // 2·log2(64) full-payload stages
  const double ring = 2.0 * 63.0 *
                      (net.latency_s + static_cast<double>(bytes) / ranks /
                                           net.bandwidth_bytes_per_s);
  EXPECT_DOUBLE_EQ(net.collective_time(CommOp::Allreduce, bytes, ranks),
                   std::min(tree, ring));
  EXPECT_LT(ring, tree);  // the switch actually matters at this size
}

TEST(NetworkTest, SingleRankCollectiveIsOverheadOnly) {
  NetworkModel net = flat_network();
  net.per_stage_overhead_s = 0.25;
  EXPECT_DOUBLE_EQ(net.collective_time(CommOp::Allreduce, 1 << 20, 1), 0.25);
}

TEST(NetworkTest, P2pOpRejectedAsCollective) {
  EXPECT_THROW(flat_network().collective_time(CommOp::Send, 0, 4), util::Error);
}

// --------------------------------------------------------------- replay ----

TEST(ReplayTest, RendezvousTimingExact) {
  // Rank 0 computes 5s then sends 200 B; rank 1 computes 2s then receives.
  // Match at max(5,2)=5, transfer 1+2=3 → both finish at 8.
  std::vector<RankTimeline> tl(2);
  tl[0].steps.push_back(step(CommOp::Send, 1, 200, 5.0));
  tl[1].steps.push_back(step(CommOp::Recv, 0, 200, 2.0));
  const auto result = replay(tl, flat_network());
  EXPECT_DOUBLE_EQ(result.ranks[0].finish_time, 8.0);
  EXPECT_DOUBLE_EQ(result.ranks[1].finish_time, 8.0);
  EXPECT_DOUBLE_EQ(result.ranks[0].comm_seconds, 3.0);  // blocked 5→8
  EXPECT_DOUBLE_EQ(result.ranks[1].comm_seconds, 6.0);  // blocked 2→8
  EXPECT_DOUBLE_EQ(result.runtime, 8.0);
}

TEST(ReplayTest, TailComputeCounted) {
  std::vector<RankTimeline> tl(2);
  tl[0].steps.push_back(step(CommOp::Send, 1, 0, 1.0));
  tl[0].tail_compute_seconds = 10.0;
  tl[1].steps.push_back(step(CommOp::Recv, 0, 0, 1.0));
  const auto result = replay(tl, flat_network());
  EXPECT_DOUBLE_EQ(result.ranks[0].finish_time, 1.0 + 1.0 + 10.0);
  EXPECT_DOUBLE_EQ(result.ranks[0].compute_seconds, 11.0);
}

TEST(ReplayTest, MultipleMessagesMatchInOrder) {
  // Two sends from 0 to 1 match the two recvs in order.
  std::vector<RankTimeline> tl(2);
  tl[0].steps.push_back(step(CommOp::Send, 1, 100, 1.0));
  tl[0].steps.push_back(step(CommOp::Send, 1, 100, 0.0));
  tl[1].steps.push_back(step(CommOp::Recv, 0, 100, 0.0));
  tl[1].steps.push_back(step(CommOp::Recv, 0, 100, 0.0));
  const auto result = replay(tl, flat_network());
  // First match: max(1,0)+2=3; second: max(3,3)+2=5.
  EXPECT_DOUBLE_EQ(result.runtime, 5.0);
}

TEST(ReplayTest, BarrierSynchronizesAllRanks) {
  std::vector<RankTimeline> tl(4);
  for (std::size_t r = 0; r < 4; ++r)
    tl[r].steps.push_back(step(CommOp::Barrier, -1, 0, static_cast<double>(r)));
  const auto result = replay(tl, flat_network());
  // All wait for rank 3 (arrives at 3), plus 2 stages × latency 1.
  for (const auto& rank : result.ranks) EXPECT_DOUBLE_EQ(rank.finish_time, 5.0);
}

TEST(ReplayTest, CollectiveMismatchDetected) {
  std::vector<RankTimeline> tl(2);
  tl[0].steps.push_back(step(CommOp::Barrier, -1, 0, 0.0));
  tl[1].steps.push_back(step(CommOp::Allreduce, -1, 8, 0.0));
  EXPECT_THROW(replay(tl, flat_network()), util::Error);
}

TEST(ReplayTest, DeadlockDetected) {
  // Both ranks send first: rendezvous semantics deadlock.
  std::vector<RankTimeline> tl(2);
  tl[0].steps.push_back(step(CommOp::Send, 1, 8, 0.0));
  tl[0].steps.push_back(step(CommOp::Recv, 1, 8, 0.0));
  tl[1].steps.push_back(step(CommOp::Send, 0, 8, 0.0));
  tl[1].steps.push_back(step(CommOp::Recv, 0, 8, 0.0));
  try {
    replay(tl, flat_network());
    FAIL() << "expected deadlock";
  } catch (const util::Error& e) {
    EXPECT_NE(std::string(e.what()).find("deadlock"), std::string::npos);
  }
}

TEST(ReplayTest, SelfSendRejected) {
  std::vector<RankTimeline> tl(2);
  tl[0].steps.push_back(step(CommOp::Send, 0, 8, 0.0));
  EXPECT_THROW(replay(tl, flat_network()), util::Error);
}

TEST(ReplayTest, PeerOutOfRangeRejected) {
  std::vector<RankTimeline> tl(2);
  tl[0].steps.push_back(step(CommOp::Send, 7, 8, 0.0));
  EXPECT_THROW(replay(tl, flat_network()), util::Error);
}

TEST(ReplayTest, PureComputeRun) {
  std::vector<RankTimeline> tl(3);
  for (std::size_t r = 0; r < 3; ++r) tl[r].tail_compute_seconds = 2.0 + r;
  const auto result = replay(tl, flat_network());
  EXPECT_DOUBLE_EQ(result.runtime, 4.0);
  EXPECT_EQ(result.most_demanding_rank(), 2u);
}

TEST(ReplayTest, DeterministicAcrossCalls) {
  std::vector<RankTimeline> tl(4);
  for (std::size_t r = 0; r < 4; ++r) {
    tl[r].steps.push_back(step(CommOp::Allreduce, -1, 64, 1.0 + 0.1 * r));
    tl[r].steps.push_back(step(CommOp::Barrier, -1, 0, 0.5));
  }
  const auto a = replay(tl, flat_network());
  const auto b = replay(tl, flat_network());
  EXPECT_EQ(a.runtime, b.runtime);
  for (std::size_t r = 0; r < 4; ++r)
    EXPECT_EQ(a.ranks[r].finish_time, b.ranks[r].finish_time);
}

TEST(ReplayTest, TimelinesFromCommScalesUnits) {
  std::vector<trace::CommTrace> traces(2);
  for (std::uint32_t r = 0; r < 2; ++r) {
    traces[r].rank = r;
    traces[r].core_count = 2;
    traces[r].events.push_back({CommOp::Barrier, -1, 0, 100.0});
    traces[r].tail_compute_units = 50.0;
  }
  const std::vector<double> scales = {0.01, 0.02};
  const auto timelines = simmpi::timelines_from_comm(traces, scales);
  EXPECT_DOUBLE_EQ(timelines[0].steps[0].compute_seconds_before, 1.0);
  EXPECT_DOUBLE_EQ(timelines[1].steps[0].compute_seconds_before, 2.0);
  EXPECT_DOUBLE_EQ(timelines[1].tail_compute_seconds, 1.0);
}

TEST(ReplayTest, EmptyInputRejected) {
  EXPECT_THROW(replay({}, flat_network()), util::Error);
}

// ---------------------------------------------------------------- torus ----

TEST(TorusTest, HopDistances) {
  NetworkModel net = flat_network();
  net.torus.enabled = true;
  net.torus.dims = {4, 4, 2};  // 32 nodes
  EXPECT_EQ(net.torus_hops(0, 0), 0u);
  EXPECT_EQ(net.torus_hops(0, 1), 1u);        // x neighbour
  EXPECT_EQ(net.torus_hops(0, 3), 1u);        // x wrap-around
  EXPECT_EQ(net.torus_hops(0, 4), 1u);        // y neighbour
  EXPECT_EQ(net.torus_hops(0, 16), 1u);       // z neighbour
  // Opposite corner: (2, 2, 1) away = 2 + 2 + 1.
  EXPECT_EQ(net.torus_hops(0, 2 + 2 * 4 + 1 * 16), 5u);
  // Ranks beyond the node count wrap.
  EXPECT_EQ(net.torus_hops(0, 32), 0u);
}

TEST(TorusTest, DisabledIsZeroHops) {
  EXPECT_EQ(flat_network().torus_hops(0, 999), 0u);
}

TEST(TorusTest, DistantPairsPayMoreLatency) {
  NetworkModel net = flat_network();
  net.torus.enabled = true;
  net.torus.dims = {8, 8, 8};
  net.torus.per_hop_latency_s = 0.5;
  const double near = net.p2p_time_between(0, 1, 100);
  const double far = net.p2p_time_between(0, 4 + 4 * 8 + 4 * 64, 100);  // 12 hops
  EXPECT_DOUBLE_EQ(near, net.p2p_time(100) + 0.5);
  EXPECT_DOUBLE_EQ(far, net.p2p_time(100) + 12 * 0.5);
}

TEST(TorusTest, ReplayChargesHops) {
  NetworkModel net = flat_network();
  net.torus.enabled = true;
  net.torus.dims = {16, 1, 1};
  net.torus.per_hop_latency_s = 1.0;
  // Rank 0 sends to rank 8: 8 hops on the 16-ring → +8 s over the base.
  std::vector<RankTimeline> tl(16);
  tl[0].steps.push_back(step(CommOp::Send, 8, 100, 0.0));
  tl[8].steps.push_back(step(CommOp::Recv, 0, 100, 0.0));
  const auto result = replay(tl, net);
  EXPECT_DOUBLE_EQ(result.ranks[8].finish_time, net.p2p_time(100) + 8.0);
}

// ---------------------------------------------------------------- eager ----

TEST(EagerTest, SenderContinuesWithoutReceiver) {
  NetworkModel net = flat_network();
  net.eager_threshold_bytes = 1024;
  net.per_stage_overhead_s = 0.5;
  std::vector<RankTimeline> tl(2);
  tl[0].steps.push_back(step(CommOp::Send, 1, 200, 1.0));  // eager (<=1024)
  tl[0].tail_compute_seconds = 10.0;
  tl[1].steps.push_back(step(CommOp::Recv, 0, 200, 50.0));  // posts very late
  const auto result = replay(tl, net);
  // Sender: 1.0 compute + 0.5 buffer deposit + 10 tail = 11.5, NOT waiting
  // for the receive at t=50.
  EXPECT_DOUBLE_EQ(result.ranks[0].finish_time, 11.5);
  // Receiver: message landed at 1 + (1 + 2) = 4 < 50 → no wait.
  EXPECT_DOUBLE_EQ(result.ranks[1].finish_time, 50.0);
}

TEST(EagerTest, ReceiverWaitsForInFlightMessage) {
  NetworkModel net = flat_network();
  net.eager_threshold_bytes = 1024;
  net.per_stage_overhead_s = 0.0;
  std::vector<RankTimeline> tl(2);
  tl[0].steps.push_back(step(CommOp::Send, 1, 200, 5.0));
  tl[1].steps.push_back(step(CommOp::Recv, 0, 200, 1.0));  // posts early
  const auto result = replay(tl, net);
  // Message lands at 5 + 3 = 8; the early receiver blocks 1 → 8.
  EXPECT_DOUBLE_EQ(result.ranks[1].finish_time, 8.0);
  EXPECT_DOUBLE_EQ(result.ranks[1].comm_seconds, 7.0);
  EXPECT_DOUBLE_EQ(result.ranks[0].finish_time, 5.0);
}

TEST(EagerTest, BothSendFirstIsDeadlockFreeUnderEager) {
  // The classic unsafe exchange: deadlocks under rendezvous (tested above),
  // completes under eager — exactly real MPI's behaviour for small messages.
  NetworkModel net = flat_network();
  net.eager_threshold_bytes = 1024;
  std::vector<RankTimeline> tl(2);
  tl[0].steps.push_back(step(CommOp::Send, 1, 8, 0.0));
  tl[0].steps.push_back(step(CommOp::Recv, 1, 8, 0.0));
  tl[1].steps.push_back(step(CommOp::Send, 0, 8, 0.0));
  tl[1].steps.push_back(step(CommOp::Recv, 0, 8, 0.0));
  EXPECT_NO_THROW(replay(tl, net));
}

TEST(EagerTest, ThresholdBoundary) {
  NetworkModel net = flat_network();
  net.eager_threshold_bytes = 200;
  EXPECT_TRUE(net.is_eager(200));
  EXPECT_FALSE(net.is_eager(201));

  // 201-byte messages rendezvous: both-send-first deadlocks again.
  std::vector<RankTimeline> tl(2);
  tl[0].steps.push_back(step(CommOp::Send, 1, 201, 0.0));
  tl[0].steps.push_back(step(CommOp::Recv, 1, 201, 0.0));
  tl[1].steps.push_back(step(CommOp::Send, 0, 201, 0.0));
  tl[1].steps.push_back(step(CommOp::Recv, 0, 201, 0.0));
  EXPECT_THROW(replay(tl, net), util::Error);
}

TEST(EagerTest, DisabledByDefault) {
  EXPECT_FALSE(NetworkModel{}.is_eager(1));
}

// ------------------------------------------------------------- profiler ----

TEST(ProfilerTest, FindsMostDemandingRank) {
  std::vector<trace::CommTrace> traces(4);
  for (std::uint32_t r = 0; r < 4; ++r) {
    traces[r].rank = r;
    traces[r].core_count = 4;
    traces[r].events.push_back({CommOp::Barrier, -1, 0, r == 2 ? 500.0 : 100.0});
  }
  const std::vector<double> scales(4, 0.001);
  const auto profile = simmpi::profile_run(traces, scales, flat_network());
  EXPECT_EQ(profile.most_demanding_rank, 2u);
  EXPECT_GT(profile.comm_fraction(), 0.0);
  EXPECT_LT(profile.comm_fraction(), 1.0);
  EXPECT_GT(profile.runtime, 0.5);
  // Ranks that computed less waited longer at the barrier.
  EXPECT_GT(profile.ranks[0].comm_seconds, profile.ranks[2].comm_seconds);
}

}  // namespace
}  // namespace pmacx
