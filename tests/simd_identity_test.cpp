// Whole-workload scalar-vs-AVX2 byte identity.  The SIMD layer's contract
// (util/simd.hpp) is that dispatch level never changes a single output bit;
// these tests pin the level with force_level and drive the two public
// pipelines that use the kernels — trace extrapolation and cache
// simulation — end to end at both levels.  The release-noavx2 CI leg runs
// the same suite with the AVX2 paths compiled out, where the AVX2 halves
// skip and the scalar halves still pass.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "core/extrapolator.hpp"
#include "machine/targets.hpp"
#include "memsim/parallel_replay.hpp"
#include "memsim/ref_block.hpp"
#include "synth/patterns.hpp"
#include "trace/binary_io.hpp"
#include "trace/task_trace.hpp"
#include "util/arena.hpp"
#include "util/simd.hpp"
#include "util/threadpool.hpp"

namespace pmacx {
namespace {

using trace::BasicBlockRecord;
using trace::BlockElement;
using trace::InstrElement;
using trace::InstructionRecord;
using trace::TaskTrace;
using util::simd::Level;

/// Pins the dispatch level for one scope and always restores resolution.
class ForcedLevel {
 public:
  explicit ForcedLevel(Level level) { util::simd::force_level(level); }
  ~ForcedLevel() { util::simd::clear_forced_level(); }
};

/// A multi-block trace at `cores` with element series engineered to hit
/// every canonical form and fallback path (zeros, negatives, decays).
TaskTrace identity_trace(std::uint32_t cores, std::size_t block_count) {
  TaskTrace task;
  task.app = "simd-identity";
  task.rank = 0;
  task.core_count = cores;
  task.target_system = "test";
  const double p = static_cast<double>(cores);
  for (std::size_t b = 0; b < block_count; ++b) {
    BasicBlockRecord block;
    block.id = 100 + b;
    block.location = {"kern.c", static_cast<std::uint32_t>(b + 1), "kern"};
    // Different scaling shape per block so batches mix forms.
    switch (b % 5) {
      case 0: block.set(BlockElement::VisitCount, 50.0 + 2.0 * p); break;
      case 1: block.set(BlockElement::VisitCount, 10.0 * std::log(p)); break;
      case 2: block.set(BlockElement::VisitCount, 3.0 * std::pow(p, 1.3)); break;
      case 3: block.set(BlockElement::VisitCount, 1e6 / p); break;
      case 4: block.set(BlockElement::VisitCount, p > 20 ? 0.0 : 7.0); break;
    }
    block.set(BlockElement::MemLoads, 8.0e6 / p);
    block.set(BlockElement::MemStores, 4.0e6 / p + static_cast<double>(b));
    block.set(BlockElement::BytesPerRef, 8.0);
    block.set(BlockElement::HitRateL1, 0.90);
    block.set(BlockElement::HitRateL2, 0.95);
    block.set(BlockElement::HitRateL3, 0.99);
    InstructionRecord instr;
    instr.index = 1;
    instr.set(InstrElement::ExecCount, 100.0 * p);
    instr.set(InstrElement::MemOps, 75.0);
    instr.set(InstrElement::HitRateL1, 0.5);
    instr.set(InstrElement::HitRateL2, 0.6);
    instr.set(InstrElement::HitRateL3, 0.7);
    block.instructions.push_back(instr);
    task.blocks.push_back(block);
  }
  task.sort_blocks();
  return task;
}

std::vector<TaskTrace> identity_series() {
  std::vector<TaskTrace> series;
  for (std::uint32_t p : {8u, 16u, 32u, 64u}) series.push_back(identity_trace(p, 40));
  return series;
}

/// The full extrapolation output, serialized: trace bytes plus the scores
/// and candidates digest via the model set's golden evaluation.
std::string extrapolation_bytes(const std::vector<TaskTrace>& series,
                                const core::ExtrapolationOptions& options) {
  const auto result = core::extrapolate_task(series, 512, options);
  return trace::to_binary(result.trace);
}

TEST(SimdIdentityTest, ExtrapolationBytesIdenticalAcrossLevels) {
  const auto series = identity_series();
  core::ExtrapolationOptions options;
  std::string scalar_bytes;
  {
    ForcedLevel forced(Level::Scalar);
    scalar_bytes = extrapolation_bytes(series, options);
  }
  if (!util::simd::avx2_available()) GTEST_SKIP() << "AVX2 not available";
  ForcedLevel forced(Level::Avx2);
  EXPECT_EQ(extrapolation_bytes(series, options), scalar_bytes);
}

TEST(SimdIdentityTest, ExtrapolationBytesIdenticalAcrossLevelsThreaded) {
  const auto series = identity_series();
  util::ThreadPool pool(4);
  core::ExtrapolationOptions options;
  options.pool = &pool;
  std::string scalar_bytes;
  {
    ForcedLevel forced(Level::Scalar);
    scalar_bytes = extrapolation_bytes(series, options);
  }
  if (!util::simd::avx2_available()) GTEST_SKIP() << "AVX2 not available";
  ForcedLevel forced(Level::Avx2);
  EXPECT_EQ(extrapolation_bytes(series, options), scalar_bytes);
}

TEST(SimdIdentityTest, FittedModelSetIdenticalAcrossLevels) {
  const auto series = identity_series();
  std::string scalar_bytes;
  {
    ForcedLevel forced(Level::Scalar);
    const auto models = core::fit_task_models(series);
    scalar_bytes = trace::to_binary(core::extrapolate_from_models(models, 2048).trace);
  }
  if (!util::simd::avx2_available()) GTEST_SKIP() << "AVX2 not available";
  ForcedLevel forced(Level::Avx2);
  const auto models = core::fit_task_models(series);
  EXPECT_EQ(trace::to_binary(core::extrapolate_from_models(models, 2048).trace),
            scalar_bytes);
}

// -------------------------------------------------------------- cache sim ----

memsim::RankStreamFactory identity_factory(synth::Pattern pattern) {
  return [pattern](std::uint32_t rank) -> memsim::RefGenerator {
    synth::StreamSpec spec;
    spec.pattern = pattern;
    spec.base_addr = (1ull << 40) + (static_cast<std::uint64_t>(rank) << 30);
    spec.footprint_bytes = 1u << 20;
    spec.elem_bytes = 8;
    spec.stride_elems = 3;
    spec.store_fraction = 0.25;
    synth::RefStream stream(spec, 4000 + rank);
    return [stream]() mutable { return stream.next(); };
  };
}

void expect_identical(const memsim::AccessCounters& a, const memsim::AccessCounters& b) {
  EXPECT_EQ(a.refs, b.refs);
  EXPECT_EQ(a.loads, b.loads);
  EXPECT_EQ(a.stores, b.stores);
  EXPECT_EQ(a.bytes, b.bytes);
  EXPECT_EQ(a.line_accesses, b.line_accesses);
  for (std::size_t lvl = 0; lvl < memsim::kMaxLevels; ++lvl)
    EXPECT_EQ(a.level_hits[lvl], b.level_hits[lvl]);
  EXPECT_EQ(a.memory_accesses, b.memory_accesses);
  EXPECT_EQ(a.tlb_misses, b.tlb_misses);
  EXPECT_EQ(a.writebacks, b.writebacks);
}

TEST(SimdIdentityTest, CacheReplayCountersIdenticalAcrossLevels) {
  // Hierarchies capture their find_tag kernel at construction, so the level
  // must be pinned before replay_ranks constructs them.
  const memsim::HierarchyConfig config = machine::bluewaters_p1().hierarchy;
  for (const synth::Pattern pattern :
       {synth::Pattern::Sequential, synth::Pattern::Random, synth::Pattern::Strided}) {
    std::vector<memsim::RankReplay> scalar_replay;
    {
      ForcedLevel forced(Level::Scalar);
      scalar_replay = memsim::replay_ranks(config, 4, 30'000, identity_factory(pattern));
    }
    if (!util::simd::avx2_available()) GTEST_SKIP() << "AVX2 not available";
    ForcedLevel forced(Level::Avx2);
    const auto avx2_replay =
        memsim::replay_ranks(config, 4, 30'000, identity_factory(pattern));
    ASSERT_EQ(scalar_replay.size(), avx2_replay.size());
    for (std::size_t r = 0; r < scalar_replay.size(); ++r)
      expect_identical(scalar_replay[r].counters, avx2_replay[r].counters);
  }
}

TEST(SimdIdentityTest, AccessBlockMatchesPerRefAccess) {
  const memsim::HierarchyConfig config = machine::bluewaters_p1().hierarchy;
  memsim::RefGenerator gen_a = identity_factory(synth::Pattern::Strided)(0);
  memsim::RefGenerator gen_b = identity_factory(synth::Pattern::Strided)(0);

  memsim::CacheHierarchy one_at_a_time(config);
  one_at_a_time.set_scope(7);
  for (int i = 0; i < 50'000; ++i) one_at_a_time.access(gen_a());

  memsim::CacheHierarchy blocked(config);
  blocked.set_scope(7);
  util::Arena arena;
  // A block size that leaves a ragged tail on the final refill.
  memsim::RefBlockBuilder builder(arena, 1013);
  int remaining = 50'000;
  while (remaining > 0) {
    builder.clear();
    while (remaining > 0 && !builder.full()) {
      const memsim::MemRef ref = gen_b();
      builder.push(ref.addr, ref.size, ref.is_store);
      --remaining;
    }
    blocked.access_block(builder.block());
  }

  expect_identical(one_at_a_time.totals(), blocked.totals());
  expect_identical(one_at_a_time.scope(7), blocked.scope(7));
}

}  // namespace
}  // namespace pmacx
