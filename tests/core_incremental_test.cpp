// Incremental refit tests: fit_task_models_incremental must be byte-for-byte
// equivalent to a cold fit_task_models over the same inputs — model
// parameters, point traces, interval traces, everything — for every upload
// order a live server could see, while provably doing less work (reuse and
// O(1) moment-extension counters).  Plus the pmacx-ckpt-v2 persistence of
// the per-element sufficient statistics the reuse decisions stand on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/extrapolator.hpp"
#include "core/incremental.hpp"
#include "trace/binary_io.hpp"
#include "trace/task_trace.hpp"

namespace pmacx {
namespace {

using core::ExtrapolationOptions;
using core::IncrementalFitStats;
using core::TaskModelSet;
using trace::BlockElement;
using trace::TaskTrace;

/// A trace with known scaling laws at core count p (constant, 1/p, log p,
/// and a slowly rising rate — one clear winner per canonical form).
TaskTrace law_trace(double p) {
  TaskTrace task;
  task.app = "inc-demo";
  task.core_count = static_cast<std::uint32_t>(p);
  task.target_system = "test target";

  trace::BasicBlockRecord solve;
  solve.id = 1;
  solve.location = {"solver.c", 10, "solve"};
  solve.set(BlockElement::VisitCount, 42.0);
  solve.set(BlockElement::MemLoads, 1e10 / p);
  solve.set(BlockElement::MemStores, 4e9 / p);
  solve.set(BlockElement::BytesPerRef, 8.0);
  solve.set(BlockElement::HitRateL1, 0.4);
  solve.set(BlockElement::HitRateL2, 0.5 + 0.00004 * p);
  solve.set(BlockElement::HitRateL3, 0.95);
  solve.set(BlockElement::WorkingSetBytes, 4.6e9 / p);
  solve.set(BlockElement::Ilp, 3.5);
  solve.set(BlockElement::DepChainLength, 6.0);
  task.blocks.push_back(solve);

  trace::BasicBlockRecord reduce;
  reduce.id = 2;
  reduce.location = {"reduce.c", 2, "reduce"};
  reduce.set(BlockElement::VisitCount, 10.0);
  reduce.set(BlockElement::MemLoads, 4096.0 * (1.0 + std::log2(p)));
  reduce.set(BlockElement::BytesPerRef, 8.0);
  reduce.set(BlockElement::HitRateL1, 0.99);
  reduce.set(BlockElement::HitRateL2, 0.99);
  reduce.set(BlockElement::HitRateL3, 0.99);
  reduce.set(BlockElement::Ilp, 2.0);
  reduce.set(BlockElement::DepChainLength, 3.0);
  task.blocks.push_back(reduce);
  task.sort_blocks();
  return task;
}

bool bits_equal(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

bool bits_equal(const std::array<double, 3>& a, const std::array<double, 3>& b) {
  return std::memcmp(a.data(), b.data(), sizeof a) == 0;
}

/// Byte-for-byte equality of two fitted sets: every candidate parameter,
/// score, series, and moment block compared bitwise (EXPECT_EQ on doubles
/// would accept 0.0 == -0.0 and reject NaN == NaN — both wrong here).
void expect_identical(const TaskModelSet& a, const TaskModelSet& b) {
  EXPECT_EQ(a.app, b.app);
  EXPECT_EQ(a.rank, b.rank);
  EXPECT_EQ(a.target_system, b.target_system);
  EXPECT_EQ(a.axis_name, b.axis_name);
  ASSERT_EQ(a.models.size(), b.models.size());
  for (std::size_t i = 0; i < a.models.size(); ++i) {
    const core::ElementModels& ma = a.models[i];
    const core::ElementModels& mb = b.models[i];
    EXPECT_TRUE(bits_equal(ma.fit_axis, mb.fit_axis)) << "element " << i;
    EXPECT_TRUE(bits_equal(ma.fit_values, mb.fit_values)) << "element " << i;
    EXPECT_TRUE(bits_equal(ma.scores, mb.scores)) << "element " << i;
    EXPECT_EQ(ma.influential, mb.influential) << "element " << i;
    EXPECT_EQ(ma.moments, mb.moments) << "element " << i;
    ASSERT_EQ(ma.candidates.size(), mb.candidates.size()) << "element " << i;
    for (std::size_t c = 0; c < ma.candidates.size(); ++c) {
      const stats::FittedModel& fa = ma.candidates[c];
      const stats::FittedModel& fb = mb.candidates[c];
      EXPECT_EQ(fa.form, fb.form);
      EXPECT_TRUE(bits_equal(fa.params, fb.params))
          << "element " << i << " candidate " << c;
      EXPECT_EQ(fa.ok, fb.ok);
    }
  }
}

/// End-to-end check: the sets answer extrapolation queries (point and
/// interval) with byte-identical traces.
void expect_same_answers(const TaskModelSet& a, const TaskModelSet& b,
                         std::uint32_t target) {
  const core::ExtrapolationResult ra = core::extrapolate_from_models(a, target);
  const core::ExtrapolationResult rb = core::extrapolate_from_models(b, target);
  EXPECT_EQ(trace::to_binary(ra.trace), trace::to_binary(rb.trace));

  const core::ExtrapolationResult ia = core::extrapolate_from_models(a, target, 0.8);
  const core::ExtrapolationResult ib = core::extrapolate_from_models(b, target, 0.8);
  ASSERT_TRUE(ia.has_interval);
  ASSERT_TRUE(ib.has_interval);
  EXPECT_EQ(trace::to_binary(ia.trace_lo), trace::to_binary(ib.trace_lo));
  EXPECT_EQ(trace::to_binary(ia.trace_median), trace::to_binary(ib.trace_median));
  EXPECT_EQ(trace::to_binary(ia.trace_hi), trace::to_binary(ib.trace_hi));
}

ExtrapolationOptions serial_options() {
  ExtrapolationOptions options;
  options.threads = 1;
  return options;
}

std::vector<TaskTrace> sorted_by_cores(std::vector<TaskTrace> traces) {
  std::sort(traces.begin(), traces.end(),
            [](const TaskTrace& x, const TaskTrace& y) {
              return x.core_count < y.core_count;
            });
  return traces;
}

TEST(IncrementalFitTest, MatchesColdFitForEveryUploadOrder) {
  const std::vector<double> cores = {16, 32, 64, 128, 256};
  std::vector<TaskTrace> all;
  for (const double p : cores) all.push_back(law_trace(p));
  const ExtrapolationOptions options = serial_options();

  // Upload orders a live collection could accumulate in: ascending (the
  // common case), descending (every arrival prepends), and two shuffles.
  std::vector<std::vector<std::size_t>> orders = {{0, 1, 2, 3, 4}, {4, 3, 2, 1, 0}};
  std::mt19937_64 rng(17);
  for (int shuffle = 0; shuffle < 2; ++shuffle) {
    std::vector<std::size_t> order = {0, 1, 2, 3, 4};
    std::shuffle(order.begin(), order.end(), rng);
    orders.push_back(order);
  }

  for (const std::vector<std::size_t>& order : orders) {
    TaskModelSet previous;
    bool have_previous = false;
    std::vector<TaskTrace> arrived;
    for (const std::size_t next : order) {
      arrived.push_back(all[next]);
      if (arrived.size() < 2) continue;  // a one-point series cannot be fit
      const std::vector<TaskTrace> inputs = sorted_by_cores(arrived);

      IncrementalFitStats stats;
      const TaskModelSet incremental = core::fit_task_models_incremental(
          inputs, options, have_previous ? &previous : nullptr, &stats);
      const TaskModelSet cold = core::fit_task_models(inputs, options);

      expect_identical(incremental, cold);
      expect_same_answers(incremental, cold, 1024);
      EXPECT_EQ(stats.elements_total, incremental.models.size());
      EXPECT_EQ(stats.cold, !have_previous);

      previous = incremental;
      have_previous = true;
    }
  }
}

TEST(IncrementalFitTest, AscendingAppendExtendsMomentsInsteadOfRebuilding) {
  std::vector<TaskTrace> inputs = {law_trace(16), law_trace(32), law_trace(64)};
  const ExtrapolationOptions options = serial_options();
  const TaskModelSet previous = core::fit_task_models(inputs, options);

  inputs.push_back(law_trace(128));  // appends at the high end: pure suffix
  IncrementalFitStats stats;
  const TaskModelSet extended =
      core::fit_task_models_incremental(inputs, options, &previous, &stats);

  expect_identical(extended, core::fit_task_models(inputs, options));
  EXPECT_FALSE(stats.cold);
  EXPECT_GT(stats.moments_extended, 0u);
  EXPECT_GT(stats.elements_refit, 0u);
}

TEST(IncrementalFitTest, IdenticalReuploadReusesEveryElement) {
  const std::vector<TaskTrace> inputs = {law_trace(16), law_trace(32), law_trace(64)};
  const ExtrapolationOptions options = serial_options();
  const TaskModelSet previous = core::fit_task_models(inputs, options);

  IncrementalFitStats stats;
  const TaskModelSet again =
      core::fit_task_models_incremental(inputs, options, &previous, &stats);

  expect_identical(again, previous);
  EXPECT_FALSE(stats.cold);
  EXPECT_EQ(stats.elements_reused, stats.elements_total);
  EXPECT_EQ(stats.elements_refit, 0u);
}

TEST(IncrementalFitTest, IncompatiblePreviousDegradesToColdFitNotWrongModels) {
  const std::vector<TaskTrace> inputs = {law_trace(16), law_trace(32), law_trace(64)};
  const ExtrapolationOptions options = serial_options();

  ExtrapolationOptions other = options;
  other.influence_threshold = 0.5;  // different policy: previous set unusable
  const TaskModelSet mismatched = core::fit_task_models(inputs, other);

  IncrementalFitStats stats;
  const TaskModelSet result =
      core::fit_task_models_incremental(inputs, options, &mismatched, &stats);
  EXPECT_TRUE(stats.cold);
  expect_identical(result, core::fit_task_models(inputs, options));
}

TEST(IncrementalFitTest, CheckpointV2PersistsSufficientStatistics) {
  const std::vector<TaskTrace> inputs = {law_trace(16), law_trace(32), law_trace(64)};
  const ExtrapolationOptions options = serial_options();
  const TaskModelSet fitted = core::fit_task_models(inputs, options);
  ASSERT_FALSE(fitted.models.empty());

  core::CheckpointConfig config;
  config.dir = testing::TempDir() + "inc_ckpt_v2";
  config.digest = core::models_digest_for_traces(inputs, options);
  config.chunk_elements = 8;
  core::ModelCheckpoint store(config);
  store.open(fitted.models.size());

  for (std::size_t chunk = 0; chunk < store.chunk_count(); ++chunk) {
    const std::size_t begin = store.chunk_begin(chunk);
    const std::size_t end = store.chunk_end(chunk);
    store.save_chunk(chunk, std::span(fitted.models).subspan(begin, end - begin));
  }
  for (std::size_t chunk = 0; chunk < store.chunk_count(); ++chunk) {
    const auto loaded = store.load_chunk(chunk);
    ASSERT_TRUE(loaded.has_value()) << "chunk " << chunk;
    const std::size_t begin = store.chunk_begin(chunk);
    ASSERT_EQ(loaded->size(), store.chunk_end(chunk) - begin);
    for (std::size_t i = 0; i < loaded->size(); ++i) {
      // The v2 payload: per-element sufficient statistics survive the disk
      // round trip bit-exactly, fingerprint included — a resumed server can
      // extend them instead of re-reading every earlier trace.
      EXPECT_EQ((*loaded)[i].moments, fitted.models[begin + i].moments);
      EXPECT_TRUE(bits_equal((*loaded)[i].fit_values, fitted.models[begin + i].fit_values));
    }
  }
}

}  // namespace
}  // namespace pmacx
