// Tests for the PSiNS convolution (Equation 1), the whole-app predictor and
// the reference simulator.
#include <gtest/gtest.h>

#include "machine/targets.hpp"
#include "psins/convolution.hpp"
#include "psins/energy.hpp"
#include "psins/predictor.hpp"
#include "psins/reference.hpp"
#include "synth/specfem.hpp"
#include "synth/tracer.hpp"
#include "util/error.hpp"

namespace pmacx {
namespace {

using trace::BlockElement;

machine::MultiMapsOptions fast_probe() {
  machine::MultiMapsOptions options;
  options.working_sets = {16ull << 10, 256ull << 10, 4ull << 20, 32ull << 20};
  options.strides = {1, 8};
  options.min_refs_per_probe = 50'000;
  options.max_refs_per_probe = 200'000;
  return options;
}

const machine::MachineProfile& test_profile() {
  static const machine::MachineProfile profile =
      machine::build_profile(machine::bluewaters_p1(), fast_probe());
  return profile;
}

trace::TaskTrace one_block_trace(double mem_ops, double hit_rate, double fp_ops = 0.0,
                                 double ilp = 4.0) {
  trace::TaskTrace task;
  task.app = "unit";
  task.core_count = 4;
  task.target_system = "bluewaters-p1";
  trace::BasicBlockRecord block;
  block.id = 1;
  block.set(BlockElement::VisitCount, 1);
  block.set(BlockElement::MemLoads, mem_ops);
  block.set(BlockElement::BytesPerRef, 8);
  block.set(BlockElement::HitRateL1, hit_rate);
  block.set(BlockElement::HitRateL2, hit_rate);
  block.set(BlockElement::HitRateL3, hit_rate);
  block.set(BlockElement::FpAdd, fp_ops);
  block.set(BlockElement::Ilp, ilp);
  block.set(BlockElement::DepChainLength, 2);
  task.blocks.push_back(block);
  return task;
}

// ------------------------------------------------------------ convolution ----

TEST(ConvolutionTest, MemoryTimeMatchesEquationOne) {
  // Equation 1: memory_time = refs × size / BW(hit rates).
  const auto task = one_block_trace(1e6, 0.99);
  const auto prediction = psins::convolve_task(task, test_profile());
  ASSERT_EQ(prediction.blocks.size(), 1u);
  const auto& bt = prediction.blocks[0];
  const double expected = 1e6 * 8 / bt.bandwidth_bytes_per_s;
  EXPECT_DOUBLE_EQ(bt.memory_seconds, expected);
  EXPECT_DOUBLE_EQ(bt.bandwidth_bytes_per_s,
                   test_profile().surface.lookup({0.99, 0.99, 0.99}));
}

TEST(ConvolutionTest, LowerHitRatesCostMore) {
  const auto hot = psins::convolve_task(one_block_trace(1e6, 0.999), test_profile());
  const auto cold = psins::convolve_task(one_block_trace(1e6, 0.10), test_profile());
  EXPECT_GT(cold.seconds, 2.0 * hot.seconds);
}

TEST(ConvolutionTest, BlockTimesSumToTotal) {
  trace::TaskTrace task = one_block_trace(1e6, 0.9);
  trace::BasicBlockRecord second = task.blocks[0];
  second.id = 2;
  second.set(BlockElement::MemLoads, 5e5);
  task.blocks.push_back(second);
  const auto prediction = psins::convolve_task(task, test_profile());
  double sum = 0.0;
  for (const auto& bt : prediction.blocks) sum += bt.block_seconds;
  EXPECT_DOUBLE_EQ(prediction.seconds, sum);
}

TEST(ConvolutionTest, OverlapHidesShorterStream) {
  // With fp ≪ mem, block time ≈ mem + (1-overlap)·fp.
  const auto task = one_block_trace(1e6, 0.5, /*fp_ops=*/1e3);
  const auto prediction = psins::convolve_task(task, test_profile());
  const auto& bt = prediction.blocks[0];
  const double overlap = test_profile().system.mem_fp_overlap;
  EXPECT_DOUBLE_EQ(bt.block_seconds,
                   bt.memory_seconds + (1.0 - overlap) * bt.fp_seconds);
}

TEST(ConvolutionTest, PureFpBlockHasNoMemoryTime) {
  const auto task = one_block_trace(0, 0.0, /*fp_ops=*/1e9);
  const auto prediction = psins::convolve_task(task, test_profile());
  EXPECT_DOUBLE_EQ(prediction.blocks[0].memory_seconds, 0.0);
  EXPECT_GT(prediction.blocks[0].fp_seconds, 0.0);
}

TEST(ConvolutionTest, EmptyTraceIsZero) {
  trace::TaskTrace task;
  task.app = "empty";
  const auto prediction = psins::convolve_task(task, test_profile());
  EXPECT_DOUBLE_EQ(prediction.seconds, 0.0);
}

// -------------------------------------------------------------- predictor ----

TEST(PredictorTest, EndToEndOnSmallApp) {
  const synth::Specfem3dApp app;
  synth::TracerOptions options;
  options.target = test_profile().system.hierarchy;
  options.max_refs_per_kernel = 100'000;
  const auto signature = synth::collect_signature(app, 16, options);
  const auto prediction = psins::predict(signature, test_profile());
  EXPECT_GT(prediction.runtime_seconds, 0.0);
  EXPECT_GT(prediction.compute_seconds, 0.0);
  EXPECT_GE(prediction.comm_seconds, 0.0);
  // Wall clock can't be shorter than the demanding rank's own compute time.
  EXPECT_GE(prediction.runtime_seconds, prediction.compute_seconds * 0.999);
  EXPECT_FALSE(prediction.from_extrapolated_trace);
}

TEST(PredictorTest, RequiresCommTraces) {
  const synth::Specfem3dApp app;
  synth::TracerOptions options;
  options.target = test_profile().system.hierarchy;
  options.max_refs_per_kernel = 50'000;
  auto signature = synth::collect_signature(app, 4, options);
  signature.comm.clear();
  EXPECT_THROW(psins::predict(signature, test_profile()), util::Error);
}

TEST(PredictorTest, DeterministicPrediction) {
  const synth::Specfem3dApp app;
  synth::TracerOptions options;
  options.target = test_profile().system.hierarchy;
  options.max_refs_per_kernel = 50'000;
  const auto signature = synth::collect_signature(app, 8, options);
  const auto a = psins::predict(signature, test_profile());
  const auto b = psins::predict(signature, test_profile());
  EXPECT_EQ(a.runtime_seconds, b.runtime_seconds);
}

// ----------------------------------------------------------------- hybrid ----

TEST(HybridPredictTest, ComputeDividesByThreadsTimesEfficiency) {
  const synth::Specfem3dApp app;
  synth::TracerOptions options;
  options.target = test_profile().system.hierarchy;
  options.max_refs_per_kernel = 50'000;
  const auto signature = synth::collect_signature(app, 8, options);

  const auto flat = psins::predict(signature, test_profile());
  const auto hybrid = psins::predict_hybrid(signature, test_profile(), 4, 0.5);
  // 4 threads × 0.5 efficiency = 2× compute speedup.
  EXPECT_NEAR(hybrid.compute_seconds, flat.compute_seconds / 2.0,
              1e-9 * flat.compute_seconds);
  EXPECT_LT(hybrid.runtime_seconds, flat.runtime_seconds);
}

TEST(HybridPredictTest, OneThreadFullEfficiencyMatchesFlat) {
  const synth::Specfem3dApp app;
  synth::TracerOptions options;
  options.target = test_profile().system.hierarchy;
  options.max_refs_per_kernel = 50'000;
  const auto signature = synth::collect_signature(app, 8, options);
  const auto flat = psins::predict(signature, test_profile());
  const auto hybrid = psins::predict_hybrid(signature, test_profile(), 1, 1.0);
  EXPECT_DOUBLE_EQ(hybrid.runtime_seconds, flat.runtime_seconds);
}

TEST(HybridPredictTest, RejectsBadParameters) {
  const synth::Specfem3dApp app;
  synth::TracerOptions options;
  options.target = test_profile().system.hierarchy;
  options.max_refs_per_kernel = 50'000;
  const auto signature = synth::collect_signature(app, 4, options);
  EXPECT_THROW(psins::predict_hybrid(signature, test_profile(), 0), util::Error);
  EXPECT_THROW(psins::predict_hybrid(signature, test_profile(), 2, 0.0), util::Error);
  EXPECT_THROW(psins::predict_hybrid(signature, test_profile(), 2, 1.5), util::Error);
}

// -------------------------------------------------------------- reference ----

TEST(ReferenceTest, MeasuredRunIsPositiveAndDeterministic) {
  const synth::Specfem3dApp app;
  psins::ReferenceOptions options;
  options.max_refs_per_kernel = 100'000;
  const auto a = psins::measure_run(app, 16, test_profile(), options);
  const auto b = psins::measure_run(app, 16, test_profile(), options);
  EXPECT_GT(a.runtime_seconds, 0.0);
  EXPECT_EQ(a.runtime_seconds, b.runtime_seconds);
  EXPECT_GT(a.compute_seconds, 0.0);
}

TEST(ReferenceTest, PredictionTracksMeasurement) {
  // The convolution prediction and the per-reference measurement are
  // different models of the same machine; they must agree within tens of
  // percent on the same run (Table I shows ~1-5% after full calibration).
  const synth::Specfem3dApp app;
  synth::TracerOptions toptions;
  toptions.target = test_profile().system.hierarchy;
  toptions.max_refs_per_kernel = 200'000;
  const auto signature = synth::collect_signature(app, 16, toptions);
  const auto prediction = psins::predict(signature, test_profile());

  psins::ReferenceOptions roptions;
  roptions.max_refs_per_kernel = 200'000;
  const auto measured = psins::measure_run(app, 16, test_profile(), roptions);

  const double error = std::abs(prediction.runtime_seconds - measured.runtime_seconds) /
                       measured.runtime_seconds;
  EXPECT_LT(error, 0.5) << "prediction " << prediction.runtime_seconds << "s vs measured "
                        << measured.runtime_seconds << "s";
}

TEST(ReferenceTest, NoiselessComputeMatchesConvolutionTightly) {
  // Regression guard: with identical streams/caps and no measurement noise,
  // the reference's demanding-rank compute time and the convolution's
  // differ only by surface-regression error — a few percent, never a
  // systematic scale factor (e.g. a stray 1/efficiency on the pure-MPI
  // path, which once inflated every "measured" runtime by 11%).
  const synth::Specfem3dApp app;
  synth::TracerOptions toptions;
  toptions.target = test_profile().system.hierarchy;
  toptions.max_refs_per_kernel = 300'000;
  const auto signature = synth::collect_signature(app, 16, toptions);
  const auto prediction = psins::predict(signature, test_profile());

  psins::ReferenceOptions roptions;
  roptions.max_refs_per_kernel = 300'000;
  roptions.noise = 0.0;
  const auto measured = psins::measure_run(app, 16, test_profile(), roptions);

  EXPECT_NEAR(prediction.compute_seconds, measured.compute_seconds,
              0.05 * measured.compute_seconds);
}

// ----------------------------------------------------------------- energy ----

/// Minimal valid signature around one hand-built block for exact arithmetic
/// checks of the energy convolution.
trace::AppSignature energy_signature(double mem_ops, double h1, double h2, double h3,
                                     double fp_adds = 0.0, double divs = 0.0) {
  trace::AppSignature sig;
  sig.app = "energy-unit";
  sig.core_count = 2;
  sig.target_system = "bluewaters-p1";
  sig.demanding_rank = 0;
  trace::TaskTrace task = one_block_trace(mem_ops, h1);
  task.app = sig.app;
  task.core_count = 2;
  task.rank = 0;
  task.blocks[0].set(BlockElement::HitRateL2, h2);
  task.blocks[0].set(BlockElement::HitRateL3, h3);
  task.blocks[0].set(BlockElement::FpAdd, fp_adds);
  task.blocks[0].set(BlockElement::FpDivSqrt, divs);
  sig.tasks.push_back(task);
  for (std::uint32_t r = 0; r < 2; ++r) {
    trace::CommTrace comm;
    comm.rank = r;
    comm.core_count = 2;
    comm.tail_compute_units = 100.0;  // equal work on both ranks
    sig.comm.push_back(comm);
  }
  return sig;
}

psins::PredictionResult fake_prediction(double runtime) {
  psins::PredictionResult prediction;
  prediction.runtime_seconds = runtime;
  return prediction;
}

TEST(EnergyTest, MemoryEnergySplitsByIncrementalHitFractions) {
  // 1e9 refs: 60% L1, +20% L2, +10% L3, 10% memory.
  const auto sig = energy_signature(1e9, 0.6, 0.8, 0.9);
  const auto energy = psins::estimate_energy(sig, test_profile(), fake_prediction(10.0));
  const auto& model = test_profile().system.energy;
  const double expected_demanding =
      1e9 * (0.6 * model.level_nj[0] + 0.2 * model.level_nj[1] + 0.1 * model.level_nj[2] +
             0.1 * model.memory_nj) *
      1e-9;
  // Two equal-work ranks → dynamic doubles the demanding rank's joules.
  EXPECT_NEAR(energy.dynamic_joules, 2.0 * expected_demanding,
              1e-9 * energy.dynamic_joules);
}

TEST(EnergyTest, StaticTermIsPowerTimesCoresTimesRuntime) {
  const auto sig = energy_signature(1e6, 0.9, 0.95, 0.99);
  const auto energy = psins::estimate_energy(sig, test_profile(), fake_prediction(50.0));
  const double watts = test_profile().system.energy.static_watts_per_core;
  EXPECT_DOUBLE_EQ(energy.static_joules, watts * 2 * 50.0);
  EXPECT_DOUBLE_EQ(energy.total_joules, energy.dynamic_joules + energy.static_joules);
  EXPECT_DOUBLE_EQ(energy.mean_watts, energy.total_joules / 50.0);
}

TEST(EnergyTest, FpEnergyCountsDividesExtra) {
  const auto plain = psins::estimate_energy(energy_signature(0, 0, 0, 0, 1e9, 0),
                                            test_profile(), fake_prediction(1.0));
  const auto divs = psins::estimate_energy(energy_signature(0, 0, 0, 0, 0, 1e9),
                                           test_profile(), fake_prediction(1.0));
  EXPECT_GT(divs.dynamic_joules, plain.dynamic_joules);
}

TEST(EnergyTest, LowerHitRatesCostMoreEnergy) {
  const auto hot = psins::estimate_energy(energy_signature(1e9, 0.95, 0.99, 0.999),
                                          test_profile(), fake_prediction(1.0));
  const auto cold = psins::estimate_energy(energy_signature(1e9, 0.1, 0.2, 0.3),
                                           test_profile(), fake_prediction(1.0));
  EXPECT_GT(cold.dynamic_joules, 3.0 * hot.dynamic_joules);
}

TEST(EnergyTest, RequiresPositiveRuntime) {
  const auto sig = energy_signature(1e6, 0.9, 0.95, 0.99);
  EXPECT_THROW(psins::estimate_energy(sig, test_profile(), fake_prediction(0.0)),
               util::Error);
}

TEST(EnergyTest, BlockBreakdownSumsToDemandingShare) {
  const auto sig = energy_signature(1e9, 0.6, 0.8, 0.9, 1e8);
  const auto energy = psins::estimate_energy(sig, test_profile(), fake_prediction(10.0));
  double demanding = 0.0;
  for (const auto& block : energy.blocks) demanding += block.memory_joules + block.fp_joules;
  EXPECT_NEAR(energy.dynamic_joules, 2.0 * demanding, 1e-9 * energy.dynamic_joules);
}

}  // namespace
}  // namespace pmacx
