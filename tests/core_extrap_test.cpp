// Tests for the trace extrapolator: exact recovery of canonical scaling
// laws, domain clamping, influence accounting and the fit report.
#include <gtest/gtest.h>

#include <cmath>

#include "core/extrapolator.hpp"
#include "trace/binary_io.hpp"
#include "util/error.hpp"
#include "util/threadpool.hpp"

namespace pmacx {
namespace {

using core::ExtrapolationOptions;
using core::extrapolate_task;
using trace::BlockElement;
using trace::InstrElement;
using trace::TaskTrace;

/// Builds a trace whose elements follow known laws of the core count:
///   block 1: mem loads ~ C/p (strong scaling), L2 rate linear in p,
///            visit count constant;
///   block 2: mem loads ~ log2(p) growth (the Fig. 5 shape), tiny volume.
TaskTrace law_trace(double p) {
  TaskTrace task;
  task.app = "law-demo";
  task.core_count = static_cast<std::uint32_t>(p);
  task.target_system = "t";

  trace::BasicBlockRecord dominant;
  dominant.id = 1;
  dominant.location = {"a.c", 1, "dominant"};
  dominant.set(BlockElement::VisitCount, 42.0);
  dominant.set(BlockElement::MemLoads, 1e10 / p);
  dominant.set(BlockElement::MemStores, 4e9 / p);
  dominant.set(BlockElement::BytesPerRef, 8.0);
  dominant.set(BlockElement::HitRateL1, 0.4);
  dominant.set(BlockElement::HitRateL2, 0.5 + 0.00004 * p);  // linear (Fig. 4)
  dominant.set(BlockElement::HitRateL3, 0.95);
  dominant.set(BlockElement::WorkingSetBytes, 4.6e9 / p);
  dominant.set(BlockElement::Ilp, 3.5);
  dominant.set(BlockElement::DepChainLength, 6.0);
  trace::InstructionRecord instr;
  instr.index = 0;
  instr.set(InstrElement::ExecCount, 1e10 / p);
  instr.set(InstrElement::MemOps, 1e10 / p);
  instr.set(InstrElement::BytesPerOp, 8.0);
  instr.set(InstrElement::HitRateL1, 0.4);
  instr.set(InstrElement::HitRateL2, 0.5 + 0.00004 * p);
  instr.set(InstrElement::HitRateL3, 0.97);
  dominant.instructions.push_back(instr);
  task.blocks.push_back(dominant);

  trace::BasicBlockRecord reduction;
  reduction.id = 2;
  reduction.location = {"b.c", 2, "reduction"};
  reduction.set(BlockElement::VisitCount, 10.0);
  reduction.set(BlockElement::MemLoads, 4096.0 * (1.0 + std::log2(p)));  // log growth
  reduction.set(BlockElement::BytesPerRef, 8.0);
  reduction.set(BlockElement::HitRateL1, 0.99);
  reduction.set(BlockElement::HitRateL2, 0.99);
  reduction.set(BlockElement::HitRateL3, 0.99);
  reduction.set(BlockElement::Ilp, 2.0);
  reduction.set(BlockElement::DepChainLength, 3.0);
  task.blocks.push_back(reduction);
  task.sort_blocks();
  return task;
}

std::vector<TaskTrace> law_series() {
  return {law_trace(1024), law_trace(2048), law_trace(4096)};
}

TEST(ExtrapolatorTest, RecoversStrongScalingLaw) {
  const auto series = law_series();
  const auto result = extrapolate_task(series, 8192);
  const auto* block = result.trace.find_block(1);
  ASSERT_NE(block, nullptr);
  // 1e10/8192 within a few percent (1/p isn't exactly any of the four paper
  // forms, but exp/log fits track it closely over one octave extrapolation).
  EXPECT_NEAR(block->get(BlockElement::MemLoads), 1e10 / 8192, 0.20 * (1e10 / 8192));
}

TEST(ExtrapolatorTest, RecoversLinearHitRateExactly) {
  const auto series = law_series();
  const auto result = extrapolate_task(series, 8192);
  const auto* block = result.trace.find_block(1);
  ASSERT_NE(block, nullptr);
  EXPECT_NEAR(block->get(BlockElement::HitRateL2), 0.5 + 0.00004 * 8192, 1e-9);
}

TEST(ExtrapolatorTest, RecoversLogGrowthExactly) {
  const auto series = law_series();
  const auto result = extrapolate_task(series, 8192);
  const auto* block = result.trace.find_block(2);
  ASSERT_NE(block, nullptr);
  EXPECT_NEAR(block->get(BlockElement::MemLoads), 4096.0 * (1.0 + std::log2(8192)),
              1.0);
}

TEST(ExtrapolatorTest, ConstantElementsStayConstant) {
  const auto series = law_series();
  const auto result = extrapolate_task(series, 8192);
  const auto* block = result.trace.find_block(1);
  EXPECT_DOUBLE_EQ(block->get(BlockElement::VisitCount), 42.0);
  EXPECT_DOUBLE_EQ(block->get(BlockElement::Ilp), 3.5);
}

TEST(ExtrapolatorTest, InstructionElementsExtrapolated) {
  const auto series = law_series();
  const auto result = extrapolate_task(series, 8192);
  const auto* block = result.trace.find_block(1);
  ASSERT_EQ(block->instructions.size(), 1u);
  EXPECT_NEAR(block->instructions[0].get(InstrElement::HitRateL2),
              0.5 + 0.00004 * 8192, 1e-9);
}

TEST(ExtrapolatorTest, OutputMarkedExtrapolated) {
  const auto result = extrapolate_task(law_series(), 8192);
  EXPECT_TRUE(result.trace.extrapolated);
  EXPECT_EQ(result.trace.core_count, 8192u);
  EXPECT_EQ(result.trace.app, "law-demo");
}

TEST(ExtrapolatorTest, RatesClampedIntoUnitInterval) {
  // Push the linear L2 law far enough that the unclamped fit exceeds 1.
  std::vector<TaskTrace> series = law_series();
  const auto result = extrapolate_task(series, 2'000'000);
  const auto* block = result.trace.find_block(1);
  EXPECT_LE(block->get(BlockElement::HitRateL2), 1.0);
  EXPECT_GE(block->get(BlockElement::HitRateL2), 0.0);
}

TEST(ExtrapolatorTest, HitRatesMonotoneAfterClamping) {
  const auto result = extrapolate_task(law_series(), 500'000);
  for (const auto& block : result.trace.blocks) {
    EXPECT_LE(block.get(BlockElement::HitRateL1), block.get(BlockElement::HitRateL2));
    EXPECT_LE(block.get(BlockElement::HitRateL2), block.get(BlockElement::HitRateL3));
  }
}

TEST(ExtrapolatorTest, CountsNeverNegative) {
  // A steep decay extrapolated far out must floor at zero, not go negative.
  std::vector<TaskTrace> series;
  for (double p : {64.0, 128.0, 256.0}) {
    TaskTrace task = law_trace(p);
    task.core_count = static_cast<std::uint32_t>(p);
    task.blocks[0].set(BlockElement::MemStores, 1000.0 - 3.0 * p);  // linear decay
    series.push_back(task);
  }
  const auto result = extrapolate_task(series, 8192);
  EXPECT_GE(result.trace.find_block(1)->get(BlockElement::MemStores), 0.0);
}

TEST(ExtrapolatorTest, RoundCountsOptionYieldsIntegers) {
  ExtrapolationOptions options;
  options.round_counts = true;
  const auto result = extrapolate_task(law_series(), 8192, options);
  const double visits = result.trace.find_block(1)->get(BlockElement::VisitCount);
  EXPECT_DOUBLE_EQ(visits, std::round(visits));
}

TEST(ExtrapolatorTest, InfluenceFollowsPaperRule) {
  const auto result = extrapolate_task(law_series(), 8192);
  // Block 1 carries ~all memory ops → influential; block 2 is tiny (~50k of
  // ~3.4e6 at 4096 cores... actually compare against 0.1%): block 2 has
  // 4096·13 ≈ 53k of ≈ 3.4e6 ops ≈ 1.6% → influential too.  Use elements'
  // flags to check consistency rather than exact partition.
  bool block1_flagged = false;
  for (const auto& fit : result.report.elements) {
    if (fit.key.block_id == 1 && fit.influential) block1_flagged = true;
  }
  EXPECT_TRUE(block1_flagged);

  // With an absurdly high threshold nothing is influential.
  ExtrapolationOptions strict;
  strict.influence_threshold = 1.1;
  const auto none = extrapolate_task(law_series(), 8192, strict);
  for (const auto& fit : none.report.elements) EXPECT_FALSE(fit.influential);
}

TEST(ExtrapolatorTest, ReportCoversEveryElement) {
  const auto result = extrapolate_task(law_series(), 8192);
  // 2 blocks × block elements + 1 instruction × instr elements.
  EXPECT_EQ(result.report.elements.size(),
            2 * trace::kBlockElementCount + trace::kInstrElementCount);
  EXPECT_EQ(result.report.axis.size(), 3u);
  EXPECT_DOUBLE_EQ(result.report.target, 8192.0);
}

TEST(ExtrapolatorTest, PerfectLawsFitWithinPaperBound) {
  // The paper: every influential element fit within 20% absolute relative
  // error.  On exact-law data we do far better.
  const auto result = extrapolate_task(law_series(), 8192);
  EXPECT_LT(result.report.worst_influential_error(), 0.05);
}

TEST(ExtrapolatorTest, ReportSummaryMentionsForms) {
  const auto result = extrapolate_task(law_series(), 8192);
  const std::string summary = result.report.summary();
  EXPECT_NE(summary.find("8192"), std::string::npos);
  EXPECT_NE(summary.find("influential"), std::string::npos);
  EXPECT_FALSE(result.report.form_histogram().empty());
  EXPECT_FALSE(result.report.worst_elements(3).empty());
}

TEST(ExtrapolatorTest, ExtensionFormsImproveInversePLaw) {
  // 1/p work split is exactly InverseP; with extension forms enabled the
  // extrapolation of mem loads should be nearly exact.
  ExtrapolationOptions options;
  options.fit.forms.assign(stats::all_forms().begin(), stats::all_forms().end());
  const auto result = extrapolate_task(law_series(), 8192, options);
  const auto* block = result.trace.find_block(1);
  EXPECT_NEAR(block->get(BlockElement::MemLoads), 1e10 / 8192, 1e-2 * (1e10 / 8192));
}

TEST(ExtrapolatorTest, RejectsBadArguments) {
  std::vector<TaskTrace> one = {law_trace(1024)};
  EXPECT_THROW(extrapolate_task(one, 8192), util::Error);
  EXPECT_THROW(extrapolate_task(law_series(), 0), util::Error);
}

TEST(ExtrapolatorTest, DeterministicOutput) {
  const auto a = extrapolate_task(law_series(), 8192);
  const auto b = extrapolate_task(law_series(), 8192);
  EXPECT_EQ(a.trace, b.trace);
}

TEST(ExtrapolatorTest, FitPresentIgnoresMissingObservations) {
  // Block 2 follows its log law everywhere but is unobserved at 2048; with
  // three present points FitPresent recovers the law exactly, while
  // ZeroFill gets dragged by the injected zero.  (With only two present
  // points every 2-parameter form interpolates — the law is unidentifiable,
  // which is why this test uses a 4-count series.)
  std::vector<TaskTrace> series = {law_trace(1024), law_trace(2048), law_trace(4096),
                                   law_trace(8192)};
  std::erase_if(series[1].blocks, [](const auto& block) { return block.id == 2; });

  core::ExtrapolationOptions fit_present;
  fit_present.missing = core::MissingPolicy::FitPresent;
  const auto good = extrapolate_task(series, 16384, fit_present);
  const double expected = 4096.0 * (1.0 + std::log2(16384));
  EXPECT_NEAR(good.trace.find_block(2)->get(BlockElement::MemLoads), expected,
              0.01 * expected);

  core::ExtrapolationOptions zero_fill;
  zero_fill.missing = core::MissingPolicy::ZeroFill;
  const auto bad = extrapolate_task(series, 16384, zero_fill);
  EXPECT_GT(std::fabs(bad.trace.find_block(2)->get(BlockElement::MemLoads) - expected),
            0.05 * expected);
}

TEST(ExtrapolatorTest, FitPresentFallsBackWithOneObservation) {
  // Present at only one count: fall back to the zero-filled series rather
  // than fitting a single point.
  std::vector<TaskTrace> series = law_series();
  std::erase_if(series[0].blocks, [](const auto& block) { return block.id == 2; });
  std::erase_if(series[1].blocks, [](const auto& block) { return block.id == 2; });
  core::ExtrapolationOptions options;
  options.missing = core::MissingPolicy::FitPresent;
  const auto result = extrapolate_task(series, 8192, options);
  EXPECT_NE(result.trace.find_block(2), nullptr);
  EXPECT_GE(result.trace.find_block(2)->get(BlockElement::MemLoads), 0.0);
}

TEST(ExtrapolatorTest, BootstrapIntervalsOnInfluentialElements) {
  ExtrapolationOptions options;
  options.bootstrap_resamples = 50;
  const auto result = extrapolate_task(law_series(), 8192, options);
  std::size_t with_interval = 0;
  for (const auto& fit : result.report.elements) {
    if (!fit.influential) {
      EXPECT_FALSE(fit.has_interval);
      continue;
    }
    ASSERT_TRUE(fit.has_interval) << fit.key.describe();
    EXPECT_LE(fit.interval.lo, fit.interval.hi);
    ++with_interval;
  }
  EXPECT_GT(with_interval, 0u);
}

TEST(ExtrapolatorTest, BootstrapOffByDefault) {
  const auto result = extrapolate_task(law_series(), 8192);
  for (const auto& fit : result.report.elements) EXPECT_FALSE(fit.has_interval);
}

// ----------------------------------------------- parallel golden equality ----

/// The parallel fit stage must be invisible in the output: the v002 binary
/// serialization of the extrapolated trace, the per-element CSV report and
/// the diagnostics ledger are asserted byte-identical between threads=1 and
/// threads=4 runs of the same series.
void expect_identical_results(const core::ExtrapolationResult& serial,
                              const core::ExtrapolationResult& parallel) {
  EXPECT_EQ(trace::to_binary(serial.trace), trace::to_binary(parallel.trace));
  EXPECT_EQ(serial.report.to_csv(), parallel.report.to_csv());
  EXPECT_EQ(serial.diagnostics.fallback_fits, parallel.diagnostics.fallback_fits);
  EXPECT_EQ(serial.diagnostics.clamped_values, parallel.diagnostics.clamped_values);
  EXPECT_EQ(serial.diagnostics.warnings, parallel.diagnostics.warnings);
}

TEST(ExtrapolatorTest, ParallelMatchesSerialByteIdentical) {
  ExtrapolationOptions serial_options;
  serial_options.threads = 1;
  ExtrapolationOptions parallel_options;
  parallel_options.threads = 4;
  for (int round = 0; round < 3; ++round) {
    const auto serial = extrapolate_task(law_series(), 8192, serial_options);
    const auto parallel = extrapolate_task(law_series(), 8192, parallel_options);
    expect_identical_results(serial, parallel);
  }
}

TEST(ExtrapolatorTest, ParallelMatchesSerialWithBootstrapAndFallbacks) {
  // Bootstrap intervals are seeded per element and the degenerate series
  // forces constant fallbacks + clamping — all of it must survive the
  // parallel fit stage unchanged, warnings in element order included.
  std::vector<TaskTrace> series = law_series();
  series[1].blocks[0].set(BlockElement::MemStores, 0.0);  // breaks the law → fallback

  ExtrapolationOptions serial_options;
  serial_options.threads = 1;
  serial_options.bootstrap_resamples = 40;
  // Allow out-of-domain fits so the linear hit-rate law wins selection and
  // the clamp path (and its tally) actually executes.
  serial_options.reject_out_of_domain = false;
  ExtrapolationOptions parallel_options = serial_options;
  parallel_options.threads = 4;

  const auto serial = extrapolate_task(series, 2'000'000, serial_options);
  const auto parallel = extrapolate_task(series, 2'000'000, parallel_options);
  expect_identical_results(serial, parallel);
  EXPECT_GT(serial.diagnostics.clamped_values, 0u);
}

TEST(ExtrapolatorTest, ExternalPoolMatchesSerial) {
  util::ThreadPool pool(4);
  ExtrapolationOptions pooled;
  pooled.pool = &pool;
  ExtrapolationOptions serial_options;
  serial_options.threads = 1;
  const auto serial = extrapolate_task(law_series(), 8192, serial_options);
  const auto parallel = extrapolate_task(law_series(), 8192, pooled);
  expect_identical_results(serial, parallel);
}

// ------------------------------------------- input-parameter extrapolation ----

/// Trace at fixed cores whose elements follow laws of the problem size N:
/// mem loads ∝ N, working set ∝ N, hit rate saturating like a - b/N.
TaskTrace size_trace(double n) {
  TaskTrace task;
  task.app = "param-demo";
  task.core_count = 64;
  task.target_system = "t";
  trace::BasicBlockRecord block;
  block.id = 1;
  block.location = {"k.c", 1, "kernel"};
  block.set(BlockElement::VisitCount, 10.0);
  block.set(BlockElement::MemLoads, 25.0 * n);
  block.set(BlockElement::BytesPerRef, 8.0);
  block.set(BlockElement::HitRateL1, 0.875);
  block.set(BlockElement::HitRateL2, 0.875);
  block.set(BlockElement::HitRateL3, 0.99 - 2e5 / n);
  block.set(BlockElement::WorkingSetBytes, 40.0 * n);
  block.set(BlockElement::Ilp, 3.0);
  block.set(BlockElement::DepChainLength, 4.0);
  task.blocks.push_back(block);
  return task;
}

// ------------------------------------------------ fit-once/query-many seam --

TEST(ModelSetTest, SplitMatchesExtrapolateTaskByteIdenticalAcrossOptions) {
  // fit_task_models + extrapolate_from_models is the serving layer's cached
  // path; extrapolate_task is the direct path.  A cached answer must be
  // indistinguishable from a fresh one for every policy combination, so the
  // sweep covers the option axes that steer fitting and selection.
  std::vector<ExtrapolationOptions> sweep;
  sweep.emplace_back();  // defaults
  {
    ExtrapolationOptions o;
    o.reject_out_of_domain = false;
    sweep.push_back(o);
  }
  {
    ExtrapolationOptions o;
    o.fit.criterion = stats::SelectionCriterion::LooCv;
    o.round_counts = true;
    sweep.push_back(o);
  }
  {
    ExtrapolationOptions o;
    o.fit.forms.assign(stats::paper_forms().begin(), stats::paper_forms().end());
    o.missing = core::MissingPolicy::FitPresent;
    sweep.push_back(o);
  }
  const auto series = law_series();
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    SCOPED_TRACE("options[" + std::to_string(i) + "]");
    const core::TaskModelSet models = core::fit_task_models(series, sweep[i]);
    for (std::uint32_t target : {8192u, 65536u}) {
      expect_identical_results(extrapolate_task(series, target, sweep[i]),
                               core::extrapolate_from_models(models, target));
    }
  }
}

TEST(ModelSetTest, OneFitServesManyTargets) {
  const auto series = law_series();
  const core::TaskModelSet models = core::fit_task_models(series);
  EXPECT_GT(models.memory_bytes(), sizeof(core::TaskModelSet));
  // A cached set must not keep a reference to a caller-owned pool alive.
  EXPECT_EQ(models.options.pool, nullptr);
  for (std::uint32_t target : {4096u, 8192u, 16384u, 32768u}) {
    const auto result = core::extrapolate_from_models(models, target);
    EXPECT_EQ(result.trace.core_count, target);
    EXPECT_TRUE(result.trace.extrapolated);
  }
}

TEST(ParamExtrapTest, RecoversSizeLaws) {
  const std::vector<TaskTrace> series = {size_trace(1e6), size_trace(2e6), size_trace(4e6)};
  const std::vector<double> ns = {1e6, 2e6, 4e6};
  const auto result = core::extrapolate_parameter(series, ns, 8e6);
  const auto* block = result.trace.find_block(1);
  ASSERT_NE(block, nullptr);
  EXPECT_NEAR(block->get(BlockElement::MemLoads), 25.0 * 8e6, 1.0);
  EXPECT_NEAR(block->get(BlockElement::WorkingSetBytes), 40.0 * 8e6, 1.0);
  EXPECT_NEAR(block->get(BlockElement::HitRateL3), 0.99 - 2e5 / 8e6, 1e-6);
}

TEST(ParamExtrapTest, KeepsCoreCountAndMarksExtrapolated) {
  const std::vector<TaskTrace> series = {size_trace(1e6), size_trace(2e6), size_trace(4e6)};
  const std::vector<double> ns = {1e6, 2e6, 4e6};
  const auto result = core::extrapolate_parameter(series, ns, 8e6);
  EXPECT_EQ(result.trace.core_count, 64u);
  EXPECT_TRUE(result.trace.extrapolated);
  EXPECT_EQ(result.report.axis_name, "parameter");
  EXPECT_DOUBLE_EQ(result.report.target, 8e6);
}

TEST(ParamExtrapTest, RejectsMixedCoreCounts) {
  std::vector<TaskTrace> series = {size_trace(1e6), size_trace(2e6)};
  series[1].core_count = 128;
  const std::vector<double> ns = {1e6, 2e6};
  EXPECT_THROW(core::extrapolate_parameter(series, ns, 4e6), util::Error);
}

TEST(ParamExtrapTest, RejectsNonIncreasingAxis) {
  const std::vector<TaskTrace> series = {size_trace(1e6), size_trace(2e6)};
  const std::vector<double> ns = {2e6, 1e6};
  EXPECT_THROW(core::extrapolate_parameter(series, ns, 4e6), util::Error);
}

}  // namespace
}  // namespace pmacx
