// util::io fault-injector contract tests.
//
// The injector's promises — typed errors only, bounded retries, crash
// latching, deterministic fail_op sweeps, realistic torn-rename/fsync-lie
// disk states — are the foundation the diskchaos sweep and every recovery
// path stand on, so each one is pinned here in isolation.  The atomic-file
// sweep is the regression test for the temp-leak fix: every failure point
// of write_file_atomic must leave no stray temp and the old bytes intact.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "trace/binary_io.hpp"
#include "trace/stream_reader.hpp"
#include "trace/task_trace.hpp"
#include "util/atomic_file.hpp"
#include "util/error.hpp"
#include "util/io.hpp"
#include "util/metrics.hpp"

namespace pmacx {
namespace {

namespace fs = std::filesystem;
namespace io = util::io;

/// Every test leaves the process-wide injector clean, pass or fail.
struct FaultGuard {
  ~FaultGuard() { io::clear_faults(); }
};

std::string scratch_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/pmacx_io_" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

std::uint64_t counter_value(const char* name) {
  return util::metrics::Registry::global().counter(name).value();
}

trace::TaskTrace tiny_trace() {
  trace::TaskTrace task;
  task.app = "iofault";
  task.rank = 0;
  task.core_count = 16;
  task.target_system = "test target";
  for (std::size_t b = 0; b < 4; ++b) {
    trace::BasicBlockRecord block;
    block.id = 10 + b;
    block.location = {"kernel.f90", static_cast<std::uint32_t>(100 + b), "kernel"};
    block.set(trace::BlockElement::VisitCount, 100.0 + static_cast<double>(b));
    block.set(trace::BlockElement::MemLoads, 5000.0);
    block.set(trace::BlockElement::MemStores, 2500.0);
    block.set(trace::BlockElement::BytesPerRef, 8.0);
    block.set(trace::BlockElement::HitRateL1, 0.9);
    block.set(trace::BlockElement::HitRateL2, 0.95);
    block.set(trace::BlockElement::HitRateL3, 0.99);
    task.blocks.push_back(block);
  }
  task.sort_blocks();
  return task;
}

// ------------------------------------------------------------ fault spec ----

TEST(FaultSpecTest, ParsesEveryField) {
  const io::FaultConfig cfg = io::parse_fault_spec(
      "seed=7,p_eio=0.25,p_enospc=0.5,p_short_write=0.125,p_short_read=0.0625,"
      "p_eintr=1,p_torn_rename=0.75,p_fsync_lie=0.875,crash_after_ops=200,"
      "enospc_after_bytes=4096,fail_op=3,fail_errno=enospc");
  EXPECT_EQ(cfg.seed, 7u);
  EXPECT_DOUBLE_EQ(cfg.p_eio, 0.25);
  EXPECT_DOUBLE_EQ(cfg.p_enospc, 0.5);
  EXPECT_DOUBLE_EQ(cfg.p_short_write, 0.125);
  EXPECT_DOUBLE_EQ(cfg.p_short_read, 0.0625);
  EXPECT_DOUBLE_EQ(cfg.p_eintr, 1.0);
  EXPECT_DOUBLE_EQ(cfg.p_torn_rename, 0.75);
  EXPECT_DOUBLE_EQ(cfg.p_fsync_lie, 0.875);
  EXPECT_EQ(cfg.crash_after_ops, 200u);
  EXPECT_EQ(cfg.enospc_after_bytes, 4096u);
  EXPECT_EQ(cfg.fail_op, 3u);
  EXPECT_EQ(cfg.fail_errno, ENOSPC);
}

TEST(FaultSpecTest, RejectsUnknownKeysAndBadValues) {
  EXPECT_THROW(io::parse_fault_spec("p_nonsense=1"), util::Error);
  EXPECT_THROW(io::parse_fault_spec("p_eio=sideways"), util::Error);
  EXPECT_THROW(io::parse_fault_spec("seed"), util::Error);
}

TEST(FaultSpecTest, EnvInstallRoundTrip) {
  FaultGuard guard;
  ::setenv("PMACX_IO_FAULTS", "seed=5,p_eio=0.25", 1);
  EXPECT_TRUE(io::install_faults_from_env());
  EXPECT_TRUE(io::faults_active());
  io::clear_faults();
  ::unsetenv("PMACX_IO_FAULTS");
  EXPECT_FALSE(io::install_faults_from_env());
  EXPECT_FALSE(io::faults_active());
}

// ------------------------------------------------------------ wrappers ------

TEST(IoFaultTest, NoFaultsIsAPassthrough) {
  const std::string dir = scratch_dir("passthrough");
  const std::string path = dir + "/data.bin";
  const std::string data(5000, 'x');
  const int fd = io::open_file(path, O_WRONLY | O_CREAT | O_TRUNC);
  io::write_all(fd, data, path);
  io::fsync_file(fd, path);
  io::close_file(fd, path);
  EXPECT_EQ(slurp(path), data);

  const int rfd = io::open_file(path, O_RDONLY);
  std::string got(data.size(), '\0');
  std::size_t off = 0;
  while (off < got.size()) {
    const std::size_t n = io::read_some(rfd, got.data() + off, got.size() - off, path);
    if (n == 0) break;
    off += n;
  }
  io::close_quiet(rfd);
  EXPECT_EQ(got, data);
  fs::remove_all(dir);
}

TEST(IoFaultTest, FailOpIsFullyDeterministic) {
  FaultGuard guard;
  const std::string dir = scratch_dir("failop");
  const std::string path = dir + "/data.bin";

  io::FaultConfig cfg;
  cfg.fail_op = 1;
  cfg.fail_errno = EIO;
  io::install_faults(cfg);
  try {
    io::open_file(path, O_WRONLY | O_CREAT | O_TRUNC);
    FAIL() << "the first faultable op must fail";
  } catch (const io::IoError& e) {
    EXPECT_EQ(e.err(), EIO);
    EXPECT_EQ(e.op(), "open");
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos)
        << "the error must name the path";
  }
  // Only the Nth op fails: the very next call goes through untouched.
  const int fd = io::open_file(path, O_WRONLY | O_CREAT | O_TRUNC);
  io::write_all(fd, "hello", path);
  io::close_file(fd, path);
  EXPECT_EQ(slurp(path), "hello");
  EXPECT_GE(io::fault_ops_seen(), 3u);
  fs::remove_all(dir);
}

TEST(IoFaultTest, EintrRetriesAreBounded) {
  FaultGuard guard;
  const std::string dir = scratch_dir("eintr");
  const std::uint64_t retries_before = counter_value("io.retries.eintr");

  const std::string path = dir + "/data.bin";
  io::FaultConfig cfg;
  cfg.seed = 11;
  cfg.p_eintr = 1.0;  // a permanent signal storm on every transfer
  io::install_faults(cfg);
  const int fd = io::open_file(path, O_WRONLY | O_CREAT | O_TRUNC);
  try {
    io::write_all(fd, "never lands", path);
    FAIL() << "a permanent EINTR storm must surface as a typed error";
  } catch (const io::IoError& e) {
    EXPECT_EQ(e.err(), EINTR);
  }
  io::close_quiet(fd);
  EXPECT_GE(counter_value("io.retries.eintr") - retries_before,
            static_cast<std::uint64_t>(io::kMaxEintrRetries));
  io::clear_faults();
  fs::remove_all(dir);
}

TEST(IoFaultTest, ShortTransfersAreRetriedToCompletion) {
  FaultGuard guard;
  const std::string dir = scratch_dir("short");
  const std::string path = dir + "/data.bin";
  const std::string data(64 * 1024, 'q');
  const std::uint64_t short_writes_before = counter_value("io.retries.short_write");

  io::FaultConfig cfg;
  cfg.seed = 13;
  cfg.p_short_write = 1.0;  // every write transfers only a seeded prefix
  cfg.p_short_read = 1.0;
  io::install_faults(cfg);

  const int fd = io::open_file(path, O_WRONLY | O_CREAT | O_TRUNC);
  io::write_all(fd, data, path);
  io::close_file(fd, path);
  EXPECT_GT(counter_value("io.retries.short_write"), short_writes_before);

  const int rfd = io::open_file(path, O_RDONLY);
  std::string got;
  char buffer[4096];
  while (true) {
    const std::size_t n = io::read_some(rfd, buffer, sizeof(buffer), path);
    if (n == 0) break;
    got.append(buffer, n);
  }
  io::close_quiet(rfd);
  io::clear_faults();
  EXPECT_EQ(got, data) << "short transfers must degrade to retries, never to loss";
  EXPECT_EQ(slurp(path), data);
  fs::remove_all(dir);
}

TEST(IoFaultTest, StickyEnospcFailsEveryWriteSideOp) {
  FaultGuard guard;
  const std::string dir = scratch_dir("enospc");
  const std::string path = dir + "/data.bin";

  io::FaultConfig cfg;
  cfg.enospc_after_bytes = 16;  // the disk "fills" almost immediately
  io::install_faults(cfg);

  const int fd = io::open_file(path, O_WRONLY | O_CREAT | O_TRUNC);
  io::write_all(fd, std::string(8, 'a'), path);  // still fits
  try {
    io::write_all(fd, std::string(64, 'b'), path);  // would cross the threshold
    FAIL() << "writes past the threshold must fail ENOSPC";
  } catch (const io::IoError& e) {
    EXPECT_EQ(e.err(), ENOSPC);
  }
  io::close_quiet(fd);
  // Sticky: write-intent opens fail too until the injector is reset.
  EXPECT_THROW(io::open_file(dir + "/other.bin", O_WRONLY | O_CREAT), io::IoError);
  // Read-side ops keep working on a full disk.
  const int rfd = io::open_file(path, O_RDONLY);
  char buffer[8];
  EXPECT_GT(io::read_some(rfd, buffer, sizeof(buffer), path), 0u);
  io::close_quiet(rfd);
  io::clear_faults();
  fs::remove_all(dir);
}

TEST(IoFaultTest, CrashLatchesAndDisablesCleanup) {
  FaultGuard guard;
  const std::string dir = scratch_dir("crash");
  const std::string path = dir + "/data.bin";
  { std::ofstream(path, std::ios::binary) << "survivor"; }

  io::FaultConfig cfg;
  cfg.crash_after_ops = 1;
  io::install_faults(cfg);
  EXPECT_THROW(io::open_file(path, O_RDONLY), io::SimulatedCrash);
  // Latched: every subsequent faultable op is also the crash.
  EXPECT_THROW(io::open_file(path, O_RDONLY), io::SimulatedCrash);
  // A dead process cleans nothing up: best-effort unlink must be a no-op.
  EXPECT_FALSE(io::unlink_quiet(path));
  EXPECT_TRUE(fs::exists(path));
  io::clear_faults();
  EXPECT_EQ(slurp(path), "survivor");
  EXPECT_TRUE(io::unlink_quiet(path));
  fs::remove_all(dir);
}

TEST(IoFaultTest, TornRenameLeavesATruncatedPublishedFile) {
  FaultGuard guard;
  const std::string dir = scratch_dir("torn");
  const std::string src = dir + "/staged.tmp.1";
  const std::string dst = dir + "/published.bin";
  const std::string data(4096, 'r');
  { std::ofstream(src, std::ios::binary) << data; }

  io::FaultConfig cfg;
  cfg.seed = 17;
  cfg.p_torn_rename = 1.0;
  io::install_faults(cfg);
  EXPECT_THROW(io::rename_file(src, dst), io::IoError);
  io::clear_faults();
  // The caller saw a failed publish; the disk holds the half-written file a
  // crash between writeback and rename would leave.
  EXPECT_FALSE(fs::exists(src));
  ASSERT_TRUE(fs::exists(dst));
  EXPECT_LT(fs::file_size(dst), data.size());
  fs::remove_all(dir);
}

TEST(IoFaultTest, FsyncLieDropsBytesAndArmsACrash) {
  FaultGuard guard;
  const std::string dir = scratch_dir("fsynclie");
  const std::string path = dir + "/data.bin";
  const std::string data(4096, 'f');

  const int fd = io::open_file(path, O_WRONLY | O_CREAT | O_TRUNC);
  io::write_all(fd, data, path);

  io::FaultConfig cfg;
  cfg.seed = 19;
  cfg.p_fsync_lie = 1.0;
  io::install_faults(cfg);
  io::fsync_file(fd, path);  // "succeeds" — the lie
  io::close_quiet(fd);
  EXPECT_LT(fs::file_size(path), data.size()) << "the lie must actually drop bytes";

  // The armed crash fires within the next few faultable operations.
  bool crashed = false;
  for (int i = 0; i < 8 && !crashed; ++i) {
    try {
      io::close_quiet(io::open_file(path, O_RDONLY));
    } catch (const io::SimulatedCrash&) {
      crashed = true;
    }
  }
  EXPECT_TRUE(crashed) << "a lying fsync must be followed by the crash it models";
  io::clear_faults();
  fs::remove_all(dir);
}

// ----------------------------------------------- atomic_file failure sweep ----

/// The satellite-1 regression: write_file_atomic must unlink its temp on
/// EVERY failure path (the fsync-failure path used to leak it) and never
/// damage the previously published bytes.
TEST(AtomicFileFaultTest, EveryFailurePointLeavesNoTempAndOldBytesIntact) {
  FaultGuard guard;
  const std::string dir = scratch_dir("atomic_sweep");
  const std::string path = dir + "/state.bin";
  const std::string old_content = "old committed state";
  const std::string new_content = "candidate replacement";
  util::write_file_atomic(path, old_content);

  // Count the faultable ops one clean atomic write performs, using a benign
  // (all-zero) fault config purely as an op meter.
  io::install_faults(io::FaultConfig{});
  util::write_file_atomic(path, new_content);
  const std::uint64_t ops_per_write = io::fault_ops_seen();
  ASSERT_GE(ops_per_write, 4u) << "open+write+fsync+close+rename expected";
  util::write_file_atomic(path, old_content);  // restore the "old" state

  for (std::uint64_t k = 1; k <= ops_per_write; ++k) {
    io::FaultConfig cfg;
    cfg.fail_op = k;
    cfg.fail_errno = EIO;
    io::install_faults(cfg);
    EXPECT_THROW(util::write_file_atomic(path, new_content), io::IoError)
        << "failure point " << k;
    io::clear_faults();

    std::size_t strays = 0;
    for (const auto& entry : fs::directory_iterator(dir))
      if (entry.path().filename().string() != "state.bin") ++strays;
    EXPECT_EQ(strays, 0u) << "failure point " << k << " leaked a temp file";
    EXPECT_EQ(slurp(path), old_content)
        << "failure point " << k << " damaged the published bytes";
  }
  fs::remove_all(dir);
}

TEST(AtomicFileFaultTest, SaveCheckedSurvivesATornRename) {
  FaultGuard guard;
  const std::string dir = scratch_dir("atomic_torn");
  const std::string path = dir + "/state.bin";
  util::save_checked(path, "first durable record");

  io::FaultConfig cfg;
  cfg.seed = 23;
  cfg.p_torn_rename = 1.0;
  io::install_faults(cfg);
  EXPECT_THROW(util::save_checked(path, "second record that tears"), io::IoError);
  io::clear_faults();

  // The torn rename replaced the file with a truncated record; the CRC
  // trailer must reject it — torn state reads as absent, never as data.
  EXPECT_FALSE(util::try_load_checked(path).has_value());
  fs::remove_all(dir);
}

// -------------------------------------------------- stream reader under IO ----

TEST(StreamReaderFaultTest, BufferedReadsSurviveEintrAndShortReads) {
  FaultGuard guard;
  const std::string dir = scratch_dir("stream");
  const std::string path = dir + "/trace.btrace";
  const trace::TaskTrace original = tiny_trace();
  { std::ofstream(path, std::ios::binary) << trace::to_binary(original); }

  io::FaultConfig cfg;
  cfg.seed = 29;
  cfg.p_eintr = 0.4;      // absorbed by the bounded retry loop
  cfg.p_short_read = 0.9; // every fill returns a seeded prefix
  io::install_faults(cfg);

  trace::TaskTrace header;
  std::unique_ptr<trace::ByteSource> source =
      trace::open_stream(path, /*budget=*/1 << 20, /*force_buffered=*/true);
  trace::stream_validate(*source, &header);
  io::clear_faults();
  EXPECT_EQ(header.core_count, original.core_count);
  EXPECT_EQ(header.app, original.app);
  fs::remove_all(dir);
}

// --------------------------------------------------------------- sockets ----

TEST(SocketFaultTest, SendRecvSurviveEintrAndShortTransfers) {
  FaultGuard guard;
  int pair[2] = {-1, -1};
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, pair), 0);

  io::FaultConfig cfg;
  cfg.seed = 31;
  cfg.p_eintr = 0.4;
  cfg.p_short_write = 0.7;
  cfg.p_short_read = 0.7;
  io::install_faults(cfg);
  const std::uint64_t disk_ops_before = io::fault_ops_seen();

  const std::string data(96 * 1024, 's');
  std::string got;
  // AF_UNIX buffers are finite: drain the reader concurrently-ish by
  // interleaving bounded sends and recvs.
  std::size_t sent = 0;
  char buffer[8192];
  while (got.size() < data.size()) {
    if (sent < data.size()) {
      const std::size_t n = std::min<std::size_t>(16 * 1024, data.size() - sent);
      ASSERT_TRUE(io::socket_send_all(pair[0], data.data() + sent, n));
      sent += n;
    }
    const ssize_t n = io::socket_recv(pair[1], buffer, sizeof(buffer));
    ASSERT_GT(n, 0);
    got.append(buffer, static_cast<std::size_t>(n));
  }
  EXPECT_EQ(got, data);
  // Socket traffic must not advance the disk-op budget (crash schedules
  // stay deterministic no matter how chatty the RPC layer is).
  EXPECT_EQ(io::fault_ops_seen(), disk_ops_before);
  io::clear_faults();
  ::close(pair[0]);
  ::close(pair[1]);
}

TEST(SocketFaultTest, PermanentEintrStormDegradesToATypedFailure) {
  FaultGuard guard;
  int pair[2] = {-1, -1};
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, pair), 0);

  io::FaultConfig cfg;
  cfg.seed = 37;
  cfg.p_eintr = 1.0;
  io::install_faults(cfg);

  char buffer[16];
  errno = 0;
  EXPECT_EQ(io::socket_recv(pair[1], buffer, sizeof(buffer)), -1);
  EXPECT_EQ(errno, EINTR) << "budget exhaustion must report EINTR, not spin";
  EXPECT_FALSE(io::socket_send_all(pair[0], "x", 1));
  io::clear_faults();
  ::close(pair[0]);
  ::close(pair[1]);
}

}  // namespace
}  // namespace pmacx
