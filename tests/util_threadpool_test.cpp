// Tests for util::ThreadPool: deterministic result ordering however the
// scheduler shuffles completion, typed exception propagation (lowest failing
// index, original util::Error types preserved, foreign exceptions wrapped
// into TaskError), nested submit/parallel_for without deadlock, and the
// single-thread degeneracy the PMACX_THREADS=1 fallback relies on.
#include <gtest/gtest.h>

#ifdef __linux__
#include <pthread.h>
#endif

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/parse_error.hpp"
#include "util/threadpool.hpp"

namespace pmacx {
namespace {

std::uint64_t mix(std::size_t i) { return (i * 2654435761ull) ^ (i << 7); }

TEST(ThreadPool, SerialPoolRunsInlineOnCaller) {
  util::ThreadPool pool(1);
  EXPECT_TRUE(pool.serial());
  EXPECT_EQ(pool.worker_count(), 0u);

  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id ran_on{};
  auto future = pool.submit([&] {
    ran_on = std::this_thread::get_id();
    return 7;
  });
  EXPECT_EQ(future.get(), 7);
  EXPECT_EQ(ran_on, caller);

  const auto out =
      pool.parallel_map<std::uint64_t>(257, [](std::size_t i) { return mix(i); });
  ASSERT_EQ(out.size(), 257u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], mix(i));
}

TEST(ThreadPool, DefaultThreadsReadsEnvironment) {
  setenv("PMACX_THREADS", "3", 1);
  EXPECT_EQ(util::ThreadPool::default_threads(), 3u);
  EXPECT_EQ(util::ThreadPool::resolve_threads(0), 3u);
  EXPECT_EQ(util::ThreadPool::resolve_threads(8), 8u);

  // Invalid values degrade to single-threaded instead of aborting a run.
  setenv("PMACX_THREADS", "banana", 1);
  EXPECT_EQ(util::ThreadPool::default_threads(), 1u);
  setenv("PMACX_THREADS", "0", 1);
  EXPECT_EQ(util::ThreadPool::default_threads(), 1u);

  // PMACX_THREADS=1 is the documented graceful serial fallback.
  setenv("PMACX_THREADS", "1", 1);
  util::ThreadPool pool;  // threads = 0 resolves through the environment
  EXPECT_TRUE(pool.serial());
  unsetenv("PMACX_THREADS");
}

TEST(ThreadPool, DeterministicOrderingUnderShuffle) {
  util::ThreadPool pool(4);
  EXPECT_EQ(pool.worker_count(), 4u);
  // Jitter a different residue class each round so chunk completion order
  // genuinely shuffles; the result vector must never notice.
  for (int round = 0; round < 5; ++round) {
    const auto out = pool.parallel_map<std::uint64_t>(503, [&](std::size_t i) {
      if (i % 11 == static_cast<std::size_t>(round) % 11)
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      return mix(i);
    });
    ASSERT_EQ(out.size(), 503u);
    for (std::size_t i = 0; i < out.size(); ++i) ASSERT_EQ(out[i], mix(i));
  }
}

TEST(ThreadPool, WorkIsActuallyDistributed) {
  util::ThreadPool pool(4);
  std::mutex mutex;
  std::set<std::thread::id> ids;
  pool.parallel_for(64, [&](std::size_t) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
    std::scoped_lock lock(mutex);
    ids.insert(std::this_thread::get_id());
  });
  EXPECT_GE(ids.size(), 2u);
}

TEST(ThreadPool, PropagatesTypedErrorsFromLowestFailingIndex) {
  util::ThreadPool pool(4);
  // Several indices fail, with a foreign exception *after* the typed ones;
  // the caller must always see the lowest index's ParseError, original type
  // and context intact, no matter how chunks were scheduled.
  for (int round = 0; round < 8; ++round) {
    try {
      pool.parallel_for(1000, [](std::size_t i) {
        if (i == 333 || i == 700 || i == 901)
          throw util::ParseError("file-" + std::to_string(i), i, "header", "bad magic");
        if (i == 950) throw std::runtime_error("plain failure");
      });
      FAIL() << "expected ParseError";
    } catch (const util::ParseError& e) {
      EXPECT_EQ(e.path(), "file-333");
      EXPECT_EQ(e.byte_offset(), 333u);
      EXPECT_EQ(e.section(), "header");
    }
  }
}

TEST(ThreadPool, WrapsForeignExceptionsIntoTaskError) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    util::ThreadPool pool(threads);
    try {
      pool.parallel_for(64, [](std::size_t i) {
        if (i >= 40) throw std::runtime_error("boom");
      });
      FAIL() << "expected TaskError";
    } catch (const util::TaskError& e) {
      EXPECT_EQ(e.task_index(), 40u);
      EXPECT_NE(std::string(e.what()).find("boom"), std::string::npos);
      EXPECT_NE(std::string(e.what()).find("40"), std::string::npos);
    }
  }
}

TEST(ThreadPool, SubmitPropagatesErrorsThroughGet) {
  util::ThreadPool pool(2);
  auto future = pool.submit([]() -> int { throw util::Error("submitted failure"); });
  try {
    future.get();
    FAIL() << "expected Error";
  } catch (const util::Error& e) {
    EXPECT_NE(std::string(e.what()).find("submitted failure"), std::string::npos);
  }
}

TEST(ThreadPool, NestedSubmitDoesNotDeadlock) {
  // More blocking outer tasks than workers: each outer task submits inner
  // work and blocks on it.  Waiters help (run queued tasks), so this must
  // complete even though naive blocking would exhaust the pool.
  util::ThreadPool pool(2);
  std::vector<util::TaskFuture<int>> futures;
  for (int k = 0; k < 8; ++k) {
    futures.push_back(pool.submit([&pool, k] {
      auto inner = pool.submit([k] { return k * 10; });
      return inner.get() + 1;
    }));
  }
  for (int k = 0; k < 8; ++k) EXPECT_EQ(futures[static_cast<std::size_t>(k)].get(), k * 10 + 1);
}

TEST(ThreadPool, NestedParallelForCompletes) {
  util::ThreadPool pool(4);
  const auto out = pool.parallel_map<std::uint64_t>(16, [&](std::size_t i) {
    std::atomic<std::uint64_t> sum{0};
    pool.parallel_for(64, [&](std::size_t j) {
      sum.fetch_add(i * j, std::memory_order_relaxed);
    });
    return sum.load();
  });
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * (64u * 63u / 2));
}

TEST(ThreadPool, RepeatedSmallBatchesStressCompletion) {
  // Hammers the parallel_for completion handshake: each tiny batch tears
  // down its ForState immediately after the owner observes completion, so a
  // notifier still touching the state after the last decrement (the
  // historical use-after-free window) shows up here — loudly under TSan.
  util::ThreadPool pool(4);
  for (int round = 0; round < 200; ++round) {
    std::atomic<int> n{0};
    pool.parallel_for(
        8, [&](std::size_t) { n.fetch_add(1, std::memory_order_relaxed); },
        /*grain=*/1);
    ASSERT_EQ(n.load(), 8);
  }
}

TEST(ThreadPool, DestructionDrainsQueuedTasks) {
  // Destroying a pool with work still queued must run that work, not drop
  // it: a future on a dropped task would spin in get() forever.
  std::atomic<int> ran{0};
  {
    util::ThreadPool pool(2);
    for (int k = 0; k < 64; ++k) {
      pool.submit([&ran] {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        ran.fetch_add(1, std::memory_order_relaxed);
      });
    }
    // ~ThreadPool runs here while most of the 64 tasks are still queued.
  }
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPool, CancelPendingCompletesQueuedFuturesWithCancelledError) {
  // The server-shutdown scenario: a slow task occupies every worker while
  // more work sits queued.  cancel_pending() must discard the queue,
  // complete each discarded task's future with CancelledError (so waiters
  // wake instead of hanging), and leave running tasks alone — after which
  // ~ThreadPool returns promptly instead of draining the whole backlog.
  std::atomic<int> ran{0};
  std::atomic<bool> release{false};
  {
    util::ThreadPool pool(2);
    std::vector<util::TaskFuture<int>> blockers;
    for (int k = 0; k < 2; ++k) {
      blockers.push_back(pool.submit([&] {
        ran.fetch_add(1);
        while (!release.load()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
        return 1;
      }));
    }
    // Give the workers a moment to pick the blockers up.
    while (ran.load() < 2) std::this_thread::sleep_for(std::chrono::milliseconds(1));

    std::vector<util::TaskFuture<int>> doomed;
    for (int k = 0; k < 16; ++k) doomed.push_back(pool.submit([] { return 2; }));

    const std::size_t cancelled = pool.cancel_pending();
    EXPECT_EQ(cancelled, 16u);
    for (auto& future : doomed) EXPECT_THROW(future.get(), util::CancelledError);

    release.store(true);
    for (auto& future : blockers) EXPECT_EQ(future.get(), 1);  // unaffected
  }
  EXPECT_EQ(ran.load(), 2) << "cancelled tasks must never have run";
}

TEST(ThreadPool, CancelPendingOnEmptyQueueIsANoOp) {
  util::ThreadPool pool(2);
  EXPECT_EQ(pool.cancel_pending(), 0u);
  EXPECT_EQ(pool.submit([] { return 3; }).get(), 3);  // pool still usable
}

TEST(ThreadPool, WaitForReportsCompletionWithoutConsuming) {
  util::ThreadPool pool(2);
  std::atomic<bool> release{false};
  auto slow = pool.submit([&] {
    while (!release.load()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
    return 7;
  });
  EXPECT_FALSE(slow.wait_for(std::chrono::milliseconds(20)));
  release.store(true);
  EXPECT_TRUE(slow.wait_for(std::chrono::seconds(60)));
  EXPECT_EQ(slow.get(), 7);  // wait_for must not consume the result
}

TEST(ThreadPool, EdgeCounts) {
  util::ThreadPool pool(4);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not run"; });
  const auto one = pool.parallel_map<int>(1, [](std::size_t) { return 9; });
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 9);
  // Fewer items than workers still covers every index exactly once.
  std::vector<std::atomic<int>> hits(3);
  pool.parallel_for(3, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, PoolIdsAreUniqueAndWorkerNamesNeverCollide) {
  // Stack dumps from chaos runs attribute threads by name; two pools whose
  // workers share names would make those dumps ambiguous.  pool_id() is the
  // process-wide discriminator.
  util::ThreadPool first(3), second(3);
  ASSERT_NE(first.pool_id(), second.pool_id());

#ifdef __linux__
  std::mutex names_mutex;
  std::set<std::string> names;
  // One task per worker, held at a spin barrier so no worker can take two —
  // every worker's name gets observed exactly once.  The caller waits with
  // wait_for (which never helps) so no task runs on this unnamed thread.
  for (util::ThreadPool* pool : {&first, &second}) {
    std::atomic<std::size_t> arrived{0};
    const std::size_t workers = pool->worker_count();
    std::vector<util::TaskFuture<int>> tasks;
    for (std::size_t i = 0; i < workers; ++i) {
      tasks.push_back(pool->submit([&] {
        arrived.fetch_add(1);
        while (arrived.load() < workers) std::this_thread::yield();
        char name[32] = {};
        ::pthread_getname_np(::pthread_self(), name, sizeof(name));
        std::scoped_lock lock(names_mutex);
        names.insert(name);
        return 0;
      }));
    }
    for (auto& task : tasks) ASSERT_TRUE(task.wait_for(std::chrono::seconds(60)));
  }
  EXPECT_EQ(names.size(), first.worker_count() + second.worker_count())
      << "worker thread names collided across pools";
  const std::string prefix_a = "pmx" + std::to_string(first.pool_id()) + ".w";
  const std::string prefix_b = "pmx" + std::to_string(second.pool_id()) + ".w";
  for (const std::string& name : names)
    EXPECT_TRUE(name.rfind(prefix_a, 0) == 0 || name.rfind(prefix_b, 0) == 0)
        << "unexpected worker name '" << name << "'";
#endif
}

}  // namespace
}  // namespace pmacx
