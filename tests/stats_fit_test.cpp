// Tests for the canonical-form fitting machinery — exact recovery of each
// generating form, model selection, tie-breaking, domain failures, and the
// leave-one-out extension.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>
#include <span>

#include "stats/canonical.hpp"
#include "stats/descriptive.hpp"
#include "stats/ols.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"

namespace pmacx {
namespace {

using stats::FitOptions;
using stats::fit_form;
using stats::FittedModel;
using stats::Form;
using stats::select_best;

const std::vector<double> kCores = {1024, 2048, 4096};
const std::vector<double> kCores5 = {256, 512, 1024, 2048, 4096};

/// gtest parameter names must be alphanumeric; "inverse-p" is not.
std::string sanitize(std::string name) {
  for (char& ch : name)
    if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
  return name;
}

std::vector<double> apply(Form form, std::span<const double> p, double a, double b,
                          double c = 0.0) {
  std::vector<double> y;
  for (double pi : p) {
    switch (form) {
      case Form::Constant: y.push_back(a); break;
      case Form::Linear: y.push_back(a + b * pi); break;
      case Form::Logarithmic: y.push_back(a + b * std::log(pi)); break;
      case Form::Exponential: y.push_back(a * std::exp(b * pi)); break;
      case Form::Power: y.push_back(a * std::pow(pi, b)); break;
      case Form::InverseP: y.push_back(a + b / pi); break;
      case Form::Quadratic: y.push_back(a + b * pi + c * pi * pi); break;
    }
  }
  return y;
}

// ------------------------------------------------------------------ OLS ----

TEST(OlsTest, ExactLineRecovery) {
  const std::vector<double> x = {1, 2, 3, 4};
  const std::vector<double> y = {3, 5, 7, 9};  // 1 + 2x
  const auto fit = stats::fit_linear(x, y);
  ASSERT_TRUE(fit.ok);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.sse, 0.0, 1e-18);
}

TEST(OlsTest, DegenerateXConstantY) {
  const std::vector<double> x = {2, 2, 2};
  const std::vector<double> y = {5, 5, 5};
  const auto fit = stats::fit_linear(x, y);
  ASSERT_TRUE(fit.ok);
  EXPECT_DOUBLE_EQ(fit.intercept, 5.0);
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
}

TEST(OlsTest, DegenerateXVaryingYFails) {
  const std::vector<double> x = {2, 2, 2};
  const std::vector<double> y = {1, 2, 3};
  EXPECT_FALSE(stats::fit_linear(x, y).ok);
}

TEST(OlsTest, SinglePointNotOk) {
  const std::vector<double> x = {1};
  const std::vector<double> y = {1};
  EXPECT_FALSE(stats::fit_linear(x, y).ok);
}

TEST(OlsTest, MismatchedSizesThrow) {
  const std::vector<double> x = {1, 2};
  const std::vector<double> y = {1};
  EXPECT_THROW(stats::fit_linear(x, y), util::Error);
}

TEST(OlsTest, PolynomialExactQuadratic) {
  const std::vector<double> x = {1, 2, 3, 4};
  const std::vector<double> y = {6, 17, 34, 57};  // 1 + 2x + 3x²
  const auto coeffs = stats::fit_polynomial(x, y, 2);
  ASSERT_EQ(coeffs.size(), 3u);
  EXPECT_NEAR(coeffs[0], 1.0, 1e-9);
  EXPECT_NEAR(coeffs[1], 2.0, 1e-9);
  EXPECT_NEAR(coeffs[2], 3.0, 1e-9);
}

TEST(OlsTest, PolynomialUnderdeterminedEmpty) {
  const std::vector<double> x = {1, 2};
  const std::vector<double> y = {1, 2};
  EXPECT_TRUE(stats::fit_polynomial(x, y, 2).empty());
}

TEST(OlsTest, SolveDenseSingularFails) {
  std::vector<double> a = {1, 2, 2, 4};  // rank 1
  std::vector<double> b = {1, 2};
  std::vector<double> out(2);
  EXPECT_FALSE(stats::solve_dense(a, b, out));
}

// ---------------------------------------------------- per-form recovery ----

struct FormCase {
  Form form;
  double a, b, c;
};

class FormRecoveryTest : public ::testing::TestWithParam<FormCase> {};

TEST_P(FormRecoveryTest, RecoversGeneratingParameters) {
  const FormCase& fc = GetParam();
  // Quadratic refuses under-determined (3-sample) inputs by design.
  const std::vector<double>& cores = fc.form == Form::Quadratic ? kCores5 : kCores;
  const auto y = apply(fc.form, cores, fc.a, fc.b, fc.c);
  const FittedModel fit = fit_form(fc.form, cores, y);
  ASSERT_TRUE(fit.ok) << stats::form_name(fc.form);
  // Perfect data → near-zero residual and faithful evaluation at a new p.
  EXPECT_LT(fit.sse, 1e-6 * (1.0 + fc.a * fc.a));
  const double target = 8192;
  const auto expected = apply(fc.form, std::vector<double>{target}, fc.a, fc.b, fc.c);
  const double rel = std::fabs(fit.evaluate(target) - expected[0]) /
                     std::max(std::fabs(expected[0]), 1e-12);
  EXPECT_LT(rel, 1e-6) << stats::form_name(fc.form);
}

INSTANTIATE_TEST_SUITE_P(
    AllForms, FormRecoveryTest,
    ::testing::Values(FormCase{Form::Constant, 7.5, 0, 0},
                      FormCase{Form::Linear, 2.0, 0.003, 0},
                      FormCase{Form::Logarithmic, 1.0, 0.25, 0},
                      FormCase{Form::Exponential, 5.0, -0.0004, 0},
                      FormCase{Form::Power, 3.0, -0.6667, 0},
                      FormCase{Form::InverseP, 0.5, 2048.0, 0},
                      FormCase{Form::Quadratic, 1.0, 0.001, 1e-7}),
    [](const auto& info) { return sanitize(stats::form_name(info.param.form)); });

// ------------------------------------------------------- model selection ----

class SelectionTest : public ::testing::TestWithParam<FormCase> {};

TEST_P(SelectionTest, PicksGeneratingFormOrEquivalent) {
  const FormCase& fc = GetParam();
  const auto y = apply(fc.form, kCores5, fc.a, fc.b, fc.c);
  FitOptions opts;
  opts.forms.assign(stats::all_forms().begin(), stats::all_forms().end());
  const FittedModel best = select_best(kCores5, y, opts);
  // The winner must reproduce the data essentially perfectly (another form
  // may tie exactly — e.g. constant data fits every form).
  for (std::size_t i = 0; i < kCores5.size(); ++i) {
    const double rel = std::fabs(best.evaluate(kCores5[i]) - y[i]) /
                       std::max(std::fabs(y[i]), 1e-12);
    EXPECT_LT(rel, 1e-5);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllForms, SelectionTest,
    ::testing::Values(FormCase{Form::Constant, 7.5, 0, 0},
                      FormCase{Form::Linear, 2.0, 0.003, 0},
                      FormCase{Form::Logarithmic, 1.0, 0.25, 0},
                      FormCase{Form::Exponential, 5.0, -0.0006, 0},
                      FormCase{Form::Power, 3.0, 0.5, 0},
                      FormCase{Form::InverseP, 0.5, 2048.0, 0},
                      FormCase{Form::Quadratic, 1.0, 0.001, 1e-7}),
    [](const auto& info) { return sanitize(stats::form_name(info.param.form)); });

TEST(SelectionTest, ConstantDataPrefersConstantForm) {
  const std::vector<double> y = {4.2, 4.2, 4.2};
  const FittedModel best = select_best(kCores, y);
  EXPECT_EQ(best.form, Form::Constant);
  EXPECT_DOUBLE_EQ(best.params[0], 4.2);
}

TEST(SelectionTest, LinearDataPrefersLinearOverExponential) {
  const auto y = apply(Form::Linear, kCores, 10.0, 0.01);
  const FittedModel best = select_best(kCores, y);
  EXPECT_EQ(best.form, Form::Linear);
}

TEST(SelectionTest, LogGrowthPicksLog) {
  // The paper's Fig. 5: memory-op counts growing logarithmically.
  const auto y = apply(Form::Logarithmic, kCores5, 1e9, 5e8);
  const FittedModel best = select_best(kCores5, y);
  EXPECT_EQ(best.form, Form::Logarithmic);
}

TEST(SelectionTest, MixedSignDataStillSelectsSomething) {
  const std::vector<double> y = {-1.0, 0.5, 2.0};  // exp/power cannot fit
  const FittedModel best = select_best(kCores, y);
  EXPECT_TRUE(best.ok);
}

TEST(SelectionTest, SingleSampleFallsBackToConstant) {
  const std::vector<double> p = {1024};
  const std::vector<double> y = {3.0};
  const FittedModel best = select_best(p, y);
  EXPECT_EQ(best.form, Form::Constant);
  EXPECT_DOUBLE_EQ(best.params[0], 3.0);
  EXPECT_DOUBLE_EQ(best.evaluate(8192), 3.0);
}

TEST(SelectionTest, EmptyFormSetThrows) {
  FitOptions opts;
  opts.forms.clear();
  const std::vector<double> y = {1, 2, 3};
  EXPECT_THROW(select_best(kCores, y, opts), util::Error);
}

TEST(SelectionTest, RestrictedFormSetHonored) {
  const auto y = apply(Form::Linear, kCores, 1.0, 0.01);
  FitOptions opts;
  opts.forms = {Form::Constant};
  const FittedModel best = select_best(kCores, y, opts);
  EXPECT_EQ(best.form, Form::Constant);
}

TEST(SelectionTest, LooCvUsedWithFourPlusPoints) {
  // A noisy linear series: LOO-CV should still pick a sensible (low-order)
  // model and never crash.
  std::vector<double> y = apply(Form::Linear, kCores5, 5.0, 0.002);
  y[2] *= 1.01;
  FitOptions opts;
  opts.loo_cv = true;
  const FittedModel best = select_best(kCores5, y, opts);
  EXPECT_TRUE(best.ok);
  EXPECT_LT(std::fabs(best.evaluate(8192) - (5.0 + 0.002 * 8192)) / (5.0 + 0.002 * 8192),
            0.05);
}

// ------------------------------------------------------------- domains ----

TEST(FitFormTest, ExponentialRejectsMixedSigns) {
  const std::vector<double> y = {-1.0, 1.0, 2.0};
  EXPECT_FALSE(fit_form(Form::Exponential, kCores, y).ok);
}

TEST(FitFormTest, ExponentialDropsZeroSamplesInsteadOfRejecting) {
  // A measurement that bottoms out at exactly zero at one core count must
  // not disqualify the whole series: the zero is dropped from the log-space
  // regression (and counted in fits.zero_dropped_samples) while the rest of
  // the series still produces a candidate.
  auto& dropped = util::metrics::Registry::global().counter("fits.zero_dropped_samples");
  const std::uint64_t before = dropped.value();
  const std::vector<double> y = {0.0, 1.0, 2.0};
  const FittedModel fit = fit_form(Form::Exponential, kCores, y);
  ASSERT_TRUE(fit.ok);
  EXPECT_TRUE(std::isfinite(fit.sse));
  EXPECT_EQ(dropped.value(), before + 1);
}

TEST(FitFormTest, PowerDropsZeroSamplesInsteadOfRejecting) {
  // Power data with one sample zeroed: the remaining four points determine
  // the exponent; the fit must succeed and recover b from them.
  auto y = apply(Form::Power, kCores5, 3.0, -0.5);
  y[2] = 0.0;
  const FittedModel fit = fit_form(Form::Power, kCores5, y);
  ASSERT_TRUE(fit.ok);
  EXPECT_NEAR(fit.params[1], -0.5, 1e-9);
}

TEST(FitFormTest, LogSpaceZeroDropIsByteIdenticalForZeroFreeSeries) {
  // The zero-drop path must not perturb zero-free fits: the regression
  // consumes the same samples in the same order, so parameters are
  // bit-identical to a straight fit of the series.
  const auto y = apply(Form::Exponential, kCores5, 5.0, -0.0004);
  const FittedModel a = fit_form(Form::Exponential, kCores5, y);
  const FittedModel b = fit_form(Form::Exponential, kCores5, y);
  ASSERT_TRUE(a.ok);
  EXPECT_EQ(a.params[0], b.params[0]);
  EXPECT_EQ(a.params[1], b.params[1]);
}

TEST(FitFormTest, AllZeroSeriesStillFailsLogSpaceForms) {
  const std::vector<double> y = {0.0, 0.0, 0.0};
  EXPECT_FALSE(fit_form(Form::Exponential, kCores, y).ok);
  EXPECT_FALSE(fit_form(Form::Power, kCores, y).ok);
}

TEST(FitFormTest, SingleNonzeroSampleStillFailsLogSpaceForms) {
  const std::vector<double> y = {0.0, 0.0, 2.0};
  EXPECT_FALSE(fit_form(Form::Exponential, kCores, y).ok);
}

TEST(FitFormTest, MixedSignWithZeroStillFails) {
  const std::vector<double> y = {-1.0, 0.0, 1.0};
  EXPECT_FALSE(fit_form(Form::Exponential, kCores, y).ok);
  EXPECT_FALSE(fit_form(Form::Power, kCores, y).ok);
}

TEST(FitFormTest, ExponentialHandlesAllNegative) {
  const auto pos = apply(Form::Exponential, kCores, 5.0, -0.0004);
  std::vector<double> neg;
  for (double v : pos) neg.push_back(-v);
  const FittedModel fit = fit_form(Form::Exponential, kCores, neg);
  ASSERT_TRUE(fit.ok);
  EXPECT_NEAR(fit.evaluate(2048), -pos[1], std::fabs(pos[1]) * 1e-6);
}

TEST(FitFormTest, NonPositiveCoreCountThrows) {
  const std::vector<double> p = {0, 1, 2};
  const std::vector<double> y = {1, 2, 3};
  EXPECT_THROW(fit_form(Form::Linear, p, y), util::Error);
}

TEST(FitFormTest, EvaluateClampsExponentialOverflow) {
  FittedModel model;
  model.form = Form::Exponential;
  model.params = {1.0, 10.0, 0.0};  // e^(10·p) would overflow
  EXPECT_TRUE(std::isfinite(model.evaluate(1e6)));
}

TEST(FitFormTest, EvaluateThrowsOutsideDomainInsteadOfClamping) {
  // The old 1e-300 floor silently turned evaluate(0) into garbage like
  // a + b·log(1e-300); the domain violation must now surface as an error
  // (and be visible in the fits.evaluate_domain_errors counter).
  auto& errors =
      util::metrics::Registry::global().counter("fits.evaluate_domain_errors");
  for (Form form : {Form::Logarithmic, Form::Power, Form::InverseP}) {
    FittedModel model;
    model.form = form;
    model.params = {1.0, 2.0, 0.0};
    const std::uint64_t before = errors.value();
    EXPECT_THROW(model.evaluate(0.0), util::Error) << stats::form_name(form);
    EXPECT_THROW(model.evaluate(-64.0), util::Error) << stats::form_name(form);
    EXPECT_EQ(errors.value(), before + 2) << stats::form_name(form);
    EXPECT_TRUE(std::isfinite(model.evaluate(1024.0)));
  }
}

TEST(FitFormTest, EvaluateDomainErrorNamesTheForm) {
  FittedModel model;
  model.form = Form::Logarithmic;
  model.params = {1.0, 2.0, 0.0};
  try {
    model.evaluate(0.0);
    FAIL() << "expected util::Error";
  } catch (const util::Error& e) {
    EXPECT_NE(std::string(e.what()).find("log"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("positive"), std::string::npos);
  }
}

TEST(FitFormTest, EvaluateTotalFormsUnaffectedByDomainCheck) {
  // Forms defined on all of R keep evaluating at any core count.
  for (Form form : {Form::Constant, Form::Linear, Form::Exponential, Form::Quadratic}) {
    FittedModel model;
    model.form = form;
    model.params = {1.0, -0.001, 0.0};
    EXPECT_TRUE(std::isfinite(model.evaluate(0.0))) << stats::form_name(form);
  }
}

TEST(FitFormTest, R2IsOneForPerfectFit) {
  const auto y = apply(Form::Linear, kCores, 1.0, 0.5);
  const FittedModel fit = fit_form(Form::Linear, kCores, y);
  EXPECT_NEAR(fit.r2, 1.0, 1e-9);
}

TEST(FitFormTest, DescribeNamesFormAndParams) {
  const auto y = apply(Form::Linear, kCores, 1.0, 0.5);
  const FittedModel fit = fit_form(Form::Linear, kCores, y);
  const std::string desc = fit.describe();
  EXPECT_NE(desc.find("linear"), std::string::npos);
  EXPECT_NE(desc.find("a="), std::string::npos);
}

TEST(FitFormTest, PaperFormsAreTheFirstFour) {
  const auto forms = stats::paper_forms();
  ASSERT_EQ(forms.size(), 4u);
  EXPECT_EQ(forms[0], Form::Constant);
  EXPECT_EQ(forms[3], Form::Exponential);
}

TEST(FitFormTest, FormNamesDistinct) {
  std::set<std::string> names;
  for (Form form : stats::all_forms()) names.insert(stats::form_name(form));
  EXPECT_EQ(names.size(), stats::all_forms().size());
}

TEST(FitFormTest, ParameterCounts) {
  EXPECT_EQ(stats::form_parameter_count(Form::Constant), 1);
  EXPECT_EQ(stats::form_parameter_count(Form::Linear), 2);
  EXPECT_EQ(stats::form_parameter_count(Form::Quadratic), 3);
}

// ----------------------------------------------------- AICc & bootstrap ----

// ------------------------------------------------- cached selection seam ----

void expect_models_identical(const FittedModel& a, const FittedModel& b) {
  EXPECT_EQ(a.form, b.form);
  EXPECT_EQ(a.ok, b.ok);
  // Bit-exact, not NEAR: both paths must run the same arithmetic, or cached
  // answers would drift from fresh ones.
  EXPECT_EQ(a.params, b.params);
  EXPECT_EQ(a.sse, b.sse);
  EXPECT_EQ(a.r2, b.r2);
}

TEST(SelectFromTest, MatchesSelectBestAcrossCriteriaAndShapes) {
  // The serving layer's model cache re-ranks precomputed candidates with
  // selection_scores + select_from instead of refitting; that is only sound
  // if the composition reproduces select_best exactly — every criterion
  // (including the small-sample downgrades), every data shape, every form
  // set, bit for bit.
  struct Shape {
    const char* name;
    std::vector<double> p;
    std::vector<double> y;
  };
  const std::vector<Shape> shapes = {
      {"flat3", kCores, apply(Form::Constant, kCores, 42.0, 0)},
      {"linear5", kCores5, apply(Form::Linear, kCores5, 3.0, 0.25)},
      {"log5", kCores5, apply(Form::Logarithmic, kCores5, 10.0, 2.0)},
      {"inverse5", kCores5, apply(Form::InverseP, kCores5, 1.0, 5000.0)},
      {"noisy5", kCores5, {11.0, 9.5, 10.4, 10.1, 9.9}},
      {"negative3", kCores, {-4.0, -8.0, -16.0}},  // exponential unusable
      {"zeros5", kCores5, {0, 0, 0, 0, 0}},
  };
  const std::vector<std::pair<const char*, FitOptions>> policies = [] {
    std::vector<std::pair<const char*, FitOptions>> out;
    FitOptions sse;
    out.emplace_back("sse", sse);
    FitOptions loo;
    loo.criterion = stats::SelectionCriterion::LooCv;
    out.emplace_back("loo", loo);
    FitOptions legacy;
    legacy.loo_cv = true;  // legacy switch must behave like criterion=LooCv
    out.emplace_back("loo_legacy", legacy);
    FitOptions aicc;
    aicc.criterion = stats::SelectionCriterion::Aicc;
    out.emplace_back("aicc", aicc);
    FitOptions paper;
    paper.forms.assign(stats::paper_forms().begin(), stats::paper_forms().end());
    out.emplace_back("paper_forms", paper);
    FitOptions loose;
    loose.tie_tolerance = 0.05;  // wide ties exercise the simplicity break
    out.emplace_back("loose_ties", loose);
    return out;
  }();

  for (const Shape& shape : shapes) {
    for (const auto& [policy, opts] : policies) {
      SCOPED_TRACE(std::string(shape.name) + "/" + policy);
      const std::vector<FittedModel> fits = stats::fit_all(shape.p, shape.y, opts);
      const std::vector<double> scores =
          stats::selection_scores(fits, shape.p, shape.y, opts);
      ASSERT_EQ(scores.size(), fits.size());
      expect_models_identical(
          stats::select_from(fits, scores, shape.p, shape.y, opts),
          select_best(shape.p, shape.y, opts));
    }
  }
}

TEST(SelectFromTest, ScoresAreTargetIndependentAndReusable) {
  // Scoring twice from the same candidates must be deterministic — the
  // cache hands the same vector to every query.
  const auto y = apply(Form::Logarithmic, kCores5, 5.0, 1.5);
  const FitOptions opts;
  const auto fits = stats::fit_all(kCores5, y, opts);
  const auto once = stats::selection_scores(fits, kCores5, y, opts);
  const auto twice = stats::selection_scores(fits, kCores5, y, opts);
  EXPECT_EQ(once, twice);
  // Unusable candidates (if any) must score +inf, never NaN: NaN would
  // poison min-ranking silently.
  for (double score : once) EXPECT_FALSE(std::isnan(score));
}

TEST(AiccTest, PrefersSimplerModelOnNoisyFlatData) {
  // Nearly flat, lightly noisy data over 6 points: AICc's complexity
  // penalty should keep the constant form ahead of wigglier candidates.
  const std::vector<double> p = {128, 256, 512, 1024, 2048, 4096};
  const std::vector<double> y = {5.01, 4.98, 5.02, 4.99, 5.01, 5.00};
  FitOptions opts;
  opts.criterion = stats::SelectionCriterion::Aicc;
  const FittedModel best = select_best(p, y, opts);
  EXPECT_EQ(best.form, Form::Constant);
}

TEST(AiccTest, StillFindsStrongSignals) {
  const auto y = apply(Form::Logarithmic, kCores5, 1e6, 3e5);
  FitOptions opts;
  opts.criterion = stats::SelectionCriterion::Aicc;
  const FittedModel best = select_best(kCores5, y, opts);
  for (std::size_t i = 0; i < kCores5.size(); ++i)
    EXPECT_NEAR(best.evaluate(kCores5[i]), y[i], 1e-3 * y[i]);
}

TEST(AiccTest, UnderSampledFallsBackGracefully) {
  // 3 points: AICc for 2-parameter forms is undefined; selection must still
  // return a usable fit.
  const auto y = apply(Form::Linear, kCores, 1.0, 0.01);
  FitOptions opts;
  opts.criterion = stats::SelectionCriterion::Aicc;
  const FittedModel best = select_best(kCores, y, opts);
  EXPECT_TRUE(best.ok);
  EXPECT_NEAR(best.evaluate(2048), 1.0 + 0.01 * 2048, 1e-6);
}

TEST(BootstrapTest, IntervalCoversTruthOnNoisyLinear) {
  util::Rng rng(99);
  const std::vector<double> p = {256, 512, 1024, 2048, 4096};
  std::vector<double> y;
  for (double pi : p) y.push_back((2.0 + 0.001 * pi) * (1.0 + 0.01 * rng.normal()));
  const auto interval = stats::bootstrap_interval(p, y, 8192);
  const double truth = 2.0 + 0.001 * 8192;
  EXPECT_LT(interval.lo, interval.hi);
  EXPECT_GT(truth, interval.lo * 0.9);
  EXPECT_LT(truth, interval.hi * 1.1);
  EXPECT_GT(interval.point, interval.lo - 1e-12);
  EXPECT_LT(interval.point, interval.hi + 1e-12);
}

TEST(BootstrapTest, NoiselessDataCollapsesInterval) {
  const auto y = apply(Form::Linear, kCores5, 3.0, 0.002);
  const auto interval = stats::bootstrap_interval(kCores5, y, 8192);
  EXPECT_NEAR(interval.hi - interval.lo, 0.0, 1e-6 * interval.point);
}

TEST(BootstrapTest, DeterministicForSeed) {
  const std::vector<double> p = {256, 512, 1024};
  const std::vector<double> y = {10.0, 5.2, 2.4};
  const auto a = stats::bootstrap_interval(p, y, 4096, {}, 100, 0.9, 7);
  const auto b = stats::bootstrap_interval(p, y, 4096, {}, 100, 0.9, 7);
  EXPECT_EQ(a.lo, b.lo);
  EXPECT_EQ(a.hi, b.hi);
}

TEST(BootstrapTest, RejectsBadArguments) {
  const std::vector<double> p = {256, 512};
  const std::vector<double> y = {1.0, 2.0};
  EXPECT_THROW(stats::bootstrap_interval(p, y, 1024, {}, 1), util::Error);
  EXPECT_THROW(stats::bootstrap_interval(p, y, 1024, {}, 10, 1.5), util::Error);
}

TEST(BootstrapTest, ExactFitSeriesKeepsPointInsideInterval) {
  // Regression: an exact-fit series has zero residuals, so every resample
  // refits the same model — the interval must collapse around the point,
  // never invert or go NaN.
  const auto y = apply(Form::Power, kCores5, 2.0, 1.5);
  const auto interval = stats::bootstrap_interval(kCores5, y, 8192);
  EXPECT_TRUE(std::isfinite(interval.lo));
  EXPECT_TRUE(std::isfinite(interval.hi));
  EXPECT_LE(interval.lo, interval.point);
  EXPECT_GE(interval.hi, interval.point);
}

TEST(BootstrapTest, TinyResampleCountsStayOrdered) {
  // Regression: with very few resamples the percentile walk used to read
  // whatever the handful of predictions happened to contain; the hardened
  // path must still return finite lo <= point <= hi.
  util::Rng rng(3);
  std::vector<double> y;
  for (double pi : kCores5) y.push_back(1.0 + 0.01 * pi + 0.1 * rng.normal());
  for (std::size_t resamples : {2u, 3u, 5u}) {
    const auto interval = stats::bootstrap_interval(kCores5, y, 8192, {}, resamples);
    EXPECT_TRUE(std::isfinite(interval.lo)) << resamples;
    EXPECT_TRUE(std::isfinite(interval.hi)) << resamples;
    EXPECT_LE(interval.lo, interval.point) << resamples;
    EXPECT_GE(interval.hi, interval.point) << resamples;
  }
}

TEST(BootstrapTest, DegenerateSeriesCollapsesInsteadOfNan) {
  // Two distinct samples of a flat series: resamples routinely land on a
  // single repeated point, whose refits can be degenerate.  The interval
  // must still bracket the point estimate.
  const std::vector<double> p = {256, 512, 1024};
  const std::vector<double> y = {7.0, 7.0, 7.0};
  const auto interval = stats::bootstrap_interval(p, y, 8192, {}, 16);
  EXPECT_TRUE(std::isfinite(interval.lo));
  EXPECT_TRUE(std::isfinite(interval.hi));
  EXPECT_LE(interval.lo, interval.point);
  EXPECT_GE(interval.hi, interval.point);
  EXPECT_NEAR(interval.point, 7.0, 1e-9);
}

// ------------------------------------------------------------- tie band ----

TEST(TieBreakTest, NegativeScoresKeepThePositiveTieBand) {
  // Regression: the tie band used to be tie_tolerance * (1 + best_score),
  // which goes non-positive when the best AICc score is very negative
  // (tiny-scale data) — disabling the simpler-wins tie-break and letting a
  // strictly worse candidate displace the best.  The band is now relative
  // to |best_score|, so selection stays pinned on the simplest best form.
  const std::vector<double> p = {128, 256, 512, 1024, 2048, 4096};
  std::vector<double> y;
  util::Rng rng(11);
  for (std::size_t i = 0; i < p.size(); ++i)
    y.push_back(1e-6 * (1.0 + 1e-3 * rng.normal()));
  FitOptions opts;
  opts.criterion = stats::SelectionCriterion::Aicc;
  const auto candidates = stats::fit_all(p, y, opts);
  const auto scores = stats::selection_scores(candidates, p, y, opts);
  double best_score = std::numeric_limits<double>::infinity();
  for (double s : scores)
    if (std::isfinite(s)) best_score = std::min(best_score, s);
  ASSERT_LT(best_score, -1.0) << "test premise: strongly negative scores";
  const FittedModel best = select_best(p, y, opts);
  EXPECT_EQ(best.form, Form::Constant);
  // select_from over the same candidates/scores must agree with select_best.
  const FittedModel routed = stats::select_from(candidates, scores, p, y, opts);
  EXPECT_EQ(routed.form, best.form);
}

TEST(TieBreakTest, ExactTiesStillPreferTheSimplerForm) {
  // Constant data fits Constant and Linear both with SSE 0; the band must
  // remain positive at best_score == 0 so the simpler form wins.
  const auto y = apply(Form::Constant, kCores5, 42.5, 0.0);
  const FittedModel best = select_best(kCores5, y, {});
  EXPECT_EQ(best.form, Form::Constant);
}

// ----------------------------------------------------------- percentile ----

TEST(PercentileTest, SingleElementReturnsThatElement) {
  const std::vector<double> one = {5.0};
  EXPECT_EQ(stats::percentile(one, 0.0), 5.0);
  EXPECT_EQ(stats::percentile(one, 0.5), 5.0);
  EXPECT_EQ(stats::percentile(one, 0.99), 5.0);
  EXPECT_EQ(stats::percentile(one, 1.0), 5.0);
}

TEST(PercentileTest, TwoElementsInterpolateLinearly) {
  // Regression: the load generator's old truncating rank returned the
  // *minimum* for p99 of a 2-element sample, inverting p50 > p99.
  const std::vector<double> two = {1.0, 3.0};
  EXPECT_EQ(stats::percentile(two, 0.0), 1.0);
  EXPECT_NEAR(stats::percentile(two, 0.5), 2.0, 1e-12);
  EXPECT_NEAR(stats::percentile(two, 0.99), 2.98, 1e-12);
  EXPECT_EQ(stats::percentile(two, 1.0), 3.0);
  EXPECT_LE(stats::percentile(two, 0.5), stats::percentile(two, 0.99));
}

TEST(PercentileTest, ClampsFractionAndHandlesEmpty) {
  const std::vector<double> empty;
  EXPECT_EQ(stats::percentile(empty, 0.5), 0.0);
  const std::vector<double> sorted = {1.0, 2.0, 4.0};
  EXPECT_EQ(stats::percentile(sorted, -0.5), 1.0);
  EXPECT_EQ(stats::percentile(sorted, 2.0), 4.0);
  EXPECT_NEAR(stats::percentile(sorted, 0.25), 1.5, 1e-12);
}

}  // namespace
}  // namespace pmacx
