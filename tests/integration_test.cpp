// End-to-end integration tests: the full paper pipeline (collect at small
// core counts → extrapolate → predict; collect at target → predict; measure)
// on scaled-down problems, plus trace-file persistence through the pipeline.
#include <gtest/gtest.h>

#include <cstdio>

#include "core/pipeline.hpp"
#include "machine/targets.hpp"
#include "synth/specfem.hpp"
#include "synth/uh3d.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace pmacx {
namespace {

machine::MultiMapsOptions fast_probe() {
  machine::MultiMapsOptions options;
  options.working_sets = {16ull << 10, 128ull << 10, 1ull << 20, 8ull << 20, 32ull << 20};
  options.strides = {1, 4};
  options.min_refs_per_probe = 60'000;
  options.max_refs_per_probe = 250'000;
  return options;
}

const machine::MachineProfile& target_profile() {
  static const machine::MachineProfile profile =
      machine::build_profile(machine::bluewaters_p1(), fast_probe());
  return profile;
}

synth::SpecfemConfig small_specfem() {
  synth::SpecfemConfig config;
  config.global_elements = 20'000;
  // Sized so the dominant kernel's footprint stays above the target L3
  // through 128 cores: capacity crossings *between* the last training count
  // and the target are the one shape no smooth canonical form tracks (the
  // paper-scale benches are laid out the same way).
  config.global_field_bytes = 2'000'000'000;
  config.timesteps = 4;
  return config;
}

core::PipelineConfig small_pipeline() {
  core::PipelineConfig config;
  config.small_core_counts = {8, 16, 32};
  config.target_core_count = 128;
  config.tracer.target = target_profile().system.hierarchy;
  config.tracer.max_refs_per_kernel = 150'000;
  config.collect_at_target = true;
  config.measure_at_target = true;
  config.reference.max_refs_per_kernel = 300'000;
  return config;
}

class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    util::set_log_level(util::LogLevel::Warn);
    result_ = new core::PipelineResult(core::run_pipeline(
        synth::Specfem3dApp(small_specfem()), target_profile(), small_pipeline()));
  }
  static void TearDownTestSuite() {
    delete result_;
    result_ = nullptr;
  }
  static core::PipelineResult* result_;
};

core::PipelineResult* PipelineTest::result_ = nullptr;

TEST_F(PipelineTest, CollectsAllSmallSignatures) {
  EXPECT_EQ(result_->small_signatures.size(), 3u);
  EXPECT_EQ(result_->small_signatures[0].core_count, 8u);
  EXPECT_EQ(result_->small_signatures[2].core_count, 32u);
}

TEST_F(PipelineTest, ExtrapolatedSignatureValidAtTarget) {
  EXPECT_NO_THROW(result_->extrapolated_signature.validate());
  EXPECT_EQ(result_->extrapolated_signature.core_count, 128u);
  EXPECT_TRUE(result_->extrapolated_signature.demanding_task().extrapolated);
}

TEST_F(PipelineTest, BothPredictionsProduced) {
  EXPECT_GT(result_->prediction_from_extrapolated.runtime_seconds, 0.0);
  ASSERT_TRUE(result_->prediction_from_collected.has_value());
  EXPECT_GT(result_->prediction_from_collected->runtime_seconds, 0.0);
  EXPECT_TRUE(result_->prediction_from_extrapolated.from_extrapolated_trace);
  EXPECT_FALSE(result_->prediction_from_collected->from_extrapolated_trace);
}

TEST_F(PipelineTest, ExtrapolatedMatchesCollectedPrediction) {
  // The paper's central claim (Table I): predictions from extrapolated and
  // collected traces are nearly identical.
  const double extrap = result_->prediction_from_extrapolated.runtime_seconds;
  const double collected = result_->prediction_from_collected->runtime_seconds;
  EXPECT_NEAR(extrap, collected, 0.10 * collected)
      << "extrapolated " << extrap << "s vs collected " << collected << "s";
}

TEST_F(PipelineTest, PredictionsTrackMeasuredRuntime) {
  ASSERT_TRUE(result_->measured.has_value());
  EXPECT_GT(result_->measured->runtime_seconds, 0.0);
  EXPECT_LT(result_->extrapolated_error(), 0.35);
  EXPECT_LT(result_->collected_error(), 0.35);
}

TEST_F(PipelineTest, InfluentialFitsWithinReasonableBound) {
  // Section IV reports ≤ 20% fit error on all influential elements at
  // 96-4096 cores.  This scaled-down test runs at 8-32 cores where
  // footprints cross cache-capacity cliffs between adjacent counts, which
  // no smooth canonical form can track exactly — allow a little extra
  // slack here; table1_prediction_error reports the paper-scale figure.
  EXPECT_LT(result_->report.worst_influential_error(), 0.30);
}

TEST_F(PipelineTest, ReportHasDiverseWinningForms) {
  // The synthetic app has constant, decaying, linear-growth and log-growth
  // elements; at least two distinct forms must win somewhere.
  EXPECT_GE(result_->report.form_histogram().size(), 2u);
}

TEST_F(PipelineTest, ExtrapolatedTraceRoundTripsThroughDisk) {
  const trace::TaskTrace& task = result_->extrapolated_signature.demanding_task();
  const std::string path = ::testing::TempDir() + "/pmacx_pipeline.trace";
  task.save(path);
  EXPECT_EQ(trace::TaskTrace::load(path), task);
  std::remove(path.c_str());
}

TEST(PipelineConfigTest, RejectsBadConfigs) {
  const synth::Specfem3dApp app(small_specfem());
  core::PipelineConfig config = small_pipeline();
  config.small_core_counts = {8};
  EXPECT_THROW(core::run_pipeline(app, target_profile(), config), util::Error);

  config = small_pipeline();
  config.target_core_count = 16;  // not above largest small count
  EXPECT_THROW(core::run_pipeline(app, target_profile(), config), util::Error);

  config = small_pipeline();
  config.tracer.target = machine::xt5_base().hierarchy;  // wrong target
  EXPECT_THROW(core::run_pipeline(app, target_profile(), config), util::Error);
}

TEST(PipelineUh3dTest, RunsOnSecondApplication) {
  util::set_log_level(util::LogLevel::Warn);
  synth::Uh3dConfig config;
  config.global_particles = 20'000'000;  // particle footprint > L3 through 128 cores
  config.global_grid_cells = 400'000;
  config.timesteps = 3;
  const synth::Uh3dApp app(config);

  core::PipelineConfig pipeline = small_pipeline();
  pipeline.collect_at_target = true;
  pipeline.measure_at_target = true;
  const auto result = core::run_pipeline(app, target_profile(), pipeline);
  const double extrap = result.prediction_from_extrapolated.runtime_seconds;
  const double collected = result.prediction_from_collected->runtime_seconds;
  EXPECT_NEAR(extrap, collected, 0.15 * collected);
  EXPECT_LT(result.extrapolated_error(), 0.40);
}

}  // namespace
}  // namespace pmacx
