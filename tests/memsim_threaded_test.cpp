// Tests for the thread-aware hierarchy (hybrid MPI/OpenMP tracing):
// private-level isolation, shared-level contention, aggregation, and
// equivalence with the scalar hierarchy in the 1-thread case.
#include <gtest/gtest.h>

#include "memsim/hierarchy.hpp"
#include "memsim/threaded.hpp"
#include "synth/patterns.hpp"
#include "util/error.hpp"

namespace pmacx {
namespace {

using memsim::CacheHierarchy;
using memsim::CacheLevelConfig;
using memsim::HierarchyConfig;
using memsim::MemRef;
using memsim::ThreadedHierarchy;

HierarchyConfig two_level(std::uint64_t l1_lines = 16, std::uint64_t l2_lines = 128) {
  CacheLevelConfig l1;
  l1.name = "L1";
  l1.size_bytes = l1_lines * 64;
  l1.line_bytes = 64;
  l1.associativity = 0;
  CacheLevelConfig l2 = l1;
  l2.name = "L2";
  l2.size_bytes = l2_lines * 64;
  HierarchyConfig cfg;
  cfg.name = "threaded-test";
  cfg.levels = {l1, l2};
  return cfg;
}

MemRef load(std::uint64_t addr) { return {addr, 8, false}; }

TEST(ThreadedTest, PrivateLevelsAreIsolated) {
  // Private L1 (16 lines), shared L2.  Thread 1 sweeps a large region;
  // thread 0's small working set must stay in ITS OWN L1.
  ThreadedHierarchy h(two_level(), 2, /*shared_from=*/1);
  for (std::uint64_t line = 0; line < 8; ++line) h.access(0, load(line * 64));
  for (std::uint64_t line = 100; line < 200; ++line) h.access(1, load(line * 64));
  const auto before = h.totals().level_hits[0];
  for (std::uint64_t line = 0; line < 8; ++line) h.access(0, load(line * 64));
  EXPECT_EQ(h.totals().level_hits[0], before + 8);  // all L1 hits
}

TEST(ThreadedTest, SharedLevelShowsContention) {
  // Two threads each touching 96 lines: together they exceed the shared
  // 128-line L2; alone one thread fits.  Shared-mode L2 hit rate must be
  // strictly worse than a single thread's.
  auto run = [](std::uint32_t threads) {
    ThreadedHierarchy h(two_level(), threads, 1);
    for (int pass = 0; pass < 4; ++pass)
      for (std::uint64_t line = 0; line < 96; ++line)
        for (std::uint32_t t = 0; t < threads; ++t)
          h.access(t, load((t * 4096 + line) * 64));
    return h.totals().cumulative_hit_rate(1);
  };
  EXPECT_GT(run(1), run(2) + 0.05);
}

TEST(ThreadedTest, SingleThreadMatchesScalarHierarchy) {
  HierarchyConfig cfg = two_level();
  ThreadedHierarchy threaded(cfg, 1, 1);
  CacheHierarchy scalar(cfg);
  synth::StreamSpec spec;
  spec.pattern = synth::Pattern::Gather;
  spec.base_addr = 0;
  spec.footprint_bytes = 1 << 16;
  spec.elem_bytes = 8;
  synth::RefStream a(spec, 5), b(spec, 5);
  for (int i = 0; i < 50'000; ++i) {
    threaded.access(0, a.next());
    scalar.access(b.next());
  }
  for (std::size_t lvl = 0; lvl < 2; ++lvl)
    EXPECT_NEAR(threaded.totals().cumulative_hit_rate(lvl),
                scalar.totals().cumulative_hit_rate(lvl), 1e-12);
}

TEST(ThreadedTest, ScopesAggregateAcrossThreads) {
  ThreadedHierarchy h(two_level(), 2, 1);
  h.set_scope(7);
  h.access(0, load(0));
  h.access(1, load(64));
  EXPECT_EQ(h.scope(7).refs, 2u);
  EXPECT_EQ(h.totals().refs, 2u);
  EXPECT_EQ(h.scope(99).refs, 0u);
}

TEST(ThreadedTest, ShareEverythingAndShareNothingExtremes) {
  EXPECT_NO_THROW(ThreadedHierarchy(two_level(), 4, 0));  // all levels shared
  EXPECT_NO_THROW(ThreadedHierarchy(two_level(), 4, 2));  // all private
  // All-shared with one thread still behaves.
  ThreadedHierarchy h(two_level(), 1, 0);
  h.access(0, load(0));
  EXPECT_EQ(h.totals().memory_accesses, 1u);
}

TEST(ThreadedTest, Validation) {
  EXPECT_THROW(ThreadedHierarchy(two_level(), 0, 1), util::Error);
  EXPECT_THROW(ThreadedHierarchy(two_level(), 2, 5), util::Error);
  ThreadedHierarchy h(two_level(), 2, 1);
  EXPECT_THROW(h.access(7, load(0)), util::Error);
  HierarchyConfig with_prefetch = two_level();
  with_prefetch.prefetch.enabled = true;
  EXPECT_THROW(ThreadedHierarchy(with_prefetch, 2, 1), util::Error);
}

}  // namespace
}  // namespace pmacx
