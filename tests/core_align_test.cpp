// Tests for trace alignment across core counts: key semantics, missing-block
// policies and skeleton construction.
#include <gtest/gtest.h>

#include "core/align.hpp"
#include "util/error.hpp"

namespace pmacx {
namespace {

using core::align_traces;
using core::ElementKey;
using core::MissingPolicy;
using trace::BlockElement;
using trace::TaskTrace;

TaskTrace make_trace(std::uint32_t cores, std::vector<std::uint64_t> block_ids,
                     double scale = 1.0) {
  TaskTrace task;
  task.app = "align-demo";
  task.core_count = cores;
  task.target_system = "t";
  for (std::uint64_t id : block_ids) {
    trace::BasicBlockRecord block;
    block.id = id;
    block.location = {"f.c", static_cast<std::uint32_t>(id), "fn" + std::to_string(id)};
    block.set(BlockElement::MemLoads, scale * 100.0 * static_cast<double>(id));
    block.set(BlockElement::VisitCount, scale * 10.0);
    trace::InstructionRecord instr;
    instr.index = 0;
    instr.set(trace::InstrElement::MemOps, scale * 50.0);
    block.instructions.push_back(instr);
    task.blocks.push_back(block);
  }
  task.sort_blocks();
  return task;
}

TEST(ElementKeyTest, DescribeAndOrdering) {
  const ElementKey block_key{5, -1, static_cast<std::uint32_t>(BlockElement::MemLoads)};
  EXPECT_NE(block_key.describe().find("block 5"), std::string::npos);
  EXPECT_NE(block_key.describe().find("mem_loads"), std::string::npos);
  EXPECT_TRUE(block_key.is_block_level());

  const ElementKey instr_key{5, 2, static_cast<std::uint32_t>(trace::InstrElement::MemOps)};
  EXPECT_FALSE(instr_key.is_block_level());
  EXPECT_NE(instr_key.describe().find("instr 2"), std::string::npos);
  EXPECT_LT(block_key, instr_key);  // block-level sorts before instructions
}

TEST(AlignTest, FullOverlapAlignsEverything) {
  const std::vector<TaskTrace> traces = {make_trace(2, {1, 2}, 1.0),
                                         make_trace(4, {1, 2}, 0.5)};
  const auto alignment = align_traces(traces, MissingPolicy::Drop);
  EXPECT_EQ(alignment.axis, (std::vector<double>{2, 4}));
  EXPECT_EQ(alignment.skeleton.size(), 2u);
  // 2 blocks × (block elements + 1 instruction × instr elements).
  EXPECT_EQ(alignment.elements.size(),
            2 * (trace::kBlockElementCount + trace::kInstrElementCount));
  // Values are in core-count order.
  for (const auto& element : alignment.elements) {
    if (element.key.is_block_level() &&
        element.key.element == static_cast<std::uint32_t>(BlockElement::VisitCount)) {
      EXPECT_DOUBLE_EQ(element.values[0], 10.0);
      EXPECT_DOUBLE_EQ(element.values[1], 5.0);
    }
  }
}

TEST(AlignTest, DropPolicyExcludesPartialBlocks) {
  const std::vector<TaskTrace> traces = {make_trace(2, {1, 2}), make_trace(4, {1})};
  const auto alignment = align_traces(traces, MissingPolicy::Drop);
  EXPECT_EQ(alignment.skeleton.size(), 1u);
  EXPECT_EQ(alignment.skeleton[0].id, 1u);
}

TEST(AlignTest, ZeroFillPolicyKeepsUnion) {
  const std::vector<TaskTrace> traces = {make_trace(2, {1, 2}), make_trace(4, {1})};
  const auto alignment = align_traces(traces, MissingPolicy::ZeroFill);
  EXPECT_EQ(alignment.skeleton.size(), 2u);
  for (const auto& element : alignment.elements) {
    if (element.key.block_id == 2 &&
        element.key.element == static_cast<std::uint32_t>(BlockElement::MemLoads) &&
        element.key.is_block_level()) {
      EXPECT_DOUBLE_EQ(element.values[0], 200.0);
      EXPECT_DOUBLE_EQ(element.values[1], 0.0);  // zero-filled
      EXPECT_FALSE(element.filled[0]);
      EXPECT_TRUE(element.filled[1]);
    }
  }
}

TEST(AlignTest, CarryLastPolicyCopiesNeighbour) {
  const std::vector<TaskTrace> traces = {make_trace(2, {1, 2}), make_trace(4, {1})};
  const auto alignment = align_traces(traces, MissingPolicy::CarryLast);
  for (const auto& element : alignment.elements) {
    if (element.key.block_id == 2 &&
        element.key.element == static_cast<std::uint32_t>(BlockElement::MemLoads) &&
        element.key.is_block_level()) {
      EXPECT_DOUBLE_EQ(element.values[1], 200.0);  // carried from 2 cores
    }
  }
}

TEST(AlignTest, SkeletonPrefersLargestCoreCount) {
  std::vector<TaskTrace> traces = {make_trace(2, {1}), make_trace(4, {1})};
  traces[1].blocks[0].location.function = "renamed_at_4";
  const auto alignment = align_traces(traces, MissingPolicy::Drop);
  EXPECT_EQ(alignment.skeleton[0].location.function, "renamed_at_4");
}

TEST(AlignTest, FitPresentKeepsUnionWithPlaceholders) {
  const std::vector<TaskTrace> traces = {make_trace(2, {1, 2}), make_trace(4, {1})};
  const auto alignment = align_traces(traces, MissingPolicy::FitPresent);
  EXPECT_EQ(alignment.skeleton.size(), 2u);
  for (const auto& element : alignment.elements) {
    if (element.key.block_id == 2 && element.key.is_block_level() &&
        element.key.element == static_cast<std::uint32_t>(BlockElement::MemLoads)) {
      EXPECT_TRUE(element.filled[1]);  // placeholder, to be ignored by the fit
    }
  }
}

TEST(AlignTest, BlockAppearingOnlyAtLargeCounts) {
  // A block that only exists at the larger core counts still aligns.
  const std::vector<TaskTrace> traces = {make_trace(2, {1}), make_trace(4, {1, 9})};
  const auto alignment = align_traces(traces, MissingPolicy::ZeroFill);
  bool found = false;
  for (const auto& block : alignment.skeleton)
    if (block.id == 9) found = true;
  EXPECT_TRUE(found);
}

TEST(AlignTest, RejectsBadInputs) {
  std::vector<TaskTrace> one = {make_trace(2, {1})};
  EXPECT_THROW(align_traces(one, MissingPolicy::Drop), util::Error);

  std::vector<TaskTrace> unsorted = {make_trace(4, {1}), make_trace(2, {1})};
  EXPECT_THROW(align_traces(unsorted, MissingPolicy::Drop), util::Error);

  std::vector<TaskTrace> mixed = {make_trace(2, {1}), make_trace(4, {1})};
  mixed[1].app = "other-app";
  EXPECT_THROW(align_traces(mixed, MissingPolicy::Drop), util::Error);

  std::vector<TaskTrace> targets = {make_trace(2, {1}), make_trace(4, {1})};
  targets[1].target_system = "other-system";
  EXPECT_THROW(align_traces(targets, MissingPolicy::Drop), util::Error);
}

}  // namespace
}  // namespace pmacx
