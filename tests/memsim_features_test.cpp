// Tests for the hierarchy's optional hardware features: the stride
// prefetcher, the TLB, and write-back accounting.
#include <gtest/gtest.h>

#include "machine/targets.hpp"
#include "machine/timing.hpp"
#include "memsim/hierarchy.hpp"
#include "memsim/ref_block.hpp"
#include "reference_sim.hpp"
#include "synth/patterns.hpp"
#include "util/arena.hpp"
#include "util/error.hpp"

namespace pmacx {
namespace {

using memsim::CacheHierarchy;
using memsim::CacheLevelConfig;
using memsim::HierarchyConfig;
using memsim::MemRef;

HierarchyConfig small_hierarchy() {
  CacheLevelConfig l1;
  l1.name = "L1";
  l1.size_bytes = 64 * 64;  // 64 lines
  l1.line_bytes = 64;
  l1.associativity = 4;
  CacheLevelConfig l2 = l1;
  l2.name = "L2";
  l2.size_bytes = 1024 * 64;  // 1024 lines
  HierarchyConfig cfg;
  cfg.name = "features-test";
  cfg.levels = {l1, l2};
  return cfg;
}

MemRef load(std::uint64_t addr) { return {addr, 8, false}; }
MemRef store(std::uint64_t addr) { return {addr, 8, true}; }

/// Streams `count` refs of a pattern over `footprint` through `hierarchy`.
void stream_refs(CacheHierarchy& hierarchy, synth::Pattern pattern,
                 std::uint64_t footprint, std::size_t count, double store_fraction = 0.0) {
  synth::StreamSpec spec;
  spec.pattern = pattern;
  spec.base_addr = 1 << 24;
  spec.footprint_bytes = footprint;
  spec.elem_bytes = 8;
  spec.store_fraction = store_fraction;
  synth::RefStream stream(spec, 7);
  for (std::size_t i = 0; i < count; ++i) hierarchy.access(stream.next());
}

// ------------------------------------------------------------- prefetch ----

TEST(PrefetchTest, SequentialStreamGainsL1Hits) {
  HierarchyConfig off = small_hierarchy();
  HierarchyConfig on = small_hierarchy();
  on.prefetch.enabled = true;

  CacheHierarchy base(off), prefetched(on);
  // Footprint far beyond L1: the demand-fetch L1 hit rate is capped at the
  // 7/8 spatial-locality bound; the stride prefetcher must beat it.
  stream_refs(base, synth::Pattern::Sequential, 1 << 20, 100'000);
  stream_refs(prefetched, synth::Pattern::Sequential, 1 << 20, 100'000);

  const double without = base.totals().cumulative_hit_rate(0);
  const double with = prefetched.totals().cumulative_hit_rate(0);
  EXPECT_GT(with, without + 0.05);
  EXPECT_GT(prefetched.prefetches_issued(), 1000u);
}

TEST(PrefetchTest, RandomStreamBarelyTriggers) {
  HierarchyConfig on = small_hierarchy();
  on.prefetch.enabled = true;
  CacheHierarchy hierarchy(on);
  stream_refs(hierarchy, synth::Pattern::Random, 16 << 20, 50'000);
  // Random misses rarely form strides; prefetch volume stays low relative
  // to the ~50k misses.
  EXPECT_LT(hierarchy.prefetches_issued(), 10'000u);
}

TEST(PrefetchTest, DisabledIssuesNothing) {
  CacheHierarchy hierarchy(small_hierarchy());
  stream_refs(hierarchy, synth::Pattern::Sequential, 1 << 20, 50'000);
  EXPECT_EQ(hierarchy.prefetches_issued(), 0u);
}

TEST(PrefetchTest, Deterministic) {
  HierarchyConfig on = small_hierarchy();
  on.prefetch.enabled = true;
  CacheHierarchy a(on), b(on);
  stream_refs(a, synth::Pattern::Strided, 1 << 20, 30'000);
  stream_refs(b, synth::Pattern::Strided, 1 << 20, 30'000);
  EXPECT_EQ(a.prefetches_issued(), b.prefetches_issued());
  EXPECT_EQ(a.totals().level_hits[0], b.totals().level_hits[0]);
}

TEST(PrefetchTest, ConfigValidation) {
  HierarchyConfig cfg = small_hierarchy();
  cfg.prefetch.enabled = true;
  cfg.prefetch.degree = 0;
  EXPECT_THROW(cfg.validate(), util::Error);
  cfg = small_hierarchy();
  cfg.prefetch.enabled = true;
  cfg.prefetch.install_level = 7;
  EXPECT_THROW(cfg.validate(), util::Error);
}

// ------------------------------------------------------------------ tlb ----

TEST(TlbTest, SmallFootprintMostlyHits) {
  HierarchyConfig cfg = small_hierarchy();
  cfg.tlb.enabled = true;  // 64 entries × 4 KB = 256 KB reach
  CacheHierarchy hierarchy(cfg);
  stream_refs(hierarchy, synth::Pattern::Sequential, 128 << 10, 100'000);
  // 32 pages of compulsory misses, everything else hits.
  EXPECT_LE(hierarchy.totals().tlb_misses, 40u);
}

TEST(TlbTest, FootprintBeyondReachThrashes) {
  HierarchyConfig cfg = small_hierarchy();
  cfg.tlb.enabled = true;
  CacheHierarchy hierarchy(cfg);
  // 16 MB random: nearly every ref touches a cold page mapping.
  stream_refs(hierarchy, synth::Pattern::Random, 16 << 20, 50'000);
  EXPECT_GT(hierarchy.totals().tlb_misses, 40'000u);
}

TEST(TlbTest, DisabledCountsNothing) {
  CacheHierarchy hierarchy(small_hierarchy());
  stream_refs(hierarchy, synth::Pattern::Random, 16 << 20, 10'000);
  EXPECT_EQ(hierarchy.totals().tlb_misses, 0u);
}

TEST(TlbTest, MissesChargedByTimingModel) {
  HierarchyConfig cfg = machine::bluewaters_p1().hierarchy;
  cfg.tlb.enabled = true;
  cfg.tlb.miss_cycles = 100;
  const machine::MemTimingModel timing(cfg, 2.0);
  memsim::AccessCounters counters;
  counters.tlb_misses = 1'000'000;
  EXPECT_NEAR(timing.seconds_for(counters), 1e6 * 100 / 2e9, 1e-12);
}

TEST(TlbTest, ConfigValidation) {
  HierarchyConfig cfg = small_hierarchy();
  cfg.tlb.enabled = true;
  cfg.tlb.page_bytes = 3000;  // not a power of two
  EXPECT_THROW(cfg.validate(), util::Error);
  cfg = small_hierarchy();
  cfg.tlb.enabled = true;
  cfg.tlb.entries = 0;
  EXPECT_THROW(cfg.validate(), util::Error);
}

TEST(TlbTest, PerScopeAccounting) {
  HierarchyConfig cfg = small_hierarchy();
  cfg.tlb.enabled = true;
  CacheHierarchy hierarchy(cfg);
  hierarchy.set_scope(1);
  hierarchy.access(load(0));
  hierarchy.set_scope(2);
  hierarchy.access(load(1 << 22));  // new page
  EXPECT_EQ(hierarchy.scope(1).tlb_misses, 1u);
  EXPECT_EQ(hierarchy.scope(2).tlb_misses, 1u);
}

// ------------------------------------------------------------ inclusive ----

/// L1: 4 lines fully associative.  L2: 8 lines, 2-way (4 sets) — lines
/// 0, 4, 8 conflict in L2 set 0, so a third conflicting access evicts one
/// from L2 while it still sits comfortably in L1.
HierarchyConfig conflict_hierarchy(bool inclusive) {
  CacheLevelConfig l1;
  l1.name = "L1";
  l1.size_bytes = 4 * 64;
  l1.line_bytes = 64;
  l1.associativity = 0;
  CacheLevelConfig l2 = l1;
  l2.name = "L2";
  l2.size_bytes = 8 * 64;
  l2.associativity = 2;
  HierarchyConfig cfg;
  cfg.name = inclusive ? "inclusive" : "non-inclusive";
  cfg.levels = {l1, l2};
  cfg.inclusive = inclusive;
  return cfg;
}

TEST(InclusiveTest, BackInvalidationEvictsFromL1) {
  CacheHierarchy h(conflict_hierarchy(true));
  h.access(load(0 * 64));   // L2 set 0: [0]
  h.access(load(4 * 64));   // L2 set 0: [0, 4]
  h.access(load(8 * 64));   // L2 evicts 0 → back-invalidates it from L1
  const auto before = h.totals().level_hits[0];
  h.access(load(0 * 64));   // must NOT hit L1 (it was back-invalidated)
  EXPECT_EQ(h.totals().level_hits[0], before);
}

TEST(InclusiveTest, NonInclusiveKeepsL1Copy) {
  CacheHierarchy h(conflict_hierarchy(false));
  h.access(load(0 * 64));
  h.access(load(4 * 64));
  h.access(load(8 * 64));   // L2 evicts 0, but L1 keeps it
  const auto before = h.totals().level_hits[0];
  h.access(load(0 * 64));   // hits L1
  EXPECT_EQ(h.totals().level_hits[0], before + 1);
}

TEST(InclusiveTest, HitRatesNeverImproveWithInclusion) {
  // Inclusion can only remove lines from upper levels, so the cumulative
  // L1 hit rate with inclusion is bounded by the non-inclusive one.
  for (auto pattern : {synth::Pattern::Sequential, synth::Pattern::Random,
                       synth::Pattern::Gather}) {
    CacheHierarchy inclusive(conflict_hierarchy(true));
    CacheHierarchy baseline(conflict_hierarchy(false));
    stream_refs(inclusive, pattern, 1 << 14, 20'000);
    stream_refs(baseline, pattern, 1 << 14, 20'000);
    EXPECT_LE(inclusive.totals().cumulative_hit_rate(0),
              baseline.totals().cumulative_hit_rate(0) + 1e-12)
        << synth::pattern_name(pattern);
  }
}

TEST(InclusiveTest, EvictionOutcomeReported) {
  memsim::CacheLevel cache(conflict_hierarchy(false).levels[1], 1);
  cache.access(0, false);
  cache.access(4, false);
  const auto outcome = cache.access(8, true);  // evicts 0 or 4 from set 0
  EXPECT_FALSE(outcome.hit);
  EXPECT_TRUE(outcome.evicted);
  EXPECT_TRUE(outcome.evicted_line == 0 || outcome.evicted_line == 4);
  EXPECT_TRUE(cache.invalidate(8));
  EXPECT_FALSE(cache.invalidate(8));  // second invalidate finds nothing
}

// ------------------------------------------------------------ writeback ----

TEST(WritebackTest, ReadOnlyStreamWritesNothingBack) {
  CacheHierarchy hierarchy(small_hierarchy());
  stream_refs(hierarchy, synth::Pattern::Sequential, 1 << 20, 100'000, 0.0);
  EXPECT_EQ(hierarchy.totals().writebacks, 0u);
}

TEST(WritebackTest, StoreStreamBeyondCapacityWritesBack) {
  CacheHierarchy hierarchy(small_hierarchy());
  // All-store sweep far beyond L2 capacity: dirty lines must be evicted.
  stream_refs(hierarchy, synth::Pattern::Sequential, 16 << 20, 200'000, 1.0);
  EXPECT_GT(hierarchy.totals().writebacks, 10'000u);
}

TEST(WritebackTest, StoreHitMarksDirty) {
  CacheHierarchy hierarchy(small_hierarchy());
  hierarchy.access(load(0));   // install clean
  hierarchy.access(store(0));  // dirty on hit
  // Evict line 0 from both levels by sweeping stores over disjoint lines
  // that map to the same sets eventually.
  stream_refs(hierarchy, synth::Pattern::Sequential, 16 << 20, 300'000, 0.0);
  EXPECT_GE(hierarchy.totals().writebacks, 1u);
}

TEST(WritebackTest, ResetClearsFeatureState) {
  HierarchyConfig cfg = small_hierarchy();
  cfg.prefetch.enabled = true;
  cfg.tlb.enabled = true;
  CacheHierarchy hierarchy(cfg);
  stream_refs(hierarchy, synth::Pattern::Sequential, 1 << 20, 50'000, 0.5);
  hierarchy.reset();
  EXPECT_EQ(hierarchy.prefetches_issued(), 0u);
  EXPECT_EQ(hierarchy.totals().tlb_misses, 0u);
  EXPECT_EQ(hierarchy.totals().writebacks, 0u);
}

// ------------------------------------------------------------- sampling ----

class SamplingTest : public ::testing::TestWithParam<synth::Pattern> {};

TEST_P(SamplingTest, SampledHitRatesMatchFullSimulation) {
  HierarchyConfig full_cfg = small_hierarchy();
  HierarchyConfig sampled_cfg = small_hierarchy();
  sampled_cfg.sample_shift = 3;  // 1/8 of lines

  CacheHierarchy full(full_cfg), sampled(sampled_cfg);
  stream_refs(full, GetParam(), 1 << 20, 200'000);
  stream_refs(sampled, GetParam(), 1 << 20, 200'000);

  for (std::size_t lvl = 0; lvl < 2; ++lvl) {
    EXPECT_NEAR(sampled.totals().cumulative_hit_rate(lvl),
                full.totals().cumulative_hit_rate(lvl), 0.03)
        << synth::pattern_name(GetParam()) << " level " << lvl;
  }
  // The sample really is ~1/8 of the line accesses.
  EXPECT_NEAR(static_cast<double>(sampled.totals().line_accesses),
              full.totals().line_accesses / 8.0,
              0.25 * full.totals().line_accesses / 8.0);
  // Logical reference counts stay complete regardless of sampling.
  EXPECT_EQ(sampled.totals().refs, full.totals().refs);
}

INSTANTIATE_TEST_SUITE_P(Patterns, SamplingTest,
                         ::testing::Values(synth::Pattern::Sequential,
                                           synth::Pattern::Random,
                                           synth::Pattern::Stencil3d),
                         [](const auto& info) { return synth::pattern_name(info.param); });

TEST(SamplingTest, RejectsAbsurdShift) {
  HierarchyConfig cfg = small_hierarchy();
  cfg.sample_shift = 20;
  EXPECT_THROW(cfg.validate(), util::Error);
}

TEST(WritebackTest, CountersMergeNewFields) {
  memsim::AccessCounters a, b;
  a.tlb_misses = 3;
  a.writebacks = 5;
  b.tlb_misses = 7;
  b.writebacks = 11;
  a.merge(b);
  EXPECT_EQ(a.tlb_misses, 10u);
  EXPECT_EQ(a.writebacks, 16u);
}

// ------------------------------------------------- pre-refactor reference ----

// bench/reference_sim.hpp keeps the pre-refactor AoS simulator as the perf
// gate's "old" side.  These tests pin it counter-identical to the real
// simulator on real machine targets, so the gate's reference cannot rot
// into measuring something other than the replaced implementation.
void expect_reference_identical(const machine::TargetSystem& target,
                                synth::Pattern pattern, std::size_t count) {
  memsim::CacheHierarchy hierarchy(target.hierarchy);
  bench::ReferenceHierarchy reference(target.hierarchy);

  synth::StreamSpec spec;
  spec.pattern = pattern;
  spec.base_addr = 1 << 24;
  spec.footprint_bytes = 1 << 22;
  spec.elem_bytes = 8;
  spec.stride_elems = 5;
  spec.store_fraction = 0.3;
  synth::RefStream a(spec, 31), b(spec, 31);
  for (std::size_t i = 0; i < count; ++i) {
    hierarchy.access(a.next());
    reference.access(b.next());
  }

  const memsim::AccessCounters& got = hierarchy.totals();
  const memsim::AccessCounters& want = reference.totals();
  EXPECT_EQ(got.refs, want.refs);
  EXPECT_EQ(got.line_accesses, want.line_accesses);
  EXPECT_EQ(got.memory_accesses, want.memory_accesses);
  EXPECT_EQ(got.writebacks, want.writebacks);
  for (std::size_t lvl = 0; lvl < target.hierarchy.levels.size(); ++lvl)
    EXPECT_EQ(got.level_hits[lvl], want.level_hits[lvl])
        << "level " << lvl << " pattern " << static_cast<int>(pattern);
}

TEST(ReferenceSimTest, CountersIdenticalOnRealTargets) {
  for (const synth::Pattern pattern :
       {synth::Pattern::Sequential, synth::Pattern::Random,
        synth::Pattern::Strided, synth::Pattern::Stencil3d}) {
    expect_reference_identical(machine::bluewaters_p1(), pattern, 60'000);
    expect_reference_identical(machine::xt5_base(), pattern, 60'000);
  }
}

TEST(ReferenceSimTest, BlockReplayMatchesReferencePerRefWalk) {
  // The gate benchmarks time access_block against the reference's per-ref
  // walk; assert that exact pairing stays counter-identical, ragged tail
  // included.
  const machine::TargetSystem target = machine::xt5_base();
  memsim::CacheHierarchy hierarchy(target.hierarchy);
  bench::ReferenceHierarchy reference(target.hierarchy);

  synth::StreamSpec spec;
  spec.pattern = synth::Pattern::Random;
  spec.base_addr = 1 << 24;
  spec.footprint_bytes = 1 << 22;
  spec.elem_bytes = 8;
  spec.store_fraction = 0.25;
  synth::RefStream a(spec, 13), b(spec, 13);

  util::Arena arena;
  memsim::RefBlockBuilder builder(arena, 701);
  std::size_t remaining = 40'000;
  while (remaining > 0) {
    builder.clear();
    while (remaining > 0 && !builder.full()) {
      const memsim::MemRef ref = a.next();
      builder.push(ref.addr, ref.size, ref.is_store);
      reference.access(b.next());
      --remaining;
    }
    hierarchy.access_block(builder.block());
  }

  const memsim::AccessCounters& got = hierarchy.totals();
  const memsim::AccessCounters& want = reference.totals();
  EXPECT_EQ(got.line_accesses, want.line_accesses);
  EXPECT_EQ(got.memory_accesses, want.memory_accesses);
  EXPECT_EQ(got.writebacks, want.writebacks);
  for (std::size_t lvl = 0; lvl < target.hierarchy.levels.size(); ++lvl)
    EXPECT_EQ(got.level_hits[lvl], want.level_hits[lvl]) << "level " << lvl;
}

}  // namespace
}  // namespace pmacx
