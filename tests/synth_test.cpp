// Tests for the synthetic-application substrate: address patterns, scaling
// laws, the two application models, comm-trace safety and the tracer.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "machine/targets.hpp"
#include "simmpi/replay.hpp"
#include "synth/app.hpp"
#include "synth/patterns.hpp"
#include "synth/hpcg.hpp"
#include "synth/registry.hpp"
#include "synth/specfem.hpp"
#include "synth/tracer.hpp"
#include "synth/uh3d.hpp"
#include "util/error.hpp"

namespace pmacx {
namespace {

using synth::Pattern;
using synth::RefStream;
using synth::StreamSpec;

StreamSpec spec_of(Pattern pattern, std::uint64_t footprint = 4096) {
  StreamSpec spec;
  spec.pattern = pattern;
  spec.base_addr = 1 << 20;
  spec.footprint_bytes = footprint;
  spec.elem_bytes = 8;
  spec.stride_elems = 4;
  spec.store_fraction = 0.25;
  return spec;
}

// ------------------------------------------------------------- patterns ----

class PatternBoundsTest : public ::testing::TestWithParam<Pattern> {};

TEST_P(PatternBoundsTest, AllRefsInsideFootprint) {
  const StreamSpec spec = spec_of(GetParam());
  RefStream stream(spec, 1);
  for (int i = 0; i < 5000; ++i) {
    const auto ref = stream.next();
    EXPECT_GE(ref.addr, spec.base_addr);
    EXPECT_LT(ref.addr + ref.size, spec.base_addr + spec.footprint_bytes + spec.elem_bytes);
    EXPECT_EQ(ref.size, spec.elem_bytes);
  }
}

INSTANTIATE_TEST_SUITE_P(AllPatterns, PatternBoundsTest,
                         ::testing::Values(Pattern::Sequential, Pattern::Strided,
                                           Pattern::Random, Pattern::Gather,
                                           Pattern::Stencil3d),
                         [](const auto& info) { return synth::pattern_name(info.param); });

TEST(PatternTest, SequentialCoversWholeFootprint) {
  const StreamSpec spec = spec_of(Pattern::Sequential, 512);  // 64 elements
  RefStream stream(spec, 1);
  std::set<std::uint64_t> addresses;
  for (int i = 0; i < 64; ++i) addresses.insert(stream.next().addr);
  EXPECT_EQ(addresses.size(), 64u);
}

TEST(PatternTest, SequentialWraps) {
  const StreamSpec spec = spec_of(Pattern::Sequential, 64);  // 8 elements
  RefStream stream(spec, 1);
  const auto first = stream.next().addr;
  for (int i = 0; i < 7; ++i) stream.next();
  EXPECT_EQ(stream.next().addr, first);
}

TEST(PatternTest, DeterministicForSeed) {
  auto run = [](std::uint64_t seed) {
    RefStream stream(spec_of(Pattern::Random), seed);
    std::vector<std::uint64_t> addrs;
    for (int i = 0; i < 100; ++i) addrs.push_back(stream.next().addr);
    return addrs;
  };
  EXPECT_EQ(run(9), run(9));
  EXPECT_NE(run(9), run(10));
}

TEST(PatternTest, StoreFractionRoughlyHonored) {
  StreamSpec spec = spec_of(Pattern::Sequential);
  spec.store_fraction = 0.3;
  RefStream stream(spec, 5);
  int stores = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    if (stream.next().is_store) ++stores;
  EXPECT_NEAR(static_cast<double>(stores) / n, 0.3, 0.02);
}

TEST(PatternTest, RejectsBadSpecs) {
  StreamSpec spec = spec_of(Pattern::Sequential);
  spec.footprint_bytes = 4;  // smaller than one element
  EXPECT_THROW(RefStream(spec, 1), util::Error);
  spec = spec_of(Pattern::Sequential);
  spec.store_fraction = 1.5;
  EXPECT_THROW(RefStream(spec, 1), util::Error);
  spec = spec_of(Pattern::Strided);
  spec.stride_elems = 0;
  EXPECT_THROW(RefStream(spec, 1), util::Error);
}

// ----------------------------------------------------------------- laws ----

TEST(LawsTest, PerCoreDividesAndFloors) {
  EXPECT_DOUBLE_EQ(synth::laws::per_core(1000, 10), 100);
  EXPECT_DOUBLE_EQ(synth::laws::per_core(10, 1000), 1);  // floored
}

TEST(LawsTest, SurfaceIsTwoThirdsPower) {
  const double v = synth::laws::surface(1e6, 1.0, 1.0);
  EXPECT_NEAR(v, std::pow(1e6, 2.0 / 3.0), 1e-6);
  // Surface shrinks slower than volume under strong scaling.
  const double s8 = synth::laws::surface(1e6, 8.0, 1.0);
  EXPECT_GT(s8, v / 8.0);
}

TEST(LawsTest, GrowthLaws) {
  EXPECT_DOUBLE_EQ(synth::laws::log_growth(1, 2, 8), 7);   // 1 + 2·3
  EXPECT_DOUBLE_EQ(synth::laws::linear_growth(1, 2, 8), 17);
}

TEST(LawsTest, ImbalancePeaksAtRankZero) {
  const std::uint32_t cores = 64;
  const double peak = synth::imbalance_factor(0, cores, 0.1);
  EXPECT_NEAR(peak, 1.1, 1e-9);
  for (std::uint32_t r = 1; r < cores; ++r) {
    const double f = synth::imbalance_factor(r, cores, 0.1);
    EXPECT_LT(f, peak);
    EXPECT_GE(f, 1.0);
  }
}

// ----------------------------------------------------------------- apps ----

template <typename App>
class AppModelTest : public ::testing::Test {};

using AppTypes = ::testing::Types<synth::Specfem3dApp, synth::Uh3dApp, synth::HpcgApp>;
TYPED_TEST_SUITE(AppModelTest, AppTypes);

TYPED_TEST(AppModelTest, KernelsValidateAndHaveStableIds) {
  const TypeParam app;
  const auto k96 = app.kernels(96, 0);
  const auto k384 = app.kernels(384, 0);
  ASSERT_EQ(k96.size(), k384.size());
  for (std::size_t i = 0; i < k96.size(); ++i) {
    EXPECT_EQ(k96[i].block_id, k384[i].block_id);
    EXPECT_NO_THROW(k96[i].validate());
  }
}

TYPED_TEST(AppModelTest, StrongScalingShrinksDominantKernel) {
  const TypeParam app;
  // Total memory refs of the dominant kernel must shrink as cores grow.
  const auto small = app.kernels(128, 0);
  const auto large = app.kernels(4096, 0);
  std::uint64_t small_max = 0, large_max = 0;
  for (const auto& k : small) small_max = std::max(small_max, k.total_refs());
  for (const auto& k : large) large_max = std::max(large_max, k.total_refs());
  EXPECT_LT(large_max, small_max);
}

TYPED_TEST(AppModelTest, DemandingRankHasMostWork) {
  const TypeParam app;
  const std::uint32_t cores = 64;
  const std::uint32_t demanding = app.demanding_rank(cores);
  const double peak = app.work_units(cores, demanding);
  for (std::uint32_t r = 0; r < cores; r += 7)
    EXPECT_LE(app.work_units(cores, r), peak) << "rank " << r;
}

TYPED_TEST(AppModelTest, CommTracesReplayWithoutDeadlock) {
  const TypeParam app;
  for (std::uint32_t cores : {4u, 6u, 16u}) {
    std::vector<trace::CommTrace> traces;
    for (std::uint32_t r = 0; r < cores; ++r) traces.push_back(app.comm_trace(cores, r));
    const std::vector<double> scales(cores, 1e-9);
    simmpi::NetworkModel net;
    EXPECT_NO_THROW(simmpi::replay(simmpi::timelines_from_comm(traces, scales), net))
        << cores << " cores";
  }
}

TYPED_TEST(AppModelTest, WorkUnitsPositiveAndDeterministic) {
  const TypeParam app;
  EXPECT_GT(app.work_units(64, 0), 0.0);
  EXPECT_DOUBLE_EQ(app.work_units(64, 3), app.work_units(64, 3));
}

TEST(AppModelTest2, SpecfemHasLogGrowthKernel) {
  // reduce_norm's refs/visit must grow with cores (the Fig. 5 shape).
  const synth::Specfem3dApp app;
  const auto small = app.kernels(128, 0);
  const auto large = app.kernels(4096, 0);
  bool found_growth = false;
  for (std::size_t i = 0; i < small.size(); ++i)
    if (large[i].refs_per_visit > small[i].refs_per_visit * 1.2) found_growth = true;
  EXPECT_TRUE(found_growth);
}

TEST(AppModelTest2, CommTraceRequiresEvenCores) {
  const synth::Specfem3dApp app;
  EXPECT_THROW(app.comm_trace(5, 0), util::Error);
}

// --------------------------------------------------------------- registry ----

TEST(RegistryTest, MakesEveryKnownApp) {
  for (const std::string& name : synth::app_names()) {
    const auto app = synth::make_app(name);
    ASSERT_NE(app, nullptr);
    EXPECT_EQ(app->name(), name);
    EXPECT_GT(app->work_units(64, 0), 0.0);
  }
}

TEST(RegistryTest, WorkScaleMultipliesWork) {
  const auto base = synth::make_app("hpcg", 1.0);
  const auto scaled = synth::make_app("hpcg", 10.0);
  EXPECT_NEAR(scaled->work_units(64, 0), 10.0 * base->work_units(64, 0),
              0.01 * scaled->work_units(64, 0));
}

TEST(RegistryTest, RejectsUnknownAppAndBadScale) {
  EXPECT_THROW(synth::make_app("linpack"), util::Error);
  EXPECT_THROW(synth::make_app("hpcg", 0.0), util::Error);
}

// ----------------------------------------------------------------- tracer ----

synth::TracerOptions tracer_options(std::uint64_t cap = 200'000) {
  synth::TracerOptions options;
  options.target = machine::bluewaters_p1().hierarchy;
  options.max_refs_per_kernel = cap;
  return options;
}

TEST(TracerTest, TraceStructureComplete) {
  const synth::Specfem3dApp app;
  const auto task = synth::trace_task(app, 96, 0, tracer_options());
  EXPECT_EQ(task.app, "specfem3d");
  EXPECT_EQ(task.core_count, 96u);
  EXPECT_FALSE(task.extrapolated);
  EXPECT_EQ(task.blocks.size(), app.kernels(96, 0).size());
  for (const auto& block : task.blocks) {
    EXPECT_GT(block.get(trace::BlockElement::VisitCount), 0.0);
    EXPECT_FALSE(block.instructions.empty());
  }
}

TEST(TracerTest, HitRatesValidAndMonotone) {
  const synth::Uh3dApp app;
  const auto task = synth::trace_task(app, 1024, 0, tracer_options());
  for (const auto& block : task.blocks) {
    const double h1 = block.get(trace::BlockElement::HitRateL1);
    const double h2 = block.get(trace::BlockElement::HitRateL2);
    const double h3 = block.get(trace::BlockElement::HitRateL3);
    EXPECT_GE(h1, 0.0);
    EXPECT_LE(h3, 1.0);
    EXPECT_LE(h1, h2);
    EXPECT_LE(h2, h3);
    for (const auto& instr : block.instructions) {
      EXPECT_LE(instr.get(trace::InstrElement::HitRateL1),
                instr.get(trace::InstrElement::HitRateL2) + 1e-12);
    }
  }
}

TEST(TracerTest, CountsAreAnalyticDespiteSampling) {
  // The recorded memory-op totals must not depend on the sampling cap.
  const synth::Specfem3dApp app;
  const auto coarse = synth::trace_task(app, 96, 0, tracer_options(50'000));
  const auto fine = synth::trace_task(app, 96, 0, tracer_options(400'000));
  for (std::size_t b = 0; b < coarse.blocks.size(); ++b) {
    const double c = coarse.blocks[b].memory_ops();
    const double f = fine.blocks[b].memory_ops();
    EXPECT_NEAR(c, f, 0.02 * std::max(c, f)) << "block " << coarse.blocks[b].id;
  }
}

TEST(TracerTest, SmallerL1TargetLowersHitRate) {
  const synth::Specfem3dApp app;
  synth::TracerOptions a = tracer_options();
  a.target = machine::system_a_12kb().hierarchy;
  synth::TracerOptions b = tracer_options();
  b.target = machine::system_b_56kb().hierarchy;
  const auto trace_a = synth::trace_task(app, 96, 0, a);
  const auto trace_b = synth::trace_task(app, 96, 0, b);
  // The constant source-injection kernel (24 KB footprint) fits system B's
  // L1 but not system A's — the Table III contrast.
  const auto* block_a = trace_a.find_block(4);
  const auto* block_b = trace_b.find_block(4);
  ASSERT_NE(block_a, nullptr);
  ASSERT_NE(block_b, nullptr);
  EXPECT_GT(block_b->get(trace::BlockElement::HitRateL1),
            block_a->get(trace::BlockElement::HitRateL1) + 0.05);
}

TEST(TracerTest, CollectSignatureDefaultsToDemandingRank) {
  const synth::Uh3dApp app;
  const auto signature = synth::collect_signature(app, 16, tracer_options());
  EXPECT_EQ(signature.tasks.size(), 1u);
  EXPECT_EQ(signature.tasks[0].rank, app.demanding_rank(16));
  EXPECT_EQ(signature.comm.size(), 16u);
  EXPECT_NO_THROW(signature.validate());
}

TEST(TracerTest, CollectSignatureExtraRanks) {
  const synth::Uh3dApp app;
  const auto signature =
      synth::collect_signature(app, 16, tracer_options(), {0, 8, 8, 15});
  EXPECT_EQ(signature.tasks.size(), 3u);  // deduplicated
}

TEST(TracerTest, SetSamplingPreservesHitRates) {
  const synth::Uh3dApp app;
  const auto full = synth::trace_task(app, 1024, 0, tracer_options());
  synth::TracerOptions sampled_options = tracer_options();
  sampled_options.sample_shift = 3;  // simulate 1/8 of the lines
  const auto sampled = synth::trace_task(app, 1024, 0, sampled_options);

  ASSERT_EQ(sampled.blocks.size(), full.blocks.size());
  for (std::size_t b = 0; b < full.blocks.size(); ++b) {
    // Counts are analytic and unaffected; hit rates agree within sampling
    // noise.
    EXPECT_NEAR(sampled.blocks[b].memory_ops(), full.blocks[b].memory_ops(),
                1e-6 * full.blocks[b].memory_ops());
    EXPECT_NEAR(sampled.blocks[b].get(trace::BlockElement::HitRateL3),
                full.blocks[b].get(trace::BlockElement::HitRateL3), 0.05)
        << "block " << full.blocks[b].id;
  }
}

TEST(TracerTest, DeterministicTraces) {
  const synth::Specfem3dApp app;
  const auto a = synth::trace_task(app, 96, 0, tracer_options());
  const auto b = synth::trace_task(app, 96, 0, tracer_options());
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace pmacx
