// Live-ingestion end-to-end tests: the UPLOAD_TRACE protocol against a real
// in-process server (duplicates, reordering, resume, CRC rejection), the
// "@collection" pseudo-path on the data plane, the atomic model swap under
// concurrent load (zero lost or garbled responses), and the ModelStore
// insert/invalidation byte-accounting audit the swap path stands on.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/extrapolator.hpp"
#include "ingest/upload.hpp"
#include "service/client.hpp"
#include "service/model_store.hpp"
#include "service/server.hpp"
#include "trace/binary_io.hpp"
#include "trace/task_trace.hpp"
#include "util/crc32.hpp"
#include "util/metrics.hpp"

namespace pmacx {
namespace {

using trace::BlockElement;
using trace::TaskTrace;

TaskTrace law_trace(double p) {
  TaskTrace task;
  task.app = "specfem3d";
  task.core_count = static_cast<std::uint32_t>(p);
  task.target_system = "bluewaters-p1";

  trace::BasicBlockRecord solve;
  solve.id = 1;
  solve.location = {"solver.c", 10, "solve"};
  solve.set(BlockElement::VisitCount, 42.0);
  solve.set(BlockElement::MemLoads, 1e10 / p);
  solve.set(BlockElement::MemStores, 4e9 / p);
  solve.set(BlockElement::BytesPerRef, 8.0);
  solve.set(BlockElement::HitRateL1, 0.4);
  solve.set(BlockElement::HitRateL2, 0.5 + 0.00004 * p);
  solve.set(BlockElement::HitRateL3, 0.95);
  solve.set(BlockElement::WorkingSetBytes, 4.6e9 / p);
  solve.set(BlockElement::Ilp, 3.5);
  solve.set(BlockElement::DepChainLength, 6.0);
  task.blocks.push_back(solve);

  trace::BasicBlockRecord reduce;
  reduce.id = 2;
  reduce.location = {"reduce.c", 2, "reduce"};
  reduce.set(BlockElement::VisitCount, 10.0);
  reduce.set(BlockElement::MemLoads, 4096.0 * (1.0 + std::log2(p)));
  reduce.set(BlockElement::BytesPerRef, 8.0);
  reduce.set(BlockElement::HitRateL1, 0.99);
  reduce.set(BlockElement::HitRateL2, 0.99);
  reduce.set(BlockElement::HitRateL3, 0.99);
  reduce.set(BlockElement::Ilp, 2.0);
  reduce.set(BlockElement::DepChainLength, 3.0);
  task.blocks.push_back(reduce);
  task.sort_blocks();
  return task;
}

/// Fresh ingest root per process so committed files from an earlier test
/// binary run cannot leak into this one's assertions.
std::string fresh_ingest_dir(const std::string& tag) {
  return testing::TempDir() + "ingest_" + tag + "_" + std::to_string(::getpid());
}

service::ServerOptions ingest_server_options(const std::string& tag) {
  service::ServerOptions options;
  options.port = 0;
  options.threads = 2;
  options.request_timeout_ms = 120'000;
  options.ingest_dir = fresh_ingest_dir(tag);
  return options;
}

service::ClientOptions client_for(const service::Server& server) {
  service::ClientOptions options;
  options.port = server.port();
  options.io_timeout_ms = 120'000;
  return options;
}

service::Response upload_op(service::Client& client, const ingest::UploadRequest& up) {
  service::Request request;
  request.type = service::MsgType::UploadTrace;
  request.upload = up;
  return client.call(request);
}

ingest::UploadRequest begin_request(const std::string& session, const std::string& bytes,
                                    const std::string& collection,
                                    const std::string& file_name,
                                    std::uint32_t chunk_bytes) {
  ingest::UploadRequest begin;
  begin.op = ingest::UploadOp::Begin;
  begin.session = session;
  begin.collection = collection;
  begin.file_name = file_name;
  begin.total_bytes = bytes.size();
  begin.chunk_bytes = chunk_bytes;
  begin.file_crc = util::crc32(bytes);
  return begin;
}

ingest::UploadRequest chunk_request(const std::string& session, const std::string& bytes,
                                    std::uint32_t chunk_bytes, std::uint64_t index) {
  ingest::UploadRequest chunk;
  chunk.op = ingest::UploadOp::Chunk;
  chunk.session = session;
  chunk.chunk_index = index;
  const std::size_t offset = static_cast<std::size_t>(index) * chunk_bytes;
  chunk.data = bytes.substr(offset, chunk_bytes);
  return chunk;
}

std::uint64_t chunk_count(const std::string& bytes, std::uint32_t chunk_bytes) {
  return (bytes.size() + chunk_bytes - 1) / chunk_bytes;
}

/// Uploads `task` start to finish; returns the COMMIT response body.
std::string upload_whole(service::Client& client, const TaskTrace& task,
                         const std::string& collection, const std::string& file_name,
                         const std::string& session, std::uint32_t chunk_bytes = 256) {
  const std::string bytes = trace::to_binary(task);
  service::Response response =
      upload_op(client, begin_request(session, bytes, collection, file_name, chunk_bytes));
  EXPECT_EQ(response.status, service::Status::Ok) << response.body;
  for (std::uint64_t i = 0; i < chunk_count(bytes, chunk_bytes); ++i) {
    response = upload_op(client, chunk_request(session, bytes, chunk_bytes, i));
    EXPECT_EQ(response.status, service::Status::Ok) << response.body;
  }
  ingest::UploadRequest commit;
  commit.op = ingest::UploadOp::Commit;
  commit.session = session;
  response = upload_op(client, commit);
  EXPECT_EQ(response.status, service::Status::Ok) << response.body;
  EXPECT_NE(response.body.find("state committed"), std::string::npos) << response.body;
  return response.body;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

/// Extracts "path <p>" from a committed upload's response body.
std::string committed_path(const std::string& body) {
  const std::size_t at = body.find("path ");
  if (at == std::string::npos) return {};
  const std::size_t end = body.find('\n', at);
  return body.substr(at + 5, end - (at + 5));
}

// --------------------------------------------------------------- protocol --

TEST(ServiceIngestTest, UploadThenCollectionRefAnswersLikeDirectPaths) {
  service::Server server(ingest_server_options("refpath"));
  server.start();
  service::Client client(client_for(server));

  const std::vector<double> cores = {16, 32, 64};
  std::vector<TaskTrace> inputs;
  for (const double p : cores) {
    const TaskTrace task = law_trace(p);
    inputs.push_back(task);
    upload_whole(client, task, "laws", "law" + std::to_string(static_cast<int>(p)) + ".btrace",
                 "s-refpath-" + std::to_string(static_cast<int>(p)));
  }

  service::Request request;
  request.type = service::MsgType::Extrapolate;
  request.spec.trace_paths = {"@laws"};
  request.target_cores = 256;
  const service::Response response = client.call(request);
  ASSERT_EQ(response.status, service::Status::Ok) << response.body;

  const core::ExtrapolationResult direct =
      core::extrapolate_task(inputs, 256, request.spec.to_options());
  EXPECT_EQ(response.body, trace::to_binary(direct.trace));
}

TEST(ServiceIngestTest, OutOfOrderAndDuplicateChunksCommitTheExactBytes) {
  service::Server server(ingest_server_options("reorder"));
  server.start();
  service::Client client(client_for(server));

  const std::string bytes = trace::to_binary(law_trace(16));
  constexpr std::uint32_t kChunk = 97;  // deliberately unaligned
  const std::string session = "s-reorder";
  ASSERT_EQ(upload_op(client, begin_request(session, bytes, "reorder", "t.btrace", kChunk))
                .status,
            service::Status::Ok);

  // Chunks arrive backwards; every write is positioned, so order is noise.
  const std::uint64_t n = chunk_count(bytes, kChunk);
  for (std::uint64_t i = n; i-- > 0;) {
    ASSERT_EQ(upload_op(client, chunk_request(session, bytes, kChunk, i)).status,
              service::Status::Ok);
  }
  // A replayed chunk (the RPC retry path resends freely) is a flagged no-op.
  const service::Response dup =
      upload_op(client, chunk_request(session, bytes, kChunk, 0));
  ASSERT_EQ(dup.status, service::Status::Ok);
  EXPECT_NE(dup.body.find("duplicate 1"), std::string::npos) << dup.body;

  ingest::UploadRequest commit;
  commit.op = ingest::UploadOp::Commit;
  commit.session = session;
  const service::Response committed = upload_op(client, commit);
  ASSERT_EQ(committed.status, service::Status::Ok) << committed.body;

  const std::string path = committed_path(committed.body);
  ASSERT_FALSE(path.empty()) << committed.body;
  EXPECT_EQ(read_file(path), bytes);

  // Every post-commit op is idempotent: a re-COMMIT (lost response) and a
  // replayed CHUNK both just re-report success.
  EXPECT_EQ(upload_op(client, commit).status, service::Status::Ok);
  EXPECT_EQ(upload_op(client, chunk_request(session, bytes, kChunk, 1)).status,
            service::Status::Ok);
}

TEST(ServiceIngestTest, StatusDrivenResumeSendsOnlyWhatIsMissing) {
  service::Server server(ingest_server_options("resume"));
  server.start();
  service::Client client(client_for(server));

  const std::string bytes = trace::to_binary(law_trace(32));
  constexpr std::uint32_t kChunk = 64;
  const std::string session = "s-resume";
  ASSERT_EQ(upload_op(client, begin_request(session, bytes, "resume", "t.btrace", kChunk))
                .status,
            service::Status::Ok);

  // First attempt "dies" after the even-indexed chunks.
  const std::uint64_t n = chunk_count(bytes, kChunk);
  for (std::uint64_t i = 0; i < n; i += 2)
    ASSERT_EQ(upload_op(client, chunk_request(session, bytes, kChunk, i)).status,
              service::Status::Ok);

  // A committed-too-early attempt is rejected but leaves the session alive.
  ingest::UploadRequest commit;
  commit.op = ingest::UploadOp::Commit;
  commit.session = session;
  const service::Response premature = upload_op(client, commit);
  EXPECT_EQ(premature.status, service::Status::Error);
  EXPECT_NE(premature.body.find("missing"), std::string::npos) << premature.body;

  // STATUS names exactly the odd-indexed survivors' complements.
  ingest::UploadRequest status;
  status.op = ingest::UploadOp::Status;
  status.session = session;
  const service::Response progress = upload_op(client, status);
  ASSERT_EQ(progress.status, service::Status::Ok);
  std::vector<std::uint64_t> missing;
  const std::size_t at = progress.body.find("missing ");
  ASSERT_NE(at, std::string::npos) << progress.body;
  std::istringstream in(progress.body.substr(at + 8));
  std::uint64_t index = 0;
  while (in >> index) missing.push_back(index);
  for (const std::uint64_t i : missing) {
    EXPECT_EQ(i % 2, 1u) << "chunk " << i << " was already sent";
    ASSERT_EQ(upload_op(client, chunk_request(session, bytes, kChunk, i)).status,
              service::Status::Ok);
  }

  const service::Response committed = upload_op(client, commit);
  ASSERT_EQ(committed.status, service::Status::Ok) << committed.body;
  EXPECT_EQ(read_file(committed_path(committed.body)), bytes);
}

TEST(ServiceIngestTest, CrcMismatchDiscardsTheUploadForAFreshStart) {
  service::Server server(ingest_server_options("badcrc"));
  server.start();
  service::Client client(client_for(server));

  const std::string bytes = trace::to_binary(law_trace(64));
  constexpr std::uint32_t kChunk = 128;
  const std::string session = "s-badcrc";
  ingest::UploadRequest begin = begin_request(session, bytes, "badcrc", "t.btrace", kChunk);
  begin.file_crc ^= 1;  // lies about the content
  ASSERT_EQ(upload_op(client, begin).status, service::Status::Ok);
  for (std::uint64_t i = 0; i < chunk_count(bytes, kChunk); ++i)
    ASSERT_EQ(upload_op(client, chunk_request(session, bytes, kChunk, i)).status,
              service::Status::Ok);

  ingest::UploadRequest commit;
  commit.op = ingest::UploadOp::Commit;
  commit.session = session;
  const service::Response rejected = upload_op(client, commit);
  EXPECT_EQ(rejected.status, service::Status::Error);
  EXPECT_NE(rejected.body.find("CRC mismatch"), std::string::npos) << rejected.body;

  // The session (and its spool) are gone — a commit that can never succeed
  // must not be retried into place.
  ingest::UploadRequest status;
  status.op = ingest::UploadOp::Status;
  status.session = session;
  const service::Response after = upload_op(client, status);
  ASSERT_EQ(after.status, service::Status::Ok);
  EXPECT_NE(after.body.find("state absent"), std::string::npos) << after.body;

  // A truthful re-BEGIN starts clean and succeeds.
  upload_whole(client, law_trace(64), "badcrc", "t.btrace", session, kChunk);
}

TEST(ServiceIngestTest, IngestionDisabledAndUnknownCollectionsAreCleanErrors) {
  service::ServerOptions plain;
  plain.port = 0;
  plain.threads = 2;
  plain.request_timeout_ms = 120'000;
  service::Server server(plain);  // no --ingest-dir
  server.start();
  service::Client client(client_for(server));

  ingest::UploadRequest status;
  status.op = ingest::UploadOp::Status;
  status.session = "nope";
  const service::Response upload = upload_op(client, status);
  EXPECT_EQ(upload.status, service::Status::Error);
  EXPECT_NE(upload.body.find("--ingest-dir"), std::string::npos) << upload.body;

  service::Request request;
  request.type = service::MsgType::Extrapolate;
  request.spec.trace_paths = {"@nosuch"};
  request.target_cores = 256;
  const service::Response expand = client.call(request);
  EXPECT_EQ(expand.status, service::Status::Error);

  // And with ingestion on, an unknown collection still names the problem.
  service::Server ingesting(ingest_server_options("unknowncoll"));
  ingesting.start();
  service::Client client2(client_for(ingesting));
  const service::Response unknown = client2.call(request);
  EXPECT_EQ(unknown.status, service::Status::Error);
  EXPECT_NE(unknown.body.find("nosuch"), std::string::npos) << unknown.body;
}

// -------------------------------------------------------------- live swap --

TEST(ServiceIngestTest, LiveUploadUnderLoadLosesNoRequests) {
  service::Server server(ingest_server_options("swap"));
  server.start();

  const std::vector<double> initial = {16, 32, 64};
  std::vector<TaskTrace> before;
  {
    service::Client client(client_for(server));
    for (const double p : initial) {
      const TaskTrace task = law_trace(p);
      before.push_back(task);
      upload_whole(client, task, "laws", "law" + std::to_string(static_cast<int>(p)) + ".btrace",
                   "s-swap-" + std::to_string(static_cast<int>(p)));
    }
  }
  std::vector<TaskTrace> after = before;
  after.push_back(law_trace(128));

  service::Request query;
  query.type = service::MsgType::Extrapolate;
  query.spec.trace_paths = {"@laws"};
  query.target_cores = 512;
  const std::string bytes_before =
      trace::to_binary(core::extrapolate_task(before, 512, query.spec.to_options()).trace);
  const std::string bytes_after =
      trace::to_binary(core::extrapolate_task(after, 512, query.spec.to_options()).trace);
  ASSERT_NE(bytes_before, bytes_after);

  // Hammer the collection from several clients while the fourth trace lands.
  constexpr int kThreads = 4, kRequestsPerThread = 8;
  std::atomic<int> bad{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      service::Client client(client_for(server));
      for (int i = 0; i < kRequestsPerThread; ++i) {
        const service::Response response = client.call_with_retry(query);
        // Zero lost responses, zero garbled payloads: every answer is OK
        // and byte-identical to the pre-swap or post-swap reference.
        if (response.status != service::Status::Ok ||
            (response.body != bytes_before && response.body != bytes_after)) {
          ++bad;
        }
      }
    });
  }

  {
    service::Client client(client_for(server));
    upload_whole(client, law_trace(128), "laws", "law128.btrace", "s-swap-128",
                 /*chunk_bytes=*/64);  // small chunks: the swap lands mid-load
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(bad.load(), 0);

  // Once the upload committed, new requests see the extended collection.
  service::Client client(client_for(server));
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(60);
  for (;;) {
    const service::Response response = client.call(query);
    ASSERT_EQ(response.status, service::Status::Ok) << response.body;
    if (response.body == bytes_after) break;
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "collection never served the post-upload model set";
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

// -------------------------------------------- ModelStore swap accounting --

std::uint64_t invalidations() {
  return util::metrics::Registry::global().counter("service.cache.invalidations").value();
}

TEST(ServiceIngestTest, LruCacheInsertReplacesWithoutLeakingAccountedBytes) {
  service::LruCache<std::string> cache(
      1024, [](const std::string& value) { return value.size(); });
  cache.get_or_load("k", [] { return std::make_shared<const std::string>(100, 'a'); });
  EXPECT_EQ(cache.bytes(), 100u);

  const std::uint64_t before = invalidations();
  cache.insert("k", std::make_shared<const std::string>(40, 'b'));
  // Replacement must swap the accounted cost, not stack it — a leak here
  // shrinks the effective cache budget a little on every background refit.
  EXPECT_EQ(cache.bytes(), 40u);
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(invalidations(), before + 1);

  // The replacement is immediately served.
  const auto got =
      cache.get_or_load("k", [] { return std::make_shared<const std::string>("wrong"); });
  EXPECT_EQ(*got, std::string(40, 'b'));

  // Inserting a brand-new key is not an invalidation.
  const std::uint64_t mid = invalidations();
  cache.insert("fresh", std::make_shared<const std::string>(10, 'c'));
  EXPECT_EQ(invalidations(), mid);
  EXPECT_EQ(cache.bytes(), 50u);

  // Repeated replacement stays fixed-point: no drift in either direction.
  for (int i = 0; i < 5; ++i)
    cache.insert("k", std::make_shared<const std::string>(40, 'd'));
  EXPECT_EQ(cache.bytes(), 50u);
  EXPECT_EQ(cache.entries(), 2u);
}

TEST(ServiceIngestTest, LruCacheInsertEvictsWhenOverBudget) {
  service::LruCache<std::string> cache(
      100, [](const std::string& value) { return value.size(); });
  cache.get_or_load("old", [] { return std::make_shared<const std::string>(60, 'a'); });
  cache.insert("new", std::make_shared<const std::string>(80, 'b'));
  // The insert itself respects the byte budget: "old" was evicted.
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.bytes(), 80u);
}

TEST(ServiceIngestTest, ModelStoreInsertModelsServesTheNewSetAtomically) {
  service::ModelStore store(16u << 20);
  const std::vector<double> cores = {16, 32, 64};
  std::vector<TaskTrace> inputs;
  std::vector<std::string> paths;
  for (const double p : cores) {
    const TaskTrace task = law_trace(p);
    inputs.push_back(task);
    const std::string path = testing::TempDir() + "ingest_store_" +
                             std::to_string(static_cast<int>(p)) + "_" +
                             std::to_string(::getpid()) + ".btrace";
    trace::save_binary(task, path);
    paths.push_back(path);
  }
  core::ExtrapolationOptions options;
  options.threads = 1;

  // A background refit publishes under the workload's content address; a
  // later request for the same (traces, options) must be answered by the
  // published pointer — no second fit.
  auto fitted = std::make_shared<const core::TaskModelSet>(
      core::fit_task_models(inputs, options));
  store.insert_models(store.digest(paths, options), fitted);

  const service::ModelStore::ModelsResult got = store.models_for(paths, options);
  EXPECT_EQ(got.models.get(), fitted.get());
}

}  // namespace
}  // namespace pmacx
