// Streaming reader/writer tests: the chunked trace::StreamReader path must
// be indistinguishable from the whole-file loaders — byte-identical results
// on clean input, the identical ParseError outcome on corrupt input at every
// truncation point and bit flip (including ones landing exactly on buffered
// chunk edges), and a hard, *verified* buffer budget: a trace 10x the budget
// streams through with the provider's high-water mark at or under the cap.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <optional>
#include <string>
#include <utility>

#include "trace/binary_io.hpp"
#include "trace/stream_reader.hpp"
#include "trace/task_trace.hpp"
#include "util/error.hpp"
#include "util/parse_error.hpp"

namespace pmacx {
namespace {

using trace::BasicBlockRecord;
using trace::BlockElement;
using trace::InstrElement;
using trace::InstructionRecord;
using trace::TaskTrace;

TaskTrace sample_trace() {
  TaskTrace task;
  task.app = "stream-demo";
  task.rank = 1;
  task.core_count = 64;
  task.target_system = "test target";

  for (std::uint64_t id = 1; id <= 24; ++id) {
    BasicBlockRecord block;
    block.id = id;
    block.location = {"src/kernel.f90", static_cast<std::uint32_t>(10 * id), "kernel"};
    block.set(BlockElement::VisitCount, 100.0 + static_cast<double>(id));
    block.set(BlockElement::MemLoads, 1e6 / static_cast<double>(id));
    block.set(BlockElement::BytesPerRef, 8.0);
    block.set(BlockElement::HitRateL1, 0.5);
    block.set(BlockElement::HitRateL2, 0.6);
    block.set(BlockElement::HitRateL3, 0.7);
    if (id % 3 == 0) {
      InstructionRecord instr;
      instr.index = 2;
      instr.set(InstrElement::ExecCount, 9.0 * static_cast<double>(id));
      instr.set(InstrElement::MemOps, 4.0);
      instr.set(InstrElement::BytesPerOp, 8.0);
      instr.set(InstrElement::HitRateL1, 0.5);
      instr.set(InstrElement::HitRateL2, 0.6);
      instr.set(InstrElement::HitRateL3, 0.7);
      block.instructions.push_back(instr);
    }
    task.blocks.push_back(block);
  }
  task.sort_blocks();
  return task;
}

/// A trace big enough that streaming it through a small budget is a real
/// bound (file size >= 10x the test budget below).
TaskTrace big_trace(std::size_t blocks) {
  TaskTrace task;
  task.app = "stream-big";
  task.core_count = 128;
  task.target_system = "test target";
  task.blocks.reserve(blocks);
  for (std::size_t i = 1; i <= blocks; ++i) {
    BasicBlockRecord block;
    block.id = i;
    block.location = {"src/big.f90", static_cast<std::uint32_t>(i), "body"};
    block.set(BlockElement::VisitCount, static_cast<double>(i));
    block.set(BlockElement::MemLoads, 1e3 + static_cast<double>(i));
    block.set(BlockElement::BytesPerRef, 8.0);
    task.blocks.push_back(block);
  }
  return task;
}

std::string temp_path(const std::string& name) { return testing::TempDir() + name; }

void write_file(const std::string& path, std::string_view bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

/// Outcome of one streamed parse: the trace on success, nullopt on
/// ParseError.  Anything else escaping (bad_alloc, logic_error, a crash) is
/// exactly the "partial state" failure mode the sweep exists to rule out.
std::optional<TaskTrace> parse_outcome(trace::ByteSource& source) {
  trace::CollectingSink sink;
  try {
    trace::stream_parse(source, sink, trace::StreamFormat::Auto);
  } catch (const util::ParseError&) {
    return std::nullopt;
  }
  return sink.take();
}

// ------------------------------------------------------------ equivalence --

TEST(StreamReaderTest, StreamLoadMatchesWholeFileLoadBinary) {
  const TaskTrace original = sample_trace();
  const std::string path = temp_path("stream_eq.btrace");
  trace::save_binary(original, path);

  EXPECT_EQ(trace::stream_load(path), TaskTrace::load(path));
  // The buffered provider (tiny budget, forced) parses identically to the
  // mmap/view fast path.
  EXPECT_EQ(trace::stream_load(path, 4096, /*force_buffered=*/true), original);
}

TEST(StreamReaderTest, StreamLoadMatchesWholeFileLoadText) {
  const TaskTrace original = sample_trace();
  const std::string path = temp_path("stream_eq.trace");
  original.save(path);

  EXPECT_EQ(trace::stream_load(path), TaskTrace::load(path));
  EXPECT_EQ(trace::stream_load(path, 4096, /*force_buffered=*/true), original);
}

TEST(StreamReaderTest, StreamWriterOutputIsByteIdenticalToToBinary) {
  const TaskTrace task = sample_trace();  // sorted by construction
  const std::string path = temp_path("stream_writer.btrace");
  trace::BinaryStreamWriter writer(path);
  writer.begin(task, task.blocks.size());
  for (const BasicBlockRecord& block : task.blocks) writer.add_block(block);
  writer.finish();

  std::ifstream in(path, std::ios::binary);
  std::string written((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(written, trace::to_binary(task));
}

// ------------------------------------------------------- corruption sweeps --

TEST(StreamReaderTest, TruncationSweepThrowsParseErrorNeverPartialState) {
  const std::string bytes = trace::to_binary(sample_trace());
  const std::string path = temp_path("stream_trunc.btrace");
  // Every prefix is invalid: the binary format ends with an end marker, so
  // any truncation must surface as ParseError from both providers — never a
  // silently shortened trace.  Stride keeps the sweep fast; the final 64
  // offsets run exhaustively because the end-marker/trailer edge cases all
  // live there.
  for (std::size_t cut = 0; cut < bytes.size();
       cut += (cut + 64 >= bytes.size() ? 1 : 13)) {
    const std::string_view prefix(bytes.data(), cut);
    auto view = trace::make_view_source(prefix);
    EXPECT_EQ(parse_outcome(*view), std::nullopt) << "cut at " << cut;

    write_file(path, prefix);
    // 1 KiB budget: refill boundaries land inside section frames, so the
    // chunk-edge arithmetic is exercised at many alignments.
    auto buffered = trace::open_stream(path, 1024, /*force_buffered=*/true);
    EXPECT_EQ(parse_outcome(*buffered), std::nullopt) << "cut at " << cut;
  }
}

TEST(StreamReaderTest, BitFlipSweepBufferedMatchesViewOutcome) {
  const TaskTrace original = sample_trace();
  const std::string bytes = trace::to_binary(original);
  const std::string path = temp_path("stream_flip.btrace");
  // A flipped bit anywhere must produce the *same* outcome from the
  // buffered provider as from the contiguous view — the same ParseError
  // rejection (per-section CRCs catch payload damage at chunk granularity)
  // or, where the flip lands in genuinely dont-care bytes, the same parsed
  // trace.
  for (std::size_t at = 0; at < bytes.size(); at += 7) {
    std::string corrupt = bytes;
    corrupt[at] = static_cast<char>(corrupt[at] ^ 0x10);

    auto view = trace::make_view_source(corrupt);
    const std::optional<TaskTrace> reference = parse_outcome(*view);

    write_file(path, corrupt);
    auto buffered = trace::open_stream(path, 1024, /*force_buffered=*/true);
    const std::optional<TaskTrace> streamed = parse_outcome(*buffered);

    EXPECT_EQ(streamed.has_value(), reference.has_value()) << "flip at " << at;
    if (streamed && reference) EXPECT_EQ(*streamed, *reference) << "flip at " << at;
  }
}

TEST(StreamReaderTest, TextTruncationSweepBufferedMatchesViewOutcome) {
  const std::string text = sample_trace().to_text();
  const std::string path = temp_path("stream_trunc.trace");
  for (std::size_t cut = 0; cut < text.size(); cut += 17) {
    const std::string_view prefix(text.data(), cut);
    auto view = trace::make_view_source(prefix);
    const std::optional<TaskTrace> reference = parse_outcome(*view);

    write_file(path, prefix);
    auto buffered = trace::open_stream(path, 1024, /*force_buffered=*/true);
    const std::optional<TaskTrace> streamed = parse_outcome(*buffered);

    EXPECT_EQ(streamed.has_value(), reference.has_value()) << "cut at " << cut;
    if (streamed && reference) EXPECT_EQ(*streamed, *reference) << "cut at " << cut;
  }
}

// ------------------------------------------------------------- budget bound --

TEST(StreamReaderTest, BufferedProviderHonorsBudgetOnTraceTenTimesItsSize) {
  const TaskTrace task = big_trace(4000);
  const std::string path = temp_path("stream_budget.btrace");
  trace::save_binary(task, path);

  std::ifstream probe(path, std::ios::binary | std::ios::ate);
  const std::uint64_t file_size = static_cast<std::uint64_t>(probe.tellg());
  constexpr std::size_t kBudget = 16u << 10;
  ASSERT_GE(file_size, 10 * kBudget) << "fixture too small for a meaningful bound";

  auto source = trace::open_stream(path, kBudget, /*force_buffered=*/true);
  TaskTrace header;
  const trace::StreamStats stats = trace::stream_validate(*source, &header);
  EXPECT_EQ(stats.bytes_consumed, file_size);
  EXPECT_EQ(stats.blocks, task.blocks.size());
  EXPECT_EQ(header.core_count, task.core_count);
  // The budget is a hard bound on provider-owned memory, not a hint.
  EXPECT_GT(stats.peak_buffer_bytes, 0u);
  EXPECT_LE(stats.peak_buffer_bytes, kBudget);

  // And the bounded parse still reproduces the trace exactly.
  EXPECT_EQ(trace::stream_load(path, kBudget, /*force_buffered=*/true), task);
}

TEST(StreamReaderTest, ValidateRejectsSemanticBreakageStreamed) {
  TaskTrace task = sample_trace();
  task.blocks[0].set(BlockElement::HitRateL2, 0.2);  // L1 0.5 > L2: not cumulative
  const std::string bytes = trace::to_binary(task);
  auto source = trace::make_view_source(bytes);
  // Framing damage is ParseError; *semantic* breakage surfaces as the same
  // util::Error the whole-file validate() raises.
  EXPECT_THROW(trace::stream_validate(*source), util::Error);
}

}  // namespace
}  // namespace pmacx
