// Unit tests for a single cache level and the hierarchy configuration.
#include <gtest/gtest.h>

#include "memsim/cache.hpp"
#include "memsim/config.hpp"
#include "util/error.hpp"

namespace pmacx {
namespace {

using memsim::CacheLevel;
using memsim::CacheLevelConfig;
using memsim::HierarchyConfig;
using memsim::Replacement;

CacheLevelConfig tiny_cache(std::uint32_t assoc, Replacement policy = Replacement::Lru) {
  CacheLevelConfig cfg;
  cfg.name = "L1";
  cfg.size_bytes = 8 * 64;  // 8 lines
  cfg.line_bytes = 64;
  cfg.associativity = assoc;
  cfg.replacement = policy;
  return cfg;
}

// ----------------------------------------------------------------- config ----

TEST(CacheConfigTest, SetsComputed) {
  EXPECT_EQ(tiny_cache(2).sets(), 4u);
  EXPECT_EQ(tiny_cache(0).sets(), 1u);  // fully associative
}

TEST(CacheConfigTest, ValidHierarchyPasses) {
  HierarchyConfig cfg;
  cfg.levels = {tiny_cache(2)};
  EXPECT_NO_THROW(cfg.validate());
}

TEST(CacheConfigTest, RejectsZeroLevels) {
  HierarchyConfig cfg;
  EXPECT_THROW(cfg.validate(), util::Error);
}

TEST(CacheConfigTest, RejectsFourLevels) {
  HierarchyConfig cfg;
  auto mk = [&](std::uint64_t size) {
    CacheLevelConfig level = tiny_cache(2);
    level.size_bytes = size;
    return level;
  };
  cfg.levels = {mk(512), mk(1024), mk(2048), mk(4096)};
  EXPECT_THROW(cfg.validate(), util::Error);
}

TEST(CacheConfigTest, RejectsNonPow2Line) {
  HierarchyConfig cfg;
  cfg.levels = {tiny_cache(2)};
  cfg.levels[0].line_bytes = 48;
  EXPECT_THROW(cfg.validate(), util::Error);
}

TEST(CacheConfigTest, RejectsMixedLineSizes) {
  HierarchyConfig cfg;
  CacheLevelConfig l2 = tiny_cache(2);
  l2.size_bytes = 16 * 128;
  l2.line_bytes = 128;
  cfg.levels = {tiny_cache(2), l2};
  EXPECT_THROW(cfg.validate(), util::Error);
}

TEST(CacheConfigTest, RejectsShrinkingCapacity) {
  HierarchyConfig cfg;
  CacheLevelConfig l2 = tiny_cache(2);
  cfg.levels = {tiny_cache(2), l2};  // same size, not strictly larger
  EXPECT_THROW(cfg.validate(), util::Error);
}

TEST(CacheConfigTest, RejectsNonPow2Sets) {
  HierarchyConfig cfg;
  CacheLevelConfig odd = tiny_cache(2);
  odd.size_bytes = 6 * 64;  // 6 lines / 2-way = 3 sets
  cfg.levels = {odd};
  EXPECT_THROW(cfg.validate(), util::Error);
}

TEST(CacheConfigTest, Table3Geometries) {
  // The 12 KB / 3-way and 56 KB / 7-way L1s used by Table III are valid.
  CacheLevelConfig a = tiny_cache(3);
  a.size_bytes = 12ull << 10;
  HierarchyConfig cfg_a;
  cfg_a.levels = {a};
  EXPECT_NO_THROW(cfg_a.validate());
  EXPECT_EQ(a.sets(), 64u);

  CacheLevelConfig b = tiny_cache(7);
  b.size_bytes = 56ull << 10;
  HierarchyConfig cfg_b;
  cfg_b.levels = {b};
  EXPECT_NO_THROW(cfg_b.validate());
  EXPECT_EQ(b.sets(), 128u);
}

TEST(CacheConfigTest, ReplacementNames) {
  EXPECT_EQ(memsim::replacement_name(Replacement::Lru), "lru");
  EXPECT_EQ(memsim::replacement_name(Replacement::Fifo), "fifo");
  EXPECT_EQ(memsim::replacement_name(Replacement::Random), "random");
}

// ------------------------------------------------------------------ level ----

TEST(CacheLevelTest, MissThenHit) {
  CacheLevel cache(tiny_cache(2), 1);
  EXPECT_FALSE(cache.access(100));
  EXPECT_TRUE(cache.access(100));
  EXPECT_TRUE(cache.contains(100));
}

TEST(CacheLevelTest, LruEvictsLeastRecentlyUsed) {
  // Fully associative, 8 lines.  Fill 8, touch line 0 again, insert a 9th:
  // the victim must be line 1 (the least recently used).
  CacheLevel cache(tiny_cache(0), 1);
  for (std::uint64_t line = 0; line < 8; ++line) EXPECT_FALSE(cache.access(line));
  EXPECT_TRUE(cache.access(0));
  EXPECT_FALSE(cache.access(100));
  EXPECT_FALSE(cache.contains(1));
  EXPECT_TRUE(cache.contains(0));
  EXPECT_TRUE(cache.contains(100));
}

TEST(CacheLevelTest, FifoIgnoresRecency) {
  // FIFO evicts the oldest *fill* even if recently touched.
  CacheLevel cache(tiny_cache(0, Replacement::Fifo), 1);
  for (std::uint64_t line = 0; line < 8; ++line) cache.access(line);
  EXPECT_TRUE(cache.access(0));   // touch does not refresh FIFO age
  cache.access(100);              // evicts line 0 (oldest fill)
  EXPECT_FALSE(cache.contains(0));
  EXPECT_TRUE(cache.contains(1));
}

TEST(CacheLevelTest, RandomIsDeterministicPerSeed) {
  auto run = [](std::uint64_t seed) {
    CacheLevel cache(tiny_cache(0, Replacement::Random), seed);
    std::vector<bool> hits;
    for (std::uint64_t i = 0; i < 64; ++i) hits.push_back(cache.access(i % 12));
    return hits;
  };
  EXPECT_EQ(run(5), run(5));
}

TEST(CacheLevelTest, SetConflictsEvict) {
  // 4 sets × 2 ways: lines 0, 4, 8 all map to set 0; the third insert
  // evicts the LRU of the first two.
  CacheLevel cache(tiny_cache(2), 1);
  cache.access(0);
  cache.access(4);
  cache.access(8);
  EXPECT_FALSE(cache.contains(0));
  EXPECT_TRUE(cache.contains(4));
  EXPECT_TRUE(cache.contains(8));
}

TEST(CacheLevelTest, ClearEmptiesContents) {
  CacheLevel cache(tiny_cache(2), 1);
  cache.access(3);
  cache.clear();
  EXPECT_FALSE(cache.contains(3));
  EXPECT_FALSE(cache.access(3));
}

TEST(CacheLevelTest, WorkingSetWithinCapacityAlwaysHitsAfterWarmup) {
  CacheLevel cache(tiny_cache(0), 1);
  for (std::uint64_t pass = 0; pass < 3; ++pass) {
    for (std::uint64_t line = 0; line < 8; ++line) {
      const bool hit = cache.access(line);
      if (pass > 0) EXPECT_TRUE(hit) << "pass " << pass << " line " << line;
    }
  }
}

}  // namespace
}  // namespace pmacx
