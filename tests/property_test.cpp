// Cross-cutting property tests: randomized serialization round-trips (both
// formats), extrapolation self-consistency laws, and pipeline invariants
// that must hold for any seed.
#include <gtest/gtest.h>

#include <cmath>

#include "core/extrapolator.hpp"
#include "trace/binary_io.hpp"
#include "trace/task_trace.hpp"
#include "util/rng.hpp"

namespace pmacx {
namespace {

using trace::TaskTrace;

/// A randomized but structurally valid trace.
TaskTrace random_trace(std::uint64_t seed, std::uint32_t cores = 64) {
  util::Rng rng(seed);
  TaskTrace task;
  task.app = "fuzz-" + std::to_string(seed % 7);
  task.rank = static_cast<std::uint32_t>(rng.below(cores));
  task.core_count = cores;
  task.target_system = "target-" + std::to_string(seed % 3);
  task.extrapolated = rng.uniform() < 0.5;

  const std::size_t blocks = 1 + rng.below(12);
  for (std::size_t b = 0; b < blocks; ++b) {
    trace::BasicBlockRecord block;
    block.id = 1 + b * (1 + rng.below(5));
    block.location.file = "file_" + std::to_string(rng.below(100)) + ".f90";
    block.location.line = static_cast<std::uint32_t>(rng.below(10000));
    block.location.function = "fn with spaces " + std::to_string(b);
    for (double& v : block.features) v = rng.uniform(0.0, 1e12);
    // Keep hit rates in-domain and cumulative.
    double hr = rng.uniform(0, 0.9);
    block.set(trace::BlockElement::HitRateL1, hr);
    hr = std::min(1.0, hr + rng.uniform(0, 0.1));
    block.set(trace::BlockElement::HitRateL2, hr);
    block.set(trace::BlockElement::HitRateL3, std::min(1.0, hr + rng.uniform(0, 0.1)));

    const std::size_t instrs = rng.below(6);
    for (std::size_t k = 0; k < instrs; ++k) {
      trace::InstructionRecord instr;
      instr.index = static_cast<std::uint32_t>(k);
      for (double& v : instr.features) v = rng.uniform(0.0, 1e9);
      block.instructions.push_back(instr);
    }
    task.blocks.push_back(std::move(block));
  }
  task.sort_blocks();
  // Duplicate ids can arise from the generator; drop duplicates to keep the
  // structural invariant (unique, sorted ids).
  task.blocks.erase(std::unique(task.blocks.begin(), task.blocks.end(),
                                [](const auto& a, const auto& b) { return a.id == b.id; }),
                    task.blocks.end());
  return task;
}

class SerializationFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SerializationFuzzTest, TextRoundTripsExactly) {
  const TaskTrace task = random_trace(GetParam());
  EXPECT_EQ(TaskTrace::from_text(task.to_text()), task);
}

TEST_P(SerializationFuzzTest, BinaryRoundTripsExactly) {
  const TaskTrace task = random_trace(GetParam());
  EXPECT_EQ(trace::from_binary(trace::to_binary(task)), task);
}

TEST_P(SerializationFuzzTest, FormatsAgree) {
  const TaskTrace task = random_trace(GetParam());
  EXPECT_EQ(TaskTrace::from_text(task.to_text()),
            trace::from_binary(trace::to_binary(task)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializationFuzzTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

// ------------------------------------------------ extrapolation properties ----

/// If every input trace is identical, every element series is constant and
/// the extrapolation must reproduce the inputs exactly at any target.
TEST(ExtrapolationPropertyTest, IdenticalInputsExtrapolateToThemselves) {
  for (std::uint64_t seed : {7u, 19u, 42u}) {
    TaskTrace base = random_trace(seed);
    std::vector<TaskTrace> series;
    for (std::uint32_t cores : {64u, 128u, 256u}) {
      TaskTrace copy = base;
      copy.core_count = cores;
      series.push_back(std::move(copy));
    }
    const auto result = core::extrapolate_task(series, 1024);
    ASSERT_EQ(result.trace.blocks.size(), base.blocks.size());
    for (std::size_t b = 0; b < base.blocks.size(); ++b) {
      for (std::size_t e = 0; e < trace::kBlockElementCount; ++e)
        EXPECT_NEAR(result.trace.blocks[b].features[e], base.blocks[b].features[e],
                    1e-9 * (1.0 + std::fabs(base.blocks[b].features[e])))
            << "seed " << seed << " block " << b << " element " << e;
    }
    EXPECT_NEAR(result.report.worst_influential_error(), 0.0, 1e-9);
  }
}

/// Extrapolating *to* the largest input count must reproduce that input
/// (within fit error) — the interpolation consistency law.
TEST(ExtrapolationPropertyTest, TargetAtLastInputReproducesIt) {
  // Construct traces following smooth laws so fits are near-exact.
  auto law_trace = [](double p) {
    TaskTrace task;
    task.app = "law";
    task.core_count = static_cast<std::uint32_t>(p);
    task.target_system = "t";
    trace::BasicBlockRecord block;
    block.id = 1;
    block.location = {"a.c", 1, "k"};
    block.set(trace::BlockElement::VisitCount, 7);
    block.set(trace::BlockElement::MemLoads, 1e9 / p);
    block.set(trace::BlockElement::BytesPerRef, 8);
    block.set(trace::BlockElement::HitRateL1, 0.8);
    block.set(trace::BlockElement::HitRateL2, 0.85);
    block.set(trace::BlockElement::HitRateL3, 0.9);
    block.set(trace::BlockElement::Ilp, 3);
    block.set(trace::BlockElement::DepChainLength, 2);
    task.blocks.push_back(block);
    return task;
  };
  const std::vector<TaskTrace> series = {law_trace(128), law_trace(256), law_trace(512)};
  // extrapolate_task requires target > inputs? No — any positive target.
  const auto result = core::extrapolate_task(series, 512);
  EXPECT_NEAR(result.trace.find_block(1)->get(trace::BlockElement::MemLoads), 1e9 / 512,
              1e-3 * (1e9 / 512));
}

/// Scaling every input element by a constant scales the extrapolation by
/// the same constant (linearity of least squares in y).
TEST(ExtrapolationPropertyTest, HomogeneityInValues) {
  auto make = [](double p, double scale) {
    TaskTrace task;
    task.app = "hom";
    task.core_count = static_cast<std::uint32_t>(p);
    task.target_system = "t";
    trace::BasicBlockRecord block;
    block.id = 1;
    block.location = {"a.c", 1, "k"};
    block.set(trace::BlockElement::MemLoads, scale * (1e6 + 300.0 * p));
    block.set(trace::BlockElement::BytesPerRef, 8);
    block.set(trace::BlockElement::Ilp, 2);
    block.set(trace::BlockElement::DepChainLength, 2);
    task.blocks.push_back(block);
    return task;
  };
  const std::vector<TaskTrace> base = {make(128, 1), make(256, 1), make(512, 1)};
  const std::vector<TaskTrace> scaled = {make(128, 3), make(256, 3), make(512, 3)};
  const double a =
      core::extrapolate_task(base, 2048).trace.find_block(1)->get(
          trace::BlockElement::MemLoads);
  const double b =
      core::extrapolate_task(scaled, 2048).trace.find_block(1)->get(
          trace::BlockElement::MemLoads);
  EXPECT_NEAR(b, 3.0 * a, 1e-6 * b);
}

}  // namespace
}  // namespace pmacx
