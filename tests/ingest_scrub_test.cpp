// ingest::Scrub + restart-recovery contract tests.
//
// The scenario that matters: a server died mid-upload (half-committed spool
// session), mid-publish (stray atomic-write temp), or after a storage fault
// corrupted a published trace.  On restart the scrubber must return the
// ingest root to a serving state — exactly the committed-and-valid set is
// served, everything else is quarantined or deleted, and every action is
// visible in the ingest.scrub.* counters.  The ENOSPC tests pin the upload
// manager's read-only degradation (reject with a typed error up front,
// never crash-loop) and its recovery across a restart.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "ingest/collection.hpp"
#include "ingest/scrub.hpp"
#include "ingest/upload.hpp"
#include "trace/binary_io.hpp"
#include "trace/task_trace.hpp"
#include "util/atomic_file.hpp"
#include "util/crc32.hpp"
#include "util/error.hpp"
#include "util/io.hpp"
#include "util/metrics.hpp"

namespace pmacx {
namespace {

namespace fs = std::filesystem;
namespace io = util::io;

constexpr std::size_t kBudget = std::size_t{8} << 20;

struct FaultGuard {
  ~FaultGuard() { io::clear_faults(); }
};

std::string scratch_root(const std::string& name) {
  const std::string root = ::testing::TempDir() + "/pmacx_scrub_" + name;
  fs::remove_all(root);
  fs::create_directories(root);
  return root;
}

void write_raw(const std::string& path, const std::string& bytes) {
  fs::create_directories(fs::path(path).parent_path());
  std::ofstream out(path, std::ios::binary);
  out << bytes;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

std::uint64_t counter_value(const char* name) {
  return util::metrics::Registry::global().counter(name).value();
}

/// A small but fully valid binary trace at the given core count.
std::string trace_bytes(std::uint32_t cores) {
  trace::TaskTrace task;
  task.app = "scrub";
  task.rank = 0;
  task.core_count = cores;
  task.target_system = "test target";
  for (std::size_t b = 0; b < 4; ++b) {
    trace::BasicBlockRecord block;
    block.id = 10 + b;
    block.location = {"kernel.f90", static_cast<std::uint32_t>(100 + b), "kernel"};
    block.set(trace::BlockElement::VisitCount, 100.0 + static_cast<double>(b));
    block.set(trace::BlockElement::MemLoads, 8.0e6 / cores);
    block.set(trace::BlockElement::MemStores, 4.0e6 / cores);
    block.set(trace::BlockElement::BytesPerRef, 8.0);
    block.set(trace::BlockElement::HitRateL1, 0.9);
    block.set(trace::BlockElement::HitRateL2, 0.95);
    block.set(trace::BlockElement::HitRateL3, 0.99);
    task.blocks.push_back(block);
  }
  task.sort_blocks();
  return trace::to_binary(task);
}

ingest::ScrubOptions scrub_options(const std::string& root) {
  ingest::ScrubOptions options;
  options.root = root;
  options.stream_budget = kBudget;
  return options;
}

/// BEGIN/CHUNK*/COMMIT one payload through the manager (the tool-side half
/// of the protocol, same as IngestService drives).
ingest::UploadOutcome upload_file(ingest::UploadManager& manager,
                                  const std::string& session,
                                  const std::string& collection,
                                  const std::string& name, const std::string& bytes,
                                  std::uint32_t chunk_bytes = 199) {
  ingest::UploadRequest begin;
  begin.op = ingest::UploadOp::Begin;
  begin.session = session;
  begin.collection = collection;
  begin.file_name = name;
  begin.total_bytes = bytes.size();
  begin.chunk_bytes = chunk_bytes;
  begin.file_crc = util::crc32(bytes);
  manager.handle(begin);
  for (std::size_t offset = 0; offset < bytes.size(); offset += chunk_bytes) {
    ingest::UploadRequest chunk;
    chunk.op = ingest::UploadOp::Chunk;
    chunk.session = session;
    chunk.chunk_index = offset / chunk_bytes;
    chunk.data = bytes.substr(offset, chunk_bytes);
    manager.handle(chunk);
  }
  ingest::UploadRequest commit;
  commit.op = ingest::UploadOp::Commit;
  commit.session = session;
  return manager.handle(commit);
}

// ---------------------------------------------------- restart recovery ------

/// The satellite scenario end-to-end: committed files + a half-committed
/// spool session + a stray atomic-write temp + a corrupt published trace.
/// After the scrub, a fresh CollectionRegistry must serve exactly the
/// committed-and-valid set; everything else is reported, not served.
TEST(ScrubTest, RestartRecoveryServesExactlyTheCommittedSet) {
  const std::string root = scratch_root("restart");
  const std::string dir = root + "/collections/mix";
  const std::string s8 = trace_bytes(8);
  const std::string s16 = trace_bytes(16);

  // Two cleanly committed files, registered in the manifest.
  write_raw(dir + "/s8.btrace", s8);
  write_raw(dir + "/s16.btrace", s16);
  // A third file the manifest lists but whose bytes a storage fault tore.
  write_raw(dir + "/s32.btrace", "not a trace at all");
  util::save_checked(dir + "/manifest.pmx",
                     "file 8 s8.btrace\nfile 16 s16.btrace\nfile 32 s32.btrace\n");
  // A half-committed upload session and a stray atomic-write temp.
  write_raw(root + "/spool/half-done.part", std::string(512, 'h'));
  write_raw(dir + "/manifest.pmx.tmp.4242", "interrupted rewrite");

  const std::uint64_t temps_before = counter_value("ingest.scrub.stale_temps");
  const std::uint64_t quarantined_before = counter_value("ingest.scrub.quarantined");

  const ingest::ScrubReport report = ingest::scrub_ingest_root(scrub_options(root));
  EXPECT_EQ(report.stale_temps, 2u) << "spool part + manifest temp";
  EXPECT_EQ(report.quarantined, 1u) << "the torn trace";
  EXPECT_EQ(report.files_ok, 2u);
  EXPECT_GE(report.manifest_dropped, 1u) << "the torn trace's manifest entry";
  EXPECT_TRUE(report.acted());
  EXPECT_EQ(counter_value("ingest.scrub.stale_temps") - temps_before, 2u);
  EXPECT_EQ(counter_value("ingest.scrub.quarantined") - quarantined_before, 1u);

  // The registry's restart rescan serves exactly the committed survivors.
  ingest::CollectionRegistry registry(root);
  const std::vector<std::string> paths = registry.resolve("mix");
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(fs::path(paths[0]).filename().string(), "s8.btrace");
  EXPECT_EQ(fs::path(paths[1]).filename().string(), "s16.btrace");
  EXPECT_EQ(slurp(paths[0]), s8);
  EXPECT_EQ(slurp(paths[1]), s16);

  // Source bytes are preserved for post-mortem, and the quarantine manifest
  // names the file.
  EXPECT_TRUE(fs::exists(root + "/quarantine/mix/s32.btrace"));
  EXPECT_NE(slurp(root + "/quarantine/MANIFEST").find("mix/s32.btrace"),
            std::string::npos);
  // Nothing stale remains anywhere under the root.
  EXPECT_FALSE(fs::exists(root + "/spool/half-done.part"));
  EXPECT_FALSE(fs::exists(dir + "/manifest.pmx.tmp.4242"));
  fs::remove_all(root);
}

TEST(ScrubTest, ValidUnregisteredFileIsReRegisteredWithItsTrueCoreCount) {
  // A crash after COMMIT's rename but before the manifest rewrite leaves a
  // perfectly valid published file with no manifest entry.  The scrub must
  // re-register it — with the core count stream validation just proved, not
  // a guess.
  const std::string root = scratch_root("reregister");
  const std::string dir = root + "/collections/orphan";
  write_raw(dir + "/s64.btrace", trace_bytes(64));

  const ingest::ScrubReport report = ingest::scrub_ingest_root(scrub_options(root));
  EXPECT_EQ(report.files_ok, 1u);
  EXPECT_GE(report.manifest_dropped, 1u) << "the re-added entry counts as a repair";

  ingest::CollectionRegistry registry(root);
  ASSERT_TRUE(registry.contains("orphan"));
  EXPECT_EQ(registry.resolve("orphan").size(), 1u);
  EXPECT_NE(slurp(dir + "/manifest.pmx").find("file 64 s64.btrace"),
            std::string::npos);
  fs::remove_all(root);
}

TEST(ScrubTest, TornManifestIsQuarantinedAndRebuiltFromValidatedFiles) {
  const std::string root = scratch_root("tornmanifest");
  const std::string dir = root + "/collections/healed";
  const std::string s8 = trace_bytes(8);
  write_raw(dir + "/s8.btrace", s8);
  write_raw(dir + "/manifest.pmx", "garbage with no integrity trailer");

  const ingest::ScrubReport report = ingest::scrub_ingest_root(scrub_options(root));
  EXPECT_EQ(report.quarantined, 1u) << "the torn manifest moves to quarantine";
  EXPECT_EQ(report.files_ok, 1u);

  ingest::CollectionRegistry registry(root);
  ASSERT_TRUE(registry.contains("healed"));
  EXPECT_EQ(slurp(registry.resolve("healed")[0]), s8);
  fs::remove_all(root);
}

TEST(ScrubTest, AllFilesGoneRemovesTheManifestInsteadOfServingGhosts) {
  const std::string root = scratch_root("ghosts");
  const std::string dir = root + "/collections/gone";
  fs::create_directories(dir);
  util::save_checked(dir + "/manifest.pmx", "file 8 vanished.btrace\n");

  const ingest::ScrubReport report = ingest::scrub_ingest_root(scrub_options(root));
  EXPECT_GE(report.manifest_dropped, 1u);
  EXPECT_FALSE(fs::exists(dir + "/manifest.pmx"));
  ingest::CollectionRegistry registry(root);
  EXPECT_FALSE(registry.contains("gone"));
  fs::remove_all(root);
}

TEST(ScrubTest, PristineRootIsLeftUntouched) {
  const std::string root = scratch_root("pristine");
  const std::string dir = root + "/collections/clean";
  write_raw(dir + "/s8.btrace", trace_bytes(8));
  util::save_checked(dir + "/manifest.pmx", "file 8 s8.btrace\n");

  const ingest::ScrubReport report = ingest::scrub_ingest_root(scrub_options(root));
  EXPECT_FALSE(report.acted());
  EXPECT_EQ(report.files_ok, 1u);
  EXPECT_TRUE(ingest::CollectionRegistry(root).contains("clean"));
  fs::remove_all(root);
}

TEST(ScrubTest, CheckpointDirDropsTornDerivedStateOnly) {
  const std::string root = scratch_root("ckpt");
  const std::string dir = root + "/ckpt";
  fs::create_directories(dir);
  util::save_checked(dir + "/manifest.ckpt", "a valid record");
  util::save_checked(dir + "/models_0.ckpt", "another valid record");
  write_raw(dir + "/models_1.ckpt", "torn: no trailer");
  write_raw(dir + "/manifest.ckpt.tmp.777", "interrupted write");

  const ingest::ScrubReport report = ingest::scrub_checkpoint_dir(dir);
  EXPECT_EQ(report.files_ok, 2u);
  EXPECT_EQ(report.chunks_dropped, 1u);
  EXPECT_EQ(report.stale_temps, 1u);
  EXPECT_TRUE(fs::exists(dir + "/manifest.ckpt"));
  EXPECT_TRUE(fs::exists(dir + "/models_0.ckpt"));
  EXPECT_FALSE(fs::exists(dir + "/models_1.ckpt"));
  EXPECT_FALSE(fs::exists(dir + "/manifest.ckpt.tmp.777"));

  // A missing directory is a no-op, not an error (nothing fitted yet).
  EXPECT_FALSE(ingest::scrub_checkpoint_dir(root + "/never_made").acted());
  fs::remove_all(root);
}

// --------------------------------------------------- ENOSPC / read-only ------

TEST(UploadReadOnlyTest, EnospcFlipsReadOnlyAndRejectsUpFront) {
  FaultGuard guard;
  const std::string root = scratch_root("readonly");
  const std::string bytes = trace_bytes(8);

  io::FaultConfig cfg;
  cfg.enospc_after_bytes = 256;  // far less than one upload
  io::install_faults(cfg);

  ingest::UploadManager manager({root, kBudget});
  const std::uint64_t rejected_before =
      counter_value("ingest.uploads.rejected_read_only");
  bool threw = false;
  try {
    upload_file(manager, "sess-ro", "full", "s8.btrace", bytes);
  } catch (const util::Error&) {
    threw = true;  // typed, survivable — exactly what a full disk must be
  }
  EXPECT_TRUE(threw);
  EXPECT_TRUE(manager.read_only());

  // Subsequent write ops are rejected before touching the disk, with an
  // error an operator can act on; STATUS keeps answering.
  try {
    ingest::UploadRequest begin;
    begin.op = ingest::UploadOp::Begin;
    begin.session = "sess-after";
    begin.collection = "full";
    begin.file_name = "s8.btrace";
    begin.total_bytes = bytes.size();
    begin.chunk_bytes = 199;
    begin.file_crc = util::crc32(bytes);
    manager.handle(begin);
    FAIL() << "read-only mode must reject BEGIN";
  } catch (const util::Error& e) {
    EXPECT_NE(std::string(e.what()).find("read-only"), std::string::npos);
  }
  EXPECT_GE(counter_value("ingest.uploads.rejected_read_only") - rejected_before, 1u);

  ingest::UploadRequest status;
  status.op = ingest::UploadOp::Status;
  status.session = "sess-ro";
  EXPECT_FALSE(manager.handle(status).body.empty()) << "STATUS stays available";
  fs::remove_all(root);
}

TEST(UploadReadOnlyTest, RestartAfterFreeingSpaceRecoversCompletely) {
  FaultGuard guard;
  const std::string root = scratch_root("recover");
  const std::string bytes = trace_bytes(16);

  {
    io::FaultConfig cfg;
    cfg.enospc_after_bytes = 256;
    io::install_faults(cfg);
    ingest::UploadManager manager({root, kBudget});
    EXPECT_THROW(upload_file(manager, "sess-1", "col", "s16.btrace", bytes),
                 util::Error);
    EXPECT_TRUE(manager.read_only());
  }

  // The operator frees space and restarts: scrub, then a fresh manager.
  io::clear_faults();
  ingest::scrub_ingest_root(scrub_options(root));
  ingest::UploadManager manager({root, kBudget});
  EXPECT_FALSE(manager.read_only());
  const ingest::UploadOutcome outcome =
      upload_file(manager, "sess-2", "col", "s16.btrace", bytes);
  EXPECT_TRUE(outcome.committed);
  EXPECT_EQ(outcome.core_count, 16u);
  EXPECT_EQ(slurp(root + "/collections/col/s16.btrace"), bytes);
  // The aborted session's spool file did not survive the restart scrub.
  EXPECT_TRUE(fs::is_empty(root + "/spool"));
  fs::remove_all(root);
}

}  // namespace
}  // namespace pmacx
