// Sufficient-statistics tests: suffix extension must be *bitwise* identical
// to whole-series accumulation (the property incremental refitting stands
// on), the order-sensitive fingerprint must behave as a prefix check, and
// the closed-form moment fits must agree with stats::fit_form on
// well-conditioned data while refusing exactly the degenerate inputs
// fit_form refuses.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <random>
#include <vector>

#include "stats/canonical.hpp"
#include "stats/suffstats.hpp"

namespace pmacx {
namespace {

using stats::Form;
using stats::MomentFamily;
using stats::SeriesMoments;

/// Deterministic pseudo-random series over plausible core counts.
void random_series(std::mt19937_64& rng, std::size_t n, std::vector<double>* p,
                   std::vector<double>* y) {
  std::uniform_real_distribution<double> value(-1e6, 1e6);
  p->clear();
  y->clear();
  double cores = 16.0;
  for (std::size_t i = 0; i < n; ++i) {
    p->push_back(cores);
    y->push_back(value(rng));
    cores *= 2.0;
  }
}

TEST(SeriesMomentsTest, SuffixExtensionIsBitwiseIdenticalToFromSeries) {
  std::mt19937_64 rng(7);
  std::vector<double> p, y;
  for (const std::size_t n : {1u, 2u, 5u, 9u, 16u}) {
    random_series(rng, n, &p, &y);
    const SeriesMoments whole = SeriesMoments::from_series(p, y);
    for (std::size_t split = 0; split <= n; ++split) {
      SeriesMoments extended = SeriesMoments::from_series(
          std::span(p).subspan(0, split), std::span(y).subspan(0, split));
      for (std::size_t i = split; i < n; ++i) extended.add_sample(p[i], y[i]);
      // operator== compares every accumulated double with ==; identical
      // summation order makes this hold exactly, not approximately.
      EXPECT_EQ(extended, whole) << "n=" << n << " split=" << split;
    }
  }
}

TEST(SeriesMomentsTest, FingerprintIsAPrefixCheck) {
  std::mt19937_64 rng(11);
  std::vector<double> p, y;
  random_series(rng, 8, &p, &y);
  const SeriesMoments whole = SeriesMoments::from_series(p, y);

  // The stored fingerprint equals the standalone prefix fingerprint at every
  // length — so "is the new series an extension?" is one u32 comparison.
  for (std::size_t n = 0; n <= p.size(); ++n) {
    const SeriesMoments prefix = SeriesMoments::from_series(
        std::span(p).subspan(0, n), std::span(y).subspan(0, n));
    EXPECT_EQ(prefix.fingerprint, stats::series_fingerprint(p, y, n));
  }
  EXPECT_EQ(whole.fingerprint, stats::series_fingerprint(p, y, p.size()));

  // Order sensitivity: swapping two samples changes the fingerprint even
  // though every order-insensitive sum is identical.
  std::vector<double> p2 = p, y2 = y;
  std::swap(p2[2], p2[5]);
  std::swap(y2[2], y2[5]);
  EXPECT_NE(stats::series_fingerprint(p2, y2, p2.size()), whole.fingerprint);

  // A changed sample value anywhere in the prefix breaks the match.
  std::vector<double> y3 = y;
  y3[1] = std::nextafter(y3[1], 1e300);
  EXPECT_NE(stats::series_fingerprint(p, y3, p.size()), whole.fingerprint);
}

TEST(SeriesMomentsTest, SignCensusAndAxisFlags) {
  SeriesMoments sm;
  sm.add_sample(16.0, 2.0);
  sm.add_sample(32.0, -3.0);
  sm.add_sample(64.0, 0.0);
  EXPECT_EQ(sm.count, 3u);
  EXPECT_EQ(sm.pos, 1u);
  EXPECT_EQ(sm.neg, 1u);
  EXPECT_EQ(sm.zero, 1u);
  EXPECT_FALSE(sm.bad_axis);

  sm.add_sample(0.0, 1.0);  // p <= 0: log/inv/power transforms unusable
  EXPECT_TRUE(sm.bad_axis);
}

// ---------------------------------------------------------- fits vs moments --

void expect_params_near(const stats::FittedModel& got, const stats::FittedModel& want,
                        double tol) {
  ASSERT_TRUE(got.ok);
  ASSERT_TRUE(want.ok);
  EXPECT_EQ(got.form, want.form);
  for (std::size_t i = 0; i < got.params.size(); ++i) {
    const double scale = std::max(1.0, std::abs(want.params[i]));
    EXPECT_NEAR(got.params[i], want.params[i], tol * scale) << "param " << i;
  }
}

TEST(FitFromMomentsTest, AgreesWithFitFormOnCleanData) {
  const std::vector<double> p = {16, 32, 64, 128, 256, 512};
  struct Case {
    Form form;
    double (*law)(double);
    double tol;
  };
  const Case cases[] = {
      {Form::Constant, +[](double) { return 7.5; }, 1e-9},
      {Form::Linear, +[](double x) { return 3.0 + 2.0 * x; }, 1e-9},
      // The uncentered quadratic normal equations are the worst-conditioned
      // solve here (x^4 terms); rounding alone separates the two algorithms.
      {Form::Quadratic, +[](double x) { return 1.0 + 0.5 * x + 0.01 * x * x; }, 1e-3},
      {Form::Logarithmic, +[](double x) { return 2.0 + 5.0 * std::log(x); }, 1e-9},
      {Form::InverseP, +[](double x) { return 4.0 + 900.0 / x; }, 1e-9},
      {Form::Exponential, +[](double x) { return 3.0 * std::exp(0.01 * x); }, 1e-6},
      {Form::Power, +[](double x) { return 50.0 * std::pow(x, -1.5); }, 1e-6},
  };
  for (const Case& c : cases) {
    std::vector<double> y;
    for (const double x : p) y.push_back(c.law(x));
    const SeriesMoments sm = SeriesMoments::from_series(p, y);
    const stats::FittedModel direct = stats::fit_form(c.form, p, y);
    const stats::FittedModel from_moments = stats::fit_from_moments(c.form, sm);
    // Exact-law data: the normal-equation solution and the centered two-pass
    // solution coincide up to rounding (and the log-space forms' refinement
    // is a no-op on zero-residual data).
    expect_params_near(from_moments, direct, c.tol);
  }
}

TEST(FitFromMomentsTest, RefusesDegenerateInputs) {
  // Too few samples for the form's parameter count.
  {
    SeriesMoments sm;
    sm.add_sample(16.0, 1.0);
    EXPECT_FALSE(stats::fit_from_moments(Form::Linear, sm).ok);
    EXPECT_TRUE(stats::fit_from_moments(Form::Constant, sm).ok);
  }
  // Mixed-sign y: the log-space forms need one-signed data.
  {
    SeriesMoments sm;
    sm.add_sample(16.0, 1.0);
    sm.add_sample(32.0, -1.0);
    sm.add_sample(64.0, 2.0);
    EXPECT_FALSE(stats::fit_from_moments(Form::Exponential, sm).ok);
    EXPECT_FALSE(stats::fit_from_moments(Form::Power, sm).ok);
    EXPECT_TRUE(stats::fit_from_moments(Form::Linear, sm).ok);
  }
  // p <= 0 poisons every transformed axis but leaves identity-space fits.
  {
    SeriesMoments sm;
    sm.add_sample(0.0, 1.0);
    sm.add_sample(16.0, 2.0);
    sm.add_sample(32.0, 3.0);
    EXPECT_TRUE(sm.bad_axis);
    EXPECT_FALSE(stats::fit_from_moments(Form::Logarithmic, sm).ok);
    EXPECT_FALSE(stats::fit_from_moments(Form::InverseP, sm).ok);
    EXPECT_FALSE(stats::fit_from_moments(Form::Power, sm).ok);
    EXPECT_TRUE(stats::fit_from_moments(Form::Linear, sm).ok);
  }
  // All-zero y: exponential/power have no samples left after dropping zeros.
  {
    SeriesMoments sm;
    sm.add_sample(16.0, 0.0);
    sm.add_sample(32.0, 0.0);
    sm.add_sample(64.0, 0.0);
    EXPECT_FALSE(stats::fit_from_moments(Form::Exponential, sm).ok);
    EXPECT_FALSE(stats::fit_from_moments(Form::Power, sm).ok);
  }
  // Degenerate design: all samples at one abscissa.
  {
    SeriesMoments sm;
    sm.add_sample(64.0, 1.0);
    sm.add_sample(64.0, 2.0);
    sm.add_sample(64.0, 3.0);
    EXPECT_FALSE(stats::fit_from_moments(Form::Linear, sm).ok);
  }
}

TEST(FitFromMomentsTest, FamilyAccessorsMatchTransforms) {
  SeriesMoments sm;
  sm.add_sample(64.0, 10.0);
  const auto& identity = sm.family(MomentFamily::Identity);
  EXPECT_EQ(identity.n, 1u);
  EXPECT_EQ(identity.sx, 64.0);
  EXPECT_EQ(identity.sy, 10.0);
  const auto& logx = sm.family(MomentFamily::LogX);
  EXPECT_EQ(logx.sx, std::log(64.0));
  const auto& invx = sm.family(MomentFamily::InvX);
  EXPECT_EQ(invx.sx, 1.0 / 64.0);
  const auto& expy = sm.family(MomentFamily::ExpY);
  EXPECT_EQ(expy.sy, std::log(10.0));
  const auto& powxy = sm.family(MomentFamily::PowXY);
  EXPECT_EQ(powxy.sx, std::log(64.0));
  EXPECT_EQ(powxy.sy, std::log(10.0));
}

}  // namespace
}  // namespace pmacx
