// pmacx-rpc-v1 codec tests: round-trips for every message type, header
// validation (the declared length is rejected *before* any allocation), and
// the repo's standard corruption contract driven by util::faultinject —
// every truncation, bit flip, mutation, or extension of a valid frame must
// raise util::ParseError, never crash, hang, or decode to a different
// message.
#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "service/protocol.hpp"
#include "util/faultinject.hpp"
#include "util/parse_error.hpp"
#include "util/rng.hpp"

using namespace pmacx;
using namespace pmacx::service;

namespace {

Request sample_predict_request() {
  Request request;
  request.type = MsgType::Predict;
  request.spec.trace_paths = {"s16.trace", "s32.trace", "s64.trace"};
  request.spec.forms = "paper";
  request.spec.missing = "fit-present";
  request.spec.criterion = "loo";
  request.spec.tie_tolerance = 1e-6;
  request.spec.influence_threshold = 0.01;
  request.spec.reject_out_of_domain = false;
  request.spec.round_counts = true;
  request.target_cores = 6144;
  request.app = "specfem3d";
  request.work_scale = 0.5;
  request.machine_target = "bluewaters-p1";
  return request;
}

Request sample_interval_request() {
  Request request = sample_predict_request();
  request.type = MsgType::PredictInterval;
  // Predict-only fields are not carried on the wire for interval requests.
  request.app.clear();
  request.machine_target.clear();
  request.work_scale = 1.0;
  request.interval_coverage = 0.95;
  return request;
}

void expect_requests_equal(const Request& a, const Request& b) {
  EXPECT_EQ(a.type, b.type);
  EXPECT_EQ(a.spec.trace_paths, b.spec.trace_paths);
  EXPECT_EQ(a.spec.forms, b.spec.forms);
  EXPECT_EQ(a.spec.missing, b.spec.missing);
  EXPECT_EQ(a.spec.criterion, b.spec.criterion);
  EXPECT_EQ(a.spec.tie_tolerance, b.spec.tie_tolerance);
  EXPECT_EQ(a.spec.influence_threshold, b.spec.influence_threshold);
  EXPECT_EQ(a.spec.reject_out_of_domain, b.spec.reject_out_of_domain);
  EXPECT_EQ(a.spec.round_counts, b.spec.round_counts);
  EXPECT_EQ(a.target_cores, b.target_cores);
  EXPECT_EQ(a.app, b.app);
  EXPECT_EQ(a.work_scale, b.work_scale);
  EXPECT_EQ(a.machine_target, b.machine_target);
  if (a.type == MsgType::PredictInterval)
    EXPECT_EQ(a.interval_coverage, b.interval_coverage);
}

}  // namespace

TEST(ServiceProtocol, RequestRoundTripsEveryType) {
  Request predict = sample_predict_request();
  expect_requests_equal(predict, decode_request(decode_frame(encode_request(predict))));

  Request extrapolate = sample_predict_request();
  extrapolate.type = MsgType::Extrapolate;
  // Predict-only fields are not carried on the wire for other types.
  extrapolate.app.clear();
  extrapolate.machine_target.clear();
  extrapolate.work_scale = 1.0;
  expect_requests_equal(extrapolate,
                        decode_request(decode_frame(encode_request(extrapolate))));

  Request fit = extrapolate;
  fit.type = MsgType::Fit;
  fit.target_cores = 0;
  expect_requests_equal(fit, decode_request(decode_frame(encode_request(fit))));

  Request interval = sample_interval_request();
  expect_requests_equal(interval,
                        decode_request(decode_frame(encode_request(interval))));

  for (MsgType type : {MsgType::Status, MsgType::Shutdown}) {
    Request request;
    request.type = type;
    const Request decoded = decode_request(decode_frame(encode_request(request)));
    EXPECT_EQ(decoded.type, type);
  }
}

TEST(ServiceProtocol, ResponseRoundTrips) {
  for (Status status : {Status::Ok, Status::Error, Status::Busy}) {
    Response response;
    response.status = status;
    response.body = std::string("binary\0body\x7f with nulls", 23);
    const Response decoded =
        decode_response(decode_frame(encode_response(MsgType::Extrapolate, response)));
    EXPECT_EQ(decoded.status, status);
    EXPECT_EQ(decoded.body, response.body);
  }
}

TEST(ServiceProtocol, FitSpecMapsToOptions) {
  FitSpec spec;
  spec.forms = "paper";
  spec.missing = "fit-present";
  spec.criterion = "loo";
  spec.tie_tolerance = 1e-6;
  spec.reject_out_of_domain = false;
  const core::ExtrapolationOptions options = spec.to_options();
  EXPECT_EQ(options.fit.forms.size(), stats::paper_forms().size());
  EXPECT_EQ(options.missing, core::MissingPolicy::FitPresent);
  EXPECT_EQ(options.fit.criterion, stats::SelectionCriterion::LooCv);
  EXPECT_EQ(options.fit.tie_tolerance, 1e-6);
  EXPECT_FALSE(options.reject_out_of_domain);

  FitSpec bad;
  bad.forms = "kitchen-sink";
  EXPECT_THROW(bad.to_options(), util::Error);
}

TEST(ServiceProtocol, HeaderRejectsOversizedLengthBeforeAllocation) {
  std::string header = encode_request(Request{}).substr(0, kHeaderSize);
  const std::uint32_t huge = static_cast<std::uint32_t>(kMaxPayload) + 1;
  std::memcpy(header.data() + 12, &huge, 4);
  // frame_payload_size is what stream readers consult before sizing their
  // buffer, so the cap must be enforced here — not after a 4 GiB resize.
  EXPECT_THROW(frame_payload_size(header), util::ParseError);
}

TEST(ServiceProtocol, HeaderRejectsBadMagicVersionAndType) {
  const std::string good = encode_request(Request{});

  std::string bad_magic = good;
  bad_magic[0] = 'X';
  EXPECT_THROW(frame_payload_size(bad_magic), util::ParseError);

  std::string bad_version = good;
  bad_version[8] = 99;
  EXPECT_THROW(frame_payload_size(bad_version), util::ParseError);

  std::string bad_type = good;
  bad_type[10] = 77;
  EXPECT_THROW(frame_payload_size(bad_type), util::ParseError);

  EXPECT_THROW(frame_payload_size(good.substr(0, kHeaderSize - 1)), util::ParseError);
}

TEST(ServiceProtocol, DecodeRejectsTruncationTrailingBytesAndCrcDamage) {
  const std::string frame = encode_request(sample_predict_request());
  EXPECT_THROW(decode_frame(frame.substr(0, frame.size() - 1)), util::ParseError);
  EXPECT_THROW(decode_frame(frame + "x"), util::ParseError);

  std::string flipped_payload = frame;
  flipped_payload[kHeaderSize + 3] ^= 0x10;
  EXPECT_THROW(decode_frame(flipped_payload), util::ParseError);

  std::string flipped_crc = frame;
  flipped_crc.back() ^= 0x01;
  EXPECT_THROW(decode_frame(flipped_crc), util::ParseError);
}

TEST(ServiceProtocol, EveryTruncationRaisesParseError) {
  const std::string frame = encode_request(sample_predict_request());
  for (const util::Corruption& corruption : util::truncation_sweep(frame.size())) {
    const std::string damaged = util::apply_corruption(frame, corruption);
    EXPECT_THROW(
        {
          const Frame decoded = decode_frame(damaged);
          decode_request(decoded);
        },
        util::ParseError)
        << corruption.describe();
  }
}

TEST(ServiceProtocol, EveryBitFlipRaisesParseError) {
  const std::string frame = encode_request(sample_predict_request());
  // The CRC covers everything after the magic, and a magic flip fails the
  // magic check — so *every* single-bit flip must be detected.
  for (const util::Corruption& corruption : util::bit_flip_sweep(frame.size())) {
    const std::string damaged = util::apply_corruption(frame, corruption);
    EXPECT_THROW(
        {
          const Frame decoded = decode_frame(damaged);
          decode_request(decoded);
        },
        util::ParseError)
        << corruption.describe();
  }
}

TEST(ServiceProtocol, RandomCorruptionsNeverCrash) {
  const std::string frame = encode_request(sample_predict_request());
  util::Rng rng(20260806);
  for (int i = 0; i < 2000; ++i) {
    const util::Corruption corruption = util::random_corruption(rng, frame.size());
    const std::string damaged = util::apply_corruption(frame, corruption);
    if (damaged == frame) continue;  // e.g. zero-length extension
    try {
      decode_request(decode_frame(damaged));
      FAIL() << "undetected corruption: " << corruption.describe();
    } catch (const util::ParseError&) {
      // expected: the taxonomy names the section and offset
    }
  }
}

TEST(ServiceProtocol, IntervalResultRoundTrips) {
  IntervalResult result;
  result.lo = std::string("lo\0trace\x01", 9);
  result.median = std::string("median\0bytes", 12);
  result.hi = std::string("hi\xff", 3);
  result.report_csv = "block,element,lo,median,hi\n1,2,0.5,1.0,1.5\n";
  const std::string body = encode_interval_result(result);
  const IntervalResult decoded = decode_interval_result(body);
  EXPECT_EQ(decoded.lo, result.lo);
  EXPECT_EQ(decoded.median, result.median);
  EXPECT_EQ(decoded.hi, result.hi);
  EXPECT_EQ(decoded.report_csv, result.report_csv);

  // The body codec carries the same taxonomy as the frame layer: every
  // truncation and any trailing garbage must raise ParseError.
  for (std::size_t cut = 0; cut < body.size(); ++cut)
    EXPECT_THROW(decode_interval_result(body.substr(0, cut)), util::ParseError)
        << "cut " << cut;
  EXPECT_THROW(decode_interval_result(body + "x"), util::ParseError);
}

TEST(ServiceProtocol, IntervalRequestSurvivesCorruptionSweeps) {
  // PREDICT_INTERVAL frames get the full corruption contract the other
  // message types already pass: truncations, every single-bit flip, and a
  // randomized mutation sweep must all raise ParseError, never crash or
  // decode differently.
  const std::string frame = encode_request(sample_interval_request());
  for (const util::Corruption& corruption : util::truncation_sweep(frame.size())) {
    const std::string damaged = util::apply_corruption(frame, corruption);
    EXPECT_THROW(decode_request(decode_frame(damaged)), util::ParseError)
        << corruption.describe();
  }
  for (const util::Corruption& corruption : util::bit_flip_sweep(frame.size())) {
    const std::string damaged = util::apply_corruption(frame, corruption);
    EXPECT_THROW(decode_request(decode_frame(damaged)), util::ParseError)
        << corruption.describe();
  }
  util::Rng rng(20260808);
  for (int i = 0; i < 1000; ++i) {
    const util::Corruption corruption = util::random_corruption(rng, frame.size());
    const std::string damaged = util::apply_corruption(frame, corruption);
    if (damaged == frame) continue;
    try {
      decode_request(decode_frame(damaged));
      FAIL() << "undetected corruption: " << corruption.describe();
    } catch (const util::ParseError&) {
    }
  }
}

TEST(ServiceProtocol, EncodeRejectsOversizedPayload) {
  Frame frame;
  frame.type = MsgType::Status;
  // Don't actually allocate 64 MiB: a request with too many paths trips the
  // field-level cap first, which is the same contract.
  Request request;
  request.type = MsgType::Fit;
  request.spec.trace_paths.assign(1025, "t.trace");
  EXPECT_THROW(encode_request(request), util::Error);
}
