// Tests for clustered multi-task extrapolation (the paper's future-work
// Section VI direction).
#include <gtest/gtest.h>

#include <cmath>

#include "core/cluster.hpp"
#include "util/error.hpp"

namespace pmacx {
namespace {

using core::ClusterOptions;
using core::extrapolate_clustered;
using trace::BlockElement;

/// Builds a signature at `cores` whose traced ranks form two behaviour
/// groups: "bulk" ranks (first half) with heavy memory work and "halo"
/// ranks (second half) with ~100× less.
trace::AppSignature grouped_signature(std::uint32_t cores) {
  trace::AppSignature sig;
  sig.app = "clustered-demo";
  sig.core_count = cores;
  sig.target_system = "t";
  sig.demanding_rank = 0;

  const std::vector<double> fractions = {0.0, 0.25, 0.5, 0.75};
  for (double fraction : fractions) {
    const auto rank = static_cast<std::uint32_t>(fraction * cores);
    const bool bulk = fraction < 0.5;
    trace::TaskTrace task;
    task.app = sig.app;
    task.rank = rank;
    task.core_count = cores;
    task.target_system = "t";
    trace::BasicBlockRecord block;
    block.id = 1;
    block.location = {"k.c", 1, "kernel"};
    const double base = bulk ? 1e10 : 1e8;
    block.set(BlockElement::VisitCount, 10);
    block.set(BlockElement::MemLoads, base / cores);
    block.set(BlockElement::BytesPerRef, 8);
    block.set(BlockElement::HitRateL1, bulk ? 0.6 : 0.95);
    block.set(BlockElement::HitRateL2, bulk ? 0.7 : 0.97);
    block.set(BlockElement::HitRateL3, bulk ? 0.8 : 0.99);
    block.set(BlockElement::WorkingSetBytes, base / cores);
    block.set(BlockElement::Ilp, 3);
    block.set(BlockElement::DepChainLength, 4);
    task.blocks.push_back(block);
    sig.tasks.push_back(task);
  }

  for (std::uint32_t r = 0; r < cores; ++r) {
    trace::CommTrace comm;
    comm.rank = r;
    comm.core_count = cores;
    sig.comm.push_back(comm);
  }
  return sig;
}

std::vector<trace::AppSignature> grouped_series() {
  return {grouped_signature(256), grouped_signature(512), grouped_signature(1024)};
}

TEST(ClusterTest, FindsTwoBehaviourGroups) {
  const auto result = extrapolate_clustered(grouped_series(), 2048);
  EXPECT_EQ(result.k, 2u);
  ASSERT_EQ(result.clusters.size(), 2u);
  // Each cluster has half the traced ranks.
  EXPECT_EQ(result.clusters[0].member_ranks.size(), 2u);
  EXPECT_EQ(result.clusters[1].member_ranks.size(), 2u);
  EXPECT_DOUBLE_EQ(result.clusters[0].rank_share, 0.5);
}

TEST(ClusterTest, RepresentativesExtrapolateTheirGroupsLaw) {
  const auto result = extrapolate_clustered(grouped_series(), 2048);
  // The bulk cluster's representative should carry ~1e10/2048 loads, the
  // halo cluster ~1e8/2048 (within extrapolation slack for the 1/p law).
  const double bulk = result.clusters[0].representative.find_block(1)->get(
      BlockElement::MemLoads);
  const double halo = result.clusters[1].representative.find_block(1)->get(
      BlockElement::MemLoads);
  EXPECT_GT(bulk, 20.0 * halo);
  EXPECT_NEAR(bulk, 1e10 / 2048, 0.25 * (1e10 / 2048));
}

TEST(ClusterTest, RepresentativesMarkedExtrapolatedAtTarget) {
  const auto result = extrapolate_clustered(grouped_series(), 2048);
  for (const auto& cluster : result.clusters) {
    EXPECT_TRUE(cluster.representative.extrapolated);
    EXPECT_EQ(cluster.representative.core_count, 2048u);
    EXPECT_LT(cluster.representative.rank, 2048u);
  }
}

TEST(ClusterTest, RankWorkWeightsCoverAllRanks) {
  const auto result = extrapolate_clustered(grouped_series(), 2048);
  const auto weights = result.rank_work_weights(2048);
  ASSERT_EQ(weights.size(), 2048u);
  for (double w : weights) EXPECT_GT(w, 0.0);
  // Bulk ranks (early) carry more work than halo ranks (late).
  EXPECT_GT(weights.front(), weights.back());
}

TEST(ClusterTest, SingleBehaviourCollapsesToOneCluster) {
  // Make all ranks identical: elbow should settle at k=1.
  auto series = grouped_series();
  for (auto& sig : series)
    for (auto& task : sig.tasks)
      for (auto& block : task.blocks) {
        block.set(BlockElement::MemLoads, 1e9 / sig.core_count);
        block.set(BlockElement::HitRateL1, 0.9);
        block.set(BlockElement::HitRateL3, 0.95);
        block.set(BlockElement::WorkingSetBytes, 1e9 / sig.core_count);
      }
  const auto result = extrapolate_clustered(series, 2048);
  EXPECT_EQ(result.k, 1u);
}

TEST(ClusterTest, DeterministicClustering) {
  const auto a = extrapolate_clustered(grouped_series(), 2048);
  const auto b = extrapolate_clustered(grouped_series(), 2048);
  ASSERT_EQ(a.clusters.size(), b.clusters.size());
  for (std::size_t c = 0; c < a.clusters.size(); ++c)
    EXPECT_EQ(a.clusters[c].member_ranks, b.clusters[c].member_ranks);
}

TEST(ClusterTest, RejectsBadInputs) {
  std::vector<trace::AppSignature> one = {grouped_signature(256)};
  EXPECT_THROW(extrapolate_clustered(one, 2048), util::Error);

  auto unsorted = grouped_series();
  std::swap(unsorted[0], unsorted[2]);
  EXPECT_THROW(extrapolate_clustered(unsorted, 2048), util::Error);
}

}  // namespace
}  // namespace pmacx
