// Tests for communication-trace extrapolation (core/comm_extrap): exact
// reconstruction of ring topologies, affine wrap-around peers, payload-law
// recovery, load-imbalance preservation, and structural validation.
#include <gtest/gtest.h>

#include <cmath>

#include "core/comm_extrap.hpp"
#include "simmpi/replay.hpp"
#include "synth/specfem.hpp"
#include "synth/uh3d.hpp"
#include "util/error.hpp"

namespace pmacx {
namespace {

using core::CommExtrapolation;
using core::extrapolate_comm;
using trace::CommOp;

/// Comm-only signature built straight from an application model (no
/// computation traces needed for comm extrapolation... except validate()
/// wants at least one task, so a stub is included).
trace::AppSignature comm_signature(const synth::SyntheticApp& app, std::uint32_t cores) {
  trace::AppSignature signature;
  signature.app = app.name();
  signature.core_count = cores;
  signature.target_system = "t";
  signature.demanding_rank = 0;
  for (std::uint32_t rank = 0; rank < cores; ++rank)
    signature.comm.push_back(app.comm_trace(cores, rank));
  return signature;
}

template <typename App>
std::vector<trace::AppSignature> comm_series(const App& app) {
  std::vector<trace::AppSignature> series;
  for (std::uint32_t cores : {16u, 32u, 64u}) series.push_back(comm_signature(app, cores));
  return series;
}

synth::SpecfemConfig small_config() {
  synth::SpecfemConfig config;
  config.global_elements = 50'000;
  config.global_field_bytes = 1'000'000'000;
  config.timesteps = 4;
  return config;
}

// ----------------------------------------------------- reconstruction ----

TEST(CommExtrapTest, ReconstructsRingStructureExactly) {
  const synth::Specfem3dApp app(small_config());
  const auto result = extrapolate_comm(comm_series(app), 128);
  ASSERT_EQ(result.comm.size(), 128u);

  for (std::uint32_t rank : {0u, 1u, 63u, 127u}) {
    const trace::CommTrace truth = app.comm_trace(128, rank);
    const trace::CommTrace& synthesized = result.comm[rank];
    ASSERT_EQ(synthesized.events.size(), truth.events.size()) << "rank " << rank;
    for (std::size_t k = 0; k < truth.events.size(); ++k) {
      EXPECT_EQ(synthesized.events[k].op, truth.events[k].op)
          << "rank " << rank << " event " << k;
      EXPECT_EQ(synthesized.events[k].peer, truth.events[k].peer)
          << "rank " << rank << " event " << k;
    }
  }
}

TEST(CommExtrapTest, AllPeersAffine) {
  const synth::Specfem3dApp app(small_config());
  const auto result = extrapolate_comm(comm_series(app), 128);
  EXPECT_GT(result.affine_peer_events, 0u);
  EXPECT_EQ(result.carried_peer_events, 0u);  // ring deltas are exact
}

TEST(CommExtrapTest, RecoversSurfaceLawPayloads) {
  const synth::Specfem3dApp app(small_config());
  const auto result = extrapolate_comm(comm_series(app), 128);
  const trace::CommTrace truth = app.comm_trace(128, 0);
  for (std::size_t k = 0; k < truth.events.size(); ++k) {
    const double expected = static_cast<double>(truth.events[k].bytes);
    const double got = static_cast<double>(result.comm[0].events[k].bytes);
    EXPECT_NEAR(got, expected, 0.01 * expected + 2.0)
        << "event " << k << " op " << trace::comm_op_name(truth.events[k].op);
  }
}

TEST(CommExtrapTest, RecoversComputeUnitsWithinTolerance) {
  const synth::Specfem3dApp app(small_config());
  const auto result = extrapolate_comm(comm_series(app), 128);
  for (std::uint32_t rank : {0u, 64u, 127u}) {
    const trace::CommTrace truth = app.comm_trace(128, rank);
    const double expected = truth.total_compute_units();
    const double got = result.comm[rank].total_compute_units();
    EXPECT_NEAR(got, expected, 0.10 * expected) << "rank " << rank;
  }
}

TEST(CommExtrapTest, PreservesImbalanceProfile) {
  synth::SpecfemConfig config = small_config();
  config.imbalance = 0.5;  // pronounced
  const synth::Specfem3dApp app(config);
  const auto result = extrapolate_comm(comm_series(app), 128);
  // Rank 0 carries the peak; mid ranks carry the trough.
  EXPECT_GT(result.comm[0].total_compute_units(),
            1.2 * result.comm[64].total_compute_units());
}

TEST(CommExtrapTest, SynthesizedTracesReplayWithoutDeadlock) {
  const synth::Specfem3dApp app(small_config());
  const auto result = extrapolate_comm(comm_series(app), 128);
  const std::vector<double> scales(128, 1e-9);
  simmpi::NetworkModel net;
  EXPECT_NO_THROW(simmpi::replay(simmpi::timelines_from_comm(result.comm, scales), net));
}

TEST(CommExtrapTest, WorksForUh3dPattern) {
  synth::Uh3dConfig config;
  config.global_particles = 1'000'000;
  config.global_grid_cells = 100'000;
  config.timesteps = 5;  // exercises the alltoall-every-5 path
  const synth::Uh3dApp app(config);
  const auto result = extrapolate_comm(comm_series(app), 256);
  const trace::CommTrace truth = app.comm_trace(256, 3);
  ASSERT_EQ(result.comm[3].events.size(), truth.events.size());
  for (std::size_t k = 0; k < truth.events.size(); ++k) {
    EXPECT_EQ(result.comm[3].events[k].op, truth.events[k].op);
    EXPECT_EQ(result.comm[3].events[k].peer, truth.events[k].peer);
  }
}

// ---------------------------------------------------------- validation ----

TEST(CommExtrapTest, RejectsTooFewInputs) {
  const synth::Specfem3dApp app(small_config());
  std::vector<trace::AppSignature> one = {comm_signature(app, 16)};
  EXPECT_THROW(extrapolate_comm(one, 128), util::Error);
}

TEST(CommExtrapTest, RejectsNonIncreasingCores) {
  const synth::Specfem3dApp app(small_config());
  std::vector<trace::AppSignature> series = {comm_signature(app, 32),
                                             comm_signature(app, 16)};
  EXPECT_THROW(extrapolate_comm(series, 128), util::Error);
}

TEST(CommExtrapTest, RejectsStructureDrift) {
  const synth::Specfem3dApp app(small_config());
  auto series = comm_series(app);
  series[1].comm[0].events.pop_back();  // different event count at 32 cores
  EXPECT_THROW(extrapolate_comm(series, 128), util::Error);
}

TEST(CommExtrapTest, RejectsOpDrift) {
  const synth::Specfem3dApp app(small_config());
  auto series = comm_series(app);
  series[1].comm[0].events.back().op = CommOp::Barrier;  // op mismatch
  EXPECT_THROW(extrapolate_comm(series, 128), util::Error);
}

TEST(CommExtrapTest, RejectsOddTarget) {
  const synth::Specfem3dApp app(small_config());
  EXPECT_THROW(extrapolate_comm(comm_series(app), 127), util::Error);
}

TEST(CommExtrapTest, RejectsMissingCommCoverage) {
  const synth::Specfem3dApp app(small_config());
  auto series = comm_series(app);
  series[0].comm.pop_back();
  EXPECT_THROW(extrapolate_comm(series, 128), util::Error);
}

TEST(CommExtrapTest, ExtrapolatingToAnInputCountReproducesIt) {
  // Consistency law: synthesizing comm at a core count we actually have
  // must reproduce the real timelines (ops, peers, bytes within fit noise).
  const synth::Specfem3dApp app(small_config());
  auto series = comm_series(app);  // {16, 32, 64}
  const auto result = extrapolate_comm(series, 64);
  for (std::uint32_t rank : {0u, 1u, 33u}) {
    const trace::CommTrace& truth = series.back().comm[rank];
    ASSERT_EQ(result.comm[rank].events.size(), truth.events.size());
    for (std::size_t k = 0; k < truth.events.size(); ++k) {
      EXPECT_EQ(result.comm[rank].events[k].op, truth.events[k].op);
      EXPECT_EQ(result.comm[rank].events[k].peer, truth.events[k].peer);
      const double expected = static_cast<double>(truth.events[k].bytes);
      EXPECT_NEAR(static_cast<double>(result.comm[rank].events[k].bytes), expected,
                  0.02 * expected + 2.0);
    }
  }
}

TEST(CommExtrapTest, Deterministic) {
  const synth::Specfem3dApp app(small_config());
  const auto a = extrapolate_comm(comm_series(app), 128);
  const auto b = extrapolate_comm(comm_series(app), 128);
  ASSERT_EQ(a.comm.size(), b.comm.size());
  for (std::size_t r = 0; r < a.comm.size(); ++r) EXPECT_EQ(a.comm[r], b.comm[r]);
}

}  // namespace
}  // namespace pmacx
