// Unit tests for the multi-level hierarchy, scope accounting and the
// working-set tracker.
#include <gtest/gtest.h>

#include "memsim/hierarchy.hpp"
#include "memsim/working_set.hpp"
#include "util/error.hpp"

namespace pmacx {
namespace {

using memsim::AccessCounters;
using memsim::CacheHierarchy;
using memsim::CacheLevelConfig;
using memsim::HierarchyConfig;
using memsim::MemRef;

HierarchyConfig two_level() {
  CacheLevelConfig l1;
  l1.name = "L1";
  l1.size_bytes = 4 * 64;  // 4 lines
  l1.line_bytes = 64;
  l1.associativity = 0;
  CacheLevelConfig l2 = l1;
  l2.name = "L2";
  l2.size_bytes = 16 * 64;  // 16 lines
  HierarchyConfig cfg;
  cfg.name = "test-2l";
  cfg.levels = {l1, l2};
  return cfg;
}

MemRef load(std::uint64_t addr, std::uint32_t size = 8) { return {addr, size, false}; }
MemRef store(std::uint64_t addr, std::uint32_t size = 8) { return {addr, size, true}; }

TEST(HierarchyTest, ColdMissGoesToMemory) {
  CacheHierarchy h(two_level());
  h.access(load(0));
  EXPECT_EQ(h.totals().memory_accesses, 1u);
  EXPECT_EQ(h.totals().level_hits[0], 0u);
  EXPECT_EQ(h.totals().level_hits[1], 0u);
}

TEST(HierarchyTest, SecondAccessHitsL1) {
  CacheHierarchy h(two_level());
  h.access(load(0));
  h.access(load(0));
  EXPECT_EQ(h.totals().level_hits[0], 1u);
}

TEST(HierarchyTest, L2CatchesL1Evictions) {
  CacheHierarchy h(two_level());
  // Touch 8 distinct lines (L1 holds 4, L2 holds 16), then re-touch the
  // first: it must hit L2, not memory.
  for (std::uint64_t line = 0; line < 8; ++line) h.access(load(line * 64));
  h.access(load(0));
  EXPECT_EQ(h.totals().level_hits[1], 1u);
  EXPECT_EQ(h.totals().memory_accesses, 8u);
}

TEST(HierarchyTest, CumulativeHitRatesAreMonotone) {
  CacheHierarchy h(two_level());
  for (std::uint64_t i = 0; i < 400; ++i) h.access(load((i % 10) * 64));
  const AccessCounters& t = h.totals();
  const double hr1 = t.cumulative_hit_rate(0);
  const double hr2 = t.cumulative_hit_rate(1);
  EXPECT_LE(hr1, hr2);
  EXPECT_GT(hr2, 0.9);  // 10 lines fit in L2 entirely
}

TEST(HierarchyTest, LoadsStoresBytesCounted) {
  CacheHierarchy h(two_level());
  h.access(load(0, 8));
  h.access(store(64, 16));
  EXPECT_EQ(h.totals().refs, 2u);
  EXPECT_EQ(h.totals().loads, 1u);
  EXPECT_EQ(h.totals().stores, 1u);
  EXPECT_EQ(h.totals().bytes, 24u);
}

TEST(HierarchyTest, StraddlingRefTouchesTwoLines) {
  CacheHierarchy h(two_level());
  h.access(load(60, 8));  // crosses the line boundary at 64
  EXPECT_EQ(h.totals().line_accesses, 2u);
  EXPECT_EQ(h.totals().refs, 1u);
}

TEST(HierarchyTest, ScopesAccumulateIndependently) {
  CacheHierarchy h(two_level());
  h.set_scope(1);
  h.access(load(0));
  h.access(load(0));
  h.set_scope(2);
  h.access(load(0));
  EXPECT_EQ(h.scope(1).refs, 2u);
  EXPECT_EQ(h.scope(2).refs, 1u);
  EXPECT_EQ(h.scope(2).level_hits[0], 1u);  // warmed by scope 1
  EXPECT_EQ(h.totals().refs, 3u);
}

TEST(HierarchyTest, UnknownScopeIsZeroed) {
  CacheHierarchy h(two_level());
  EXPECT_EQ(h.scope(42).refs, 0u);
}

TEST(HierarchyTest, ResetClearsEverything) {
  CacheHierarchy h(two_level());
  h.set_scope(1);
  h.access(load(0));
  h.reset();
  EXPECT_EQ(h.totals().refs, 0u);
  EXPECT_EQ(h.scope(1).refs, 0u);
  h.access(load(0));
  EXPECT_EQ(h.totals().memory_accesses, 1u);  // cache contents gone too
}

TEST(HierarchyTest, ZeroSizeRefThrows) {
  CacheHierarchy h(two_level());
  EXPECT_THROW(h.access(load(0, 0)), util::Error);
}

TEST(HierarchyTest, CountersMerge) {
  AccessCounters a, b;
  a.refs = 1;
  a.level_hits[0] = 1;
  a.line_accesses = 2;
  b.refs = 2;
  b.level_hits[1] = 3;
  b.line_accesses = 4;
  b.memory_accesses = 1;
  a.merge(b);
  EXPECT_EQ(a.refs, 3u);
  EXPECT_EQ(a.level_hits[0], 1u);
  EXPECT_EQ(a.level_hits[1], 3u);
  EXPECT_EQ(a.line_accesses, 6u);
  EXPECT_EQ(a.memory_accesses, 1u);
}

TEST(HierarchyTest, HitRateOfEmptyCountersIsZero) {
  AccessCounters c;
  EXPECT_DOUBLE_EQ(c.cumulative_hit_rate(0), 0.0);
  EXPECT_THROW(c.cumulative_hit_rate(99), util::Error);
}

// ------------------------------------------------------------ working set ----

TEST(WorkingSetTest, CountsDistinctLines) {
  memsim::WorkingSetTracker ws(64);
  ws.touch(0, 8);
  ws.touch(8, 8);    // same line
  ws.touch(64, 8);   // second line
  EXPECT_EQ(ws.total_lines(), 2u);
  EXPECT_EQ(ws.total_bytes(), 128u);
}

TEST(WorkingSetTest, StraddleCountsBothLines) {
  memsim::WorkingSetTracker ws(64);
  ws.touch(60, 8);
  EXPECT_EQ(ws.total_lines(), 2u);
}

TEST(WorkingSetTest, PerScopeFootprints) {
  memsim::WorkingSetTracker ws(64);
  ws.set_scope(1);
  ws.touch(0, 8);
  ws.set_scope(2);
  ws.touch(0, 8);
  ws.touch(128, 8);
  EXPECT_EQ(ws.scope_bytes(1), 64u);
  EXPECT_EQ(ws.scope_bytes(2), 128u);
  EXPECT_EQ(ws.scope_bytes(3), 0u);
  EXPECT_EQ(ws.total_bytes(), 128u);  // line 0 shared between scopes
}

TEST(WorkingSetTest, ResetForgets) {
  memsim::WorkingSetTracker ws(64);
  ws.touch(0, 8);
  ws.reset();
  EXPECT_EQ(ws.total_bytes(), 0u);
}

TEST(WorkingSetTest, RejectsBadLineSizeAndZeroTouch) {
  EXPECT_THROW(memsim::WorkingSetTracker(48), util::Error);
  memsim::WorkingSetTracker ws(64);
  EXPECT_THROW(ws.touch(0, 0), util::Error);
}

}  // namespace
}  // namespace pmacx
