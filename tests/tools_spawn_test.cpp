// Regression tests for tools/serve_spawn.hpp: banner parsing and the
// Supervisor's restart contract — a crashed child is reaped and respawned
// with growing backoff, a clean exit stays down, terminate_all reaps the
// fleet.  Children are /bin/sh scripts printing the banner themselves, so
// the tests need no server binary and run in milliseconds.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <chrono>
#include <string>
#include <thread>

#include "serve_spawn.hpp"
#include "util/error.hpp"

namespace pmacx {
namespace {

using tools::SpawnSpec;
using tools::Supervisor;

SpawnSpec shell(const std::string& script) {
  SpawnSpec spec;
  spec.binary = "/bin/sh";
  spec.args = {"-c", script};
  spec.tool = "tools_spawn_test";
  return spec;
}

/// Drives supervisor.poll() at ~2ms cadence for up to `budget`.
void poll_for(Supervisor& supervisor, std::chrono::milliseconds budget) {
  const auto deadline = std::chrono::steady_clock::now() + budget;
  while (std::chrono::steady_clock::now() < deadline) {
    supervisor.poll();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

TEST(SpawnChildTest, ParsesThePortFromTheBanner) {
  const tools::SpawnedServer server =
      tools::spawn_child(shell("echo 'x listening on 127.0.0.1:4242'; exec sleep 30"));
  EXPECT_EQ(server.port, 4242);
  EXPECT_GT(server.pid, 0);
  ::kill(server.pid, SIGKILL);
  int status = 0;
  ::waitpid(server.pid, &status, 0);
}

TEST(SpawnChildTest, RejectsAChildThatNeverPrintsTheBanner) {
  EXPECT_THROW(tools::spawn_child(shell("exit 3")), util::Error);
  // `exec` so the SIGKILL spawn_child sends on a bad banner hits the sleeper
  // itself — a forked grandchild would outlive the test holding stderr open.
  EXPECT_THROW(tools::spawn_child(shell("echo 'not a banner'; exec sleep 30")),
               util::Error);
}

TEST(SupervisorTest, RestartsACrashedChildWithGrowingBackoff) {
  Supervisor supervisor(/*initial_backoff_ms=*/10, /*max_backoff_ms=*/200);
  // The child prints its banner, then crashes (exit 3 = abnormal): every
  // respawn crashes again, so restarts accumulate and backoff doubles.
  supervisor.add(shell("echo 'x listening on 127.0.0.1:4242'; exit 3"));

  poll_for(supervisor, std::chrono::milliseconds(2'000));

  const Supervisor::Child& child = supervisor.child(0);
  EXPECT_GE(child.restarts, 2u) << "a crashing child must be respawned repeatedly";
  EXPECT_GT(child.backoff_ms, 10u) << "backoff must grow beyond the initial value";
  EXPECT_LE(child.backoff_ms, 200u) << "backoff must respect the cap";
  EXPECT_FALSE(child.done) << "a crasher is never marked clean";
  EXPECT_EQ(child.port, 4242) << "respawns keep the pinned port";
}

TEST(SupervisorTest, LeavesACleanlyExitedChildDown) {
  Supervisor supervisor(10, 200);
  supervisor.add(shell("echo 'x listening on 127.0.0.1:4242'; exit 0"));

  poll_for(supervisor, std::chrono::milliseconds(300));

  const Supervisor::Child& child = supervisor.child(0);
  EXPECT_TRUE(child.done) << "exit 0 is an orderly drain, not a crash";
  EXPECT_FALSE(child.alive);
  EXPECT_EQ(child.restarts, 0u) << "restart-on-crash must not fight a clean exit";
}

TEST(SupervisorTest, KillChildReportsLiveness) {
  Supervisor supervisor(10, 200);
  const std::size_t index =
      supervisor.add(shell("echo 'x listening on 127.0.0.1:4242'; exec sleep 30"));
  EXPECT_TRUE(supervisor.alive(index));
  EXPECT_TRUE(supervisor.kill_child(index, SIGKILL));

  // poll() reaps the kill and (SIGKILL = abnormal) schedules a respawn.
  poll_for(supervisor, std::chrono::milliseconds(200));
  EXPECT_GE(supervisor.restarts(index), 1u)
      << "a SIGKILLed child is a crash: it must come back";

  supervisor.terminate_all();
  EXPECT_FALSE(supervisor.kill_child(index, SIGKILL))
      << "kill_child on a terminated child reports it down";
}

TEST(SupervisorTest, TerminateAllReapsTheFleet) {
  Supervisor supervisor(10, 200);
  for (int i = 0; i < 3; ++i)
    supervisor.add(shell("trap 'exit 0' TERM; echo 'x listening on 127.0.0.1:4242'; "
                         "while :; do sleep 1; done"));
  EXPECT_EQ(supervisor.poll(), 3u);

  supervisor.terminate_all();
  for (std::size_t i = 0; i < supervisor.size(); ++i) {
    EXPECT_FALSE(supervisor.alive(i));
    // Reaped, not leaked: a second waitpid finds no such child.
    int status = 0;
    EXPECT_EQ(::waitpid(supervisor.pid(i), &status, WNOHANG), -1);
  }
  EXPECT_EQ(supervisor.poll(), 0u) << "terminated children stay down";
}

}  // namespace
}  // namespace pmacx
