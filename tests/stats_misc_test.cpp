// Tests for descriptive statistics, k-means clustering and interpolation.
#include <gtest/gtest.h>

#include <cmath>

#include "stats/descriptive.hpp"
#include "stats/interp.hpp"
#include "stats/kmeans.hpp"
#include "util/error.hpp"

namespace pmacx {
namespace {

// ---------------------------------------------------------- descriptive ----

TEST(DescriptiveTest, SummaryBasics) {
  const std::vector<double> values = {4, 1, 3, 2};
  const auto s = stats::summarize(values);
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.min, 1);
  EXPECT_DOUBLE_EQ(s.max, 4);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.median, 2.5);
  EXPECT_DOUBLE_EQ(s.sum, 10);
  EXPECT_NEAR(s.stddev, std::sqrt(1.25), 1e-12);
}

TEST(DescriptiveTest, OddMedian) {
  const std::vector<double> values = {9, 1, 5};
  EXPECT_DOUBLE_EQ(stats::summarize(values).median, 5);
}

TEST(DescriptiveTest, EmptySummaryZeroed) {
  const auto s = stats::summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0);
}

TEST(DescriptiveTest, AbsoluteRelativeError) {
  EXPECT_DOUBLE_EQ(stats::absolute_relative_error(110, 100), 0.1);
  EXPECT_DOUBLE_EQ(stats::absolute_relative_error(90, 100), 0.1);
  EXPECT_DOUBLE_EQ(stats::absolute_relative_error(0, 0), 0.0);
  EXPECT_TRUE(std::isinf(stats::absolute_relative_error(1, 0)));
}

TEST(DescriptiveTest, EuclideanDistance) {
  const std::vector<double> a = {0, 0};
  const std::vector<double> b = {3, 4};
  EXPECT_DOUBLE_EQ(stats::euclidean_distance(a, b), 5.0);
  EXPECT_THROW(stats::euclidean_distance(a, std::vector<double>{1}), util::Error);
}

// --------------------------------------------------------------- kmeans ----

std::vector<std::vector<double>> two_blobs() {
  std::vector<std::vector<double>> points;
  for (int i = 0; i < 10; ++i) points.push_back({0.0 + i * 0.01, 0.0});
  for (int i = 0; i < 10; ++i) points.push_back({10.0 + i * 0.01, 10.0});
  return points;
}

TEST(KMeansTest, SeparatesTwoBlobs) {
  const auto points = two_blobs();
  const auto result = stats::kmeans(points, 2);
  ASSERT_EQ(result.centroids.size(), 2u);
  // All points of one blob share a cluster, blobs differ.
  for (int i = 1; i < 10; ++i) EXPECT_EQ(result.assignment[i], result.assignment[0]);
  for (int i = 11; i < 20; ++i) EXPECT_EQ(result.assignment[i], result.assignment[10]);
  EXPECT_NE(result.assignment[0], result.assignment[10]);
  EXPECT_LT(result.inertia, 0.1);
}

TEST(KMeansTest, DeterministicForSeed) {
  const auto points = two_blobs();
  const auto a = stats::kmeans(points, 2);
  const auto b = stats::kmeans(points, 2);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.inertia, b.inertia);
}

TEST(KMeansTest, KEqualsOneCentroidIsMean) {
  const std::vector<std::vector<double>> points = {{0, 0}, {2, 2}, {4, 4}};
  const auto result = stats::kmeans(points, 1);
  ASSERT_EQ(result.centroids.size(), 1u);
  EXPECT_DOUBLE_EQ(result.centroids[0][0], 2.0);
  EXPECT_DOUBLE_EQ(result.centroids[0][1], 2.0);
}

TEST(KMeansTest, KEqualsNPerfect) {
  const std::vector<std::vector<double>> points = {{0, 0}, {5, 5}, {9, 1}};
  const auto result = stats::kmeans(points, 3);
  EXPECT_NEAR(result.inertia, 0.0, 1e-12);
}

TEST(KMeansTest, IdenticalPointsHandled) {
  const std::vector<std::vector<double>> points(5, std::vector<double>{1.0, 1.0});
  const auto result = stats::kmeans(points, 2);
  EXPECT_NEAR(result.inertia, 0.0, 1e-12);
}

TEST(KMeansTest, InvalidArgumentsThrow) {
  const auto points = two_blobs();
  EXPECT_THROW(stats::kmeans(points, 0), util::Error);
  EXPECT_THROW(stats::kmeans(points, points.size() + 1), util::Error);
  EXPECT_THROW(stats::kmeans({}, 1), util::Error);
}

TEST(KMeansTest, InconsistentDimensionsThrow) {
  const std::vector<std::vector<double>> points = {{1, 2}, {1}};
  EXPECT_THROW(stats::kmeans(points, 1), util::Error);
}

TEST(KMeansTest, ElbowFindsTwoBlobs) {
  const auto points = two_blobs();
  EXPECT_EQ(stats::pick_k_elbow(points, 5), 2u);
}

TEST(KMeansTest, ElbowOnUniformDataStaysSmall) {
  std::vector<std::vector<double>> points;
  for (int i = 0; i < 16; ++i)
    points.push_back({static_cast<double>(i % 4), static_cast<double>(i / 4)});
  EXPECT_LE(stats::pick_k_elbow(points, 8), 4u);
}

// --------------------------------------------------------------- interp ----

TEST(InterpTest, Interp1Midpoints) {
  const std::vector<double> xs = {0, 10};
  const std::vector<double> ys = {0, 100};
  EXPECT_DOUBLE_EQ(stats::interp1(xs, ys, 5), 50);
  EXPECT_DOUBLE_EQ(stats::interp1(xs, ys, 0), 0);
  EXPECT_DOUBLE_EQ(stats::interp1(xs, ys, 10), 100);
}

TEST(InterpTest, Interp1ClampsOutside) {
  const std::vector<double> xs = {1, 2};
  const std::vector<double> ys = {10, 20};
  EXPECT_DOUBLE_EQ(stats::interp1(xs, ys, -5), 10);
  EXPECT_DOUBLE_EQ(stats::interp1(xs, ys, 99), 20);
}

TEST(InterpTest, Interp1SinglePoint) {
  const std::vector<double> xs = {3};
  const std::vector<double> ys = {7};
  EXPECT_DOUBLE_EQ(stats::interp1(xs, ys, 100), 7);
}

TEST(InterpTest, Interp1RejectsUnsortedAndMismatch) {
  const std::vector<double> bad = {2, 1};
  const std::vector<double> ys = {1, 2};
  EXPECT_THROW(stats::interp1(bad, ys, 1), util::Error);
  EXPECT_THROW(stats::interp1(std::vector<double>{1}, ys, 1), util::Error);
}

TEST(InterpTest, Grid2BilinearCenter) {
  // f(x,y) = x + 10y on a 2x2 grid; bilinear is exact for affine functions.
  stats::Grid2 grid({0, 1}, {0, 1}, {0, 10, 1, 11});
  EXPECT_DOUBLE_EQ(grid.at(0.5, 0.5), 5.5);
  EXPECT_DOUBLE_EQ(grid.at(0, 0), 0);
  EXPECT_DOUBLE_EQ(grid.at(1, 1), 11);
}

TEST(InterpTest, Grid2ClampsToBox) {
  stats::Grid2 grid({0, 1}, {0, 1}, {0, 10, 1, 11});
  EXPECT_DOUBLE_EQ(grid.at(-1, -1), 0);
  EXPECT_DOUBLE_EQ(grid.at(2, 2), 11);
}

TEST(InterpTest, Grid2DegenerateRowsAndColumns) {
  stats::Grid2 row({0}, {0, 1}, {5, 9});
  EXPECT_DOUBLE_EQ(row.at(99, 0.5), 7);
  stats::Grid2 col({0, 1}, {0}, {5, 9});
  EXPECT_DOUBLE_EQ(col.at(0.5, 99), 7);
  stats::Grid2 point({0}, {0}, {4});
  EXPECT_DOUBLE_EQ(point.at(1, 1), 4);
}

TEST(InterpTest, Grid2RejectsBadShapes) {
  EXPECT_THROW(stats::Grid2({0, 1}, {0, 1}, {1, 2, 3}), util::Error);
  EXPECT_THROW(stats::Grid2({1, 0}, {0, 1}, {1, 2, 3, 4}), util::Error);
}

}  // namespace
}  // namespace pmacx
