// Extension E1 — a third application (HPCG-like CG solver).
//
// The paper evaluates two applications; the main soundness limitation of
// its evidence is breadth.  This experiment runs the identical Table I
// protocol on a structurally different third workload: a preconditioned
// conjugate-gradient solve (HPCG's shape) at {512, 1024, 2048} → 4096
// cores, with *both* the computation trace and the communication traces
// extrapolated (the fully trace-derived mode).
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "core/pipeline.hpp"
#include "stats/descriptive.hpp"
#include "synth/hpcg.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace pmacx;
  bench::banner("Extension E1 — Table I protocol on a third application (HPCG-like)");

  const auto& machine = bench::bluewaters_profile();

  synth::HpcgConfig app_config;
  app_config.work_scale = 150;  // production-length solve folded in
  const synth::HpcgApp app(app_config);

  bench::Experiment experiment{"HPCG", {512, 1024, 2048}, 4096};
  auto config = bench::pipeline_for(experiment, machine);
  config.extrapolate_comm = true;  // fully trace-derived target signature

  const auto result = core::run_pipeline(app, machine, config);
  const double measured = result.measured->runtime_seconds;

  util::Table table(
      {"Application", "Core Count", "Trace Type", "Predicted Runtime (s)", "% Error"});
  auto row = [&](const char* type, double predicted) {
    table.add_row({experiment.name, std::to_string(experiment.target_core_count), type,
                   util::format("%.1f", predicted),
                   util::human_percent(stats::absolute_relative_error(predicted, measured), 1)});
  };
  row("Extrap.", result.prediction_from_extrapolated.runtime_seconds);
  row("Coll.", result.prediction_from_collected->runtime_seconds);
  table.print(std::cout, util::format("measured (reference-simulated) runtime: %.1f s",
                                      measured));

  std::printf("\n%s\n", result.report.summary().c_str());
  std::printf(
      "Reading: the methodology generalizes to a third, synchronization-bound\n"
      "workload at the same accuracy level — the breadth the paper's own\n"
      "evaluation lacked.\n");
  return 0;
}
