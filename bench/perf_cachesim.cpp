// Microbenchmark P1 — cache-simulator throughput.
//
// The tracer's cost is dominated by the on-the-fly cache simulation, so its
// throughput bounds how cheap "collect at small core counts" really is.
// Measured per access pattern and per hierarchy depth.
#include <benchmark/benchmark.h>

#include <vector>

#include "machine/targets.hpp"
#include "memsim/hierarchy.hpp"
#include "memsim/parallel_replay.hpp"
#include "memsim/ref_block.hpp"
#include "memsim/reuse.hpp"
#include "reference_sim.hpp"
#include "synth/patterns.hpp"
#include "util/arena.hpp"
#include "util/threadpool.hpp"

namespace {

using namespace pmacx;

synth::RefStream make_stream(synth::Pattern pattern, std::uint64_t footprint) {
  synth::StreamSpec spec;
  spec.pattern = pattern;
  spec.base_addr = 1ull << 40;
  spec.footprint_bytes = footprint;
  spec.elem_bytes = 8;
  spec.stride_elems = 4;
  spec.store_fraction = 0.3;
  return synth::RefStream(spec, 42);
}

// Shared staging for the gate pair below: both sides replay the same
// pre-staged 1M-reference window, so the measured ratio isolates the
// simulator implementations (staging/generation excluded from both).
constexpr std::size_t kStagedBlockRefs = 16384;
constexpr std::size_t kStagedBlocks = 64;

std::vector<memsim::RefBlockBuilder> stage_blocks(util::Arena& arena,
                                                  synth::Pattern pattern,
                                                  std::uint64_t footprint) {
  auto stream = make_stream(pattern, footprint);
  std::vector<memsim::RefBlockBuilder> blocks;
  blocks.reserve(kStagedBlocks);
  for (std::size_t b = 0; b < kStagedBlocks; ++b) {
    blocks.emplace_back(arena, kStagedBlockRefs);
    while (!blocks.back().full()) {
      const memsim::MemRef ref = stream.next();
      blocks.back().push(ref.addr, ref.size, ref.is_store);
    }
  }
  return blocks;
}

void BM_HierarchyAccess(benchmark::State& state) {
  const auto pattern = static_cast<synth::Pattern>(state.range(0));
  const std::uint64_t footprint = 1ull << state.range(1);
  memsim::CacheHierarchy hierarchy(machine::bluewaters_p1().hierarchy);
  auto stream = make_stream(pattern, footprint);
  hierarchy.set_scope(1);
  for (auto _ : state) {
    hierarchy.access(stream.next());
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(synth::pattern_name(pattern) + "/" +
                 std::to_string(footprint >> 20) + "MiB");
}
BENCHMARK(BM_HierarchyAccess)
    ->Args({static_cast<int>(synth::Pattern::Sequential), 24})
    ->Args({static_cast<int>(synth::Pattern::Strided), 24})
    ->Args({static_cast<int>(synth::Pattern::Random), 24})
    ->Args({static_cast<int>(synth::Pattern::Random), 21})
    ->Args({static_cast<int>(synth::Pattern::Stencil3d), 24});

void BM_HierarchyReplayBlock(benchmark::State& state) {
  // The grouped block fast path over the same streams BM_HierarchyAccess
  // drives one reference at a time (items/sec are refs/sec in both, so the
  // bench gate can compare them directly).  Blocks are staged once up
  // front and cycled — the tracer stages each reference exactly once as it
  // decodes, so replay throughput is the quantity the simulator bounds —
  // and a full cycle covers a 1M-reference window of the stream.
  const auto pattern = static_cast<synth::Pattern>(state.range(0));
  const std::uint64_t footprint = 1ull << state.range(1);
  memsim::CacheHierarchy hierarchy(machine::bluewaters_p1().hierarchy);
  hierarchy.set_scope(1);
  util::Arena arena;
  const auto blocks = stage_blocks(arena, pattern, footprint);
  std::size_t next = 0;
  for (auto _ : state) {
    hierarchy.access_block(blocks[next].block());
    next = (next + 1) % kStagedBlocks;
  }
  state.SetItemsProcessed(state.iterations() * kStagedBlockRefs);
  state.SetLabel(synth::pattern_name(pattern) + "/" +
                 std::to_string(footprint >> 20) + "MiB");
}
BENCHMARK(BM_HierarchyReplayBlock)
    ->Args({static_cast<int>(synth::Pattern::Sequential), 24})
    ->Args({static_cast<int>(synth::Pattern::Strided), 24})
    ->Args({static_cast<int>(synth::Pattern::Random), 24})
    ->Args({static_cast<int>(synth::Pattern::Random), 21})
    ->Args({static_cast<int>(synth::Pattern::Stencil3d), 24});

void BM_ReferenceHierarchyAccess(benchmark::State& state) {
  // The pre-refactor array-of-structs per-reference simulator
  // (bench/reference_sim.hpp), replaying the same pre-staged blocks as
  // BM_HierarchyReplayBlock one reference at a time.  The speedup gate
  // (tools/bench_compare.py speedup) divides the block path's items/sec by
  // this — both numbers come from the same run on the same machine, so the
  // enforced ratio cannot drift with host speed the way a comparison
  // against a checked-in baseline value would.
  const auto pattern = static_cast<synth::Pattern>(state.range(0));
  const std::uint64_t footprint = 1ull << state.range(1);
  bench::ReferenceHierarchy hierarchy(machine::bluewaters_p1().hierarchy);
  util::Arena arena;
  const auto blocks = stage_blocks(arena, pattern, footprint);
  std::size_t next = 0;
  for (auto _ : state) {
    const memsim::RefBlock block = blocks[next].block();
    for (std::size_t i = 0; i < block.count; ++i)
      hierarchy.access({block.addr[i], block.size[i], block.is_store[i] != 0});
    next = (next + 1) % kStagedBlocks;
  }
  state.SetItemsProcessed(state.iterations() * kStagedBlockRefs);
  state.SetLabel(synth::pattern_name(pattern) + "/" +
                 std::to_string(footprint >> 20) + "MiB");
}
BENCHMARK(BM_ReferenceHierarchyAccess)
    ->Args({static_cast<int>(synth::Pattern::Sequential), 24})
    ->Args({static_cast<int>(synth::Pattern::Strided), 24})
    ->Args({static_cast<int>(synth::Pattern::Random), 24})
    ->Args({static_cast<int>(synth::Pattern::Random), 21})
    ->Args({static_cast<int>(synth::Pattern::Stencil3d), 24});

void BM_ReuseDistance(benchmark::State& state) {
  const std::uint64_t footprint = 1ull << state.range(0);
  auto stream = make_stream(synth::Pattern::Random, footprint);
  memsim::ReuseDistanceAnalyzer analyzer;
  for (auto _ : state) {
    analyzer.access(stream.next().addr >> 6);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReuseDistance)->Arg(18)->Arg(22);

void BM_RankReplayThreaded(benchmark::State& state) {
  // Independent rank hierarchies replayed concurrently — the memsim side of
  // the parallel pipeline (each rank owns its hierarchy and stream).
  const auto threads = static_cast<std::size_t>(state.range(0));
  constexpr std::uint32_t kRanks = 8;
  constexpr std::uint64_t kRefs = 200'000;
  const memsim::HierarchyConfig config = machine::bluewaters_p1().hierarchy;
  const memsim::RankStreamFactory factory = [](std::uint32_t rank) {
    synth::StreamSpec spec;
    spec.pattern = synth::Pattern::Strided;
    spec.base_addr = (1ull << 40) + (static_cast<std::uint64_t>(rank) << 30);
    spec.footprint_bytes = 1ull << 22;
    spec.elem_bytes = 8;
    spec.stride_elems = 4;
    spec.store_fraction = 0.3;
    synth::RefStream stream(spec, 42 + rank);
    return [stream]() mutable { return stream.next(); };
  };
  util::ThreadPool pool(threads);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        memsim::replay_ranks(config, kRanks, kRefs, factory, &pool));
  }
  state.SetItemsProcessed(state.iterations() * kRanks * kRefs);
  state.SetLabel(std::to_string(threads) + "thr");
}
BENCHMARK(BM_RankReplayThreaded)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_ScopeSwitching(benchmark::State& state) {
  // Cost of per-instruction scope attribution in the tracer's hot loop.
  memsim::CacheHierarchy hierarchy(machine::bluewaters_p1().hierarchy);
  auto stream = make_stream(synth::Pattern::Sequential, 1 << 22);
  std::uint64_t scope = 0;
  for (auto _ : state) {
    hierarchy.set_scope(1024 + (scope++ % 8));
    hierarchy.access(stream.next());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ScopeSwitching);

}  // namespace
