// Microbenchmark P2 — canonical-form fitting throughput.
//
// Extrapolation fits every element of every basic block (thousands of
// series per task); the per-series cost of fit_all/select_best sets the
// post-processing budget.
#include <benchmark/benchmark.h>

#include <cmath>

#include "stats/batch.hpp"
#include "stats/canonical.hpp"
#include "util/arena.hpp"
#include "util/rng.hpp"
#include "util/threadpool.hpp"

namespace {

using namespace pmacx;

std::vector<double> series_for(stats::Form form, std::span<const double> cores,
                               util::Rng& rng) {
  std::vector<double> y;
  for (double p : cores) {
    double v = 0.0;
    switch (form) {
      case stats::Form::Linear: v = 2.0 + 0.001 * p; break;
      case stats::Form::Logarithmic: v = 1e6 + 4e5 * std::log(p); break;
      case stats::Form::Exponential: v = 5e6 * std::exp(-4e-4 * p); break;
      default: v = 42.0; break;
    }
    y.push_back(v * (1.0 + 0.005 * rng.normal()));
  }
  return y;
}

void BM_FitSingleForm(benchmark::State& state) {
  const auto form = static_cast<stats::Form>(state.range(0));
  const std::vector<double> cores = {1024, 2048, 4096};
  util::Rng rng(7);
  const auto y = series_for(form, cores, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::fit_form(form, cores, y));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(stats::form_name(form));
}
BENCHMARK(BM_FitSingleForm)
    ->Arg(static_cast<int>(stats::Form::Constant))
    ->Arg(static_cast<int>(stats::Form::Linear))
    ->Arg(static_cast<int>(stats::Form::Logarithmic))
    ->Arg(static_cast<int>(stats::Form::Exponential))
    ->Arg(static_cast<int>(stats::Form::Power))
    ->Arg(static_cast<int>(stats::Form::Quadratic));

void BM_SelectBestPaperForms(benchmark::State& state) {
  const std::vector<double> cores = {1024, 2048, 4096};
  util::Rng rng(7);
  const auto y = series_for(stats::Form::Logarithmic, cores, rng);
  stats::FitOptions options;
  options.forms.assign(stats::paper_forms().begin(), stats::paper_forms().end());
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::select_best(cores, y, options));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SelectBestPaperForms);

void BM_SelectBestDefaultForms(benchmark::State& state) {
  const std::vector<double> cores = {1024, 2048, 4096};
  util::Rng rng(7);
  const auto y = series_for(stats::Form::Exponential, cores, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::select_best(cores, y));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SelectBestDefaultForms);

void BM_SelectBestManySeriesThreaded(benchmark::State& state) {
  // A task trace is thousands of independent element series; this measures
  // select_best fanned across the pool the way the extrapolator drives it.
  const auto threads = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kSeries = 4096;
  const std::vector<double> cores = {1024, 2048, 4096};
  util::Rng rng(7);
  std::vector<std::vector<double>> ys;
  ys.reserve(kSeries);
  for (std::size_t s = 0; s < kSeries; ++s)
    ys.push_back(series_for(static_cast<stats::Form>(s % 6), cores, rng));
  util::ThreadPool pool(threads);
  for (auto _ : state) {
    if (pool.serial()) {
      for (const auto& y : ys) benchmark::DoNotOptimize(stats::select_best(cores, y));
    } else {
      benchmark::DoNotOptimize(pool.parallel_map<stats::FittedModel>(
          ys.size(), [&](std::size_t s) { return stats::select_best(cores, ys[s]); },
          /*grain=*/64));
    }
  }
  state.SetItemsProcessed(state.iterations() * kSeries);
  state.SetLabel(std::to_string(threads) + "thr");
}
BENCHMARK(BM_SelectBestManySeriesThreaded)->Arg(1)->Arg(2)->Arg(4);

void BM_FitBatch(benchmark::State& state) {
  // The SoA fast path over the same workload BM_SelectBestManySeriesThreaded/1
  // measures per-series: candidates + selection scores for a large batch of
  // independent series sharing one axis.  The bench gate compares the two
  // (items/sec are series/sec in both) to enforce the batch-path speedup.
  const auto series_count = static_cast<std::size_t>(state.range(0));
  const std::vector<double> cores = {1024, 2048, 4096};
  util::Rng rng(7);
  // Sample-major SoA input, mixed forms across the batch.
  std::vector<double> y(cores.size() * series_count);
  for (std::size_t s = 0; s < series_count; ++s) {
    const auto column = series_for(static_cast<stats::Form>(s % 6), cores, rng);
    for (std::size_t i = 0; i < cores.size(); ++i)
      y[i * series_count + s] = column[i];
  }
  const stats::BatchFitter fitter(cores, stats::FitOptions{});
  std::vector<stats::FittedModel> candidates(series_count * fitter.form_count());
  std::vector<double> scores(series_count * fitter.form_count());
  util::Arena arena;
  for (auto _ : state) {
    arena.reset();
    fitter.fit(y.data(), series_count, series_count, candidates.data(),
               scores.data(), arena);
    benchmark::DoNotOptimize(candidates.data());
    benchmark::DoNotOptimize(scores.data());
  }
  state.SetItemsProcessed(state.iterations() * series_count);
}
BENCHMARK(BM_FitBatch)->Arg(4096);

void BM_SelectBestLooCv(benchmark::State& state) {
  const std::vector<double> cores = {256, 512, 1024, 2048, 4096};
  util::Rng rng(7);
  const auto y = series_for(stats::Form::Linear, cores, rng);
  stats::FitOptions options;
  options.loo_cv = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::select_best(cores, y, options));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SelectBestLooCv);

}  // namespace
