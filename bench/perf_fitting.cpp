// Microbenchmark P2 — canonical-form fitting throughput.
//
// Extrapolation fits every element of every basic block (thousands of
// series per task); the per-series cost of fit_all/select_best sets the
// post-processing budget.
#include <benchmark/benchmark.h>

#include <cmath>

#include "stats/canonical.hpp"
#include "util/rng.hpp"

namespace {

using namespace pmacx;

std::vector<double> series_for(stats::Form form, std::span<const double> cores,
                               util::Rng& rng) {
  std::vector<double> y;
  for (double p : cores) {
    double v = 0.0;
    switch (form) {
      case stats::Form::Linear: v = 2.0 + 0.001 * p; break;
      case stats::Form::Logarithmic: v = 1e6 + 4e5 * std::log(p); break;
      case stats::Form::Exponential: v = 5e6 * std::exp(-4e-4 * p); break;
      default: v = 42.0; break;
    }
    y.push_back(v * (1.0 + 0.005 * rng.normal()));
  }
  return y;
}

void BM_FitSingleForm(benchmark::State& state) {
  const auto form = static_cast<stats::Form>(state.range(0));
  const std::vector<double> cores = {1024, 2048, 4096};
  util::Rng rng(7);
  const auto y = series_for(form, cores, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::fit_form(form, cores, y));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(stats::form_name(form));
}
BENCHMARK(BM_FitSingleForm)
    ->Arg(static_cast<int>(stats::Form::Constant))
    ->Arg(static_cast<int>(stats::Form::Linear))
    ->Arg(static_cast<int>(stats::Form::Logarithmic))
    ->Arg(static_cast<int>(stats::Form::Exponential))
    ->Arg(static_cast<int>(stats::Form::Power))
    ->Arg(static_cast<int>(stats::Form::Quadratic));

void BM_SelectBestPaperForms(benchmark::State& state) {
  const std::vector<double> cores = {1024, 2048, 4096};
  util::Rng rng(7);
  const auto y = series_for(stats::Form::Logarithmic, cores, rng);
  stats::FitOptions options;
  options.forms.assign(stats::paper_forms().begin(), stats::paper_forms().end());
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::select_best(cores, y, options));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SelectBestPaperForms);

void BM_SelectBestDefaultForms(benchmark::State& state) {
  const std::vector<double> cores = {1024, 2048, 4096};
  util::Rng rng(7);
  const auto y = series_for(stats::Form::Exponential, cores, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::select_best(cores, y));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SelectBestDefaultForms);

void BM_SelectBestLooCv(benchmark::State& state) {
  const std::vector<double> cores = {256, 512, 1024, 2048, 4096};
  util::Rng rng(7);
  const auto y = series_for(stats::Form::Linear, cores, rng);
  stats::FitOptions options;
  options.loo_cv = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::select_best(cores, y, options));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SelectBestLooCv);

}  // namespace
