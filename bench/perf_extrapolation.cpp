// Microbenchmark P3 — end-to-end extrapolation throughput.
//
// Cost of align + fit + synthesize per task trace, as a function of the
// number of basic blocks (a full application has hundreds to thousands).
#include <benchmark/benchmark.h>

#include <cmath>

#include "core/extrapolator.hpp"
#include "util/rng.hpp"
#include "util/threadpool.hpp"

namespace {

using namespace pmacx;

trace::TaskTrace synthetic_trace(double p, std::size_t blocks, std::uint64_t seed) {
  util::Rng rng(seed);
  trace::TaskTrace task;
  task.app = "perf";
  task.core_count = static_cast<std::uint32_t>(p);
  task.target_system = "t";
  for (std::size_t b = 1; b <= blocks; ++b) {
    trace::BasicBlockRecord block;
    block.id = b;
    block.location = {"perf.c", static_cast<std::uint32_t>(b), "k" + std::to_string(b)};
    block.set(trace::BlockElement::VisitCount, 10);
    block.set(trace::BlockElement::MemLoads, 1e9 / p * (1 + 0.1 * (b % 7)));
    block.set(trace::BlockElement::MemStores, 4e8 / p);
    block.set(trace::BlockElement::BytesPerRef, 8);
    block.set(trace::BlockElement::HitRateL1, 0.6 + 0.05 * (b % 5));
    block.set(trace::BlockElement::HitRateL2, 0.8 + 0.00001 * p);
    block.set(trace::BlockElement::HitRateL3, 0.95);
    block.set(trace::BlockElement::WorkingSetBytes, 1e9 / p);
    block.set(trace::BlockElement::Ilp, 3);
    block.set(trace::BlockElement::DepChainLength, 4);
    for (std::uint32_t i = 0; i < 6; ++i) {
      trace::InstructionRecord instr;
      instr.index = i;
      instr.set(trace::InstrElement::ExecCount, 1e8 / p);
      instr.set(trace::InstrElement::MemOps, 1e8 / p);
      instr.set(trace::InstrElement::BytesPerOp, 8);
      instr.set(trace::InstrElement::HitRateL1, 0.7);
      instr.set(trace::InstrElement::HitRateL2, 0.85);
      instr.set(trace::InstrElement::HitRateL3, 0.95);
      block.instructions.push_back(instr);
    }
    task.blocks.push_back(std::move(block));
  }
  task.sort_blocks();
  return task;
}

void BM_ExtrapolateTask(benchmark::State& state) {
  const std::size_t blocks = static_cast<std::size_t>(state.range(0));
  const std::vector<trace::TaskTrace> series = {
      synthetic_trace(1024, blocks, 1),
      synthetic_trace(2048, blocks, 2),
      synthetic_trace(4096, blocks, 3),
  };
  // Pin the serial baseline so the bench gate compares like with like
  // regardless of the runner's core count or PMACX_THREADS.
  core::ExtrapolationOptions options;
  options.threads = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::extrapolate_task(series, 8192, options));
  }
  // Elements processed per iteration: blocks × (block + 6 instr vectors).
  state.SetItemsProcessed(
      state.iterations() *
      blocks * (trace::kBlockElementCount + 6 * trace::kInstrElementCount));
}
BENCHMARK(BM_ExtrapolateTask)->Arg(8)->Arg(64)->Arg(256)->Unit(benchmark::kMillisecond);

void BM_ExtrapolateTaskThreaded(benchmark::State& state) {
  const std::size_t blocks = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<std::size_t>(state.range(1));
  const std::vector<trace::TaskTrace> series = {
      synthetic_trace(1024, blocks, 1),
      synthetic_trace(2048, blocks, 2),
      synthetic_trace(4096, blocks, 3),
  };
  // One pool amortized across iterations, like a long pipeline run.
  util::ThreadPool pool(threads);
  core::ExtrapolationOptions options;
  options.pool = &pool;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::extrapolate_task(series, 8192, options));
  }
  state.SetItemsProcessed(
      state.iterations() *
      blocks * (trace::kBlockElementCount + 6 * trace::kInstrElementCount));
  state.SetLabel(std::to_string(threads) + "thr");
}
BENCHMARK(BM_ExtrapolateTaskThreaded)
    ->Args({256, 1})
    ->Args({256, 2})
    ->Args({256, 4})
    ->Unit(benchmark::kMillisecond);

void BM_AlignOnly(benchmark::State& state) {
  const std::size_t blocks = static_cast<std::size_t>(state.range(0));
  const std::vector<trace::TaskTrace> series = {
      synthetic_trace(1024, blocks, 1),
      synthetic_trace(2048, blocks, 2),
      synthetic_trace(4096, blocks, 3),
  };
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::align_traces(series, core::MissingPolicy::ZeroFill));
  }
  state.SetItemsProcessed(state.iterations() * blocks);
}
BENCHMARK(BM_AlignOnly)->Arg(64)->Arg(256)->Unit(benchmark::kMillisecond);

}  // namespace
