// Pre-refactor cache simulator, kept verbatim as the perf gate's reference.
//
// This is the array-of-structs, one-reference-at-a-time implementation the
// SoA/grouped fast path replaced (src/memsim/cache.cpp at the refactor
// boundary), trimmed to the demand-access feature set the gate workloads
// exercise: LRU/FIFO replacement, non-inclusive probing, write-allocate,
// no prefetcher/TLB/sampling.  perf_cachesim benchmarks it side by side
// with memsim::CacheHierarchy so tools/bench_compare.py can enforce the
// block path's speedup from numbers measured in the *same run* — immune to
// machine drift, unlike a ratio against a checked-in baseline file — and
// memsim_features_test asserts it stays counter-identical to the real
// simulator, so the reference cannot rot into measuring something else.
//
// Deliberately not part of pmacx_memsim: production code must never grow a
// dependency on the slow model.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "memsim/config.hpp"
#include "memsim/hierarchy.hpp"
#include "util/error.hpp"

namespace pmacx::bench {

/// One set-associative level, array-of-structs way metadata.
class ReferenceCacheLevel {
 public:
  ReferenceCacheLevel(const memsim::CacheLevelConfig& config)
      : config_(config),
        sets_(config.sets()),
        ways_(config.associativity == 0
                  ? static_cast<std::uint32_t>(config.size_bytes / config.line_bytes)
                  : config.associativity),
        set_mask_(sets_ - 1),
        ways_storage_(sets_ * ways_) {
    PMACX_CHECK(config.replacement != memsim::Replacement::Random,
                "reference simulator models deterministic replacement only");
  }

  /// Demand access; returns {hit, writeback}.
  std::pair<bool, bool> access(std::uint64_t line_addr, bool is_store) {
    ++clock_;
    const std::uint64_t set = line_addr & set_mask_;
    const std::size_t base = static_cast<std::size_t>(set) * ways_;
    for (std::size_t w = 0; w < ways_; ++w) {
      Way& way = ways_storage_[base + w];
      if (way.valid && way.tag == line_addr) {
        if (config_.replacement == memsim::Replacement::Lru) way.stamp = clock_;
        if (is_store) way.dirty = true;
        return {true, false};
      }
    }
    std::size_t victim = base;
    bool found_invalid = false;
    for (std::size_t w = 0; w < ways_; ++w) {
      if (!ways_storage_[base + w].valid) {
        victim = base + w;
        found_invalid = true;
        break;
      }
    }
    if (!found_invalid) {
      for (std::size_t w = 1; w < ways_; ++w)
        if (ways_storage_[base + w].stamp < ways_storage_[victim].stamp)
          victim = base + w;
    }
    Way& way = ways_storage_[victim];
    const bool writeback = way.valid && way.dirty;
    way.tag = line_addr;
    way.valid = true;
    way.stamp = clock_;
    way.dirty = is_store;
    return {false, writeback};
  }

 private:
  struct Way {
    std::uint64_t tag = 0;
    std::uint64_t stamp = 0;
    bool valid = false;
    bool dirty = false;
  };

  memsim::CacheLevelConfig config_;
  std::uint64_t sets_;
  std::uint32_t ways_;
  std::uint64_t set_mask_;
  std::uint64_t clock_ = 0;
  std::vector<Way> ways_storage_;
};

/// The pre-refactor per-reference hierarchy walk over AoS levels.
class ReferenceHierarchy {
 public:
  explicit ReferenceHierarchy(const memsim::HierarchyConfig& config)
      : line_shift_(static_cast<std::uint32_t>(std::countr_zero(
            static_cast<std::uint64_t>(config.line_bytes())))) {
    PMACX_CHECK(!config.prefetch.enabled && !config.tlb.enabled &&
                    !config.inclusive && config.sample_shift == 0,
                "reference simulator models the plain demand path only");
    levels_.reserve(config.levels.size());
    for (const memsim::CacheLevelConfig& level : config.levels)
      levels_.emplace_back(level);
  }

  void access(const memsim::MemRef& ref) {
    PMACX_CHECK(ref.size > 0, "zero-size memory reference");
    ++counters_.refs;
    if (ref.is_store)
      ++counters_.stores;
    else
      ++counters_.loads;
    counters_.bytes += ref.size;
    const std::uint64_t first_line = ref.addr >> line_shift_;
    const std::uint64_t last_line = (ref.addr + ref.size - 1) >> line_shift_;
    for (std::uint64_t line = first_line; line <= last_line; ++line) {
      ++counters_.line_accesses;
      bool resolved = false;
      for (std::size_t lvl = 0; lvl < levels_.size(); ++lvl) {
        const auto [hit, writeback] = levels_[lvl].access(line, ref.is_store);
        if (writeback) ++counters_.writebacks;
        if (hit) {
          ++counters_.level_hits[lvl];
          resolved = true;
          break;
        }
      }
      if (!resolved) ++counters_.memory_accesses;
    }
  }

  const memsim::AccessCounters& totals() const { return counters_; }

 private:
  std::uint32_t line_shift_;
  std::vector<ReferenceCacheLevel> levels_;
  memsim::AccessCounters counters_;
};

}  // namespace pmacx::bench
