// Ablation A4 — longest-task-only vs. clustered multi-task extrapolation.
//
// Section VI (future work): the current method extrapolates only the most
// computationally demanding task; clustering MPI tasks and extrapolating
// per-cluster centroid traces should capture the work *distribution*
// better.  We trace four representative ranks per core count, run both
// modes, and compare how well each predicts the per-rank work distribution
// at the target count (measured against the application model's true
// per-rank work units).
#include <cmath>
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "core/cluster.hpp"
#include "core/extrapolator.hpp"
#include "synth/tracer.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace pmacx;
  bench::banner("Ablation A4 — single-task vs. clustered extrapolation (future work)");

  const auto& machine = bench::bluewaters_profile();
  const synth::Specfem3dApp app(bench::specfem_config());
  const auto experiment = bench::specfem_experiment();
  const std::uint32_t target = experiment.target_core_count;
  const auto tracer = bench::tracer_for(machine);

  // Trace four relative rank positions at every small core count.
  std::vector<trace::AppSignature> signatures;
  for (std::uint32_t cores : experiment.small_core_counts) {
    const std::vector<std::uint32_t> ranks = {0, cores / 4, cores / 2, cores - cores / 4};
    signatures.push_back(synth::collect_signature(app, cores, tracer, ranks));
  }

  // Clustered mode.
  const auto clustered = core::extrapolate_clustered(signatures, target);
  std::printf("clusters found: %zu\n", clustered.k);
  util::Table cluster_table({"Cluster", "Members (ranks @1536)", "Rank Share",
                             "Extrap Mem Ops @6144"});
  for (std::size_t c = 0; c < clustered.clusters.size(); ++c) {
    const auto& cluster = clustered.clusters[c];
    std::string members;
    for (std::uint32_t r : cluster.member_ranks)
      members += (members.empty() ? "" : ",") + std::to_string(r);
    cluster_table.add_row({std::to_string(c), members,
                           util::human_percent(cluster.rank_share, 0),
                           util::format("%.3g",
                                        cluster.representative.total_memory_ops())});
  }
  cluster_table.print(std::cout);

  // Work-distribution fidelity: single-task mode assumes every rank works
  // like the demanding one; clustered mode assigns cluster-specific work.
  std::vector<trace::TaskTrace> demanding_series;
  for (const auto& sig : signatures) demanding_series.push_back(sig.demanding_task());
  const auto single = core::extrapolate_task(demanding_series, target);

  const auto weights = clustered.rank_work_weights(target);
  double true_total = 0.0, single_err = 0.0, cluster_err = 0.0;
  const double single_work = single.trace.total_memory_ops();
  // Normalize both models to the true total so the comparison is about the
  // *distribution*, not the absolute scale.
  std::vector<double> true_work(target);
  double weights_total = 0.0;
  for (std::uint32_t r = 0; r < target; ++r) {
    true_work[r] = app.work_units(target, r);
    true_total += true_work[r];
    weights_total += weights[r];
  }
  for (std::uint32_t r = 0; r < target; ++r) {
    const double truth = true_work[r] / true_total;
    const double uniform = 1.0 / target;  // single-task mode: flat distribution
    const double bucketed = weights[r] / weights_total;
    single_err += (uniform - truth) * (truth > 0 ? 1.0 : 0.0) * (uniform - truth);
    cluster_err += (bucketed - truth) * (bucketed - truth);
  }
  (void)single_work;

  util::Table fidelity({"Mode", "Work-Distribution RMSE (x1e6)"});
  fidelity.add_row({"single-task (paper)",
                    util::format("%.3f", std::sqrt(single_err / target) * 1e6)});
  fidelity.add_row({"clustered (future work)",
                    util::format("%.3f", std::sqrt(cluster_err / target) * 1e6)});
  fidelity.print(std::cout, "\nPer-rank work-distribution fidelity at 6144 cores:");

  std::printf(
      "\nReading: with SPECFEM3D's smooth cos^2 imbalance the single-task mode's\n"
      "flat distribution is already close; clustering buys distribution fidelity\n"
      "when rank behaviours form distinct groups (see core_cluster_test for a\n"
      "two-population case where it is decisive).\n");
  return 0;
}
