#include "common.hpp"

#include <cstdio>

#include "machine/targets.hpp"
#include "util/log.hpp"

namespace pmacx::bench {

machine::MultiMapsOptions standard_probe() {
  machine::MultiMapsOptions options;
  options.working_sets = {16ull << 10, 64ull << 10, 256ull << 10, 1ull << 20,
                          4ull << 20,  16ull << 20, 48ull << 20};
  options.strides = {1, 2, 4, 8};
  options.min_refs_per_probe = 150'000;
  options.max_refs_per_probe = 1'000'000;
  return options;
}

const machine::MachineProfile& bluewaters_profile() {
  static const machine::MachineProfile profile = [] {
    util::set_log_level(util::LogLevel::Warn);
    return machine::build_profile(machine::bluewaters_p1(), standard_probe());
  }();
  return profile;
}

synth::TracerOptions tracer_for(const machine::MachineProfile& machine) {
  synth::TracerOptions options;
  options.target = machine.system.hierarchy;
  options.max_refs_per_kernel = 1'500'000;
  return options;
}

Experiment specfem_experiment() { return {"SPECFEM3D", {96, 384, 1536}, 6144}; }

Experiment uh3d_experiment() { return {"UH3D", {1024, 2048, 4096}, 8192}; }

synth::SpecfemConfig specfem_config() {
  // Defaults already match the experiment scale; pinned here so every bench
  // agrees even if library defaults evolve.
  synth::SpecfemConfig config;
  config.global_elements = 1'000'000;
  config.global_field_bytes = 100'000'000'000;
  config.timesteps = 10;
  // Folds the work of a production-length run (tens of thousands of
  // timesteps) into the 10 traced steps, calibrated so the measured
  // 6144-core runtime lands near the paper's 143 s.
  config.work_scale = 23'700;
  return config;
}

synth::Uh3dConfig uh3d_config() {
  synth::Uh3dConfig config;
  // 5G particles keep the dominant kernels' footprints far above the target
  // L3 (4 MB) through 8192 cores, so their hit-rate migration stays in the
  // gentle regime the canonical forms capture (crossing the capacity cliff
  // *between* the last training count and the target is the one shape no
  // smooth form family can track — see ablation_forms).
  config.global_particles = 5'000'000'000;
  config.global_grid_cells = 100'000'000;
  config.timesteps = 10;
  // Production-length folding (see specfem_config), targeting the paper's
  // 536 s at 8192 cores.
  config.work_scale = 183;
  return config;
}

core::PipelineConfig pipeline_for(const Experiment& experiment,
                                  const machine::MachineProfile& machine) {
  core::PipelineConfig config;
  config.small_core_counts = experiment.small_core_counts;
  config.target_core_count = experiment.target_core_count;
  config.tracer = tracer_for(machine);
  config.collect_at_target = true;
  config.measure_at_target = true;
  config.reference.max_refs_per_kernel = 2'000'000;
  return config;
}

void banner(const std::string& what) {
  std::printf("==========================================================\n");
  std::printf("pmacx reproduction: %s\n", what.c_str());
  std::printf("Carrington, Laurenzano, Tiwari — \"Inferring Large-scale\n");
  std::printf("Computation Behavior via Trace Extrapolation\", IPDPSW 2013\n");
  std::printf("==========================================================\n\n");
}

}  // namespace pmacx::bench
