// Table I reproduction — the paper's headline result.
//
// For SPECFEM3D (extrapolated {96,384,1536} → 6144) and UH3D (extrapolated
// {1024,2048,4096} → 8192), predict the target-system runtime twice: once
// from the extrapolated trace and once from a trace actually collected at
// the large core count.  Compare both against the measured ("reference
// simulator") runtime.  The paper reports ≤ 5% absolute relative error with
// extrapolated and collected traces agreeing almost exactly.
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "stats/descriptive.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace pmacx;

void run_experiment(const synth::SyntheticApp& app, const bench::Experiment& experiment,
                    util::Table& table) {
  const auto& machine = bench::bluewaters_profile();
  const auto config = bench::pipeline_for(experiment, machine);
  const auto result = core::run_pipeline(app, machine, config);

  const double measured = result.measured->runtime_seconds;
  const double extrap = result.prediction_from_extrapolated.runtime_seconds;
  const double collected = result.prediction_from_collected->runtime_seconds;

  auto row = [&](const char* type, double predicted) {
    table.add_row({experiment.name, std::to_string(experiment.target_core_count), type,
                   util::format("%.1f", predicted),
                   util::human_percent(stats::absolute_relative_error(predicted, measured), 1)});
  };
  row("Extrap.", extrap);
  row("Coll.", collected);

  std::printf("%s: measured (reference-simulated) runtime at %u cores: %.1f s\n",
              experiment.name.c_str(), experiment.target_core_count, measured);
  std::printf("%s: extrapolation fit report:\n%s\n", experiment.name.c_str(),
              result.report.summary().c_str());
}

}  // namespace

int main() {
  bench::banner("Table I — prediction errors using extrapolated vs. collected traces");

  util::Table table({"Application", "Core Count", "Trace Type", "Predicted Runtime (s)",
                     "% Error"});

  const synth::Specfem3dApp specfem(bench::specfem_config());
  run_experiment(specfem, bench::specfem_experiment(), table);

  const synth::Uh3dApp uh3d(bench::uh3d_config());
  run_experiment(uh3d, bench::uh3d_experiment(), table);

  table.print(std::cout, "Table I (reproduced):");
  std::printf(
      "\nPaper reports: SPECFEM3D 139s/139s at 1%% error; UH3D 537s/536s at 5%% error.\n"
      "Absolute seconds differ (our substrate is a simulator, not Kraken/BlueWaters);\n"
      "the reproduced *shape* — extrapolated ≈ collected, both within a few %% of\n"
      "measured — is the claim under test.\n");
  std::printf("\nCSV:\n%s", table.to_csv().c_str());
  return 0;
}
