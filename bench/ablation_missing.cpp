// Ablation A6 — missing-block alignment policies.
//
// Real traces gain and lose basic blocks across core counts (code paths
// gated on rank counts, library fallbacks, ...).  The aligner offers three
// policies — Drop, ZeroFill, CarryLast — whose choice changes what the
// extrapolated trace contains.  This ablation injects controlled
// appearance/disappearance into a SPECFEM3D trace series and compares the
// policies' predictions against the collected-trace prediction.
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "core/extrapolator.hpp"
#include "psins/predictor.hpp"
#include "stats/descriptive.hpp"
#include "synth/tracer.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace pmacx;
  bench::banner("Ablation A6 — missing-block alignment policies");

  const auto& machine = bench::bluewaters_profile();
  const synth::Specfem3dApp app(bench::specfem_config());
  const auto experiment = bench::specfem_experiment();
  const auto tracer = bench::tracer_for(machine);

  std::vector<trace::TaskTrace> series;
  for (std::uint32_t cores : experiment.small_core_counts)
    series.push_back(synth::trace_task(app, cores, 0, tracer));

  // Inject structural drift: the smallest count misses the bookkeeping
  // block (id 6) — as if that code path only engages above some rank count.
  auto drop_block = [](trace::TaskTrace& task, std::uint64_t id) {
    std::erase_if(task.blocks, [&](const auto& block) { return block.id == id; });
  };
  drop_block(series.front(), 6);

  const auto collected =
      synth::collect_signature(app, experiment.target_core_count, tracer);
  const auto prediction_collected = psins::predict(collected, machine);

  std::vector<trace::CommTrace> target_comm;
  for (std::uint32_t rank = 0; rank < experiment.target_core_count; ++rank)
    target_comm.push_back(app.comm_trace(experiment.target_core_count, rank));

  util::Table table({"Policy", "Blocks in Output", "Predicted (s)", "vs Collected Pred"});
  for (const auto& [name, policy] :
       {std::pair{"drop", core::MissingPolicy::Drop},
        std::pair{"zero-fill", core::MissingPolicy::ZeroFill},
        std::pair{"carry-last", core::MissingPolicy::CarryLast},
        std::pair{"fit-present", core::MissingPolicy::FitPresent}}) {
    core::ExtrapolationOptions options;
    options.missing = policy;
    const auto result =
        core::extrapolate_task(series, experiment.target_core_count, options);

    trace::AppSignature signature;
    signature.app = app.name();
    signature.core_count = experiment.target_core_count;
    signature.target_system = tracer.target.name;
    signature.demanding_rank = app.demanding_rank(experiment.target_core_count);
    trace::TaskTrace task = result.trace;
    task.rank = signature.demanding_rank;
    signature.tasks.push_back(std::move(task));
    signature.comm = target_comm;
    const auto prediction = psins::predict(signature, machine);

    table.add_row(
        {name, std::to_string(result.trace.blocks.size()),
         util::format("%.1f", prediction.runtime_seconds),
         util::human_percent(
             stats::absolute_relative_error(prediction.runtime_seconds,
                                            prediction_collected.runtime_seconds),
             2)});
  }
  table.print(std::cout,
              util::format("SPECFEM3D with block 6 absent at 96 cores, -> %u cores "
                           "(collected-trace prediction %.1f s):",
                           experiment.target_core_count,
                           prediction_collected.runtime_seconds));

  std::printf(
      "\nReading: ZeroFill and CarryLast both poison the fits of a block that is\n"
      "merely *unobserved* at one count (a zero or duplicated sample drags every\n"
      "canonical form).  Drop keeps the prediction honest but loses the block's\n"
      "contribution entirely.  FitPresent — fit only the counts where the block\n"
      "actually appears — keeps the block *and* the fit quality, at the cost of\n"
      "one fewer fitting point.\n");
  return 0;
}
