// Shared configuration for the experiment-reproduction binaries.
//
// Every bench binary reproduces one table or figure of the paper at the
// paper's core counts.  The shared pieces here keep the experiments
// consistent: the Blue-Waters-like prediction target (profiled once), the
// tracer defaults, and the per-application experiment layouts
// (SPECFEM3D: {96, 384, 1536} → 6144; UH3D: {1024, 2048, 4096} → 8192).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "machine/profile.hpp"
#include "synth/app.hpp"
#include "synth/specfem.hpp"
#include "synth/tracer.hpp"
#include "synth/uh3d.hpp"

namespace pmacx::bench {

/// The standard MultiMAPS probe used by all experiments (denser than the
/// unit tests', still seconds to run).
machine::MultiMapsOptions standard_probe();

/// The Phase-I-BlueWaters-like prediction target, profiled once per process.
const machine::MachineProfile& bluewaters_profile();

/// Tracer options mimicking `machine`'s hierarchy with the standard
/// sampling cap.
synth::TracerOptions tracer_for(const machine::MachineProfile& machine);

/// One application's experiment layout.
struct Experiment {
  std::string name;
  std::vector<std::uint32_t> small_core_counts;
  std::uint32_t target_core_count = 0;
};

/// SPECFEM3D's layout from Section V: extrapolate {96, 384, 1536} → 6144.
Experiment specfem_experiment();
/// UH3D's layout from Section V: extrapolate {1024, 2048, 4096} → 8192.
Experiment uh3d_experiment();

/// Paper-scale application instances (tuned so footprints sweep the target's
/// cache levels across the experiment's core counts).
synth::SpecfemConfig specfem_config();
synth::Uh3dConfig uh3d_config();

/// Ready-to-run pipeline configuration for an experiment.
core::PipelineConfig pipeline_for(const Experiment& experiment,
                                  const machine::MachineProfile& machine);

/// Prints the standard experiment banner (what is being reproduced).
void banner(const std::string& what);

}  // namespace pmacx::bench
