// Ablation A5 — computation-only vs. full-signature extrapolation.
//
// The paper extrapolates the computation side and cites ScalaExtrap [22]
// for the communication side.  With core/comm_extrap implemented, the whole
// target signature can be synthesized from the small-count collections.
// This ablation compares, for SPECFEM3D at 6144 cores, predictions whose
// communication traces come from (a) the application model (the paper's
// setup: comm at scale assumed known) and (b) extrapolation — plus the
// structural-reconstruction statistics of the synthesized comm traces.
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "core/comm_extrap.hpp"
#include "core/pipeline.hpp"
#include "stats/descriptive.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace pmacx;
  bench::banner("Ablation A5 — extrapolated communication traces (ScalaExtrap role)");

  const auto& machine = bench::bluewaters_profile();
  const synth::Specfem3dApp app(bench::specfem_config());
  const auto experiment = bench::specfem_experiment();

  auto config = bench::pipeline_for(experiment, machine);
  config.collect_at_target = false;

  // (a) comm from the application model.
  const auto with_app_comm = core::run_pipeline(app, machine, config);
  // (b) comm extrapolated from the small collections.
  config.extrapolate_comm = true;
  const auto with_extrap_comm = core::run_pipeline(app, machine, config);

  const double measured = with_app_comm.measured->runtime_seconds;

  util::Table table({"Comm Traces", "Predicted (s)", "vs Measured"});
  table.add_row({"application model (paper setup)",
                 util::format("%.1f", with_app_comm.prediction_from_extrapolated.runtime_seconds),
                 util::human_percent(
                     stats::absolute_relative_error(
                         with_app_comm.prediction_from_extrapolated.runtime_seconds, measured),
                     2)});
  table.add_row({"extrapolated (ScalaExtrap-style)",
                 util::format("%.1f",
                              with_extrap_comm.prediction_from_extrapolated.runtime_seconds),
                 util::human_percent(
                     stats::absolute_relative_error(
                         with_extrap_comm.prediction_from_extrapolated.runtime_seconds,
                         measured),
                     2)});
  table.print(std::cout,
              util::format("SPECFEM3D -> %u cores (measured %.1f s), computation trace "
                           "extrapolated in both rows:",
                           experiment.target_core_count, measured));

  // Structural reconstruction statistics.
  const auto comm = core::extrapolate_comm(with_app_comm.small_signatures,
                                           experiment.target_core_count);
  std::printf("\ncomm reconstruction: %zu events/rank, %zu affine peer models, "
              "%zu carried\n",
              comm.events_per_rank, comm.affine_peer_events, comm.carried_peer_events);

  // Per-event byte fidelity against the application model's target comm.
  double worst_bytes_err = 0.0;
  const trace::CommTrace truth = app.comm_trace(experiment.target_core_count, 0);
  for (std::size_t k = 0; k < truth.events.size(); ++k) {
    const double expected = static_cast<double>(truth.events[k].bytes);
    if (expected <= 0) continue;
    worst_bytes_err = std::max(
        worst_bytes_err,
        std::abs(static_cast<double>(comm.comm[0].events[k].bytes) - expected) / expected);
  }
  std::printf("worst per-event payload error vs application model: %s\n",
              util::human_percent(worst_bytes_err, 2).c_str());

  std::printf(
      "\nReading: for SPMD bulk-synchronous codes the communication structure is\n"
      "exactly recoverable (affine peer deltas, canonical-form payload laws), so\n"
      "a fully trace-derived target signature predicts as well as one that\n"
      "assumes the target comm is known — closing the loop the paper left to\n"
      "ScalaExtrap.\n");
  return 0;
}
