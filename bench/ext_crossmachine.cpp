// Extension E4 — Table I protocol across target machines.
//
// Section III-A's cross-architectural claim: a signature simulated against
// a target's caches predicts that target without the application ever
// running there.  This experiment runs the full extrapolate-and-predict
// protocol for SPECFEM3D on *two* targets — the BlueWaters-like POWER7 and
// the Kraken-like XT5 (torus interconnect, different cache geometry) — and
// checks the accuracy holds on both.
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "core/pipeline.hpp"
#include "machine/targets.hpp"
#include "stats/descriptive.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace pmacx;
  bench::banner("Extension E4 — the Table I protocol on two target machines");

  const synth::Specfem3dApp app(bench::specfem_config());
  const auto experiment = bench::specfem_experiment();

  util::Table table({"Target", "Measured (s)", "Extrap. Pred (s)", "Err",
                     "Coll. Pred (s)", "Err"});
  for (const std::string& target_name : {std::string("bluewaters-p1"),
                                         std::string("cray-xt5")}) {
    const machine::MachineProfile profile = machine::build_profile(
        machine::target_by_name(target_name), bench::standard_probe());
    const auto config = bench::pipeline_for(experiment, profile);
    const auto result = core::run_pipeline(app, profile, config);

    const double measured = result.measured->runtime_seconds;
    const double extrap = result.prediction_from_extrapolated.runtime_seconds;
    const double coll = result.prediction_from_collected->runtime_seconds;
    table.add_row({target_name, util::format("%.1f", measured),
                   util::format("%.1f", extrap),
                   util::human_percent(stats::absolute_relative_error(extrap, measured), 1),
                   util::format("%.1f", coll),
                   util::human_percent(stats::absolute_relative_error(coll, measured), 1)});
  }
  table.print(std::cout, util::format("SPECFEM3D {96,384,1536} -> %u cores:",
                                      experiment.target_core_count));

  std::printf(
      "\nReading: collected-trace predictions hit both targets within ~3%% — the\n"
      "cross-architectural workflow of Section III-A works as advertised (the\n"
      "XT5 row also exercises the torus-topology and eager-protocol interconnect\n"
      "model).  The *extrapolated* XT5 prediction, however, degrades: the same\n"
      "footprints that shrink gently past BlueWaters' 4 MB L3 cross the XT5's\n"
      "8 MB L3 *between* the last training count and the target, the one\n"
      "transition shape no canonical form can anticipate (DESIGN.md §6,\n"
      "ablation_forms).  Cliff placement is target-dependent, so extrapolation\n"
      "fidelity must be assessed per target — a practical caveat the paper's\n"
      "single-target evaluation could not surface.\n");
  return 0;
}
