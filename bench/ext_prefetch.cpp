// Extension E3 — hardware-feature exploration: a stride prefetcher.
//
// Table III explores L1 sizing on systems that do not exist; the same
// machinery explores microarchitectural features.  Here the Blue-Waters-
// like target is profiled twice — without and with a stride prefetcher —
// and SPECFEM3D's signature is re-simulated against both.  The prefetcher
// changes the MultiMAPS surface (streaming bandwidth rises), the per-block
// hit rates, and the predicted runtime, quantifying what the feature buys
// this workload before any hardware exists.
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "machine/targets.hpp"
#include "psins/predictor.hpp"
#include "synth/tracer.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace pmacx;
  bench::banner("Extension E3 — design exploration of a stride prefetcher");

  const synth::Specfem3dApp app(bench::specfem_config());
  const std::uint32_t cores = 1536;

  util::Table table({"Prefetcher", "Stream BW (probe)", "App L1 HR", "Predicted Runtime"});
  for (const bool enabled : {false, true}) {
    machine::TargetSystem system = machine::bluewaters_p1();
    system.hierarchy.prefetch.enabled = enabled;
    system.hierarchy.prefetch.degree = 4;
    system.name = enabled ? "bluewaters-p1+pf" : "bluewaters-p1";
    system.hierarchy.name = system.name;

    const machine::MachineProfile profile =
        machine::build_profile(system, bench::standard_probe());

    // Streaming bandwidth the probe measured (stride-1, memory-resident).
    double stream_bw = 0.0;
    for (const auto& sample : profile.surface.samples())
      if (!sample.random && sample.stride_elems == 1 &&
          sample.working_set_bytes == 48ull << 20)
        stream_bw = sample.bandwidth_bytes_per_s;

    synth::TracerOptions options = bench::tracer_for(profile);
    const auto signature = synth::collect_signature(app, cores, options);
    const auto prediction = psins::predict(signature, profile);

    // Memory-op-weighted application L1 hit rate.
    const trace::TaskTrace& task = signature.demanding_task();
    double weight = 0.0, l1 = 0.0;
    for (const auto& block : task.blocks) {
      weight += block.memory_ops();
      l1 += block.memory_ops() * block.get(trace::BlockElement::HitRateL1);
    }

    table.add_row({enabled ? "stride, degree 4" : "none",
                   util::human_rate(stream_bw), util::human_percent(l1 / weight, 1),
                   util::format("%.1f s", prediction.runtime_seconds)});
  }
  table.print(std::cout,
              util::format("SPECFEM3D at %u cores, identical caches, prefetcher toggled:",
                           cores));

  std::printf(
      "\nReading: the prefetcher lifts the streaming kernels' L1 hit rates above\n"
      "the 7/8 spatial-locality bound, which raises probed streaming bandwidth\n"
      "and shortens the predicted runtime — a microarchitecture decision\n"
      "evaluated entirely from base-system traces.\n");
  return 0;
}
