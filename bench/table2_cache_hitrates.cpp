// Table II reproduction — target-system cache hit rates of one basic block
// as the core count grows.
//
// "The table shows that as the core count increases the data slowly moves
// into the L3 and L2 cache indicated by the increase in the hitrate for
// those cache levels."  Under strong scaling the per-rank footprint shrinks
// like 1/p, so a block whose data exceeds L3 at 1024 cores progressively
// fits at 8192.  We reproduce the table with UH3D's field-solve block on
// the Blue-Waters-like target.
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "synth/tracer.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace pmacx;
  bench::banner("Table II — cache hit rates of one block vs. core count");

  const auto& machine = bench::bluewaters_profile();
  const synth::Uh3dApp app(bench::uh3d_config());
  const auto options = bench::tracer_for(machine);

  const std::vector<std::uint32_t> core_counts = {1024, 2048, 4096, 8192};

  // Trace once per core count, report two contrasting blocks: the streaming
  // field solve (stride-1, spatial locality keeps L1 high like the paper's
  // 87.4% rows) and the random-access particle push (footprint crossing L3
  // inside the sweep — the sharp migration).
  std::vector<trace::TaskTrace> tasks;
  for (std::uint32_t cores : core_counts)
    tasks.push_back(synth::trace_task(app, cores, 0, options));

  auto emit = [&](std::uint64_t block_id, const std::string& label) {
    util::Table table({"Core Count", "L1 HR", "L2 HR", "L3 HR", "Working Set"});
    std::vector<double> l3_series;
    for (std::size_t i = 0; i < core_counts.size(); ++i) {
      const auto* block = tasks[i].find_block(block_id);
      table.add_row(
          {std::to_string(core_counts[i]),
           util::format("%.1f", 100 * block->get(trace::BlockElement::HitRateL1)),
           util::format("%.1f", 100 * block->get(trace::BlockElement::HitRateL2)),
           util::format("%.1f", 100 * block->get(trace::BlockElement::HitRateL3)),
           util::human_bytes(block->get(trace::BlockElement::WorkingSetBytes))});
      l3_series.push_back(block->get(trace::BlockElement::HitRateL3));
    }
    table.print(std::cout, label + " on " + machine.system.name + ":");
    const bool migrates = l3_series.back() > l3_series.front() + 0.01;
    std::printf("  -> L3 hit rate %s from %.1f%% to %.1f%%\n\n",
                migrates ? "rises" : "DOES NOT RISE (unexpected)",
                100 * l3_series.front(), 100 * l3_series.back());
  };
  emit(104, "Block 104 (field_solve, streaming)");
  emit(101, "Block 101 (particle_push, random access)");

  std::printf(
      "Shape check: as the core count increases the per-rank data migrates into\n"
      "L3 and then L2 and the hit rates rise monotonically — the paper's Table II\n"
      "behaviour (87.5%% -> 95.0%% at L3 for its block).\n");
  return 0;
}
