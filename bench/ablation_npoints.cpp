// Ablation A2 — how many training core counts are needed?
//
// Section IV: "using more than three core counts could improve the quality
// of the fit but it became evident during testing that three generally
// provided adequate accuracy."  We collect SPECFEM3D traces at five small
// core counts and extrapolate to 6144 from the last 2, 3, 4 and 5 of them,
// comparing each against the collected-trace prediction.
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "core/extrapolator.hpp"
#include "psins/predictor.hpp"
#include "stats/descriptive.hpp"
#include "synth/tracer.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace pmacx;
  bench::banner("Ablation A2 — number of training core counts");

  const auto& machine = bench::bluewaters_profile();
  const synth::Specfem3dApp app(bench::specfem_config());
  const auto tracer = bench::tracer_for(machine);
  const std::uint32_t target = 6144;

  const std::vector<std::uint32_t> counts = {96, 192, 384, 768, 1536};
  std::vector<trace::TaskTrace> traces;
  for (std::uint32_t cores : counts) traces.push_back(synth::trace_task(app, cores, 0, tracer));

  const auto collected = synth::collect_signature(app, target, tracer);
  const auto prediction_collected = psins::predict(collected, machine);

  std::vector<trace::CommTrace> target_comm;
  for (std::uint32_t rank = 0; rank < target; ++rank)
    target_comm.push_back(app.comm_trace(target, rank));

  util::Table table({"Training Counts", "Worst Infl. Fit Err", "Predicted (s)",
                     "vs Collected Pred"});
  for (std::size_t use = 2; use <= counts.size(); ++use) {
    const std::vector<trace::TaskTrace> series(traces.end() - use, traces.end());
    const auto result = core::extrapolate_task(series, target);

    trace::AppSignature signature;
    signature.app = app.name();
    signature.core_count = target;
    signature.target_system = tracer.target.name;
    signature.demanding_rank = app.demanding_rank(target);
    trace::TaskTrace task = result.trace;
    task.rank = signature.demanding_rank;
    signature.tasks.push_back(std::move(task));
    signature.comm = target_comm;
    const auto prediction = psins::predict(signature, machine);

    std::string label;
    for (std::size_t i = counts.size() - use; i < counts.size(); ++i)
      label += (label.empty() ? "" : ",") + std::to_string(counts[i]);
    table.add_row(
        {label, util::human_percent(result.report.worst_influential_error(), 1),
         util::format("%.1f", prediction.runtime_seconds),
         util::human_percent(
             stats::absolute_relative_error(prediction.runtime_seconds,
                                            prediction_collected.runtime_seconds),
             2)});
  }
  table.print(std::cout, util::format("SPECFEM3D -> %u cores (collected-trace prediction "
                                      "%.1f s):",
                                      target, prediction_collected.runtime_seconds));

  std::printf(
      "\nReading: two points cannot distinguish the forms (every 2-parameter\n"
      "form interpolates them); three are adequate, as the paper found; more\n"
      "points tighten the fit further at linear collection cost.\n");
  return 0;
}
