// Extension E6 — frequency-scaling (DVFS) exploration.
//
// The PMaC energy work the paper builds on [refs 23, 24] picks per-phase
// clock frequencies by modeling how runtime and energy respond to DVFS:
// memory-bound work barely slows down at lower clocks while core energy
// falls quadratically.  With the trace, profile, and energy models in
// place, the sweep is mechanical: one signature (collected once — cache
// geometry is frequency-invariant), one profile + prediction per frequency,
// and the energy-optimal / EDP-optimal points fall out.
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "machine/dvfs.hpp"
#include "machine/targets.hpp"
#include "psins/energy.hpp"
#include "psins/predictor.hpp"
#include "synth/tracer.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace pmacx;
  bench::banner("Extension E6 — DVFS: runtime/energy across clock frequencies");

  const machine::TargetSystem base = machine::bluewaters_p1();
  const synth::Uh3dApp app(bench::uh3d_config());
  const std::uint32_t cores = 4096;

  // One collection serves every frequency: geometry (and therefore hit
  // rates) is clock-invariant.
  synth::TracerOptions options;
  options.target = base.hierarchy;
  options.max_refs_per_kernel = 1'500'000;
  const auto signature = synth::collect_signature(app, cores, options);

  const std::vector<double> clocks = {1.9, 2.4, 2.9, 3.4, 3.8};
  struct PerClock {
    double ghz;
    psins::PredictionResult prediction;
    psins::EnergyPrediction energy;
  };
  std::vector<PerClock> sweep;
  for (const double ghz : clocks) {
    const machine::TargetSystem system = machine::scale_frequency(base, ghz);
    const machine::MachineProfile profile =
        machine::build_profile(system, bench::standard_probe());
    const auto prediction = psins::predict(signature, profile);
    const auto energy = psins::estimate_energy(signature, profile, prediction);
    sweep.push_back({ghz, prediction, energy});
  }

  util::Table table({"Clock", "Runtime (s)", "Energy (MJ)", "Mean Power", "EDP (MJ·s)"});
  const PerClock* best_energy = &sweep.front();
  const PerClock* best_edp = &sweep.front();
  for (const PerClock& point : sweep) {
    const double edp = point.energy.total_joules * point.prediction.runtime_seconds;
    if (point.energy.total_joules < best_energy->energy.total_joules) best_energy = &point;
    if (edp <
        best_edp->energy.total_joules * best_edp->prediction.runtime_seconds)
      best_edp = &point;
    table.add_row({util::format("%.2f GHz", point.ghz),
                   util::format("%.1f", point.prediction.runtime_seconds),
                   util::format("%.2f", point.energy.total_joules / 1e6),
                   util::format("%.1f kW", point.energy.mean_watts / 1e3),
                   util::format("%.1f", edp / 1e6)});
  }
  table.print(std::cout, util::format("UH3D at %u cores under static DVFS:", cores));
  std::printf("\nenergy-optimal static clock: %.2f GHz; EDP-optimal: %.2f GHz\n",
              best_energy->ghz, best_edp->ghz);

  // --- Per-phase selection (the refs-23/24 contribution): each block runs
  // at its own energy-minimal clock, subject to losing at most 5% runtime
  // relative to that block's fastest time.
  const trace::TaskTrace& task = signature.demanding_task();
  std::printf("\nPer-phase frequency selection (≤5%% per-block slowdown budget):\n");
  util::Table phases({"Block", "Chosen Clock", "vs Peak-Clock Time", "Energy Saved"});
  double scaled_energy_at_peak = 0.0, scaled_energy_chosen = 0.0;
  for (std::size_t b = 0; b < task.blocks.size(); ++b) {
    const psins::BlockTime& at_peak = sweep.back().prediction.blocks.blocks[b];
    const psins::BlockEnergy& peak_energy = sweep.back().energy.blocks[b];
    double fastest = at_peak.block_seconds;
    for (const PerClock& point : sweep)
      fastest = std::min(fastest, point.prediction.blocks.blocks[b].block_seconds);

    const PerClock* chosen = &sweep.back();
    double chosen_joules = peak_energy.memory_joules + peak_energy.fp_joules;
    for (const PerClock& point : sweep) {
      const double seconds = point.prediction.blocks.blocks[b].block_seconds;
      if (seconds > 1.05 * fastest) continue;  // runtime budget
      const double joules = point.energy.blocks[b].memory_joules +
                            point.energy.blocks[b].fp_joules;
      if (joules < chosen_joules) {
        chosen_joules = joules;
        chosen = &point;
      }
    }
    const double peak_joules = peak_energy.memory_joules + peak_energy.fp_joules;
    scaled_energy_at_peak += peak_joules;
    scaled_energy_chosen += chosen_joules;
    phases.add_row(
        {std::to_string(task.blocks[b].id), util::format("%.2f GHz", chosen->ghz),
         util::format("%+.1f%%",
                      100.0 * (chosen->prediction.blocks.blocks[b].block_seconds / fastest -
                               1.0)),
         util::human_percent(1.0 - chosen_joules / peak_joules, 1)});
  }
  phases.print(std::cout);
  std::printf("\nper-phase dynamic-energy saving vs peak clock: %s (compute side)\n",
              util::human_percent(1.0 - scaled_energy_chosen / scaled_energy_at_peak, 1)
                  .c_str());

  std::printf(
      "\nReading: the memory-bound dominant block drops to the lowest clock for\n"
      "+1%% time, while the cache-resident blocks must stay at peak (their time\n"
      "scales with the core clock) — so per-phase DVFS gets the static-low-\n"
      "clock energy win *without* the cache-resident blocks' slowdown, exactly\n"
      "the mechanism of the PMaC DVFS work [paper refs 23, 24].  Note the\n"
      "dynamic-side savings are modest because memory-access energy is clock-\n"
      "independent; the big static-power term (first table: 60 -> 34 MJ) is\n"
      "what the lowered clock actually buys.\n");
  return 0;
}
