// Figure 1 reproduction — the MultiMAPS bandwidth surface.
//
// "Measured bandwidth as function of cache hit rates for Opteron": run the
// MultiMAPS benchmark against the two-cache-level Opteron-like machine and
// print (a) the raw probe samples (working set, stride → hit rates,
// bandwidth) and (b) the surface evaluated on a regular hit-rate grid — the
// data behind the figure's 3-D plot.
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "machine/multimaps.hpp"
#include "machine/targets.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace pmacx;
  bench::banner("Figure 1 — MultiMAPS bandwidth vs. cache hit rates (2-level Opteron)");

  const machine::TargetSystem system = machine::opteron_2level();
  const machine::MemTimingModel timing(system.hierarchy, system.clock_ghz,
                                       system.latency_exposure);
  const auto samples = machine::run_multimaps(system.hierarchy, timing,
                                              bench::standard_probe());

  util::Table probe_table(
      {"Working Set", "Stride", "Pattern", "L1 HR", "L2 HR", "Bandwidth"});
  for (const auto& s : samples) {
    probe_table.add_row({util::human_bytes(static_cast<double>(s.working_set_bytes)),
                         std::to_string(s.stride_elems), s.random ? "random" : "strided",
                         util::human_percent(s.hit_rates[0], 1),
                         util::human_percent(s.hit_rates[1], 1),
                         util::human_rate(s.bandwidth_bytes_per_s)});
  }
  probe_table.print(std::cout, "MultiMAPS probe samples:");

  // The figure's surface: bandwidth over the (L1 HR, L2 HR) plane.
  const machine::BandwidthSurface surface(samples);
  std::printf("\nSurface: bandwidth (GB/s) over (L1 hit rate rows, L2 hit rate cols)\n");
  std::printf("%8s", "L1\\L2");
  for (double hr2 = 0.5; hr2 <= 1.001; hr2 += 0.1) std::printf("%8.2f", hr2);
  std::printf("\n");
  for (double hr1 = 0.0; hr1 <= 1.001; hr1 += 0.1) {
    std::printf("%8.2f", hr1);
    for (double hr2 = 0.5; hr2 <= 1.001; hr2 += 0.1) {
      const double clamped_hr2 = hr2 < hr1 ? hr1 : hr2;  // cumulative rates
      const double bw = surface.lookup({hr1, clamped_hr2, clamped_hr2});
      std::printf("%8.2f", bw / 1e9);
    }
    std::printf("\n");
  }
  std::printf(
      "\nShape check (paper's Fig. 1): bandwidth climbs steeply toward the\n"
      "high-hit-rate corner and falls to memory bandwidth at low hit rates.\n");
  return 0;
}
