// Ablation A3 — the influence threshold.
//
// Section IV deems an instruction influential when it carries > 0.1% of the
// task's memory operations (flops for memory-less instructions) and reports
// fit quality over influential elements only.  This ablation sweeps the
// threshold and shows the trade-off: lower thresholds audit more elements
// (including noisy, inconsequential ones — worse worst-case error), higher
// thresholds audit fewer.
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "core/extrapolator.hpp"
#include "synth/tracer.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace pmacx;
  bench::banner("Ablation A3 — influence-threshold sweep (paper uses 0.1%)");

  const auto& machine = bench::bluewaters_profile();
  const synth::Uh3dApp app(bench::uh3d_config());
  const auto experiment = bench::uh3d_experiment();
  const auto tracer = bench::tracer_for(machine);

  std::vector<trace::TaskTrace> series;
  for (std::uint32_t cores : experiment.small_core_counts)
    series.push_back(synth::trace_task(app, cores, 0, tracer));

  util::Table table({"Threshold", "Influential Elements", "Total Elements",
                     "Worst Infl. Fit Err", "Mem-Op Coverage"});
  for (double threshold : {0.0, 0.0001, 0.001, 0.01, 0.05}) {
    core::ExtrapolationOptions options;
    options.influence_threshold = threshold;
    const auto result =
        core::extrapolate_task(series, experiment.target_core_count, options);

    std::size_t influential = 0;
    for (const auto& fit : result.report.elements)
      if (fit.influential) ++influential;

    // Memory-op coverage: share of the task's memory ops inside influential
    // blocks (how much of the runtime the audited elements actually govern).
    const trace::TaskTrace& reference = series.back();
    const double total_mem = reference.total_memory_ops();
    double covered = 0.0;
    for (const auto& block : reference.blocks)
      if (block.memory_ops() / total_mem > threshold) covered += block.memory_ops();

    table.add_row({util::human_percent(threshold, 2), std::to_string(influential),
                   std::to_string(result.report.elements.size()),
                   util::human_percent(result.report.worst_influential_error(), 1),
                   util::human_percent(covered / total_mem, 1)});
  }
  table.print(std::cout, "UH3D {1024,2048,4096} -> 8192:");

  std::printf(
      "\nReading: the paper's 0.1%% threshold keeps essentially full memory-op\n"
      "coverage while excluding trace noise from the fit-quality audit; the\n"
      "extrapolated trace itself always contains every element regardless.\n");
  return 0;
}
