// Table III reproduction — cache-structure exploration on systems that do
// not exist.
//
// "the L1 cache hit rate for two systems which have identical L2 and L3
// caches but which differ in their L1 cache size (12KB vs. 56KB)": a
// SPECFEM3D block whose footprint is insensitive to strong scaling (source
// injection, fixed ~24 KB working set) keeps a flat, low L1 hit rate on the
// 12 KB system and a flat, high one on the 56 KB system — demonstrating
// target-system exploration from base-system traces only.
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "machine/targets.hpp"
#include "synth/tracer.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace pmacx;
  bench::banner("Table III — L1 hit rate of one block on 12 KB vs. 56 KB L1 targets");

  const synth::Specfem3dApp app(bench::specfem_config());
  const std::vector<std::uint32_t> core_counts = {96, 384, 1536, 6144};
  constexpr std::uint64_t kBlock = 4;  // source_injection: scale-invariant footprint

  util::Table table({"System", "96 cores", "384 cores", "1536 cores", "6144 cores"});
  for (const machine::TargetSystem& system :
       {machine::system_a_12kb(), machine::system_b_56kb()}) {
    synth::TracerOptions options;
    options.target = system.hierarchy;
    options.max_refs_per_kernel = 1'500'000;
    std::vector<std::string> row = {
        util::format("%s (%s L1)", system.name.c_str(),
                     util::human_bytes(static_cast<double>(
                                           system.hierarchy.levels[0].size_bytes))
                         .c_str())};
    for (std::uint32_t cores : core_counts) {
      const auto task = synth::trace_task(app, cores, 0, options);
      const auto* block = task.find_block(kBlock);
      row.push_back(
          util::format("%.1f", 100 * block->get(trace::BlockElement::HitRateL1)));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout, "L1 hit rate (%) of block 4 (source_injection):");

  std::printf(
      "\nShape check (paper's Table III: 85.6-85.8%% on system A vs. 99.6%% on B):\n"
      "the block's ~24 KB footprint misses a 12 KB L1 at every core count but\n"
      "fits a 56 KB L1 — its behaviour is invariant under strong scaling, and\n"
      "the exploration needs neither target system to exist.\n");
  return 0;
}
