// Extension E7 — the Table I protocol in hybrid MPI/OpenMP mode.
//
// Everything extrapolates as before, but the signatures are collected in
// hybrid mode (4 threads per rank, private L1/L2, shared L3): traces at
// small rank counts, extrapolation to the large rank count, prediction with
// the hybrid compute model, and validation against both a collected hybrid
// trace and the hybrid reference simulation.  This is the parallelization
// mode the paper names but does not evaluate.
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "core/extrapolator.hpp"
#include "psins/predictor.hpp"
#include "psins/reference.hpp"
#include "stats/descriptive.hpp"
#include "synth/tracer.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace pmacx;
  bench::banner("Extension E7 — Table I protocol in hybrid MPI/OpenMP mode");

  const auto& machine = bench::bluewaters_profile();
  const synth::Uh3dApp app(bench::uh3d_config());
  constexpr std::uint32_t kThreads = 4;
  constexpr double kEfficiency = 0.9;
  // Hybrid mode doubles the capacity-cliff count: the shared L3 sees the
  // *combined* per-rank footprint while each private L2 sees a 1/T *slice*,
  // and their crossings sit a factor of T apart.  The training window is
  // placed above both (combined-L3 crossing ~800 ranks, slice-L2 crossing
  // ~3100 ranks for this problem) with the target below the next one —
  // the same placement discipline as the flat experiments, applied twice.
  const std::vector<std::uint32_t> small_ranks = {4096, 5120, 6144};
  const std::uint32_t target_ranks = 8192;  // × 4 threads = 32768 cores

  synth::TracerOptions tracer = bench::tracer_for(machine);
  tracer.threads_per_rank = kThreads;
  // Hybrid slicing parks several per-thread footprints near capacity
  // boundaries, where cold-start bias in a sampled simulation is largest;
  // spend more references to keep tracer and reference in agreement.
  tracer.max_refs_per_kernel = 4'000'000;

  // Collect hybrid signatures at the small rank counts and extrapolate.
  std::vector<trace::TaskTrace> series;
  for (std::uint32_t ranks : small_ranks)
    series.push_back(synth::trace_task(app, ranks, 0, tracer));
  const auto extrapolated = core::extrapolate_task(series, target_ranks);

  trace::AppSignature synthetic;
  synthetic.app = app.name();
  synthetic.core_count = target_ranks;
  synthetic.target_system = tracer.target.name;
  synthetic.demanding_rank = app.demanding_rank(target_ranks);
  trace::TaskTrace task = extrapolated.trace;
  task.rank = synthetic.demanding_rank;
  synthetic.tasks.push_back(std::move(task));
  for (std::uint32_t rank = 0; rank < target_ranks; ++rank)
    synthetic.comm.push_back(app.comm_trace(target_ranks, rank));

  const auto prediction_extrap =
      psins::predict_hybrid(synthetic, machine, kThreads, kEfficiency);

  // Collected hybrid trace at the target rank count.
  const auto collected = synth::collect_signature(app, target_ranks, tracer);
  const auto prediction_coll =
      psins::predict_hybrid(collected, machine, kThreads, kEfficiency);

  // Hybrid reference ("measured") run.
  psins::ReferenceOptions reference;
  reference.max_refs_per_kernel = 4'000'000;
  reference.threads_per_rank = kThreads;
  reference.thread_efficiency = kEfficiency;
  const auto measured = psins::measure_run(app, target_ranks, machine, reference);

  util::Table table(
      {"Layout", "Trace Type", "Predicted Runtime (s)", "% Error"});
  auto row = [&](const char* type, double predicted) {
    table.add_row({util::format("%u ranks x %u threads", target_ranks, kThreads), type,
                   util::format("%.1f", predicted),
                   util::human_percent(
                       stats::absolute_relative_error(predicted, measured.runtime_seconds),
                       1)});
  };
  row("Extrap.", prediction_extrap.runtime_seconds);
  row("Coll.", prediction_coll.runtime_seconds);
  table.print(std::cout,
              util::format("UH3D hybrid at %u cores, measured %.1f s:",
                           target_ranks * kThreads, measured.runtime_seconds));

  std::printf("\n%s\n", extrapolated.report.summary().c_str());
  std::printf(
      "Reading: the extrapolation methodology carries over to hybrid mode —\n"
      "shared-L3 contention is part of the *measured* feature vectors, and the\n"
      "canonical forms track it.  The practical caveat doubles, though: hybrid\n"
      "mode has capacity crossings for both the combined footprint (shared L3)\n"
      "and the per-thread slice (private L1/L2), a factor of T apart, so the\n"
      "cliff-free training-window discipline (DESIGN.md \u00a76) must clear both.\n");
  return 0;
}
