// Extension E5 — set-sampled signature collection.
//
// The paper's motivation is collection cost ("2 TB of data per hour" per
// process); beyond the on-the-fly summarization and the reference cap, set
// sampling cuts the cache-simulation work by 2^k while keeping hit-rate
// estimates unbiased.  This experiment sweeps the sampling factor on a
// UH3D collection and reports collection wall-clock, the worst per-block
// hit-rate deviation from the full simulation, and the end-to-end predicted
// runtime drift.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "psins/predictor.hpp"
#include "stats/descriptive.hpp"
#include "synth/tracer.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace pmacx;
  bench::banner("Extension E5 — set-sampled collection: cost vs. fidelity");

  const auto& machine = bench::bluewaters_profile();
  const synth::Uh3dApp app(bench::uh3d_config());
  const std::uint32_t cores = 2048;

  trace::TaskTrace reference;
  double reference_runtime = 0.0;

  util::Table table({"Sampling", "Collection Time", "Worst HR Drift", "Predicted (s)",
                     "Drift"});
  for (std::uint32_t shift : {0u, 1u, 2u, 3u, 4u}) {
    synth::TracerOptions options = bench::tracer_for(machine);
    options.sample_shift = shift;

    const auto start = std::chrono::steady_clock::now();
    const auto signature = synth::collect_signature(app, cores, options);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    const trace::TaskTrace& task = signature.demanding_task();

    const auto prediction = psins::predict(signature, machine);
    double worst_drift = 0.0;
    if (shift == 0) {
      reference = task;
      reference_runtime = prediction.runtime_seconds;
    } else {
      for (const auto& block : task.blocks) {
        const auto* base = reference.find_block(block.id);
        for (auto element : {trace::BlockElement::HitRateL1, trace::BlockElement::HitRateL2,
                             trace::BlockElement::HitRateL3}) {
          worst_drift =
              std::max(worst_drift, std::fabs(block.get(element) - base->get(element)));
        }
      }
    }

    table.add_row({shift == 0 ? "full" : util::format("1/%u of lines", 1u << shift),
                   util::format("%.2f s", seconds),
                   shift == 0 ? "-" : util::format("%.4f", worst_drift),
                   util::format("%.1f", prediction.runtime_seconds),
                   shift == 0 ? "-"
                              : util::human_percent(
                                    stats::absolute_relative_error(
                                        prediction.runtime_seconds, reference_runtime),
                                    2)});
  }
  table.print(std::cout, util::format("UH3D signature collection at %u cores:", cores));

  std::printf(
      "\nReading: sampling by set keeps hit-rate estimates unbiased, so even\n"
      "1/16-line simulation predicts within a few percent of the full run while\n"
      "cutting collection cost — the knob that makes tracing *every* small core\n"
      "count cheap enough to be routine.\n");
  return 0;
}
