// Extension E2 — energy prediction from extrapolated traces.
//
// Section I motivates the feature set as "important for both performance
// and energy", building on PMaC's energy-modeling work [refs 23, 24].  The
// same extrapolated feature vectors drive an energy convolution (per-level
// access energies + fp energies + static power over predicted runtime);
// this experiment checks that the energy prediction from the extrapolated
// trace agrees with the one from the trace collected at scale — i.e. the
// methodology extrapolates energy as well as it extrapolates time.
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "core/pipeline.hpp"
#include "psins/energy.hpp"
#include "stats/descriptive.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace pmacx;
  bench::banner("Extension E2 — energy prediction at scale");

  const auto& machine = bench::bluewaters_profile();
  const synth::Specfem3dApp app(bench::specfem_config());
  const auto experiment = bench::specfem_experiment();
  auto config = bench::pipeline_for(experiment, machine);
  config.measure_at_target = false;

  const auto result = core::run_pipeline(app, machine, config);

  const auto energy_extrap = psins::estimate_energy(
      result.extrapolated_signature, machine, result.prediction_from_extrapolated);
  const auto energy_collected = psins::estimate_energy(
      *result.collected_signature, machine, *result.prediction_from_collected);

  auto mj = [](double joules) { return util::format("%.2f MJ", joules / 1e6); };
  util::Table table({"Trace Type", "Dynamic", "Static", "Total", "Mean Power"});
  table.add_row({"Extrap.", mj(energy_extrap.dynamic_joules), mj(energy_extrap.static_joules),
                 mj(energy_extrap.total_joules),
                 util::format("%.1f kW", energy_extrap.mean_watts / 1e3)});
  table.add_row({"Coll.", mj(energy_collected.dynamic_joules),
                 mj(energy_collected.static_joules), mj(energy_collected.total_joules),
                 util::format("%.1f kW", energy_collected.mean_watts / 1e3)});
  table.print(std::cout, util::format("SPECFEM3D at %u cores on %s:",
                                      experiment.target_core_count,
                                      machine.system.name.c_str()));

  const double gap = stats::absolute_relative_error(energy_extrap.total_joules,
                                                    energy_collected.total_joules);
  std::printf("\nextrapolated vs collected total-energy gap: %s\n",
              util::human_percent(gap, 2).c_str());

  std::printf("\nPer-block dynamic energy (extrapolated trace, demanding rank):\n");
  util::Table blocks({"Block", "Memory", "FP"});
  for (const auto& block : energy_extrap.blocks)
    blocks.add_row({std::to_string(block.block_id),
                    util::format("%.3f J", block.memory_joules),
                    util::format("%.3f J", block.fp_joules)});
  blocks.print(std::cout);

  std::printf(
      "\nReading: energy extrapolates as faithfully as runtime because both\n"
      "convolutions consume the same per-block feature vectors — the paper's\n"
      "'performance and energy' motivation realized.\n");
  return 0;
}
