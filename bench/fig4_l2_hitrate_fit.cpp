// Figure 4 reproduction — "Linear Model captures the scaling behavior of
// the L2 Hit Rate".
//
// The figure plots one instruction's measured L2 hit rate against core
// count together with all four canonical-form fits; the linear form tracks
// it best.  We trace UH3D at the paper's training counts {1024, 2048, 4096}
// plus validation counts up to 8192, search the instruction-level elements
// for the L2-hit-rate series the linear form wins, and print the measured
// series with every model's curve — the data behind the figure.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "stats/canonical.hpp"
#include "synth/tracer.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace pmacx;
  bench::banner("Figure 4 — canonical-form fits of an instruction's L2 hit rate");

  const auto& machine = bench::bluewaters_profile();
  const synth::Uh3dApp app(bench::uh3d_config());
  const auto options = bench::tracer_for(machine);

  const std::vector<std::uint32_t> all_counts = {1024, 2048, 4096, 6144, 8192};
  constexpr std::size_t kTraining = 3;  // {1024, 2048, 4096}

  std::vector<trace::TaskTrace> traces;
  for (std::uint32_t cores : all_counts)
    traces.push_back(synth::trace_task(app, cores, 0, options));

  // Candidate series: every (block, instruction) L2 hit rate.  Pick the one
  // with the largest measured spread whose best paper-form fit is linear
  // (the figure's subject); fall back to the largest-spread series.
  struct Candidate {
    std::uint64_t block = 0;
    std::uint32_t instr = 0;
    std::vector<double> values;
    double spread = 0.0;
    stats::Form best = stats::Form::Constant;
  };
  std::vector<Candidate> candidates;
  for (const auto& block : traces[0].blocks) {
    for (const auto& instr : block.instructions) {
      Candidate c;
      c.block = block.id;
      c.instr = instr.index;
      bool complete = true;
      for (const auto& task : traces) {
        const auto* b = task.find_block(c.block);
        if (b == nullptr || c.instr >= b->instructions.size()) {
          complete = false;
          break;
        }
        c.values.push_back(b->instructions[c.instr].get(trace::InstrElement::HitRateL2));
      }
      if (!complete) continue;
      double lo = c.values[0], hi = c.values[0];
      for (double v : c.values) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
      c.spread = hi - lo;
      std::vector<double> train_p(all_counts.begin(), all_counts.begin() + kTraining);
      std::vector<double> train_y(c.values.begin(), c.values.begin() + kTraining);
      stats::FitOptions paper;
      paper.forms.assign(stats::paper_forms().begin(), stats::paper_forms().end());
      c.best = stats::select_best(train_p, train_y, paper).form;
      candidates.push_back(std::move(c));
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) { return a.spread > b.spread; });
  const Candidate* chosen = &candidates.front();
  for (const auto& c : candidates) {
    if (c.best == stats::Form::Linear) {
      chosen = &c;
      break;
    }
  }

  std::printf("chosen element: block %llu instr %u (spread %.3f, best form %s)\n\n",
              static_cast<unsigned long long>(chosen->block), chosen->instr, chosen->spread,
              stats::form_name(chosen->best).c_str());

  // Fit the four paper forms on the training points and tabulate curves.
  std::vector<double> train_p(all_counts.begin(), all_counts.begin() + kTraining);
  std::vector<double> train_y(chosen->values.begin(), chosen->values.begin() + kTraining);
  util::Table table({"Cores", "Role", "Measured", "Constant", "Linear", "Log", "Exp"});
  std::vector<stats::FittedModel> fits;
  for (stats::Form form : stats::paper_forms())
    fits.push_back(stats::fit_form(form, train_p, train_y));
  for (std::size_t i = 0; i < all_counts.size(); ++i) {
    std::vector<std::string> row = {std::to_string(all_counts[i]),
                                    i < kTraining ? "train" : "validate",
                                    util::format("%.4f", chosen->values[i])};
    for (const auto& fit : fits)
      row.push_back(fit.ok ? util::format("%.4f", fit.evaluate(all_counts[i])) : "n/a");
    table.add_row(std::move(row));
  }
  table.print(std::cout, "L2 hit rate vs. core count with all four canonical fits:");

  std::printf("\nPer-form SSE on the training points: ");
  for (const auto& fit : fits)
    std::printf("%s=%.3g  ", stats::form_name(fit.form).c_str(), fit.sse);
  std::printf("\n");
  return 0;
}
