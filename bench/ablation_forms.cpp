// Ablation A1 — which canonical forms matter?
//
// The paper uses four forms and names polynomial extensions as future work
// ("increasing the number of forms ... has a strong chance of driving down
// this error further").  This ablation holds the traces fixed and swaps the
// form set used for extrapolation:
//
//   paper4            — constant/linear/log/exp, domain-aware rejection on
//   paper4-no-reject  — same forms, rejection off (pure min-SSE selection)
//   default6          — paper4 + power + inverse-p (library default)
//   all7              — default6 + quadratic
//
// Reported per variant: worst influential fit error, the predicted runtime
// from the extrapolated trace, and its error against the collected-trace
// prediction and the measured runtime.
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "core/extrapolator.hpp"
#include "psins/predictor.hpp"
#include "psins/reference.hpp"
#include "stats/descriptive.hpp"
#include "synth/tracer.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace pmacx;

struct Variant {
  std::string name;
  core::ExtrapolationOptions options;
};

std::vector<Variant> variants() {
  std::vector<Variant> out;
  {
    Variant v{"paper4", {}};
    v.options.fit.forms.assign(stats::paper_forms().begin(), stats::paper_forms().end());
    out.push_back(v);
  }
  {
    Variant v{"paper4-no-reject", {}};
    v.options.fit.forms.assign(stats::paper_forms().begin(), stats::paper_forms().end());
    v.options.reject_out_of_domain = false;
    out.push_back(v);
  }
  {
    Variant v{"default6", {}};
    out.push_back(v);
  }
  {
    Variant v{"all7", {}};
    v.options.fit.forms.assign(stats::all_forms().begin(), stats::all_forms().end());
    out.push_back(v);
  }
  return out;
}

}  // namespace

int main() {
  bench::banner("Ablation A1 — canonical form sets");

  const auto& machine = bench::bluewaters_profile();
  const synth::Specfem3dApp app(bench::specfem_config());
  const auto experiment = bench::specfem_experiment();
  const auto tracer = bench::tracer_for(machine);

  // Collect everything once; only extrapolation varies.
  std::vector<trace::TaskTrace> series;
  for (std::uint32_t cores : experiment.small_core_counts)
    series.push_back(synth::trace_task(app, cores, 0, tracer));
  const auto collected =
      synth::collect_signature(app, experiment.target_core_count, tracer);
  const auto prediction_collected = psins::predict(collected, machine);
  psins::ReferenceOptions roptions;
  roptions.max_refs_per_kernel = 2'000'000;
  const auto measured =
      psins::measure_run(app, experiment.target_core_count, machine, roptions);

  // Shared comm traces for the synthetic signatures.
  std::vector<trace::CommTrace> target_comm;
  for (std::uint32_t rank = 0; rank < experiment.target_core_count; ++rank)
    target_comm.push_back(app.comm_trace(experiment.target_core_count, rank));

  util::Table table({"Form Set", "Worst Infl. Fit Err", "Predicted (s)",
                     "vs Collected Pred", "vs Measured"});
  for (const Variant& variant : variants()) {
    const auto result =
        core::extrapolate_task(series, experiment.target_core_count, variant.options);

    trace::AppSignature signature;
    signature.app = app.name();
    signature.core_count = experiment.target_core_count;
    signature.target_system = tracer.target.name;
    signature.demanding_rank = app.demanding_rank(experiment.target_core_count);
    trace::TaskTrace task = result.trace;
    task.rank = signature.demanding_rank;
    signature.tasks.push_back(std::move(task));
    signature.comm = target_comm;

    const auto prediction = psins::predict(signature, machine);
    table.add_row(
        {variant.name, util::human_percent(result.report.worst_influential_error(), 1),
         util::format("%.1f", prediction.runtime_seconds),
         util::human_percent(
             stats::absolute_relative_error(prediction.runtime_seconds,
                                            prediction_collected.runtime_seconds),
             2),
         util::human_percent(stats::absolute_relative_error(prediction.runtime_seconds,
                                                            measured.runtime_seconds),
                             2)});
  }
  table.print(std::cout,
              util::format("SPECFEM3D {96,384,1536} -> %u, collected-trace prediction "
                           "%.1f s, measured %.1f s:",
                           experiment.target_core_count,
                           prediction_collected.runtime_seconds,
                           measured.runtime_seconds));

  std::printf(
      "\nReading: the paper-faithful four-form set handles log/constant/linear\n"
      "elements but extrapolates pure 1/p strong-scaling decay poorly (the log\n"
      "fit wins on SSE and goes negative — domain rejection falls back to exp,\n"
      "which undershoots).  Power/inverse-p — the paper's proposed future work —\n"
      "capture those elements exactly.\n");
  return 0;
}
