// Microbenchmark P4 — replay-engine and comm-extrapolation throughput.
//
// PSiNS replays every rank's timeline per prediction; at 8192 ranks that is
// hundreds of thousands of matched events, so engine throughput bounds how
// cheap a what-if prediction is.  Comm extrapolation instantiates all
// target ranks' timelines, so its cost scales the same way.
#include <benchmark/benchmark.h>

#include "core/comm_extrap.hpp"
#include "simmpi/replay.hpp"
#include "synth/specfem.hpp"

namespace {

using namespace pmacx;

synth::Specfem3dApp small_app() {
  synth::SpecfemConfig config;
  config.global_elements = 50'000;
  config.global_field_bytes = 1'000'000'000;
  config.timesteps = 5;
  return synth::Specfem3dApp(config);
}

void BM_ReplayRanks(benchmark::State& state) {
  const auto cores = static_cast<std::uint32_t>(state.range(0));
  const synth::Specfem3dApp app = small_app();
  std::vector<trace::CommTrace> traces;
  traces.reserve(cores);
  for (std::uint32_t r = 0; r < cores; ++r) traces.push_back(app.comm_trace(cores, r));
  const std::vector<double> scales(cores, 1e-9);
  const auto timelines = simmpi::timelines_from_comm(traces, scales);
  simmpi::NetworkModel net;

  std::size_t events = 0;
  for (const auto& tl : timelines) events += tl.steps.size();
  for (auto _ : state) {
    benchmark::DoNotOptimize(simmpi::replay(timelines, net));
  }
  state.SetItemsProcessed(state.iterations() * events);
  state.SetLabel(std::to_string(events) + " events");
}
BENCHMARK(BM_ReplayRanks)->Arg(64)->Arg(512)->Arg(2048)->Unit(benchmark::kMillisecond);

void BM_CommExtrapolate(benchmark::State& state) {
  const auto target = static_cast<std::uint32_t>(state.range(0));
  const synth::Specfem3dApp app = small_app();
  std::vector<trace::AppSignature> inputs;
  for (std::uint32_t cores : {16u, 32u, 64u}) {
    trace::AppSignature signature;
    signature.app = app.name();
    signature.core_count = cores;
    signature.target_system = "t";
    for (std::uint32_t r = 0; r < cores; ++r)
      signature.comm.push_back(app.comm_trace(cores, r));
    inputs.push_back(std::move(signature));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::extrapolate_comm(inputs, target));
  }
  state.SetItemsProcessed(state.iterations() * target);
}
BENCHMARK(BM_CommExtrapolate)->Arg(256)->Arg(2048)->Unit(benchmark::kMillisecond);

}  // namespace
