// Figure 3 reproduction — extrapolating individual feature-vector elements.
//
// The figure shows one basic block's feature vector at three core counts,
// with each element fitted and extrapolated independently.  This binary
// traces SPECFEM3D's dominant block at {96, 384, 1536} cores and prints,
// for every element of its feature vector, the measured series, the winning
// canonical form, and the extrapolated value at 6144 cores.
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "core/extrapolator.hpp"
#include "synth/tracer.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace pmacx;
  bench::banner("Figure 3 — per-element extrapolation of one block's feature vector");

  const auto& machine = bench::bluewaters_profile();
  const synth::Specfem3dApp app(bench::specfem_config());
  const auto experiment = bench::specfem_experiment();
  const auto options = bench::tracer_for(machine);

  std::vector<trace::TaskTrace> series;
  for (std::uint32_t cores : experiment.small_core_counts)
    series.push_back(synth::trace_task(app, cores, 0, options));

  const auto result = core::extrapolate_task(series, experiment.target_core_count);

  constexpr std::uint64_t kBlock = 1;  // compute_forces_elastic
  util::Table table({"Element", "@96", "@384", "@1536", "Best Fit", "Extrap @6144"});
  for (const auto& fit : result.report.elements) {
    if (fit.key.block_id != kBlock || !fit.key.is_block_level()) continue;
    const auto element = static_cast<trace::BlockElement>(fit.key.element);
    table.add_row({trace::block_element_name(element),
                   util::format("%.4g", fit.inputs[0]),
                   util::format("%.4g", fit.inputs[1]),
                   util::format("%.4g", fit.inputs[2]),
                   fit.model.describe(),
                   util::format("%.4g", fit.clamped)});
  }
  table.print(std::cout, "Block 1 (compute_forces_elastic), block-level elements:");

  std::printf("\nInstruction-level elements of the same block (first memory instr):\n");
  util::Table instr_table({"Element", "@96", "@384", "@1536", "Best Fit", "Extrap @6144"});
  for (const auto& fit : result.report.elements) {
    if (fit.key.block_id != kBlock || fit.key.instr_index != 0) continue;
    const auto element = static_cast<trace::InstrElement>(fit.key.element);
    instr_table.add_row({trace::instr_element_name(element),
                         util::format("%.4g", fit.inputs[0]),
                         util::format("%.4g", fit.inputs[1]),
                         util::format("%.4g", fit.inputs[2]),
                         fit.model.describe(),
                         util::format("%.4g", fit.clamped)});
  }
  instr_table.print(std::cout);

  std::printf("\n%s", result.report.summary().c_str());
  return 0;
}
