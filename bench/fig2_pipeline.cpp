// Figure 2 reproduction — the signature-collection pipeline.
//
// The figure is a diagram: each MPI task's memory address stream is
// processed on the fly through a cache simulator for the target system,
// producing one summary trace file per task.  This binary demonstrates the
// pipeline live on SPECFEM3D's demanding rank at 96 cores, showing the
// compression the on-the-fly design buys (raw address stream size vs. the
// summary trace file) and the per-block contents of that trace file.
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "synth/tracer.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace pmacx;
  bench::banner("Figure 2 — on-the-fly application signature collection");

  const auto& machine = bench::bluewaters_profile();
  const synth::Specfem3dApp app(bench::specfem_config());
  const std::uint32_t cores = 96;
  const auto options = bench::tracer_for(machine);

  const trace::TaskTrace task = synth::trace_task(app, cores, 0, options);

  // The compression argument (Section III-A: ">2 TB of data per hour").
  double total_refs = 0;
  for (const auto& block : task.blocks) total_refs += block.memory_ops();
  const double raw_stream_bytes = total_refs * 8;  // 8 B per recorded address
  const double trace_bytes = static_cast<double>(task.to_text().size());
  std::printf("rank 0 of %u issued %.3g memory references\n", cores, total_refs);
  std::printf("raw address stream:   %s\n", util::human_bytes(raw_stream_bytes).c_str());
  std::printf("summary trace file:   %s  (%.0fx smaller, built on the fly)\n\n",
              util::human_bytes(trace_bytes).c_str(), raw_stream_bytes / trace_bytes);

  util::Table table({"Block", "Location", "Visits", "Mem Ops", "FP Ops", "L1 HR", "L2 HR",
                     "L3 HR", "Working Set"});
  for (const auto& block : task.blocks) {
    table.add_row({std::to_string(block.id),
                   block.location.function,
                   util::format("%.3g", block.get(trace::BlockElement::VisitCount)),
                   util::format("%.3g", block.memory_ops()),
                   util::format("%.3g", block.fp_ops()),
                   util::human_percent(block.get(trace::BlockElement::HitRateL1), 1),
                   util::human_percent(block.get(trace::BlockElement::HitRateL2), 1),
                   util::human_percent(block.get(trace::BlockElement::HitRateL3), 1),
                   util::human_bytes(block.get(trace::BlockElement::WorkingSetBytes))});
  }
  table.print(std::cout,
              "Summary trace file for the demanding task (target: " +
                  machine.system.name + "):");

  std::printf("\nEach block also carries %zu per-instruction sub-records (Section IV).\n",
              task.blocks.front().instructions.size());
  return 0;
}
