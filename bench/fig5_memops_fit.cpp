// Figure 5 reproduction — "Logarithmic Model captures the scaling behavior
// of the number of memory operations".
//
// The figure plots one instruction's memory-operation count growing with
// core count, with the log form fitting best.  Our SPECFEM3D model's
// residual-norm reduction block carries exactly this shape (its on-node
// combine work grows with the log2(p)-deep reduction tree); we trace it at
// the paper's training counts plus validation counts and print the measured
// series with all four canonical-form curves.
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "stats/canonical.hpp"
#include "synth/tracer.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace pmacx;
  bench::banner("Figure 5 — canonical-form fits of an instruction's memory-op count");

  const auto& machine = bench::bluewaters_profile();
  const synth::Specfem3dApp app(bench::specfem_config());
  const auto options = bench::tracer_for(machine);

  const std::vector<std::uint32_t> all_counts = {96, 384, 1536, 3072, 6144};
  constexpr std::size_t kTraining = 3;
  constexpr std::uint64_t kBlock = 5;  // reduce_norm
  constexpr std::uint32_t kInstr = 0;

  std::vector<double> measured;
  for (std::uint32_t cores : all_counts) {
    const auto task = synth::trace_task(app, cores, 0, options);
    const auto* block = task.find_block(kBlock);
    measured.push_back(block->instructions[kInstr].get(trace::InstrElement::MemOps));
  }

  std::vector<double> train_p(all_counts.begin(), all_counts.begin() + kTraining);
  std::vector<double> train_y(measured.begin(), measured.begin() + kTraining);
  std::vector<stats::FittedModel> fits;
  for (stats::Form form : stats::paper_forms())
    fits.push_back(stats::fit_form(form, train_p, train_y));

  util::Table table({"Cores", "Role", "Measured", "Constant", "Linear", "Log", "Exp"});
  for (std::size_t i = 0; i < all_counts.size(); ++i) {
    std::vector<std::string> row = {std::to_string(all_counts[i]),
                                    i < kTraining ? "train" : "validate",
                                    util::format("%.5g", measured[i])};
    for (const auto& fit : fits)
      row.push_back(fit.ok ? util::format("%.5g", fit.evaluate(all_counts[i])) : "n/a");
    table.add_row(std::move(row));
  }
  table.print(std::cout,
              "Memory ops of reduce_norm instr 0 vs. core count, with all four fits:");

  stats::FitOptions paper;
  paper.forms.assign(stats::paper_forms().begin(), stats::paper_forms().end());
  const auto best = stats::select_best(train_p, train_y, paper);
  std::printf("\nwinning form: %s (paper's Fig. 5 shows the log model winning)\n",
              stats::form_name(best.form).c_str());
  std::printf("per-form SSE: ");
  for (const auto& fit : fits)
    std::printf("%s=%.3g  ", stats::form_name(fit.form).c_str(), fit.sse);
  std::printf("\n");
  return 0;
}
