// Shared by pmacx_loadgen and pmacx_chaos: fork/exec a pmacx_serve on an
// ephemeral port and learn which port it got from its stdout banner.
#pragma once

#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace pmacx::tools {

struct SpawnedServer {
  pid_t pid = -1;
  std::uint16_t port = 0;
};

/// fork/exec a pmacx_serve on an ephemeral port and parse the port from its
/// "pmacx_serve listening on <addr>:<port>" banner.  `tool` names the caller
/// in the exec-failure diagnostic; `metrics_json`, when non-empty, makes the
/// spawned server write its metrics snapshot there on exit.
inline SpawnedServer spawn_server(const std::string& binary, const std::string& metrics_json,
                                  const char* tool) {
  int fds[2];
  PMACX_CHECK(::pipe(fds) == 0, std::string("pipe(): ") + std::strerror(errno));

  const pid_t pid = ::fork();
  PMACX_CHECK(pid >= 0, std::string("fork(): ") + std::strerror(errno));
  if (pid == 0) {
    // Child: stdout -> pipe, then become the server.
    ::close(fds[0]);
    ::dup2(fds[1], STDOUT_FILENO);
    ::close(fds[1]);
    std::vector<std::string> args{binary, "--port", "0"};
    if (!metrics_json.empty()) {
      args.push_back("--metrics-json");
      args.push_back(metrics_json);
    }
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& arg : args) argv.push_back(arg.data());
    argv.push_back(nullptr);
    ::execv(binary.c_str(), argv.data());
    std::fprintf(stderr, "%s: exec %s: %s\n", tool, binary.c_str(), std::strerror(errno));
    ::_exit(127);
  }

  ::close(fds[1]);
  // Read the banner line byte-by-byte (it is tiny and arrives once).
  std::string banner;
  char byte = 0;
  while (banner.size() < 256) {
    const ssize_t n = ::read(fds[0], &byte, 1);
    if (n <= 0 || byte == '\n') break;
    banner.push_back(byte);
  }
  ::close(fds[0]);

  SpawnedServer server;
  server.pid = pid;
  const std::size_t colon = banner.rfind(':');
  PMACX_CHECK(util::starts_with(banner, "pmacx_serve listening on ") &&
                  colon != std::string::npos,
              "unexpected server banner: '" + banner + "'");
  server.port =
      static_cast<std::uint16_t>(util::parse_flag_u64(banner.substr(colon + 1), "port"));
  return server;
}

}  // namespace pmacx::tools
