// Process spawning shared by pmacx_loadgen, pmacx_chaos and pmacx_cluster:
// fork/exec a server-shaped child, learn its port from the "<tool> listening
// on <addr>:<port>" banner, and (via Supervisor) keep a fleet of such
// children alive — reaping crashed ones and respawning them with exponential
// backoff on their original port.
#pragma once

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace pmacx::tools {

struct SpawnedServer {
  pid_t pid = -1;
  std::uint16_t port = 0;
};

/// One child process to spawn: the binary, its full argv tail, and the tool
/// name used in exec-failure diagnostics.  The child must print a banner of
/// the form "<anything> listening on <addr>:<port>\n" on stdout once ready.
struct SpawnSpec {
  std::string binary;
  std::vector<std::string> args;  ///< argv[1..]; argv[0] is the binary
  std::string tool = "pmacx";     ///< caller name for diagnostics
};

/// fork/exec per `spec`, blocking until the banner line arrives on the
/// child's stdout.  Throws util::Error when the banner never comes (child
/// died before printing it) or cannot be parsed; the caller owns reaping the
/// pid in that case too (the child, if any, is SIGKILLed first).
inline SpawnedServer spawn_child(const SpawnSpec& spec) {
  int fds[2];
  PMACX_CHECK(::pipe(fds) == 0, std::string("pipe(): ") + std::strerror(errno));

  const pid_t pid = ::fork();
  PMACX_CHECK(pid >= 0, std::string("fork(): ") + std::strerror(errno));
  if (pid == 0) {
    // Child: stdout -> pipe, then become the server.
    ::close(fds[0]);
    ::dup2(fds[1], STDOUT_FILENO);
    ::close(fds[1]);
    std::vector<std::string> args;
    args.reserve(spec.args.size() + 1);
    args.push_back(spec.binary);
    args.insert(args.end(), spec.args.begin(), spec.args.end());
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& arg : args) argv.push_back(arg.data());
    argv.push_back(nullptr);
    ::execv(spec.binary.c_str(), argv.data());
    std::fprintf(stderr, "%s: exec %s: %s\n", spec.tool.c_str(), spec.binary.c_str(),
                 std::strerror(errno));
    ::_exit(127);
  }

  ::close(fds[1]);
  // Read the banner line byte-by-byte (it is tiny and arrives once).
  std::string banner;
  char byte = 0;
  while (banner.size() < 256) {
    const ssize_t n = ::read(fds[0], &byte, 1);
    if (n <= 0 || byte == '\n') break;
    banner.push_back(byte);
  }
  ::close(fds[0]);

  const std::size_t marker = banner.find(" listening on ");
  const std::size_t colon = banner.rfind(':');
  if (marker == std::string::npos || colon == std::string::npos || colon < marker) {
    ::kill(pid, SIGKILL);
    throw util::Error(spec.tool + ": unexpected banner from " + spec.binary + ": '" +
                      banner + "'");
  }
  SpawnedServer server;
  server.pid = pid;
  server.port =
      static_cast<std::uint16_t>(util::parse_flag_u64(banner.substr(colon + 1), "port"));
  return server;
}

/// Legacy single-server helper used by pmacx_loadgen / pmacx_chaos: spawn a
/// pmacx_serve on an ephemeral port.  `metrics_json`, when non-empty, makes
/// the spawned server write its metrics snapshot there on exit.
inline SpawnedServer spawn_server(const std::string& binary, const std::string& metrics_json,
                                  const char* tool) {
  SpawnSpec spec;
  spec.binary = binary;
  spec.tool = tool;
  spec.args = {"--port", "0"};
  if (!metrics_json.empty()) {
    spec.args.push_back("--metrics-json");
    spec.args.push_back(metrics_json);
  }
  return spawn_child(spec);
}

/// Supervises a fleet of banner-printing children: add() spawns one and pins
/// the port it picked (rewriting the value after "--port" in its spec, so an
/// ephemeral first bind becomes a stable address); poll() reaps children
/// that exited and respawns *crashed* ones — killed by a signal or exited
/// nonzero — with exponential backoff, on the pinned port.  A child that
/// exits 0 (clean SHUTDOWN) is reaped and left down: restart-on-crash must
/// not fight an orderly drain.
///
/// Single-threaded by design: one owner calls add/poll/kill_child/
/// terminate_all from one thread (the tools' main loops).
class Supervisor {
 public:
  using Clock = std::chrono::steady_clock;

  struct Child {
    SpawnSpec spec;
    pid_t pid = -1;
    std::uint16_t port = 0;
    std::size_t restarts = 0;        ///< successful respawns after a crash
    bool alive = false;
    bool done = false;               ///< exited cleanly; never respawned
    Clock::time_point respawn_at{};  ///< earliest next respawn attempt
    std::uint64_t backoff_ms = 0;    ///< current crash backoff (doubles)
  };

  explicit Supervisor(std::uint64_t initial_backoff_ms = 50,
                      std::uint64_t max_backoff_ms = 2'000)
      : initial_backoff_ms_(initial_backoff_ms), max_backoff_ms_(max_backoff_ms) {}

  ~Supervisor() { terminate_all(); }

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  /// Spawns per `spec`, waits for the banner, pins the learned port into the
  /// spec's "--port" argument (appending one if absent) and returns the
  /// child's index.  Throws util::Error when the first spawn fails — a fleet
  /// that never came up is a startup error, not a crash to ride out.
  std::size_t add(SpawnSpec spec) {
    const SpawnedServer spawned = spawn_child(spec);
    Child child;
    child.spec = std::move(spec);
    child.pid = spawned.pid;
    child.port = spawned.port;
    child.alive = true;
    pin_port(child.spec, child.port);
    children_.push_back(std::move(child));
    return children_.size() - 1;
  }

  std::size_t size() const { return children_.size(); }
  const Child& child(std::size_t index) const { return children_.at(index); }
  pid_t pid(std::size_t index) const { return children_.at(index).pid; }
  std::uint16_t port(std::size_t index) const { return children_.at(index).port; }
  std::size_t restarts(std::size_t index) const { return children_.at(index).restarts; }
  bool alive(std::size_t index) const { return children_.at(index).alive; }

  /// Sends `sig` to a live child (the chaos killer's hook).  Returns false
  /// when the child is not currently running.
  bool kill_child(std::size_t index, int sig) {
    Child& child = children_.at(index);
    if (!child.alive) return false;
    return ::kill(child.pid, sig) == 0;
  }

  /// One supervision step: reap children that exited, schedule crashed ones
  /// for respawn (exponential backoff), and respawn those whose backoff has
  /// elapsed.  Returns the number of children currently alive.  Call this
  /// from the owner's main loop at whatever cadence it already polls.
  std::size_t poll() {
    const Clock::time_point now = Clock::now();
    std::size_t live = 0;
    for (Child& child : children_) {
      if (child.alive) {
        int status = 0;
        const pid_t reaped = ::waitpid(child.pid, &status, WNOHANG);
        if (reaped == child.pid) {
          child.alive = false;
          if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
            child.done = true;  // clean exit: stays down
          } else {
            child.backoff_ms = child.backoff_ms == 0
                                   ? initial_backoff_ms_
                                   : std::min(child.backoff_ms * 2, max_backoff_ms_);
            child.respawn_at = now + std::chrono::milliseconds(child.backoff_ms);
          }
        }
      }
      if (!child.alive && !child.done && now >= child.respawn_at) {
        try {
          const SpawnedServer spawned = spawn_child(child.spec);
          child.pid = spawned.pid;
          child.port = spawned.port;
          child.alive = true;
          ++child.restarts;
        } catch (const util::Error&) {
          // Spawn itself failed (e.g. the pinned port still in teardown):
          // treat like another crash and keep backing off.
          child.backoff_ms = std::min(std::max(child.backoff_ms, initial_backoff_ms_) * 2,
                                      max_backoff_ms_);
          child.respawn_at = Clock::now() + std::chrono::milliseconds(child.backoff_ms);
        }
      }
      if (child.alive) ++live;
    }
    return live;
  }

  /// Stops supervising: SIGTERM every live child, give the fleet a moment to
  /// drain, SIGKILL stragglers, reap everything.  Idempotent.
  void terminate_all() {
    for (Child& child : children_)
      if (child.alive) ::kill(child.pid, SIGTERM);
    const Clock::time_point deadline = Clock::now() + std::chrono::seconds(5);
    for (Child& child : children_) {
      if (!child.alive) continue;
      for (;;) {
        int status = 0;
        const pid_t reaped = ::waitpid(child.pid, &status, WNOHANG);
        if (reaped == child.pid) break;
        if (reaped < 0) break;  // already reaped elsewhere
        if (Clock::now() >= deadline) {
          ::kill(child.pid, SIGKILL);
          ::waitpid(child.pid, &status, 0);
          break;
        }
        ::usleep(10'000);
      }
      child.alive = false;
      child.done = true;
    }
  }

 private:
  static void pin_port(SpawnSpec& spec, std::uint16_t port) {
    for (std::size_t i = 0; i + 1 < spec.args.size(); ++i)
      if (spec.args[i] == "--port") {
        spec.args[i + 1] = std::to_string(port);
        return;
      }
    spec.args.push_back("--port");
    spec.args.push_back(std::to_string(port));
  }

  std::uint64_t initial_backoff_ms_;
  std::uint64_t max_backoff_ms_;
  std::vector<Child> children_;
};

}  // namespace pmacx::tools
