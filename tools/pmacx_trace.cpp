// pmacx_trace — collect one task's summary trace file.
//
// Runs a built-in synthetic application at the requested core count,
// streams the chosen rank's memory references through a cache simulator
// mimicking the chosen target system, and writes the per-block summary
// trace (the paper's Fig. 2 pipeline as a command).
//
//   pmacx_trace --app specfem3d --cores 96 --target bluewaters-p1 \
//               --out specfem3d.96.trace
#include <algorithm>
#include <cstdio>
#include <exception>
#include <optional>

#include "machine/targets.hpp"
#include "synth/registry.hpp"
#include "trace/binary_io.hpp"
#include "trace/stream_reader.hpp"
#include "synth/tracer.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/metrics.hpp"
#include "util/strings.hpp"
#include "util/threadpool.hpp"

int main(int argc, char** argv) {
  using namespace pmacx;
  util::Cli cli("pmacx_trace", "collect a summary trace of one MPI task");
  cli.add_string("app", "specfem3d", "application: specfem3d | uh3d | hpcg");
  cli.add_u64("cores", 96, "core count of the run");
  cli.add_u64("rank", 0, "rank to trace (default: the most demanding, rank 0)");
  cli.add_string("target", "bluewaters-p1",
                 "target system whose caches the simulator mimics");
  cli.add_u64("refs-cap", 1'500'000, "simulated references cap per kernel");
  cli.add_double("work-scale", 1.0, "production-run folding factor");
  cli.add_flag("no-instructions", "omit per-instruction sub-records");
  cli.add_string("out", "task.trace", "output trace file path");
  cli.add_flag("binary", "write the checksummed binary format (v002) instead of text");
  cli.add_u64("inflate-to-bytes", 0,
              "replicate blocks (fresh ids) until the binary output is at "
              "least this large — soak-test input generator; implies --binary, "
              "written via the streaming writer so memory stays flat");
  cli.add_string("signature-dir", "",
                 "also collect the full signature (demanding-rank trace + all "
                 "ranks' comm timelines) into this directory");
  cli.add_u64("threads", 0,
              "worker threads for signature collection (0 = PMACX_THREADS, "
              "else all hardware threads; 1 = serial — same output either way)");
  cli.add_string("metrics-json", "",
                 "write a pmacx-metrics-v1 snapshot (counters, stage timings, "
                 "run manifest) to this file");
  cli.add_flag("quiet", "suppress progress output");

  try {
    if (!cli.parse(argc, argv)) return 0;
    util::set_log_level(cli.get_flag("quiet") ? util::LogLevel::Warn
                                              : util::LogLevel::Info);

    const auto app = synth::make_app(cli.get_string("app"), cli.get_double("work-scale"));
    const machine::TargetSystem target = machine::target_by_name(cli.get_string("target"));

    synth::TracerOptions options;
    options.target = target.hierarchy;
    options.max_refs_per_kernel = cli.get_u64("refs-cap");
    options.instruction_detail = !cli.get_flag("no-instructions");

    const std::size_t threads =
        util::ThreadPool::resolve_threads(cli.get_u64("threads"));
    std::optional<util::ThreadPool> pool;
    if (threads > 1) pool.emplace(threads);
    options.pool = pool ? &*pool : nullptr;

    const auto cores = static_cast<std::uint32_t>(cli.get_u64("cores"));
    const auto rank = static_cast<std::uint32_t>(cli.get_u64("rank"));
    PMACX_LOG_INFO << "tracing " << app->name() << " rank " << rank << " of " << cores
                   << " against " << target.name;
    trace::TaskTrace task = synth::trace_task(*app, cores, rank, options);
    if (const std::uint64_t inflate = cli.get_u64("inflate-to-bytes"); inflate > 0) {
      // Replicate the traced blocks with fresh ids until the serialized file
      // clears the floor.  The streaming writer emits one section per block,
      // so memory stays ~one trace regardless of the requested size.
      PMACX_CHECK(!task.blocks.empty(), "--inflate-to-bytes on an empty trace");
      std::sort(task.blocks.begin(), task.blocks.end(),
                [](const auto& a, const auto& b) { return a.id < b.id; });
      const std::uint64_t base_bytes = trace::to_binary(task).size();
      const std::uint64_t repeats = (inflate + base_bytes - 1) / base_bytes;
      const std::uint64_t stride = task.blocks.back().id + 1;
      trace::BinaryStreamWriter writer(cli.get_string("out"));
      writer.begin(task, task.blocks.size() * repeats);
      for (std::uint64_t repeat = 0; repeat < repeats; ++repeat) {
        for (const trace::BasicBlockRecord& block : task.blocks) {
          trace::BasicBlockRecord copy = block;
          copy.id = block.id + repeat * stride;
          writer.add_block(copy);
        }
      }
      writer.finish();
      if (!cli.get_flag("quiet"))
        std::printf("inflated %llux (%llu blocks) -> %s\n",
                    static_cast<unsigned long long>(repeats),
                    static_cast<unsigned long long>(task.blocks.size() * repeats),
                    cli.get_string("out").c_str());
    } else if (cli.get_flag("binary")) {
      trace::save_binary(task, cli.get_string("out"));
    } else {
      task.save(cli.get_string("out"));
    }

    if (!cli.get_flag("quiet")) {
      std::printf("%s: %zu blocks, %.3g memory ops, %.3g fp ops -> %s\n",
                  app->name().c_str(), task.blocks.size(), task.total_memory_ops(),
                  task.total_fp_ops(), cli.get_string("out").c_str());
    }

    if (!cli.get_string("signature-dir").empty()) {
      const trace::AppSignature signature =
          synth::collect_signature(*app, cores, options, {rank});
      signature.save(cli.get_string("signature-dir"));
      if (!cli.get_flag("quiet"))
        std::printf("full signature (%u comm timelines) -> %s\n", cores,
                    cli.get_string("signature-dir").c_str());
    }

    if (!cli.get_string("metrics-json").empty()) {
      util::metrics::RunManifest manifest = util::metrics::RunManifest::for_tool("pmacx_trace");
      manifest.threads = static_cast<std::uint32_t>(threads);
      manifest.config = cli.values();
      util::metrics::write_json(cli.get_string("metrics-json"), manifest,
                                util::metrics::Registry::global().snapshot());
    }
    return 0;
  } catch (const util::Error& e) {
    std::fprintf(stderr, "pmacx_trace: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pmacx_trace: internal error: %s\n", e.what());
    return 1;
  }
}
