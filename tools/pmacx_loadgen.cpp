// pmacx_loadgen — load generator for pmacx_serve and pmacx_cluster.
//
// Spawns (or connects to) a prediction server, then drives it with N
// concurrent client threads issuing the same request until a shared request
// budget is spent.  Two pacing modes:
//
//   * closed loop (default): each thread sends back-to-back, measuring the
//     server's capacity;
//   * open loop (--target-rps R): request i has the *intended* send time
//     start + i/R, threads sleep until it, and latency is measured from the
//     intended time — so a stalled server inflates the latencies of the
//     requests queued behind the stall instead of silently slowing the
//     arrival process (the coordinated-omission trap).  Achieved vs target
//     rate is reported so saturation is visible.
//
// Reports req/sec and p50/p99 latency, on stdout and (with --json) as
// Google-Benchmark-shaped JSON so the CI bench gate (tools/bench_compare.py)
// can track serving throughput like any other benchmark.  Every OK response
// is checked byte-for-byte against the first one — a cache that changed an
// answer is a correctness bug, not a speedup.
//
//   pmacx_loadgen --server build/tools/pmacx_serve --requests 100 --threads 8
//       --target-cores 6144 --json SERVICE.json s96.trace s384.trace s1536.trace
//   pmacx_loadgen --server build/tools/pmacx_cluster --target-rps 50
//       --server-args "--serve build/tools/pmacx_serve --shards 3"
//       --requests 200 s16.trace s32.trace s64.trace
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <exception>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve_spawn.hpp"
#include "service/client.hpp"
#include "service/protocol.hpp"
#include "stats/descriptive.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace {

using namespace pmacx;
using Clock = std::chrono::steady_clock;

void usage() {
  std::puts(
      "pmacx_loadgen — closed-loop load generator for pmacx_serve\n"
      "\n"
      "usage: pmacx_loadgen (--server <pmacx_serve binary> | --port <p>) \\\n"
      "           [options] <trace files, ascending core counts>\n"
      "\n"
      "options:\n"
      "  --server <path>        spawn this server binary (pmacx_serve or\n"
      "                         pmacx_cluster) on an ephemeral port, drive it,\n"
      "                         then send SHUTDOWN and reap it\n"
      "  --server-args <s>      extra arguments for the spawned binary,\n"
      "                         space-separated (e.g. \"--serve ... --shards 3\")\n"
      "  --server-metrics <f>   with --server: the spawned server writes its\n"
      "                         metrics snapshot here on exit\n"
      "  --host <addr>          server address        (default: 127.0.0.1)\n"
      "  --port <p>             server port (required unless --server)\n"
      "  --requests <n>         total requests        (default: 100)\n"
      "  --threads <n>          client threads        (default: 8)\n"
      "  --target-rps <r>       open-loop arrival rate; latency is measured\n"
      "                         from each request's intended send time\n"
      "                         (default: 0 = closed loop)\n"
      "  --request-type <t>     predict | predict-interval | extrapolate |\n"
      "                         fit | status (default: predict)\n"
      "  --interval <c>         coverage for predict-interval requests\n"
      "                         (default: 0.9)\n"
      "  --target-cores <n>     extrapolation target  (default: 6144)\n"
      "  --app <name>           application model     (default: specfem3d)\n"
      "  --work-scale <s>       folding factor        (default: 1.0)\n"
      "  --machine-target <m>   prediction target     (default: bluewaters-p1)\n"
      "  --timeout-ms <ms>      client I/O deadline   (default: 60000)\n"
      "  --json <file>          write benchmark-format JSON for bench_compare.py\n");
}

std::string json_escape(const std::string& raw) {
  std::string out;
  for (char c : raw) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string server_binary, server_args, server_metrics, host = "127.0.0.1", json_path;
  std::string request_type = "predict", app = "specfem3d", machine_target = "bluewaters-p1";
  std::uint64_t port = 0, requests = 100, threads = 8, target_cores = 6144;
  std::uint64_t timeout_ms = 60'000;
  double work_scale = 1.0, target_rps = 0.0, interval_coverage = 0.9;
  std::vector<std::string> traces;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto value = [&]() -> std::string {
        PMACX_CHECK(i + 1 < argc, "option " + arg + " requires a value");
        return argv[++i];
      };
      if (arg == "--help" || arg == "-h") {
        usage();
        return 0;
      } else if (arg == "--server") {
        server_binary = value();
      } else if (arg == "--server-args") {
        server_args = value();
      } else if (arg == "--target-rps") {
        target_rps = util::parse_flag_double(value(), arg);
      } else if (arg == "--server-metrics") {
        server_metrics = value();
      } else if (arg == "--host") {
        host = value();
      } else if (arg == "--port") {
        port = util::parse_flag_u64(value(), arg);
      } else if (arg == "--requests") {
        requests = util::parse_flag_u64(value(), arg);
      } else if (arg == "--threads") {
        threads = util::parse_flag_u64(value(), arg);
      } else if (arg == "--request-type") {
        request_type = value();
      } else if (arg == "--interval") {
        interval_coverage = util::parse_flag_double(value(), arg);
      } else if (arg == "--target-cores") {
        target_cores = util::parse_flag_u64(value(), arg);
      } else if (arg == "--app") {
        app = value();
      } else if (arg == "--work-scale") {
        work_scale = util::parse_flag_double(value(), arg);
      } else if (arg == "--machine-target") {
        machine_target = value();
      } else if (arg == "--timeout-ms") {
        timeout_ms = util::parse_flag_u64(value(), arg);
      } else if (arg == "--json") {
        json_path = value();
      } else if (util::starts_with(arg, "--")) {
        PMACX_CHECK(false, "unknown option " + arg);
      } else {
        traces.push_back(arg);
      }
    }
    PMACX_CHECK(server_binary.empty() != (port == 0),
                "give exactly one of --server or --port");
    PMACX_CHECK(requests > 0 && threads > 0, "--requests and --threads must be positive");
    PMACX_CHECK(port <= 65535, "--port must fit a TCP port");
    PMACX_CHECK(target_rps >= 0.0, "--target-rps must be non-negative");

    service::Request request;
    if (request_type == "predict") {
      request.type = service::MsgType::Predict;
    } else if (request_type == "predict-interval") {
      request.type = service::MsgType::PredictInterval;
      request.interval_coverage = interval_coverage;
    } else if (request_type == "extrapolate") {
      request.type = service::MsgType::Extrapolate;
    } else if (request_type == "fit") {
      request.type = service::MsgType::Fit;
    } else if (request_type == "status") {
      request.type = service::MsgType::Status;
    } else {
      PMACX_CHECK(false, "unknown request type '" + request_type + "'");
    }
    if (request.type != service::MsgType::Status) {
      PMACX_CHECK(traces.size() >= 2,
                  "need at least two trace files (ascending core counts)");
      request.spec.trace_paths = traces;
      request.target_cores = static_cast<std::uint32_t>(target_cores);
      request.app = app;
      request.work_scale = work_scale;
      request.machine_target = machine_target;
    }

    tools::SpawnedServer spawned;
    if (!server_binary.empty()) {
      tools::SpawnSpec spec;
      spec.binary = server_binary;
      spec.tool = "pmacx_loadgen";
      spec.args = {"--port", "0"};
      for (const std::string& extra : util::split(server_args, ' '))
        if (!extra.empty()) spec.args.push_back(extra);
      if (!server_metrics.empty()) {
        spec.args.push_back("--metrics-json");
        spec.args.push_back(server_metrics);
      }
      spawned = tools::spawn_child(spec);
      port = spawned.port;
    }

    service::ClientOptions client_options;
    client_options.host = host;
    client_options.port = static_cast<std::uint16_t>(port);
    client_options.io_timeout_ms = timeout_ms;

    // Each thread owns one connection and pulls tickets from a shared
    // counter, so exactly `requests` requests hit the server no matter how
    // the threads interleave.  In open-loop mode ticket i carries the
    // intended send time start + i/target_rps.
    const bool open_loop = target_rps > 0.0;
    std::atomic<std::int64_t> next_ticket{0};
    std::atomic<std::uint64_t> ok{0}, busy{0}, errors{0};
    std::mutex result_mutex;
    // STATUS bodies report live counters and legitimately differ between
    // requests; byte-identity is only a contract for deterministic types.
    const bool check_identity = request.type != service::MsgType::Status;
    std::string expected_body;  // first OK body; all others must match
    std::vector<std::vector<double>> latencies_ns(threads);
    std::vector<std::thread> workers;
    workers.reserve(threads);

    const Clock::time_point started = Clock::now();
    for (std::uint64_t t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        std::unique_ptr<service::Client> client;
        for (;;) {
          const std::int64_t ticket = next_ticket.fetch_add(1, std::memory_order_relaxed);
          if (ticket >= static_cast<std::int64_t>(requests)) break;
          Clock::time_point sent = Clock::now();
          if (open_loop) {
            // Coordinated-omission-safe: pace to the intended arrival time
            // and charge any queueing delay behind a stalled server to the
            // request's latency, not to a silently slowed arrival process.
            const auto offset = std::chrono::nanoseconds(
                static_cast<std::int64_t>(static_cast<double>(ticket) * 1e9 / target_rps));
            sent = started + offset;
            std::this_thread::sleep_until(sent);
          }
          service::Response response;
          try {
            if (!client) client = std::make_unique<service::Client>(client_options);
            response = client->call(request);
          } catch (const std::exception& e) {
            // One timed-out or torn request costs exactly one failure, not
            // the thread's whole remaining budget: drop the connection and
            // keep pulling tickets on a fresh one.
            errors.fetch_add(1, std::memory_order_relaxed);
            std::fprintf(stderr, "pmacx_loadgen: request failed: %s\n", e.what());
            client.reset();
            continue;
          }
          const auto elapsed =
              std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - sent);
          latencies_ns[t].push_back(static_cast<double>(elapsed.count()));
          if (response.status == service::Status::Ok) {
            ok.fetch_add(1, std::memory_order_relaxed);
            if (!check_identity) continue;
            std::scoped_lock lock(result_mutex);
            if (expected_body.empty()) {
              expected_body = response.body;
            } else if (response.body != expected_body) {
              errors.fetch_add(1, std::memory_order_relaxed);
              std::fprintf(stderr,
                           "pmacx_loadgen: response diverged from the first OK "
                           "response (%zu vs %zu bytes)\n",
                           response.body.size(), expected_body.size());
            }
          } else if (response.status == service::Status::Busy) {
            busy.fetch_add(1, std::memory_order_relaxed);
          } else {
            errors.fetch_add(1, std::memory_order_relaxed);
            std::fprintf(stderr, "pmacx_loadgen: server error: %s\n",
                         response.body.c_str());
          }
        }
      });
    }
    for (std::thread& worker : workers) worker.join();
    const double wall_seconds =
        std::chrono::duration<double>(Clock::now() - started).count();

    if (!server_binary.empty()) {
      // Graceful teardown: ask the server to drain, then reap it so its
      // metrics snapshot (if any) is fully written before we return.
      try {
        service::Client control(client_options);
        service::Request shutdown;
        shutdown.type = service::MsgType::Shutdown;
        control.call(shutdown);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "pmacx_loadgen: shutdown request failed: %s\n", e.what());
        ::kill(spawned.pid, SIGTERM);
      }
      int status = 0;
      ::waitpid(spawned.pid, &status, 0);
      if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
        std::fprintf(stderr, "pmacx_loadgen: server exited abnormally (status %d)\n",
                     status);
        errors.fetch_add(1, std::memory_order_relaxed);
      }
    }

    std::vector<double> all_ns;
    for (const auto& per_thread : latencies_ns)
      all_ns.insert(all_ns.end(), per_thread.begin(), per_thread.end());
    std::sort(all_ns.begin(), all_ns.end());
    // stats::percentile interpolates at rank q·(n-1) — the same rule the fit
    // intervals use.  The old nearest-rank truncation read the *minimum* for
    // p99 on 1-2 element samples, reporting a tail below the median.
    const double p50_ms = stats::percentile(all_ns, 0.50) / 1e6;
    const double p99_ms = stats::percentile(all_ns, 0.99) / 1e6;
    PMACX_CHECK(p50_ms <= p99_ms, "latency percentiles inverted (p50 > p99)");
    const double throughput =
        wall_seconds > 0 ? static_cast<double>(ok.load()) / wall_seconds : 0.0;

    std::printf("pmacx_loadgen: %llu requests (%llu ok, %llu busy, %llu errors) "
                "over %llu threads in %.3f s\n",
                static_cast<unsigned long long>(requests),
                static_cast<unsigned long long>(ok.load()),
                static_cast<unsigned long long>(busy.load()),
                static_cast<unsigned long long>(errors.load()),
                static_cast<unsigned long long>(threads), wall_seconds);
    const double achieved_rps =
        wall_seconds > 0 ? static_cast<double>(requests) / wall_seconds : 0.0;
    std::printf("  throughput: %.2f req/s   latency p50 %.3f ms  p99 %.3f ms\n",
                throughput, p50_ms, p99_ms);
    if (open_loop)
      std::printf("  open loop: target %.2f req/s, achieved %.2f req/s%s\n", target_rps,
                  achieved_rps,
                  achieved_rps < 0.95 * target_rps ? "  (saturated: behind target)" : "");

    if (!json_path.empty()) {
      std::ofstream out(json_path);
      PMACX_CHECK(out.good(), "cannot write " + json_path);
      const std::string base = "loadgen/" + request_type;
      out << "{\n"
          << "  \"context\": {\n"
          << "    \"num_cpus\": " << std::thread::hardware_concurrency() << ",\n"
          << "    \"mhz_per_cpu\": 0,\n"
          << "    \"executable\": \"pmacx_loadgen\",\n"
          << "    \"client_threads\": " << threads << ",\n"
          << "    \"pacing\": \"" << (open_loop ? "open" : "closed") << "\",\n"
          << "    \"machine_target\": \"" << json_escape(machine_target) << "\"\n"
          << "  },\n"
          << "  \"benchmarks\": [\n"
          << "    {\"name\": \"" << base << "/throughput\", \"run_type\": \"iteration\", "
          << "\"iterations\": " << requests << ", \"real_time\": " << wall_seconds * 1e3
          << ", \"cpu_time\": 0, \"time_unit\": \"ms\", \"items_per_second\": "
          << throughput << ", \"ok\": " << ok.load() << ", \"busy\": " << busy.load()
          << ", \"errors\": " << errors.load() << ", \"failures\": " << errors.load()
          << ", \"target_rps\": " << target_rps << ", \"achieved_rps\": " << achieved_rps
          << "},\n"
          << "    {\"name\": \"" << base << "/latency_p50\", \"run_type\": \"iteration\", "
          << "\"iterations\": " << all_ns.size() << ", \"real_time\": " << p50_ms
          << ", \"cpu_time\": 0, \"time_unit\": \"ms\"},\n"
          << "    {\"name\": \"" << base << "/latency_p99\", \"run_type\": \"iteration\", "
          << "\"iterations\": " << all_ns.size() << ", \"real_time\": " << p99_ms
          << ", \"cpu_time\": 0, \"time_unit\": \"ms\"}\n"
          << "  ]\n"
          << "}\n";
    }

    if (errors.load() > 0) return 1;
    PMACX_CHECK(ok.load() + busy.load() == requests,
                "request accounting mismatch (lost responses)");
    return 0;
  } catch (const util::Error& e) {
    std::fprintf(stderr, "pmacx_loadgen: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pmacx_loadgen: internal error: %s\n", e.what());
    return 1;
  }
}
