#!/usr/bin/env python3
"""Merge and compare Google Benchmark JSON results for the CI bench gate.

Two subcommands:

  merge <out.json> <in1.json> [in2.json ...]
      Combine several --benchmark_format=json outputs into one file.  The
      first input's context is kept (it records the machine the numbers came
      from); benchmarks are concatenated in input order.

  compare <baseline.json> <current.json> [--tolerance 0.15]
                                         [--metric items_per_second]
                                         [--allow-context-drift]
      Fail (exit 1) when any benchmark present in the baseline regressed by
      more than `tolerance` on the chosen throughput metric, disappeared
      from the current run, or reports a different metric than the baseline
      (e.g. SetItemsProcessed added/removed — the values are incomparable).  Benchmarks only in the current run are reported
      as new and never fail the gate.  With --allow-context-drift, a baseline
      recorded on a machine with a different CPU count (or a far-off clock)
      downgrades regressions to warnings — the numbers aren't comparable, so
      the gate reports instead of failing.  Refresh the baseline from a CI
      artifact to re-arm the gate (see README).

  speedup <current.json> --pair NEW=OLD [--pair ...]
                         [--floor 4.0] [--target 6.0]
                         [--min-speedup-vs old_baseline.json]
                         [--allow-context-drift]
      Enforce a minimum speedup of benchmark NEW over benchmark OLD on
      items_per_second.  Both names are read from the *same* results file,
      so the enforced ratio is measured in one run on one machine and
      cannot drift with host speed.  A pair below --floor hard-fails; a
      pair below --target only warns (the stretch goal is advisory).  With
      --min-speedup-vs, each pair's NEW is additionally divided by OLD's
      value from a separately recorded baseline file (e.g. the pre-refactor
      bench/baseline_prerefactor.json); that cross-run ratio is always
      advisory — numbers recorded on a different machine (or the same
      machine under different load) cannot carry a hard gate — and exists
      so the log shows the speedup against the actual shipped history.

Aggregate entries (_mean/_median/_stddev/_cv) and aggregate-only runs are
skipped by `compare`; `speedup` prefers a _mean aggregate when the run used
--benchmark_repetitions, else the raw entry.
"""

import argparse
import json
import sys


SKIPPED_SUFFIXES = ("_mean", "_median", "_stddev", "_cv", "_min", "_max")


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(f"bench_compare: cannot read {path}: {err}")


def bench_map(doc, metric):
    """name -> (value, source) for every comparable benchmark.

    `source` records which field the value came from (the requested metric,
    or the 1/real_time fallback) so the gate can refuse to compute a ratio
    between two different metrics — items/sec vs inverse nanoseconds is
    meaningless.
    """
    out = {}
    for bench in doc.get("benchmarks", []):
        name = bench.get("name", "")
        if not name or name.endswith(SKIPPED_SUFFIXES):
            continue
        if bench.get("run_type") == "aggregate":
            continue
        if metric in bench:
            out[name] = (float(bench[metric]), metric)
        elif metric == "items_per_second" and "real_time" in bench:
            # Benchmarks without SetItemsProcessed: fall back to inverse time
            # so they are still gated (higher is better either way).
            real = float(bench["real_time"])
            if real > 0:
                out[name] = (1.0 / real, "1/real_time")
    return out


def context_drift(baseline, current):
    """Human-readable reasons the two runs' machines are not comparable."""
    base = baseline.get("context", {})
    cur = current.get("context", {})
    reasons = []
    if base.get("num_cpus") != cur.get("num_cpus"):
        reasons.append(
            f"num_cpus {base.get('num_cpus')} -> {cur.get('num_cpus')}")
    base_mhz = base.get("mhz_per_cpu") or 0
    cur_mhz = cur.get("mhz_per_cpu") or 0
    if base_mhz and cur_mhz:
        ratio = cur_mhz / base_mhz
        if ratio < 0.75 or ratio > 1.25:
            reasons.append(f"mhz_per_cpu {base_mhz} -> {cur_mhz}")
    if base.get("library_build_type") != cur.get("library_build_type"):
        reasons.append(
            f"build type {base.get('library_build_type')} -> "
            f"{cur.get('library_build_type')}")
    return reasons


def speedup_value(doc, name, metric="items_per_second"):
    """The gated value for `name`: its _mean aggregate when the run used
    repetitions (less noise), else its raw entry.  None when absent."""
    mean = None
    raw = None
    for bench in doc.get("benchmarks", []):
        bench_name = bench.get("name", "")
        if bench_name == name + "_mean" and metric in bench:
            mean = float(bench[metric])
        elif bench_name == name and metric in bench and \
                bench.get("run_type") != "aggregate":
            raw = float(bench[metric])
    return mean if mean is not None else raw


def cmd_speedup(args):
    current_doc = load(args.current)
    old_doc = load(args.min_speedup_vs) if args.min_speedup_vs else None
    pairs = []
    for spec in args.pair:
        if "=" not in spec:
            sys.exit(f"bench_compare speedup: --pair wants NEW=OLD, got {spec!r}")
        new_name, old_name = spec.split("=", 1)
        pairs.append((new_name, old_name))
    if not pairs:
        sys.exit("bench_compare speedup: at least one --pair is required")

    drift = context_drift(old_doc, current_doc) if old_doc else []
    if drift:
        print("context drift between recorded baseline and current run:")
        for reason in drift:
            print(f"  - {reason}")

    failures, warnings = [], []

    def check(label, ratio, advisory):
        flag = ""
        if ratio < args.floor:
            if advisory:
                warnings.append((label, ratio))
                flag = f"  << below {args.floor:.1f}x floor (advisory)"
            else:
                failures.append((label, ratio))
                flag = f"  << BELOW {args.floor:.1f}x FLOOR"
        elif args.target and ratio < args.target:
            warnings.append((label, ratio))
            flag = f"  << below {args.target:.1f}x stretch target (advisory)"
        print(f"  {label}: {ratio:.2f}x{flag}")

    for new_name, old_name in pairs:
        new_value = speedup_value(current_doc, new_name)
        old_value = speedup_value(current_doc, old_name)
        if new_value is None or old_value is None or old_value <= 0:
            missing = new_name if new_value is None else old_name
            print(f"  {new_name} vs {old_name}: MISSING ({missing})")
            failures.append((f"{new_name} vs {old_name}", 0.0))
            continue
        print(f"{new_name} ({new_value:.4g}) vs {old_name} ({old_value:.4g}):")
        check("same-run", new_value / old_value, advisory=False)
        if old_doc is not None:
            old_recorded = speedup_value(old_doc, old_name)
            if old_recorded is None or old_recorded <= 0:
                print(f"  vs-recorded: {old_name} not in {args.min_speedup_vs} "
                      "(skipped)")
            else:
                # Cross-run numbers never hard-gate: the recording machine
                # (or its load) differs, so this line is for the log.
                check("vs-recorded", new_value / old_recorded, advisory=True)

    if warnings:
        print(f"\n{len(warnings)} advisory warning(s):")
        for label, ratio in warnings:
            print(f"  {label}: {ratio:.2f}x")
    if failures:
        print(f"\n{len(failures)} pair(s) below the {args.floor:.1f}x floor:")
        for label, ratio in failures:
            print(f"  {label}: {ratio:.2f}x")
        return 1
    print(f"\nspeedup gate: OK (floor {args.floor:.1f}x"
          + (f", stretch target {args.target:.1f}x" if args.target else "")
          + ")")
    return 0


def cmd_merge(args):
    merged = None
    for path in args.inputs:
        doc = load(path)
        if merged is None:
            merged = {"context": doc.get("context", {}), "benchmarks": []}
        merged["benchmarks"].extend(doc.get("benchmarks", []))
    if merged is None:
        sys.exit("bench_compare merge: no inputs")
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(merged, handle, indent=1)
        handle.write("\n")
    print(f"merged {len(args.inputs)} file(s), "
          f"{len(merged['benchmarks'])} benchmark entries -> {args.out}")


def cmd_compare(args):
    baseline_doc = load(args.baseline)
    current_doc = load(args.current)
    baseline = bench_map(baseline_doc, args.metric)
    current = bench_map(current_doc, args.metric)
    if not baseline:
        sys.exit(f"bench_compare: no comparable benchmarks in {args.baseline}")

    drift = context_drift(baseline_doc, current_doc)
    advisory = bool(drift) and args.allow_context_drift
    if drift:
        print("context drift between baseline and current run:")
        for reason in drift:
            print(f"  - {reason}")
        if advisory:
            print("  regressions are reported as warnings only "
                  "(--allow-context-drift); refresh the baseline from a CI "
                  "artifact to re-arm the gate")

    regressions, missing, mismatched = [], [], []
    width = max(len(name) for name in baseline)
    print(f"\n{'benchmark':<{width}}  {'baseline':>12}  {'current':>12}  ratio")
    for name in sorted(baseline):
        base_value, base_source = baseline[name]
        if name not in current:
            missing.append(name)
            print(f"{name:<{width}}  {base_value:>12.4g}  {'MISSING':>12}  -")
            continue
        cur_value, cur_source = current[name]
        if base_source != cur_source:
            # One run has SetItemsProcessed and the other does not: the two
            # numbers measure different things, so flag instead of gating on
            # a cross-metric ratio.
            mismatched.append((name, base_source, cur_source))
            print(f"{name:<{width}}  {base_value:>12.4g}  {cur_value:>12.4g}  "
                  f"    -  << metric mismatch ({base_source} vs {cur_source})")
            continue
        ratio = cur_value / base_value if base_value > 0 else float("inf")
        flag = ""
        if ratio < 1.0 - args.tolerance:
            regressions.append((name, ratio))
            flag = "  << REGRESSION" if not advisory else "  << regressed (advisory)"
        print(f"{name:<{width}}  {base_value:>12.4g}  {cur_value:>12.4g}  "
              f"{ratio:5.2f}{flag}")
    for name in sorted(set(current) - set(baseline)):
        print(f"{name:<{width}}  {'(new)':>12}  {current[name][0]:>12.4g}  -")

    failed = False
    if missing:
        print(f"\n{len(missing)} baseline benchmark(s) missing from the "
              "current run (renamed or deleted?)")
        failed = True
    if mismatched:
        print(f"\n{len(mismatched)} benchmark(s) report a different metric in "
              "baseline vs current (SetItemsProcessed added or removed?); the "
              "values are incomparable — refresh bench/baseline.json:")
        for name, base_source, cur_source in mismatched:
            print(f"  {name}: {base_source} -> {cur_source}")
        failed = True
    if regressions:
        print(f"\n{len(regressions)} benchmark(s) regressed more than "
              f"{args.tolerance:.0%} on {args.metric}:")
        for name, ratio in regressions:
            print(f"  {name}: {1.0 - ratio:.1%} slower")
        if not advisory:
            failed = True
    if not failed:
        print("\nbench gate: OK" + (" (advisory)" if advisory else ""))
    return 1 if failed else 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command", required=True)

    merge = sub.add_parser("merge", help="combine gbench JSON files")
    merge.add_argument("out")
    merge.add_argument("inputs", nargs="+")
    merge.set_defaults(func=cmd_merge)

    compare = sub.add_parser("compare", help="gate current results vs baseline")
    compare.add_argument("baseline")
    compare.add_argument("current")
    compare.add_argument("--tolerance", type=float, default=0.15,
                         help="allowed throughput drop (default 0.15)")
    compare.add_argument("--metric", default="items_per_second")
    compare.add_argument("--allow-context-drift", action="store_true",
                         help="warn instead of fail when the baseline came "
                              "from a different machine")
    compare.set_defaults(func=cmd_compare)

    speedup = sub.add_parser(
        "speedup", help="enforce NEW>=floor*OLD within one results file")
    speedup.add_argument("current")
    speedup.add_argument("--pair", action="append", default=[],
                         metavar="NEW=OLD",
                         help="benchmark names to ratio (repeatable)")
    speedup.add_argument("--floor", type=float, default=4.0,
                         help="minimum NEW/OLD ratio (default 4.0; hard fail)")
    speedup.add_argument("--target", type=float, default=6.0,
                         help="stretch ratio (default 6.0; advisory warning; "
                              "0 disables)")
    speedup.add_argument("--min-speedup-vs", metavar="OLD_BASELINE",
                         help="also ratio NEW against OLD's value recorded in "
                              "this baseline file (always advisory)")
    speedup.add_argument("--allow-context-drift", action="store_true",
                         help="accepted for symmetry with compare; cross-run "
                              "ratios are advisory regardless")
    speedup.set_defaults(func=cmd_speedup)

    args = parser.parse_args()
    sys.exit(args.func(args) or 0)


if __name__ == "__main__":
    main()
