// pmacx_predict — predict runtime (and energy) from a trace file.
//
// Reads a computation trace file (collected or extrapolated — the file
// records which), profiles the target machine, rebuilds the run's
// communication timelines from the named application model, and runs the
// PSiNS convolution + replay.
//
//   pmacx_predict --trace s6144.trace --app specfem3d --target bluewaters-p1
#include <cstdio>
#include <exception>
#include <fstream>

#include "machine/profile_io.hpp"
#include "machine/targets.hpp"
#include "psins/energy.hpp"
#include "psins/predictor.hpp"
#include "synth/registry.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/metrics.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace pmacx;
  util::Cli cli("pmacx_predict", "predict runtime from a trace file or signature");
  cli.add_string("trace", "", "computation trace file (from pmacx_trace or "
                 "pmacx_extrapolate); combine with --app for the comm timelines");
  cli.add_string("signature", "",
                 "signature directory (from pmacx_trace --signature-dir); "
                 "self-contained, no --app needed");
  cli.add_string("app", "specfem3d",
                 "application model supplying the communication timelines "
                 "(--trace mode only)");
  cli.add_double("work-scale", 1.0, "production-run folding factor (match the trace's)");
  cli.add_string("target", "bluewaters-p1", "target system to predict on");
  cli.add_string("profile-cache", "",
                 "cache the probed machine profile in this file (loaded when "
                 "present, probed + written otherwise)");
  cli.add_flag("energy", "also print the energy prediction");
  cli.add_flag("blocks", "print the per-block time breakdown");
  cli.add_string("metrics-json", "",
                 "write a pmacx-metrics-v1 snapshot (counters, stage timings, "
                 "run manifest) to this file");

  try {
    if (!cli.parse(argc, argv)) return 0;
    util::set_log_level(util::LogLevel::Warn);
    PMACX_CHECK(cli.get_string("trace").empty() != cli.get_string("signature").empty(),
                "give exactly one of --trace or --signature");

    trace::AppSignature signature;
    if (!cli.get_string("signature").empty()) {
      signature = trace::AppSignature::load(cli.get_string("signature"));
    } else {
      trace::TaskTrace task = trace::TaskTrace::load(cli.get_string("trace"));
      task.validate();
      const auto app =
          synth::make_app(cli.get_string("app"), cli.get_double("work-scale"));
      PMACX_CHECK(task.app == app->name(),
                  "trace was collected from '" + task.app + "' but --app is '" +
                      app->name() + "'");
      signature.app = task.app;
      signature.core_count = task.core_count;
      signature.target_system = task.target_system;
      signature.demanding_rank = task.rank;
      signature.tasks.push_back(task);
      for (std::uint32_t rank = 0; rank < task.core_count; ++rank)
        signature.comm.push_back(app->comm_trace(task.core_count, rank));
    }
    const trace::TaskTrace& task = signature.demanding_task();

    const machine::TargetSystem target = machine::target_by_name(cli.get_string("target"));
    const std::string cache_path = cli.get_string("profile-cache");
    const machine::MachineProfile profile = [&] {
      if (!cache_path.empty() && std::ifstream(cache_path).good()) {
        std::printf("loading cached profile %s...\n", cache_path.c_str());
        machine::MachineProfile cached = machine::load_profile(cache_path);
        PMACX_CHECK(cached.system.name == target.name,
                    "cached profile is for '" + cached.system.name + "', not '" +
                        target.name + "'");
        return cached;
      }
      std::printf("profiling %s (MultiMAPS)...\n", target.name.c_str());
      machine::MachineProfile probed = machine::build_profile(target);
      if (!cache_path.empty()) machine::save_profile(probed, cache_path);
      return probed;
    }();

    const psins::PredictionResult prediction = psins::predict(signature, profile);
    std::fputs(psins::render_prediction(task, target.name, prediction).c_str(), stdout);

    if (cli.get_flag("blocks")) {
      std::printf("\n  per-block breakdown:\n");
      for (const auto& block : prediction.blocks.blocks) {
        std::printf("    block %-4llu mem %.4f s  fp %.4f s  @ %s\n",
                    static_cast<unsigned long long>(block.block_id), block.memory_seconds,
                    block.fp_seconds, util::human_rate(block.bandwidth_bytes_per_s).c_str());
      }
    }

    if (cli.get_flag("energy")) {
      const auto energy = psins::estimate_energy(signature, profile, prediction);
      std::printf("\n  energy: %.3f MJ dynamic + %.3f MJ static = %.3f MJ (%.1f kW mean)\n",
                  energy.dynamic_joules / 1e6, energy.static_joules / 1e6,
                  energy.total_joules / 1e6, energy.mean_watts / 1e3);
    }

    if (!cli.get_string("metrics-json").empty()) {
      util::metrics::RunManifest manifest =
          util::metrics::RunManifest::for_tool("pmacx_predict");
      manifest.threads = 1;  // prediction replays serially
      manifest.config = cli.values();
      if (!cli.get_string("trace").empty()) manifest.add_input(cli.get_string("trace"));
      if (!cache_path.empty()) manifest.add_input(cache_path);
      util::metrics::write_json(cli.get_string("metrics-json"), manifest,
                                util::metrics::Registry::global().snapshot());
    }
    return 0;
  } catch (const util::Error& e) {
    std::fprintf(stderr, "pmacx_predict: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pmacx_predict: internal error: %s\n", e.what());
    return 1;
  }
}
