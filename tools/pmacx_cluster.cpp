// pmacx_cluster — sharded, replicated prediction cluster launcher.
//
// Spawns N pmacx_serve shard processes (from a topology file or a synthetic
// localhost topology), supervises them — a crashed shard is respawned with
// exponential backoff on its original port — and fronts them with an
// in-process service::Router that consistent-hashes data-plane requests on
// their models_digest with replication factor R and health-checked failover.
// Prints one machine-readable line once ready:
//
//   pmacx_cluster listening on <bind>:<port>
//
// so pmacx_loadgen --server (with --server-args) can drive a whole cluster
// exactly like a single pmacx_serve.  Exits on SIGINT/SIGTERM or a SHUTDOWN
// request (which the router fans out to every shard first).
//
//   pmacx_cluster --serve build/tools/pmacx_serve --shards 3 --replication 2
//   pmacx_cluster --serve pmacx_serve --topology cluster.topo --port 7077
#include <csignal>
#include <cstdio>
#include <exception>
#include <thread>

#include "service/router.hpp"
#include "service/shard_ring.hpp"
#include "serve_spawn.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/metrics.hpp"

namespace {

// Signal handlers may only touch async-signal-safe state; Router::stop() is
// a relaxed atomic store, which qualifies.
pmacx::service::Router* g_router = nullptr;

void handle_signal(int) {
  if (g_router != nullptr) g_router->stop();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pmacx;
  util::Cli cli("pmacx_cluster", "run a sharded, replicated pmacx prediction cluster");
  cli.add_string("serve", "", "path to the pmacx_serve binary to spawn per shard");
  cli.add_string("topology", "",
                 "topology file ('replication R' + 'shard <id> <host> <port>' lines; "
                 "port 0 = ephemeral); default: synthetic localhost topology");
  cli.add_u64("shards", 3, "shard count for the synthetic topology");
  cli.add_u64("replication", 2, "replication factor for the synthetic topology");
  cli.add_string("bind", "127.0.0.1", "router listen address");
  cli.add_u64("port", 0, "router TCP port (0 picks an ephemeral port)");
  cli.add_u64("threads", 0, "per-shard handler threads (0 = PMACX_THREADS or hardware)");
  cli.add_u64("cache-mb", 256, "per-shard model cache budget in MiB");
  cli.add_u64("timeout-ms", 30000, "per-shard per-request deadline in milliseconds");
  cli.add_u64("failover-deadline-ms", 20000,
              "router per-request budget across replica hops and backoff");
  cli.add_u64("shard-timeout-ms", 10000,
              "router per-hop I/O deadline on shard calls (dead shards fail over "
              "instantly regardless; this only bounds slow responses)");
  cli.add_u64("restart-backoff-ms", 50,
              "initial supervisor backoff before respawning a crashed shard");
  cli.add_string("metrics-json", "",
                 "write a pmacx-metrics-v1 snapshot (service.router.* counters and "
                 "per-shard latency histograms) to this file on exit");

  try {
    if (!cli.parse(argc, argv)) return 0;
    util::set_log_level(util::LogLevel::Warn);
    PMACX_CHECK(!cli.get_string("serve").empty(), "--serve <pmacx_serve binary> is required");
    PMACX_CHECK(cli.get_u64("port") <= 65535, "--port must fit a TCP port");

    service::Topology topology;
    if (!cli.get_string("topology").empty()) {
      topology = service::Topology::load(cli.get_string("topology"));
    } else {
      topology.replication = cli.get_u64("replication");
      for (std::uint64_t id = 0; id < cli.get_u64("shards"); ++id)
        topology.shards.push_back(
            {static_cast<std::uint32_t>(id), "127.0.0.1", /*port=*/0});
    }
    topology.validate();
    // The epoch hashes shard ids + replication, never ports, so it is
    // already final before ephemeral ports resolve.
    const std::uint64_t epoch = topology.epoch();

    tools::Supervisor supervisor(cli.get_u64("restart-backoff-ms"));
    for (service::ShardEndpoint& shard : topology.shards) {
      tools::SpawnSpec spec;
      spec.binary = cli.get_string("serve");
      spec.tool = "pmacx_cluster";
      spec.args = {"--bind",     shard.host,
                   "--port",     std::to_string(shard.port),
                   "--shard-id", std::to_string(shard.id),
                   "--ring-epoch", std::to_string(epoch),
                   "--threads",  std::to_string(cli.get_u64("threads")),
                   "--cache-mb", std::to_string(cli.get_u64("cache-mb")),
                   "--timeout-ms", std::to_string(cli.get_u64("timeout-ms"))};
      const std::size_t index = supervisor.add(std::move(spec));
      shard.port = supervisor.port(index);  // resolve ephemeral binds
    }

    service::RouterOptions options;
    options.bind = cli.get_string("bind");
    options.port = static_cast<std::uint16_t>(cli.get_u64("port"));
    options.topology = topology;
    options.failover_deadline_ms = cli.get_u64("failover-deadline-ms");
    options.shard_io_timeout_ms = cli.get_u64("shard-timeout-ms");

    service::Router router(options);
    g_router = &router;
    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);
    std::signal(SIGPIPE, SIG_IGN);

    router.start();
    std::printf("pmacx_cluster listening on %s:%u\n", options.bind.c_str(),
                static_cast<unsigned>(router.port()));
    std::fflush(stdout);  // spawners block on this line; don't sit in a buffer

    // Supervision loop: respawn crashed shards until the router is asked to
    // stop (signal or SHUTDOWN fan-out — whose exit-0 shards stay down).
    while (!router.stopping()) {
      supervisor.poll();
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }

    router.stop();
    router.wait();
    g_router = nullptr;
    supervisor.terminate_all();
    std::printf("pmacx_cluster: drained after %llu requests\n",
                static_cast<unsigned long long>(router.requests_routed()));

    if (!cli.get_string("metrics-json").empty()) {
      util::metrics::RunManifest manifest =
          util::metrics::RunManifest::for_tool("pmacx_cluster");
      manifest.config = cli.values();
      util::metrics::write_json(cli.get_string("metrics-json"), manifest,
                                util::metrics::Registry::global().snapshot());
    }
    return 0;
  } catch (const util::Error& e) {
    std::fprintf(stderr, "pmacx_cluster: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pmacx_cluster: internal error: %s\n", e.what());
    return 1;
  }
}
