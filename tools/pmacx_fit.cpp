// pmacx_fit — fit canonical forms to a (core count, value) series.
//
// The paper's Figures 4 and 5 as a command: give it a series, it fits every
// canonical form, prints the comparison, and evaluates the winner at the
// requested core counts.
//
//   pmacx_fit --series "1024:0.36,2048:0.30,4096:0.22" --at 8192
//   pmacx_fit --csv measurements.csv --at 8192 --forms all
#include <cstdio>
#include <exception>
#include <fstream>
#include <sstream>

#include "stats/canonical.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace pmacx;

/// Parses "p:v,p:v,..." pairs.
void parse_series(const std::string& text, std::vector<double>& p, std::vector<double>& y) {
  for (const std::string& pair : util::split(text, ',')) {
    const auto fields = util::split(pair, ':');
    PMACX_CHECK(fields.size() == 2, "series entries must be cores:value, got '" + pair + "'");
    p.push_back(util::parse_flag_double(fields[0], "--series"));
    y.push_back(util::parse_flag_double(fields[1], "--series"));
  }
}

/// Parses a two-column CSV (header line optional).
void parse_csv(const std::string& path, std::vector<double>& p, std::vector<double>& y) {
  std::ifstream in(path);
  PMACX_CHECK(in.good(), "cannot open '" + path + "'");
  std::string line;
  while (std::getline(in, line)) {
    const auto trimmed = util::trim(line);
    if (trimmed.empty()) continue;
    const auto fields = util::split(trimmed, ',');
    PMACX_CHECK(fields.size() >= 2, "csv rows need two columns: '" + line + "'");
    try {
      p.push_back(util::parse_double(fields[0], "cores"));
      y.push_back(util::parse_double(fields[1], "value"));
    } catch (const util::Error&) {
      PMACX_CHECK(p.empty() && y.empty(), "malformed csv row: '" + line + "'");
      // Header line: skip.
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli("pmacx_fit", "fit canonical scaling forms to a measurement series");
  cli.add_string("series", "", "inline series \"cores:value,cores:value,...\"");
  cli.add_string("csv", "", "two-column csv file (cores,value)");
  cli.add_string("at", "", "comma-separated core counts to evaluate the best fit at");
  cli.add_string("forms", "default", "paper | default | all");
  cli.add_flag("loo-cv", "leave-one-out selection (needs >= 4 points)");
  cli.add_flag("aicc", "AICc selection (penalizes parameters; needs >= k+2 points)");
  cli.add_u64("bootstrap", 0,
              "residual-bootstrap resamples for a 90% interval at --at (0 = off)");
  cli.add_string("metrics-json", "",
                 "write a pmacx-metrics-v1 snapshot (counters, stage timings, "
                 "run manifest) to this file");

  try {
    if (!cli.parse(argc, argv)) return 0;

    std::vector<double> p, y;
    if (!cli.get_string("series").empty()) parse_series(cli.get_string("series"), p, y);
    if (!cli.get_string("csv").empty()) parse_csv(cli.get_string("csv"), p, y);
    PMACX_CHECK(!p.empty(), "provide --series or --csv");

    stats::FitOptions options;
    const std::string forms = cli.get_string("forms");
    if (forms == "paper") {
      options.forms.assign(stats::paper_forms().begin(), stats::paper_forms().end());
    } else if (forms == "all") {
      options.forms.assign(stats::all_forms().begin(), stats::all_forms().end());
    } else {
      PMACX_CHECK(forms == "default", "unknown --forms value '" + forms + "'");
    }
    options.loo_cv = cli.get_flag("loo-cv");
    if (cli.get_flag("aicc")) options.criterion = stats::SelectionCriterion::Aicc;

    util::Table table({"Form", "Parameters", "SSE", "R2"});
    for (const auto& fit : stats::fit_all(p, y, options)) {
      table.add_row({stats::form_name(fit.form),
                     fit.ok ? fit.describe() : "(cannot represent this data)",
                     fit.ok ? util::format("%.4g", fit.sse) : "-",
                     fit.ok ? util::format("%.6f", fit.r2) : "-"});
    }
    std::printf("%s", table.to_ascii().c_str());

    const auto best = stats::select_best(p, y, options);
    std::printf("\nbest fit: %s\n", best.describe().c_str());

    if (!cli.get_string("at").empty()) {
      const std::uint64_t resamples = cli.get_u64("bootstrap");
      for (const std::string& target : util::split(cli.get_string("at"), ',')) {
        const double cores = util::parse_flag_double(target, "--at");
        PMACX_CHECK(cores > 0,
                    "--at core counts must be positive, got '" + target + "'");
        if (resamples > 0) {
          const auto interval =
              stats::bootstrap_interval(p, y, cores, options, resamples);
          std::printf("  at %g cores: %.6g  (90%% interval [%.6g, %.6g])\n", cores,
                      interval.point, interval.lo, interval.hi);
        } else {
          std::printf("  at %g cores: %.6g\n", cores, best.evaluate(cores));
        }
      }
    }

    if (!cli.get_string("metrics-json").empty()) {
      util::metrics::RunManifest manifest = util::metrics::RunManifest::for_tool("pmacx_fit");
      manifest.threads = 1;  // fitting one series is always serial
      manifest.config = cli.values();
      if (!cli.get_string("csv").empty()) manifest.add_input(cli.get_string("csv"));
      util::metrics::write_json(cli.get_string("metrics-json"), manifest,
                                util::metrics::Registry::global().snapshot());
    }
    return 0;
  } catch (const util::Error& e) {
    std::fprintf(stderr, "pmacx_fit: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pmacx_fit: internal error: %s\n", e.what());
    return 1;
  }
}
