// pmacx_extrapolate — synthesize a trace at a larger core count.
//
// Reads a series of trace files collected at increasing small core counts
// (positional arguments), fits every feature-vector element with the
// canonical forms, and writes the extrapolated trace for the target count —
// the paper's Section IV as a command.
//
//   pmacx_extrapolate --target-cores 6144 --out s6144.trace \
//       s96.trace s384.trace s1536.trace
#include <cmath>
#include <cstdio>
#include <exception>
#include <fstream>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/comm_extrap.hpp"
#include "core/extrapolator.hpp"
#include "trace/binary_io.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/io.hpp"
#include "util/metrics.hpp"
#include "util/strings.hpp"
#include "util/threadpool.hpp"

namespace {

void usage() {
  std::puts(
      "pmacx_extrapolate — extrapolate a trace series to a larger core count\n"
      "\n"
      "usage: pmacx_extrapolate [options] <trace files, ascending core counts>\n"
      "       pmacx_extrapolate --signatures [options] <signature dirs, ascending>\n"
      "\n"
      "options:\n"
      "  --target-cores <n>     core count to extrapolate to (required)\n"
      "  --signatures           inputs are signature directories (from\n"
      "                         pmacx_trace --signature-dir); extrapolates the\n"
      "                         communication timelines too and writes a full\n"
      "                         signature directory to --out\n"
      "  --out <file|dir>       output path (default: extrapolated.trace)\n"
      "  --forms <set>          paper | default | all   (default: default)\n"
      "  --missing <policy>     drop | zero | carry | fit-present (default: zero)\n"
      "  --influence <frac>     influence threshold     (default: 0.001)\n"
      "  --loo-cv               leave-one-out selection (needs >= 4 inputs)\n"
      "  --salvage              recover damaged binary traces block-by-block\n"
      "                         instead of rejecting them (lost blocks are\n"
      "                         reported in the diagnostics)\n"
      "  --report               print the fit-quality report\n"
      "  --worst <n>            with --report, list the n worst elements\n"
      "  --csv <file>           write the full per-element fit report as CSV\n"
      "  --bootstrap <n>        attach n-resample 90% intervals to the report\n"
      "  --interval <coverage>  Bayesian prediction intervals: write the\n"
      "                         lo/median/hi traces next to --out (suffixes\n"
      "                         .lo/.median/.hi) and add bayes_* columns to\n"
      "                         the --csv report; coverage in (0, 1)\n"
      "  --holdout              coverage check: hold out the *last* (largest\n"
      "                         core count) input as ground truth, fit on the\n"
      "                         rest, and report how many element intervals\n"
      "                         contain the held-out value (counters\n"
      "                         fits.bayes.holdout_total / _covered); implies\n"
      "                         --interval 0.9 unless --interval is given,\n"
      "                         and defaults --target-cores to the held-out\n"
      "                         trace's core count\n"
      "  --threads <n>          worker threads for input loading and fitting\n"
      "                         (default: PMACX_THREADS, else all hardware\n"
      "                         threads; 1 = serial — output is identical\n"
      "                         either way)\n"
      "  --metrics-json <file>  write a pmacx-metrics-v1 snapshot (counters,\n"
      "                         stage timings, run manifest) to this file\n"
      "  --checkpoint-dir <dir> crash-safe fitting: persist fitted models in\n"
      "                         pmacx-ckpt-v1 chunks under <dir> as they\n"
      "                         complete; a re-run after a crash re-fits only\n"
      "                         the missing chunks and produces byte-identical\n"
      "                         output.  Stale checkpoints (different inputs\n"
      "                         or options) are detected by content digest\n"
      "                         and redone\n"
      "  --checkpoint-chunk <n> elements per checkpoint chunk (default: 256;\n"
      "                         smaller chunks lose less work to a crash but\n"
      "                         pay more fsyncs)\n"
      "  --crash-after-chunks <n>\n"
      "                         test hook: SIGKILL this process after n\n"
      "                         checkpoint chunk writes (requires\n"
      "                         --checkpoint-dir)\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pmacx;

  std::vector<std::string> inputs;
  std::uint32_t target_cores = 0;
  std::string out = "extrapolated.trace";
  std::string forms = "default";
  std::string missing = "zero";
  double influence = 0.001;
  bool loo = false, report = false, signatures = false, salvage = false;
  std::uint64_t worst = 5;
  std::string csv;
  std::uint64_t bootstrap = 0;
  double interval = 0.0;
  bool holdout = false;
  std::uint64_t threads = 0;  // 0 = PMACX_THREADS / hardware
  std::string metrics_json;
  std::string checkpoint_dir;
  std::uint64_t checkpoint_chunk = 256;
  std::uint64_t crash_after_chunks = 0;

  try {
    // PMACX_IO_FAULTS fault-injects every checkpoint/trace write in this
    // process (spawn tests and operators rehearse disk failure with it).
    util::io::install_faults_from_env();
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto value = [&]() -> std::string {
        PMACX_CHECK(i + 1 < argc, "option " + arg + " requires a value");
        return argv[++i];
      };
      if (arg == "--help" || arg == "-h") {
        usage();
        return 0;
      } else if (arg == "--target-cores") {
        target_cores = static_cast<std::uint32_t>(util::parse_flag_u64(value(), arg));
      } else if (arg == "--out") {
        out = value();
      } else if (arg == "--forms") {
        forms = value();
      } else if (arg == "--missing") {
        missing = value();
      } else if (arg == "--influence") {
        influence = util::parse_flag_double(value(), arg);
      } else if (arg == "--loo-cv") {
        loo = true;
      } else if (arg == "--salvage") {
        salvage = true;
      } else if (arg == "--signatures") {
        signatures = true;
      } else if (arg == "--report") {
        report = true;
      } else if (arg == "--worst") {
        worst = util::parse_flag_u64(value(), arg);
      } else if (arg == "--csv") {
        csv = value();
      } else if (arg == "--bootstrap") {
        bootstrap = util::parse_flag_u64(value(), arg);
      } else if (arg == "--interval") {
        interval = util::parse_flag_double(value(), arg);
        PMACX_CHECK(interval > 0.0 && interval < 1.0, "--interval must be in (0, 1)");
      } else if (arg == "--holdout") {
        holdout = true;
      } else if (arg == "--threads") {
        threads = util::parse_flag_u64(value(), arg);
      } else if (arg == "--metrics-json") {
        metrics_json = value();
      } else if (arg == "--checkpoint-dir") {
        checkpoint_dir = value();
      } else if (arg == "--checkpoint-chunk") {
        checkpoint_chunk = util::parse_flag_u64(value(), arg);
        PMACX_CHECK(checkpoint_chunk > 0, "--checkpoint-chunk must be positive");
      } else if (arg == "--crash-after-chunks") {
        crash_after_chunks = util::parse_flag_u64(value(), arg);
      } else if (util::starts_with(arg, "--")) {
        PMACX_CHECK(false, "unknown option " + arg);
      } else {
        inputs.push_back(arg);
      }
    }
    if (holdout && interval == 0.0) interval = 0.9;
    PMACX_CHECK(target_cores > 0 || holdout,
                "--target-cores is required (defaulted only under --holdout)");
    PMACX_CHECK(inputs.size() >= (holdout ? 3u : 2u),
                holdout ? "--holdout needs at least three inputs (two to fit, one held out)"
                        : "need at least two inputs");
    PMACX_CHECK(!(holdout && signatures), "--holdout does not support --signatures");
    PMACX_CHECK(crash_after_chunks == 0 || !checkpoint_dir.empty(),
                "--crash-after-chunks requires --checkpoint-dir");

    const std::size_t n_threads = util::ThreadPool::resolve_threads(threads);
    std::optional<util::ThreadPool> pool;
    if (n_threads > 1) pool.emplace(n_threads);

    // Ingestion: every input file loads (and validates) independently, so
    // I/O + parsing overlap across the pool.  Per-file salvage outcomes are
    // collected per slot and merged into the diagnostics in input order —
    // identical to the serial loop's ledger.  A failing file's ParseError
    // propagates with its original type, lowest input index first.
    struct LoadedInput {
      trace::TaskTrace trace;
      std::optional<trace::AppSignature> signature;
      trace::SalvageReport salvaged;
    };
    core::DiagnosticsReport diagnostics;
    auto load_one = [&](std::size_t i) {
      const std::string& path = inputs[i];
      LoadedInput loaded;
      if (signatures) {
        loaded.signature = trace::AppSignature::load(path);
        loaded.trace = loaded.signature->demanding_task();
      } else if (salvage) {
        loaded.trace = trace::load_salvage(path, loaded.salvaged);
      } else {
        loaded.trace = trace::TaskTrace::load(path);
      }
      loaded.trace.validate();
      return loaded;
    };
    std::vector<LoadedInput> loaded_inputs;
    {
      util::metrics::StageTimer load_timer("extrapolate.load");
      if (pool) {
        loaded_inputs = pool->parallel_map<LoadedInput>(inputs.size(), load_one);
      } else {
        loaded_inputs.reserve(inputs.size());
        for (std::size_t i = 0; i < inputs.size(); ++i)
          loaded_inputs.push_back(load_one(i));
      }
    }
    std::vector<trace::AppSignature> input_signatures;
    std::vector<trace::TaskTrace> traces;
    traces.reserve(inputs.size());
    for (std::size_t i = 0; i < loaded_inputs.size(); ++i) {
      LoadedInput& loaded = loaded_inputs[i];
      if (loaded.signature) input_signatures.push_back(std::move(*loaded.signature));
      if (loaded.salvaged.used) {
        ++diagnostics.salvaged_files;
        diagnostics.salvaged_blocks += loaded.salvaged.blocks_recovered;
        diagnostics.lost_blocks += loaded.salvaged.blocks_lost();
        diagnostics.warn(inputs[i] + ": salvaged " +
                         std::to_string(loaded.salvaged.blocks_recovered) + " of " +
                         std::to_string(loaded.salvaged.blocks_expected) + " blocks (" +
                         loaded.salvaged.error + ")");
      }
      traces.push_back(std::move(loaded.trace));
    }

    // Holdout mode: the largest-count input becomes ground truth — the fit
    // never sees it, and the interval it produces at that count is judged
    // against it below.
    std::optional<trace::TaskTrace> truth;
    if (holdout) {
      truth = std::move(traces.back());
      traces.pop_back();
      if (target_cores == 0) target_cores = truth->core_count;
    }

    core::ExtrapolationOptions options;
    if (forms == "paper") {
      options.fit.forms.assign(stats::paper_forms().begin(), stats::paper_forms().end());
    } else if (forms == "all") {
      options.fit.forms.assign(stats::all_forms().begin(), stats::all_forms().end());
    } else {
      PMACX_CHECK(forms == "default", "unknown --forms value '" + forms + "'");
    }
    if (missing == "drop") {
      options.missing = core::MissingPolicy::Drop;
    } else if (missing == "carry") {
      options.missing = core::MissingPolicy::CarryLast;
    } else if (missing == "fit-present") {
      options.missing = core::MissingPolicy::FitPresent;
    } else {
      PMACX_CHECK(missing == "zero", "unknown --missing value '" + missing + "'");
    }
    options.influence_threshold = influence;
    options.fit.loo_cv = loo;
    options.bootstrap_resamples = bootstrap;
    options.interval_coverage = interval;
    options.threads = n_threads;
    options.pool = pool ? &*pool : nullptr;

    const auto result = [&] {
      if (checkpoint_dir.empty()) return core::extrapolate_task(traces, target_cores, options);
      // Checkpointed path: persist fitted models chunk by chunk, reuse any
      // valid chunks from a prior (possibly killed) run.  The digest is
      // computed over the loaded traces' canonical binary encoding, so it is
      // stable across runs and across --salvage / --signatures input modes.
      core::CheckpointConfig ckpt;
      ckpt.dir = checkpoint_dir;
      ckpt.digest = core::models_digest_for_traces(traces, options);
      ckpt.chunk_elements = checkpoint_chunk;
      ckpt.kill_after_chunks = crash_after_chunks;
      core::CheckpointStats stats;
      const core::TaskModelSet models =
          core::fit_task_models_checkpointed(traces, options, ckpt, &stats);
      // Progress on stderr: stdout stays byte-identical to an uncheckpointed
      // run, which the resume golden test relies on.
      std::fprintf(stderr,
                   "pmacx_extrapolate: checkpoint %s: reused %zu/%zu elements, fitted "
                   "%zu, discarded %zu stale chunk(s)\n",
                   ckpt.digest.c_str(), stats.elements_reused, stats.elements_total,
                   stats.elements_fitted, stats.chunks_discarded);
      return core::extrapolate_from_models(models, target_cores);
    }();
    diagnostics.merge(result.diagnostics);
    if (signatures) {
      // Full-signature mode: extrapolate the communication side too and
      // write a self-contained signature directory.
      if (out == "extrapolated.trace") out = "extrapolated.sig";
      const auto comm = core::extrapolate_comm(input_signatures, target_cores);
      trace::AppSignature synthesized;
      synthesized.app = result.trace.app;
      synthesized.core_count = target_cores;
      synthesized.target_system = result.trace.target_system;
      synthesized.demanding_rank = result.trace.rank;
      synthesized.tasks.push_back(result.trace);
      synthesized.comm = comm.comm;
      synthesized.save(out);
      std::printf("extrapolated %zu blocks + %u comm timelines to %u cores -> %s\n",
                  result.trace.blocks.size(), target_cores, target_cores, out.c_str());
    } else {
      result.trace.save(out);
      std::printf("extrapolated %zu blocks to %u cores -> %s\n",
                  result.trace.blocks.size(), target_cores, out.c_str());
      if (result.has_interval) {
        result.trace_lo.save(out + ".lo");
        result.trace_median.save(out + ".median");
        result.trace_hi.save(out + ".hi");
        std::printf("interval traces (%g%% coverage) -> %s.{lo,median,hi}\n",
                    interval * 100.0, out.c_str());
      }
    }

    if (truth) {
      // Coverage tally: for every element with an interval, look up the true
      // value in the held-out trace and check lo ≤ truth ≤ hi (raw posterior
      // quantiles; the truth is always in-domain, so clamping cannot change
      // the verdict).  A tiny scale-relative tolerance absorbs the float
      // noise of a collapsed (exact-fit) interval.
      std::unordered_map<std::uint64_t, const trace::BasicBlockRecord*> truth_blocks;
      for (const auto& block : truth->blocks) truth_blocks[block.id] = &block;
      std::uint64_t interval_total = 0, interval_covered = 0;
      for (const auto& fit : result.report.elements) {
        if (!fit.has_bayes) continue;
        const auto it = truth_blocks.find(fit.key.block_id);
        if (it == truth_blocks.end()) continue;
        double actual = 0.0;
        if (fit.key.is_block_level()) {
          actual = it->second->features[fit.key.element];
        } else {
          const trace::InstructionRecord* found = nullptr;
          for (const auto& instr : it->second->instructions) {
            if (static_cast<std::int32_t>(instr.index) == fit.key.instr_index) {
              found = &instr;
              break;
            }
          }
          if (found == nullptr) continue;
          actual = found->features[fit.key.element];
        }
        ++interval_total;
        const double tolerance = 1e-9 * (1.0 + std::fabs(actual));
        if (actual >= fit.bayes.lo - tolerance && actual <= fit.bayes.hi + tolerance)
          ++interval_covered;
      }
      util::metrics::Registry& registry = util::metrics::Registry::global();
      registry.counter("fits.bayes.holdout_total").add(interval_total);
      registry.counter("fits.bayes.holdout_covered").add(interval_covered);
      const double rate = interval_total > 0
                              ? static_cast<double>(interval_covered) /
                                    static_cast<double>(interval_total)
                              : 1.0;
      std::printf(
          "holdout coverage at %u cores: %llu/%llu elements inside the %g%% "
          "interval (%.1f%%)\n",
          target_cores, static_cast<unsigned long long>(interval_covered),
          static_cast<unsigned long long>(interval_total), interval * 100.0,
          rate * 100.0);
    }

    if (!csv.empty()) {
      std::ofstream out(csv, std::ios::trunc);
      PMACX_CHECK(out.good(), "cannot open '" + csv + "' for writing");
      out << result.report.to_csv();
      std::printf("fit report CSV -> %s\n", csv.c_str());
    }

    if (report) {
      std::printf("\n%s", result.report.summary().c_str());
      std::printf("\nworst-fitting influential elements:\n");
      for (const auto* fit : result.report.worst_elements(worst)) {
        std::printf("  %-40s %-28s fit err %s\n", fit->key.describe().c_str(),
                    fit->model.describe().c_str(),
                    util::human_percent(fit->max_fit_rel_error, 1).c_str());
      }
    }
    // A degraded run must be visibly different from a clean one, report
    // flag or not.
    if (report || !diagnostics.clean())
      std::printf("\n%s", diagnostics.summary().c_str());

    if (!metrics_json.empty()) {
      util::metrics::RunManifest manifest =
          util::metrics::RunManifest::for_tool("pmacx_extrapolate");
      manifest.threads = static_cast<std::uint32_t>(n_threads);
      manifest.config = {
          {"target-cores", std::to_string(target_cores)},
          {"out", out},
          {"forms", forms},
          {"missing", missing},
          {"influence", util::format("%g", influence)},
          {"loo-cv", loo ? "1" : "0"},
          {"salvage", salvage ? "1" : "0"},
          {"signatures", signatures ? "1" : "0"},
          {"bootstrap", std::to_string(bootstrap)},
          {"interval", util::format("%g", interval)},
          {"holdout", holdout ? "1" : "0"},
          {"threads", std::to_string(threads)},
          {"checkpoint-dir", checkpoint_dir},
      };
      for (const std::string& path : inputs) manifest.add_input(path);
      util::metrics::write_json(metrics_json, manifest,
                                util::metrics::Registry::global().snapshot());
    }
    return 0;
  } catch (const util::Error& e) {
    std::fprintf(stderr, "pmacx_extrapolate: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pmacx_extrapolate: internal error: %s\n", e.what());
    return 1;
  }
}
