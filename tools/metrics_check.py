#!/usr/bin/env python3
"""Validate a --metrics-json snapshot for the CI observability gate.

  metrics_check.py <snapshot.json> [--max-fallback-ratio 0.05]
                                   [--require-counter NAME ...]
                                   [--require-positive-counter NAME ...]
                                   [--require-nonzero-timer STAGE ...]
                                   [--min-counter-ratio NUM DEN MIN ...]
                                   [--max-counter NAME MAX ...]

Checks, in order:

  1. Schema: the document is a pmacx-metrics-v1 object with a well-formed
     manifest (tool/version/git_sha/threads/config/inputs), and counters,
     gauges, and timers sections of the right shapes.  A malformed snapshot
     means the emitter and this checker disagree about the schema — that is
     a bug, not a tuning problem, so it always fails.
  2. Required metrics: every stage the emitting tool is expected to run
     (TOOL_REQUIRED_STAGES, keyed by manifest.tool — a serve-only run has no
     trace.* timers, so one global list cannot work) plus every
     --require-nonzero-timer stage must have recorded wall time
     ("<stage>.wall_ns" with count > 0 and sum > 0); every counter the tool
     is expected to register (TOOL_REQUIRED_COUNTERS — e.g. the SIMD/mmap
     fast-path counters fits.simd_batches, trace.mmap_bytes,
     trace.mmap_fallbacks for pmacx_extrapolate) plus every
     --require-counter name must be present, and every
     --require-positive-counter name must be present with a value > 0.
  3. Fit health: when the snapshot contains fit counters, the fraction of
     elements that fell back to the constant form
     (fits.constant_fallback / fits.total) must not exceed
     --max-fallback-ratio.  A fallback surge means the canonical forms
     stopped representing the workload — the extrapolations still "work"
     but quietly degrade to flat lines, which is exactly the failure mode
     the observability layer exists to surface.
  4. Ceiling gates: each --max-counter NAME MAX asserts
     counters[NAME] <= MAX, treating an absent counter as 0 (failure
     counters are registered lazily, on the first failure — absence IS the
     healthy state).  CI uses --max-counter ingest.refit_failures 0 and
     --max-counter service.requests.error 0 to pin "the soak lost nothing".
  5. Ratio gates: each --min-counter-ratio NUM DEN MIN asserts
     counters[NUM] / counters[DEN] >= MIN (with DEN required present and
     > 0).  CI uses this for the Bayesian interval coverage gate:
     fits.bayes.holdout_covered / fits.bayes.holdout_total must stay at or
     above the stated coverage minus the agreed slack.

Exit code 0 when every check passes, 1 otherwise.
"""

import argparse
import json
import sys


# Stage timers every healthy run of a tool records, keyed by manifest.tool.
# Tools without an entry (pmacx_serve, pmacx_fit, pmacx_inspect) have no
# mandatory stages — what they must show is asserted per-run via
# --require-*-counter flags instead.
TOOL_REQUIRED_STAGES = {
    "pmacx_extrapolate": ("extrapolate.load", "extrapolate.fit", "extrapolate.apply"),
    "pmacx_trace": ("trace.task",),
    "pmacx_predict": ("psins.predict",),
}

# Counters every snapshot from a tool must carry (presence, not positivity —
# a run may legitimately record zero).  The fast-path counters are registered
# up front by the trace loader and the batch fitter precisely so their
# absence means the instrumented code path was compiled out or regressed,
# which this map turns into a hard failure.  Positivity (e.g. "the bench run
# must actually have exercised the SIMD batch path") is asserted per-run via
# --require-positive-counter; see docs/OBSERVABILITY.md.
TOOL_REQUIRED_COUNTERS = {
    # pmacx_fit is absent deliberately: it fits one series via select_best
    # and never constructs the BatchFitter that registers fits.simd_batches.
    "pmacx_extrapolate": ("fits.total", "fits.simd_batches",
                          "trace.mmap_bytes", "trace.mmap_fallbacks"),
    # The fault layer registers its op/fault/retry counters up front, and
    # the sweep registers io.temp_leaks before the first round — if any of
    # these vanish from a diskchaos snapshot the fault-injection shim has
    # been bypassed or compiled out.  Positivity of io.faults.injected
    # (the sweep actually injected something) and the io.temp_leaks == 0
    # ceiling are asserted per-run in CI.
    "pmacx_diskchaos": ("io.ops.write", "io.ops.fsync", "io.ops.rename",
                        "io.faults.injected", "io.temp_leaks"),
}


def fail(errors):
    for err in errors:
        print(f"metrics_check: {err}", file=sys.stderr)
    sys.exit(1)


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        fail([f"cannot read {path}: {err}"])


def is_uint(value):
    return isinstance(value, int) and not isinstance(value, bool) and value >= 0


def check_manifest(manifest, errors):
    if not isinstance(manifest, dict):
        errors.append("manifest is not an object")
        return
    for key in ("tool", "version", "git_sha"):
        if not isinstance(manifest.get(key), str) or not manifest.get(key):
            errors.append(f"manifest.{key} missing or not a non-empty string")
    threads = manifest.get("threads")
    if not is_uint(threads) or threads < 1:
        errors.append(f"manifest.threads must be a positive integer, got {threads!r}")
    config = manifest.get("config")
    if not isinstance(config, dict):
        errors.append("manifest.config is not an object")
    else:
        for key, value in config.items():
            if not isinstance(value, str):
                errors.append(f"manifest.config[{key!r}] is not a string")
    inputs = manifest.get("inputs")
    if not isinstance(inputs, list):
        errors.append("manifest.inputs is not an array")
        return
    for i, entry in enumerate(inputs):
        if not isinstance(entry, dict):
            errors.append(f"manifest.inputs[{i}] is not an object")
            continue
        if not isinstance(entry.get("path"), str) or not entry.get("path"):
            errors.append(f"manifest.inputs[{i}].path missing")
        if not is_uint(entry.get("bytes")):
            errors.append(f"manifest.inputs[{i}].bytes is not a non-negative integer")
        crc = entry.get("crc32")
        if not (isinstance(crc, str) and len(crc) == 8
                and all(c in "0123456789abcdef" for c in crc)):
            errors.append(f"manifest.inputs[{i}].crc32 is not 8 lowercase hex digits")
        if not isinstance(entry.get("readable"), bool):
            errors.append(f"manifest.inputs[{i}].readable is not a boolean")


def check_sections(doc, errors):
    counters = doc.get("counters")
    if not isinstance(counters, dict):
        errors.append("counters is not an object")
        counters = {}
    for name, value in counters.items():
        if not is_uint(value):
            errors.append(f"counter {name!r} is not a non-negative integer")

    gauges = doc.get("gauges")
    if not isinstance(gauges, dict):
        errors.append("gauges is not an object")
    else:
        for name, value in gauges.items():
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                errors.append(f"gauge {name!r} is not a number")

    timers = doc.get("timers")
    if not isinstance(timers, dict):
        errors.append("timers is not an object")
        timers = {}
    for name, hist in timers.items():
        if not isinstance(hist, dict):
            errors.append(f"timer {name!r} is not an object")
            continue
        for field in ("count", "sum", "min", "max"):
            if not is_uint(hist.get(field)):
                errors.append(f"timer {name!r}.{field} is not a non-negative integer")
                break
        else:
            if hist["min"] > hist["max"]:
                errors.append(f"timer {name!r} has min > max")
            if hist["count"] > 0 and hist["sum"] < hist["max"]:
                errors.append(f"timer {name!r} has sum < max")
    return counters, timers


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("snapshot")
    parser.add_argument("--max-fallback-ratio", type=float, default=0.05,
                        help="allowed fits.constant_fallback / fits.total "
                             "(default 0.05)")
    parser.add_argument("--require-counter", action="append", default=[],
                        metavar="NAME", help="counter that must be present")
    parser.add_argument("--require-positive-counter", action="append", default=[],
                        metavar="NAME",
                        help="counter that must be present with a value > 0")
    parser.add_argument("--require-nonzero-timer", action="append", default=[],
                        metavar="STAGE",
                        help="stage whose <STAGE>.wall_ns must have count > 0 "
                             "and sum > 0 (added to the emitting tool's "
                             "TOOL_REQUIRED_STAGES)")
    parser.add_argument("--max-counter", action="append", default=[],
                        nargs=2, metavar=("NAME", "MAX"),
                        help="require counters[NAME] <= MAX (absent counts "
                             "as 0 — failure counters register lazily)")
    parser.add_argument("--min-counter-ratio", action="append", default=[],
                        nargs=3, metavar=("NUM", "DEN", "MIN"),
                        help="require counters[NUM] / counters[DEN] >= MIN; "
                             "DEN must be present and > 0")
    args = parser.parse_args()

    doc = load(args.snapshot)
    errors = []
    if not isinstance(doc, dict):
        fail(["snapshot is not a JSON object"])
    if doc.get("schema") != "pmacx-metrics-v1":
        errors.append(f"unexpected schema {doc.get('schema')!r} "
                      "(this checker understands pmacx-metrics-v1)")
    check_manifest(doc.get("manifest"), errors)
    counters, timers = check_sections(doc, errors)

    manifest_tool = doc.get("manifest", {})
    tool_name = manifest_tool.get("tool") if isinstance(manifest_tool, dict) else None
    required_counters = list(TOOL_REQUIRED_COUNTERS.get(tool_name, ()))
    for name in args.require_counter:
        if name not in required_counters:
            required_counters.append(name)
    for name in required_counters:
        if name not in counters:
            errors.append(f"required counter {name!r} is missing")
    for name in args.require_positive_counter:
        if name not in counters:
            errors.append(f"required counter {name!r} is missing")
        elif not (is_uint(counters[name]) and counters[name] > 0):
            errors.append(f"required counter {name!r} must be > 0, "
                          f"got {counters[name]!r}")

    manifest = doc.get("manifest") if isinstance(doc.get("manifest"), dict) else {}
    tool_stages = TOOL_REQUIRED_STAGES.get(manifest.get("tool"), ())
    required_stages = list(tool_stages)
    for stage in args.require_nonzero_timer:
        if stage not in required_stages:
            required_stages.append(stage)
    for stage in required_stages:
        hist = timers.get(f"{stage}.wall_ns")
        if not isinstance(hist, dict):
            errors.append(f"required timer {stage!r} ({stage}.wall_ns) is missing")
        elif not (is_uint(hist.get("count")) and hist["count"] > 0
                  and is_uint(hist.get("sum")) and hist["sum"] > 0):
            errors.append(f"required timer {stage!r} recorded no time")

    total = counters.get("fits.total", 0)
    fallback = counters.get("fits.constant_fallback", 0)
    if is_uint(total) and is_uint(fallback) and total > 0:
        ratio = fallback / total
        print(f"metrics_check: fits.constant_fallback {fallback} / "
              f"fits.total {total} = {ratio:.4f} "
              f"(max {args.max_fallback_ratio:.4f})")
        if ratio > args.max_fallback_ratio:
            errors.append(
                f"constant-fallback ratio {ratio:.4f} exceeds "
                f"{args.max_fallback_ratio:.4f} — the canonical forms are "
                "failing to represent this workload")

    for name, max_text in args.max_counter:
        try:
            maximum = int(max_text)
        except ValueError:
            errors.append(f"--max-counter maximum {max_text!r} is not an integer")
            continue
        value = counters.get(name, 0)
        if not is_uint(value) or value > maximum:
            errors.append(f"counter {name!r} = {value!r} exceeds the allowed "
                          f"maximum {maximum}")

    for num_name, den_name, min_text in args.min_counter_ratio:
        try:
            minimum = float(min_text)
        except ValueError:
            errors.append(f"--min-counter-ratio minimum {min_text!r} is not a number")
            continue
        numerator = counters.get(num_name)
        denominator = counters.get(den_name)
        if not is_uint(denominator) or denominator == 0:
            errors.append(f"ratio gate {num_name}/{den_name}: denominator "
                          f"{den_name!r} missing or zero ({denominator!r})")
            continue
        if not is_uint(numerator):
            errors.append(f"ratio gate {num_name}/{den_name}: numerator "
                          f"{num_name!r} missing ({numerator!r})")
            continue
        ratio = numerator / denominator
        print(f"metrics_check: {num_name} {numerator} / {den_name} "
              f"{denominator} = {ratio:.4f} (min {minimum:.4f})")
        if ratio < minimum:
            errors.append(f"ratio {num_name}/{den_name} = {ratio:.4f} is below "
                          f"the required minimum {minimum:.4f}")

    if errors:
        fail(errors)
    print(f"metrics_check: {args.snapshot} OK "
          f"({len(counters)} counters, {len(timers)} timers)")


if __name__ == "__main__":
    main()
