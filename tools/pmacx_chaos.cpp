// pmacx_chaos — randomized network-fault harness for pmacx_serve.
//
// Spawns (or connects to) a prediction server, then runs a sequence of
// chaos rounds: each round puts a freshly seeded service::ChaosProxy
// between the clients and the server and drives a mixed request load
// (STATUS / FIT / EXTRAPOLATE / PREDICT) through it while the proxy
// injects partial writes, short reads, resets, slow-loris trickle,
// delayed/duplicated frames, and mid-frame disconnects.
//
// The invariants asserted, per round and overall:
//
//   * never crash   — the server answers a direct (un-proxied) STATUS probe
//                     after every round, and (in --server mode) exits
//                     cleanly on SHUTDOWN at the end;
//   * never hang    — every request ends within a hard wall-clock bound
//                     (the client retry deadline plus one I/O timeout);
//   * bounded memory— in --server mode the server's RSS (/proc/<pid>/statm)
//                     must stay under --max-rss-mb across all rounds;
//   * definite outcome — every request ends in OK, BUSY, a server-reported
//                     error (the ParseError channel), or a client-side
//                     transport error; nothing is left in limbo.
//
// Results go to stdout and (with --json) to a machine-readable report the
// CI chaos job uploads as its artifact.  Exit 0 iff no invariant was
// violated; every seed is deterministic, so a failing report's seed replays
// the exact fault schedule.
//
// Cluster mode (--cluster N) raises the bar from "definite outcome" to
// ZERO LOSS: it spawns N supervised pmacx_serve shards with replication R,
// fronts each with its own chaos proxy, routes through an in-process
// service::Router, and SIGKILLs random replicas of the workload's digest
// mid-load (one at a time, waiting for the supervisor to respawn each victim
// before the next kill, so one replica always survives).  Every data-plane
// request must end OK — failover absorbs the kills — and every OK payload
// must be byte-identical to a direct, un-proxied single-shard run.
//
//   pmacx_chaos --server build/tools/pmacx_serve --seed-count 32
//       --json CHAOS.json s16.trace s32.trace s64.trace
//   pmacx_chaos --server build/tools/pmacx_serve --cluster 3 --replication 2
//       --requests 60 --kills 3 --json CLUSTER_CHAOS.json s16.trace s32.trace s64.trace
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <exception>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/checkpoint.hpp"
#include "serve_spawn.hpp"
#include "service/chaos.hpp"
#include "service/client.hpp"
#include "service/protocol.hpp"
#include "service/router.hpp"
#include "service/shard_ring.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace {

using namespace pmacx;
using Clock = std::chrono::steady_clock;

void usage() {
  std::puts(
      "pmacx_chaos — randomized network-fault harness for pmacx_serve\n"
      "\n"
      "usage: pmacx_chaos (--server <pmacx_serve binary> | --port <p>) \\\n"
      "           [options] <trace files, ascending core counts>\n"
      "\n"
      "options:\n"
      "  --server <path>        spawn this pmacx_serve on an ephemeral port,\n"
      "                         chaos it, send SHUTDOWN, and check it exits 0\n"
      "  --host <addr>          server address        (default: 127.0.0.1)\n"
      "  --port <p>             server port (required unless --server)\n"
      "  --seed-count <n>       chaos rounds to run   (default: 8)\n"
      "  --seed <s>             root seed; round r uses derive_seed(s, r)\n"
      "  --requests-per-seed <n> requests per round   (default: 24)\n"
      "  --threads <n>          client threads        (default: 4)\n"
      "  --deadline-ms <ms>     per-request retry deadline (default: 15000);\n"
      "                         a request is a HANG past twice this bound\n"
      "  --max-rss-mb <mb>      server RSS cap, --server mode (default: 512)\n"
      "  --target-cores <n>     extrapolation target  (default: 256)\n"
      "  --app <name>           application model     (default: specfem3d)\n"
      "  --machine-target <m>   prediction target     (default: bluewaters-p1)\n"
      "  --json <file>          write the chaos report as JSON\n"
      "\n"
      "cluster mode (zero-loss failover under SIGKILL; requires --server):\n"
      "  --cluster <n>          spawn an n-shard supervised cluster and route\n"
      "                         through an in-process service::Router with a\n"
      "                         chaos proxy in front of every shard\n"
      "  --replication <r>      replication factor    (default: 2)\n"
      "  --requests <n>         total cluster-mode requests (default: 60)\n"
      "  --kills <k>            replicas to SIGKILL mid-load (default: 3)\n"
      "  --metrics-json <f>     write the router's pmacx-metrics-v1 snapshot\n"
      "                         (service.router.* counters) to this file\n");
}

/// Resident set size of a process in MiB, from /proc/<pid>/statm; 0 when
/// unreadable (proc gone or not Linux).
double rss_mb(pid_t pid) {
  std::ifstream in("/proc/" + std::to_string(pid) + "/statm");
  long total = 0, resident = 0;
  if (!(in >> total >> resident)) return 0.0;
  return static_cast<double>(resident) *
         static_cast<double>(::sysconf(_SC_PAGESIZE)) / (1024.0 * 1024.0);
}

/// Per-round (and aggregate) outcome tallies.  Everything here is a
/// *definite* outcome; the absence of a bucket for "still waiting" is the
/// point.
struct Outcomes {
  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> busy{0};
  std::atomic<std::uint64_t> server_error{0};     ///< Error response (ParseError channel)
  std::atomic<std::uint64_t> transport_error{0};  ///< client-side util::Error
  std::atomic<std::uint64_t> hangs{0};            ///< wall clock blew the bound
  std::atomic<double> max_request_ms{0.0};

  void record_ms(double ms) {
    double seen = max_request_ms.load(std::memory_order_relaxed);
    while (ms > seen &&
           !max_request_ms.compare_exchange_weak(seen, ms, std::memory_order_relaxed)) {
    }
  }
};

struct ClusterParams {
  std::string serve_binary;
  std::vector<std::string> traces;
  std::uint64_t shards = 3;
  std::uint64_t replication = 2;
  std::uint64_t requests = 60;
  std::uint64_t kills = 3;
  std::uint64_t threads = 4;
  std::uint64_t root_seed = 1;
  std::uint64_t target_cores = 256;
  std::string app, machine_target, json_path, metrics_json;
};

/// Cluster-mode chaos (file comment): returns the process exit code.
int run_cluster_chaos(const ClusterParams& params) {
  // --- Spawn and supervise the shard fleet. -------------------------------
  service::Topology topology;
  topology.replication = params.replication;
  for (std::uint64_t id = 0; id < params.shards; ++id)
    topology.shards.push_back({static_cast<std::uint32_t>(id), "127.0.0.1", 0});
  topology.validate();
  const std::uint64_t epoch = topology.epoch();

  tools::Supervisor supervisor(/*initial_backoff_ms=*/50);
  std::vector<std::uint16_t> shard_ports(params.shards, 0);
  for (std::uint64_t id = 0; id < params.shards; ++id) {
    tools::SpawnSpec spec;
    spec.binary = params.serve_binary;
    spec.tool = "pmacx_chaos";
    spec.args = {"--bind", "127.0.0.1", "--port", "0",
                 "--shard-id", std::to_string(id), "--ring-epoch", std::to_string(epoch)};
    const std::size_t index = supervisor.add(std::move(spec));
    shard_ports[id] = supervisor.port(index);  // pinned across respawns
  }

  // --- One chaos proxy per shard; the router talks through them. ----------
  std::vector<std::unique_ptr<service::ChaosProxy>> proxies;
  for (std::uint64_t id = 0; id < params.shards; ++id) {
    service::ChaosOptions chaos_options;
    chaos_options.upstream_host = "127.0.0.1";
    chaos_options.upstream_port = shard_ports[id];
    chaos_options.seed = util::derive_seed(params.root_seed, 100 + id);
    proxies.push_back(std::make_unique<service::ChaosProxy>(chaos_options));
    proxies.back()->start();
    topology.shards[id].port = proxies.back()->port();
  }

  service::RouterOptions router_options;
  router_options.topology = topology;
  // Generous budgets: a dead shard fails over instantly on connect-refused,
  // so these only bound genuinely slow responses — and under sanitizer
  // builds a cold-cache fit can legitimately take tens of seconds.  Tight
  // budgets here would misreport slowness as lost requests.
  router_options.shard_io_timeout_ms = 120'000;
  router_options.failover_deadline_ms = 240'000;
  service::Router router(router_options);
  router.start();

  // --- The request mix and its routing digest. ----------------------------
  service::Request status_request;
  status_request.type = service::MsgType::Status;
  service::Request fit_request;
  fit_request.type = service::MsgType::Fit;
  fit_request.spec.trace_paths = params.traces;
  service::Request extrapolate_request = fit_request;
  extrapolate_request.type = service::MsgType::Extrapolate;
  extrapolate_request.target_cores = static_cast<std::uint32_t>(params.target_cores);
  service::Request predict_request = extrapolate_request;
  predict_request.type = service::MsgType::Predict;
  predict_request.app = params.app;
  predict_request.machine_target = params.machine_target;
  const service::Request* mix[] = {&status_request, &fit_request, &extrapolate_request,
                                   &predict_request};

  const std::string digest =
      core::models_digest_for_files(params.traces, fit_request.spec.to_options());
  const std::vector<std::uint32_t> replicas = router.ring().replicas_for(digest);

  // --- Reference run: one direct, un-proxied call per data-plane type. ----
  // Every OK payload the cluster returns under chaos must match these bytes.
  std::string expected[4];
  {
    service::ClientOptions direct;
    direct.port = shard_ports[replicas[0]];
    direct.io_timeout_ms = 120'000;
    service::Client reference(direct);
    for (std::size_t i = 1; i < 4; ++i) {  // mix[0] is STATUS: not deterministic
      const service::Response response = reference.call(*mix[i]);
      PMACX_CHECK(response.status == service::Status::Ok,
                  "reference " + service::msg_type_name(mix[i]->type) +
                      " against shard " + std::to_string(replicas[0]) +
                      " failed (fix the setup before running chaos): " + response.body);
      expected[i] = response.body;
    }
  }

  // --- Load + killer. -----------------------------------------------------
  std::atomic<std::int64_t> budget{static_cast<std::int64_t>(params.requests)};
  std::atomic<bool> load_done{false};
  std::atomic<std::uint64_t> ok{0}, not_ok{0}, mismatches{0}, transport_errors{0};

  std::vector<std::thread> workers;
  workers.reserve(params.threads);
  std::mutex stderr_mutex;
  for (std::uint64_t t = 0; t < params.threads; ++t) {
    workers.emplace_back([&, t] {
      service::ClientOptions through_router;
      through_router.port = router.port();
      // The client<->router hop is clean (chaos lives between router and
      // shards), so generous budgets here mean any client-visible failure
      // is a real zero-loss violation, not an impatient timeout.  The I/O
      // budget must exceed the router's whole failover deadline: a request
      // the router is still sweeping replicas for is in flight, not lost.
      through_router.io_timeout_ms = 300'000;
      through_router.jitter_seed = util::derive_seed(params.root_seed, 1'000 + t);
      through_router.retry.max_attempts = 6;
      through_router.retry.overall_deadline_ms = 600'000;
      through_router.breaker.failure_threshold = 0;

      std::unique_ptr<service::Client> client;
      std::int64_t ticket;
      while ((ticket = budget.fetch_sub(1, std::memory_order_relaxed)) > 0) {
        const std::size_t index =
            (params.requests - static_cast<std::size_t>(ticket)) % 4;
        const service::Request& request = *mix[index];
        try {
          if (!client) client = std::make_unique<service::Client>(through_router);
          const service::Response response = client->call_with_retry(request);
          if (response.status == service::Status::Ok) {
            ok.fetch_add(1, std::memory_order_relaxed);
            if (index != 0 && response.body != expected[index]) {
              mismatches.fetch_add(1, std::memory_order_relaxed);
              std::scoped_lock lock(stderr_mutex);
              std::fprintf(stderr,
                           "pmacx_chaos: %s payload diverged from the direct run "
                           "(%zu vs %zu bytes)\n",
                           service::msg_type_name(request.type).c_str(),
                           response.body.size(), expected[index].size());
            }
          } else {
            not_ok.fetch_add(1, std::memory_order_relaxed);
            std::scoped_lock lock(stderr_mutex);
            std::fprintf(stderr, "pmacx_chaos: LOST request (%s): %s\n",
                         service::msg_type_name(request.type).c_str(),
                         response.body.c_str());
          }
        } catch (const util::Error& e) {
          transport_errors.fetch_add(1, std::memory_order_relaxed);
          client.reset();
          std::scoped_lock lock(stderr_mutex);
          std::fprintf(stderr, "pmacx_chaos: LOST request (transport): %s\n", e.what());
        }
      }
    });
  }

  // The killer owns the supervisor while load runs: SIGKILL one replica of
  // the workload's digest at a time, then wait until the supervisor has
  // respawned it AND it answers a direct STATUS probe before the next kill —
  // so with R >= 2 at least one replica of every digest is always alive.
  std::uint64_t kills_done = 0, restarts_seen = 0;
  bool killer_healthy = true;
  std::thread killer([&] {
    util::Rng rng(util::derive_seed(params.root_seed, 0xdeadULL));
    for (std::uint64_t kill = 0; kill < params.kills && !load_done.load(); ++kill) {
      // First kill targets the primary so at least one request provably
      // fails over (the service.router.failover counter the CI job gates
      // on); later victims are seeded-random replicas.
      const std::uint32_t victim =
          kill == 0 ? replicas[0]
                    : replicas[static_cast<std::size_t>(rng.below(replicas.size()))];
      if (!supervisor.kill_child(victim, SIGKILL)) continue;
      ++kills_done;

      // Wait for respawn + direct health before the next kill.
      const auto wait_deadline = Clock::now() + std::chrono::seconds(30);
      bool healthy = false;
      while (!healthy && Clock::now() < wait_deadline && !load_done.load()) {
        supervisor.poll();
        if (supervisor.alive(victim)) {
          try {
            service::ClientOptions probe_options;
            probe_options.port = shard_ports[victim];
            probe_options.connect_attempts = 1;
            probe_options.connect_deadline_ms = 500;
            probe_options.io_timeout_ms = 2'000;
            service::Client probe(probe_options);
            service::Request status;
            status.type = service::MsgType::Status;
            healthy = probe.call(status).status == service::Status::Ok;
          } catch (const util::Error&) {
          }
        }
        if (!healthy) std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
      if (!healthy && !load_done.load()) {
        killer_healthy = false;  // respawn never came back: report and stop
        return;
      }
      restarts_seen = std::max<std::uint64_t>(restarts_seen, supervisor.restarts(victim));
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  });

  for (std::thread& worker : workers) worker.join();
  load_done.store(true);
  killer.join();

  // --- Teardown: drain through the router (fans SHUTDOWN out to shards). --
  bool clean_shutdown = true;
  try {
    service::ClientOptions control_options;
    control_options.port = router.port();
    service::Client control(control_options);
    service::Request shutdown;
    shutdown.type = service::MsgType::Shutdown;
    control.call(shutdown);
  } catch (const std::exception& e) {
    clean_shutdown = false;
    std::fprintf(stderr, "pmacx_chaos: cluster shutdown failed: %s\n", e.what());
  }
  router.stop();
  router.wait();
  std::uint64_t chaos_resets = 0, chaos_cuts = 0, chaos_duplicates = 0, chaos_partials = 0;
  for (auto& proxy : proxies) {
    proxy->stop();
    proxy->wait();
    chaos_resets += proxy->stats().resets.load();
    chaos_cuts += proxy->stats().cuts.load();
    chaos_duplicates += proxy->stats().duplicates.load();
    chaos_partials += proxy->stats().partials.load();
  }
  supervisor.terminate_all();

  // --- Verdict. -----------------------------------------------------------
  const std::uint64_t lost =
      not_ok.load() + transport_errors.load() + mismatches.load();
  const bool passed = lost == 0 && kills_done > 0 && killer_healthy && clean_shutdown &&
                      ok.load() == params.requests;
  std::printf(
      "pmacx_chaos: cluster %s — %llu shards x R%llu, %llu requests all-OK=%llu, "
      "%llu kills (max %llu restarts), losses: %llu not-ok, %llu transport, "
      "%llu payload mismatches\n",
      passed ? "PASS" : "FAIL", static_cast<unsigned long long>(params.shards),
      static_cast<unsigned long long>(params.replication),
      static_cast<unsigned long long>(params.requests),
      static_cast<unsigned long long>(ok.load()),
      static_cast<unsigned long long>(kills_done),
      static_cast<unsigned long long>(restarts_seen),
      static_cast<unsigned long long>(not_ok.load()),
      static_cast<unsigned long long>(transport_errors.load()),
      static_cast<unsigned long long>(mismatches.load()));
  std::printf("pmacx_chaos: injected faults: %llu resets, %llu cuts, %llu dups, "
              "%llu partials; routing digest %s -> replicas",
              static_cast<unsigned long long>(chaos_resets),
              static_cast<unsigned long long>(chaos_cuts),
              static_cast<unsigned long long>(chaos_duplicates),
              static_cast<unsigned long long>(chaos_partials), digest.c_str());
  for (const std::uint32_t id : replicas) std::printf(" %u", id);
  std::printf("\n");

  if (!params.json_path.empty()) {
    std::ofstream out(params.json_path);
    PMACX_CHECK(out.good(), "cannot write " + params.json_path);
    out << "{\n"
        << "  \"passed\": " << (passed ? "true" : "false") << ",\n"
        << "  \"mode\": \"cluster\",\n"
        << "  \"shards\": " << params.shards << ",\n"
        << "  \"replication\": " << params.replication << ",\n"
        << "  \"requests\": " << params.requests << ",\n"
        << "  \"ok\": " << ok.load() << ",\n"
        << "  \"kills\": " << kills_done << ",\n"
        << "  \"losses\": {\"not_ok\": " << not_ok.load()
        << ", \"transport\": " << transport_errors.load()
        << ", \"payload_mismatch\": " << mismatches.load() << "},\n"
        << "  \"faults\": {\"resets\": " << chaos_resets << ", \"cuts\": " << chaos_cuts
        << ", \"duplicates\": " << chaos_duplicates
        << ", \"partials\": " << chaos_partials << "},\n"
        << "  \"digest\": \"" << digest << "\",\n"
        << "  \"seed\": " << params.root_seed << "\n"
        << "}\n";
  }
  if (!params.metrics_json.empty()) {
    util::metrics::RunManifest manifest = util::metrics::RunManifest::for_tool("pmacx_chaos");
    util::metrics::write_json(params.metrics_json, manifest,
                              util::metrics::Registry::global().snapshot());
  }
  return passed ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string server_binary, host = "127.0.0.1", json_path, metrics_json;
  std::string app = "specfem3d", machine_target = "bluewaters-p1";
  std::uint64_t port = 0, seed_count = 8, root_seed = 1, requests_per_seed = 24;
  std::uint64_t threads = 4, deadline_ms = 15'000, max_rss_mb = 512, target_cores = 256;
  std::uint64_t cluster = 0, replication = 2, cluster_requests = 60, kills = 3;
  std::vector<std::string> traces;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto value = [&]() -> std::string {
        PMACX_CHECK(i + 1 < argc, "option " + arg + " requires a value");
        return argv[++i];
      };
      if (arg == "--help" || arg == "-h") {
        usage();
        return 0;
      } else if (arg == "--server") {
        server_binary = value();
      } else if (arg == "--host") {
        host = value();
      } else if (arg == "--port") {
        port = util::parse_flag_u64(value(), arg);
      } else if (arg == "--seed-count") {
        seed_count = util::parse_flag_u64(value(), arg);
      } else if (arg == "--seed") {
        root_seed = util::parse_flag_u64(value(), arg);
      } else if (arg == "--requests-per-seed") {
        requests_per_seed = util::parse_flag_u64(value(), arg);
      } else if (arg == "--threads") {
        threads = util::parse_flag_u64(value(), arg);
      } else if (arg == "--deadline-ms") {
        deadline_ms = util::parse_flag_u64(value(), arg);
      } else if (arg == "--max-rss-mb") {
        max_rss_mb = util::parse_flag_u64(value(), arg);
      } else if (arg == "--target-cores") {
        target_cores = util::parse_flag_u64(value(), arg);
      } else if (arg == "--app") {
        app = value();
      } else if (arg == "--machine-target") {
        machine_target = value();
      } else if (arg == "--json") {
        json_path = value();
      } else if (arg == "--cluster") {
        cluster = util::parse_flag_u64(value(), arg);
      } else if (arg == "--replication") {
        replication = util::parse_flag_u64(value(), arg);
      } else if (arg == "--requests") {
        cluster_requests = util::parse_flag_u64(value(), arg);
      } else if (arg == "--kills") {
        kills = util::parse_flag_u64(value(), arg);
      } else if (arg == "--metrics-json") {
        metrics_json = value();
      } else if (util::starts_with(arg, "--")) {
        PMACX_CHECK(false, "unknown option " + arg);
      } else {
        traces.push_back(arg);
      }
    }
    PMACX_CHECK(server_binary.empty() != (port == 0),
                "give exactly one of --server or --port");
    PMACX_CHECK(seed_count > 0 && requests_per_seed > 0 && threads > 0,
                "--seed-count, --requests-per-seed, and --threads must be positive");
    PMACX_CHECK(traces.size() >= 2,
                "need at least two trace files (ascending core counts)");
    PMACX_CHECK(port <= 65535, "--port must fit a TCP port");

    if (cluster > 0) {
      PMACX_CHECK(!server_binary.empty(), "--cluster requires --server <pmacx_serve>");
      PMACX_CHECK(replication >= 2 && replication <= cluster,
                  "--replication must be in [2, --cluster] for zero-loss kills");
      PMACX_CHECK(cluster_requests > 0 && kills > 0,
                  "--requests and --kills must be positive");
      ClusterParams params;
      params.serve_binary = server_binary;
      params.traces = traces;
      params.shards = cluster;
      params.replication = replication;
      params.requests = cluster_requests;
      params.kills = kills;
      params.threads = threads;
      params.root_seed = root_seed;
      params.target_cores = target_cores;
      params.app = app;
      params.machine_target = machine_target;
      params.json_path = json_path;
      params.metrics_json = metrics_json;
      return run_cluster_chaos(params);
    }

    tools::SpawnedServer spawned;
    if (!server_binary.empty()) {
      spawned = tools::spawn_server(server_binary, /*metrics_json=*/"", "pmacx_chaos");
      port = spawned.port;
    }
    const auto server_port = static_cast<std::uint16_t>(port);

    // Direct (un-proxied) client options: generous timeouts, no retries —
    // used for the warm-up, the per-round liveness probe, and SHUTDOWN.
    service::ClientOptions direct;
    direct.host = host;
    direct.port = server_port;
    direct.io_timeout_ms = 60'000;

    // The request mix every round cycles through.
    service::Request status_request;
    status_request.type = service::MsgType::Status;
    service::Request fit_request;
    fit_request.type = service::MsgType::Fit;
    fit_request.spec.trace_paths = traces;
    service::Request extrapolate_request = fit_request;
    extrapolate_request.type = service::MsgType::Extrapolate;
    extrapolate_request.target_cores = static_cast<std::uint32_t>(target_cores);
    service::Request predict_request = extrapolate_request;
    predict_request.type = service::MsgType::Predict;
    predict_request.app = app;
    predict_request.machine_target = machine_target;
    const service::Request* mix[] = {&status_request, &fit_request, &extrapolate_request,
                                     &predict_request};

    // Warm the server's model cache over a clean connection, so chaos-round
    // latencies measure fault handling, not first-fit cost, and PREDICT
    // setup errors (bad app/machine names) surface before chaos starts.
    {
      service::Client warmup(direct);
      const service::Response response = warmup.call(predict_request);
      PMACX_CHECK(response.status == service::Status::Ok,
                  "warm-up PREDICT failed (fix the setup before running chaos): " +
                      response.body);
    }

    Outcomes total;
    std::uint64_t liveness_failures = 0, rounds_run = 0;
    double max_rss_seen = 0.0;
    bool rss_exceeded = false;
    // Aggregated fault-injection counts across every round's proxy.
    std::uint64_t chaos_connections = 0, chaos_resets = 0, chaos_cuts = 0,
                  chaos_delays = 0, chaos_duplicates = 0, chaos_trickles = 0,
                  chaos_partials = 0, chaos_bytes = 0;
    // A request is a hang when it outlives the retry deadline plus slack for
    // the final attempt's own I/O timeout.
    const double hang_bound_ms = static_cast<double>(2 * deadline_ms);

    struct RoundReport {
      std::uint64_t seed = 0;
      std::uint64_t ok = 0, busy = 0, server_error = 0, transport_error = 0, hangs = 0;
      double max_request_ms = 0.0;
      double rss_mb = 0.0;
      bool alive = true;
    };
    std::vector<RoundReport> rounds;

    for (std::uint64_t round = 0; round < seed_count; ++round) {
      const std::uint64_t seed = util::derive_seed(root_seed, round);
      service::ChaosOptions chaos_options;
      chaos_options.upstream_host = host;
      chaos_options.upstream_port = server_port;
      chaos_options.seed = seed;
      service::ChaosProxy proxy(chaos_options);
      proxy.start();

      Outcomes outcomes;
      std::atomic<std::int64_t> budget{static_cast<std::int64_t>(requests_per_seed)};
      std::vector<std::thread> workers;
      workers.reserve(threads);
      for (std::uint64_t t = 0; t < threads; ++t) {
        workers.emplace_back([&, t, seed] {
          service::ClientOptions through_proxy;
          through_proxy.host = "127.0.0.1";
          through_proxy.port = proxy.port();
          // Tight enough that trickled or torn responses fail over to a
          // retry instead of eating the whole deadline.
          through_proxy.io_timeout_ms = 3'000;
          through_proxy.connect_deadline_ms = 5'000;
          through_proxy.jitter_seed = util::derive_seed(seed, 1'000 + t);
          through_proxy.retry.max_attempts = 4;
          through_proxy.retry.overall_deadline_ms = deadline_ms;
          // The breaker would fail-fast late requests after a bad streak —
          // correct for production, but here it would mask the interesting
          // outcomes, so it is disabled.
          through_proxy.breaker.failure_threshold = 0;

          std::unique_ptr<service::Client> client;
          std::int64_t ticket;
          while ((ticket = budget.fetch_sub(1, std::memory_order_relaxed)) > 0) {
            const std::size_t index = requests_per_seed - static_cast<std::size_t>(ticket);
            const service::Request& request = *mix[index % 4];
            const Clock::time_point started = Clock::now();
            try {
              if (!client) client = std::make_unique<service::Client>(through_proxy);
              const service::Response response = client->call_with_retry(request);
              if (response.status == service::Status::Ok)
                outcomes.ok.fetch_add(1, std::memory_order_relaxed);
              else if (response.status == service::Status::Busy)
                outcomes.busy.fetch_add(1, std::memory_order_relaxed);
              else
                outcomes.server_error.fetch_add(1, std::memory_order_relaxed);
            } catch (const util::Error&) {
              // Chaos tore the transport out from under the call: a definite
              // client-side failure, which satisfies the invariant.
              outcomes.transport_error.fetch_add(1, std::memory_order_relaxed);
              client.reset();  // next request starts from a fresh connection
            }
            const double ms =
                std::chrono::duration<double, std::milli>(Clock::now() - started).count();
            outcomes.record_ms(ms);
            if (ms > hang_bound_ms) outcomes.hangs.fetch_add(1, std::memory_order_relaxed);
          }
        });
      }
      for (std::thread& worker : workers) worker.join();
      proxy.stop();
      proxy.wait();

      const service::ChaosStats& stats = proxy.stats();
      chaos_connections += stats.connections.load();
      chaos_resets += stats.resets.load();
      chaos_cuts += stats.cuts.load();
      chaos_delays += stats.delays.load();
      chaos_duplicates += stats.duplicates.load();
      chaos_trickles += stats.trickles.load();
      chaos_partials += stats.partials.load();
      chaos_bytes += stats.bytes_forwarded.load();

      RoundReport report;
      report.seed = seed;
      report.ok = outcomes.ok.load();
      report.busy = outcomes.busy.load();
      report.server_error = outcomes.server_error.load();
      report.transport_error = outcomes.transport_error.load();
      report.hangs = outcomes.hangs.load();
      report.max_request_ms = outcomes.max_request_ms.load();

      total.ok += report.ok;
      total.busy += report.busy;
      total.server_error += report.server_error;
      total.transport_error += report.transport_error;
      total.hangs += report.hangs;
      total.record_ms(report.max_request_ms);

      // Liveness probe on a clean connection: the server must still answer.
      try {
        service::Client probe(direct);
        const service::Response response = probe.call(status_request);
        report.alive = response.status == service::Status::Ok;
      } catch (const std::exception& e) {
        report.alive = false;
        std::fprintf(stderr, "pmacx_chaos: liveness probe after seed %llu failed: %s\n",
                     static_cast<unsigned long long>(seed), e.what());
      }
      if (!report.alive) ++liveness_failures;

      if (spawned.pid > 0) {
        report.rss_mb = rss_mb(spawned.pid);
        max_rss_seen = std::max(max_rss_seen, report.rss_mb);
        if (report.rss_mb > static_cast<double>(max_rss_mb)) rss_exceeded = true;
      }

      std::printf("pmacx_chaos: seed %llu: %llu ok, %llu busy, %llu server-err, "
                  "%llu transport-err, %llu hangs, max %.0f ms%s%s\n",
                  static_cast<unsigned long long>(seed),
                  static_cast<unsigned long long>(report.ok),
                  static_cast<unsigned long long>(report.busy),
                  static_cast<unsigned long long>(report.server_error),
                  static_cast<unsigned long long>(report.transport_error),
                  static_cast<unsigned long long>(report.hangs), report.max_request_ms,
                  report.alive ? "" : "  SERVER DEAD",
                  spawned.pid > 0 ? ("  rss " + std::to_string(report.rss_mb) + " MiB").c_str()
                                  : "");
      rounds.push_back(report);
      ++rounds_run;
      if (!report.alive) break;  // no point chaosing a corpse
    }

    // Teardown (and the final crash check) in --server mode.
    bool abnormal_exit = false;
    if (spawned.pid > 0) {
      if (liveness_failures == 0) {
        try {
          service::Client control(direct);
          service::Request shutdown;
          shutdown.type = service::MsgType::Shutdown;
          control.call(shutdown);
        } catch (const std::exception& e) {
          std::fprintf(stderr, "pmacx_chaos: shutdown request failed: %s\n", e.what());
          ::kill(spawned.pid, SIGTERM);
        }
      } else {
        ::kill(spawned.pid, SIGTERM);
      }
      int status = 0;
      ::waitpid(spawned.pid, &status, 0);
      abnormal_exit = liveness_failures == 0 &&
                      (!WIFEXITED(status) || WEXITSTATUS(status) != 0);
      if (abnormal_exit)
        std::fprintf(stderr, "pmacx_chaos: server exited abnormally (status %d)\n", status);
    }

    const std::uint64_t requests_total =
        total.ok.load() + total.busy.load() + total.server_error.load() +
        total.transport_error.load();
    const bool passed = total.hangs.load() == 0 && liveness_failures == 0 &&
                        !rss_exceeded && !abnormal_exit &&
                        requests_total == rounds_run * requests_per_seed;

    std::printf("pmacx_chaos: %s — %llu rounds, %llu requests "
                "(%llu ok, %llu busy, %llu server-err, %llu transport-err), "
                "%llu hangs, %llu liveness failures, max rss %.1f MiB\n",
                passed ? "PASS" : "FAIL",
                static_cast<unsigned long long>(rounds_run),
                static_cast<unsigned long long>(requests_total),
                static_cast<unsigned long long>(total.ok.load()),
                static_cast<unsigned long long>(total.busy.load()),
                static_cast<unsigned long long>(total.server_error.load()),
                static_cast<unsigned long long>(total.transport_error.load()),
                static_cast<unsigned long long>(total.hangs.load()),
                static_cast<unsigned long long>(liveness_failures), max_rss_seen);
    std::printf("pmacx_chaos: injected faults: %llu conns, %llu resets, %llu cuts, "
                "%llu delays, %llu dups, %llu trickles, %llu partials, %llu bytes\n",
                static_cast<unsigned long long>(chaos_connections),
                static_cast<unsigned long long>(chaos_resets),
                static_cast<unsigned long long>(chaos_cuts),
                static_cast<unsigned long long>(chaos_delays),
                static_cast<unsigned long long>(chaos_duplicates),
                static_cast<unsigned long long>(chaos_trickles),
                static_cast<unsigned long long>(chaos_partials),
                static_cast<unsigned long long>(chaos_bytes));

    if (!json_path.empty()) {
      std::ofstream out(json_path);
      PMACX_CHECK(out.good(), "cannot write " + json_path);
      out << "{\n"
          << "  \"passed\": " << (passed ? "true" : "false") << ",\n"
          << "  \"rounds\": " << rounds_run << ",\n"
          << "  \"requests\": " << requests_total << ",\n"
          << "  \"outcomes\": {\"ok\": " << total.ok.load()
          << ", \"busy\": " << total.busy.load()
          << ", \"server_error\": " << total.server_error.load()
          << ", \"transport_error\": " << total.transport_error.load() << "},\n"
          << "  \"violations\": {\"hangs\": " << total.hangs.load()
          << ", \"liveness_failures\": " << liveness_failures
          << ", \"rss_exceeded\": " << (rss_exceeded ? "true" : "false")
          << ", \"abnormal_exit\": " << (abnormal_exit ? "true" : "false") << "},\n"
          << "  \"max_request_ms\": " << total.max_request_ms.load() << ",\n"
          << "  \"max_rss_mb\": " << max_rss_seen << ",\n"
          << "  \"faults\": {\"connections\": " << chaos_connections
          << ", \"resets\": " << chaos_resets << ", \"cuts\": " << chaos_cuts
          << ", \"delays\": " << chaos_delays << ", \"duplicates\": " << chaos_duplicates
          << ", \"trickles\": " << chaos_trickles << ", \"partials\": " << chaos_partials
          << ", \"bytes_forwarded\": " << chaos_bytes << "},\n"
          << "  \"per_seed\": [\n";
      for (std::size_t i = 0; i < rounds.size(); ++i) {
        const RoundReport& r = rounds[i];
        out << "    {\"seed\": " << r.seed << ", \"ok\": " << r.ok
            << ", \"busy\": " << r.busy << ", \"server_error\": " << r.server_error
            << ", \"transport_error\": " << r.transport_error << ", \"hangs\": " << r.hangs
            << ", \"max_request_ms\": " << r.max_request_ms
            << ", \"rss_mb\": " << r.rss_mb << ", \"alive\": "
            << (r.alive ? "true" : "false") << "}" << (i + 1 < rounds.size() ? "," : "")
            << "\n";
      }
      out << "  ]\n}\n";
    }

    return passed ? 0 : 1;
  } catch (const util::Error& e) {
    std::fprintf(stderr, "pmacx_chaos: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pmacx_chaos: internal error: %s\n", e.what());
    return 1;
  }
}
