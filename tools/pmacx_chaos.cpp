// pmacx_chaos — randomized network-fault harness for pmacx_serve.
//
// Spawns (or connects to) a prediction server, then runs a sequence of
// chaos rounds: each round puts a freshly seeded service::ChaosProxy
// between the clients and the server and drives a mixed request load
// (STATUS / FIT / EXTRAPOLATE / PREDICT) through it while the proxy
// injects partial writes, short reads, resets, slow-loris trickle,
// delayed/duplicated frames, and mid-frame disconnects.
//
// The invariants asserted, per round and overall:
//
//   * never crash   — the server answers a direct (un-proxied) STATUS probe
//                     after every round, and (in --server mode) exits
//                     cleanly on SHUTDOWN at the end;
//   * never hang    — every request ends within a hard wall-clock bound
//                     (the client retry deadline plus one I/O timeout);
//   * bounded memory— in --server mode the server's RSS (/proc/<pid>/statm)
//                     must stay under --max-rss-mb across all rounds;
//   * definite outcome — every request ends in OK, BUSY, a server-reported
//                     error (the ParseError channel), or a client-side
//                     transport error; nothing is left in limbo.
//
// Results go to stdout and (with --json) to a machine-readable report the
// CI chaos job uploads as its artifact.  Exit 0 iff no invariant was
// violated; every seed is deterministic, so a failing report's seed replays
// the exact fault schedule.
//
//   pmacx_chaos --server build/tools/pmacx_serve --seed-count 32
//       --json CHAOS.json s16.trace s32.trace s64.trace
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <exception>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve_spawn.hpp"
#include "service/chaos.hpp"
#include "service/client.hpp"
#include "service/protocol.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace {

using namespace pmacx;
using Clock = std::chrono::steady_clock;

void usage() {
  std::puts(
      "pmacx_chaos — randomized network-fault harness for pmacx_serve\n"
      "\n"
      "usage: pmacx_chaos (--server <pmacx_serve binary> | --port <p>) \\\n"
      "           [options] <trace files, ascending core counts>\n"
      "\n"
      "options:\n"
      "  --server <path>        spawn this pmacx_serve on an ephemeral port,\n"
      "                         chaos it, send SHUTDOWN, and check it exits 0\n"
      "  --host <addr>          server address        (default: 127.0.0.1)\n"
      "  --port <p>             server port (required unless --server)\n"
      "  --seed-count <n>       chaos rounds to run   (default: 8)\n"
      "  --seed <s>             root seed; round r uses derive_seed(s, r)\n"
      "  --requests-per-seed <n> requests per round   (default: 24)\n"
      "  --threads <n>          client threads        (default: 4)\n"
      "  --deadline-ms <ms>     per-request retry deadline (default: 15000);\n"
      "                         a request is a HANG past twice this bound\n"
      "  --max-rss-mb <mb>      server RSS cap, --server mode (default: 512)\n"
      "  --target-cores <n>     extrapolation target  (default: 256)\n"
      "  --app <name>           application model     (default: specfem3d)\n"
      "  --machine-target <m>   prediction target     (default: bluewaters-p1)\n"
      "  --json <file>          write the chaos report as JSON\n");
}

/// Resident set size of a process in MiB, from /proc/<pid>/statm; 0 when
/// unreadable (proc gone or not Linux).
double rss_mb(pid_t pid) {
  std::ifstream in("/proc/" + std::to_string(pid) + "/statm");
  long total = 0, resident = 0;
  if (!(in >> total >> resident)) return 0.0;
  return static_cast<double>(resident) *
         static_cast<double>(::sysconf(_SC_PAGESIZE)) / (1024.0 * 1024.0);
}

/// Per-round (and aggregate) outcome tallies.  Everything here is a
/// *definite* outcome; the absence of a bucket for "still waiting" is the
/// point.
struct Outcomes {
  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> busy{0};
  std::atomic<std::uint64_t> server_error{0};     ///< Error response (ParseError channel)
  std::atomic<std::uint64_t> transport_error{0};  ///< client-side util::Error
  std::atomic<std::uint64_t> hangs{0};            ///< wall clock blew the bound
  std::atomic<double> max_request_ms{0.0};

  void record_ms(double ms) {
    double seen = max_request_ms.load(std::memory_order_relaxed);
    while (ms > seen &&
           !max_request_ms.compare_exchange_weak(seen, ms, std::memory_order_relaxed)) {
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  std::string server_binary, host = "127.0.0.1", json_path;
  std::string app = "specfem3d", machine_target = "bluewaters-p1";
  std::uint64_t port = 0, seed_count = 8, root_seed = 1, requests_per_seed = 24;
  std::uint64_t threads = 4, deadline_ms = 15'000, max_rss_mb = 512, target_cores = 256;
  std::vector<std::string> traces;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto value = [&]() -> std::string {
        PMACX_CHECK(i + 1 < argc, "option " + arg + " requires a value");
        return argv[++i];
      };
      if (arg == "--help" || arg == "-h") {
        usage();
        return 0;
      } else if (arg == "--server") {
        server_binary = value();
      } else if (arg == "--host") {
        host = value();
      } else if (arg == "--port") {
        port = util::parse_flag_u64(value(), arg);
      } else if (arg == "--seed-count") {
        seed_count = util::parse_flag_u64(value(), arg);
      } else if (arg == "--seed") {
        root_seed = util::parse_flag_u64(value(), arg);
      } else if (arg == "--requests-per-seed") {
        requests_per_seed = util::parse_flag_u64(value(), arg);
      } else if (arg == "--threads") {
        threads = util::parse_flag_u64(value(), arg);
      } else if (arg == "--deadline-ms") {
        deadline_ms = util::parse_flag_u64(value(), arg);
      } else if (arg == "--max-rss-mb") {
        max_rss_mb = util::parse_flag_u64(value(), arg);
      } else if (arg == "--target-cores") {
        target_cores = util::parse_flag_u64(value(), arg);
      } else if (arg == "--app") {
        app = value();
      } else if (arg == "--machine-target") {
        machine_target = value();
      } else if (arg == "--json") {
        json_path = value();
      } else if (util::starts_with(arg, "--")) {
        PMACX_CHECK(false, "unknown option " + arg);
      } else {
        traces.push_back(arg);
      }
    }
    PMACX_CHECK(server_binary.empty() != (port == 0),
                "give exactly one of --server or --port");
    PMACX_CHECK(seed_count > 0 && requests_per_seed > 0 && threads > 0,
                "--seed-count, --requests-per-seed, and --threads must be positive");
    PMACX_CHECK(traces.size() >= 2,
                "need at least two trace files (ascending core counts)");
    PMACX_CHECK(port <= 65535, "--port must fit a TCP port");

    tools::SpawnedServer spawned;
    if (!server_binary.empty()) {
      spawned = tools::spawn_server(server_binary, /*metrics_json=*/"", "pmacx_chaos");
      port = spawned.port;
    }
    const auto server_port = static_cast<std::uint16_t>(port);

    // Direct (un-proxied) client options: generous timeouts, no retries —
    // used for the warm-up, the per-round liveness probe, and SHUTDOWN.
    service::ClientOptions direct;
    direct.host = host;
    direct.port = server_port;
    direct.io_timeout_ms = 60'000;

    // The request mix every round cycles through.
    service::Request status_request;
    status_request.type = service::MsgType::Status;
    service::Request fit_request;
    fit_request.type = service::MsgType::Fit;
    fit_request.spec.trace_paths = traces;
    service::Request extrapolate_request = fit_request;
    extrapolate_request.type = service::MsgType::Extrapolate;
    extrapolate_request.target_cores = static_cast<std::uint32_t>(target_cores);
    service::Request predict_request = extrapolate_request;
    predict_request.type = service::MsgType::Predict;
    predict_request.app = app;
    predict_request.machine_target = machine_target;
    const service::Request* mix[] = {&status_request, &fit_request, &extrapolate_request,
                                     &predict_request};

    // Warm the server's model cache over a clean connection, so chaos-round
    // latencies measure fault handling, not first-fit cost, and PREDICT
    // setup errors (bad app/machine names) surface before chaos starts.
    {
      service::Client warmup(direct);
      const service::Response response = warmup.call(predict_request);
      PMACX_CHECK(response.status == service::Status::Ok,
                  "warm-up PREDICT failed (fix the setup before running chaos): " +
                      response.body);
    }

    Outcomes total;
    std::uint64_t liveness_failures = 0, rounds_run = 0;
    double max_rss_seen = 0.0;
    bool rss_exceeded = false;
    // Aggregated fault-injection counts across every round's proxy.
    std::uint64_t chaos_connections = 0, chaos_resets = 0, chaos_cuts = 0,
                  chaos_delays = 0, chaos_duplicates = 0, chaos_trickles = 0,
                  chaos_partials = 0, chaos_bytes = 0;
    // A request is a hang when it outlives the retry deadline plus slack for
    // the final attempt's own I/O timeout.
    const double hang_bound_ms = static_cast<double>(2 * deadline_ms);

    struct RoundReport {
      std::uint64_t seed = 0;
      std::uint64_t ok = 0, busy = 0, server_error = 0, transport_error = 0, hangs = 0;
      double max_request_ms = 0.0;
      double rss_mb = 0.0;
      bool alive = true;
    };
    std::vector<RoundReport> rounds;

    for (std::uint64_t round = 0; round < seed_count; ++round) {
      const std::uint64_t seed = util::derive_seed(root_seed, round);
      service::ChaosOptions chaos_options;
      chaos_options.upstream_host = host;
      chaos_options.upstream_port = server_port;
      chaos_options.seed = seed;
      service::ChaosProxy proxy(chaos_options);
      proxy.start();

      Outcomes outcomes;
      std::atomic<std::int64_t> budget{static_cast<std::int64_t>(requests_per_seed)};
      std::vector<std::thread> workers;
      workers.reserve(threads);
      for (std::uint64_t t = 0; t < threads; ++t) {
        workers.emplace_back([&, t, seed] {
          service::ClientOptions through_proxy;
          through_proxy.host = "127.0.0.1";
          through_proxy.port = proxy.port();
          // Tight enough that trickled or torn responses fail over to a
          // retry instead of eating the whole deadline.
          through_proxy.io_timeout_ms = 3'000;
          through_proxy.connect_deadline_ms = 5'000;
          through_proxy.jitter_seed = util::derive_seed(seed, 1'000 + t);
          through_proxy.retry.max_attempts = 4;
          through_proxy.retry.overall_deadline_ms = deadline_ms;
          // The breaker would fail-fast late requests after a bad streak —
          // correct for production, but here it would mask the interesting
          // outcomes, so it is disabled.
          through_proxy.breaker.failure_threshold = 0;

          std::unique_ptr<service::Client> client;
          std::int64_t ticket;
          while ((ticket = budget.fetch_sub(1, std::memory_order_relaxed)) > 0) {
            const std::size_t index = requests_per_seed - static_cast<std::size_t>(ticket);
            const service::Request& request = *mix[index % 4];
            const Clock::time_point started = Clock::now();
            try {
              if (!client) client = std::make_unique<service::Client>(through_proxy);
              const service::Response response = client->call_with_retry(request);
              if (response.status == service::Status::Ok)
                outcomes.ok.fetch_add(1, std::memory_order_relaxed);
              else if (response.status == service::Status::Busy)
                outcomes.busy.fetch_add(1, std::memory_order_relaxed);
              else
                outcomes.server_error.fetch_add(1, std::memory_order_relaxed);
            } catch (const util::Error&) {
              // Chaos tore the transport out from under the call: a definite
              // client-side failure, which satisfies the invariant.
              outcomes.transport_error.fetch_add(1, std::memory_order_relaxed);
              client.reset();  // next request starts from a fresh connection
            }
            const double ms =
                std::chrono::duration<double, std::milli>(Clock::now() - started).count();
            outcomes.record_ms(ms);
            if (ms > hang_bound_ms) outcomes.hangs.fetch_add(1, std::memory_order_relaxed);
          }
        });
      }
      for (std::thread& worker : workers) worker.join();
      proxy.stop();
      proxy.wait();

      const service::ChaosStats& stats = proxy.stats();
      chaos_connections += stats.connections.load();
      chaos_resets += stats.resets.load();
      chaos_cuts += stats.cuts.load();
      chaos_delays += stats.delays.load();
      chaos_duplicates += stats.duplicates.load();
      chaos_trickles += stats.trickles.load();
      chaos_partials += stats.partials.load();
      chaos_bytes += stats.bytes_forwarded.load();

      RoundReport report;
      report.seed = seed;
      report.ok = outcomes.ok.load();
      report.busy = outcomes.busy.load();
      report.server_error = outcomes.server_error.load();
      report.transport_error = outcomes.transport_error.load();
      report.hangs = outcomes.hangs.load();
      report.max_request_ms = outcomes.max_request_ms.load();

      total.ok += report.ok;
      total.busy += report.busy;
      total.server_error += report.server_error;
      total.transport_error += report.transport_error;
      total.hangs += report.hangs;
      total.record_ms(report.max_request_ms);

      // Liveness probe on a clean connection: the server must still answer.
      try {
        service::Client probe(direct);
        const service::Response response = probe.call(status_request);
        report.alive = response.status == service::Status::Ok;
      } catch (const std::exception& e) {
        report.alive = false;
        std::fprintf(stderr, "pmacx_chaos: liveness probe after seed %llu failed: %s\n",
                     static_cast<unsigned long long>(seed), e.what());
      }
      if (!report.alive) ++liveness_failures;

      if (spawned.pid > 0) {
        report.rss_mb = rss_mb(spawned.pid);
        max_rss_seen = std::max(max_rss_seen, report.rss_mb);
        if (report.rss_mb > static_cast<double>(max_rss_mb)) rss_exceeded = true;
      }

      std::printf("pmacx_chaos: seed %llu: %llu ok, %llu busy, %llu server-err, "
                  "%llu transport-err, %llu hangs, max %.0f ms%s%s\n",
                  static_cast<unsigned long long>(seed),
                  static_cast<unsigned long long>(report.ok),
                  static_cast<unsigned long long>(report.busy),
                  static_cast<unsigned long long>(report.server_error),
                  static_cast<unsigned long long>(report.transport_error),
                  static_cast<unsigned long long>(report.hangs), report.max_request_ms,
                  report.alive ? "" : "  SERVER DEAD",
                  spawned.pid > 0 ? ("  rss " + std::to_string(report.rss_mb) + " MiB").c_str()
                                  : "");
      rounds.push_back(report);
      ++rounds_run;
      if (!report.alive) break;  // no point chaosing a corpse
    }

    // Teardown (and the final crash check) in --server mode.
    bool abnormal_exit = false;
    if (spawned.pid > 0) {
      if (liveness_failures == 0) {
        try {
          service::Client control(direct);
          service::Request shutdown;
          shutdown.type = service::MsgType::Shutdown;
          control.call(shutdown);
        } catch (const std::exception& e) {
          std::fprintf(stderr, "pmacx_chaos: shutdown request failed: %s\n", e.what());
          ::kill(spawned.pid, SIGTERM);
        }
      } else {
        ::kill(spawned.pid, SIGTERM);
      }
      int status = 0;
      ::waitpid(spawned.pid, &status, 0);
      abnormal_exit = liveness_failures == 0 &&
                      (!WIFEXITED(status) || WEXITSTATUS(status) != 0);
      if (abnormal_exit)
        std::fprintf(stderr, "pmacx_chaos: server exited abnormally (status %d)\n", status);
    }

    const std::uint64_t requests_total =
        total.ok.load() + total.busy.load() + total.server_error.load() +
        total.transport_error.load();
    const bool passed = total.hangs.load() == 0 && liveness_failures == 0 &&
                        !rss_exceeded && !abnormal_exit &&
                        requests_total == rounds_run * requests_per_seed;

    std::printf("pmacx_chaos: %s — %llu rounds, %llu requests "
                "(%llu ok, %llu busy, %llu server-err, %llu transport-err), "
                "%llu hangs, %llu liveness failures, max rss %.1f MiB\n",
                passed ? "PASS" : "FAIL",
                static_cast<unsigned long long>(rounds_run),
                static_cast<unsigned long long>(requests_total),
                static_cast<unsigned long long>(total.ok.load()),
                static_cast<unsigned long long>(total.busy.load()),
                static_cast<unsigned long long>(total.server_error.load()),
                static_cast<unsigned long long>(total.transport_error.load()),
                static_cast<unsigned long long>(total.hangs.load()),
                static_cast<unsigned long long>(liveness_failures), max_rss_seen);
    std::printf("pmacx_chaos: injected faults: %llu conns, %llu resets, %llu cuts, "
                "%llu delays, %llu dups, %llu trickles, %llu partials, %llu bytes\n",
                static_cast<unsigned long long>(chaos_connections),
                static_cast<unsigned long long>(chaos_resets),
                static_cast<unsigned long long>(chaos_cuts),
                static_cast<unsigned long long>(chaos_delays),
                static_cast<unsigned long long>(chaos_duplicates),
                static_cast<unsigned long long>(chaos_trickles),
                static_cast<unsigned long long>(chaos_partials),
                static_cast<unsigned long long>(chaos_bytes));

    if (!json_path.empty()) {
      std::ofstream out(json_path);
      PMACX_CHECK(out.good(), "cannot write " + json_path);
      out << "{\n"
          << "  \"passed\": " << (passed ? "true" : "false") << ",\n"
          << "  \"rounds\": " << rounds_run << ",\n"
          << "  \"requests\": " << requests_total << ",\n"
          << "  \"outcomes\": {\"ok\": " << total.ok.load()
          << ", \"busy\": " << total.busy.load()
          << ", \"server_error\": " << total.server_error.load()
          << ", \"transport_error\": " << total.transport_error.load() << "},\n"
          << "  \"violations\": {\"hangs\": " << total.hangs.load()
          << ", \"liveness_failures\": " << liveness_failures
          << ", \"rss_exceeded\": " << (rss_exceeded ? "true" : "false")
          << ", \"abnormal_exit\": " << (abnormal_exit ? "true" : "false") << "},\n"
          << "  \"max_request_ms\": " << total.max_request_ms.load() << ",\n"
          << "  \"max_rss_mb\": " << max_rss_seen << ",\n"
          << "  \"faults\": {\"connections\": " << chaos_connections
          << ", \"resets\": " << chaos_resets << ", \"cuts\": " << chaos_cuts
          << ", \"delays\": " << chaos_delays << ", \"duplicates\": " << chaos_duplicates
          << ", \"trickles\": " << chaos_trickles << ", \"partials\": " << chaos_partials
          << ", \"bytes_forwarded\": " << chaos_bytes << "},\n"
          << "  \"per_seed\": [\n";
      for (std::size_t i = 0; i < rounds.size(); ++i) {
        const RoundReport& r = rounds[i];
        out << "    {\"seed\": " << r.seed << ", \"ok\": " << r.ok
            << ", \"busy\": " << r.busy << ", \"server_error\": " << r.server_error
            << ", \"transport_error\": " << r.transport_error << ", \"hangs\": " << r.hangs
            << ", \"max_request_ms\": " << r.max_request_ms
            << ", \"rss_mb\": " << r.rss_mb << ", \"alive\": "
            << (r.alive ? "true" : "false") << "}" << (i + 1 < rounds.size() ? "," : "")
            << "\n";
      }
      out << "  ]\n}\n";
    }

    return passed ? 0 : 1;
  } catch (const util::Error& e) {
    std::fprintf(stderr, "pmacx_chaos: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pmacx_chaos: internal error: %s\n", e.what());
    return 1;
  }
}
