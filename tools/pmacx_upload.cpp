// pmacx_upload — stream trace files into a running pmacx_serve.
//
// Drives the UPLOAD_TRACE chunk protocol end to end: BEGIN declares each
// upload (size, chunk size, whole-file CRC-32), STATUS reports what the
// server already has, CHUNKs carry only the missing pieces, COMMIT verifies
// and publishes the file into its collection.  The session id is derived
// from the file's content CRC and size, so a re-run after any failure —
// lost response, killed client, killed server that kept its spool — resumes
// the same session and sends only what is missing.  Every request goes
// through Client::call_with_retry; every op is idempotent, so retries are
// free.
//
// Memory stays flat regardless of file size: the CRC pass and the chunk
// reads both stream through a fixed buffer.  --rss-cap-mb turns the tool
// into its own soak harness — it samples this process's RSS (and, with
// --watch-pid or --server, the server's) after every chunk and fails if
// either exceeds the cap, which is how CI pins "a multi-GiB upload never
// inflates RSS".
//
// Soak mode (one command, no wrapper script):
//
//   pmacx_upload --server build/pmacx_serve --ingest-dir /tmp/ingest \
//                --collection soak --file a.btrace,b.btrace,c.btrace \
//                --wait-refits 1 --rss-cap-mb 512
//
// spawns its own ingestion-enabled server, uploads every file, polls STATUS
// until the server reports the background refit landed, then shuts the
// server down cleanly (so its --metrics-json snapshot gets written).
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <exception>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "ingest/upload.hpp"
#include "serve_spawn.hpp"
#include "service/client.hpp"
#include "util/cli.hpp"
#include "util/crc32.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/metrics.hpp"
#include "util/strings.hpp"

namespace {

using namespace pmacx;

/// Resident set size of a process in MiB, from /proc/<pid>/statm; 0 when
/// unreadable (proc entry gone or not Linux).
double rss_mb(pid_t pid) {
  std::ifstream in("/proc/" + std::to_string(pid) + "/statm");
  long total = 0, resident = 0;
  if (!(in >> total >> resident)) return 0.0;
  return static_cast<double>(resident) *
         static_cast<double>(::sysconf(_SC_PAGESIZE)) / (1024.0 * 1024.0);
}

/// Whole-file CRC-32 through a fixed 1 MiB window (never loads the file).
std::uint32_t streamed_crc(const std::string& path, std::uint64_t* size_out) {
  std::ifstream in(path, std::ios::binary);
  PMACX_CHECK(in.good(), "cannot open '" + path + "'");
  std::string buffer(1u << 20, '\0');
  std::uint32_t crc = 0;
  std::uint64_t size = 0;
  while (in) {
    in.read(buffer.data(), static_cast<std::streamsize>(buffer.size()));
    const std::streamsize got = in.gcount();
    if (got <= 0) break;
    crc = util::crc32(buffer.data(), static_cast<std::size_t>(got), crc);
    size += static_cast<std::uint64_t>(got);
  }
  *size_out = size;
  return crc;
}

/// The server's key-value progress body ("state pending\nchunks 4\n
/// received 2\nmissing 1 3\n" ...), parsed.
struct Progress {
  std::string state;
  std::uint64_t chunks = 0;
  std::uint64_t received = 0;
  std::vector<std::uint64_t> missing;
  std::string path;
};

Progress parse_progress(const std::string& body) {
  Progress progress;
  for (const std::string& line : util::split(body, '\n')) {
    std::istringstream in(line);
    std::string key;
    if (!(in >> key)) continue;
    if (key == "state") {
      in >> progress.state;
    } else if (key == "chunks") {
      in >> progress.chunks;
    } else if (key == "received") {
      in >> progress.received;
    } else if (key == "path") {
      in >> progress.path;
    } else if (key == "missing") {
      std::uint64_t index = 0;
      while (in >> index) progress.missing.push_back(index);
    }
  }
  return progress;
}

/// The value of one "key value" line in a STATUS report; 0 when absent.
std::uint64_t status_value(const std::string& body, const std::string& wanted) {
  for (const std::string& line : util::split(body, '\n')) {
    std::istringstream in(line);
    std::string key;
    std::uint64_t value = 0;
    if ((in >> key >> value) && key == wanted) return value;
  }
  return 0;
}

std::string basename_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli("pmacx_upload", "stream traces into a live server (UPLOAD_TRACE)");
  cli.add_string("host", "127.0.0.1", "server address");
  cli.add_u64("port", 0, "server port (required unless --server spawns one)");
  cli.add_string("file", "", "trace file(s) to upload, comma-separated (required)");
  cli.add_string("collection", "", "target collection name (required)");
  cli.add_u64("chunk-kb", 1024, "chunk size in KiB (max 8192)");
  cli.add_u64("deadline-ms", 60'000, "per-request retry deadline in milliseconds");
  cli.add_u64("rss-cap-mb", 0,
              "fail if this process's RSS (or the watched server's) ever "
              "exceeds this many MiB during the upload (0 disables)");
  cli.add_u64("watch-pid", 0,
              "also sample this pid's RSS against --rss-cap-mb (the server "
              "under soak; implied by --server)");
  cli.add_u64("wait-refits", 0,
              "after the last commit, poll STATUS until the server reports at "
              "least this many completed background refits (0 = don't wait)");
  cli.add_u64("wait-timeout-ms", 60'000, "budget for --wait-refits polling");
  cli.add_flag("shutdown", "send SHUTDOWN when done (implied by --server)");
  cli.add_string("server", "",
                 "spawn this pmacx_serve binary on an ephemeral port with "
                 "--ingest-dir, upload against it, and shut it down at the end");
  cli.add_string("ingest-dir", "", "(with --server) the spawned server's ingest root");
  cli.add_string("server-metrics", "",
                 "(with --server) the spawned server's --metrics-json path");
  cli.add_u64("stream-budget-mb", 64,
              "(with --server) the spawned server's --stream-budget-mb");
  cli.add_string("metrics-json", "",
                 "write a pmacx-metrics-v1 snapshot (chunks sent, bytes, peak "
                 "RSS gauges) to this file");
  cli.add_flag("quiet", "suppress progress output");

  tools::SpawnedServer spawned;
  try {
    if (!cli.parse(argc, argv)) return 0;
    util::set_log_level(util::LogLevel::Warn);
    PMACX_CHECK(!cli.get_string("file").empty(), "--file is required");
    PMACX_CHECK(!cli.get_string("collection").empty(), "--collection is required");
    const std::uint64_t chunk_bytes = cli.get_u64("chunk-kb") << 10;
    PMACX_CHECK(chunk_bytes > 0 && chunk_bytes <= ingest::kMaxChunkBytes,
                "--chunk-kb must be in [1, " +
                    std::to_string(ingest::kMaxChunkBytes >> 10) + "]");
    std::vector<std::string> files;
    for (const std::string& piece : util::split(cli.get_string("file"), ','))
      if (!piece.empty()) files.push_back(piece);
    PMACX_CHECK(!files.empty(), "--file lists no paths");

    std::uint16_t port = static_cast<std::uint16_t>(cli.get_u64("port"));
    pid_t watch_pid = static_cast<pid_t>(cli.get_u64("watch-pid"));
    if (!cli.get_string("server").empty()) {
      PMACX_CHECK(!cli.get_string("ingest-dir").empty(),
                  "--server needs --ingest-dir for the spawned server");
      tools::SpawnSpec spec;
      spec.binary = cli.get_string("server");
      spec.tool = "pmacx_upload";
      spec.args = {"--port", "0", "--ingest-dir", cli.get_string("ingest-dir"),
                   "--stream-budget-mb", std::to_string(cli.get_u64("stream-budget-mb"))};
      if (!cli.get_string("server-metrics").empty()) {
        spec.args.push_back("--metrics-json");
        spec.args.push_back(cli.get_string("server-metrics"));
      }
      spawned = tools::spawn_child(spec);
      port = spawned.port;
      if (watch_pid == 0) watch_pid = spawned.pid;
    }
    PMACX_CHECK(port > 0, "--port is required (or --server to spawn one)");

    service::ClientOptions client_options;
    client_options.host = cli.get_string("host");
    client_options.port = port;
    client_options.retry.overall_deadline_ms = cli.get_u64("deadline-ms");
    service::Client client(client_options);

    auto& registry = util::metrics::Registry::global();
    const std::uint64_t rss_cap = cli.get_u64("rss-cap-mb");
    double peak_self = 0.0, peak_watched = 0.0;
    auto check_rss = [&] {
      peak_self = std::max(peak_self, rss_mb(::getpid()));
      if (watch_pid > 0) peak_watched = std::max(peak_watched, rss_mb(watch_pid));
      registry.gauge("ingest.client.peak_rss_mb").set(peak_self);
      if (watch_pid > 0)
        registry.gauge("ingest.client.watched_peak_rss_mb").set(peak_watched);
      if (rss_cap > 0) {
        PMACX_CHECK(peak_self <= static_cast<double>(rss_cap),
                    "uploader RSS " + std::to_string(peak_self) + " MiB exceeds the " +
                        std::to_string(rss_cap) + " MiB cap");
        PMACX_CHECK(watch_pid <= 0 || peak_watched <= static_cast<double>(rss_cap),
                    "server (pid " + std::to_string(watch_pid) + ") RSS " +
                        std::to_string(peak_watched) + " MiB exceeds the " +
                        std::to_string(rss_cap) + " MiB cap");
      }
    };

    auto call = [&](const ingest::UploadRequest& upload) {
      service::Request request;
      request.type = service::MsgType::UploadTrace;
      request.upload = upload;
      const service::Response response = client.call_with_retry(request);
      PMACX_CHECK(response.status == service::Status::Ok,
                  "server rejected " + ingest::upload_op_name(upload.op) + ": " +
                      response.body);
      return parse_progress(response.body);
    };

    for (const std::string& file : files) {
      std::uint64_t total_bytes = 0;
      const std::uint32_t file_crc = streamed_crc(file, &total_bytes);
      PMACX_CHECK(total_bytes > 0, "'" + file + "' is empty");
      // Deterministic session id: the same bytes always map to the same
      // session, so a restarted client converges on the server's spool.
      const std::string session =
          util::format("u%08x-%llu", file_crc,
                       static_cast<unsigned long long>(total_bytes));

      ingest::UploadRequest begin;
      begin.op = ingest::UploadOp::Begin;
      begin.session = session;
      begin.collection = cli.get_string("collection");
      begin.file_name = basename_of(file);
      begin.total_bytes = total_bytes;
      begin.chunk_bytes = static_cast<std::uint32_t>(chunk_bytes);
      begin.file_crc = file_crc;
      Progress progress = call(begin);
      if (!cli.get_flag("quiet"))
        std::printf("pmacx_upload: session %s: %llu/%llu chunks already spooled\n",
                    session.c_str(),
                    static_cast<unsigned long long>(progress.received),
                    static_cast<unsigned long long>(progress.chunks));

      std::ifstream in(file, std::ios::binary);
      PMACX_CHECK(in.good(), "cannot reopen '" + file + "'");
      std::string buffer;
      // Send whatever the server reports missing, re-querying until the
      // spool is complete (STATUS caps its missing list, so big uploads
      // take a few sweeps).  A fresh session reports everything missing.
      for (;;) {
        ingest::UploadRequest status;
        status.op = ingest::UploadOp::Status;
        status.session = session;
        progress = call(status);
        if (progress.state == "committed" || progress.missing.empty()) break;
        for (const std::uint64_t index : progress.missing) {
          const std::uint64_t offset = index * chunk_bytes;
          const std::uint64_t size =
              std::min<std::uint64_t>(chunk_bytes, total_bytes - offset);
          buffer.resize(static_cast<std::size_t>(size));
          in.seekg(static_cast<std::streamoff>(offset));
          in.read(buffer.data(), static_cast<std::streamsize>(size));
          PMACX_CHECK(in.gcount() == static_cast<std::streamsize>(size),
                      "short read at offset " + std::to_string(offset) +
                          " (file changed mid-upload?)");
          ingest::UploadRequest chunk;
          chunk.op = ingest::UploadOp::Chunk;
          chunk.session = session;
          chunk.chunk_index = index;
          chunk.data = buffer;
          call(chunk);
          registry.counter("ingest.client.chunks_sent").add();
          registry.counter("ingest.client.bytes_sent").add(size);
          check_rss();
        }
      }

      if (progress.state != "committed") {
        ingest::UploadRequest commit;
        commit.op = ingest::UploadOp::Commit;
        commit.session = session;
        progress = call(commit);
      }
      check_rss();
      PMACX_CHECK(progress.state == "committed",
                  "upload of '" + file + "' did not commit (state '" +
                      progress.state + "')");
      registry.counter("ingest.client.committed").add();
      if (!cli.get_flag("quiet"))
        std::printf("pmacx_upload: committed %s (%llu bytes, %llu chunks) -> %s\n",
                    basename_of(file).c_str(),
                    static_cast<unsigned long long>(total_bytes),
                    static_cast<unsigned long long>(progress.chunks),
                    progress.path.c_str());
    }

    if (const std::uint64_t want = cli.get_u64("wait-refits"); want > 0) {
      // The refit runs on the server's pool after COMMIT returns; STATUS is
      // the observable.  Poll until it lands or the budget expires.
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::milliseconds(cli.get_u64("wait-timeout-ms"));
      std::uint64_t refits = 0;
      for (;;) {
        service::Request probe;
        probe.type = service::MsgType::Status;
        const service::Response response = client.call_with_retry(probe);
        PMACX_CHECK(response.status == service::Status::Ok,
                    "STATUS failed while waiting for refits: " + response.body);
        refits = status_value(response.body, "ingest.refits");
        check_rss();
        if (refits >= want) break;
        PMACX_CHECK(std::chrono::steady_clock::now() < deadline,
                    "server completed " + std::to_string(refits) + " refits, wanted " +
                        std::to_string(want) + " within the --wait-timeout-ms budget");
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
      if (!cli.get_flag("quiet"))
        std::printf("pmacx_upload: server reports %llu background refit(s)\n",
                    static_cast<unsigned long long>(refits));
    }

    if (cli.get_flag("shutdown") || spawned.pid > 0) {
      service::Request shutdown;
      shutdown.type = service::MsgType::Shutdown;
      client.call(shutdown);  // never retried; a lost reply just means it landed
    }
    if (spawned.pid > 0) {
      int status = 0;
      ::waitpid(spawned.pid, &status, 0);
      spawned.pid = -1;
      PMACX_CHECK(WIFEXITED(status) && WEXITSTATUS(status) == 0,
                  "spawned server exited abnormally");
    }

    if (rss_cap > 0 && !cli.get_flag("quiet"))
      std::printf("pmacx_upload: peak rss %.1f MiB (self), %.1f MiB (server), cap %llu MiB\n",
                  peak_self, peak_watched,
                  static_cast<unsigned long long>(rss_cap));

    if (!cli.get_string("metrics-json").empty()) {
      util::metrics::RunManifest manifest =
          util::metrics::RunManifest::for_tool("pmacx_upload");
      manifest.config = cli.values();
      util::metrics::write_json(cli.get_string("metrics-json"), manifest,
                                registry.snapshot());
    }
    return 0;
  } catch (const util::Error& e) {
    std::fprintf(stderr, "pmacx_upload: %s\n", e.what());
    if (spawned.pid > 0) {
      ::kill(spawned.pid, SIGKILL);
      ::waitpid(spawned.pid, nullptr, 0);
    }
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pmacx_upload: internal error: %s\n", e.what());
    if (spawned.pid > 0) {
      ::kill(spawned.pid, SIGKILL);
      ::waitpid(spawned.pid, nullptr, 0);
    }
    return 1;
  }
}
