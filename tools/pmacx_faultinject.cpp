// pmacx_faultinject — corruption sweeps against the pmacx input loaders.
//
// The robustness contract: for ANY corruption of a valid trace or machine
// profile, the loader must parse, salvage, or throw util::ParseError —
// never crash, hang, or die on an unexpected exception type.  This tool
// applies deterministic seeded corruptions (bit-flips, truncations, byte
// mutations, garbage extensions) or exhaustive sweeps and classifies every
// outcome.  Run it under ASan/UBSan in CI to also catch silent memory
// damage.
//
//   pmacx_faultinject --sweep 1000 s64.trace
//   pmacx_faultinject --truncations --step 7 s64.trace
//   pmacx_faultinject --emit bad.trace --truncate 100 s64.trace
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "machine/profile_io.hpp"
#include "trace/binary_io.hpp"
#include "trace/task_trace.hpp"
#include "util/error.hpp"
#include "util/faultinject.hpp"
#include "util/parse_error.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace {

using namespace pmacx;

enum class InputKind { BinaryTrace, TextTrace, Profile };

enum class Outcome { Parsed, Salvaged, Rejected, Unexpected };

InputKind detect_kind(const std::string& bytes, const std::string& path) {
  if (trace::looks_binary(bytes)) return InputKind::BinaryTrace;
  if (util::starts_with(bytes, "pmacx-trace")) return InputKind::TextTrace;
  if (util::starts_with(bytes, "pmacx-profile")) return InputKind::Profile;
  PMACX_CHECK(false, "'" + path + "' is not a pmacx trace or profile");
  return InputKind::BinaryTrace;
}

const char* kind_name(InputKind kind) {
  switch (kind) {
    case InputKind::BinaryTrace: return "binary trace";
    case InputKind::TextTrace: return "text trace";
    case InputKind::Profile: return "machine profile";
  }
  return "?";
}

/// Feeds one corrupted byte string to the loader matching `kind` and
/// classifies the outcome.  `detail` receives the exception text for
/// Unexpected outcomes.
Outcome run_one(InputKind kind, const std::string& bytes, std::string& detail) {
  try {
    switch (kind) {
      case InputKind::BinaryTrace:
        try {
          (void)trace::from_binary(bytes);
          return Outcome::Parsed;
        } catch (const util::ParseError&) {
          // Strict parse refused — a salvage that recovers blocks without
          // tripping the contract is the intended degraded path.
          trace::SalvageReport report;
          (void)trace::salvage_binary(bytes, report);
          return report.blocks_recovered > 0 ? Outcome::Salvaged : Outcome::Rejected;
        }
      case InputKind::TextTrace:
        (void)trace::TaskTrace::from_text(bytes);
        return Outcome::Parsed;
      case InputKind::Profile:
        (void)machine::profile_from_text(bytes);
        return Outcome::Parsed;
    }
  } catch (const util::ParseError&) {
    return Outcome::Rejected;
  } catch (const std::exception& e) {
    detail = e.what();
    return Outcome::Unexpected;
  } catch (...) {
    detail = "non-standard exception";
    return Outcome::Unexpected;
  }
  detail = "unreachable";
  return Outcome::Unexpected;
}

struct SweepTally {
  std::size_t parsed = 0, salvaged = 0, rejected = 0, unexpected = 0;
};

int run_plan(InputKind kind, const std::string& original,
             const std::vector<util::Corruption>& plan, const char* plan_name) {
  SweepTally tally;
  for (const util::Corruption& corruption : plan) {
    const std::string corrupted = util::apply_corruption(original, corruption);
    std::string detail;
    switch (run_one(kind, corrupted, detail)) {
      case Outcome::Parsed: ++tally.parsed; break;
      case Outcome::Salvaged: ++tally.salvaged; break;
      case Outcome::Rejected: ++tally.rejected; break;
      case Outcome::Unexpected:
        ++tally.unexpected;
        std::fprintf(stderr, "ROBUSTNESS VIOLATION [%s]: %s\n",
                     corruption.describe().c_str(), detail.c_str());
        break;
    }
  }
  std::printf("%s sweep over %s: %zu cases — %zu parsed, %zu salvaged, "
              "%zu rejected, %zu unexpected\n",
              plan_name, kind_name(kind), plan.size(), tally.parsed, tally.salvaged,
              tally.rejected, tally.unexpected);
  return tally.unexpected > 0 ? 3 : 0;
}

void usage() {
  std::puts(
      "pmacx_faultinject — corruption sweeps against the pmacx loaders\n"
      "\n"
      "usage: pmacx_faultinject --sweep <n> [--seed <s>] <file>\n"
      "       pmacx_faultinject --truncations [--step <n>] <file>\n"
      "       pmacx_faultinject --header-bits [--bytes <n>] <file>\n"
      "       pmacx_faultinject --emit <out> (--bitflip <bit> | --truncate <size>\n"
      "                                       | --byte <pos>=<val>) <file>\n"
      "\n"
      "The input's loader is chosen by magic (binary/text trace, machine\n"
      "profile).  Every corrupted variant must parse, salvage, or throw\n"
      "ParseError; exits 3 if any corruption broke that contract.\n"
      "--emit writes a single corrupted copy for reproduction instead.\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string path, emit;
  std::uint64_t sweep = 0, seed = 1, step = 1, header_bytes = 64;
  bool truncations = false, header_bits = false;
  std::vector<util::Corruption> emit_plan;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto value = [&]() -> std::string {
        PMACX_CHECK(i + 1 < argc, "option " + arg + " requires a value");
        return argv[++i];
      };
      if (arg == "--help" || arg == "-h") {
        usage();
        return 0;
      } else if (arg == "--sweep") {
        sweep = util::parse_u64(value(), arg);
      } else if (arg == "--seed") {
        seed = util::parse_u64(value(), arg);
      } else if (arg == "--truncations") {
        truncations = true;
      } else if (arg == "--step") {
        step = util::parse_u64(value(), arg);
      } else if (arg == "--header-bits") {
        header_bits = true;
      } else if (arg == "--bytes") {
        header_bytes = util::parse_u64(value(), arg);
      } else if (arg == "--emit") {
        emit = value();
      } else if (arg == "--bitflip") {
        const std::uint64_t bit = util::parse_u64(value(), arg);
        emit_plan.push_back({util::Corruption::Kind::BitFlip, bit / 8,
                             static_cast<std::uint8_t>(bit % 8)});
      } else if (arg == "--truncate") {
        emit_plan.push_back(
            {util::Corruption::Kind::Truncate, util::parse_u64(value(), arg), 0});
      } else if (arg == "--byte") {
        const std::string spec = value();
        const auto eq = spec.find('=');
        PMACX_CHECK(eq != std::string::npos, "--byte expects <pos>=<val>");
        emit_plan.push_back(
            {util::Corruption::Kind::MutateByte,
             util::parse_u64(spec.substr(0, eq), "--byte position"),
             static_cast<std::uint8_t>(util::parse_u64(spec.substr(eq + 1), "--byte value"))});
      } else if (util::starts_with(arg, "--")) {
        PMACX_CHECK(false, "unknown option " + arg);
      } else {
        PMACX_CHECK(path.empty(), "give exactly one input file");
        path = arg;
      }
    }
    PMACX_CHECK(!path.empty(), "give an input file");

    std::ifstream in(path, std::ios::binary);
    PMACX_CHECK(in.good(), "cannot open '" + path + "' for reading");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string original = buffer.str();
    const InputKind kind = detect_kind(original, path);

    if (!emit.empty()) {
      PMACX_CHECK(emit_plan.size() == 1,
                  "--emit needs exactly one of --bitflip/--truncate/--byte");
      const std::string corrupted = util::apply_corruption(original, emit_plan[0]);
      std::ofstream out(emit, std::ios::trunc | std::ios::binary);
      PMACX_CHECK(out.good(), "cannot open '" + emit + "' for writing");
      out.write(corrupted.data(), static_cast<std::streamsize>(corrupted.size()));
      PMACX_CHECK(out.good(), "write to '" + emit + "' failed");
      std::printf("%s -> %s [%s]\n", path.c_str(), emit.c_str(),
                  emit_plan[0].describe().c_str());
      return 0;
    }

    int status = 0;
    bool ran = false;
    if (sweep > 0) {
      util::Rng rng(seed);
      std::vector<util::Corruption> plan;
      plan.reserve(sweep);
      for (std::uint64_t i = 0; i < sweep; ++i)
        plan.push_back(util::random_corruption(rng, original.size()));
      status |= run_plan(kind, original, plan, "seeded");
      ran = true;
    }
    if (truncations) {
      status |= run_plan(kind, original,
                         util::truncation_sweep(original.size(), step), "truncation");
      ran = true;
    }
    if (header_bits) {
      const std::size_t prefix = std::min<std::size_t>(header_bytes, original.size());
      status |= run_plan(kind, original, util::bit_flip_sweep(prefix), "header-bit");
      ran = true;
    }
    PMACX_CHECK(ran, "choose --sweep, --truncations, --header-bits, or --emit");
    return status;
  } catch (const util::Error& e) {
    std::fprintf(stderr, "pmacx_faultinject: %s\n", e.what());
    return 1;
  }
}
