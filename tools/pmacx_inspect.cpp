// pmacx_inspect — summarize a trace file, or diff two of them.
//
// Single-trace mode prints the header and the per-block feature table (the
// paper's Fig. 2 view).  Diff mode compares two traces element-by-element —
// exactly how the paper evaluates an extrapolated trace against one
// collected at the same core count — and reports the worst-diverging
// elements plus aggregate statistics.
//
//   pmacx_inspect s6144.trace
//   pmacx_inspect --diff extrapolated.trace collected.trace
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <exception>
#include <iostream>
#include <string>
#include <vector>

#include "stats/descriptive.hpp"
#include "trace/binary_io.hpp"
#include "trace/task_trace.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace pmacx;

void summarize(const trace::TaskTrace& task) {
  std::printf("app:          %s\n", task.app.c_str());
  std::printf("rank:         %u of %u cores\n", task.rank, task.core_count);
  std::printf("target:       %s\n", task.target_system.c_str());
  std::printf("provenance:   %s\n", task.extrapolated ? "extrapolated" : "collected");
  std::printf("blocks:       %zu\n", task.blocks.size());
  std::printf("memory ops:   %.4g\n", task.total_memory_ops());
  std::printf("fp ops:       %.4g\n", task.total_fp_ops());
  std::printf("bytes moved:  %s\n\n", util::human_bytes(task.total_bytes_moved()).c_str());

  util::Table table({"Block", "Location", "Visits", "Mem Ops", "FP Ops", "L1 HR", "L2 HR",
                     "L3 HR", "Working Set", "Instrs"});
  for (const auto& block : task.blocks) {
    table.add_row({std::to_string(block.id),
                   block.location.function + " @ " + block.location.file + ":" +
                       std::to_string(block.location.line),
                   util::format("%.3g", block.get(trace::BlockElement::VisitCount)),
                   util::format("%.3g", block.memory_ops()),
                   util::format("%.3g", block.fp_ops()),
                   util::human_percent(block.get(trace::BlockElement::HitRateL1), 1),
                   util::human_percent(block.get(trace::BlockElement::HitRateL2), 1),
                   util::human_percent(block.get(trace::BlockElement::HitRateL3), 1),
                   util::human_bytes(block.get(trace::BlockElement::WorkingSetBytes)),
                   std::to_string(block.instructions.size())});
  }
  table.print(std::cout);
}

struct DiffEntry {
  std::string label;
  double a = 0.0;
  double b = 0.0;
  double rel = 0.0;
};

int diff(const trace::TaskTrace& a, const trace::TaskTrace& b, double threshold,
         std::size_t worst_count) {
  std::vector<DiffEntry> entries;
  std::size_t only_a = 0, only_b = 0;

  for (const auto& block_b : b.blocks)
    if (a.find_block(block_b.id) == nullptr) ++only_b;

  for (const auto& block_a : a.blocks) {
    const auto* block_b = b.find_block(block_a.id);
    if (block_b == nullptr) {
      ++only_a;
      continue;
    }
    for (std::size_t e = 0; e < trace::kBlockElementCount; ++e) {
      DiffEntry entry;
      entry.label = "block " + std::to_string(block_a.id) + " / " +
                    trace::block_element_name(static_cast<trace::BlockElement>(e));
      entry.a = block_a.features[e];
      entry.b = block_b->features[e];
      const double scale = std::max(std::fabs(entry.a), std::fabs(entry.b));
      entry.rel = scale > 0 ? std::fabs(entry.a - entry.b) / scale : 0.0;
      entries.push_back(std::move(entry));
    }
  }

  std::vector<double> rels;
  rels.reserve(entries.size());
  for (const auto& entry : entries) rels.push_back(entry.rel);
  const auto summary = stats::summarize(rels);

  std::printf("compared %zu elements across %zu shared blocks "
              "(%zu only in first, %zu only in second)\n\n",
              entries.size(), a.blocks.size() - only_a, only_a, only_b);
  std::printf("relative difference: mean %s, median %s, max %s\n\n",
              util::human_percent(summary.mean, 2).c_str(),
              util::human_percent(summary.median, 2).c_str(),
              util::human_percent(summary.max, 2).c_str());

  std::sort(entries.begin(), entries.end(),
            [](const DiffEntry& x, const DiffEntry& y) { return x.rel > y.rel; });
  util::Table table({"Element", "First", "Second", "Rel Diff"});
  for (std::size_t i = 0; i < std::min(worst_count, entries.size()); ++i) {
    const DiffEntry& entry = entries[i];
    if (entry.rel == 0.0) break;
    table.add_row({entry.label, util::format("%.6g", entry.a),
                   util::format("%.6g", entry.b), util::human_percent(entry.rel, 2)});
  }
  if (table.rows() > 0) table.print(std::cout, "largest differences:");

  return summary.max > threshold ? 2 : 0;
}

void usage() {
  std::puts(
      "pmacx_inspect — summarize a trace file, or diff two\n"
      "\n"
      "usage: pmacx_inspect [--salvage] <trace>\n"
      "       pmacx_inspect --diff <first> <second> [--threshold <rel>] [--worst <n>]\n"
      "\n"
      "Diff mode exits 2 when the largest relative difference exceeds the\n"
      "threshold (default 0.05), making it usable as a regression gate.\n"
      "--salvage recovers what it can from a damaged binary trace (every\n"
      "intact block before the first bad checksum) instead of rejecting it.\n"
      "--metrics-json <file> writes a pmacx-metrics-v1 snapshot.\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  bool diff_mode = false;
  bool salvage_mode = false;
  double threshold = 0.05;
  std::size_t worst_count = 15;
  std::string metrics_json;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto value = [&]() -> std::string {
        PMACX_CHECK(i + 1 < argc, "option " + arg + " requires a value");
        return argv[++i];
      };
      if (arg == "--help" || arg == "-h") {
        usage();
        return 0;
      } else if (arg == "--diff") {
        diff_mode = true;
      } else if (arg == "--salvage") {
        salvage_mode = true;
      } else if (arg == "--threshold") {
        threshold = util::parse_flag_double(value(), arg);
      } else if (arg == "--worst") {
        worst_count = util::parse_flag_u64(value(), arg);
      } else if (arg == "--metrics-json") {
        metrics_json = value();
      } else if (util::starts_with(arg, "--")) {
        PMACX_CHECK(false, "unknown option " + arg);
      } else {
        paths.push_back(arg);
      }
    }

    int exit_code = 0;
    if (diff_mode) {
      PMACX_CHECK(paths.size() == 2, "--diff needs exactly two trace files");
      exit_code = diff(trace::TaskTrace::load(paths[0]), trace::TaskTrace::load(paths[1]),
                       threshold, worst_count);
    } else {
      PMACX_CHECK(paths.size() == 1, "give one trace file (or --diff with two)");
      if (salvage_mode) {
        trace::SalvageReport salvaged;
        const trace::TaskTrace task = trace::load_salvage(paths[0], salvaged);
        if (salvaged.used)
          std::printf("salvaged:     %zu of %llu blocks (%s)\n",
                      salvaged.blocks_recovered,
                      static_cast<unsigned long long>(salvaged.blocks_expected),
                      salvaged.error.c_str());
        summarize(task);
      } else {
        summarize(trace::TaskTrace::load(paths[0]));
      }
    }

    if (!metrics_json.empty()) {
      util::metrics::RunManifest manifest =
          util::metrics::RunManifest::for_tool("pmacx_inspect");
      manifest.threads = 1;  // inspection is serial
      manifest.config.emplace_back("diff", diff_mode ? "true" : "false");
      manifest.config.emplace_back("salvage", salvage_mode ? "true" : "false");
      for (const std::string& path : paths) manifest.add_input(path);
      util::metrics::write_json(metrics_json, manifest,
                                util::metrics::Registry::global().snapshot());
    }
    return exit_code;
  } catch (const util::Error& e) {
    std::fprintf(stderr, "pmacx_inspect: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pmacx_inspect: internal error: %s\n", e.what());
    return 1;
  }
}
