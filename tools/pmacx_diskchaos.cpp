// pmacx_diskchaos — seeded storage-fault sweep over every durable-state path.
//
// The storage-side twin of pmacx_chaos: where that tool tears the network
// out from under the RPC layer, this one tears the *disk* out from under
// the persistence layer.  Each seed installs a mixed util::io fault
// schedule (EIO, ENOSPC, short transfers, EINTR storms, torn renames,
// lying fsyncs, crash-after-N-ops) and drives the two durable-state
// workloads in-process:
//
//   A  fit → checkpoint → crash → resume, via fit_task_models_checkpointed
//      over a synthetic three-point series.  A SimulatedCrash is treated as
//      a node restart (faults reinstalled with a derived seed) and the run
//      retried; the moment a fit completes it must account for every
//      element (reused + fitted == total) and extrapolate byte-identically
//      to the clean golden run — whatever torn chunks earlier attempts left.
//
//   B  upload → commit → restart → re-upload, via an in-process
//      UploadManager + CollectionRegistry working the BEGIN/CHUNK/COMMIT
//      protocol.  Restarts run the startup scrubber first (itself under
//      fault injection — it too may crash and re-run).  The sweep asserts
//      the final collection serves exactly the three uploaded files,
//      byte-identical to the originals, no matter which commits tore.
//
//   C  deterministic full disk: enospc_after_bytes trips mid-upload, the
//      manager must flip to read-only (typed rejection, no crash loop),
//      and a faults-cleared restart + scrub must recover completely.
//
// Cross-cutting invariants, every seed: no fault ever escapes as a crash
// (only typed util::Error / SimulatedCrash), published state is never
// served corrupt, and after recovery no spool/temp files remain — leftover
// temps are counted into the io.temp_leaks counter the CI gate pins to 0.
//
//   pmacx_diskchaos --seeds 32 --json DISKCHAOS.json
//       --metrics-json diskchaos.metrics.json
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/extrapolator.hpp"
#include "ingest/collection.hpp"
#include "ingest/scrub.hpp"
#include "ingest/upload.hpp"
#include "trace/binary_io.hpp"
#include "trace/task_trace.hpp"
#include "util/cli.hpp"
#include "util/crc32.hpp"
#include "util/error.hpp"
#include "util/io.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"

namespace {

using namespace pmacx;
namespace fs = std::filesystem;
namespace io = util::io;

constexpr std::size_t kMaxAttempts = 14;   ///< restarts/retries per workload
constexpr std::size_t kStreamBudget = std::size_t{8} << 20;
constexpr std::uint32_t kChunkBytes = 257; ///< forces several chunks per file

/// Same predicate the scrubber applies: atomic-write temps and spool parts.
bool is_temp_name(const std::string& name) {
  if (name.size() > 5 && name.substr(name.size() - 5) == ".part") return true;
  return name.find(".tmp.") != std::string::npos;
}

/// Temp files left anywhere under `root` after recovery — the sweep's
/// "temps never accumulate" invariant (quarantined traces keep their real
/// names, so they never count).
std::size_t count_temps(const std::string& root) {
  std::size_t leaks = 0;
  std::error_code ec;
  if (!fs::exists(root, ec)) return 0;
  fs::recursive_directory_iterator it(root, ec), end;
  for (; !ec && it != end; it.increment(ec))
    if (it->is_regular_file(ec) && is_temp_name(it->path().filename().string()))
      ++leaks;
  return leaks;
}

/// The same synthetic three-point series the checkpoint contract tests use:
/// clean per-block scaling, six blocks — several chunks at chunk_elements=2.
std::vector<trace::TaskTrace> build_series() {
  std::vector<trace::TaskTrace> series;
  for (std::uint32_t p : {8u, 16u, 32u}) {
    trace::TaskTrace task;
    task.app = "diskchaos";
    task.rank = 1;
    task.core_count = p;
    task.target_system = "test target";
    for (std::size_t b = 0; b < 6; ++b) {
      trace::BasicBlockRecord block;
      block.id = 10 + b;
      block.location = {"kernel.f90", static_cast<std::uint32_t>(100 + b), "kernel"};
      block.set(trace::BlockElement::VisitCount, 100.0 + static_cast<double>(b));
      block.set(trace::BlockElement::MemLoads, 8.0e6 / p);
      block.set(trace::BlockElement::MemStores, 4.0e6 / p);
      block.set(trace::BlockElement::BytesPerRef, 8.0);
      block.set(trace::BlockElement::HitRateL1, 0.9);
      block.set(trace::BlockElement::HitRateL2, 0.95);
      block.set(trace::BlockElement::HitRateL3, 0.99);
      trace::InstructionRecord instr;
      instr.index = 1;
      instr.set(trace::InstrElement::ExecCount, 100.0);
      instr.set(trace::InstrElement::MemOps, 75.0);
      instr.set(trace::InstrElement::HitRateL1, 0.5);
      instr.set(trace::InstrElement::HitRateL2, 0.6);
      instr.set(trace::InstrElement::HitRateL3, 0.7);
      block.instructions.push_back(instr);
      task.blocks.push_back(block);
    }
    task.sort_blocks();
    series.push_back(std::move(task));
  }
  return series;
}

/// The byte-identity oracle: whatever the disk did, a completed fit must
/// extrapolate to exactly these bytes.
std::string golden_bytes(const core::TaskModelSet& models) {
  return trace::to_binary(core::extrapolate_from_models(models, 256).trace);
}

/// One seeded fault mix.  Every probability and the crash budget derive
/// from the seed, so a failing report's seed replays the exact schedule.
/// `epoch` advances on every simulated restart ("the node came back").
io::FaultConfig fault_mix(std::uint64_t seed, std::uint64_t epoch) {
  const std::uint64_t derived = util::derive_seed(seed, epoch);
  util::Rng rng(derived);
  io::FaultConfig cfg;
  cfg.seed = derived;
  cfg.p_eio = 0.002 + rng.uniform() * 0.01;
  cfg.p_enospc = rng.uniform() * 0.004;
  cfg.p_short_write = rng.uniform() * 0.06;
  cfg.p_short_read = rng.uniform() * 0.06;
  cfg.p_eintr = rng.uniform() * 0.10;
  cfg.p_torn_rename = rng.uniform() * 0.05;
  cfg.p_fsync_lie = rng.uniform() * 0.02;
  cfg.crash_after_ops = 60 + rng.below(600);
  return cfg;
}

struct SeedResult {
  std::uint64_t seed = 0;
  bool passed = true;
  std::uint64_t restarts = 0;   ///< SimulatedCrash recoveries (all workloads)
  std::uint64_t io_errors = 0;  ///< typed errors absorbed and retried
  std::uint64_t temp_leaks = 0; ///< temps surviving recovery (must be 0)
  bool healed = false;          ///< needed the faults-cleared final pass
  std::string failure;          ///< first violated invariant
};

bool fail(SeedResult& result, const std::string& what) {
  result.passed = false;
  if (result.failure.empty()) result.failure = what;
  return false;
}

// --- Workload A: fit → checkpoint → crash → resume -------------------------

bool run_checkpoint_workload(std::uint64_t seed, const std::string& workdir,
                             const std::vector<trace::TaskTrace>& series,
                             const std::string& golden, SeedResult& result) {
  const std::string dir = workdir + "/ckpt";
  fs::remove_all(dir);
  core::CheckpointConfig config;
  config.dir = dir;
  config.digest = "d15kc4a05d15kc4a";
  config.chunk_elements = 2;

  std::uint64_t epoch = 0;
  io::install_faults(fault_mix(seed, epoch));
  bool fitted = false;
  for (std::size_t attempt = 0; attempt < kMaxAttempts && !fitted; ++attempt) {
    try {
      core::CheckpointStats stats;
      const core::TaskModelSet set =
          core::fit_task_models_checkpointed(series, {}, config, &stats);
      if (stats.elements_reused + stats.elements_fitted != stats.elements_total)
        return fail(result, "checkpoint accounting lost elements");
      if (golden_bytes(set) != golden)
        return fail(result, "checkpointed fit diverged from the golden bytes");
      fitted = true;
    } catch (const io::SimulatedCrash&) {
      ++result.restarts;
      io::install_faults(fault_mix(seed, ++epoch));
    } catch (const util::Error&) {
      ++result.io_errors;  // typed and survivable: retry on the same node
    }
  }
  if (!fitted) {
    // The fault schedule never let a fit finish: the disk "heals" (faults
    // cleared), the scrubber drops torn state, and the resume must succeed.
    io::clear_faults();
    ingest::scrub_checkpoint_dir(dir);
    result.healed = true;
    core::CheckpointStats stats;
    const core::TaskModelSet set =
        core::fit_task_models_checkpointed(series, {}, config, &stats);
    if (golden_bytes(set) != golden)
      return fail(result, "post-heal fit diverged from the golden bytes");
  }
  io::clear_faults();
  ingest::scrub_checkpoint_dir(dir);  // failed attempts may have left temps
  result.temp_leaks += count_temps(dir);
  return true;
}

// --- Workload B: upload → commit → restart → re-upload ----------------------

struct UploadFile {
  std::string name;
  std::string bytes;
};

/// Reads the published file directly (no fault points — this is the
/// oracle's view, not the system under test).
bool published_ok(const std::string& root, const UploadFile& file) {
  std::ifstream in(root + "/collections/chaos/" + file.name, std::ios::binary);
  if (!in.good()) return false;
  std::string got((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  return got == file.bytes;
}

/// Drives one file through BEGIN/CHUNK*/COMMIT and registers the commit,
/// exactly as IngestService does.  `tag` keeps retry sessions distinct.
void upload_one(ingest::UploadManager& manager, ingest::CollectionRegistry& registry,
                const UploadFile& file, std::uint64_t tag) {
  ingest::UploadRequest begin;
  begin.op = ingest::UploadOp::Begin;
  begin.session = file.name + "." + std::to_string(tag);
  begin.collection = "chaos";
  begin.file_name = file.name;
  begin.total_bytes = file.bytes.size();
  begin.chunk_bytes = kChunkBytes;
  begin.file_crc = util::crc32(file.bytes);
  manager.handle(begin);

  for (std::size_t offset = 0; offset < file.bytes.size(); offset += kChunkBytes) {
    ingest::UploadRequest chunk;
    chunk.op = ingest::UploadOp::Chunk;
    chunk.session = begin.session;
    chunk.chunk_index = offset / kChunkBytes;
    chunk.data = file.bytes.substr(offset, kChunkBytes);
    manager.handle(chunk);
  }

  ingest::UploadRequest commit;
  commit.op = ingest::UploadOp::Commit;
  commit.session = begin.session;
  const ingest::UploadOutcome outcome = manager.handle(commit);
  if (outcome.committed)
    registry.add(outcome.collection, outcome.file_name, outcome.core_count);
}

/// Scrub + fresh manager/registry: the in-process model of a server restart.
void restart_ingest(const std::string& root,
                    std::unique_ptr<ingest::UploadManager>& manager,
                    std::unique_ptr<ingest::CollectionRegistry>& registry) {
  ingest::ScrubOptions scrub;
  scrub.root = root;
  scrub.stream_budget = kStreamBudget;
  ingest::scrub_ingest_root(scrub);
  manager = std::make_unique<ingest::UploadManager>(
      ingest::UploadManager::Options{root, kStreamBudget});
  registry = std::make_unique<ingest::CollectionRegistry>(root);
}

bool verify_collection(const std::string& root, const std::vector<UploadFile>& files,
                       SeedResult& result, const char* when) {
  ingest::CollectionRegistry registry(root);
  std::vector<std::string> paths;
  try {
    paths = registry.resolve("chaos");
  } catch (const util::Error& e) {
    return fail(result, std::string(when) + ": collection unresolvable: " + e.what());
  }
  if (paths.size() != files.size())
    return fail(result, std::string(when) + ": collection serves " +
                            std::to_string(paths.size()) + " files, expected " +
                            std::to_string(files.size()));
  for (std::size_t i = 0; i < files.size(); ++i)
    if (fs::path(paths[i]).filename().string() != files[i].name)
      return fail(result, std::string(when) + ": collection order/content wrong at " +
                              files[i].name);
  for (const UploadFile& file : files)
    if (!published_ok(root, file))
      return fail(result, std::string(when) + ": published " + file.name +
                              " is not byte-identical to the original");
  return true;
}

bool run_upload_workload(std::uint64_t seed, const std::string& workdir,
                         const std::vector<UploadFile>& files, SeedResult& result) {
  const std::string root = workdir + "/ingest";
  fs::remove_all(root);

  std::uint64_t epoch = 1000;  // distinct schedule family from workload A
  io::install_faults(fault_mix(seed, epoch));
  std::unique_ptr<ingest::UploadManager> manager;
  std::unique_ptr<ingest::CollectionRegistry> registry;
  std::uint64_t tag = 0;
  bool done = false;
  for (std::size_t attempt = 0; attempt < kMaxAttempts && !done; ++attempt) {
    try {
      if (!manager) restart_ingest(root, manager, registry);
      // Re-upload whatever is missing or torn (a lying fsync can tear a
      // file the client was told committed — the client-side answer is
      // always re-upload, and rename replaces the torn bytes).
      for (const UploadFile& file : files)
        if (!published_ok(root, file)) upload_one(*manager, *registry, file, ++tag);
      done = true;
      for (const UploadFile& file : files)
        if (!published_ok(root, file)) done = false;
    } catch (const io::SimulatedCrash&) {
      ++result.restarts;
      io::install_faults(fault_mix(seed, ++epoch));
      manager.reset();
      registry.reset();
    } catch (const util::Error&) {
      ++result.io_errors;
      if (manager && manager->read_only()) {
        // ENOSPC hit: the operator frees space and restarts the server.
        ++result.restarts;
        io::install_faults(fault_mix(seed, ++epoch));
        manager.reset();
        registry.reset();
      }
    }
  }
  if (!done) {
    io::clear_faults();
    result.healed = true;
    restart_ingest(root, manager, registry);
    for (const UploadFile& file : files)
      if (!published_ok(root, file)) upload_one(*manager, *registry, file, ++tag);
  }
  io::clear_faults();
  manager.reset();
  registry.reset();

  // Final restart with a healthy disk: scrub, then the registry must serve
  // exactly the committed set, byte-identical, with no temps left behind.
  ingest::ScrubOptions scrub;
  scrub.root = root;
  scrub.stream_budget = kStreamBudget;
  ingest::scrub_ingest_root(scrub);
  if (!verify_collection(root, files, result, "upload workload")) return false;
  result.temp_leaks += count_temps(root);
  return true;
}

// --- Workload C: deterministic ENOSPC → read-only → heal --------------------

bool run_enospc_workload(std::uint64_t seed, const std::string& workdir,
                         const std::vector<UploadFile>& files, SeedResult& result) {
  const std::string root = workdir + "/enospc";
  fs::remove_all(root);

  io::FaultConfig cfg;
  cfg.seed = util::derive_seed(seed, 0xE05);
  cfg.enospc_after_bytes = 1024;  // well under one file: the disk fills mid-upload
  io::install_faults(cfg);

  auto manager = std::make_unique<ingest::UploadManager>(
      ingest::UploadManager::Options{root, kStreamBudget});
  auto registry = std::make_unique<ingest::CollectionRegistry>(root);
  bool threw_typed = false;
  std::uint64_t tag = 100000;
  try {
    for (const UploadFile& file : files) upload_one(*manager, *registry, file, ++tag);
  } catch (const util::Error&) {
    threw_typed = true;  // the full disk surfaced as a typed error, not a crash
  }
  if (!threw_typed) return fail(result, "enospc never surfaced as a typed error");
  if (!manager->read_only())
    return fail(result, "enospc did not flip the upload manager to read-only");

  // Read-only mode rejects new work up front, before touching the disk.
  ingest::UploadRequest begin;
  begin.op = ingest::UploadOp::Begin;
  begin.session = "post-enospc";
  begin.collection = "chaos";
  begin.file_name = files[0].name;
  begin.total_bytes = files[0].bytes.size();
  begin.chunk_bytes = kChunkBytes;
  begin.file_crc = util::crc32(files[0].bytes);
  bool rejected = false;
  try {
    manager->handle(begin);
  } catch (const util::Error& e) {
    rejected = std::string(e.what()).find("read-only") != std::string::npos;
  }
  if (!rejected)
    return fail(result, "read-only mode did not reject BEGIN with a typed error");

  // The operator frees space and restarts: scrub + fresh manager must
  // recover to a fully serving, writable state.
  io::clear_faults();
  manager.reset();
  registry.reset();
  restart_ingest(root, manager, registry);
  if (manager->read_only())
    return fail(result, "read-only survived a restart with a healthy disk");
  for (const UploadFile& file : files)
    if (!published_ok(root, file)) upload_one(*manager, *registry, file, ++tag);
  manager.reset();
  registry.reset();
  if (!verify_collection(root, files, result, "enospc workload")) return false;
  result.temp_leaks += count_temps(root);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pmacx;
  util::Cli cli("pmacx_diskchaos",
                "seeded storage-fault sweep over checkpoint + ingest recovery");
  cli.add_u64("seeds", 8, "fault schedules to sweep");
  cli.add_u64("seed", 1, "root seed; round r uses derive_seed(seed, r)");
  cli.add_string("workdir", "diskchaos_work", "scratch directory for disk state");
  cli.add_string("json", "", "write the per-seed sweep report as JSON");
  cli.add_string("metrics-json", "",
                 "write a pmacx-metrics-v1 snapshot (io.*, ingest.scrub.*, "
                 "io.temp_leaks) to this file on exit");

  try {
    if (!cli.parse(argc, argv)) return 0;
    const std::uint64_t seeds = cli.get_u64("seeds");
    const std::uint64_t root_seed = cli.get_u64("seed");
    const std::string workdir = cli.get_string("workdir");
    PMACX_CHECK(seeds > 0, "--seeds must be positive");
    fs::create_directories(workdir);

    // Golden reference with no faults installed: the byte-identity oracle
    // and the upload payloads every seed must converge back to.
    const std::vector<trace::TaskTrace> series = build_series();
    const std::string golden = golden_bytes(core::fit_task_models(series, {}));
    std::vector<UploadFile> files;
    for (const trace::TaskTrace& task : series)
      files.push_back({"s" + std::to_string(task.core_count) + ".btrace",
                       trace::to_binary(task)});

    util::metrics::Counter& temp_leaks =
        util::metrics::Registry::global().counter("io.temp_leaks");
    const util::metrics::Counter& injected =
        util::metrics::Registry::global().counter("io.faults.injected");

    std::vector<SeedResult> results;
    std::uint64_t failures = 0;
    for (std::uint64_t round = 0; round < seeds; ++round) {
      SeedResult result;
      result.seed = util::derive_seed(root_seed, round);
      const std::string seed_dir = workdir + "/seed_" + std::to_string(round);
      fs::remove_all(seed_dir);
      fs::create_directories(seed_dir);
      try {
        const bool ok =
            run_checkpoint_workload(result.seed, seed_dir, series, golden, result) &&
            run_upload_workload(result.seed, seed_dir, files, result) &&
            run_enospc_workload(result.seed, seed_dir, files, result);
        (void)ok;  // each stage already recorded its own verdict
      } catch (const util::Error& e) {
        // Nothing in the sweep may throw once the disk is healthy; anything
        // that does is a recovery-path bug, attributed to this seed.
        fail(result, std::string("unexpected error after heal: ") + e.what());
      }
      io::clear_faults();
      temp_leaks.add(result.temp_leaks);
      if (!result.passed) ++failures;
      std::printf("pmacx_diskchaos: seed %llu (round %llu): %s — %llu restarts, "
                  "%llu io-errors absorbed, %llu temp leaks%s%s%s\n",
                  static_cast<unsigned long long>(result.seed),
                  static_cast<unsigned long long>(round),
                  result.passed ? "ok" : "FAIL",
                  static_cast<unsigned long long>(result.restarts),
                  static_cast<unsigned long long>(result.io_errors),
                  static_cast<unsigned long long>(result.temp_leaks),
                  result.healed ? ", healed clean" : "",
                  result.failure.empty() ? "" : ": ",
                  result.failure.c_str());
      results.push_back(std::move(result));
      fs::remove_all(seed_dir);  // keep the sweep's disk footprint bounded
    }

    const bool exercised = injected.value() > 0;
    const bool passed = failures == 0 && exercised;
    std::uint64_t restarts = 0, io_errors = 0, leaks = 0;
    for (const SeedResult& r : results) {
      restarts += r.restarts;
      io_errors += r.io_errors;
      leaks += r.temp_leaks;
    }
    std::printf("pmacx_diskchaos: %s — %llu seeds, %llu failures, %llu restarts, "
                "%llu io-errors absorbed, %llu faults injected, %llu temp leaks\n",
                passed ? "PASS" : "FAIL", static_cast<unsigned long long>(seeds),
                static_cast<unsigned long long>(failures),
                static_cast<unsigned long long>(restarts),
                static_cast<unsigned long long>(io_errors),
                static_cast<unsigned long long>(injected.value()),
                static_cast<unsigned long long>(leaks));
    if (!exercised)
      std::fprintf(stderr, "pmacx_diskchaos: no faults were injected — the sweep "
                           "proved nothing (injector wired out?)\n");

    if (!cli.get_string("json").empty()) {
      std::ofstream out(cli.get_string("json"));
      PMACX_CHECK(out.good(), "cannot write " + cli.get_string("json"));
      out << "{\n"
          << "  \"passed\": " << (passed ? "true" : "false") << ",\n"
          << "  \"seeds\": " << seeds << ",\n"
          << "  \"failures\": " << failures << ",\n"
          << "  \"restarts\": " << restarts << ",\n"
          << "  \"io_errors_absorbed\": " << io_errors << ",\n"
          << "  \"faults_injected\": " << injected.value() << ",\n"
          << "  \"temp_leaks\": " << leaks << ",\n"
          << "  \"per_seed\": [\n";
      for (std::size_t i = 0; i < results.size(); ++i) {
        const SeedResult& r = results[i];
        out << "    {\"seed\": " << r.seed << ", \"passed\": "
            << (r.passed ? "true" : "false") << ", \"restarts\": " << r.restarts
            << ", \"io_errors\": " << r.io_errors
            << ", \"temp_leaks\": " << r.temp_leaks << ", \"healed\": "
            << (r.healed ? "true" : "false") << ", \"failure\": \"" << r.failure
            << "\"}" << (i + 1 < results.size() ? "," : "") << "\n";
      }
      out << "  ]\n}\n";
    }
    if (!cli.get_string("metrics-json").empty()) {
      util::metrics::RunManifest manifest =
          util::metrics::RunManifest::for_tool("pmacx_diskchaos");
      manifest.config = cli.values();
      util::metrics::write_json(cli.get_string("metrics-json"), manifest,
                                util::metrics::Registry::global().snapshot());
    }
    return passed ? 0 : 1;
  } catch (const util::Error& e) {
    std::fprintf(stderr, "pmacx_diskchaos: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pmacx_diskchaos: internal error: %s\n", e.what());
    return 1;
  }
}
