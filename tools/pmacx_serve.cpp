// pmacx_serve — the pmacx prediction server daemon.
//
// Listens on loopback (by default) for pmacx-rpc-v1 requests and answers
// FIT / EXTRAPOLATE / PREDICT / STATUS / SHUTDOWN, keeping fitted model
// sets, extrapolated signatures, and machine profiles in a content-addressed
// LRU so repeated what-if queries over the same traces skip the expensive
// stages.  Prints one machine-readable line once ready:
//
//   pmacx_serve listening on <bind>:<port>
//
// (pmacx_loadgen --server parses it to find the ephemeral port).  Exits on
// SIGINT/SIGTERM or a SHUTDOWN request, draining in-flight work first.
//
//   pmacx_serve --port 7077 --threads 8 --metrics-json serve_metrics.json
#include <csignal>
#include <cstdio>
#include <exception>

#include "ingest/scrub.hpp"
#include "service/server.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/io.hpp"
#include "util/log.hpp"
#include "util/metrics.hpp"

namespace {

// The signal handler may only touch async-signal-safe state; Server::stop()
// is a relaxed atomic store, which qualifies.
pmacx::service::Server* g_server = nullptr;

void handle_signal(int) {
  if (g_server != nullptr) g_server->stop();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pmacx;
  util::Cli cli("pmacx_serve", "serve predictions over pmacx-rpc-v1");
  cli.add_string("bind", "127.0.0.1", "address to listen on");
  cli.add_u64("port", 0, "TCP port (0 picks an ephemeral port)");
  cli.add_u64("threads", 0, "request-handler threads (0 = PMACX_THREADS or hardware)");
  cli.add_u64("max-in-flight", 64,
              "requests handled concurrently before new ones get BUSY");
  cli.add_u64("cache-mb", 256, "model/signature/profile LRU budget in MiB");
  cli.add_u64("timeout-ms", 30000, "per-request deadline in milliseconds");
  cli.add_string("metrics-json", "",
                 "write a pmacx-metrics-v1 snapshot (request counters, cache "
                 "hit rates, latency histograms) to this file on exit");
  cli.add_u64("shard-id", static_cast<std::uint64_t>(-1),
              "cluster shard id reported by STATUS (default: standalone)");
  cli.add_u64("ring-epoch", 0, "cluster topology epoch reported by STATUS");
  cli.add_string("ingest-dir", "",
                 "enable live trace ingestion (UPLOAD_TRACE, \"@collection\" "
                 "fit specs) rooted at this directory");
  cli.add_u64("stream-budget-mb", 64,
              "buffer budget in MiB for streaming upload validation and "
              "background refit reloads");
  cli.add_flag("scrub-on-start",
               "before serving, scrub the ingest directory: delete stale "
               "spool/temp files, quarantine corrupt traces, heal collection "
               "manifests (requires --ingest-dir; see docs/RUNBOOK.md)");

  try {
    if (!cli.parse(argc, argv)) return 0;
    util::set_log_level(util::LogLevel::Warn);
    PMACX_CHECK(cli.get_u64("port") <= 65535, "--port must fit a TCP port");
    // Operator/test hook: PMACX_IO_FAULTS="seed=7,p_eio=0.01,..." fault-
    // injects every durable-state path in this process (docs/RUNBOOK.md).
    util::io::install_faults_from_env();

    service::ServerOptions options;
    options.bind = cli.get_string("bind");
    options.port = static_cast<std::uint16_t>(cli.get_u64("port"));
    options.threads = cli.get_u64("threads");
    options.max_in_flight = cli.get_u64("max-in-flight");
    options.cache_bytes = cli.get_u64("cache-mb") << 20;
    options.request_timeout_ms = cli.get_u64("timeout-ms");
    if (cli.get_u64("shard-id") != static_cast<std::uint64_t>(-1)) {
      options.shard_id = static_cast<std::int64_t>(cli.get_u64("shard-id"));
      options.ring_epoch = cli.get_u64("ring-epoch");
    }
    options.ingest_dir = cli.get_string("ingest-dir");
    options.ingest_stream_budget = cli.get_u64("stream-budget-mb") << 20;

    if (cli.get_flag("scrub-on-start")) {
      PMACX_CHECK(!options.ingest_dir.empty(),
                  "--scrub-on-start requires --ingest-dir");
      ingest::ScrubOptions scrub;
      scrub.root = options.ingest_dir;
      scrub.stream_budget = options.ingest_stream_budget;
      const ingest::ScrubReport report = ingest::scrub_ingest_root(scrub);
      std::printf("pmacx_serve: %s\n", report.summary().c_str());
      for (const std::string& note : report.notes)
        std::printf("pmacx_serve:   %s\n", note.c_str());
    }

    service::Server server(options);
    g_server = &server;
    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);
    // A peer (or a spawner that closed our stdout pipe) must not be able to
    // kill the daemon with a broken-pipe signal; writes fail with EPIPE.
    std::signal(SIGPIPE, SIG_IGN);

    server.start();
    std::printf("pmacx_serve listening on %s:%u\n", options.bind.c_str(),
                static_cast<unsigned>(server.port()));
    std::fflush(stdout);  // spawners block on this line; don't sit in a buffer

    server.wait();
    g_server = nullptr;
    std::printf("pmacx_serve: drained after %llu requests\n",
                static_cast<unsigned long long>(server.requests_handled()));

    if (!cli.get_string("metrics-json").empty()) {
      util::metrics::RunManifest manifest = util::metrics::RunManifest::for_tool("pmacx_serve");
      manifest.threads = util::ThreadPool::resolve_threads(options.threads);
      manifest.config = cli.values();
      util::metrics::write_json(cli.get_string("metrics-json"), manifest,
                                util::metrics::Registry::global().snapshot());
    }
    return 0;
  } catch (const util::Error& e) {
    std::fprintf(stderr, "pmacx_serve: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pmacx_serve: internal error: %s\n", e.what());
    return 1;
  }
}
