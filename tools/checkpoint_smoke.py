#!/usr/bin/env python3
"""Kill-and-resume golden test for pmacx_extrapolate --checkpoint-dir.

  checkpoint_smoke.py --tool <pmacx_extrapolate> --workdir <dir> \
      <trace files, ascending core counts>

Scenario (the tentpole crash-safety contract, end to end):

  1. Reference: an uncheckpointed run produces the golden trace, CSV report,
     stdout, and a metrics snapshot.
  2. Crash: a checkpointed run is SIGKILLed (via --crash-after-chunks, a
     real raise(SIGKILL) in the fitting loop) after its first chunk write.
  3. Resume: re-running the same command must exit 0, reuse the surviving
     chunks (checkpoint.elements_reused > 0 when the crashed run completed
     a non-final chunk), attempt strictly fewer fits than the reference run
     (sum of fits.attempted.*), and emit byte-identical trace, CSV, and
     stdout.
  4. Second resume: with the checkpoint complete, everything is reused
     (checkpoint.elements_fitted == 0) and the output is still identical.

Exit code 0 when every assertion holds, 1 otherwise.
"""

import argparse
import json
import os
import shutil
import signal
import subprocess
import sys


def fail(message):
    print(f"checkpoint_smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def run(cmd, expect_sigkill=False):
    proc = subprocess.run(cmd, stdout=subprocess.PIPE, stderr=subprocess.PIPE)
    if expect_sigkill:
        if proc.returncode != -signal.SIGKILL:
            fail(
                f"expected SIGKILL from {' '.join(cmd)}, got rc={proc.returncode}\n"
                f"stderr: {proc.stderr.decode(errors='replace')}"
            )
    elif proc.returncode != 0:
        fail(
            f"{' '.join(cmd)} exited {proc.returncode}\n"
            f"stderr: {proc.stderr.decode(errors='replace')}"
        )
    return proc


def counters(metrics_path):
    with open(metrics_path, "r", encoding="utf-8") as handle:
        return json.load(handle).get("counters", {})


def attempted_fits(ctrs):
    return sum(v for k, v in ctrs.items() if k.startswith("fits.attempted."))


def read_bytes(path):
    with open(path, "rb") as handle:
        return handle.read()


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--tool", required=True, help="path to pmacx_extrapolate")
    parser.add_argument("--workdir", required=True)
    parser.add_argument("--target-cores", default="256")
    parser.add_argument("traces", nargs="+")
    args = parser.parse_args()

    os.makedirs(args.workdir, exist_ok=True)
    ckpt = os.path.join(args.workdir, "ckpt")
    shutil.rmtree(ckpt, ignore_errors=True)

    def extrapolate(out, csv, metrics=None, checkpoint=False, crash_after=0):
        out_path = os.path.join(args.workdir, out)
        csv_path = os.path.join(args.workdir, csv)
        cmd = [
            args.tool,
            "--target-cores", args.target_cores,
            "--threads", "2",
            "--out", out_path,
            "--csv", csv_path,
        ]
        if metrics:
            cmd += ["--metrics-json", os.path.join(args.workdir, metrics)]
        if checkpoint:
            # A small chunk size guarantees several chunks even for coarse
            # smoke traces, so the crashed run leaves a genuinely partial
            # checkpoint (some chunks durable, some missing).
            cmd += ["--checkpoint-dir", ckpt, "--checkpoint-chunk", "16"]
        if crash_after:
            cmd += ["--crash-after-chunks", str(crash_after)]
        cmd += args.traces
        proc = run(cmd, expect_sigkill=crash_after > 0)
        # The banner names the run's own output paths; normalize them so
        # stdout can be compared across runs byte-for-byte otherwise.
        proc.norm_stdout = proc.stdout.replace(
            out_path.encode(), b"<out>"
        ).replace(csv_path.encode(), b"<csv>")
        return proc

    # 1. Golden reference (no checkpoint).
    reference = extrapolate("ref.trace", "ref.csv", metrics="ref.metrics.json")

    # 2. Checkpointed run killed after its first chunk write.  SIGKILL cannot
    # be caught, so whatever is on disk afterwards is exactly what the atomic
    # chunk writes made durable.
    extrapolate("crash.trace", "crash.csv", checkpoint=True, crash_after=1)
    chunk_files = [f for f in os.listdir(ckpt) if f.startswith("models_")]
    if not chunk_files:
        fail("crashed run left no chunk files — nothing was made durable before the kill")
    if os.path.exists(os.path.join(args.workdir, "crash.trace")):
        fail("killed run must not have produced an output trace")

    # 3. Resume: same command, no crash hook.
    resumed = extrapolate(
        "resumed.trace", "resumed.csv", metrics="resumed.metrics.json", checkpoint=True
    )

    if read_bytes(os.path.join(args.workdir, "resumed.trace")) != read_bytes(
        os.path.join(args.workdir, "ref.trace")
    ):
        fail("resumed trace differs from the uncheckpointed reference")
    if read_bytes(os.path.join(args.workdir, "resumed.csv")) != read_bytes(
        os.path.join(args.workdir, "ref.csv")
    ):
        fail("resumed fit-report CSV differs from the reference")
    if resumed.norm_stdout != reference.norm_stdout:
        fail(
            "resumed stdout differs from the reference:\n"
            f"reference: {reference.norm_stdout!r}\nresumed:   {resumed.norm_stdout!r}"
        )

    ref_ctrs = counters(os.path.join(args.workdir, "ref.metrics.json"))
    res_ctrs = counters(os.path.join(args.workdir, "resumed.metrics.json"))
    reused = res_ctrs.get("checkpoint.elements_reused", 0)
    fitted = res_ctrs.get("checkpoint.elements_fitted", 0)
    if reused <= 0:
        fail("resume reused no checkpointed elements")
    if fitted <= 0:
        fail("resume re-fitted nothing — the crash was not actually mid-run")
    if res_ctrs.get("checkpoint.resumes", 0) < 1:
        fail("resume did not count as a resume")
    ref_attempted = attempted_fits(ref_ctrs)
    res_attempted = attempted_fits(res_ctrs)
    if not res_attempted < ref_attempted:
        fail(
            f"resume attempted {res_attempted} fits, reference {ref_attempted} — "
            "a resume must attempt strictly fewer"
        )

    # 4. Fully warm resume: nothing left to fit, output still identical.
    warm = extrapolate(
        "warm.trace", "warm.csv", metrics="warm.metrics.json", checkpoint=True
    )
    warm_ctrs = counters(os.path.join(args.workdir, "warm.metrics.json"))
    if warm_ctrs.get("checkpoint.elements_fitted", -1) != 0:
        fail("fully warm resume still fitted elements")
    if read_bytes(os.path.join(args.workdir, "warm.trace")) != read_bytes(
        os.path.join(args.workdir, "ref.trace")
    ):
        fail("warm-resume trace differs from the reference")
    if warm.norm_stdout != reference.norm_stdout:
        fail("warm-resume stdout differs from the reference")

    print(
        f"checkpoint_smoke: OK (reused {reused}, refit {fitted}, "
        f"attempted fits {res_attempted} < {ref_attempted})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
