// UH3D-like synthetic application.
//
// UH3D is UCSD's global hybrid (kinetic-ion / fluid-electron) simulation of
// the Earth's magnetosphere [paper ref 3].  The synthetic model reproduces
// the phase structure and scaling shapes of a particle-in-cell hybrid code:
//
//   kernel               dominant element law in core count p
//   -------------------  ------------------------------------
//   particle_push        visits ~ Npart/p, random locality over particles
//   field_interpolate    gather (particle → grid indirection)
//   current_deposit      scatter-heavy stores
//   field_solve          iterations ~ log2(p) growth (solver conditioning)
//   particle_sort        refs ~ (n/p)·log2(n/p)
//   boundary_particles   surface law exchange staging
//   diagnostics          constant
//
// Particle footprints are several times larger than SPECFEM's field arrays
// at equal core counts, which is why the paper traces UH3D at 1024-8192
// cores rather than 96-6144.
#pragma once

#include "synth/app.hpp"

namespace pmacx::synth {

/// Tunable problem dimensions for the UH3D model.
struct Uh3dConfig {
  /// Petascale-realistic particle count, sized so the dominant kernels stay
  /// memory-bound (footprint ≫ L3) through 8192 cores: their hit rates then
  /// move gently across the whole sweep instead of saturating between the
  /// last training count and the target — the transition shape no canonical
  /// form can extrapolate through (see SpecfemConfig::global_field_bytes).
  std::uint64_t global_particles = 5'000'000'000;
  std::uint64_t particle_bytes = 48;      ///< position+velocity+weight per particle
  std::uint64_t global_grid_cells = 100'000'000;
  std::uint64_t cell_bytes = 32;          ///< E, B, density moments per cell
  std::uint32_t timesteps = 10;
  double imbalance = 0.10;                ///< magnetotail concentration on rank 0
  double noise = 0.005;
  /// Multiplies per-visit reference and flop counts without touching
  /// footprints (see SpecfemConfig::work_scale).
  double work_scale = 1.0;
  std::uint64_t seed = 0x0d3d;
};

/// The synthetic UH3D.
class Uh3dApp final : public SyntheticApp {
 public:
  explicit Uh3dApp(Uh3dConfig config = {});

  std::string name() const override { return "uh3d"; }
  std::uint32_t timesteps() const override { return config_.timesteps; }
  std::vector<KernelSpec> kernels(std::uint32_t cores, std::uint32_t rank) const override;
  trace::CommTrace comm_trace(std::uint32_t cores, std::uint32_t rank) const override;

  const Uh3dConfig& config() const { return config_; }

 private:
  Uh3dConfig config_;
};

}  // namespace pmacx::synth
