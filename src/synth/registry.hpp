// Application registry: construct the built-in synthetic applications by
// name — the lookup the command-line tools and scripted experiments use.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "synth/app.hpp"

namespace pmacx::synth {

/// Names accepted by make_app ("specfem3d", "uh3d", "hpcg").
std::vector<std::string> app_names();

/// Creates the named application with its default (paper-scale)
/// configuration, scaled by `work_scale`.  Throws util::Error for unknown
/// names (the message lists the valid ones).
std::unique_ptr<SyntheticApp> make_app(const std::string& name, double work_scale = 1.0);

}  // namespace pmacx::synth
