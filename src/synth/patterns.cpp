#include "synth/patterns.hpp"

#include <cmath>

#include "util/error.hpp"

namespace pmacx::synth {

std::string pattern_name(Pattern pattern) {
  switch (pattern) {
    case Pattern::Sequential: return "sequential";
    case Pattern::Strided: return "strided";
    case Pattern::Random: return "random";
    case Pattern::Gather: return "gather";
    case Pattern::Stencil3d: return "stencil3d";
  }
  return "?";
}

RefStream::RefStream(const StreamSpec& spec, std::uint64_t seed) : spec_(spec), rng_(seed) {
  PMACX_CHECK(spec_.elem_bytes > 0, "stream element size must be positive");
  PMACX_CHECK(spec_.footprint_bytes >= spec_.elem_bytes,
              "stream footprint smaller than one element");
  PMACX_CHECK(spec_.stride_elems > 0, "stream stride must be positive");
  PMACX_CHECK(spec_.store_fraction >= 0.0 && spec_.store_fraction <= 1.0,
              "store fraction out of [0,1]");
  elems_ = spec_.footprint_bytes / spec_.elem_bytes;

  if (spec_.pattern == Pattern::Stencil3d) {
    side_ = static_cast<std::uint64_t>(std::cbrt(static_cast<double>(elems_)));
    if (side_ < 4) side_ = 4;
    while (side_ * side_ * side_ > elems_ && side_ > 4) --side_;
    plane_ = side_ * side_;
  }
}

memsim::MemRef RefStream::next() {
  std::uint64_t elem = 0;
  switch (spec_.pattern) {
    case Pattern::Sequential:
      elem = cursor_ % elems_;
      ++cursor_;
      break;
    case Pattern::Strided:
      elem = (cursor_ * spec_.stride_elems) % elems_;
      ++cursor_;
      break;
    case Pattern::Random:
      elem = rng_.below(elems_);
      break;
    case Pattern::Gather:
      // Alternate a sequential index-array read with a random data read,
      // modeling a[idx[i]]-style indirection.
      if (cursor_ % 2 == 0) {
        elem = (cursor_ / 2) % elems_;
      } else {
        elem = rng_.below(elems_);
      }
      ++cursor_;
      break;
    case Pattern::Stencil3d: {
      // Sweep grid points in order; each point touches itself and its six
      // face neighbours across successive calls.
      const std::uint64_t points = plane_ * side_;
      const std::uint64_t point = (cursor_ / 7) % points;
      const std::uint32_t arm = stencil_point_;
      stencil_point_ = (stencil_point_ + 1) % 7;
      ++cursor_;
      std::int64_t offset = 0;
      switch (arm) {
        case 0: offset = 0; break;
        case 1: offset = 1; break;
        case 2: offset = -1; break;
        case 3: offset = static_cast<std::int64_t>(side_); break;
        case 4: offset = -static_cast<std::int64_t>(side_); break;
        case 5: offset = static_cast<std::int64_t>(plane_); break;
        case 6: offset = -static_cast<std::int64_t>(plane_); break;
      }
      const std::int64_t raw = static_cast<std::int64_t>(point) + offset;
      elem = static_cast<std::uint64_t>((raw % static_cast<std::int64_t>(points) +
                                         static_cast<std::int64_t>(points)) %
                                        static_cast<std::int64_t>(points));
      break;
    }
  }

  memsim::MemRef ref;
  ref.addr = spec_.base_addr + elem * spec_.elem_bytes;
  ref.size = spec_.elem_bytes;
  ref.is_store = rng_.uniform() < spec_.store_fraction;
  return ref;
}

}  // namespace pmacx::synth
