// The tracer: synthetic-application signature collection.
//
// Implements the pipeline of the paper's Fig. 2: the application's memory
// address stream is generated on the fly (the PEBIL role), pushed through a
// cache simulator configured for the *target* system, and condensed into a
// per-task summary trace file — no raw address stream ever hits disk, which
// is the paper's answer to the ">2 TB/hour per process" problem.
//
// Collection cost is bounded by sampling: a kernel whose dynamic reference
// count exceeds `max_refs_per_kernel` is simulated for that many references
// and its *counts* are recorded analytically (the full dynamic totals) while
// its *rates* (cache hit rates) come from the simulated sample.  This
// mirrors how production tracers bound instrumentation cost [paper ref 1].
#pragma once

#include <cstdint>
#include <vector>

#include "memsim/config.hpp"
#include "synth/app.hpp"
#include "trace/signature.hpp"

namespace pmacx::util {
class ThreadPool;
}

namespace pmacx::synth {

/// Knobs for signature collection.
struct TracerOptions {
  /// The hierarchy the cache simulator mimics — the *target* system (which
  /// need not be the base system the app "runs" on; Section III-A).
  memsim::HierarchyConfig target;
  /// Cap on simulated references per kernel (sampling threshold).
  std::uint64_t max_refs_per_kernel = 2'000'000;
  /// Set-sampling factor forwarded to the cache simulator: simulate only
  /// 1/2^sample_shift of cache lines (hit rates stay unbiased; collection
  /// cost drops proportionally).  0 = full simulation.
  std::uint32_t sample_shift = 0;
  /// Hybrid MPI/OpenMP mode: threads hosted by the traced rank.  Each
  /// thread works a slice of every kernel's footprint through private
  /// copies of the shallow cache levels while levels ≥ shared_from_level
  /// are shared — so the trace captures shared-cache contention (the paper
  /// requires tracing in the target's parallelization mode).  1 = pure MPI.
  std::uint32_t threads_per_rank = 1;
  /// First cache level the threads share (clamped to the level count).
  /// Default 2: private L1/L2, shared L3 — the common CMP layout.
  std::size_t shared_from_level = 2;
  /// Collect per-instruction sub-records (Section IV traces instruction
  /// level detail for extrapolation).
  bool instruction_detail = true;
  /// Seed for the generated address streams.
  std::uint64_t seed = 0x7ace;
  /// Host-side execution pool (not owned; null = serial).  collect_signature
  /// fans independent per-rank trace_task simulations and per-rank comm
  /// trace instantiation across it.  This is an *execution* knob — distinct
  /// from threads_per_rank, which *models* hybrid OpenMP threads inside the
  /// traced rank — and never changes the collected signature: every rank's
  /// simulation is self-contained and results are kept in rank order.
  util::ThreadPool* pool = nullptr;
};

/// Traces one rank of `app` at `cores`, producing its summary trace file.
trace::TaskTrace trace_task(const SyntheticApp& app, std::uint32_t cores, std::uint32_t rank,
                            const TracerOptions& options);

/// Collects a full application signature at `cores`: computation traces for
/// `ranks_to_trace` (default: just the most demanding rank, as the paper's
/// methodology uses) and communication traces for every rank.
trace::AppSignature collect_signature(const SyntheticApp& app, std::uint32_t cores,
                                      const TracerOptions& options,
                                      std::vector<std::uint32_t> ranks_to_trace = {});

}  // namespace pmacx::synth
