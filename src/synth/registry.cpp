#include "synth/registry.hpp"

#include "synth/hpcg.hpp"
#include "synth/specfem.hpp"
#include "synth/uh3d.hpp"
#include "util/error.hpp"

namespace pmacx::synth {

std::vector<std::string> app_names() { return {"specfem3d", "uh3d", "hpcg"}; }

std::unique_ptr<SyntheticApp> make_app(const std::string& name, double work_scale) {
  PMACX_CHECK(work_scale > 0, "work scale must be positive");
  if (name == "specfem3d") {
    SpecfemConfig config;
    config.work_scale = work_scale;
    return std::make_unique<Specfem3dApp>(config);
  }
  if (name == "uh3d") {
    Uh3dConfig config;
    config.work_scale = work_scale;
    return std::make_unique<Uh3dApp>(config);
  }
  if (name == "hpcg") {
    HpcgConfig config;
    config.work_scale = work_scale;
    return std::make_unique<HpcgApp>(config);
  }
  std::string known;
  for (const auto& candidate : app_names()) known += " " + candidate;
  PMACX_CHECK(false, "unknown application '" + name + "'; known:" + known);
  return nullptr;
}

}  // namespace pmacx::synth
