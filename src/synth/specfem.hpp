// SPECFEM3D_GLOBE-like synthetic application.
//
// SPECFEM3D simulates global seismic wave propagation with spectral elements
// [paper ref 2]: the dominant kernel applies elastic stiffness stencils per
// element, flanked by streaming field updates, halo assembly over the
// partition surface, per-step source injection, residual-norm reductions and
// rank-table bookkeeping.  The model reproduces the *scaling shapes* of
// those phases under strong scaling:
//
//   kernel                 dominant element law in core count p
//   ---------------------  ------------------------------------
//   compute_forces         visits ~ E/p (footprint shrinks into cache)
//   update_acceleration    refs ~ points/p, streaming
//   assemble_boundary      refs ~ (V/p)^(2/3) surface law
//   source_injection       constant
//   reduce_norm            refs ~ log2(p) growth (reduction-tree stages)
//   rank_bookkeeping       refs ~ linear in p (rank-table scans)
//
// which gives the extrapolator the constant/linear/log/decay element
// diversity the paper's Figures 3-5 illustrate.  Mild deterministic noise
// (~0.5 %) is baked into the counts so canonical-form fits are imperfect,
// as they are on real traces.
#pragma once

#include "synth/app.hpp"

namespace pmacx::synth {

/// Tunable problem dimensions; defaults reproduce the paper's experiments at
/// tractable tracing cost.
struct SpecfemConfig {
  std::uint64_t global_elements = 1'000'000;   ///< spectral elements world-wide
  /// Total wavefield array bytes.  Sized ("unprecedented resolution") so
  /// that on the 96-6144-core sweep the field-sweeping kernels stay
  /// memory-resident (footprint > target L3) all the way to the target:
  /// their hit rates then move gently across the sweep instead of stepping
  /// when a footprint crosses a cache-capacity boundary — a transition
  /// real machines smooth out but a pure-LRU simulator turns into a cliff
  /// no canonical form can extrapolate through (see DESIGN.md and
  /// bench/ablation_forms).
  std::uint64_t global_field_bytes = 100'000'000'000;
  std::uint32_t timesteps = 10;
  double imbalance = 0.08;   ///< peak load imbalance on rank 0
  double noise = 0.005;      ///< relative jitter on dynamic counts
  /// Multiplies every kernel's per-visit reference and flop counts without
  /// touching footprints: scales the simulated wall clock (real SPECFEM3D
  /// does hundreds of ops per point where the model's base counts are kept
  /// small for tracing cost) while leaving cache behaviour unchanged.
  double work_scale = 1.0;
  std::uint64_t seed = 0x5ecf3;
};

/// The synthetic SPECFEM3D.
class Specfem3dApp final : public SyntheticApp {
 public:
  explicit Specfem3dApp(SpecfemConfig config = {});

  std::string name() const override { return "specfem3d"; }
  std::uint32_t timesteps() const override { return config_.timesteps; }
  std::vector<KernelSpec> kernels(std::uint32_t cores, std::uint32_t rank) const override;
  trace::CommTrace comm_trace(std::uint32_t cores, std::uint32_t rank) const override;

  const SpecfemConfig& config() const { return config_; }

 private:
  SpecfemConfig config_;
};

}  // namespace pmacx::synth
