#include "synth/hpcg.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace pmacx::synth {
namespace {

/// Block ids stable across core counts; disjoint from the other apps'.
enum BlockId : std::uint64_t {
  kSpmv = 201,
  kDotProducts = 202,
  kAxpyUpdates = 203,
  kJacobiPrecondition = 204,
  kHaloPack = 205,
  kResidualNorm = 206,
  kIterationControl = 207,
};

double jitter(const HpcgConfig& cfg, std::uint64_t block, std::uint32_t cores,
              std::uint64_t salt) {
  std::uint64_t key =
      util::derive_seed(cfg.seed, (block << 24) ^ (std::uint64_t(cores) << 4) ^ salt);
  util::Rng rng(key);
  return 1.0 + cfg.noise * rng.normal();
}

std::uint64_t at_least_one(double value) {
  return value < 1.0 ? 1 : static_cast<std::uint64_t>(value);
}

}  // namespace

HpcgApp::HpcgApp(HpcgConfig config) : config_(config) {
  PMACX_CHECK(config_.global_rows > 0, "hpcg: zero rows");
  PMACX_CHECK(config_.nonzeros_per_row > 0, "hpcg: zero stencil width");
  PMACX_CHECK(config_.iterations > 0, "hpcg: zero iterations");
  PMACX_CHECK(config_.noise >= 0 && config_.noise < 0.2, "hpcg: unreasonable noise");
}

std::vector<KernelSpec> HpcgApp::kernels(std::uint32_t cores, std::uint32_t rank) const {
  PMACX_CHECK(cores > 0, "hpcg: zero cores");
  PMACX_CHECK(rank < cores, "hpcg: rank out of range");

  const double p = static_cast<double>(cores);
  const double iters = static_cast<double>(config_.iterations);
  const double imb = imbalance_factor(rank, cores, config_.imbalance);
  const double rows = laws::per_core(static_cast<double>(config_.global_rows), p) * imb;
  const double nnz = static_cast<double>(config_.nonzeros_per_row);
  // CSR-ish bytes per local row: nnz values (8 B) + nnz column indices
  // (4 B) + row pointer, plus the x/y vectors.
  const double matrix_bytes = rows * (nnz * 12.0 + 8.0);
  const double vector_bytes = rows * 8.0;

  std::vector<KernelSpec> kernels;

  {
    // Sparse matrix-vector product: one visit per iteration; each row reads
    // nnz values + indices and gathers nnz x-entries.
    KernelSpec k;
    k.block_id = kSpmv;
    k.location = {"hpcg/spmv.cpp", 44, "spmv"};
    k.pattern = Pattern::Gather;
    k.visits = config_.iterations;
    k.refs_per_visit = at_least_one(rows * nnz * 2.2 * jitter(config_, k.block_id, cores, 1));
    k.elem_bytes = 8;
    k.store_fraction = 0.04;  // only the y-vector writes
    k.footprint_bytes = at_least_one(matrix_bytes + 2.0 * vector_bytes) + 4096;
    k.fp_per_visit = {0.0, 0.0, rows * nnz, 0.0};  // one FMA per nonzero
    k.ilp = 2.8;
    k.dep_chain = 4.0;
    k.mem_instructions = 6;
    k.fp_instructions = 2;
    kernels.push_back(k);
  }
  {
    // The two CG dot products (r·z and p·Ap) fused: streaming reads.
    KernelSpec k;
    k.block_id = kDotProducts;
    k.location = {"hpcg/dot.cpp", 18, "dot_products"};
    k.pattern = Pattern::Sequential;
    k.visits = config_.iterations * 2;
    k.refs_per_visit = at_least_one(2.0 * rows * jitter(config_, k.block_id, cores, 2));
    k.elem_bytes = 8;
    k.store_fraction = 0.0;
    k.footprint_bytes = at_least_one(2.0 * vector_bytes) + 4096;
    k.fp_per_visit = {0.0, 0.0, rows, 0.0};
    k.ilp = 3.2;
    k.dep_chain = 6.0;  // the reduction chain
    k.mem_instructions = 3;
    k.fp_instructions = 1;
    kernels.push_back(k);
  }
  {
    // The three axpy-style vector updates per iteration.
    KernelSpec k;
    k.block_id = kAxpyUpdates;
    k.location = {"hpcg/axpy.cpp", 9, "axpy_updates"};
    k.pattern = Pattern::Sequential;
    k.visits = config_.iterations * 3;
    k.refs_per_visit = at_least_one(3.0 * rows * jitter(config_, k.block_id, cores, 3));
    k.elem_bytes = 8;
    k.store_fraction = 0.33;
    k.footprint_bytes = at_least_one(3.0 * vector_bytes) + 4096;
    k.fp_per_visit = {0.0, 0.0, rows, 0.0};
    k.ilp = 4.0;
    k.dep_chain = 1.5;
    k.mem_instructions = 3;
    k.fp_instructions = 1;
    kernels.push_back(k);
  }
  {
    // Jacobi (diagonal) preconditioner application.
    KernelSpec k;
    k.block_id = kJacobiPrecondition;
    k.location = {"hpcg/precond.cpp", 27, "jacobi_precondition"};
    k.pattern = Pattern::Sequential;
    k.visits = config_.iterations;
    k.refs_per_visit = at_least_one(3.0 * rows * jitter(config_, k.block_id, cores, 4));
    k.elem_bytes = 8;
    k.store_fraction = 0.33;
    k.footprint_bytes = at_least_one(3.0 * vector_bytes) + 4096;
    k.fp_per_visit = {0.0, rows, 0.0, 0.0};
    k.ilp = 4.0;
    k.dep_chain = 1.5;
    k.mem_instructions = 2;
    k.fp_instructions = 1;
    kernels.push_back(k);
  }
  {
    // Halo pack/unpack: gathers boundary x-entries out of the vector
    // region (surface law for counts, vector-sized footprint).
    KernelSpec k;
    k.block_id = kHaloPack;
    k.location = {"hpcg/exchange.cpp", 61, "halo_pack"};
    k.pattern = Pattern::Gather;
    const double boundary = laws::surface(static_cast<double>(config_.global_rows), p, 2.0);
    k.visits = config_.iterations * 2;
    k.refs_per_visit = at_least_one(2.0 * boundary * jitter(config_, k.block_id, cores, 5));
    k.elem_bytes = 8;
    k.store_fraction = 0.45;
    k.footprint_bytes = at_least_one(vector_bytes) + 4096;
    k.fp_per_visit = {0.0, 0.0, 0.0, 0.0};
    k.ilp = 2.0;
    k.dep_chain = 2.0;
    k.mem_instructions = 2;
    k.fp_instructions = 0;
    kernels.push_back(k);
  }
  {
    // Residual-norm combine: log2(p)-deep tree stages on the host side.
    KernelSpec k;
    k.block_id = kResidualNorm;
    k.location = {"hpcg/norm.cpp", 12, "residual_norm"};
    k.pattern = Pattern::Sequential;
    k.visits = config_.iterations;
    k.refs_per_visit = at_least_one(laws::log_growth(2048.0, 2048.0, p) *
                                    jitter(config_, k.block_id, cores, 6));
    k.elem_bytes = 8;
    k.store_fraction = 0.1;
    k.footprint_bytes = 128u << 10;
    k.fp_per_visit = {laws::log_growth(2048.0, 2048.0, p), 0.0, 0.0, 1.0};
    k.ilp = 3.0;
    k.dep_chain = 8.0;
    k.mem_instructions = 2;
    k.fp_instructions = 1;
    kernels.push_back(k);
  }
  {
    // Iteration control: scale-invariant bookkeeping.
    KernelSpec k;
    k.block_id = kIterationControl;
    k.location = {"hpcg/cg.cpp", 88, "iteration_control"};
    k.pattern = Pattern::Sequential;
    k.visits = config_.iterations;
    k.refs_per_visit = at_least_one(600.0 * jitter(config_, k.block_id, cores, 7));
    k.elem_bytes = 8;
    k.store_fraction = 0.25;
    k.footprint_bytes = 16u << 10;
    k.fp_per_visit = {300.0, 100.0, 0.0, 2.0};
    k.ilp = 2.0;
    k.dep_chain = 3.0;
    k.mem_instructions = 1;
    k.fp_instructions = 1;
    kernels.push_back(k);
  }

  for (KernelSpec& kernel : kernels) {
    if (config_.work_scale != 1.0) {
      kernel.refs_per_visit = at_least_one(
          static_cast<double>(kernel.refs_per_visit) * config_.work_scale);
      kernel.fp_per_visit.adds *= config_.work_scale;
      kernel.fp_per_visit.muls *= config_.work_scale;
      kernel.fp_per_visit.fmas *= config_.work_scale;
      kernel.fp_per_visit.divs *= config_.work_scale;
    }
    kernel.validate();
  }
  return kernels;
}

trace::CommTrace HpcgApp::comm_trace(std::uint32_t cores, std::uint32_t rank) const {
  CommPattern pattern;
  pattern.timesteps = config_.iterations;
  const double boundary = laws::surface(static_cast<double>(config_.global_rows),
                                        static_cast<double>(cores), 2.0);
  pattern.halo_bytes = at_least_one(boundary * 8.0 * config_.work_scale);
  pattern.allreduce_every = 1;
  pattern.allreduce_count = 2;  // the two CG dot products
  pattern.allreduce_bytes = at_least_one(8.0 * config_.work_scale);
  pattern.units_per_step = work_units(cores, rank) / static_cast<double>(config_.iterations);
  return build_comm_trace(cores, rank, pattern);
}

}  // namespace pmacx::synth
