#include "synth/app.hpp"

#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace pmacx::synth {

double SyntheticApp::work_units(std::uint32_t cores, std::uint32_t rank) const {
  double total = 0.0;
  for (const KernelSpec& kernel : kernels(cores, rank)) total += kernel.work_units();
  return total;
}

std::uint32_t SyntheticApp::demanding_rank(std::uint32_t /*cores*/) const { return 0; }

double imbalance_factor(std::uint32_t rank, std::uint32_t cores, double amplitude) {
  PMACX_CHECK(cores > 0, "imbalance_factor: zero cores");
  PMACX_CHECK(amplitude >= 0.0, "imbalance_factor: negative amplitude");
  if (cores == 1) return 1.0 + amplitude;
  // cos² profile over half the ring: 1+A at rank 0, decaying smoothly; the
  // tiny linear tilt makes rank 0 the *unique* maximum.
  const double phase = std::numbers::pi * static_cast<double>(rank) /
                       static_cast<double>(cores);
  const double shape = std::cos(phase) * std::cos(phase);
  const double tilt = 1.0 - static_cast<double>(rank) / (1e4 * static_cast<double>(cores));
  return 1.0 + amplitude * shape * tilt;
}

trace::CommTrace build_comm_trace(std::uint32_t cores, std::uint32_t rank,
                                  const CommPattern& pattern) {
  PMACX_CHECK(cores >= 2 && cores % 2 == 0,
              "build_comm_trace requires an even core count >= 2");
  PMACX_CHECK(rank < cores, "rank out of range");

  trace::CommTrace comm;
  comm.rank = rank;
  comm.core_count = cores;

  const bool even = rank % 2 == 0;
  const std::uint32_t right = (rank + 1) % cores;
  const std::uint32_t left = (rank + cores - 1) % cores;

  for (std::uint32_t step = 0; step < pattern.timesteps; ++step) {
    double pending_units = pattern.units_per_step;
    auto emit = [&](trace::CommOp op, std::int32_t peer, std::uint64_t bytes) {
      trace::CommEvent event;
      event.op = op;
      event.peer = peer;
      event.bytes = bytes;
      event.compute_units_before = pending_units;
      pending_units = 0.0;
      comm.events.push_back(event);
    };

    // Phase A: even ranks send right, odd ranks receive from the left.
    if (even)
      emit(trace::CommOp::Send, static_cast<std::int32_t>(right), pattern.halo_bytes);
    else
      emit(trace::CommOp::Recv, static_cast<std::int32_t>(left), pattern.halo_bytes);
    // Phase B: odd ranks send right (wrapping), even ranks receive.
    if (!even)
      emit(trace::CommOp::Send, static_cast<std::int32_t>(right), pattern.halo_bytes);
    else
      emit(trace::CommOp::Recv, static_cast<std::int32_t>(left), pattern.halo_bytes);

    if (pattern.allreduce_every != 0 && (step + 1) % pattern.allreduce_every == 0)
      for (std::uint32_t i = 0; i < pattern.allreduce_count; ++i)
        emit(trace::CommOp::Allreduce, -1, pattern.allreduce_bytes);
    if (pattern.alltoall_every != 0 && (step + 1) % pattern.alltoall_every == 0)
      emit(trace::CommOp::Alltoall, -1, pattern.alltoall_bytes);
  }

  // Small fixed tail: output/teardown work.
  comm.tail_compute_units = pattern.units_per_step * 0.01;
  return comm;
}

}  // namespace pmacx::synth
