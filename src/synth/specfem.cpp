#include "synth/specfem.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace pmacx::synth {
namespace {

/// Block ids stable across core counts (alignment key for extrapolation).
enum BlockId : std::uint64_t {
  kComputeForces = 1,
  kUpdateAcceleration = 2,
  kAssembleBoundary = 3,
  kSourceInjection = 4,
  kReduceNorm = 5,
  kRankBookkeeping = 6,
};

/// Deterministic ~noise-sized jitter for a (seed, block, cores, salt) key, so
/// a given element's measured value is reproducible but not exactly on-law.
double jitter(const SpecfemConfig& cfg, std::uint64_t block, std::uint32_t cores,
              std::uint64_t salt) {
  std::uint64_t key = util::derive_seed(cfg.seed, (block << 24) ^ (std::uint64_t(cores) << 4) ^ salt);
  util::Rng rng(key);
  return 1.0 + cfg.noise * rng.normal();
}

std::uint64_t at_least_one(double value) {
  return value < 1.0 ? 1 : static_cast<std::uint64_t>(value);
}

}  // namespace

Specfem3dApp::Specfem3dApp(SpecfemConfig config) : config_(config) {
  PMACX_CHECK(config_.global_elements > 0, "specfem: zero elements");
  PMACX_CHECK(config_.timesteps > 0, "specfem: zero timesteps");
  PMACX_CHECK(config_.noise >= 0 && config_.noise < 0.2, "specfem: unreasonable noise");
}

std::vector<KernelSpec> Specfem3dApp::kernels(std::uint32_t cores, std::uint32_t rank) const {
  PMACX_CHECK(cores > 0, "specfem: zero cores");
  PMACX_CHECK(rank < cores, "specfem: rank out of range");

  const double p = static_cast<double>(cores);
  const double t = static_cast<double>(config_.timesteps);
  const double imb = imbalance_factor(rank, cores, config_.imbalance);
  const double elems_per_rank =
      laws::per_core(static_cast<double>(config_.global_elements), p) * imb;
  const double field_bytes_per_rank =
      laws::per_core(static_cast<double>(config_.global_field_bytes), p, 4096.0) * imb;
  const double points_per_rank = elems_per_rank * 125.0;  // 5³ GLL points

  std::vector<KernelSpec> kernels;

  {
    // Dominant stiffness kernel: one visit per element per timestep, stencil
    // locality over the wavefield arrays.
    KernelSpec k;
    k.block_id = kComputeForces;
    k.location = {"specfem3d/compute_forces_elastic.f90", 212, "compute_forces_elastic"};
    k.pattern = Pattern::Stencil3d;
    k.visits = at_least_one(t * elems_per_rank * jitter(config_, k.block_id, cores, 1));
    k.refs_per_visit = 350;
    k.elem_bytes = 8;
    k.store_fraction = 0.28;
    k.footprint_bytes = at_least_one(field_bytes_per_rank * 0.70) + (128u << 10);
    k.fp_per_visit = {80.0, 60.0, 220.0, 2.0};
    k.ilp = 3.5;
    k.dep_chain = 6.0;
    k.mem_instructions = 6;
    k.fp_instructions = 3;
    kernels.push_back(k);
  }
  {
    // Newmark time-scheme update: pure streaming over the field arrays.
    KernelSpec k;
    k.block_id = kUpdateAcceleration;
    k.location = {"specfem3d/update_displacement.f90", 88, "update_displ_newmark"};
    k.pattern = Pattern::Sequential;
    k.visits = config_.timesteps;
    k.refs_per_visit =
        at_least_one(3.0 * points_per_rank * jitter(config_, k.block_id, cores, 2));
    k.elem_bytes = 8;
    k.store_fraction = 0.5;
    k.footprint_bytes = at_least_one(field_bytes_per_rank * 0.30) + 4096;
    k.fp_per_visit = {2.0 * points_per_rank, points_per_rank, 0.0, 0.0};
    k.ilp = 4.0;
    k.dep_chain = 2.0;
    k.mem_instructions = 4;
    k.fp_instructions = 2;
    kernels.push_back(k);
  }
  {
    // MPI boundary assembly: gathers partition-surface points into buffers.
    // Surface law: (volume/p)^(2/3).
    KernelSpec k;
    k.block_id = kAssembleBoundary;
    k.location = {"specfem3d/assemble_MPI_vector.f90", 141, "assemble_boundary"};
    k.pattern = Pattern::Gather;
    const double halo_points =
        laws::surface(static_cast<double>(config_.global_elements) * 125.0, p, 6.0);
    k.visits = config_.timesteps * 2;  // pack + unpack
    k.refs_per_visit = at_least_one(2.0 * halo_points * jitter(config_, k.block_id, cores, 3));
    k.elem_bytes = 8;
    k.store_fraction = 0.45;
    // The gather reads partition-surface points out of the wavefield arrays
    // themselves, so its irregular accesses span a field-sized region even
    // though the packed buffers are small.
    k.footprint_bytes = at_least_one(field_bytes_per_rank * 0.5) + 4096;
    k.fp_per_visit = {halo_points, 0.0, 0.0, 0.0};
    k.ilp = 2.0;
    k.dep_chain = 3.0;
    k.mem_instructions = 4;
    k.fp_instructions = 1;
    kernels.push_back(k);
  }
  {
    // Source injection: constant work regardless of scale (the Table III
    // block whose behaviour is invariant under strong scaling).
    KernelSpec k;
    k.block_id = kSourceInjection;
    k.location = {"specfem3d/compute_add_sources.f90", 55, "compute_add_sources"};
    k.pattern = Pattern::Random;
    k.visits = config_.timesteps;
    k.refs_per_visit = at_least_one(2000.0 * jitter(config_, k.block_id, cores, 4));
    k.elem_bytes = 8;
    k.store_fraction = 0.33;
    k.footprint_bytes = 24u << 10;  // 24 KB: inside a 56 KB L1, outside 12 KB
    k.fp_per_visit = {4000.0, 2000.0, 1000.0, 0.0};
    k.ilp = 2.5;
    k.dep_chain = 4.0;
    k.mem_instructions = 3;
    k.fp_instructions = 2;
    kernels.push_back(k);
  }
  {
    // Residual-norm reduction: on-node combine work grows with the
    // log2(p)-deep reduction tree — the paper's Fig. 5 log-growth shape.
    KernelSpec k;
    k.block_id = kReduceNorm;
    k.location = {"specfem3d/check_stability.f90", 77, "reduce_norm"};
    k.pattern = Pattern::Sequential;
    k.visits = config_.timesteps;
    k.refs_per_visit = at_least_one(laws::log_growth(4096.0, 4096.0, p) *
                                    jitter(config_, k.block_id, cores, 5));
    k.elem_bytes = 8;
    k.store_fraction = 0.1;
    k.footprint_bytes = 128u << 10;  // comfortably inside L2 on all targets
    k.fp_per_visit = {laws::log_growth(4096.0, 4096.0, p), 0.0, 0.0, 1.0};
    k.ilp = 3.0;
    k.dep_chain = 8.0;
    k.mem_instructions = 2;
    k.fp_instructions = 1;
    kernels.push_back(k);
  }
  {
    // Rank-table bookkeeping: scans per-rank neighbour/offset tables whose
    // length is the core count — a linearly growing element (Fig. 4 shape).
    KernelSpec k;
    k.block_id = kRankBookkeeping;
    k.location = {"specfem3d/prepare_assemble.f90", 30, "rank_bookkeeping"};
    k.pattern = Pattern::Sequential;
    k.visits = config_.timesteps;
    k.refs_per_visit =
        at_least_one(laws::linear_growth(64.0, 2.0, p) * jitter(config_, k.block_id, cores, 6));
    k.elem_bytes = 8;
    k.store_fraction = 0.2;
    // The scan re-walks a compact table, so the *references* grow with p
    // while the footprint stays small and cache-resident.
    k.footprint_bytes = 16u << 10;
    k.fp_per_visit = {0.0, 0.0, 0.0, 0.0};
    k.ilp = 1.5;
    k.dep_chain = 2.0;
    k.mem_instructions = 2;
    k.fp_instructions = 0;
    kernels.push_back(k);
  }

  for (KernelSpec& kernel : kernels) {
    if (config_.work_scale != 1.0) {
      kernel.refs_per_visit = at_least_one(
          static_cast<double>(kernel.refs_per_visit) * config_.work_scale);
      kernel.fp_per_visit.adds *= config_.work_scale;
      kernel.fp_per_visit.muls *= config_.work_scale;
      kernel.fp_per_visit.fmas *= config_.work_scale;
      kernel.fp_per_visit.divs *= config_.work_scale;
    }
    kernel.validate();
  }
  return kernels;
}

trace::CommTrace Specfem3dApp::comm_trace(std::uint32_t cores, std::uint32_t rank) const {
  CommPattern pattern;
  pattern.timesteps = config_.timesteps;
  const double halo_points = laws::surface(
      static_cast<double>(config_.global_elements) * 125.0, static_cast<double>(cores), 6.0);
  // work_scale folds the work of many physical timesteps into each traced
  // step, so the exchanged volume aggregates the same way.
  pattern.halo_bytes = at_least_one(halo_points * 24.0 * config_.work_scale);
  pattern.allreduce_every = 2;  // stability check every other step
  pattern.allreduce_bytes = at_least_one(8.0 * config_.work_scale);
  pattern.units_per_step = work_units(cores, rank) / static_cast<double>(config_.timesteps);
  return build_comm_trace(cores, rank, pattern);
}

}  // namespace pmacx::synth
