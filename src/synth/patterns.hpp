// Memory access pattern generators.
//
// These play the role of the instrumented binary's address stream: each
// kernel (basic block) of a synthetic application owns a data region and a
// pattern, and the tracer pulls a stream of MemRefs from the pattern into
// the cache simulator exactly the way PEBIL's instrumentation feeds the
// PMaC tracer on the fly (Fig. 2 of the paper).
//
// Patterns cover the locality classes the MultiMAPS machine profile probes:
// stride-1 streams, fixed larger strides, uniform random accesses within a
// footprint, index-driven gathers, and 3-D stencil neighbourhoods.
#pragma once

#include <cstdint>
#include <string>

#include "memsim/hierarchy.hpp"
#include "util/rng.hpp"

namespace pmacx::synth {

/// Locality classes for generated reference streams.
enum class Pattern {
  Sequential,  ///< stride-1 walk, wrapping over the footprint
  Strided,     ///< fixed-stride walk (stride in elements)
  Random,      ///< uniform random element within the footprint
  Gather,      ///< sequential index read + random data read (indirect access)
  Stencil3d,   ///< 7-point stencil sweep over a cubic grid
};

/// Stable pattern names for reports.
std::string pattern_name(Pattern pattern);

/// Parameters of one stream.
struct StreamSpec {
  Pattern pattern = Pattern::Sequential;
  std::uint64_t base_addr = 0;        ///< start of the kernel's data region
  std::uint64_t footprint_bytes = 0;  ///< region size (must be ≥ elem_bytes)
  std::uint32_t elem_bytes = 8;       ///< size of one reference
  std::uint32_t stride_elems = 1;     ///< Strided: distance between accesses
  double store_fraction = 0.25;       ///< fraction of refs that are stores
};

/// Pulls `count` references from the stream, invoking sink(const MemRef&)
/// for each.  Deterministic for a fixed `rng` state.  The stream keeps no
/// state between calls beyond what `cursor` carries, so callers can
/// interleave kernels.
class RefStream {
 public:
  /// Validates the spec (footprint ≥ one element, non-zero element size).
  RefStream(const StreamSpec& spec, std::uint64_t seed);

  /// Generates the next reference.
  memsim::MemRef next();

  const StreamSpec& spec() const { return spec_; }

 private:
  StreamSpec spec_;
  util::Rng rng_;
  std::uint64_t elems_;     ///< footprint in elements
  std::uint64_t cursor_ = 0;
  // Stencil3d geometry: cubic grid with side_ elements per dimension.
  std::uint64_t side_ = 0;
  std::uint64_t plane_ = 0;
  std::uint32_t stencil_point_ = 0;
};

}  // namespace pmacx::synth
