#include "synth/kernel.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace pmacx::synth {

void KernelSpec::validate() const {
  PMACX_CHECK(block_id != 0, "kernel block id must be non-zero");
  PMACX_CHECK(refs_per_visit > 0 || fp_per_visit.total() > 0,
              "kernel '" + location.function + "' does no work");
  PMACX_CHECK(elem_bytes > 0, "kernel element size must be positive");
  PMACX_CHECK(footprint_bytes >= elem_bytes, "kernel footprint smaller than one element");
  PMACX_CHECK(store_fraction >= 0.0 && store_fraction <= 1.0, "store fraction out of range");
  PMACX_CHECK(ilp > 0.0, "ilp must be positive");
  PMACX_CHECK(dep_chain > 0.0, "dep chain must be positive");
  PMACX_CHECK(mem_instructions > 0 || refs_per_visit == 0,
              "memory work requires at least one memory instruction");
  PMACX_CHECK(fp_instructions > 0 || fp_per_visit.total() == 0,
              "fp work requires at least one fp instruction");
}

namespace laws {

double per_core(double total, double p, double min_value) {
  PMACX_CHECK(p > 0, "per_core: non-positive core count");
  return std::max(total / p, min_value);
}

double surface(double total, double p, double scale) {
  PMACX_CHECK(p > 0, "surface: non-positive core count");
  return std::max(scale * std::pow(total / p, 2.0 / 3.0), 1.0);
}

double log_growth(double base, double slope, double p) {
  PMACX_CHECK(p > 0, "log_growth: non-positive core count");
  return base + slope * std::log2(p);
}

double linear_growth(double base, double slope, double p) { return base + slope * p; }

}  // namespace laws

std::uint64_t thread_slice_bytes(std::uint64_t footprint_bytes, std::uint32_t threads,
                                 std::uint32_t line_bytes) {
  PMACX_CHECK(threads > 0, "thread_slice_bytes: zero threads");
  PMACX_CHECK(line_bytes > 0, "thread_slice_bytes: zero line size");
  const std::uint64_t raw = std::max<std::uint64_t>(footprint_bytes / threads, line_bytes);
  return (raw + line_bytes - 1) / line_bytes * line_bytes;
}

}  // namespace pmacx::synth
