// Synthetic application interface.
//
// A SyntheticApp is the stand-in for a real MPI application binary: given a
// core count and a rank it yields (a) the kernel list the tracer executes —
// the computation side — and (b) the rank's communication timeline.  Both
// are deterministic functions of (cores, rank), which is exactly the
// property strong-scaled SPMD codes have and which the trace extrapolation
// methodology exploits.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "synth/kernel.hpp"
#include "trace/comm.hpp"

namespace pmacx::synth {

/// Abstract synthetic MPI application.
class SyntheticApp {
 public:
  virtual ~SyntheticApp() = default;

  /// Application name ("specfem3d", "uh3d").
  virtual std::string name() const = 0;

  /// Number of simulated timesteps (fixed across core counts).
  virtual std::uint32_t timesteps() const = 0;

  /// The rank's kernels at this core count.  Kernel block ids are stable
  /// across core counts so traces align for extrapolation.
  virtual std::vector<KernelSpec> kernels(std::uint32_t cores, std::uint32_t rank) const = 0;

  /// The rank's communication timeline at this core count.
  virtual trace::CommTrace comm_trace(std::uint32_t cores, std::uint32_t rank) const = 0;

  /// Abstract computation work units of the rank (sum over kernels); used to
  /// scale comm-trace compute bursts and to find the demanding rank cheaply.
  double work_units(std::uint32_t cores, std::uint32_t rank) const;

  /// Rank with the most computation work.  The synthetic apps put their load
  /// imbalance peak on rank 0 by construction.
  virtual std::uint32_t demanding_rank(std::uint32_t cores) const;
};

/// Deterministic per-rank load-imbalance factor in [1, 1+amplitude], with the
/// unique maximum at rank 0 (smooth cos² profile across ranks).
double imbalance_factor(std::uint32_t rank, std::uint32_t cores, double amplitude);

/// Parameters for the shared bulk-synchronous communication skeleton.
struct CommPattern {
  std::uint32_t timesteps = 10;
  std::uint64_t halo_bytes = 1 << 16;   ///< per neighbour exchange
  std::uint32_t allreduce_every = 1;    ///< timesteps between allreduces (0 = never)
  std::uint32_t allreduce_count = 1;    ///< allreduces per firing (CG: 2 dot products)
  std::uint64_t allreduce_bytes = 8;
  std::uint32_t alltoall_every = 0;     ///< timesteps between alltoalls (0 = never)
  std::uint64_t alltoall_bytes = 0;
  double units_per_step = 1.0;          ///< this rank's compute units per timestep
};

/// Builds a deadlock-free bulk-synchronous timeline: per timestep, a
/// two-phase ring halo exchange (even/odd pairing, rendezvous-safe) plus
/// periodic collectives.  Requires an even core count ≥ 2.
trace::CommTrace build_comm_trace(std::uint32_t cores, std::uint32_t rank,
                                  const CommPattern& pattern);

}  // namespace pmacx::synth
