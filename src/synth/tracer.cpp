#include "synth/tracer.hpp"

#include <algorithm>
#include <optional>

#include "memsim/hierarchy.hpp"
#include "memsim/threaded.hpp"
#include "memsim/working_set.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"
#include "util/threadpool.hpp"

namespace pmacx::synth {
namespace {

/// Scope ids: each (block, memory-instruction) pair gets its own accounting
/// scope so per-instruction hit rates are *measured*, not modeled.  Block
/// stats are the merge of its instruction scopes.
constexpr std::uint64_t kScopeStride = 1024;

std::uint64_t instr_scope(std::uint64_t block_id, std::uint32_t instr) {
  return block_id * kScopeStride + instr + 1;
}

/// Fills the three hit-rate slots from counters; levels beyond the simulated
/// hierarchy inherit the deepest simulated level's cumulative rate (a 2-level
/// machine's "L3" rate equals its L2 rate).
template <typename SetRate>
void fill_hit_rates(const memsim::AccessCounters& counters, std::size_t levels,
                    SetRate&& set_rate) {
  double rate = 0.0;
  for (std::size_t lvl = 0; lvl < memsim::kMaxLevels; ++lvl) {
    if (lvl < levels) rate = counters.cumulative_hit_rate(lvl);
    set_rate(lvl, rate);
  }
}

}  // namespace

trace::TaskTrace trace_task(const SyntheticApp& app, std::uint32_t cores, std::uint32_t rank,
                            const TracerOptions& options) {
  PMACX_CHECK(options.max_refs_per_kernel > 0, "max_refs_per_kernel must be positive");
  util::metrics::StageTimer task_timer("trace.task");

  memsim::HierarchyConfig target = options.target;
  target.sample_shift = options.sample_shift;

  // Pure-MPI mode uses the scalar hierarchy; hybrid mode the thread-aware
  // one (private shallow levels, shared deep levels).  The thin adapters
  // below keep the kernel loop common to both.
  const std::uint32_t threads = std::max<std::uint32_t>(options.threads_per_rank, 1);
  std::optional<memsim::CacheHierarchy> flat;
  std::optional<memsim::ThreadedHierarchy> threaded;
  if (threads == 1) {
    flat.emplace(target);
  } else {
    const std::size_t shared_from =
        std::min(options.shared_from_level, target.levels.size());
    threaded.emplace(target, threads, shared_from);
  }
  auto set_scope = [&](std::uint64_t scope_id) {
    if (flat)
      flat->set_scope(scope_id);
    else
      threaded->set_scope(scope_id);
  };
  auto access = [&](std::uint32_t thread, const memsim::MemRef& ref) {
    if (flat)
      flat->access(ref);
    else
      threaded->access(thread, ref);
  };
  auto scope_of = [&](std::uint64_t scope_id) -> const memsim::AccessCounters& {
    return flat ? flat->scope(scope_id) : threaded->scope(scope_id);
  };

  memsim::WorkingSetTracker working_set(options.target.line_bytes());
  const std::size_t levels = options.target.levels.size();

  trace::TaskTrace task;
  task.app = app.name();
  task.rank = rank;
  task.core_count = cores;
  task.target_system = options.target.name;

  const std::vector<KernelSpec> kernels = app.kernels(cores, rank);
  PMACX_CHECK(!kernels.empty(), "application yields no kernels");

  std::uint64_t refs_simulated = 0;
  std::uint64_t sampling_cap_hits = 0;
  for (const KernelSpec& kernel : kernels) {
    const std::uint64_t total_refs = kernel.total_refs();
    const std::uint64_t sim_refs = std::min(total_refs, options.max_refs_per_kernel);
    refs_simulated += sim_refs;
    if (total_refs > options.max_refs_per_kernel) ++sampling_cap_hits;
    const double count_scale =
        sim_refs > 0 ? static_cast<double>(total_refs) / static_cast<double>(sim_refs) : 0.0;

    // One stream per thread, each over its slice of the kernel's footprint
    // (an OpenMP-style static partition); pure MPI is the 1-thread case
    // over the whole region.  Disjoint address regions per block keep
    // kernels from aliasing in the simulated caches, like distinct
    // allocations do in a real address space.
    const std::uint64_t slice_bytes =
        thread_slice_bytes(kernel.footprint_bytes, threads, options.target.line_bytes());
    std::vector<RefStream> streams;
    streams.reserve(threads);
    for (std::uint32_t t = 0; t < threads; ++t) {
      StreamSpec stream_spec;
      stream_spec.pattern = kernel.pattern;
      stream_spec.base_addr = (kernel.block_id << 40) + t * slice_bytes;
      stream_spec.footprint_bytes = slice_bytes;
      stream_spec.elem_bytes = kernel.elem_bytes;
      stream_spec.stride_elems = kernel.stride_elems;
      stream_spec.store_fraction = kernel.store_fraction;
      streams.emplace_back(stream_spec,
                           util::derive_seed(options.seed, kernel.block_id * 64 + t));
    }

    const std::uint32_t mem_instrs = std::max<std::uint32_t>(kernel.mem_instructions, 1);
    working_set.set_scope(kernel.block_id);
    for (std::uint64_t i = 0; i < sim_refs; ++i) {
      // Chunked instruction attribution: instruction k owns the k-th slice
      // of the kernel's reference stream, so early instructions absorb the
      // cold misses and later ones run warm — per-instruction hit-rate
      // diversity as in the paper's Fig. 4/5.
      const std::uint32_t instr =
          static_cast<std::uint32_t>((i * mem_instrs) / std::max<std::uint64_t>(sim_refs, 1));
      set_scope(instr_scope(kernel.block_id, instr));
      const auto thread = static_cast<std::uint32_t>(i % threads);
      const memsim::MemRef ref = streams[thread].next();
      access(thread, ref);
      working_set.touch(ref.addr, ref.size);
    }

    // Merge instruction scopes into the block aggregate.
    memsim::AccessCounters block_counters;
    for (std::uint32_t instr = 0; instr < mem_instrs; ++instr)
      block_counters.merge(scope_of(instr_scope(kernel.block_id, instr)));

    trace::BasicBlockRecord record;
    record.id = kernel.block_id;
    record.location = kernel.location;
    record.set(trace::BlockElement::VisitCount, static_cast<double>(kernel.visits));
    record.set(trace::BlockElement::FpAdd,
               static_cast<double>(kernel.visits) * kernel.fp_per_visit.adds);
    record.set(trace::BlockElement::FpMul,
               static_cast<double>(kernel.visits) * kernel.fp_per_visit.muls);
    record.set(trace::BlockElement::FpFma,
               static_cast<double>(kernel.visits) * kernel.fp_per_visit.fmas);
    record.set(trace::BlockElement::FpDivSqrt,
               static_cast<double>(kernel.visits) * kernel.fp_per_visit.divs);

    // Counts: analytic totals, split by the sampled load/store proportion.
    const double sim_total = static_cast<double>(block_counters.refs);
    const double load_fraction =
        sim_total > 0 ? static_cast<double>(block_counters.loads) / sim_total
                      : 1.0 - kernel.store_fraction;
    record.set(trace::BlockElement::MemLoads,
               static_cast<double>(total_refs) * load_fraction);
    record.set(trace::BlockElement::MemStores,
               static_cast<double>(total_refs) * (1.0 - load_fraction));
    record.set(trace::BlockElement::BytesPerRef, static_cast<double>(kernel.elem_bytes));

    fill_hit_rates(block_counters, levels, [&](std::size_t lvl, double rate) {
      const trace::BlockElement slots[] = {trace::BlockElement::HitRateL1,
                                           trace::BlockElement::HitRateL2,
                                           trace::BlockElement::HitRateL3};
      record.set(slots[lvl], rate);
    });

    // The block's true data region; sampling would under-report footprints
    // of heavily sampled kernels, so report the region size (what a full
    // trace would observe — all patterns sweep their whole region).
    record.set(trace::BlockElement::WorkingSetBytes,
               static_cast<double>(kernel.footprint_bytes));
    record.set(trace::BlockElement::Ilp, kernel.ilp);
    record.set(trace::BlockElement::DepChainLength, kernel.dep_chain);

    if (options.instruction_detail) {
      // Memory instructions: measured per-slice rates, analytic counts.
      for (std::uint32_t instr = 0; instr < mem_instrs && kernel.refs_per_visit > 0; ++instr) {
        const memsim::AccessCounters& c = scope_of(instr_scope(kernel.block_id, instr));
        trace::InstructionRecord rec;
        rec.index = instr;
        rec.set(trace::InstrElement::ExecCount, static_cast<double>(c.refs) * count_scale);
        rec.set(trace::InstrElement::MemOps, static_cast<double>(c.refs) * count_scale);
        rec.set(trace::InstrElement::BytesPerOp, static_cast<double>(kernel.elem_bytes));
        rec.set(trace::InstrElement::FpOps, 0.0);
        fill_hit_rates(c, levels, [&](std::size_t lvl, double rate) {
          const trace::InstrElement slots[] = {trace::InstrElement::HitRateL1,
                                               trace::InstrElement::HitRateL2,
                                               trace::InstrElement::HitRateL3};
          rec.set(slots[lvl], rate);
        });
        record.instructions.push_back(rec);
      }
      // Floating-point instructions: analytic shares of the fp mix.
      const double fp_total = kernel.total_fp_ops();
      for (std::uint32_t instr = 0; instr < kernel.fp_instructions && fp_total > 0; ++instr) {
        trace::InstructionRecord rec;
        rec.index = mem_instrs + instr;
        const double share = fp_total / static_cast<double>(kernel.fp_instructions);
        rec.set(trace::InstrElement::ExecCount, static_cast<double>(kernel.visits));
        rec.set(trace::InstrElement::MemOps, 0.0);
        rec.set(trace::InstrElement::BytesPerOp, 0.0);
        rec.set(trace::InstrElement::FpOps, share);
        record.instructions.push_back(rec);
      }
    }

    task.blocks.push_back(std::move(record));
  }

  task.sort_blocks();

  // Per-task tallies flushed once (never per reference): the simulation's
  // work totals are identical however the pool scheduled the tasks, so
  // these counters diff cleanly between 1- and N-thread runs.
  util::metrics::Registry& metrics = util::metrics::Registry::global();
  metrics.counter("trace.tasks_traced").add();
  metrics.counter("trace.blocks_traced").add(kernels.size());
  metrics.counter("trace.refs_simulated").add(refs_simulated);
  metrics.counter("trace.sampling_cap_hits").add(sampling_cap_hits);
  const memsim::AccessCounters& totals = flat ? flat->totals() : threaded->totals();
  metrics.counter("memsim.refs").add(totals.refs);
  metrics.counter("memsim.loads").add(totals.loads);
  metrics.counter("memsim.stores").add(totals.stores);
  metrics.counter("memsim.bytes").add(totals.bytes);
  metrics.counter("memsim.line_accesses").add(totals.line_accesses);
  for (std::size_t lvl = 0; lvl < levels && lvl < memsim::kMaxLevels; ++lvl)
    metrics.counter("memsim.hits.l" + std::to_string(lvl + 1)).add(totals.level_hits[lvl]);
  metrics.counter("memsim.memory_accesses").add(totals.memory_accesses);
  metrics.counter("memsim.writebacks").add(totals.writebacks);
  return task;
}

trace::AppSignature collect_signature(const SyntheticApp& app, std::uint32_t cores,
                                      const TracerOptions& options,
                                      std::vector<std::uint32_t> ranks_to_trace) {
  trace::AppSignature signature;
  signature.app = app.name();
  signature.core_count = cores;
  signature.target_system = options.target.name;
  signature.demanding_rank = app.demanding_rank(cores);

  if (ranks_to_trace.empty()) ranks_to_trace.push_back(signature.demanding_rank);
  std::sort(ranks_to_trace.begin(), ranks_to_trace.end());
  ranks_to_trace.erase(std::unique(ranks_to_trace.begin(), ranks_to_trace.end()),
                       ranks_to_trace.end());

  // Every rank's simulation is self-contained (own hierarchy, own streams),
  // so tracing fans out across the pool; parallel_map keeps rank order.
  util::ThreadPool* pool = options.pool;
  const bool parallel = pool != nullptr && !pool->serial();
  auto trace_rank = [&](std::size_t i) {
    const std::uint32_t rank = ranks_to_trace[i];
    PMACX_LOG_DEBUG << app.name() << ": tracing rank " << rank << " of " << cores;
    return trace_task(app, cores, rank, options);
  };
  if (parallel && ranks_to_trace.size() > 1) {
    signature.tasks =
        pool->parallel_map<trace::TaskTrace>(ranks_to_trace.size(), trace_rank);
  } else {
    for (std::size_t i = 0; i < ranks_to_trace.size(); ++i)
      signature.tasks.push_back(trace_rank(i));
  }

  if (parallel) {
    signature.comm = pool->parallel_map<trace::CommTrace>(
        cores, [&](std::size_t rank) {
          return app.comm_trace(cores, static_cast<std::uint32_t>(rank));
        },
        /*grain=*/64);
  } else {
    signature.comm.reserve(cores);
    for (std::uint32_t rank = 0; rank < cores; ++rank)
      signature.comm.push_back(app.comm_trace(cores, rank));
  }

  signature.validate();
  return signature;
}

}  // namespace pmacx::synth
