// Kernel specifications — the synthetic analogue of a static basic block.
//
// A KernelSpec fully describes one basic block of a synthetic application at
// one (core count, rank): how often it runs, how many references and flops
// each visit issues, over what footprint and with what locality pattern.
// Applications produce their kernel lists with per-element scaling laws of
// the core count, which is what makes the downstream extrapolation problem
// real: some elements stay constant, some shrink like N/P, some grow like
// log₂ P (reduction trees) or linearly in P (bookkeeping over rank tables).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "synth/patterns.hpp"
#include "trace/block.hpp"

namespace pmacx::synth {

/// Floating-point work per kernel visit, by operation class.
struct FpMix {
  double adds = 0.0;
  double muls = 0.0;
  double fmas = 0.0;
  double divs = 0.0;

  double total() const { return adds + muls + 2.0 * fmas + divs; }
};

/// Complete description of one kernel at one (core count, rank).
struct KernelSpec {
  std::uint64_t block_id = 0;       ///< stable across core counts
  trace::SourceLocation location;
  Pattern pattern = Pattern::Sequential;
  std::uint64_t visits = 1;         ///< dynamic executions of the block
  std::uint64_t refs_per_visit = 0; ///< memory references per visit
  std::uint32_t elem_bytes = 8;
  std::uint32_t stride_elems = 1;
  double store_fraction = 0.25;
  std::uint64_t footprint_bytes = 4096;  ///< data region the refs fall in
  FpMix fp_per_visit;
  double ilp = 2.0;                 ///< mean independent ops per issue window
  double dep_chain = 4.0;           ///< mean dependency chain length
  std::uint32_t mem_instructions = 4;  ///< per-instruction sub-records (memory)
  std::uint32_t fp_instructions = 2;   ///< per-instruction sub-records (fp)

  /// Total memory references this kernel issues in the run.
  std::uint64_t total_refs() const { return visits * refs_per_visit; }
  /// Total floating-point operations in the run.
  double total_fp_ops() const { return static_cast<double>(visits) * fp_per_visit.total(); }
  /// Abstract work units (for comm-trace compute bursts): references plus
  /// half-weighted flops, a common first-order CPU-work proxy.
  double work_units() const {
    return static_cast<double>(total_refs()) + 0.5 * total_fp_ops();
  }

  /// Throws util::Error on impossible parameters.
  void validate() const;
};

/// Scaling-law helpers shared by the application models.  `p` is the core
/// count; all return positive values.
namespace laws {

/// Strong-scaled share: total/p, floored at `min_value`.
double per_core(double total, double p, double min_value = 1.0);

/// Surface-to-volume share: (total/p)^(2/3)·k — halo sizes under a 3-D
/// domain decomposition.
double surface(double total, double p, double scale = 1.0);

/// Logarithmic growth: base + slope·log2(p).
double log_growth(double base, double slope, double p);

/// Linear growth: base + slope·p.
double linear_growth(double base, double slope, double p);

}  // namespace laws

/// Per-thread slice of a kernel footprint for hybrid tracing, rounded up to
/// a cache-line multiple (as real OpenMP partitions are, to avoid false
/// sharing).  Misaligned slices would make a fraction of references
/// straddle two lines — skewing every line-granular statistic.
std::uint64_t thread_slice_bytes(std::uint64_t footprint_bytes, std::uint32_t threads,
                                 std::uint32_t line_bytes);

}  // namespace pmacx::synth
