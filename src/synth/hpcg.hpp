// HPCG-like synthetic application (extension beyond the paper).
//
// The paper's evaluation covers two applications; the calibration notes for
// this reproduction flag that breadth as its main soundness limitation.
// HpcgApp adds a third, structurally different workload: a preconditioned
// conjugate-gradient solve over a 27-point-stencil sparse operator — the
// HPCG benchmark's shape, and the canonical bandwidth-bound solver pattern:
//
//   kernel                 dominant element law in core count p
//   ---------------------  ------------------------------------
//   spmv                   refs ~ rows/p, gather through column indices
//   dot_products           refs ~ rows/p, streaming, allreduce-coupled
//   axpy_updates           refs ~ rows/p, streaming stores
//   jacobi_precondition    refs ~ rows/p, streaming
//   halo_pack              surface law, gathers from the vector region
//   residual_norm          refs ~ log2(p) (reduction-tree combine)
//   iteration_control      constant
//
// CG differs from the other two models in communication too: every
// iteration issues a halo exchange plus *two* global dot-product
// allreduces, making it the most synchronization-bound of the three.
#pragma once

#include "synth/app.hpp"

namespace pmacx::synth {

/// Tunable problem dimensions; defaults give a petascale-shaped operator
/// whose kernel footprints stay memory-resident (above a ~4 MB L3) through
/// 4096 cores (see SpecfemConfig::global_field_bytes for the rationale).
struct HpcgConfig {
  std::uint64_t global_rows = 1'200'000'000;  ///< unknowns in the operator
  std::uint32_t nonzeros_per_row = 27;        ///< 3-D 27-point stencil
  std::uint32_t iterations = 10;              ///< CG iterations traced
  double imbalance = 0.06;                    ///< boundary-subdomain excess on rank 0
  double noise = 0.005;
  /// Folds a production-length solve (thousands of iterations) into the
  /// traced ones (see SpecfemConfig::work_scale).
  double work_scale = 1.0;
  std::uint64_t seed = 0xc6a9;
};

/// The synthetic HPCG.
class HpcgApp final : public SyntheticApp {
 public:
  explicit HpcgApp(HpcgConfig config = {});

  std::string name() const override { return "hpcg"; }
  std::uint32_t timesteps() const override { return config_.iterations; }
  std::vector<KernelSpec> kernels(std::uint32_t cores, std::uint32_t rank) const override;
  trace::CommTrace comm_trace(std::uint32_t cores, std::uint32_t rank) const override;

  const HpcgConfig& config() const { return config_; }

 private:
  HpcgConfig config_;
};

}  // namespace pmacx::synth
