#include "synth/uh3d.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace pmacx::synth {
namespace {

/// Block ids stable across core counts; disjoint from SPECFEM's.
enum BlockId : std::uint64_t {
  kParticlePush = 101,
  kFieldInterpolate = 102,
  kCurrentDeposit = 103,
  kFieldSolve = 104,
  kParticleSort = 105,
  kBoundaryParticles = 106,
  kDiagnostics = 107,
};

double jitter(const Uh3dConfig& cfg, std::uint64_t block, std::uint32_t cores,
              std::uint64_t salt) {
  std::uint64_t key =
      util::derive_seed(cfg.seed, (block << 24) ^ (std::uint64_t(cores) << 4) ^ salt);
  util::Rng rng(key);
  return 1.0 + cfg.noise * rng.normal();
}

std::uint64_t at_least_one(double value) {
  return value < 1.0 ? 1 : static_cast<std::uint64_t>(value);
}

}  // namespace

Uh3dApp::Uh3dApp(Uh3dConfig config) : config_(config) {
  PMACX_CHECK(config_.global_particles > 0, "uh3d: zero particles");
  PMACX_CHECK(config_.timesteps > 0, "uh3d: zero timesteps");
  PMACX_CHECK(config_.noise >= 0 && config_.noise < 0.2, "uh3d: unreasonable noise");
}

std::vector<KernelSpec> Uh3dApp::kernels(std::uint32_t cores, std::uint32_t rank) const {
  PMACX_CHECK(cores > 0, "uh3d: zero cores");
  PMACX_CHECK(rank < cores, "uh3d: rank out of range");

  const double p = static_cast<double>(cores);
  const double t = static_cast<double>(config_.timesteps);
  const double imb = imbalance_factor(rank, cores, config_.imbalance);
  const double particles_per_rank =
      laws::per_core(static_cast<double>(config_.global_particles), p) * imb;
  const double particle_bytes_per_rank =
      particles_per_rank * static_cast<double>(config_.particle_bytes);
  const double cells_per_rank =
      laws::per_core(static_cast<double>(config_.global_grid_cells), p) * imb;
  const double grid_bytes_per_rank = cells_per_rank * static_cast<double>(config_.cell_bytes);

  std::vector<KernelSpec> kernels;

  {
    // Boris push over the rank's particles: the dominant kernel, with
    // effectively random locality as particles decorrelate from memory order.
    KernelSpec k;
    k.block_id = kParticlePush;
    k.location = {"uh3d/push_ions.f90", 301, "particle_push"};
    k.pattern = Pattern::Random;
    k.visits = config_.timesteps;
    k.refs_per_visit =
        at_least_one(12.0 * particles_per_rank * jitter(config_, k.block_id, cores, 1));
    k.elem_bytes = 8;
    k.store_fraction = 0.42;
    k.footprint_bytes = at_least_one(particle_bytes_per_rank) + 4096;
    k.fp_per_visit = {18.0 * particles_per_rank, 12.0 * particles_per_rank,
                      9.0 * particles_per_rank, 1.0 * particles_per_rank};
    k.ilp = 3.0;
    k.dep_chain = 5.0;
    k.mem_instructions = 6;
    k.fp_instructions = 3;
    kernels.push_back(k);
  }
  {
    // E/B interpolation to particle positions: gather through the grid.
    KernelSpec k;
    k.block_id = kFieldInterpolate;
    k.location = {"uh3d/interp_fields.f90", 120, "field_interpolate"};
    k.pattern = Pattern::Gather;
    k.visits = config_.timesteps;
    k.refs_per_visit =
        at_least_one(8.0 * particles_per_rank * jitter(config_, k.block_id, cores, 2));
    k.elem_bytes = 8;
    k.store_fraction = 0.12;
    // The gather's irregular component lands in the *grid* fields (particle
    // position reads stream and stay in L1); footprint is grid-dominated.
    k.footprint_bytes = at_least_one(grid_bytes_per_rank) + 4096;
    k.fp_per_visit = {12.0 * particles_per_rank, 8.0 * particles_per_rank,
                      4.0 * particles_per_rank, 0.0};
    k.ilp = 2.5;
    k.dep_chain = 4.0;
    k.mem_instructions = 5;
    k.fp_instructions = 2;
    kernels.push_back(k);
  }
  {
    // Current/moment deposition: scatter with a high store fraction.
    KernelSpec k;
    k.block_id = kCurrentDeposit;
    k.location = {"uh3d/deposit_current.f90", 88, "current_deposit"};
    k.pattern = Pattern::Random;
    k.visits = config_.timesteps;
    k.refs_per_visit =
        at_least_one(6.0 * particles_per_rank * jitter(config_, k.block_id, cores, 3));
    k.elem_bytes = 8;
    k.store_fraction = 0.78;
    k.footprint_bytes = at_least_one(grid_bytes_per_rank) + 4096;
    k.fp_per_visit = {6.0 * particles_per_rank, 3.0 * particles_per_rank, 0.0, 0.0};
    k.ilp = 2.0;
    k.dep_chain = 3.0;
    k.mem_instructions = 4;
    k.fp_instructions = 2;
    kernels.push_back(k);
  }
  {
    // Fluid-electron field solve: iteration count grows ~log2(p) as the
    // subdomain aspect worsens solver conditioning — a log-growth element.
    KernelSpec k;
    k.block_id = kFieldSolve;
    k.location = {"uh3d/field_solve.f90", 240, "field_solve"};
    k.pattern = Pattern::Sequential;
    k.visits = at_least_one(t * laws::log_growth(5.0, 2.0, p) *
                            jitter(config_, k.block_id, cores, 4));
    k.refs_per_visit = at_least_one(4.0 * cells_per_rank);
    k.elem_bytes = 8;
    k.store_fraction = 0.35;
    k.footprint_bytes = at_least_one(grid_bytes_per_rank) + 4096;
    k.fp_per_visit = {5.0 * cells_per_rank, 3.0 * cells_per_rank, 2.0 * cells_per_rank, 0.0};
    k.ilp = 3.5;
    k.dep_chain = 4.0;
    k.mem_instructions = 4;
    k.fp_instructions = 2;
    kernels.push_back(k);
  }
  {
    // Periodic particle sort for locality: n·log2(n) over rank particles.
    KernelSpec k;
    k.block_id = kParticleSort;
    k.location = {"uh3d/sort_particles.f90", 45, "particle_sort"};
    k.pattern = Pattern::Strided;
    k.stride_elems = 16;
    k.visits = config_.timesteps / 5 + 1;
    const double n = particles_per_rank;
    k.refs_per_visit =
        at_least_one(n * std::log2(std::max(n, 2.0)) * 0.5 *
                     jitter(config_, k.block_id, cores, 5));
    k.elem_bytes = 8;
    k.store_fraction = 0.5;
    k.footprint_bytes = at_least_one(particle_bytes_per_rank) + 4096;
    k.fp_per_visit = {0.0, 0.0, 0.0, 0.0};
    k.ilp = 1.8;
    k.dep_chain = 2.5;
    k.mem_instructions = 3;
    k.fp_instructions = 0;
    kernels.push_back(k);
  }
  {
    // Staging of boundary-crossing particles: surface-law volume.
    KernelSpec k;
    k.block_id = kBoundaryParticles;
    k.location = {"uh3d/exchange_particles.f90", 160, "boundary_particles"};
    k.pattern = Pattern::Sequential;
    k.visits = config_.timesteps;
    const double crossing = laws::surface(static_cast<double>(config_.global_particles), p, 1.2);
    k.refs_per_visit = at_least_one(3.0 * crossing * jitter(config_, k.block_id, cores, 6));
    k.elem_bytes = 8;
    k.store_fraction = 0.5;
    k.footprint_bytes = at_least_one(crossing * 48.0) + 4096;
    k.fp_per_visit = {crossing, 0.0, 0.0, 0.0};
    k.ilp = 2.0;
    k.dep_chain = 2.0;
    k.mem_instructions = 2;
    k.fp_instructions = 1;
    kernels.push_back(k);
  }
  {
    // Diagnostics: fixed probes regardless of scale.
    KernelSpec k;
    k.block_id = kDiagnostics;
    k.location = {"uh3d/diagnostics.f90", 20, "diagnostics"};
    k.pattern = Pattern::Sequential;
    k.visits = config_.timesteps;
    k.refs_per_visit = at_least_one(1500.0 * jitter(config_, k.block_id, cores, 7));
    k.elem_bytes = 8;
    k.store_fraction = 0.25;
    k.footprint_bytes = 96u << 10;
    k.fp_per_visit = {3000.0, 1500.0, 0.0, 10.0};
    k.ilp = 2.2;
    k.dep_chain = 3.0;
    k.mem_instructions = 2;
    k.fp_instructions = 1;
    kernels.push_back(k);
  }

  for (KernelSpec& kernel : kernels) {
    if (config_.work_scale != 1.0) {
      kernel.refs_per_visit = at_least_one(
          static_cast<double>(kernel.refs_per_visit) * config_.work_scale);
      kernel.fp_per_visit.adds *= config_.work_scale;
      kernel.fp_per_visit.muls *= config_.work_scale;
      kernel.fp_per_visit.fmas *= config_.work_scale;
      kernel.fp_per_visit.divs *= config_.work_scale;
    }
    kernel.validate();
  }
  return kernels;
}

trace::CommTrace Uh3dApp::comm_trace(std::uint32_t cores, std::uint32_t rank) const {
  CommPattern pattern;
  pattern.timesteps = config_.timesteps;
  const double crossing = laws::surface(static_cast<double>(config_.global_particles),
                                        static_cast<double>(cores), 1.2);
  // work_scale folds many physical timesteps into each traced step (see
  // Specfem3dApp::comm_trace), so exchanged volumes aggregate with it.
  pattern.halo_bytes = at_least_one(crossing * static_cast<double>(config_.particle_bytes) *
                                    config_.work_scale);
  pattern.allreduce_every = 1;  // field solve needs a global dot product
  pattern.allreduce_bytes = at_least_one(64.0 * config_.work_scale);
  pattern.alltoall_every = 5;   // long-range moment redistribution
  pattern.alltoall_bytes = at_least_one(4096.0 * config_.work_scale);
  pattern.units_per_step = work_units(cores, rank) / static_cast<double>(config_.timesteps);
  return build_comm_trace(cores, rank, pattern);
}

}  // namespace pmacx::synth
