#include "ingest/ingest.hpp"

namespace pmacx::ingest {
namespace {

UploadManager::Options upload_options(const IngestService::Options& options) {
  UploadManager::Options out;
  out.root = options.root;
  out.stream_budget = options.stream_budget;
  return out;
}

RefitScheduler::Options refit_options(const IngestService::Options& options) {
  RefitScheduler::Options out;
  out.fit = options.fit;
  out.stream_budget = options.stream_budget;
  return out;
}

}  // namespace

IngestService::IngestService(Options options, util::ThreadPool* pool,
                             RefitScheduler::Publish publish)
    : uploads_(upload_options(options)),
      registry_(options.root),
      refits_(refit_options(options), &registry_, pool, std::move(publish)) {}

std::string IngestService::handle(const UploadRequest& request) {
  UploadOutcome outcome = uploads_.handle(request);
  if (outcome.committed) {
    registry_.add(outcome.collection, outcome.file_name, outcome.core_count);
    refits_.schedule(outcome.collection);
  }
  return std::move(outcome.body);
}

bool is_collection_ref(const std::string& path, std::string* name) {
  if (path.size() < 2 || path[0] != '@') return false;
  if (name != nullptr) *name = path.substr(1);
  return true;
}

}  // namespace pmacx::ingest
