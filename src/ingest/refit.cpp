#include "ingest/refit.hpp"

#include <chrono>
#include <vector>

#include "core/checkpoint.hpp"
#include "trace/stream_reader.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/metrics.hpp"

namespace pmacx::ingest {
namespace {

using Clock = std::chrono::steady_clock;

util::metrics::Registry& registry() { return util::metrics::Registry::global(); }

}  // namespace

RefitScheduler::RefitScheduler(Options options, const CollectionRegistry* registry,
                               util::ThreadPool* pool, Publish publish)
    : options_(std::move(options)),
      registry_(registry),
      pool_(pool),
      publish_(std::move(publish)) {
  PMACX_CHECK(registry_ != nullptr && pool_ != nullptr && publish_ != nullptr,
              "RefitScheduler needs a registry, a pool, and a publish hook");
  // Background refits must never borrow a request's pool pointer: the set
  // they produce is cached past any request's lifetime.
  options_.fit.pool = nullptr;
}

void RefitScheduler::schedule(const std::string& collection) {
  {
    std::scoped_lock lock(mutex_);
    State& state = states_[collection];
    if (state.running) {
      // Coalesce: a burst of commits costs one running + one follow-up
      // refit, and the follow-up sees every file the burst committed.
      state.dirty = true;
      return;
    }
    state.running = true;
  }
  registry().counter("ingest.refits.scheduled").add();
  pool_->submit([this, collection] { run(collection); });
}

std::uint64_t RefitScheduler::refits_completed() const {
  return registry().counter("ingest.refits").value();
}

void RefitScheduler::run(const std::string& collection) {
  try {
    const std::vector<std::string> paths = registry_->resolve(collection);
    if (paths.size() < 2) {
      // One trace cannot anchor a scaling fit; the collection becomes
      // fittable at its second committed core count.
      registry().counter("ingest.refits.deferred").add();
    } else {
      std::vector<trace::TaskTrace> inputs;
      inputs.reserve(paths.size());
      for (const std::string& path : paths)
        inputs.push_back(
            trace::stream_load(path, options_.stream_budget, /*force_buffered=*/true));

      const std::string digest = core::models_digest_for_files(paths, options_.fit);
      std::shared_ptr<const core::TaskModelSet> previous;
      {
        std::scoped_lock lock(mutex_);
        previous = states_[collection].previous;
      }

      core::IncrementalFitStats stats;
      auto models = std::make_shared<const core::TaskModelSet>(
          core::fit_task_models_incremental(inputs, options_.fit, previous.get(), &stats));

      // The swap itself: one shared_ptr store under the cache's mutex.
      // In-flight requests keep the set they already resolved; new requests
      // see the fresh digest's models immediately.
      const Clock::time_point swap_started = Clock::now();
      publish_(digest, models);
      const auto swap_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
          Clock::now() - swap_started);
      registry().histogram("ingest.swap_latency")
          .record(static_cast<std::uint64_t>(swap_ns.count()));

      {
        std::scoped_lock lock(mutex_);
        states_[collection].previous = models;
      }
      registry().counter("ingest.refits").add();
      registry().counter("ingest.refit.elements_reused").add(stats.elements_reused);
      registry().counter("ingest.refit.elements_refit").add(stats.elements_refit);
      registry().counter("ingest.refit.moments_extended").add(stats.moments_extended);
      if (stats.cold) registry().counter("ingest.refit.cold").add();
      PMACX_LOG_INFO << "ingest: refit " << collection << " -> " << digest << " ("
                     << stats.elements_reused << " reused, " << stats.elements_refit
                     << " refit of " << stats.elements_total << ")";
    }
  } catch (const util::Error& e) {
    // A failing refit never takes the serving path down: the previous set
    // keeps serving, the failure is metered, and the next commit retries.
    registry().counter("ingest.refit_failures").add();
    PMACX_LOG_WARN << "ingest: refit of '" << collection << "' failed: " << e.what();
  }

  bool rerun = false;
  {
    std::scoped_lock lock(mutex_);
    State& state = states_[collection];
    if (state.dirty) {
      state.dirty = false;
      rerun = true;  // keep `running` set: the follow-up task owns it now
    } else {
      state.running = false;
    }
  }
  if (rerun) pool_->submit([this, collection] { run(collection); });
}

}  // namespace pmacx::ingest
