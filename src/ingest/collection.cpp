#include "ingest/collection.hpp"

#include <dirent.h>

#include <algorithm>
#include <optional>
#include <sstream>

#include "util/atomic_file.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"
#include "util/strings.hpp"

namespace pmacx::ingest {
namespace {

constexpr const char* kManifestName = "manifest.pmx";

void publish_gauges(std::size_t collections, std::size_t files) {
  auto& registry = util::metrics::Registry::global();
  registry.gauge("ingest.collections").set(static_cast<double>(collections));
  registry.gauge("ingest.files").set(static_cast<double>(files));
}

}  // namespace

CollectionRegistry::CollectionRegistry(std::string root) : root_(std::move(root)) {
  util::ensure_directory(root_ + "/collections");
  load_existing();
}

std::string CollectionRegistry::collection_dir(const std::string& collection) const {
  return root_ + "/collections/" + collection;
}

void CollectionRegistry::load_existing() {
  const std::string base = root_ + "/collections";
  DIR* dir = ::opendir(base.c_str());
  if (dir == nullptr) return;
  std::scoped_lock lock(mutex_);
  std::size_t files = 0;
  while (dirent* entry = ::readdir(dir)) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    // A torn/missing manifest costs only re-registration, never an abort:
    // the collection simply starts empty until its next commit.
    const std::optional<std::string> manifest =
        util::try_load_checked(base + "/" + name + "/" + kManifestName);
    if (!manifest) continue;
    std::vector<Entry> entries;
    for (const std::string& line : util::split(*manifest, '\n')) {
      const std::string trimmed{util::trim(line)};
      if (trimmed.empty()) continue;
      std::istringstream in(trimmed);
      std::string keyword, file;
      std::uint32_t cores = 0;
      if (!(in >> keyword >> cores >> file) || keyword != "file") continue;
      entries.push_back(Entry{file, cores});
    }
    if (entries.empty()) continue;
    files += entries.size();
    collections_[name] = std::move(entries);
  }
  ::closedir(dir);
  publish_gauges(collections_.size(), files);
}

void CollectionRegistry::add(const std::string& collection, const std::string& file_name,
                             std::uint32_t core_count) {
  std::scoped_lock lock(mutex_);
  std::vector<Entry>& entries = collections_[collection];
  auto it = std::find_if(entries.begin(), entries.end(),
                         [&](const Entry& e) { return e.file == file_name; });
  if (it != entries.end()) {
    it->core_count = core_count;  // same-name replacement: content changed
  } else {
    entries.push_back(Entry{file_name, core_count});
  }
  save_manifest_locked(collection);
  std::size_t files = 0;
  for (const auto& [name, list] : collections_) files += list.size();
  publish_gauges(collections_.size(), files);
}

void CollectionRegistry::save_manifest_locked(const std::string& collection) {
  std::ostringstream out;
  for (const Entry& entry : collections_[collection])
    out << "file " << entry.core_count << ' ' << entry.file << "\n";
  util::save_checked(collection_dir(collection) + "/" + kManifestName, out.str());
}

std::vector<std::string> CollectionRegistry::resolve(const std::string& collection) const {
  std::scoped_lock lock(mutex_);
  auto it = collections_.find(collection);
  PMACX_CHECK(it != collections_.end() && !it->second.empty(),
              "unknown collection '" + collection + "' (nothing committed under it yet)");
  std::vector<Entry> entries = it->second;
  // Ascending core count is the order align_traces requires; the name
  // tiebreak keeps resolution deterministic should two files share a count
  // (the fit layer rejects that case with its own diagnostic).
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    if (a.core_count != b.core_count) return a.core_count < b.core_count;
    return a.file < b.file;
  });
  std::vector<std::string> paths;
  paths.reserve(entries.size());
  for (const Entry& entry : entries)
    paths.push_back(collection_dir(collection) + "/" + entry.file);
  return paths;
}

bool CollectionRegistry::contains(const std::string& collection) const {
  std::scoped_lock lock(mutex_);
  auto it = collections_.find(collection);
  return it != collections_.end() && !it->second.empty();
}

std::size_t CollectionRegistry::collection_count() const {
  std::scoped_lock lock(mutex_);
  return collections_.size();
}

std::size_t CollectionRegistry::file_count() const {
  std::scoped_lock lock(mutex_);
  std::size_t files = 0;
  for (const auto& [name, list] : collections_) files += list.size();
  return files;
}

}  // namespace pmacx::ingest
