#include "ingest/upload.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <sstream>

#include "trace/stream_reader.hpp"
#include "util/atomic_file.hpp"
#include "util/crc32.hpp"
#include "util/error.hpp"
#include "util/io.hpp"
#include "util/log.hpp"
#include "util/metrics.hpp"
#include "util/parse_error.hpp"

namespace pmacx::ingest {
namespace {

// Little-endian payload primitives, mirroring the RPC layer's conventions
// (the codec lives here so ingest never depends on service/).

void put_u32(std::string& out, std::uint32_t v) {
  char bytes[4];
  std::memcpy(bytes, &v, 4);
  out.append(bytes, 4);
}

void put_u64(std::string& out, std::uint64_t v) {
  char bytes[8];
  std::memcpy(bytes, &v, 8);
  out.append(bytes, 8);
}

void put_str(std::string& out, std::string_view s) {
  PMACX_CHECK(s.size() <= kMaxChunkBytes + 4096, "upload field exceeds frame capacity");
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

/// Bounds-checked reader over an UPLOAD_TRACE payload; violations raise
/// ParseError in the "upload.<field>" section, matching the RPC taxonomy.
class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  std::uint8_t u8(const char* field) {
    need(1, field);
    const auto v = static_cast<std::uint8_t>(bytes_[pos_]);
    pos_ += 1;
    return v;
  }
  std::uint32_t u32(const char* field) {
    need(4, field);
    std::uint32_t v;
    std::memcpy(&v, bytes_.data() + pos_, 4);
    pos_ += 4;
    return v;
  }
  std::uint64_t u64(const char* field) {
    need(8, field);
    std::uint64_t v;
    std::memcpy(&v, bytes_.data() + pos_, 8);
    pos_ += 8;
    return v;
  }
  std::string str(const char* field) {
    const std::uint32_t size = u32(field);
    need(size, field);
    std::string out(bytes_.substr(pos_, size));
    pos_ += size;
    return out;
  }
  void expect_end() {
    if (pos_ != bytes_.size()) fail("payload", "trailing bytes after last field");
  }

 private:
  void need(std::size_t count, const char* field) {
    if (bytes_.size() - pos_ < count)
      fail(field, "payload truncated (need " + std::to_string(count) + " more bytes)");
  }
  [[noreturn]] void fail(const std::string& field, const std::string& message) {
    throw util::ParseError("", pos_, "upload." + field, message);
  }

  std::string_view bytes_;
  std::size_t pos_ = 0;
};

/// Collection, file, and session names become path components under the
/// ingest root, so the charset is a strict allowlist — no separators, no
/// dot-dot, nothing a peer can use to escape the directory.
bool valid_name(std::string_view name) {
  if (name.empty() || name.size() > 200) return false;
  if (name == "." || name == "..") return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

void check_name(std::string_view name, const char* what) {
  PMACX_CHECK(valid_name(name),
              std::string(what) + " '" + std::string(name) +
                  "' is not a valid name ([A-Za-z0-9._-], 1..200 chars, not . or ..)");
}

/// Whole-spool CRC via the fault-injectable read wrapper; EINTR and short
/// reads are absorbed by io::pread_some's bounded loop.
std::uint32_t crc_of_fd(int fd, std::uint64_t total, const std::string& path) {
  std::vector<char> buffer(std::size_t{1} << 20);
  std::uint32_t crc = 0;
  std::uint64_t offset = 0;
  while (offset < total) {
    const std::size_t want =
        static_cast<std::size_t>(std::min<std::uint64_t>(buffer.size(), total - offset));
    const std::size_t n = util::io::pread_some(fd, buffer.data(), want, offset, path);
    PMACX_CHECK(n > 0, "spool read failed at offset " + std::to_string(offset) +
                           ": unexpected end of file");
    crc = util::crc32(std::string_view(buffer.data(), n), crc);
    offset += static_cast<std::uint64_t>(n);
  }
  return crc;
}

util::metrics::Registry& registry() { return util::metrics::Registry::global(); }

}  // namespace

std::string upload_op_name(UploadOp op) {
  switch (op) {
    case UploadOp::Begin: return "begin";
    case UploadOp::Chunk: return "chunk";
    case UploadOp::Commit: return "commit";
    case UploadOp::Status: return "status";
  }
  return "unknown";
}

std::string encode_upload_payload(const UploadRequest& request) {
  std::string payload;
  payload.push_back(static_cast<char>(request.op));
  put_str(payload, request.session);
  switch (request.op) {
    case UploadOp::Begin:
      put_str(payload, request.collection);
      put_str(payload, request.file_name);
      put_u64(payload, request.total_bytes);
      put_u32(payload, request.chunk_bytes);
      put_u32(payload, request.file_crc);
      break;
    case UploadOp::Chunk:
      put_u64(payload, request.chunk_index);
      put_str(payload, request.data);
      break;
    case UploadOp::Commit:
    case UploadOp::Status:
      break;  // session only
  }
  return payload;
}

UploadRequest decode_upload_payload(std::string_view payload) {
  Reader reader(payload);
  UploadRequest request;
  const std::uint8_t op = reader.u8("op");
  if (op < 1 || op > 4)
    throw util::ParseError("", 0, "upload.op", "unknown upload op " + std::to_string(op));
  request.op = static_cast<UploadOp>(op);
  request.session = reader.str("session");
  switch (request.op) {
    case UploadOp::Begin:
      request.collection = reader.str("collection");
      request.file_name = reader.str("file_name");
      request.total_bytes = reader.u64("total_bytes");
      request.chunk_bytes = reader.u32("chunk_bytes");
      request.file_crc = reader.u32("file_crc");
      break;
    case UploadOp::Chunk:
      request.chunk_index = reader.u64("chunk_index");
      request.data = reader.str("data");
      break;
    case UploadOp::Commit:
    case UploadOp::Status:
      break;
  }
  reader.expect_end();
  return request;
}

// ---------------------------------------------------------------------------
// UploadManager.

struct UploadManager::Session {
  std::mutex mutex;
  std::string id;
  std::string collection;
  std::string file_name;
  std::uint64_t total_bytes = 0;
  std::uint32_t chunk_bytes = 0;
  std::uint32_t file_crc = 0;
  std::uint64_t chunk_count = 0;
  std::vector<bool> received;       // guarded by mutex
  std::uint64_t received_count = 0;  // guarded by mutex
  int fd = -1;                       ///< spool fd; -1 once committed/discarded
  bool committed = false;
  bool discarded = false;
  std::string committed_path;
  std::uint32_t core_count = 0;

  std::uint64_t expected_size(std::uint64_t index) const {
    const std::uint64_t begin = index * chunk_bytes;
    return std::min<std::uint64_t>(chunk_bytes, total_bytes - begin);
  }

  /// Key-value progress lines shared by every op's response body.
  void render(std::ostringstream& out) const {
    out << "state " << (committed ? "committed" : "pending") << "\n"
        << "chunks " << chunk_count << "\n"
        << "received " << received_count << "\n";
    if (committed) out << "path " << committed_path << "\n"
                       << "core_count " << core_count << "\n";
  }
};

UploadManager::UploadManager(Options options) : options_(std::move(options)) {
  PMACX_CHECK(!options_.root.empty(), "UploadManager needs an ingest root directory");
  util::ensure_directory(options_.root);
  util::ensure_directory(options_.root + "/spool");
  util::ensure_directory(options_.root + "/collections");
  // Registered up front so every snapshot reports the read-only state (and
  // the rejection counter) even when nothing ever went wrong.
  registry().gauge("ingest.read_only").set(0.0);
  registry().counter("ingest.uploads.rejected_read_only");
}

UploadManager::~UploadManager() {
  std::scoped_lock lock(mutex_);
  for (auto& [id, session] : sessions_)
    if (session->fd >= 0) util::io::close_quiet(session->fd);
}

std::string UploadManager::spool_path(const std::string& session) const {
  return options_.root + "/spool/" + session + ".part";
}

std::string UploadManager::final_path(const std::string& collection,
                                      const std::string& file) const {
  return options_.root + "/collections/" + collection + "/" + file;
}

std::size_t UploadManager::open_sessions() const {
  std::scoped_lock lock(mutex_);
  std::size_t open = 0;
  for (const auto& [id, session] : sessions_)
    if (!session->committed) ++open;
  return open;
}

std::shared_ptr<UploadManager::Session> UploadManager::find(
    const std::string& session_id) const {
  std::scoped_lock lock(mutex_);
  auto it = sessions_.find(session_id);
  PMACX_CHECK(it != sessions_.end(),
              "unknown upload session '" + session_id + "' (send BEGIN first)");
  return it->second;
}

UploadOutcome UploadManager::handle(const UploadRequest& request) {
  check_name(request.session, "upload session");
  if (read_only() && request.op != UploadOp::Status) {
    // Degrade, don't crash-loop: a full spool device stops *ingestion*
    // while the serving path (and STATUS probes) keep working.  Rejection
    // happens before any disk touch so the error is cheap and typed.
    registry().counter("ingest.uploads.rejected_read_only").add();
    throw util::Error("ingest is read-only (spool device reported ENOSPC): " +
                      upload_op_name(request.op) +
                      " rejected; free space and restart the server "
                      "(STATUS and the serving path still work)");
  }
  try {
    switch (request.op) {
      case UploadOp::Begin: return begin(request);
      case UploadOp::Chunk: return chunk(request);
      case UploadOp::Commit: return commit(request);
      case UploadOp::Status: return status(request);
    }
  } catch (const util::io::IoError& e) {
    if (e.err() == ENOSPC) enter_read_only(e.what());
    throw;
  }
  throw util::Error("unhandled upload op");
}

void UploadManager::enter_read_only(const std::string& reason) {
  if (read_only_.exchange(true, std::memory_order_relaxed)) return;
  registry().gauge("ingest.read_only").set(1.0);
  util::log_message(util::LogLevel::Warn,
                    "ingest entering read-only mode (uploads rejected): " + reason);
}

UploadOutcome UploadManager::begin(const UploadRequest& request) {
  check_name(request.collection, "collection");
  check_name(request.file_name, "trace file name");
  PMACX_CHECK(request.total_bytes > 0, "upload declares zero bytes");
  PMACX_CHECK(request.total_bytes <= kMaxUploadBytes,
              "upload of " + std::to_string(request.total_bytes) + " bytes exceeds the " +
                  std::to_string(kMaxUploadBytes) + "-byte cap");
  PMACX_CHECK(request.chunk_bytes > 0 && request.chunk_bytes <= kMaxChunkBytes,
              "chunk size must be in [1, " + std::to_string(kMaxChunkBytes) + "] bytes");
  const std::uint64_t chunk_count =
      (request.total_bytes + request.chunk_bytes - 1) / request.chunk_bytes;
  PMACX_CHECK(chunk_count <= kMaxChunks,
              "upload needs " + std::to_string(chunk_count) + " chunks (cap " +
                  std::to_string(kMaxChunks) + "); use larger chunks");

  std::shared_ptr<Session> session;
  {
    std::scoped_lock lock(mutex_);
    auto it = sessions_.find(request.session);
    if (it != sessions_.end()) session = it->second;
  }

  if (session) {
    // Re-BEGIN: a retried frame or a resuming client.  Identical parameters
    // resume the session as-is (never truncating received chunks); anything
    // else is a conflict the client must resolve with a fresh session id.
    std::scoped_lock lock(session->mutex);
    PMACX_CHECK(session->collection == request.collection &&
                    session->file_name == request.file_name &&
                    session->total_bytes == request.total_bytes &&
                    session->chunk_bytes == request.chunk_bytes &&
                    session->file_crc == request.file_crc,
                "upload session '" + request.session +
                    "' already exists with different parameters");
    UploadOutcome outcome;
    std::ostringstream out;
    session->render(out);
    outcome.body = out.str();
    return outcome;
  }

  session = std::make_shared<Session>();
  session->id = request.session;
  session->collection = request.collection;
  session->file_name = request.file_name;
  session->total_bytes = request.total_bytes;
  session->chunk_bytes = request.chunk_bytes;
  session->file_crc = request.file_crc;
  session->chunk_count = chunk_count;
  session->received.assign(static_cast<std::size_t>(chunk_count), false);

  const std::string path = spool_path(request.session);
  const int fd = util::io::open_file(path, O_CREAT | O_RDWR | O_TRUNC, 0644);
  try {
    util::io::truncate_file(fd, request.total_bytes, path);
  } catch (...) {
    util::io::close_quiet(fd);
    util::io::unlink_quiet(path);
    throw;
  }
  session->fd = fd;

  {
    std::scoped_lock lock(mutex_);
    auto [it, inserted] = sessions_.emplace(request.session, session);
    if (!inserted) {
      // Lost a race with a concurrent identical BEGIN: keep the winner.
      util::io::close_quiet(fd);
      session = it->second;
    }
  }
  registry().counter("ingest.uploads.begun").add();

  UploadOutcome outcome;
  std::ostringstream out;
  {
    std::scoped_lock lock(session->mutex);
    session->render(out);
  }
  outcome.body = out.str();
  return outcome;
}

UploadOutcome UploadManager::chunk(const UploadRequest& request) {
  std::shared_ptr<Session> session = find(request.session);
  std::scoped_lock lock(session->mutex);
  UploadOutcome outcome;
  std::ostringstream out;
  if (session->committed) {
    // Post-commit CHUNK: a retried frame whose COMMIT already landed.
    session->render(out);
    outcome.body = out.str();
    return outcome;
  }
  PMACX_CHECK(!session->discarded, "upload session '" + request.session +
                                       "' was discarded after a failed commit; re-BEGIN");
  PMACX_CHECK(request.chunk_index < session->chunk_count,
              "chunk index " + std::to_string(request.chunk_index) + " out of range (" +
                  std::to_string(session->chunk_count) + " chunks)");
  const std::uint64_t expected = session->expected_size(request.chunk_index);
  PMACX_CHECK(request.data.size() == expected,
              "chunk " + std::to_string(request.chunk_index) + " carries " +
                  std::to_string(request.data.size()) + " bytes, expected " +
                  std::to_string(expected));

  if (session->received[static_cast<std::size_t>(request.chunk_index)]) {
    // Idempotent replay (session id + chunk index): the retry path resends
    // freely after a lost response, and the re-write is a no-op by content.
    registry().counter("ingest.chunks.duplicate").add();
    out << "duplicate 1\n";
  } else {
    util::io::pwrite_all(session->fd, request.data,
                         request.chunk_index * session->chunk_bytes,
                         spool_path(request.session));
    session->received[static_cast<std::size_t>(request.chunk_index)] = true;
    ++session->received_count;
    registry().counter("ingest.chunks").add();
    registry().counter("ingest.bytes").add(request.data.size());
  }
  session->render(out);
  outcome.body = out.str();
  return outcome;
}

UploadOutcome UploadManager::commit(const UploadRequest& request) {
  std::shared_ptr<Session> session = find(request.session);
  std::scoped_lock lock(session->mutex);
  UploadOutcome outcome;
  std::ostringstream out;
  if (session->committed) {
    // Idempotent re-COMMIT after a lost response.
    session->render(out);
    outcome.body = out.str();
    return outcome;
  }
  PMACX_CHECK(!session->discarded, "upload session '" + request.session +
                                       "' was discarded after a failed commit; re-BEGIN");
  PMACX_CHECK(session->received_count == session->chunk_count,
              "upload '" + request.session + "' is missing " +
                  std::to_string(session->chunk_count - session->received_count) +
                  " of " + std::to_string(session->chunk_count) +
                  " chunks (STATUS lists them)");

  const std::string spool = spool_path(request.session);
  const std::string path = final_path(session->collection, session->file_name);
  try {
    // Integrity first: the declared whole-file CRC over the spooled bytes
    // catches chunks damaged anywhere between the client's disk and ours.
    const std::uint32_t actual = crc_of_fd(session->fd, session->total_bytes, spool);
    if (actual != session->file_crc)
      throw util::ParseError(spool, 0, "upload.commit",
                             "file CRC mismatch (declared " +
                                 std::to_string(session->file_crc) + ", spooled " +
                                 std::to_string(actual) + ")");

    // Then a full streaming validation under the fixed buffer budget: the
    // serving path must never see a trace that would fail to load, and a
    // multi-GiB upload must not inflate server RSS to prove it.
    trace::TaskTrace header;
    std::unique_ptr<trace::ByteSource> source =
        trace::open_stream(spool, options_.stream_budget, /*force_buffered=*/true);
    const trace::StreamStats stats = trace::stream_validate(*source, &header);
    session->core_count = header.core_count;
    auto& peak = registry().gauge("ingest.validate.peak_buffer_bytes");
    peak.set(std::max(peak.value(), static_cast<double>(stats.peak_buffer_bytes)));

    // Publish: durable bytes, then the rename, then the directory entry.
    // These are inside the same try block as validation on purpose — a
    // failed fsync or torn rename discards the session, so the client's
    // recovery story is uniform: any COMMIT error means re-BEGIN fresh,
    // never a retry loop against a spool in an unknowable state.
    const std::string dir = options_.root + "/collections/" + session->collection;
    util::ensure_directory(dir);
    util::io::fsync_file(session->fd, spool);
    util::io::rename_file(spool, path);
    util::io::fsync_dir_best_effort(dir);
  } catch (...) {
    // A failed commit means the bytes are wrong (or the device is), not
    // late: discard the session (and its spool) so the client re-uploads
    // fresh instead of retrying a commit that can never succeed.
    util::io::close_quiet(session->fd);
    session->fd = -1;
    session->discarded = true;
    util::io::unlink_quiet(spool);
    registry().counter("ingest.uploads.discarded").add();
    {
      std::scoped_lock map_lock(mutex_);
      sessions_.erase(request.session);
    }
    throw;
  }
  util::io::close_quiet(session->fd);
  session->fd = -1;
  session->committed = true;
  session->committed_path = path;
  registry().counter("ingest.uploads.committed").add();

  outcome.committed = true;
  outcome.collection = session->collection;
  outcome.file_name = session->file_name;
  outcome.path = path;
  outcome.core_count = session->core_count;
  session->render(out);
  outcome.body = out.str();
  return outcome;
}

UploadOutcome UploadManager::status(const UploadRequest& request) {
  std::shared_ptr<Session> session;
  {
    std::scoped_lock lock(mutex_);
    auto it = sessions_.find(request.session);
    if (it != sessions_.end()) session = it->second;
  }
  UploadOutcome outcome;
  if (!session) {
    // Not an error: a resuming client probes before deciding to BEGIN.
    outcome.body = "state absent\n";
    return outcome;
  }
  std::scoped_lock lock(session->mutex);
  std::ostringstream out;
  session->render(out);
  if (!session->committed && session->received_count < session->chunk_count) {
    out << "missing";
    std::size_t listed = 0;
    for (std::uint64_t i = 0; i < session->chunk_count && listed < kStatusMissingCap; ++i) {
      if (session->received[static_cast<std::size_t>(i)]) continue;
      out << ' ' << i;
      ++listed;
    }
    out << "\n";
  }
  outcome.body = out.str();
  return outcome;
}

}  // namespace pmacx::ingest
