// Named trace collections — the unit live ingestion refits over.
//
// A collection is the server-side analogue of the trace list a client would
// pass to FIT: a named set of committed trace files at different core
// counts, living under <ingest_root>/collections/<name>/.  Requests address
// one with the single pseudo-path "@<name>" in their fit spec; the server
// expands it to the collection's real paths sorted by ascending core count
// (the order align_traces requires), so every existing request type works
// over uploaded data unchanged.
//
// Membership is durable: each collection keeps a manifest
// (util::save_checked — CRC-trailed, atomically replaced) naming its files
// and their core counts, reloaded at startup, so a restarted server serves
// everything previously committed.  A torn or missing manifest costs only
// re-registration (the next commit rewrites it); committed trace files are
// never lost to manifest damage.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace pmacx::ingest {

class CollectionRegistry {
 public:
  /// `root` is the ingest root (collections live under root/collections).
  /// Scans existing manifests so a restart resumes with prior membership.
  explicit CollectionRegistry(std::string root);

  /// Registers (or re-registers, after a same-name replacement) one
  /// committed file and rewrites the collection's manifest.
  void add(const std::string& collection, const std::string& file_name,
           std::uint32_t core_count);

  /// Full paths of the collection's files, sorted by (core count, name).
  /// Throws util::Error for an unknown collection.
  std::vector<std::string> resolve(const std::string& collection) const;

  /// True when the collection exists (has at least one committed file).
  bool contains(const std::string& collection) const;

  std::size_t collection_count() const;
  std::size_t file_count() const;

 private:
  struct Entry {
    std::string file;
    std::uint32_t core_count = 0;
  };

  std::string collection_dir(const std::string& collection) const;
  void save_manifest_locked(const std::string& collection);
  void load_existing();

  std::string root_;
  mutable std::mutex mutex_;
  std::map<std::string, std::vector<Entry>> collections_;  // guarded by mutex_
};

}  // namespace pmacx::ingest
