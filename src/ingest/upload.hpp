// UPLOAD_TRACE wire grammar and the chunked-upload session manager.
//
// Live ingestion moves traces *into* a running server, so the transfer path
// has to survive everything the serving path already survives: lost
// responses, duplicated frames, client restarts, kill -9 mid-transfer.  The
// design is a resumable chunk protocol keyed by a client-chosen session id:
//
//   BEGIN   declares (session, collection, file name, total bytes, chunk
//           size, whole-file CRC-32) and allocates a spool file;
//   CHUNK   carries one chunk by index — writes are positioned, so chunks
//           may arrive in any order, and a re-sent chunk is a no-op
//           (pmacx-rpc-v1's retry path resends freely: session id + chunk
//           index make every CHUNK idempotent);
//   STATUS  reports the received-chunk bitmap, so a resuming client sends
//           only what is missing;
//   COMMIT  verifies completeness, the declared CRC over the spooled bytes,
//           and a full streaming validation (trace::stream_validate under a
//           fixed buffer budget — a multi-GiB upload never inflates server
//           RSS), then atomically renames the file into its collection.
//
// Nothing is visible to the serving path until COMMIT's rename: a torn
// upload leaves only a spool file the next BEGIN truncates.  Every op is
// idempotent after commit, so a client that lost the COMMIT response can
// simply re-send it.  The payload codec lives here (not in service/) so the
// ingest layer has no dependency on the RPC layer; protocol.cpp delegates
// the UPLOAD_TRACE payload to these functions.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace pmacx::ingest {

/// Chunk payload ceiling (8 MiB): comfortably inside the RPC layer's 64 MiB
/// frame cap with headroom for the fixed fields.
inline constexpr std::size_t kMaxChunkBytes = 8u << 20;
/// Per-upload size ceiling (64 GiB): bounds what a hostile BEGIN can make
/// the spool directory allocate.
inline constexpr std::uint64_t kMaxUploadBytes = std::uint64_t{64} << 30;
/// Chunk-count ceiling: bounds the received bitmap a BEGIN allocates.
inline constexpr std::uint64_t kMaxChunks = std::uint64_t{1} << 20;
/// Most missing-chunk indices one STATUS response lists; a resuming client
/// re-queries after draining a full batch.
inline constexpr std::size_t kStatusMissingCap = 8192;

enum class UploadOp : std::uint8_t {
  Begin = 1,   ///< declare the upload and allocate its spool file
  Chunk = 2,   ///< one positioned chunk (idempotent by session + index)
  Commit = 3,  ///< verify completeness + CRC + validation, publish the file
  Status = 4,  ///< report progress and the missing-chunk list (resume)
};

/// Stable name ("begin", "chunk", ...) for metrics and error messages.
std::string upload_op_name(UploadOp op);

/// One decoded UPLOAD_TRACE request.  `op` says which fields are
/// meaningful: the declaration fields for BEGIN, chunk_index/data for
/// CHUNK, only `session` for COMMIT and STATUS.
struct UploadRequest {
  UploadOp op = UploadOp::Status;
  /// Client-chosen idempotency key for the whole upload.  Deterministic
  /// choices (pmacx_upload derives it from the file content CRC + size)
  /// make retries — even across client restarts — converge on one session.
  std::string session;
  std::string collection;         ///< BEGIN: target collection name
  std::string file_name;          ///< BEGIN: name within the collection
  std::uint64_t total_bytes = 0;  ///< BEGIN: exact file size
  std::uint32_t chunk_bytes = 0;  ///< BEGIN: chunk size (last chunk may be short)
  std::uint32_t file_crc = 0;     ///< BEGIN: CRC-32 of the whole file
  std::uint64_t chunk_index = 0;  ///< CHUNK: position = chunk_index * chunk_bytes
  std::string data;               ///< CHUNK: the chunk's bytes
};

/// Serializes an UploadRequest into an RPC payload (docs/FORMATS.md holds
/// the normative layout).  Throws util::Error on oversized fields.
std::string encode_upload_payload(const UploadRequest& request);
/// Decodes an UPLOAD_TRACE payload; throws util::ParseError (section
/// "upload.<field>") on truncation, bad op codes, or trailing bytes.
UploadRequest decode_upload_payload(std::string_view payload);

/// What one handled upload op did.  `committed` is true exactly once per
/// upload — on the COMMIT that performed the rename — so the caller knows
/// when to register the file and schedule a refit.
struct UploadOutcome {
  bool committed = false;
  std::string collection;      ///< set when committed
  std::string file_name;       ///< set when committed
  std::string path;            ///< committed file's final path
  std::uint32_t core_count = 0;  ///< from the validated trace header
  std::string body;            ///< response text for the client
};

/// The session/spool half of ingestion.  Thread-safe: the map is guarded by
/// one mutex, per-session work (chunk writes, the COMMIT scan) by a
/// per-session mutex, so a slow COMMIT never blocks other uploads.
class UploadManager {
 public:
  struct Options {
    std::string root;  ///< ingest root; spool/ and collections/ live under it
    /// Buffer budget for the COMMIT validation scan (trace::open_stream
    /// with force_buffered — mapped pages would count against RSS caps).
    std::size_t stream_budget = std::size_t{64} << 20;
  };

  explicit UploadManager(Options options);
  ~UploadManager();

  UploadManager(const UploadManager&) = delete;
  UploadManager& operator=(const UploadManager&) = delete;

  /// Handles one op.  Throws util::Error on protocol violations (unknown
  /// session, size mismatch, parameter conflicts) and util::ParseError when
  /// COMMIT's validation rejects the spooled bytes; both leave the session
  /// resumable (or, for validation failures, discarded — see .cpp).
  /// A util::io::IoError carrying ENOSPC flips the manager into read-only
  /// mode before rethrowing (see read_only()).
  UploadOutcome handle(const UploadRequest& request);

  /// Live (uncommitted) sessions, for STATUS reporting.
  std::size_t open_sessions() const;

  /// True once the spool device reported ENOSPC.  In read-only mode every
  /// BEGIN/CHUNK/COMMIT is rejected up front with a typed util::Error —
  /// before touching the disk — while STATUS (and the whole serving path,
  /// which lives elsewhere) keeps working.  Cleared only by restarting the
  /// process after the operator frees space (docs/RUNBOOK.md).
  bool read_only() const { return read_only_.load(std::memory_order_relaxed); }

 private:
  struct Session;

  std::string spool_path(const std::string& session) const;
  std::string final_path(const std::string& collection, const std::string& file) const;

  UploadOutcome begin(const UploadRequest& request);
  UploadOutcome chunk(const UploadRequest& request);
  UploadOutcome commit(const UploadRequest& request);
  UploadOutcome status(const UploadRequest& request);

  /// Looks up a session or throws; returns a stable pointer (sessions are
  /// heap-allocated and never destroyed while referenced — see .cpp).
  std::shared_ptr<Session> find(const std::string& session_id) const;

  /// Flips read_only_ and meters the transition (ingest.read_only gauge).
  void enter_read_only(const std::string& reason);

  Options options_;
  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::shared_ptr<Session>> sessions_;
  std::atomic<bool> read_only_{false};
};

}  // namespace pmacx::ingest
