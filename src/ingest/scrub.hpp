// ingest::Scrub — startup self-healing for durable state.
//
// A node that crashed mid-write (or suffered a torn rename, a lying fsync,
// a half-committed upload) must return to a serving state by itself: no
// operator, no manual rm, no crash loop on a corrupt file.  The scrubber is
// that path.  It runs before the ingest subsystem (pmacx_serve
// --scrub-on-start) and walks the two kinds of durable state:
//
//   ingest root    spool/*.part sessions (dead by definition after a
//                  restart — the protocol re-uploads), stray *.tmp.* files
//                  from interrupted atomic writes, collection trace files
//                  (each fully stream-validated), and the per-collection
//                  manifest.pmx.
//
//   checkpoint dir pmacx-ckpt-v2 manifest + models_*.ckpt chunks (derived
//                  data: anything torn is deleted and simply re-fit).
//
// Damage policy: *source* data (uploaded traces) is never destroyed —
// corrupt files move to <root>/quarantine/<collection>/<file> and are
// recorded in <root>/quarantine/MANIFEST so an operator can post-mortem
// them; manifests are rewritten to exactly the validated survivor set (a
// valid published file whose manifest entry was lost to a crash is
// re-registered, a quarantined file's entry is dropped).  *Derived* data
// (checkpoint chunks, spool temps) is deleted outright.
//
// Every action is metered under ingest.scrub.* (docs/OBSERVABILITY.md) and
// every destructive step goes through util::io, so the scrubber itself is
// exercised — and may crash and re-run — under the diskchaos sweep.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace pmacx::ingest {

struct ScrubOptions {
  std::string root;  ///< ingest root (spool/, collections/, quarantine/)
  /// Buffer budget for the per-file streaming validation (same meaning as
  /// UploadManager::Options::stream_budget).
  std::size_t stream_budget = std::size_t{64} << 20;
};

/// What one scrub pass found and did.  Counts mirror the ingest.scrub.*
/// counters; notes carry one human line per action for the startup log.
struct ScrubReport {
  std::size_t stale_temps = 0;      ///< spool parts + *.tmp.* deleted
  std::size_t quarantined = 0;      ///< corrupt files moved to quarantine/
  std::size_t manifest_dropped = 0; ///< manifest entries dropped or re-added
  std::size_t files_ok = 0;         ///< collection files that validated clean
  std::size_t chunks_dropped = 0;   ///< torn checkpoint chunks/manifests deleted
  std::vector<std::string> notes;

  /// "scrub: N temps, N quarantined, ..." one-liner for banners.
  std::string summary() const;
  /// Anything at all repaired/removed (false = the state was pristine).
  bool acted() const {
    return stale_temps + quarantined + manifest_dropped + chunks_dropped > 0;
  }
};

/// Scrubs an ingest root (see file header for policy).  Throws util::Error
/// only for environmental failures (root exists but is a file, quarantine
/// directory uncreatable); per-file damage is handled, not thrown.
ScrubReport scrub_ingest_root(const ScrubOptions& options);

/// Scrubs a pmacx-ckpt-v2 checkpoint directory: deletes *.tmp.* temps and
/// any manifest/chunk that fails its integrity trailer.  A missing or
/// freshly-emptied directory is fine (the next fit rebuilds it).
ScrubReport scrub_checkpoint_dir(const std::string& dir);

}  // namespace pmacx::ingest
