#include "ingest/scrub.hpp"

#include <fcntl.h>

#include <algorithm>
#include <filesystem>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <vector>

#include "trace/stream_reader.hpp"
#include "util/atomic_file.hpp"
#include "util/error.hpp"
#include "util/io.hpp"
#include "util/metrics.hpp"
#include "util/strings.hpp"

namespace pmacx::ingest {
namespace {

namespace fs = std::filesystem;

constexpr const char* kManifestName = "manifest.pmx";

/// Interrupted write_file_atomic temps ("<name>.tmp.<pid>") and upload
/// spool parts: both are garbage the moment the process that made them is
/// gone.
bool is_stale_temp(const std::string& name) {
  if (name.size() > 5 && name.substr(name.size() - 5) == ".part") return true;
  return name.find(".tmp.") != std::string::npos;
}

/// One line, no newlines, bounded — quarantine MANIFEST entries must stay
/// greppable however mangled the triggering error text was.
std::string one_line(std::string text) {
  std::replace(text.begin(), text.end(), '\n', ' ');
  if (text.size() > 300) text = text.substr(0, 300) + "...";
  return text;
}

struct ScrubCounters {
  util::metrics::Registry& reg = util::metrics::Registry::global();
  util::metrics::Counter& runs = reg.counter("ingest.scrub.runs");
  util::metrics::Counter& stale_temps = reg.counter("ingest.scrub.stale_temps");
  util::metrics::Counter& quarantined = reg.counter("ingest.scrub.quarantined");
  util::metrics::Counter& manifest_dropped = reg.counter("ingest.scrub.manifest_dropped");
  util::metrics::Counter& files_ok = reg.counter("ingest.scrub.files_ok");
  util::metrics::Counter& chunks_dropped = reg.counter("ingest.scrub.chunks_dropped");
};

ScrubCounters& counters() {
  static ScrubCounters c;
  return c;
}

/// Moves a damaged file under <root>/quarantine/<collection>/ and appends
/// a MANIFEST line describing why.  The move is a same-filesystem rename,
/// so source bytes are preserved exactly for post-mortem.
void quarantine_file(const std::string& root, const std::string& collection,
                     const std::string& file, const std::string& src,
                     const std::string& reason, ScrubReport& report) {
  const std::string qdir = root + "/quarantine/" + collection;
  util::ensure_directory(qdir);
  util::io::rename_file(src, qdir + "/" + file);
  const std::string line = collection + "/" + file + " " + one_line(reason) + "\n";
  const int fd = util::io::open_file(root + "/quarantine/MANIFEST",
                                     O_WRONLY | O_CREAT | O_APPEND, 0644);
  try {
    util::io::write_all(fd, line, root + "/quarantine/MANIFEST");
  } catch (...) {
    util::io::close_quiet(fd);
    throw;
  }
  util::io::close_quiet(fd);
  ++report.quarantined;
  counters().quarantined.add();
  report.notes.push_back("quarantined " + collection + "/" + file + ": " +
                         one_line(reason));
}

void drop_stale_temp(const std::string& path, ScrubReport& report) {
  if (!util::io::unlink_quiet(path)) return;
  ++report.stale_temps;
  counters().stale_temps.add();
  report.notes.push_back("deleted stale temp " + path);
}

/// Full streaming validation (the COMMIT-path check, reapplied at rest).
/// Returns the trace's core count, or nullopt with the failure reason.
std::optional<std::uint32_t> validate_trace(const std::string& path,
                                            std::size_t budget, std::string* reason) {
  try {
    trace::TaskTrace header;
    std::unique_ptr<trace::ByteSource> source =
        trace::open_stream(path, budget, /*force_buffered=*/true);
    trace::stream_validate(*source, &header);
    return header.core_count;
  } catch (const util::io::SimulatedCrash&) {
    throw;  // the injector's crash model must never read as "corrupt file"
  } catch (const util::Error& e) {
    if (reason != nullptr) *reason = e.what();
    return std::nullopt;
  }
}

/// Parses a collection manifest payload into name -> core_count (the same
/// grammar CollectionRegistry::load_existing accepts).
std::map<std::string, std::uint32_t> parse_manifest(const std::string& payload) {
  std::map<std::string, std::uint32_t> entries;
  for (const std::string& line : util::split(payload, '\n')) {
    const std::string trimmed{util::trim(line)};
    if (trimmed.empty()) continue;
    std::istringstream in(trimmed);
    std::string keyword, file;
    std::uint32_t cores = 0;
    if (!(in >> keyword >> cores >> file) || keyword != "file") continue;
    entries[file] = cores;
  }
  return entries;
}

void scrub_collection(const ScrubOptions& options, const std::string& collection,
                      ScrubReport& report) {
  const std::string dir = options.root + "/collections/" + collection;
  const std::string manifest_path = dir + "/" + kManifestName;

  // Load (or fail to load) the manifest before touching files, so "the
  // manifest itself is torn" is distinguishable from "entries went stale".
  const std::optional<std::string> manifest_payload =
      util::try_load_checked(manifest_path);
  std::error_code ec;
  const bool manifest_exists = fs::exists(manifest_path, ec);
  std::map<std::string, std::uint32_t> listed;
  if (manifest_payload) listed = parse_manifest(*manifest_payload);

  // Validate every regular file; quarantine the damaged, keep the clean.
  std::map<std::string, std::uint32_t> validated;
  std::vector<std::string> names;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    names.push_back(entry.path().filename().string());
  }
  std::sort(names.begin(), names.end());  // deterministic order for notes/tests
  for (const std::string& name : names) {
    if (name == kManifestName) continue;
    const std::string path = dir + "/" + name;
    if (is_stale_temp(name)) {
      drop_stale_temp(path, report);
      continue;
    }
    std::string reason;
    if (const std::optional<std::uint32_t> cores =
            validate_trace(path, options.stream_budget, &reason)) {
      validated[name] = *cores;
      ++report.files_ok;
      counters().files_ok.add();
    } else {
      quarantine_file(options.root, collection, name, path, reason, report);
    }
  }

  // Heal the manifest to exactly the validated survivor set: entries whose
  // file is gone/quarantined are dropped, valid files a crash left
  // unregistered are re-added (with the core count the validation just
  // proved), and a torn manifest is quarantined before the rewrite.
  std::size_t repairs = 0;
  for (const auto& [name, cores] : listed) {
    auto it = validated.find(name);
    if (it == validated.end() || it->second != cores) ++repairs;
  }
  for (const auto& [name, cores] : validated)
    if (listed.find(name) == listed.end()) ++repairs;

  if (manifest_exists && !manifest_payload) {
    quarantine_file(options.root, collection, kManifestName, manifest_path,
                    "manifest failed its integrity trailer", report);
    if (repairs == 0 && !validated.empty()) repairs = validated.size();
  }

  if (repairs > 0 || (manifest_exists && !manifest_payload)) {
    report.manifest_dropped += repairs;
    counters().manifest_dropped.add(repairs);
    if (validated.empty()) {
      if (manifest_payload) {
        // Every file is gone: remove the manifest so the registry treats
        // the collection as never-registered instead of serving ghosts.
        if (util::io::unlink_quiet(manifest_path))
          report.notes.push_back("removed empty manifest for collection '" +
                                 collection + "'");
      }
    } else {
      std::ostringstream out;
      for (const auto& [name, cores] : validated)
        out << "file " << cores << ' ' << name << "\n";
      util::save_checked(manifest_path, out.str());
      report.notes.push_back("rewrote manifest for collection '" + collection +
                             "' (" + std::to_string(validated.size()) +
                             " validated files, " + std::to_string(repairs) +
                             " entries repaired)");
    }
  }
}

}  // namespace

std::string ScrubReport::summary() const {
  std::ostringstream out;
  out << "scrub: " << stale_temps << " stale temps, " << quarantined
      << " quarantined, " << manifest_dropped << " manifest entries repaired, "
      << chunks_dropped << " checkpoint files dropped, " << files_ok
      << " files clean";
  return out.str();
}

ScrubReport scrub_ingest_root(const ScrubOptions& options) {
  PMACX_CHECK(!options.root.empty(), "scrub needs an ingest root directory");
  ScrubReport report;
  counters().runs.add();
  util::ensure_directory(options.root);
  util::ensure_directory(options.root + "/spool");
  util::ensure_directory(options.root + "/collections");

  // Spool: every file is a session that died with its process — the
  // protocol's answer to an interrupted upload is re-BEGIN, never resume
  // from a spool of unknown integrity.
  std::error_code ec;
  std::vector<std::string> spool_names;
  for (const auto& entry : fs::directory_iterator(options.root + "/spool", ec))
    if (entry.is_regular_file(ec))
      spool_names.push_back(entry.path().filename().string());
  std::sort(spool_names.begin(), spool_names.end());
  for (const std::string& name : spool_names)
    drop_stale_temp(options.root + "/spool/" + name, report);

  // Collections: stray temps in the base directory, then each collection.
  std::vector<std::string> collections;
  for (const auto& entry : fs::directory_iterator(options.root + "/collections", ec)) {
    const std::string name = entry.path().filename().string();
    if (entry.is_directory(ec)) {
      collections.push_back(name);
    } else if (is_stale_temp(name)) {
      drop_stale_temp(entry.path().string(), report);
    }
  }
  std::sort(collections.begin(), collections.end());
  for (const std::string& collection : collections)
    scrub_collection(options, collection, report);
  return report;
}

ScrubReport scrub_checkpoint_dir(const std::string& dir) {
  ScrubReport report;
  counters().runs.add();
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) return report;  // nothing to heal

  std::vector<std::string> names;
  for (const auto& entry : fs::directory_iterator(dir, ec))
    if (entry.is_regular_file(ec))
      names.push_back(entry.path().filename().string());
  std::sort(names.begin(), names.end());

  for (const std::string& name : names) {
    const std::string path = dir + "/" + name;
    if (is_stale_temp(name)) {
      drop_stale_temp(path, report);
      continue;
    }
    const bool is_manifest = name == "manifest.ckpt";
    const bool is_chunk = name.rfind("models_", 0) == 0 && name.size() > 5 &&
                          name.substr(name.size() - 5) == ".ckpt";
    if (!is_manifest && !is_chunk) continue;
    // Checkpoints are derived data: anything that fails its trailer is
    // deleted, and the next fit simply redoes that range (ModelCheckpoint
    // would drop it lazily anyway; eagerly keeps the directory honest).
    if (util::try_load_checked(path)) {
      ++report.files_ok;
      counters().files_ok.add();
      continue;
    }
    if (util::io::unlink_quiet(path)) {
      ++report.chunks_dropped;
      counters().chunks_dropped.add();
      report.notes.push_back("dropped torn checkpoint file " + path);
    }
  }
  return report;
}

}  // namespace pmacx::ingest
