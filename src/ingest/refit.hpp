// Background incremental refitting of ingested collections.
//
// Every committed upload extends a collection's input series, so its fitted
// model set is stale the moment COMMIT returns.  The RefitScheduler closes
// that gap off the request path: commits *schedule* a refit on the server's
// shared thread pool, the refit runs core::fit_task_models_incremental
// against the collection's previous set (bit-copying unchanged elements,
// extending sufficient statistics, refitting only what changed), and the
// finished set is handed to a publish hook that atomically swaps it into
// the serving cache under its content digest.  In-flight requests keep the
// shared_ptr they already resolved — the swap drops a reference, never a
// response.
//
// Scheduling is per-collection, deduplicated, and serialized: while a refit
// for collection C runs, further commits to C set a dirty bit instead of
// queueing (a burst of N uploads costs at most one running + one follow-up
// refit), and two refits for the same collection never run concurrently —
// which is what makes the previous-set handoff race-free.  Distinct
// collections refit in parallel, bounded by the pool.
//
// The publish hook keeps this layer free of any service/ dependency: the
// server wires it to ModelStore::insert_models, tests wire it to a vector.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/incremental.hpp"
#include "ingest/collection.hpp"
#include "util/threadpool.hpp"

namespace pmacx::ingest {

class RefitScheduler {
 public:
  /// Receives each finished model set under its models_digest.  Called from
  /// pool threads; must be thread-safe (ModelStore::insert_models is).
  using Publish =
      std::function<void(const std::string& digest,
                         std::shared_ptr<const core::TaskModelSet> models)>;

  struct Options {
    /// Fitting policy for background refits.  Requests that ask for the
    /// same policy hit the published set by digest; any other policy cold-
    /// fits on demand through the ordinary cache path.
    core::ExtrapolationOptions fit;
    /// Buffer budget for streaming the collection's traces back in.
    std::size_t stream_budget = std::size_t{64} << 20;
  };

  /// `registry` and `pool` must outlive the scheduler, and the pool must be
  /// drained (or its queue cancelled) before the scheduler is destroyed —
  /// the server's shutdown sequence guarantees both.
  RefitScheduler(Options options, const CollectionRegistry* registry,
                 util::ThreadPool* pool, Publish publish);

  RefitScheduler(const RefitScheduler&) = delete;
  RefitScheduler& operator=(const RefitScheduler&) = delete;

  /// Requests a refit of `collection`.  Returns immediately; dedupes
  /// against a pending refit and serializes against a running one.
  void schedule(const std::string& collection);

  /// Completed refits (all collections).  The soak gate's counter.
  std::uint64_t refits_completed() const;

 private:
  struct State {
    bool running = false;  ///< a refit task for this collection is live
    bool dirty = false;    ///< re-run once the live task finishes
    /// The set the next refit extends; null until the first publish.
    std::shared_ptr<const core::TaskModelSet> previous;
  };

  void run(const std::string& collection);

  Options options_;
  const CollectionRegistry* registry_;
  util::ThreadPool* pool_;
  Publish publish_;
  std::mutex mutex_;
  std::unordered_map<std::string, State> states_;  // guarded by mutex_
};

}  // namespace pmacx::ingest
