// pmacx::ingest — the live ingestion subsystem, assembled.
//
// IngestService ties the three halves together behind one entry point the
// server calls per UPLOAD_TRACE request:
//
//   UploadManager       chunked, resumable, CRC-checked transfer + spool
//   CollectionRegistry  durable membership + "@collection" resolution
//   RefitScheduler      background incremental refits + atomic swap
//
// A COMMIT that lands flows through all three in order: the manager
// publishes the file, the registry records it (manifest rewrite), and the
// scheduler queues the collection's refit on the server's pool.  Everything
// else is a pass-through.  The subsystem deliberately knows nothing about
// the RPC layer: the server decodes UploadRequests and supplies the publish
// hook; tests drive IngestService directly.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ingest/collection.hpp"
#include "ingest/refit.hpp"
#include "ingest/upload.hpp"

namespace pmacx::ingest {

class IngestService {
 public:
  struct Options {
    std::string root;  ///< ingest directory (spool/ + collections/ under it)
    /// Buffer budget for commit validation and refit trace reloads.
    std::size_t stream_budget = std::size_t{64} << 20;
    /// Fitting policy for background refits (see RefitScheduler::Options).
    core::ExtrapolationOptions fit;
  };

  /// `pool` must outlive the service and be drained before destruction
  /// (Server's shutdown order guarantees it); `publish` receives each
  /// refit's model set (ModelStore::insert_models on the server).
  IngestService(Options options, util::ThreadPool* pool, RefitScheduler::Publish publish);

  IngestService(const IngestService&) = delete;
  IngestService& operator=(const IngestService&) = delete;

  /// Handles one upload op; returns the response body text.  A committing
  /// request registers the file and schedules the collection's refit before
  /// returning.  Throws util::Error / util::ParseError per UploadManager.
  std::string handle(const UploadRequest& request);

  /// Expands the "@name" pseudo-path to the collection's trace paths
  /// (ascending core count).  Throws util::Error for unknown collections.
  std::vector<std::string> resolve(const std::string& collection) const {
    return registry_.resolve(collection);
  }

  const CollectionRegistry& registry() const { return registry_; }
  const UploadManager& uploads() const { return uploads_; }
  RefitScheduler& refits() { return refits_; }

 private:
  UploadManager uploads_;
  CollectionRegistry registry_;
  RefitScheduler refits_;
};

/// True when `path` is a collection reference ("@name"); `name` receives
/// the bare collection name.
bool is_collection_ref(const std::string& path, std::string* name = nullptr);

}  // namespace pmacx::ingest
