// Network chaos proxy for hardening tests.
//
// A ChaosProxy sits between a pmacx-rpc-v1 client and a live pmacx_serve,
// forwarding raw bytes in both directions while injecting the failure modes
// a real network (or a hostile peer) produces:
//
//   * partial writes   — a forwarded chunk is split into several tiny sends
//   * short reads      — the proxy drains the socket a few bytes at a time,
//                        so the peer sees maximally fragmented frames
//   * delayed frames   — a chunk sits in the proxy before being forwarded
//   * duplicated frames— a chunk is forwarded twice (stream corruption; the
//                        receiver must answer ParseError, not crash)
//   * slow-loris       — bytes trickle through one at a time with a delay
//   * mid-frame cut    — only a prefix of a chunk is forwarded, then the
//                        connection is closed (torn frame)
//   * connection reset — SO_LINGER(0) + close, so both sides see a hard RST
//
// Every decision draws from a util::Rng seeded hierarchically from
// ChaosOptions::seed (per connection, per direction), so a failing seed
// replays the exact same fault schedule.  The proxy itself is held to the
// same robustness bar as the server: bounded bookkeeping (finished relays
// are reaped), no leaked fds, stop()/wait() idempotent.
//
// This is a test harness, linked into pmacx_chaos and the robustness tests;
// production clients connect to the server directly.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace pmacx::service {

struct ChaosOptions {
  std::string bind = "127.0.0.1";  ///< address the proxy listens on
  std::uint16_t port = 0;          ///< 0 = pick an ephemeral port
  std::string upstream_host = "127.0.0.1";
  std::uint16_t upstream_port = 0;  ///< the real server
  std::uint64_t seed = 1;           ///< root of the per-connection fault schedule

  // Per-chunk fault probabilities.  Terminal faults (reset, mid-frame cut)
  // are drawn first; the rest degrade delivery without ending the relay.
  double p_reset = 0.02;      ///< hard RST to both sides
  double p_cut = 0.02;        ///< forward a prefix, then close (torn frame)
  double p_delay = 0.15;      ///< hold the chunk before forwarding
  double p_duplicate = 0.03;  ///< forward the chunk twice
  double p_trickle = 0.05;    ///< 1-byte writes with a per-byte delay
  double p_partial = 0.25;    ///< split the chunk into small writes
  double p_short_read = 0.25; ///< drain the socket a few bytes at a time

  std::uint64_t max_delay_ms = 40;     ///< delayed-frame hold, uniform [1, max]
  std::uint64_t trickle_delay_ms = 5;  ///< per-byte delay while trickling
  std::size_t trickle_bytes = 32;      ///< bytes trickled before resuming bulk
};

/// Counters across every relayed connection (atomics: two pump threads per
/// connection update them concurrently).
struct ChaosStats {
  std::atomic<std::uint64_t> connections{0};
  std::atomic<std::uint64_t> bytes_forwarded{0};
  std::atomic<std::uint64_t> resets{0};
  std::atomic<std::uint64_t> cuts{0};
  std::atomic<std::uint64_t> delays{0};
  std::atomic<std::uint64_t> duplicates{0};
  std::atomic<std::uint64_t> trickles{0};
  std::atomic<std::uint64_t> partials{0};
  std::atomic<std::uint64_t> upstream_failures{0};  ///< could not reach the server
};

class ChaosProxy {
 public:
  /// Binds and listens immediately (port() is valid after construction).
  /// Throws util::Error on socket/bind/listen failure.
  explicit ChaosProxy(ChaosOptions options);
  ~ChaosProxy();  ///< stop() + wait()

  ChaosProxy(const ChaosProxy&) = delete;
  ChaosProxy& operator=(const ChaosProxy&) = delete;

  std::uint16_t port() const { return port_; }

  /// Spawns the accept loop in a background thread.
  void start();

  /// Requests shutdown (atomic store only; safe from any thread).
  void stop() { stop_.store(true, std::memory_order_relaxed); }

  /// Blocks until the accept loop and every relay thread have exited.
  void wait();

  const ChaosStats& stats() const { return stats_; }

 private:
  struct Relay {
    int client_fd = -1;    ///< -1 once closed by the pump that owns teardown
    int upstream_fd = -1;
    std::thread to_upstream;
    std::thread to_client;
    std::atomic<int> pumps_live{0};
  };

  void accept_loop();
  /// One direction of a relay: reads from `from`, forwards to `to` with
  /// faults drawn from `seed`'s stream.  On exit, decrements pumps_live and
  /// queues the relay for reaping when it was the last pump out.
  void pump(std::uint64_t id, int from, int to, std::uint64_t seed);
  /// Terminal fault: aborts both sides of a relay (SO_LINGER(0) + shutdown,
  /// so the peers see an abrupt termination, not a graceful FIN).
  void kill_relay(std::uint64_t id);
  void reap_finished();

  ChaosOptions options_;
  ChaosStats stats_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::atomic<bool> accepting_{false};
  std::thread accept_thread_;
  std::mutex relays_mutex_;
  std::uint64_t next_relay_id_ = 0;                   // guarded by relays_mutex_
  std::unordered_map<std::uint64_t, Relay> relays_;   // guarded by it too
  std::vector<std::uint64_t> finished_;               // ids awaiting the reaper
};

}  // namespace pmacx::service
