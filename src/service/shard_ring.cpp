#include "service/shard_ring.hpp"

#include <algorithm>
#include <sstream>

#include "util/atomic_file.hpp"
#include "util/error.hpp"
#include "util/parse_error.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace pmacx::service {
namespace {

/// Salt separating ring-point hashes from every other derive_seed user.
constexpr std::uint64_t kRingSalt = 0x70'6d'61'63'78'72'69'6eULL;  // "pmacxrin"

}  // namespace

void Topology::validate() {
  PMACX_CHECK(!shards.empty(), "topology has no shards");
  PMACX_CHECK(replication >= 1, "replication factor must be at least 1");
  PMACX_CHECK(replication <= shards.size(),
              "replication factor " + std::to_string(replication) + " exceeds the " +
                  std::to_string(shards.size()) + "-shard set");
  std::sort(shards.begin(), shards.end(),
            [](const ShardEndpoint& a, const ShardEndpoint& b) { return a.id < b.id; });
  for (std::size_t i = 1; i < shards.size(); ++i)
    PMACX_CHECK(shards[i].id != shards[i - 1].id,
                "duplicate shard id " + std::to_string(shards[i].id));
}

Topology Topology::parse(std::string_view text, const std::string& path) {
  Topology topology;
  bool saw_replication = false;
  std::uint64_t line_number = 0;
  for (const std::string& raw : util::split(text, '\n')) {
    ++line_number;
    const std::string_view line = util::trim(raw);
    if (line.empty() || line.front() == '#') continue;
    std::vector<std::string> fields;
    for (const std::string& field : util::split(line, ' '))
      if (!util::trim(field).empty()) fields.emplace_back(util::trim(field));

    try {
      if (fields[0] == "replication") {
        if (fields.size() != 2)
          throw util::ParseError(path, line_number, "replication",
                                 "expected 'replication <factor>'");
        topology.replication = util::parse_u64(fields[1], "replication factor");
        saw_replication = true;
      } else if (fields[0] == "shard") {
        if (fields.size() != 4)
          throw util::ParseError(path, line_number, "shard",
                                 "expected 'shard <id> <host> <port>'");
        ShardEndpoint shard;
        shard.id = static_cast<std::uint32_t>(util::parse_u64(fields[1], "shard id"));
        shard.host = fields[2];
        const std::uint64_t port = util::parse_u64(fields[3], "shard port");
        if (port > 65535)
          throw util::ParseError(path, line_number, "shard",
                                 "port " + fields[3] + " does not fit a TCP port");
        shard.port = static_cast<std::uint16_t>(port);
        topology.shards.push_back(std::move(shard));
      } else {
        throw util::ParseError(path, line_number, "topology",
                               "unknown directive '" + fields[0] + "'");
      }
    } catch (const util::ParseError&) {
      throw;
    } catch (const util::Error& e) {
      // parse_u64 failures carry no location; attach line + section here.
      throw util::ParseError(path, line_number, std::string(fields[0]), e.what());
    }
  }
  try {
    topology.validate();
  } catch (const util::Error& e) {
    throw util::ParseError(path, util::ParseError::kNoOffset, "topology", e.what());
  }
  // An explicit replication line is required once there is more than one
  // shard: a silently-defaulted R=1 cluster has no failover, which is the
  // kind of misconfiguration that should fail loudly at parse time.
  if (topology.shards.size() > 1 && !saw_replication)
    throw util::ParseError(path, util::ParseError::kNoOffset, "topology",
                           "multi-shard topology must declare 'replication <factor>'");
  return topology;
}

Topology Topology::load(const std::string& path) {
  return parse(util::read_file(path), path);
}

std::string Topology::render() const {
  std::ostringstream out;
  out << "# pmacx cluster topology\n";
  out << "replication " << replication << "\n";
  for (const ShardEndpoint& shard : shards)
    out << "shard " << shard.id << " " << shard.host << " " << shard.port << "\n";
  return out.str();
}

std::uint64_t Topology::epoch() const {
  // Fold (replication, sorted ids) through SplitMix64: deterministic, and
  // deliberately port-free (see header).
  std::uint64_t state = kRingSalt ^ (0x9e3779b97f4a7c15ULL * (replication + 1));
  std::uint64_t digest = util::splitmix64(state);
  std::vector<std::uint32_t> ids;
  ids.reserve(shards.size());
  for (const ShardEndpoint& shard : shards) ids.push_back(shard.id);
  std::sort(ids.begin(), ids.end());
  for (const std::uint32_t id : ids) {
    state ^= util::derive_seed(digest, id);
    digest = util::splitmix64(state);
  }
  return digest;
}

ShardRing::ShardRing(const Topology& topology, std::size_t vnodes_per_shard)
    : replication_(topology.replication), epoch_(topology.epoch()) {
  Topology copy = topology;
  copy.validate();  // sorts by id and checks uniqueness/replication bounds
  shards_ = std::move(copy.shards);
  PMACX_CHECK(vnodes_per_shard >= 1, "vnodes_per_shard must be at least 1");

  points_.reserve(shards_.size() * vnodes_per_shard);
  for (const ShardEndpoint& shard : shards_) {
    const std::uint64_t shard_seed = util::derive_seed(kRingSalt, shard.id);
    for (std::size_t vnode = 0; vnode < vnodes_per_shard; ++vnode) {
      Point point;
      point.hash = util::derive_seed(shard_seed, vnode);
      point.shard = shard.id;
      points_.push_back(point);
    }
  }
  std::sort(points_.begin(), points_.end(), [](const Point& a, const Point& b) {
    // Ties (astronomically unlikely) break on shard id so the order stays
    // deterministic regardless of the insertion order above.
    return a.hash != b.hash ? a.hash < b.hash : a.shard < b.shard;
  });
}

const ShardEndpoint& ShardRing::shard(std::uint32_t id) const {
  for (const ShardEndpoint& shard : shards_)
    if (shard.id == id) return shard;
  throw util::Error("unknown shard id " + std::to_string(id));
}

std::uint64_t ShardRing::key_hash(std::string_view key) {
  // FNV-1a over the bytes, then a SplitMix64 finalizer: FNV alone has weak
  // high bits for short ASCII keys like hex digests, and the ring walk
  // compares full 64-bit values.
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : key) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return util::splitmix64(hash);
}

std::vector<std::uint32_t> ShardRing::replicas_for(std::string_view key) const {
  PMACX_CHECK(!points_.empty(), "replicas_for on an empty ring");
  const std::uint64_t hash = key_hash(key);
  // First ring point at or after the key hash (wrapping): the primary.
  auto it = std::lower_bound(
      points_.begin(), points_.end(), hash,
      [](const Point& point, std::uint64_t value) { return point.hash < value; });

  std::vector<std::uint32_t> owners;
  owners.reserve(replication_);
  // Walk clockwise collecting distinct shards; with R <= shard_count this
  // terminates within one full lap.
  for (std::size_t step = 0; step < points_.size() && owners.size() < replication_; ++step) {
    if (it == points_.end()) it = points_.begin();
    const std::uint32_t shard = it->shard;
    if (std::find(owners.begin(), owners.end(), shard) == owners.end())
      owners.push_back(shard);
    ++it;
  }
  PMACX_CHECK(owners.size() == replication_,
              "ring walk found " + std::to_string(owners.size()) + " owners, expected " +
                  std::to_string(replication_));
  return owners;
}

std::uint32_t ShardRing::primary_for(std::string_view key) const {
  return replicas_for(key).front();
}

}  // namespace pmacx::service
