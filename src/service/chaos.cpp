#include "service/chaos.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "util/error.hpp"
#include "util/io.hpp"
#include "util/rng.hpp"

namespace pmacx::service {
namespace {

/// Poll interval for the accept loop and pump reads; bounds how long stop()
/// can go unnoticed.
constexpr int kPollMs = 100;

void set_io_timeouts(int fd, long ms) {
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = (ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

/// Arms abortive close: once set, close() discards pending data and (for an
/// established connection) answers the peer with RST instead of FIN.
void set_linger_abort(int fd) {
  linger lg{};
  lg.l_onoff = 1;
  lg.l_linger = 0;
  ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
}

/// Sends exactly [data, data+size) or reports failure; EINTR is retried
/// (bounded, via util::io), everything else (timeout, EPIPE, a killed
/// relay) ends the pump.
bool send_range(int fd, const char* data, std::size_t size) {
  return util::io::socket_send_all(fd, data, size);
}

void sleep_ms(std::uint64_t ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

}  // namespace

ChaosProxy::ChaosProxy(ChaosOptions options) : options_(std::move(options)) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  PMACX_CHECK(listen_fd_ >= 0, std::string("socket(): ") + std::strerror(errno));

  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  PMACX_CHECK(::inet_pton(AF_INET, options_.bind.c_str(), &addr.sin_addr) == 1,
              "bad bind address '" + options_.bind + "'");
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw util::Error("chaos proxy bind " + options_.bind + ":" +
                      std::to_string(options_.port) + ": " + reason);
  }

  sockaddr_in bound{};
  socklen_t bound_size = sizeof(bound);
  PMACX_CHECK(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_size) == 0,
              "getsockname failed");
  port_ = ntohs(bound.sin_port);
}

ChaosProxy::~ChaosProxy() {
  stop();
  wait();
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void ChaosProxy::start() {
  PMACX_CHECK(!accepting_.exchange(true), "ChaosProxy::start called twice");
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void ChaosProxy::accept_loop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    reap_finished();
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollMs);
    if (ready <= 0) continue;  // timeout (stop re-check) or EINTR

    const int client_fd = ::accept(listen_fd_, nullptr, nullptr);
    if (client_fd < 0) continue;

    // Dial the real server.  Loopback connect is fast enough to do inline.
    sockaddr_in upstream{};
    upstream.sin_family = AF_INET;
    upstream.sin_port = htons(options_.upstream_port);
    const int upstream_fd =
        ::inet_pton(AF_INET, options_.upstream_host.c_str(), &upstream.sin_addr) == 1
            ? ::socket(AF_INET, SOCK_STREAM, 0)
            : -1;
    if (upstream_fd < 0 ||
        ::connect(upstream_fd, reinterpret_cast<const sockaddr*>(&upstream),
                  sizeof(upstream)) != 0) {
      stats_.upstream_failures.fetch_add(1, std::memory_order_relaxed);
      if (upstream_fd >= 0) ::close(upstream_fd);
      set_linger_abort(client_fd);  // the client sees the outage as a reset
      ::close(client_fd);
      continue;
    }
    set_io_timeouts(client_fd, kPollMs);
    set_io_timeouts(upstream_fd, kPollMs);
    stats_.connections.fetch_add(1, std::memory_order_relaxed);

    std::scoped_lock lock(relays_mutex_);
    const std::uint64_t id = next_relay_id_++;
    Relay& relay = relays_[id];
    relay.client_fd = client_fd;
    relay.upstream_fd = upstream_fd;
    relay.pumps_live.store(2, std::memory_order_relaxed);
    // Independent fault streams per connection and per direction, all
    // reproducible from the root seed.
    const std::uint64_t conn_seed = util::derive_seed(options_.seed, id);
    relay.to_upstream = std::thread([this, id, client_fd, upstream_fd, conn_seed] {
      pump(id, client_fd, upstream_fd, util::derive_seed(conn_seed, 0));
    });
    relay.to_client = std::thread([this, id, client_fd, upstream_fd, conn_seed] {
      pump(id, upstream_fd, client_fd, util::derive_seed(conn_seed, 1));
    });
  }

  // Stopping: abort every live relay so the pump threads unblock promptly.
  std::scoped_lock lock(relays_mutex_);
  for (auto& [id, relay] : relays_) {
    if (relay.client_fd >= 0) ::shutdown(relay.client_fd, SHUT_RDWR);
    if (relay.upstream_fd >= 0) ::shutdown(relay.upstream_fd, SHUT_RDWR);
  }
}

void ChaosProxy::kill_relay(std::uint64_t id) {
  std::scoped_lock lock(relays_mutex_);
  auto it = relays_.find(id);
  if (it == relays_.end()) return;
  // Arm abortive close and wake both pumps; the actual close happens when
  // the last pump tears the relay down, and sends RST thanks to the linger.
  if (it->second.client_fd >= 0) {
    set_linger_abort(it->second.client_fd);
    ::shutdown(it->second.client_fd, SHUT_RDWR);
  }
  if (it->second.upstream_fd >= 0) {
    set_linger_abort(it->second.upstream_fd);
    ::shutdown(it->second.upstream_fd, SHUT_RDWR);
  }
}

void ChaosProxy::pump(std::uint64_t id, int from, int to, std::uint64_t seed) {
  util::Rng rng(seed);
  char buf[4096];
  bool saw_eof = false;
  while (!stop_.load(std::memory_order_relaxed)) {
    // Short reads: drain the socket a few bytes at a time so the receiver
    // sees frames fragmented at arbitrary boundaries.
    std::size_t cap = sizeof(buf);
    if (rng.uniform() < options_.p_short_read) cap = 1 + rng.below(7);
    const ssize_t n = util::io::socket_recv(from, buf, cap);
    if (n == 0) {
      saw_eof = true;
      break;
    }
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) continue;  // poll tick
      break;  // hard error, EINTR budget exhausted, relay killed, peer reset
    }
    const std::size_t size = static_cast<std::size_t>(n);

    // Terminal faults first (they end the relay for both sides).
    double roll = rng.uniform();
    if (roll < options_.p_reset) {
      stats_.resets.fetch_add(1, std::memory_order_relaxed);
      kill_relay(id);
      break;
    }
    roll -= options_.p_reset;
    if (roll < options_.p_cut && size > 1) {
      // Torn frame: a prefix makes it through, then the line goes dead.
      send_range(to, buf, 1 + rng.below(size - 1));
      stats_.cuts.fetch_add(1, std::memory_order_relaxed);
      kill_relay(id);
      break;
    }

    if (rng.uniform() < options_.p_delay) {
      stats_.delays.fetch_add(1, std::memory_order_relaxed);
      sleep_ms(1 + rng.below(std::max<std::uint64_t>(1, options_.max_delay_ms)));
    }

    bool ok;
    if (rng.uniform() < options_.p_trickle) {
      // Slow loris: leading bytes go out one at a time with a delay, the
      // rest in one piece (so the test stays bounded in wall clock).
      stats_.trickles.fetch_add(1, std::memory_order_relaxed);
      const std::size_t slow = std::min(size, options_.trickle_bytes);
      ok = true;
      for (std::size_t i = 0; ok && i < slow; ++i) {
        ok = send_range(to, buf + i, 1);
        sleep_ms(options_.trickle_delay_ms);
      }
      if (ok && slow < size) ok = send_range(to, buf + slow, size - slow);
    } else if (rng.uniform() < options_.p_partial) {
      // Partial writes: the chunk crosses in randomly sized pieces.
      stats_.partials.fetch_add(1, std::memory_order_relaxed);
      std::size_t sent = 0;
      ok = true;
      while (ok && sent < size) {
        const std::size_t piece = std::min(size - sent, 1 + rng.below(16));
        ok = send_range(to, buf + sent, piece);
        sent += piece;
      }
    } else {
      ok = send_range(to, buf, size);
    }
    if (ok && rng.uniform() < options_.p_duplicate) {
      // Duplicated frame: the receiver's stream is now corrupt and must be
      // answered with ParseError, never a crash.
      stats_.duplicates.fetch_add(1, std::memory_order_relaxed);
      ok = send_range(to, buf, size);
    }
    if (!ok) break;
    stats_.bytes_forwarded.fetch_add(size, std::memory_order_relaxed);
  }
  if (saw_eof) ::shutdown(to, SHUT_WR);  // propagate the half-close

  // Last pump out closes both fds and queues the relay for the reaper.
  std::scoped_lock lock(relays_mutex_);
  auto it = relays_.find(id);
  if (it == relays_.end()) return;
  if (it->second.pumps_live.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    if (it->second.client_fd >= 0) ::close(it->second.client_fd);
    if (it->second.upstream_fd >= 0) ::close(it->second.upstream_fd);
    it->second.client_fd = it->second.upstream_fd = -1;
    finished_.push_back(id);
  }
}

void ChaosProxy::reap_finished() {
  std::vector<std::thread> victims;
  {
    std::scoped_lock lock(relays_mutex_);
    for (std::uint64_t id : finished_) {
      auto it = relays_.find(id);
      if (it == relays_.end()) continue;  // wait() already took it
      victims.push_back(std::move(it->second.to_upstream));
      victims.push_back(std::move(it->second.to_client));
      relays_.erase(it);
    }
    finished_.clear();
  }
  for (std::thread& victim : victims)
    if (victim.joinable()) victim.join();
}

void ChaosProxy::wait() {
  if (accept_thread_.joinable()) accept_thread_.join();
  // The accept loop has exited, so relays_ can no longer grow.  Pump
  // threads may still be finishing: take their handles but leave the Relay
  // entries in place until every thread has joined, because the last pump
  // out still needs its entry to close the fds.
  std::vector<std::thread> threads;
  {
    std::scoped_lock lock(relays_mutex_);
    for (auto& [id, relay] : relays_) {
      if (relay.to_upstream.joinable()) threads.push_back(std::move(relay.to_upstream));
      if (relay.to_client.joinable()) threads.push_back(std::move(relay.to_client));
    }
  }
  for (std::thread& thread : threads) thread.join();
  std::scoped_lock lock(relays_mutex_);
  for (auto& [id, relay] : relays_) {
    // Unreachable in practice (the last pump closes both), but a relay whose
    // pumps never ran would otherwise leak its fds.
    if (relay.client_fd >= 0) ::close(relay.client_fd);
    if (relay.upstream_fd >= 0) ::close(relay.upstream_fd);
  }
  relays_.clear();
  finished_.clear();
}

}  // namespace pmacx::service
