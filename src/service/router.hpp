// The pmacx cluster router.
//
// A Router fronts N shard servers (plain pmacx_serve processes launched
// with --shard-id/--ring-epoch) behind a single pmacx-rpc-v1 endpoint.
// Data-plane requests (FIT / EXTRAPOLATE / PREDICT) are consistent-hashed
// on the 16-hex `models_digest` of their fit spec — the same content
// address the ModelStore and checkpoint layers use — through a ShardRing,
// so each shard's cache stays hot for its slice of the model space and
// replication factor R gives every digest R candidate owners.
//
// Failover is the router's whole job: a shard call that fails in transport
// (connect refused, timeout, torn frame, desynchronized stream) or hits an
// open per-shard circuit moves to the next replica in ring order; when a
// full pass over the replica set fails, the router backs off and sweeps
// again until the per-request failover deadline — so a SIGKILLed replica
// under load costs retried hops, never a lost request (the chaos cluster
// test's zero-loss invariant).  BUSY and genuine handler errors are *not*
// failed over: they are definite answers from a healthy shard, and the
// resilient client already retries BUSY.
//
// Control plane: STATUS aggregates the router's own identity (ring epoch,
// shard count, per-shard health) with each shard's STATUS body, namespaced
// per shard, so one probe shows the whole cluster including which shards
// are down or running a stale ring epoch.  SHUTDOWN fans out to every
// shard, then stops the router itself.
//
// Everything is metered through the PR 3 metrics layer:
// service.router.requests.<type>, .routed, .failover (requests that needed
// a non-primary hop), .failover_attempts (individual failed hops),
// .shard_down (hops skipped on an open circuit), .exhausted (deadline hit
// with no replica answering), and service.router.shard.<id>.latency
// histograms per shard.  docs/OBSERVABILITY.md documents the set.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "service/client.hpp"
#include "service/protocol.hpp"
#include "service/shard_ring.hpp"

namespace pmacx::service {

struct RouterOptions {
  std::string bind = "127.0.0.1";  ///< address to listen on
  std::uint16_t port = 0;          ///< 0 = pick an ephemeral port
  Topology topology;               ///< resolved shard endpoints (real ports)
  std::size_t vnodes_per_shard = ShardRing::kDefaultVnodes;

  /// Per-hop I/O deadline on shard calls.  Short relative to the failover
  /// deadline so a wedged shard costs one hop, not the whole budget.
  std::uint64_t shard_io_timeout_ms = 10'000;
  /// Per-hop connect budget; a dead shard should fail over in ~this time.
  std::uint64_t shard_connect_deadline_ms = 1'000;
  /// Overall per-request budget across every replica hop and backoff sleep.
  /// When it expires with no replica answering, the client gets an Error
  /// response (metered as service.router.exhausted).
  std::uint64_t failover_deadline_ms = 20'000;
  /// Backoff between full sweeps of the replica set (doubles, capped 8x).
  std::uint64_t sweep_backoff_ms = 50;
  /// Per-shard circuit breaker on the routing path: after this many
  /// consecutive transport failures the shard is skipped (metered
  /// shard_down) until cooldown passes.  0 disables.
  std::size_t shard_breaker_failures = 3;
  std::uint64_t shard_breaker_cooldown_ms = 500;

  /// Connection defense, same semantics as ServerOptions.
  std::uint64_t idle_timeout_ms = 120'000;
  std::uint64_t read_timeout_ms = 10'000;
};

class Router {
 public:
  /// Binds and listens immediately (port() valid, bind conflicts throw
  /// here); accepting starts at start().  Throws util::Error on socket
  /// failure or an invalid topology.
  explicit Router(RouterOptions options);
  ~Router();  ///< stop() + wait()

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  std::uint16_t port() const { return port_; }
  const ShardRing& ring() const { return ring_; }

  /// Spawns the accept loop in a background thread.
  void start();

  /// Requests shutdown.  Async-signal-safe: only stores an atomic flag.
  void stop() { stop_.store(true, std::memory_order_relaxed); }

  /// True once stop() was called (by a signal, a SHUTDOWN request, or the
  /// owner).  Supervisors poll this to stop respawning shards.
  bool stopping() const { return stop_.load(std::memory_order_relaxed); }

  /// Blocks until the accept loop and every connection thread have exited.
  void wait();

  std::uint64_t requests_routed() const { return routed_.load(std::memory_order_relaxed); }

 private:
  struct Connection {
    int fd = -1;
    std::thread thread;
  };

  /// Per-connection-thread routing state for one shard: the lazily
  /// connected Client plus the routing-path circuit breaker.  Kept
  /// per-connection-thread (not shared) so no lock sits on the data plane;
  /// a fresh router connection starts with closed circuits everywhere.
  struct ShardState {
    std::unique_ptr<Client> client;
    std::size_t consecutive_failures = 0;
    std::chrono::steady_clock::time_point open_until{};
  };
  struct ShardClients {
    std::vector<ShardState> shards;  ///< index = position in ring().shards()
  };

  void accept_loop();
  void serve_connection(int fd, std::uint64_t id);
  void reap_finished();

  Response route(const Request& request, ShardClients& shards);
  Response route_data_plane(const Request& request, ShardClients& shards);
  /// UPLOAD_TRACE: fan the op out to *every* replica of the collection's
  /// ring position ("upload:<collection>"), so each shard that can own a
  /// "@collection" fit spec holds the ingested files locally.  The primary
  /// replica's answer is the response; replica failures are metered
  /// (service.router.upload_replica_failures), not fatal — a resumed upload
  /// re-sends the missing chunks there.
  Response route_upload(const Request& request, ShardClients& shards);
  Response aggregate_status(ShardClients& shards);
  /// stop() + best-effort SHUTDOWN fan-out to every shard.  Called by
  /// serve_connection after the requester's reply is on the wire.
  void broadcast_shutdown(ShardClients& shards);
  /// One hop: call shard `index` (connecting if needed), enforcing the
  /// response-type echo.  Throws util::Error on any transport-ish failure.
  Response call_shard(std::size_t index, const Request& request, ShardClients& shards);
  /// The request's routing digest (cached: the preimage hashes file bytes).
  std::string routing_digest(const Request& request);

  RouterOptions options_;
  ShardRing ring_;
  std::chrono::steady_clock::time_point started_at_{};
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::atomic<bool> accepting_{false};
  std::atomic<std::uint64_t> routed_{0};
  std::thread accept_thread_;
  std::mutex connections_mutex_;
  std::uint64_t next_connection_id_ = 0;                       // guarded by connections_mutex_
  std::unordered_map<std::uint64_t, Connection> connections_;  // guarded by it too
  std::vector<std::uint64_t> finished_;                        // ids awaiting the reaper
  std::mutex digest_mutex_;
  /// spec-key -> models_digest.  Trace files are immutable for the life of
  /// a serving run (the same assumption the shard ModelStore makes), and
  /// distinct workloads are few, so this never needs eviction.
  std::unordered_map<std::string, std::string> digest_cache_;  // guarded by digest_mutex_
};

}  // namespace pmacx::service
