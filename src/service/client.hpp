// Blocking pmacx-rpc-v1 client.
//
// One Client owns one TCP connection and issues synchronous request /
// response round-trips over it.  Two calling conventions:
//
//   * call(): one attempt on the current connection.  A timeout or short
//     read is a util::Error the caller decides about — the historical,
//     never-resends contract.
//
//   * call_with_retry(): the resilient path.  Transport failures and BUSY
//     responses are retried with capped exponential backoff plus jitter
//     (decorrelating a thundering herd of clients hitting one recovering
//     server), reconnecting as needed, under a per-call overall deadline.
//     Only idempotent request types retry — every pmacx-rpc-v1 data-plane
//     request (FIT / EXTRAPOLATE / PREDICT / STATUS) is a deterministic,
//     server-cached derivation, so resending is safe; SHUTDOWN is not
//     retried because a lost response is indistinguishable from a server
//     that is already acting on it.
//
// A small circuit breaker guards call_with_retry: after `failure_threshold`
// consecutive failed calls the circuit opens and calls fail fast (no
// network) for `cooldown_ms`; the first call after cooldown is the trial
// that closes it on success.  This keeps a fleet of clients from pounding a
// dead server with full retry ladders.
//
// Connecting retries with jittered exponential backoff under an overall
// connect deadline (the common race: a just-spawned pmacx_serve that has
// printed its port but not yet reached accept()).
//
// Not thread-safe: give each client thread its own Client (the load
// generator does exactly that).
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

#include "service/protocol.hpp"
#include "util/rng.hpp"

namespace pmacx::service {

/// Retry schedule for call_with_retry.
struct RetryPolicy {
  unsigned max_attempts = 4;               ///< total tries per call (1 = no retry)
  std::uint64_t initial_backoff_ms = 10;   ///< delay before the first retry
  std::uint64_t max_backoff_ms = 1'000;    ///< cap for the doubling backoff
  /// Fraction of each backoff that is uniformly random: sleep is
  /// backoff * (1 - jitter + uniform(0, jitter)).
  double jitter = 0.5;
  /// Wall-clock budget for one call_with_retry including reconnects and
  /// backoff sleeps; 0 = bounded only by attempts.
  std::uint64_t overall_deadline_ms = 0;
};

/// Circuit breaker for call_with_retry.
struct BreakerOptions {
  /// Consecutive call_with_retry failures that open the circuit; 0 disables
  /// the breaker.
  std::size_t failure_threshold = 5;
  std::uint64_t cooldown_ms = 1'000;  ///< open duration before a trial call
};

struct ClientOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::uint64_t io_timeout_ms = 30'000;   ///< per send/recv deadline
  unsigned connect_attempts = 6;          ///< total tries before giving up
  std::uint64_t connect_backoff_ms = 25;  ///< first retry delay; doubles per retry
  /// Jitter fraction for connect backoff (same convention as
  /// RetryPolicy::jitter).
  double connect_jitter = 0.5;
  /// Overall wall-clock cap on connecting, across every attempt and backoff
  /// sleep; 0 = bounded only by connect_attempts.
  std::uint64_t connect_deadline_ms = 10'000;
  /// Seed for backoff jitter (deterministic, like every pmacx RNG; give
  /// concurrent clients distinct seeds to decorrelate their retries).
  std::uint64_t jitter_seed = 0x9e3779b97f4a7c15ULL;
  RetryPolicy retry;
  BreakerOptions breaker;
};

class Client {
 public:
  /// Connects immediately, retrying with jittered exponential backoff under
  /// the connect deadline; throws util::Error once attempts or deadline are
  /// exhausted.
  explicit Client(ClientOptions options);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// One synchronous round-trip, one attempt, no retry.  Throws util::Error
  /// on transport failure (send/recv timeout, connection drop) and
  /// util::ParseError on a malformed response frame.  A failed call leaves
  /// the connection in an undefined mid-stream state; the next
  /// call_with_retry (or reconnect()) re-establishes it.
  ///
  /// `response_type`, when non-null, receives the response frame's wire
  /// type.  It normally echoes the request's; a mismatch on a non-Status
  /// request means either a server-side decode failure (answered with a
  /// Status-typed error frame) or a desynchronized stream (e.g. a stale
  /// frame left behind by network fault injection) — the router treats the
  /// latter as a transport failure and reconnects.
  Response call(const Request& request, MsgType* response_type = nullptr);

  /// Resilient round-trip per the options' RetryPolicy and BreakerOptions
  /// (class comment).  Throws util::Error when the circuit is open, the
  /// deadline expires, or every attempt failed — with the last underlying
  /// error in the message.
  Response call_with_retry(const Request& request);

  /// Drops and re-establishes the connection (jittered backoff, connect
  /// deadline).  call_with_retry does this automatically on transport
  /// errors.
  void reconnect();

  bool connected() const { return fd_ >= 0; }
  /// True while the breaker is failing calls fast (cooldown not yet over).
  bool circuit_open() const;

 private:
  void connect_with_backoff();
  void close_fd();
  std::uint64_t jittered_ms(std::uint64_t backoff_ms, double jitter);
  void record_success();
  void record_failure();

  ClientOptions options_;
  int fd_ = -1;
  util::Rng rng_;
  std::size_t consecutive_failures_ = 0;
  bool circuit_open_ = false;
  std::chrono::steady_clock::time_point circuit_opened_at_{};
};

}  // namespace pmacx::service
