// Blocking pmacx-rpc-v1 client.
//
// One Client owns one TCP connection and issues synchronous request /
// response round-trips over it.  Connecting retries with exponential
// backoff (the common race: a just-spawned pmacx_serve that has printed its
// port but not yet reached accept()); established-connection I/O does not
// retry — a timeout or short read is a util::Error the caller decides
// about, because silently resending a FIT could double expensive work.
// Not thread-safe: give each client thread its own Client (the load
// generator does exactly that).
#pragma once

#include <cstdint>
#include <string>

#include "service/protocol.hpp"

namespace pmacx::service {

struct ClientOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::uint64_t io_timeout_ms = 30'000;   ///< per send/recv deadline
  unsigned connect_attempts = 6;          ///< total tries before giving up
  std::uint64_t connect_backoff_ms = 25;  ///< first retry delay; doubles per retry
};

class Client {
 public:
  /// Connects immediately, retrying with exponential backoff; throws
  /// util::Error once every attempt is exhausted.
  explicit Client(ClientOptions options);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// One synchronous round-trip.  Throws util::Error on transport failure
  /// (send/recv timeout, connection drop) and util::ParseError on a
  /// malformed response frame.
  Response call(const Request& request);

 private:
  ClientOptions options_;
  int fd_ = -1;
};

}  // namespace pmacx::service
