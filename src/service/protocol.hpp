// pmacx-rpc-v1 — the prediction server's wire protocol.
//
// Frames are length-prefixed binary with an integrity trailer:
//
//   offset  size  field
//   0       8     magic "pmacxrpc"
//   8       2     version (LE u16, currently 1)
//   10      2     message type (LE u16; request and response share the type)
//   12      4     payload length N (LE u32, at most kMaxPayload)
//   16      N     payload
//   16+N    4     CRC-32 of bytes [8, 16+N) — version, type, length, and
//                 payload (LE u32; util::crc32, zlib polynomial).  The type
//                 and length fields steer decoding, so they are covered too:
//                 any single-bit corruption after the magic is detectable.
//
// Malformed frames (bad magic, unknown version, oversized declared length,
// truncation, CRC mismatch) raise util::ParseError carrying the byte offset
// and the section being decoded, mirroring the trace loaders' taxonomy; the
// declared length is validated against kMaxPayload *before* any allocation
// (the PR 1 reserve() clamp rule), so a hostile length field cannot trigger
// unbounded allocation.  Payload field encodings are little-endian
// fixed-width integers, IEEE-754 doubles (bit pattern), and u32
// length-prefixed UTF-8 strings.  docs/FORMATS.md holds the normative
// layout.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/extrapolator.hpp"
#include "ingest/upload.hpp"

namespace pmacx::service {

inline constexpr std::string_view kMagic = "pmacxrpc";
inline constexpr std::uint16_t kProtocolVersion = 1;
/// Frame header bytes before the payload (magic + version + type + length).
inline constexpr std::size_t kHeaderSize = 16;
/// Hard payload ceiling: an extrapolated binary trace for the repo's
/// workloads is well under a megabyte; 64 MiB leaves headroom for large
/// reports while bounding what a corrupt length field can make us allocate.
inline constexpr std::size_t kMaxPayload = 64u << 20;

/// Message types; requests and their responses share the type value.
enum class MsgType : std::uint16_t {
  Fit = 1,          ///< fit (or look up) a model set; respond with its digest
  Extrapolate = 2,  ///< evaluate a model set at a target; respond with the trace
  Predict = 3,      ///< full runtime prediction; respond with the rendered block
  Status = 4,       ///< server/cache statistics
  Shutdown = 5,     ///< graceful drain + exit
  PredictInterval = 6,  ///< Bayesian interval extrapolation: respond with the
                        ///< lo/median/hi traces + CSV report (IntervalResult)
  UploadTrace = 7,  ///< chunked, resumable trace ingestion (ingest::UploadRequest
                    ///< payload; respond with the upload's key-value progress text)
};

/// Stable name ("fit", "predict", ...) used in metric names and logs.
std::string msg_type_name(MsgType type);

/// One decoded frame: the type plus its raw payload bytes.
struct Frame {
  MsgType type = MsgType::Status;
  std::string payload;
};

/// Serializes a frame (header + payload + CRC trailer).  Throws util::Error
/// when the payload exceeds kMaxPayload.
std::string encode_frame(const Frame& frame);

/// Validates a frame header and returns the declared payload size, so
/// stream readers know how many more bytes to read (payload + 4-byte CRC
/// follow).  `header` must hold kHeaderSize bytes.  Throws util::ParseError
/// on bad magic, unsupported version, or a length above kMaxPayload.
std::size_t frame_payload_size(std::string_view header);

/// Decodes one complete frame (header through CRC trailer).  Throws
/// util::ParseError on any structural or integrity violation.
Frame decode_frame(std::string_view bytes);

/// The fit specification shared by FIT, EXTRAPOLATE, and PREDICT requests:
/// which traces to model and under which policy.  Paths are resolved on the
/// *server's* filesystem.
struct FitSpec {
  std::vector<std::string> trace_paths;  ///< ascending core counts, ≥ 2
  std::string forms = "default";         ///< paper | default | all
  std::string missing = "zero";          ///< drop | zero | carry | fit-present
  std::string criterion = "sse";         ///< sse | loo | aicc
  double tie_tolerance = 1e-9;
  double influence_threshold = 0.001;
  bool reject_out_of_domain = true;
  bool round_counts = false;

  /// Materializes the core-layer options these fields describe.  Throws
  /// util::Error on unknown enum strings.
  core::ExtrapolationOptions to_options() const;
};

/// A decoded request.  `type` says which fields are meaningful: FitSpec for
/// Fit/Extrapolate/Predict, target_cores for Extrapolate/Predict, the
/// app/machine fields for Predict only.
struct Request {
  MsgType type = MsgType::Status;
  FitSpec spec;
  std::uint32_t target_cores = 0;
  std::string app;                 ///< application model for comm timelines
  double work_scale = 1.0;
  std::string machine_target;      ///< machine::target_by_name name
  /// PredictInterval only: central coverage of the prediction interval,
  /// in (0, 1).  Part of the wire payload but *not* of the fit spec — the
  /// same cached model set (same models_digest, same shard) answers every
  /// coverage.
  double interval_coverage = 0.9;
  /// UploadTrace only: the decoded upload op.  The payload codec lives in
  /// ingest/upload.hpp (docs/FORMATS.md holds the layout); this layer only
  /// frames it.
  ingest::UploadRequest upload;
};

/// Response status. Busy is the load-shedding answer: the request was
/// well-formed but the server's in-flight limit was reached — retry later.
enum class Status : std::uint16_t {
  Ok = 0,
  Error = 1,
  Busy = 2,
};

struct Response {
  Status status = Status::Ok;
  /// OK: the result (digest text, binary trace bytes, rendered prediction,
  /// status report).  Error/Busy: a human-readable reason.
  std::string body;
};

/// Encodes a request into a complete wire frame.
std::string encode_request(const Request& request);
/// Decodes a request payload; throws util::ParseError on malformed fields.
Request decode_request(const Frame& frame);

/// Encodes a response to a request of type `type` into a complete frame.
std::string encode_response(MsgType type, const Response& response);
/// Decodes a response payload; throws util::ParseError on malformed fields.
Response decode_response(const Frame& frame);

/// The body of an OK PREDICT_INTERVAL response: the three interval traces
/// (trace::to_binary bytes) plus the CSV interval report, each
/// u32-length-prefixed.  Deterministic for a given model set, target, and
/// coverage — the byte-identity contract the cluster tests assert.
struct IntervalResult {
  std::string lo;          ///< lower-quantile trace bytes
  std::string median;      ///< predictive-median trace bytes
  std::string hi;          ///< upper-quantile trace bytes
  std::string report_csv;  ///< FitReport::to_csv with the bayes_* columns
};

/// Serializes an IntervalResult into a response body.
std::string encode_interval_result(const IntervalResult& result);
/// Parses a PREDICT_INTERVAL response body; throws util::ParseError on
/// truncation or trailing bytes.
IntervalResult decode_interval_result(std::string_view body);

}  // namespace pmacx::service
