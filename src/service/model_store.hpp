// Content-addressed model store with a byte-bounded LRU cache.
//
// The serving layer's whole point is "fit once, answer many what-if
// queries" (ROADMAP north star; the Table III exploration shape).  The
// store makes that concrete: a fitted model set is addressed by a digest of
// *what produced it* — the input trace contents (CRC-32 of each file's
// bytes), the alignment/missing policy, the canonical form set, and the
// selection options — so two requests naming the same inputs and policy hit
// the same cached core::TaskModelSet no matter which target core count or
// machine they go on to ask about.  Loaded traces, fitted model sets,
// extrapolated signatures, and probed machine profiles all live in one
// byte-bounded LRU; every entry loads single-flight (concurrent requests
// for the same key coalesce onto one loader, and the waiters count as cache
// hits — that is why a 100-request load-generator burst at 8 threads shows
// ≥ 99 hits).
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/extrapolator.hpp"
#include "machine/profile.hpp"
#include "trace/signature.hpp"
#include "trace/task_trace.hpp"

namespace pmacx::service {

/// Thread-safe, byte-bounded LRU map of shared immutable values with
/// single-flight loading.  Values are shared_ptr<const T>: eviction drops
/// the cache's reference, in-progress consumers keep theirs.  Recording:
/// service.cache.hits / .misses / .evictions counters and the
/// service.cache.bytes gauge (shared across every cache in the process, so
/// the serve tool's snapshot shows one cache section).
template <typename T>
class LruCache {
 public:
  using Ptr = std::shared_ptr<const T>;
  using Cost = std::function<std::size_t(const T&)>;

  LruCache(std::size_t max_bytes, Cost cost);

  /// Returns the cached value for `key`, loading it with `loader` on a
  /// miss.  Concurrent calls for the same key run `loader` once: the rest
  /// block on the in-flight load and count as hits.  A failing loader
  /// propagates its exception to every waiter and leaves no entry behind.
  Ptr get_or_load(const std::string& key, const std::function<Ptr()>& loader);

  /// Installs `value` under `key` immediately, *replacing* any existing
  /// entry — the publish half of a background refit's atomic swap.  An
  /// existing loaded entry's accounted bytes are subtracted before the new
  /// cost is added (no replacement may leak accounted bytes — audited by
  /// tests/service_ingest_test.cpp), and the replacement is counted as a
  /// service.cache.invalidations event.  Readers that already resolved the
  /// old value keep their shared_ptr; waiters on an in-flight load for the
  /// same key still receive that load's result (its bookkeeping is
  /// superseded via the slot epoch and never double-accounted).
  void insert(const std::string& key, Ptr value);

  std::size_t bytes() const;
  std::size_t entries() const;

 private:
  struct Slot {
    std::shared_future<Ptr> future;
    std::size_t cost = 0;  ///< 0 while the load is in flight
    bool loaded = false;
    /// Which load/insert owns this slot's bookkeeping.  A loader only
    /// applies its cost if the epoch still matches what it was assigned —
    /// an insert() that replaced the slot meanwhile bumped it, so a
    /// superseded load adds nothing (the accounting leak this guards
    /// against: replaced-then-completed loads double-charging bytes_).
    std::uint64_t epoch = 0;
    std::list<std::string>::iterator lru_it;
  };

  void evict_locked();

  mutable std::mutex mutex_;
  std::unordered_map<std::string, Slot> slots_;
  std::list<std::string> lru_;  ///< front = most recently used
  std::size_t max_bytes_;
  std::size_t bytes_ = 0;
  std::uint64_t next_epoch_ = 0;  ///< slot ownership tokens (see Slot::epoch)
  Cost cost_;
};

/// One loaded input trace plus the content CRC the digest is built from.
struct LoadedTrace {
  trace::TaskTrace trace;
  std::uint32_t content_crc = 0;
  std::size_t file_bytes = 0;

  std::size_t memory_bytes() const { return sizeof(*this) + trace.memory_bytes(); }
};

/// Aggregate cache statistics for STATUS responses.
struct StoreStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  /// Entries replaced in place by insert() — each one a background refit's
  /// swap landing over a previously served set.
  std::uint64_t invalidations = 0;
  std::size_t bytes = 0;
  std::size_t entries = 0;
};

/// The content-addressed store.  All methods are thread-safe; heavy work
/// (file loads, fitting, machine probing) runs outside every lock, guarded
/// only by the per-key single-flight coalescing.
class ModelStore {
 public:
  /// `max_bytes` bounds the *sum* of all cached entries' estimated sizes.
  explicit ModelStore(std::size_t max_bytes = 256u << 20);

  /// Digest of (input trace content CRCs in order, alignment policy, form
  /// set, selection options) — the model set's content address, rendered as
  /// 16 lowercase hex digits.  Loads (and caches) the named traces to get
  /// their CRCs.  docs/FORMATS.md specifies the exact byte string digested.
  std::string digest(const std::vector<std::string>& trace_paths,
                     const core::ExtrapolationOptions& options);

  /// Loads one trace file through the cache (validated; binary or text).
  std::shared_ptr<const LoadedTrace> load_trace(const std::string& path);

  struct ModelsResult {
    std::string digest;
    std::shared_ptr<const core::TaskModelSet> models;
  };
  /// The fitted model set for (traces, options) — cached by digest.
  ModelsResult models_for(const std::vector<std::string>& trace_paths,
                          const core::ExtrapolationOptions& options);

  /// Extrapolates the model set to `target_cores` (never cached: the apply
  /// stage is cheap and its output large; callers keep the result).
  core::ExtrapolationResult extrapolate(const ModelsResult& models,
                                        std::uint32_t target_cores) const;

  /// The MultiMAPS-probed machine profile for a predefined target name —
  /// cached, since probing simulates the full bandwidth surface.
  std::shared_ptr<const machine::MachineProfile> profile_for(const std::string& target_name);

  /// A full extrapolated signature (demanding-rank trace at target_cores +
  /// the app model's comm timelines) — cached by (digest, target, app,
  /// work_scale), so repeated PREDICTs skip even the apply stage.
  std::shared_ptr<const trace::AppSignature> signature_for(
      const ModelsResult& models, std::uint32_t target_cores, const std::string& app,
      double work_scale);

  /// The encoded PREDICT_INTERVAL response body (IntervalResult bytes: the
  /// lo/median/hi binary traces + CSV report) for (model set, target,
  /// coverage) — cached under the same models_digest as the point path, so
  /// interval queries ride the existing content address and shard placement.
  /// Coverage must be in (0, 1).
  std::shared_ptr<const std::string> interval_for(const ModelsResult& models,
                                                  std::uint32_t target_cores,
                                                  double interval_coverage);

  /// Atomically publishes a freshly fitted model set under its digest —
  /// the serving end of a background refit.  Replaces any cached set for
  /// the digest (counted as an invalidation); requests already holding the
  /// old set keep serving it, new requests resolve the new one.  Stale
  /// derived entries (signatures, intervals) keyed by the same digest are
  /// untouched: a changed input series changes the digest, so same-digest
  /// replacement only happens when file content was re-committed unchanged
  /// or derived results are recomputed on demand.
  void insert_models(const std::string& digest,
                     std::shared_ptr<const core::TaskModelSet> models);

  StoreStats stats() const;

 private:
  LruCache<LoadedTrace> traces_;
  LruCache<core::TaskModelSet> models_;
  LruCache<machine::MachineProfile> profiles_;
  LruCache<trace::AppSignature> signatures_;
  LruCache<std::string> intervals_;
};

// ---------------------------------------------------------------------------
// LruCache implementation.

namespace detail {
/// Shared metric handles for every LruCache instantiation (one cache
/// section in the snapshot; see class comment).
struct CacheMetrics {
  static void hit();
  static void miss();
  static void eviction();
  static void invalidation();
  static void set_bytes_delta(std::ptrdiff_t delta);
};
}  // namespace detail

template <typename T>
LruCache<T>::LruCache(std::size_t max_bytes, Cost cost)
    : max_bytes_(max_bytes), cost_(std::move(cost)) {}

template <typename T>
std::size_t LruCache<T>::bytes() const {
  std::scoped_lock lock(mutex_);
  return bytes_;
}

template <typename T>
std::size_t LruCache<T>::entries() const {
  std::scoped_lock lock(mutex_);
  return slots_.size();
}

template <typename T>
void LruCache<T>::evict_locked() {
  // Walk from the cold end, skipping in-flight loads (cost 0, not yet
  // accounted); stop as soon as the budget holds.
  auto it = lru_.end();
  while (bytes_ > max_bytes_ && it != lru_.begin()) {
    --it;
    auto slot_it = slots_.find(*it);
    if (slot_it == slots_.end() || !slot_it->second.loaded) continue;
    bytes_ -= slot_it->second.cost;
    detail::CacheMetrics::set_bytes_delta(-static_cast<std::ptrdiff_t>(slot_it->second.cost));
    detail::CacheMetrics::eviction();
    slots_.erase(slot_it);
    it = lru_.erase(it);
  }
}

template <typename T>
typename LruCache<T>::Ptr LruCache<T>::get_or_load(const std::string& key,
                                                   const std::function<Ptr()>& loader) {
  std::promise<Ptr> promise;
  std::uint64_t my_epoch = 0;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    auto it = slots_.find(key);
    if (it != slots_.end()) {
      // Hit — including hits on loads still in flight: the waiter blocks on
      // the shared future instead of duplicating the work (single-flight),
      // which is what lets a concurrent same-digest burst count n-1 hits
      // against 1 miss.
      detail::CacheMetrics::hit();
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      std::shared_future<Ptr> future = it->second.future;
      lock.unlock();
      return future.get();  // rethrows the loader's exception, if any
    }
    detail::CacheMetrics::miss();
    Slot slot;
    slot.future = promise.get_future().share();
    slot.epoch = my_epoch = ++next_epoch_;
    lru_.push_front(key);
    slot.lru_it = lru_.begin();
    slots_.emplace(key, std::move(slot));
  }

  // We own the load.  Run it outside the lock so other keys stay serviceable.
  Ptr value;
  try {
    value = loader();
  } catch (...) {
    {
      std::scoped_lock lock(mutex_);
      auto it = slots_.find(key);
      // Only dismantle the slot we still own: an insert() that replaced it
      // mid-load installed a valid value this failure must not evict.
      if (it != slots_.end() && it->second.epoch == my_epoch) {
        lru_.erase(it->second.lru_it);
        slots_.erase(it);
      }
    }
    promise.set_exception(std::current_exception());
    throw;
  }

  const std::size_t cost = value ? cost_(*value) : 0;
  {
    std::scoped_lock lock(mutex_);
    auto it = slots_.find(key);
    // Epoch check: if an insert() replaced this slot while the load ran,
    // its bookkeeping already accounts the slot's bytes — adding ours too
    // would leak `cost` bytes into bytes_ forever.  Waiters still get this
    // load's value through the promise below; it simply is not cached.
    if (it != slots_.end() && it->second.epoch == my_epoch) {
      it->second.cost = cost;
      it->second.loaded = true;
      bytes_ += cost;
      detail::CacheMetrics::set_bytes_delta(static_cast<std::ptrdiff_t>(cost));
      evict_locked();
    }
  }
  promise.set_value(value);
  return value;
}

template <typename T>
void LruCache<T>::insert(const std::string& key, Ptr value) {
  const std::size_t cost = value ? cost_(*value) : 0;
  std::promise<Ptr> promise;
  promise.set_value(value);
  std::scoped_lock lock(mutex_);
  auto it = slots_.find(key);
  if (it != slots_.end()) {
    // Replace in place.  Subtract the old accounted bytes *before* adding
    // the new cost: a replacement must never leak the displaced entry's
    // bytes (in-flight slots have cost 0 and nothing accounted yet — their
    // loader's epoch check keeps it that way).
    if (it->second.loaded) {
      bytes_ -= it->second.cost;
      detail::CacheMetrics::set_bytes_delta(-static_cast<std::ptrdiff_t>(it->second.cost));
    }
    detail::CacheMetrics::invalidation();
    it->second.future = promise.get_future().share();
    it->second.cost = cost;
    it->second.loaded = true;
    it->second.epoch = ++next_epoch_;
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  } else {
    Slot slot;
    slot.future = promise.get_future().share();
    slot.cost = cost;
    slot.loaded = true;
    slot.epoch = ++next_epoch_;
    lru_.push_front(key);
    slot.lru_it = lru_.begin();
    slots_.emplace(key, std::move(slot));
  }
  bytes_ += cost;
  detail::CacheMetrics::set_bytes_delta(static_cast<std::ptrdiff_t>(cost));
  evict_locked();
}

}  // namespace pmacx::service
