#include "service/protocol.hpp"

#include <bit>
#include <cstring>

#include "util/crc32.hpp"
#include "util/error.hpp"
#include "util/parse_error.hpp"

namespace pmacx::service {
namespace {

// Little-endian primitive writers.  The repo targets little-endian hosts
// (the binary trace format shares this assumption); encode/decode go through
// memcpy so unaligned access is never an issue.

void put_u16(std::string& out, std::uint16_t v) {
  char bytes[2];
  std::memcpy(bytes, &v, 2);
  out.append(bytes, 2);
}

void put_u32(std::string& out, std::uint32_t v) {
  char bytes[4];
  std::memcpy(bytes, &v, 4);
  out.append(bytes, 4);
}

void put_u64(std::string& out, std::uint64_t v) {
  char bytes[8];
  std::memcpy(bytes, &v, 8);
  out.append(bytes, 8);
}

void put_f64(std::string& out, double v) { put_u64(out, std::bit_cast<std::uint64_t>(v)); }

void put_str(std::string& out, std::string_view s) {
  PMACX_CHECK(s.size() <= kMaxPayload, "string field exceeds frame capacity");
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

/// Bounds-checked payload reader; every violation is a ParseError naming
/// the field being decoded and the offset within the payload.
class PayloadReader {
 public:
  explicit PayloadReader(std::string_view bytes, std::string section)
      : bytes_(bytes), section_(std::move(section)) {}

  std::uint8_t u8(const char* field) {
    need(1, field);
    const auto v = static_cast<std::uint8_t>(bytes_[pos_]);
    pos_ += 1;
    return v;
  }
  std::uint16_t u16(const char* field) {
    need(2, field);
    std::uint16_t v;
    std::memcpy(&v, bytes_.data() + pos_, 2);
    pos_ += 2;
    return v;
  }
  std::uint32_t u32(const char* field) {
    need(4, field);
    std::uint32_t v;
    std::memcpy(&v, bytes_.data() + pos_, 4);
    pos_ += 4;
    return v;
  }
  std::uint64_t u64(const char* field) {
    need(8, field);
    std::uint64_t v;
    std::memcpy(&v, bytes_.data() + pos_, 8);
    pos_ += 8;
    return v;
  }
  double f64(const char* field) { return std::bit_cast<double>(u64(field)); }

  std::string str(const char* field) {
    const std::uint32_t size = u32(field);
    need(size, field);
    std::string out(bytes_.substr(pos_, size));
    pos_ += size;
    return out;
  }

  void expect_end() {
    if (pos_ != bytes_.size()) fail("payload", "trailing bytes after last field");
  }

 private:
  void need(std::size_t count, const char* field) {
    if (bytes_.size() - pos_ < count)
      fail(field, "payload truncated (need " + std::to_string(count) + " more bytes)");
  }
  [[noreturn]] void fail(const std::string& field, const std::string& message) {
    throw util::ParseError("", pos_, section_ + "." + field, message);
  }

  std::string_view bytes_;
  std::string section_;
  std::size_t pos_ = 0;
};

MsgType msg_type_from_wire(std::uint16_t raw, std::uint64_t offset) {
  if (raw < 1 || raw > 7)
    throw util::ParseError("", offset, "frame.type",
                           "unknown message type " + std::to_string(raw));
  return static_cast<MsgType>(raw);
}

}  // namespace

std::string msg_type_name(MsgType type) {
  switch (type) {
    case MsgType::Fit: return "fit";
    case MsgType::Extrapolate: return "extrapolate";
    case MsgType::Predict: return "predict";
    case MsgType::Status: return "status";
    case MsgType::Shutdown: return "shutdown";
    case MsgType::PredictInterval: return "predict_interval";
    case MsgType::UploadTrace: return "upload_trace";
  }
  return "unknown";
}

std::string encode_frame(const Frame& frame) {
  PMACX_CHECK(frame.payload.size() <= kMaxPayload,
              "frame payload exceeds the " + std::to_string(kMaxPayload) + "-byte cap");
  std::string out;
  out.reserve(kHeaderSize + frame.payload.size() + 4);
  out.append(kMagic);
  put_u16(out, kProtocolVersion);
  put_u16(out, static_cast<std::uint16_t>(frame.type));
  put_u32(out, static_cast<std::uint32_t>(frame.payload.size()));
  out.append(frame.payload);
  // The CRC covers version + type + length + payload (everything after the
  // magic), so a bit flip anywhere in a frame but its first 8 bytes is
  // detectable — the type and length fields steer decoding and must not be
  // trusted uncovered.
  put_u32(out, util::crc32(std::string_view(out).substr(kMagic.size())));
  return out;
}

std::size_t frame_payload_size(std::string_view header) {
  if (header.size() < kHeaderSize)
    throw util::ParseError("", header.size(), "frame.header",
                           "truncated header (" + std::to_string(header.size()) + " of " +
                               std::to_string(kHeaderSize) + " bytes)");
  if (header.substr(0, kMagic.size()) != kMagic)
    throw util::ParseError("", 0, "frame.magic", "bad magic (not a pmacx-rpc stream)");
  std::uint16_t version;
  std::memcpy(&version, header.data() + 8, 2);
  if (version != kProtocolVersion)
    throw util::ParseError("", 8, "frame.version",
                           "unsupported protocol version " + std::to_string(version));
  std::uint16_t type_raw;
  std::memcpy(&type_raw, header.data() + 10, 2);
  msg_type_from_wire(type_raw, 10);  // validated here so readers fail early
  std::uint32_t length;
  std::memcpy(&length, header.data() + 12, 4);
  // Validate the declared length before any caller allocates for it: a
  // corrupt frame must not be able to demand an unbounded buffer.
  if (length > kMaxPayload)
    throw util::ParseError("", 12, "frame.length",
                           "declared payload of " + std::to_string(length) +
                               " bytes exceeds the " + std::to_string(kMaxPayload) +
                               "-byte cap");
  return length;
}

Frame decode_frame(std::string_view bytes) {
  const std::size_t payload_size = frame_payload_size(bytes);
  const std::size_t total = kHeaderSize + payload_size + 4;
  if (bytes.size() < total)
    throw util::ParseError("", bytes.size(), "frame.payload",
                           "truncated frame (" + std::to_string(bytes.size()) + " of " +
                               std::to_string(total) + " bytes)");
  if (bytes.size() > total)
    throw util::ParseError("", total, "frame.payload", "trailing bytes after frame");

  std::uint16_t type_raw;
  std::memcpy(&type_raw, bytes.data() + 10, 2);

  const std::string_view payload = bytes.substr(kHeaderSize, payload_size);
  std::uint32_t declared_crc;
  std::memcpy(&declared_crc, bytes.data() + kHeaderSize + payload_size, 4);
  const std::uint32_t actual_crc =
      util::crc32(bytes.substr(kMagic.size(), kHeaderSize - kMagic.size() + payload_size));
  if (declared_crc != actual_crc)
    throw util::ParseError("", kHeaderSize + payload_size, "frame.crc",
                           "payload CRC mismatch (stored " + std::to_string(declared_crc) +
                               ", computed " + std::to_string(actual_crc) + ")");

  Frame frame;
  frame.type = msg_type_from_wire(type_raw, 10);
  frame.payload.assign(payload);
  return frame;
}

core::ExtrapolationOptions FitSpec::to_options() const {
  core::ExtrapolationOptions options;
  if (forms == "paper") {
    options.fit.forms.assign(stats::paper_forms().begin(), stats::paper_forms().end());
  } else if (forms == "all") {
    options.fit.forms.assign(stats::all_forms().begin(), stats::all_forms().end());
  } else {
    PMACX_CHECK(forms == "default", "unknown forms set '" + forms + "'");
  }
  if (missing == "drop") {
    options.missing = core::MissingPolicy::Drop;
  } else if (missing == "carry") {
    options.missing = core::MissingPolicy::CarryLast;
  } else if (missing == "fit-present") {
    options.missing = core::MissingPolicy::FitPresent;
  } else {
    PMACX_CHECK(missing == "zero", "unknown missing policy '" + missing + "'");
  }
  if (criterion == "loo") {
    options.fit.criterion = stats::SelectionCriterion::LooCv;
  } else if (criterion == "aicc") {
    options.fit.criterion = stats::SelectionCriterion::Aicc;
  } else {
    PMACX_CHECK(criterion == "sse", "unknown selection criterion '" + criterion + "'");
  }
  options.fit.tie_tolerance = tie_tolerance;
  options.influence_threshold = influence_threshold;
  options.reject_out_of_domain = reject_out_of_domain;
  options.round_counts = round_counts;
  return options;
}

namespace {

void encode_spec(std::string& payload, const FitSpec& spec) {
  PMACX_CHECK(spec.trace_paths.size() <= 1024, "fit spec lists too many trace paths");
  put_u32(payload, static_cast<std::uint32_t>(spec.trace_paths.size()));
  for (const std::string& path : spec.trace_paths) put_str(payload, path);
  put_str(payload, spec.forms);
  put_str(payload, spec.missing);
  put_str(payload, spec.criterion);
  put_f64(payload, spec.tie_tolerance);
  put_f64(payload, spec.influence_threshold);
  payload.push_back(spec.reject_out_of_domain ? 1 : 0);
  payload.push_back(spec.round_counts ? 1 : 0);
}

FitSpec decode_spec(PayloadReader& reader) {
  FitSpec spec;
  const std::uint32_t count = reader.u32("trace_count");
  // Clamp before reserving: the count is attacker-controlled input.
  if (count > 1024)
    throw util::ParseError("", 0, "request.trace_count",
                           "fit spec lists " + std::to_string(count) +
                               " traces (cap 1024)");
  spec.trace_paths.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i)
    spec.trace_paths.push_back(reader.str("trace_path"));
  spec.forms = reader.str("forms");
  spec.missing = reader.str("missing");
  spec.criterion = reader.str("criterion");
  spec.tie_tolerance = reader.f64("tie_tolerance");
  spec.influence_threshold = reader.f64("influence_threshold");
  spec.reject_out_of_domain = reader.u8("reject_out_of_domain") != 0;
  spec.round_counts = reader.u8("round_counts") != 0;
  return spec;
}

}  // namespace

std::string encode_request(const Request& request) {
  Frame frame;
  frame.type = request.type;
  switch (request.type) {
    case MsgType::Fit:
      encode_spec(frame.payload, request.spec);
      break;
    case MsgType::Extrapolate:
      encode_spec(frame.payload, request.spec);
      put_u32(frame.payload, request.target_cores);
      break;
    case MsgType::PredictInterval:
      encode_spec(frame.payload, request.spec);
      put_u32(frame.payload, request.target_cores);
      put_f64(frame.payload, request.interval_coverage);
      break;
    case MsgType::Predict:
      encode_spec(frame.payload, request.spec);
      put_u32(frame.payload, request.target_cores);
      put_str(frame.payload, request.app);
      put_f64(frame.payload, request.work_scale);
      put_str(frame.payload, request.machine_target);
      break;
    case MsgType::UploadTrace:
      // The upload grammar lives with the ingest subsystem; this layer only
      // frames its payload.
      frame.payload = ingest::encode_upload_payload(request.upload);
      break;
    case MsgType::Status:
    case MsgType::Shutdown:
      break;  // empty payloads
  }
  return encode_frame(frame);
}

Request decode_request(const Frame& frame) {
  Request request;
  request.type = frame.type;
  if (frame.type == MsgType::UploadTrace) {
    // Delegated grammar: decode_upload_payload does its own bounds and
    // trailing-bytes checks with the same ParseError taxonomy.
    request.upload = ingest::decode_upload_payload(frame.payload);
    return request;
  }
  PayloadReader reader(frame.payload, "request." + msg_type_name(frame.type));
  switch (frame.type) {
    case MsgType::Fit:
      request.spec = decode_spec(reader);
      break;
    case MsgType::Extrapolate:
      request.spec = decode_spec(reader);
      request.target_cores = reader.u32("target_cores");
      break;
    case MsgType::PredictInterval:
      request.spec = decode_spec(reader);
      request.target_cores = reader.u32("target_cores");
      request.interval_coverage = reader.f64("interval_coverage");
      break;
    case MsgType::Predict:
      request.spec = decode_spec(reader);
      request.target_cores = reader.u32("target_cores");
      request.app = reader.str("app");
      request.work_scale = reader.f64("work_scale");
      request.machine_target = reader.str("machine_target");
      break;
    case MsgType::UploadTrace:  // handled above (delegated decode)
    case MsgType::Status:
    case MsgType::Shutdown:
      break;
  }
  reader.expect_end();
  return request;
}

std::string encode_response(MsgType type, const Response& response) {
  Frame frame;
  frame.type = type;
  put_u16(frame.payload, static_cast<std::uint16_t>(response.status));
  put_str(frame.payload, response.body);
  return encode_frame(frame);
}

Response decode_response(const Frame& frame) {
  PayloadReader reader(frame.payload, "response." + msg_type_name(frame.type));
  Response response;
  const std::uint16_t status = reader.u16("status");
  if (status > 2)
    throw util::ParseError("", 0, "response.status",
                           "unknown status code " + std::to_string(status));
  response.status = static_cast<Status>(status);
  response.body = reader.str("body");
  reader.expect_end();
  return response;
}

std::string encode_interval_result(const IntervalResult& result) {
  std::string out;
  out.reserve(16 + result.lo.size() + result.median.size() + result.hi.size() +
              result.report_csv.size());
  put_str(out, result.lo);
  put_str(out, result.median);
  put_str(out, result.hi);
  put_str(out, result.report_csv);
  return out;
}

IntervalResult decode_interval_result(std::string_view body) {
  PayloadReader reader(body, "interval_result");
  IntervalResult result;
  result.lo = reader.str("lo_trace");
  result.median = reader.str("median_trace");
  result.hi = reader.str("hi_trace");
  result.report_csv = reader.str("report_csv");
  reader.expect_end();
  return result;
}

}  // namespace pmacx::service
